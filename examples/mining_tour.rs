//! A tour of the four ARP-mining algorithms (paper §4): NAIVE, CUBE,
//! SHARE-GRP and ARP-MINE produce identical pattern sets at very
//! different costs. Prints per-miner query/sort/regression statistics.
//!
//! Run with: `cargo run --release --example mining_tour`

use cape::core::mining::{ArpMiner, CubeMiner, Miner, NaiveMiner, ShareGrpMiner};
use cape::core::prelude::*;
use cape::datagen::crime::generate;
use cape::datagen::CrimeConfig;
use std::collections::BTreeSet;

fn main() -> Result<()> {
    let full = generate(&CrimeConfig::with_rows(4_000));
    let rel = cape::data::ops::project(&full, &[0, 1, 2, 3]).map_err(CapeError::Data)?;
    println!("dataset: {} rows, schema {}\n", rel.num_rows(), rel.schema());

    let cfg = MiningConfig {
        thresholds: Thresholds::new(0.3, 5, 0.5, 2),
        psi: 3,
        ..MiningConfig::default()
    };

    let miners: [&dyn Miner; 4] = [&NaiveMiner, &CubeMiner, &ShareGrpMiner, &ArpMiner];
    println!(
        "{:<10} {:>9} {:>8} {:>7} {:>10} {:>9} {:>9}",
        "miner", "time[ms]", "queries", "sorts", "candidates", "fits", "patterns"
    );
    let mut pattern_sets: Vec<BTreeSet<String>> = Vec::new();
    for miner in miners {
        let out = miner.mine(&rel, &cfg)?;
        println!(
            "{:<10} {:>9.1} {:>8} {:>7} {:>10} {:>9} {:>9}",
            miner.name(),
            out.stats.total_time.as_secs_f64() * 1e3,
            out.stats.group_queries,
            out.stats.sort_queries,
            out.stats.candidates_considered,
            out.stats.fragments_fitted,
            out.store.len(),
        );
        pattern_sets.push(out.store.iter().map(|(_, p)| p.arp.display(rel.schema())).collect());
    }

    // All four algorithms find the same globally holding ARPs.
    for set in &pattern_sets[1..] {
        assert_eq!(set, &pattern_sets[0], "miners disagree");
    }
    println!("\nall four miners agree on {} patterns, e.g.:", pattern_sets[0].len());
    for p in pattern_sets[0].iter().take(5) {
        println!("  {p}");
    }
    Ok(())
}
