//! The Chicago-Crime case study (paper Appendix A): answer
//! "why is the number of batteries in community area 26 low in 2011?"
//! with a class-aware distance (adjacent community areas count as close),
//! and show the FD optimizations at work on the 9-attribute subset.
//!
//! Run with: `cargo run --release --example crime_explain`

use cape::core::explain::{render_table, AttrDistanceFn, DistanceModel};
use cape::core::prelude::*;
use cape::data::{AggFunc, Value};
use cape::datagen::crime::{attrs, generate, CrimeConfig};
use std::collections::HashMap;

fn main() -> Result<()> {
    let full = generate(&CrimeConfig::with_rows(8_000));
    let rel = cape::data::ops::project(
        &full,
        &[attrs::PRIMARY_TYPE, attrs::COMMUNITY, attrs::YEAR, attrs::MONTH],
    )
    .map_err(CapeError::Data)?;
    println!("synthetic Crime: {} rows, schema {}", rel.num_rows(), rel.schema());

    let mining = MiningConfig {
        thresholds: Thresholds::new(0.15, 4, 0.3, 3),
        psi: 3,
        ..MiningConfig::default()
    };
    let mined = ArpMiner.mine(&rel, &mining)?;
    println!(
        "mined {} patterns ({} local) in {:?}\n",
        mined.store.len(),
        mined.store.num_local_patterns(),
        mined.stats.total_time
    );

    // Community areas 25 and 26 are adjacent: give the community attribute
    // a class map so nearby areas count as similar (the paper's default
    // distance partitions domains into classes).
    let mut distance = DistanceModel::default_for(&rel);
    let mut classes: HashMap<Value, u32> = HashMap::new();
    for c in 1..=77i64 {
        classes.insert(Value::Int(c), (c / 4) as u32); // 4 areas per class
    }
    distance.set_fn(1, AttrDistanceFn::Classes { classes, within_class: 0.4 });
    let cfg = ExplainConfig { k: 5, distance };

    let uq = UserQuestion::from_query(
        &rel,
        vec![0, 1, 2], // primary_type, community, year
        AggFunc::Count,
        None,
        vec![Value::str("Battery"), Value::Int(26), Value::Int(2011)],
        Direction::Low,
    )?;
    println!("question: {}", uq.display(rel.schema()));
    let (expls, _) = OptimizedExplainer.explain(&mined.store, &uq, &cfg);
    println!("{}", render_table(&expls, rel.schema()));
    assert!(
        expls.iter().any(|e| e.tuple.contains(&Value::Int(2012))),
        "the planted 2012 battery spike should appear"
    );

    // FD optimizations: the 9-attribute subset carries community→district,
    // district→side, beat→community, month→season.
    let nine = cape::data::ops::project(
        &full,
        &[
            attrs::PRIMARY_TYPE,
            attrs::COMMUNITY,
            attrs::YEAR,
            attrs::MONTH,
            attrs::DISTRICT,
            attrs::SIDE,
            attrs::BEAT,
            attrs::SEASON,
            attrs::DOW,
        ],
    )
    .map_err(CapeError::Data)?;
    let mut with_fd = MiningConfig { psi: 3, ..mining.clone() };
    with_fd.fd_pruning = true;
    let on = ArpMiner.mine(&nine, &with_fd)?;
    let mut without = with_fd.clone();
    without.fd_pruning = false;
    let off = ArpMiner.mine(&nine, &without)?;
    println!(
        "FD optimizations on the 9-attribute subset:\n\
         discovered {} FDs, skipped {} (F,V) pairs, candidates {} -> {}, time {:?} -> {:?}",
        on.stats.fds_discovered,
        on.stats.skipped_by_fd,
        off.stats.candidates_considered,
        on.stats.candidates_considered,
        off.stats.total_time,
        on.stats.total_time,
    );
    Ok(())
}
