//! The "unified explanation" view sketched in the paper's conclusion:
//! for one user question, show (1) the provenance — and why it cannot
//! explain the outlier, (2) generalization findings — does the outlier
//! persist at coarser granularities?, and (3) counterbalance explanations
//! with natural-language narration. Driven through the high-level
//! `CapeSession` API and a SQL question.
//!
//! Run with: `cargo run --release --example unified_explain`

use cape::core::explain::{generalizations, provenance_of, render_table};
use cape::core::prelude::*;
use cape::core::report::narrate_all;
use cape::data::Value;
use cape::datagen::dblp::{attrs, generate, DblpConfig, CASE_STUDY_AUTHOR};

fn main() -> Result<()> {
    let rel = generate(&DblpConfig::with_rows(8_000));
    let mining = MiningConfig {
        thresholds: Thresholds::new(0.15, 4, 0.3, 3),
        psi: 3,
        exclude: vec![attrs::PUBID],
        ..MiningConfig::default()
    };
    let session = CapeSession::mine(rel, &mining)?.with_top_k(5);
    println!(
        "mined {} patterns over {} rows\n",
        session.store().len(),
        session.relation().num_rows()
    );

    // The question, posed as SQL (Definition 1).
    let uq = UserQuestion::from_sql(
        session.relation(),
        "SELECT author, venue, year, count(*) AS pubcnt FROM pub GROUP BY author, venue, year",
        vec![Value::str(CASE_STUDY_AUTHOR), Value::str("SIGKDD"), Value::Int(2007)],
        Direction::Low,
    )?;
    println!("question: {}\n", uq.display(session.relation().schema()));

    // (1) Provenance: the tuples behind the answer — all one of them.
    let prov = provenance_of(session.relation(), &uq);
    println!(
        "--- provenance ({} tuple{}) ---\n{}",
        prov.num_rows(),
        if prov.num_rows() == 1 { "" } else { "s" },
        prov.to_ascii(5)
    );
    println!(
        "provenance alone cannot explain a LOW count: the cause lies in\n\
         tuples that are NOT here (paper §1).\n"
    );

    // (2) Generalization: does the dip persist at coarser granularity?
    println!("--- generalization findings ---");
    let findings = generalizations(session.store(), &uq);
    if findings.is_empty() {
        println!(
            "  (none — no coarser-granularity pattern holds locally here;\n\
             the outlier does not roll up, so counterbalances must explain it)"
        );
    }
    for f in findings {
        let names: Vec<String> = f
            .attrs
            .iter()
            .zip(&f.tuple)
            .map(|(&a, v)| {
                format!(
                    "{}={}",
                    session
                        .relation()
                        .schema()
                        .attr(a)
                        .map(|x| x.name().to_string())
                        .unwrap_or_default(),
                    v
                )
            })
            .collect();
        println!(
            "  at ({}): actual {:.1} vs predicted {:.1} → {}",
            names.join(", "),
            f.actual,
            f.predicted,
            if f.generalizes { "the outlier GENERALIZES" } else { "normal at this level" }
        );
    }
    println!();

    // (3) Counterbalances, ranked and narrated.
    let (expls, _) = session.explain(&uq);
    println!("--- counterbalance explanations ---");
    println!("{}", render_table(&expls, session.relation().schema()));
    println!(
        "{}",
        narrate_all(
            &expls[..expls.len().min(2)],
            session.store(),
            &uq,
            session.relation().schema()
        )
    );
    Ok(())
}
