//! Quickstart: the paper's running example end to end on a tiny dataset.
//!
//! Builds a small publications table, mines aggregate regression patterns,
//! asks "why is AX's SIGKDD 2007 count low?", and prints the ranked
//! counterbalance explanations.
//!
//! Run with: `cargo run --example quickstart`

use cape::core::explain::render_table;
use cape::core::prelude::*;
use cape::data::{AggFunc, Relation, Schema, Value, ValueType};

fn main() -> Result<()> {
    // --- 1. The data: Pub(author, year, venue), counts planted so that
    // AX's SIGKDD output dips in 2007 while ICDE 2007 spikes.
    let schema = Schema::new([
        ("author", ValueType::Str),
        ("year", ValueType::Int),
        ("venue", ValueType::Str),
    ])
    .map_err(CapeError::Data)?;
    let mut rel = Relation::new(schema);
    for author in ["AX", "AY", "AZ"] {
        for year in 2004..=2010 {
            for venue in ["SIGKDD", "ICDE"] {
                let mut n = 3;
                if author == "AX" && year == 2007 {
                    n = if venue == "SIGKDD" { 1 } else { 6 };
                }
                for _ in 0..n {
                    rel.push_row(vec![Value::str(author), Value::Int(year), Value::str(venue)])
                        .map_err(CapeError::Data)?;
                }
            }
        }
    }
    println!("input relation ({} rows):\n{}", rel.num_rows(), rel.to_ascii(5));

    // --- 2. Mine ARPs offline.
    let mining = MiningConfig {
        thresholds: Thresholds::new(0.2, 3, 0.5, 2),
        psi: 3,
        ..MiningConfig::default()
    };
    let mined = ArpMiner.mine(&rel, &mining)?;
    println!(
        "mined {} globally holding patterns in {:?}:",
        mined.store.len(),
        mined.stats.total_time
    );
    println!("{}\n", mined.store.describe(rel.schema()));

    // --- 3. Ask the user question φ0.
    let uq = UserQuestion::from_query(
        &rel,
        vec![0, 2, 1], // author, venue, year
        AggFunc::Count,
        None,
        vec![Value::str("AX"), Value::str("SIGKDD"), Value::Int(2007)],
        Direction::Low,
    )?;
    println!("user question: {}\n", uq.display(rel.schema()));

    // --- 4. Generate counterbalance explanations.
    let cfg = ExplainConfig::default_for(&rel, 5);
    let (explanations, stats) = OptimizedExplainer.explain(&mined.store, &uq, &cfg);
    println!(
        "top-{} explanations ({} candidate tuples checked, {} pruned pairs):",
        explanations.len(),
        stats.tuples_checked,
        stats.refinements_pruned
    );
    println!("{}", render_table(&explanations, rel.schema()));

    // The ICDE 2007 spike should explain the SIGKDD 2007 dip.
    assert!(explanations
        .iter()
        .any(|e| e.tuple.contains(&Value::str("ICDE")) && e.tuple.contains(&Value::Int(2007))));
    println!("=> the ICDE 2007 spike counterbalances the SIGKDD 2007 dip.");
    Ok(())
}
