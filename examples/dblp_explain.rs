//! The DBLP case study (paper §1 and Appendix A): mine patterns over a
//! synthetic bibliography, then answer both directions of the running
//! example — the low SIGKDD-2007 question (Table 3) and the high
//! SIGKDD-2012 question (Table 4) — and contrast with the
//! pattern-oblivious baseline (Table 6).
//!
//! Run with: `cargo run --release --example dblp_explain`

use cape::core::explain::{render_table, BaselineExplainer};
use cape::core::prelude::*;
use cape::data::{AggFunc, Value};
use cape::datagen::dblp::{attrs, generate, DblpConfig, CASE_STUDY_AUTHOR};

fn main() -> Result<()> {
    let rel = generate(&DblpConfig::with_rows(8_000));
    println!("synthetic DBLP: {} rows, schema {}", rel.num_rows(), rel.schema());

    let mining = MiningConfig {
        thresholds: Thresholds::new(0.15, 4, 0.3, 3),
        psi: 3,
        exclude: vec![attrs::PUBID],
        ..MiningConfig::default()
    };
    let mined = ArpMiner.mine(&rel, &mining)?;
    println!(
        "mined {} patterns ({} local) in {:?}\n",
        mined.store.len(),
        mined.store.num_local_patterns(),
        mined.stats.total_time
    );

    let cfg = ExplainConfig::default_for(&rel, 10);
    let question = |venue: &str, year: i64, dir: Direction| {
        UserQuestion::from_query(
            &rel,
            vec![attrs::AUTHOR, attrs::VENUE, attrs::YEAR],
            AggFunc::Count,
            None,
            vec![Value::str(CASE_STUDY_AUTHOR), Value::str(venue), Value::Int(year)],
            dir,
        )
    };

    // Table 3: the low question.
    let low = question("SIGKDD", 2007, Direction::Low)?;
    println!("Q1: {}", low.display(rel.schema()));
    let (expls, stats) = OptimizedExplainer.explain(&mined.store, &low, &cfg);
    println!(
        "{}({} relevant patterns, {} tuples checked, {:?})\n",
        render_table(&expls, rel.schema()),
        stats.patterns_relevant,
        stats.tuples_checked,
        stats.time
    );

    // Table 4: the high question.
    let high = question("SIGKDD", 2012, Direction::High)?;
    println!("Q2: {}", high.display(rel.schema()));
    let (expls, _) = OptimizedExplainer.explain(&mined.store, &high, &cfg);
    println!("{}", render_table(&expls[..expls.len().min(5)], rel.schema()));

    // Table 6: what the baseline would say for Q2.
    println!("baseline (no patterns) for Q2:");
    let (base, _) = BaselineExplainer.explain(&rel, &high, &cfg)?;
    println!("{}", render_table(&base[..base.len().min(5)], rel.schema()));
    println!(
        "note how the baseline prefers venues {} rarely publishes in (low but\n\
         predictable counts), while CAPE surfaces counts that are unusual\n\
         *relative to a pattern* — the paper's Appendix A.2 observation.",
        CASE_STUDY_AUTHOR
    );
    Ok(())
}
