//! Ground-truth recovery (paper §5.3 in miniature): plant an outlier and
//! its counterbalance in synthetic data, then check that CAPE ranks the
//! planted counterbalance into the top-k under different thresholds.
//!
//! Run with: `cargo run --release --example ground_truth`

use cape::core::prelude::*;
use cape::data::AggFunc;
use cape::datagen::dblp::{attrs, generate, DblpConfig};
use cape::datagen::ground_truth::{inject, pick_coordinates};

fn main() -> Result<()> {
    let base =
        generate(&DblpConfig { target_rows: 4_000, case_study: false, ..DblpConfig::default() });

    // Pick a well-populated (author, year) coordinate and a second year.
    let (f, outlier_year, counter_year) =
        pick_coordinates(&base, &[attrs::AUTHOR], attrs::YEAR, 5, 99).expect("coordinates");
    println!(
        "planting: author {} | outlier year {} (remove 60%) | counterbalance year {}",
        f[0], outlier_year, counter_year
    );
    let case = inject(
        &base,
        &[attrs::AUTHOR],
        &f,
        attrs::YEAR,
        &outlier_year,
        &counter_year,
        true, // low outlier
        0.6,
        4242,
    )
    .expect("injectable");
    println!("moved {} rows; dataset still has {} rows\n", case.moved, case.relation.num_rows());

    let uq = UserQuestion::from_query(
        &case.relation,
        vec![attrs::AUTHOR, attrs::YEAR],
        AggFunc::Count,
        None,
        vec![f[0].clone(), outlier_year.clone()],
        Direction::Low,
    )?;
    println!("question: {}\n", uq.display(case.relation.schema()));

    for (theta, label) in [(0.1, "lenient"), (0.5, "paper default"), (0.9, "strict")] {
        let mining = MiningConfig {
            thresholds: Thresholds::new(theta, 3, 0.3, 1),
            psi: 2,
            exclude: vec![attrs::PUBID],
            ..MiningConfig::default()
        };
        let store = ArpMiner.mine(&case.relation, &mining)?.store;
        let cfg = ExplainConfig::default_for(&case.relation, 10);
        let (expls, _) = OptimizedExplainer.explain(&store, &uq, &cfg);
        let hit = expls.iter().any(|e| {
            e.attrs.iter().zip(&e.tuple).any(|(&a, v)| a == attrs::YEAR && v == &counter_year)
                && e.attrs.iter().zip(&e.tuple).any(|(&a, v)| a == attrs::AUTHOR && v == &f[0])
        });
        println!(
            "theta = {theta} ({label}): {} patterns, {} explanations, ground truth {}",
            store.len(),
            expls.len(),
            if hit { "FOUND" } else { "missed" }
        );
    }
    println!(
        "\nhigher theta filters out the very pattern the outlier broke —\n\
         the paper's Figure 7 finding that lenient model-quality thresholds\n\
         recover more ground truth."
    );
    Ok(())
}
