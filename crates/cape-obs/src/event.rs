//! Leveled events and pluggable sinks.

use crate::json::Json;
use crate::level::Level;
use std::io::Write;
use std::sync::Mutex;
use std::time::Duration;

/// One log event.
#[derive(Debug, Clone)]
pub struct Event {
    /// Severity.
    pub level: Level,
    /// Subsystem that emitted the event (`cli`, `mining`, …).
    pub target: &'static str,
    /// Human-readable message.
    pub message: String,
    /// Time since the receiving recorder started.
    pub elapsed: Duration,
}

/// A destination for events. Sinks must tolerate concurrent calls from
/// multiple threads (the recorder serializes per sink).
pub trait Sink: Send {
    /// Deliver one event.
    fn emit(&mut self, event: &Event);
}

/// Pretty-printer for interactive stderr output:
/// `[  12.345s info ] mining: found 42 patterns`.
#[derive(Debug, Default)]
pub struct StderrSink;

impl Sink for StderrSink {
    fn emit(&mut self, event: &Event) {
        eprintln!(
            "[{:>9.3}s {:<5}] {}: {}",
            event.elapsed.as_secs_f64(),
            event.level,
            event.target,
            event.message
        );
    }
}

/// Machine-readable JSON-lines sink: one object per event.
pub struct JsonLinesSink {
    writer: Mutex<Box<dyn Write + Send>>,
}

impl JsonLinesSink {
    /// Wrap any writer (a file, a `Vec<u8>` buffer in tests, …).
    pub fn new(writer: Box<dyn Write + Send>) -> Self {
        JsonLinesSink { writer: Mutex::new(writer) }
    }
}

impl std::fmt::Debug for JsonLinesSink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("JsonLinesSink")
    }
}

impl Sink for JsonLinesSink {
    fn emit(&mut self, event: &Event) {
        let line = Json::Obj(vec![
            ("elapsed_ns".into(), Json::Num(event.elapsed.as_nanos() as f64)),
            ("level".into(), Json::Str(event.level.name().into())),
            ("target".into(), Json::Str(event.target.into())),
            ("message".into(), Json::Str(event.message.clone())),
        ]);
        let mut w = self.writer.lock().expect("sink lock");
        let _ = writeln!(w, "{line}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[derive(Default)]
    struct Shared(Arc<Mutex<Vec<u8>>>);

    impl Write for Shared {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            self.0.lock().unwrap().extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn json_lines_are_parseable() {
        let buf = Arc::new(Mutex::new(Vec::new()));
        let mut sink = JsonLinesSink::new(Box::new(Shared(Arc::clone(&buf))));
        sink.emit(&Event {
            level: Level::Warn,
            target: "test",
            message: "hello \"world\"".into(),
            elapsed: Duration::from_millis(5),
        });
        let text = String::from_utf8(buf.lock().unwrap().clone()).unwrap();
        let v = Json::parse(text.trim()).unwrap();
        assert_eq!(v.get("level").and_then(Json::as_str), Some("warn"));
        assert_eq!(v.get("message").and_then(Json::as_str), Some("hello \"world\""));
        assert_eq!(v.get("elapsed_ns").and_then(Json::as_u64), Some(5_000_000));
    }
}
