//! The flight recorder: a fixed-size ring of completed request summaries
//! plus automatic full-span capture of the slowest requests.
//!
//! Serving layers push one [`RequestSummary`] per completed request; the
//! recorder keeps the most recent `ring_capacity` of them and, for
//! requests whose total latency meets the configured threshold, retains
//! the request's full span tree (slowest-N, so a burst of slow requests
//! cannot evict the evidence of the worst one). The result answers "what
//! were the worst requests and why" *after the fact*, without having had
//! tracing switched on in advance.
//!
//! The hot path takes one short mutex per completed request — pushes are
//! O(1) with no allocation once the ring is warm, and span trees are only
//! cloned for requests that qualify as slowest-N.

use crate::json::Json;
use crate::snapshot::SpanNode;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;

/// The closed-loop record of one completed request.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct RequestSummary {
    /// The request's trace id (raw u64; 0 = untraced).
    pub trace_id: u64,
    /// Human-readable request label (the rendered question).
    pub label: String,
    /// Outcome: `"ok"`, `"partial"` (deadline expired), …
    pub outcome: String,
    /// Time spent queued before a worker picked the request up.
    pub queue_ns: u64,
    /// Time spent executing on the worker.
    pub exec_ns: u64,
    /// Submission-to-completion latency (`queue + exec` plus reply costs).
    pub total_ns: u64,
    /// Drill-cache hits attributed to this request.
    pub cache_hits: u64,
    /// Drill-cache misses attributed to this request.
    pub cache_misses: u64,
    /// Completion time, nanoseconds since the recorder started (orders
    /// summaries across worker threads).
    pub end_off_ns: u64,
}

/// A slow request retained with its full span tree.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SlowRequest {
    /// The request's summary.
    pub summary: RequestSummary,
    /// The request's span tree (queue-wait and execution phases appear as
    /// separate children under the request root).
    pub spans: Vec<SpanNode>,
}

struct FlightInner {
    ring: VecDeque<RequestSummary>,
    /// Slowest-first; truncated to `slow_capacity`.
    slow: Vec<SlowRequest>,
    recorded: u64,
}

/// Thread-safe flight recorder. One lives in every
/// [`Recorder`](crate::Recorder); serving layers feed it through
/// [`crate::flight_record`].
#[derive(Debug)]
pub struct FlightRecorder {
    inner: Mutex<FlightInner>,
    enabled: AtomicBool,
    threshold_ns: AtomicU64,
    ring_capacity: usize,
    slow_capacity: usize,
}

impl std::fmt::Debug for FlightInner {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FlightInner")
            .field("ring_len", &self.ring.len())
            .field("slow_len", &self.slow.len())
            .field("recorded", &self.recorded)
            .finish()
    }
}

/// Default ring size: recent-history window for post-hoc inspection.
pub const DEFAULT_RING_CAPACITY: usize = 128;
/// Default slowest-N retention.
pub const DEFAULT_SLOW_CAPACITY: usize = 8;

impl Default for FlightRecorder {
    fn default() -> Self {
        FlightRecorder::new(DEFAULT_RING_CAPACITY, DEFAULT_SLOW_CAPACITY, 0)
    }
}

impl FlightRecorder {
    /// A recorder keeping `ring_capacity` recent summaries and the
    /// `slow_capacity` slowest span captures at or above `threshold_ns`
    /// total latency (0 = capture spans for the slowest-N regardless of
    /// absolute latency).
    pub fn new(ring_capacity: usize, slow_capacity: usize, threshold_ns: u64) -> Self {
        FlightRecorder {
            inner: Mutex::new(FlightInner {
                ring: VecDeque::with_capacity(ring_capacity),
                slow: Vec::new(),
                recorded: 0,
            }),
            enabled: AtomicBool::new(true),
            threshold_ns: AtomicU64::new(threshold_ns),
            ring_capacity,
            slow_capacity,
        }
    }

    /// Whether recording is accepted (callers may also skip building
    /// summaries entirely when false).
    pub fn enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed) && self.ring_capacity > 0
    }

    /// Turn recording on or off.
    pub fn set_enabled(&self, on: bool) {
        self.enabled.store(on, Ordering::Relaxed);
    }

    /// Set the slow-capture latency threshold.
    pub fn set_threshold_ns(&self, threshold_ns: u64) {
        self.threshold_ns.store(threshold_ns, Ordering::Relaxed);
    }

    /// The slow-capture latency threshold.
    pub fn threshold_ns(&self) -> u64 {
        self.threshold_ns.load(Ordering::Relaxed)
    }

    /// Record one completed request. `spans` is the request's span tree;
    /// it is only kept when the request qualifies for slowest-N capture
    /// (the summary always enters the ring).
    pub fn record(&self, summary: RequestSummary, spans: &[SpanNode]) {
        if !self.enabled() {
            return;
        }
        let qualifies = summary.total_ns >= self.threshold_ns();
        let mut inner = self.inner.lock().expect("flight lock");
        inner.recorded += 1;
        if inner.ring.len() == self.ring_capacity {
            inner.ring.pop_front();
        }
        inner.ring.push_back(summary.clone());
        if qualifies && self.slow_capacity > 0 {
            let full = inner.slow.len() >= self.slow_capacity;
            let beats_min =
                inner.slow.last().is_none_or(|worst| summary.total_ns > worst.summary.total_ns);
            if !full || beats_min {
                let pos = inner
                    .slow
                    .iter()
                    .position(|s| s.summary.total_ns < summary.total_ns)
                    .unwrap_or(inner.slow.len());
                inner.slow.insert(pos, SlowRequest { summary, spans: spans.to_vec() });
                inner.slow.truncate(self.slow_capacity);
            }
        }
    }

    /// Export the current state.
    pub fn snapshot(&self) -> FlightSnapshot {
        let inner = self.inner.lock().expect("flight lock");
        FlightSnapshot {
            recorded: inner.recorded,
            threshold_ns: self.threshold_ns(),
            recent: inner.ring.iter().cloned().collect(),
            slowest: inner.slow.clone(),
        }
    }
}

/// A point-in-time export of a [`FlightRecorder`]: part of
/// [`TelemetrySnapshot`](crate::TelemetrySnapshot) as the `requests`
/// section.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FlightSnapshot {
    /// Requests recorded since the recorder started (including those the
    /// ring has since evicted).
    pub recorded: u64,
    /// Slow-capture threshold in effect.
    pub threshold_ns: u64,
    /// Most recent summaries, oldest first.
    pub recent: Vec<RequestSummary>,
    /// Slowest retained requests with span trees, slowest first.
    pub slowest: Vec<SlowRequest>,
}

fn summary_to_json(s: &RequestSummary) -> Json {
    Json::Obj(vec![
        ("trace_id".into(), Json::Str(format!("{:016x}", s.trace_id))),
        ("label".into(), Json::Str(s.label.clone())),
        ("outcome".into(), Json::Str(s.outcome.clone())),
        ("queue_ns".into(), Json::Num(s.queue_ns as f64)),
        ("exec_ns".into(), Json::Num(s.exec_ns as f64)),
        ("total_ns".into(), Json::Num(s.total_ns as f64)),
        ("cache_hits".into(), Json::Num(s.cache_hits as f64)),
        ("cache_misses".into(), Json::Num(s.cache_misses as f64)),
        ("end_off_ns".into(), Json::Num(s.end_off_ns as f64)),
    ])
}

fn summary_from_json(v: &Json) -> Result<RequestSummary, String> {
    let num =
        |name: &str| v.get(name).and_then(Json::as_u64).ok_or_else(|| format!("missing {name}"));
    let trace_hex = v.get("trace_id").and_then(Json::as_str).ok_or("missing trace_id")?;
    Ok(RequestSummary {
        trace_id: u64::from_str_radix(trace_hex, 16)
            .map_err(|_| format!("bad trace_id `{trace_hex}`"))?,
        label: v.get("label").and_then(Json::as_str).unwrap_or_default().to_string(),
        outcome: v.get("outcome").and_then(Json::as_str).unwrap_or_default().to_string(),
        queue_ns: num("queue_ns")?,
        exec_ns: num("exec_ns")?,
        total_ns: num("total_ns")?,
        cache_hits: num("cache_hits")?,
        cache_misses: num("cache_misses")?,
        end_off_ns: num("end_off_ns")?,
    })
}

impl FlightSnapshot {
    /// Serialize to the `requests` JSON section.
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("recorded".into(), Json::Num(self.recorded as f64)),
            ("threshold_ns".into(), Json::Num(self.threshold_ns as f64)),
            ("recent".into(), Json::Arr(self.recent.iter().map(summary_to_json).collect())),
            (
                "slowest".into(),
                Json::Arr(
                    self.slowest
                        .iter()
                        .map(|s| {
                            Json::Obj(vec![
                                ("summary".into(), summary_to_json(&s.summary)),
                                (
                                    "spans".into(),
                                    Json::Arr(
                                        s.spans.iter().map(crate::snapshot::span_to_json).collect(),
                                    ),
                                ),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }

    /// Parse a section produced by [`FlightSnapshot::to_json`].
    pub fn from_json(v: &Json) -> Result<FlightSnapshot, String> {
        let mut out = FlightSnapshot {
            recorded: v.get("recorded").and_then(Json::as_u64).ok_or("missing recorded")?,
            threshold_ns: v.get("threshold_ns").and_then(Json::as_u64).unwrap_or(0),
            ..FlightSnapshot::default()
        };
        if let Some(items) = v.get("recent").and_then(Json::as_arr) {
            out.recent = items.iter().map(summary_from_json).collect::<Result<_, _>>()?;
        }
        if let Some(items) = v.get("slowest").and_then(Json::as_arr) {
            for item in items {
                let summary =
                    summary_from_json(item.get("summary").ok_or("slow request missing summary")?)?;
                let spans = match item.get("spans").and_then(Json::as_arr) {
                    Some(nodes) => nodes
                        .iter()
                        .map(crate::snapshot::span_from_json)
                        .collect::<Result<_, _>>()?,
                    None => Vec::new(),
                };
                out.slowest.push(SlowRequest { summary, spans });
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn summary(total_ns: u64) -> RequestSummary {
        RequestSummary {
            trace_id: total_ns,
            label: format!("q{total_ns}"),
            outcome: "ok".into(),
            queue_ns: 1,
            exec_ns: total_ns.saturating_sub(1),
            total_ns,
            ..RequestSummary::default()
        }
    }

    #[test]
    fn ring_keeps_most_recent() {
        let fr = FlightRecorder::new(3, 0, 0);
        for t in 1..=5u64 {
            fr.record(summary(t), &[]);
        }
        let snap = fr.snapshot();
        assert_eq!(snap.recorded, 5);
        let totals: Vec<u64> = snap.recent.iter().map(|s| s.total_ns).collect();
        assert_eq!(totals, vec![3, 4, 5]);
    }

    #[test]
    fn slowest_n_survive_later_fast_requests() {
        let fr = FlightRecorder::new(2, 2, 0);
        let tree = vec![SpanNode { name: "serve.request".into(), ..SpanNode::default() }];
        fr.record(summary(500), &tree);
        fr.record(summary(100), &tree);
        fr.record(summary(900), &tree);
        for t in 1..=10u64 {
            fr.record(summary(t), &tree);
        }
        let snap = fr.snapshot();
        let slow: Vec<u64> = snap.slowest.iter().map(|s| s.summary.total_ns).collect();
        assert_eq!(slow, vec![900, 500], "slowest-first, unaffected by later fast requests");
        assert_eq!(snap.slowest[0].spans.len(), 1);
        // The ring, by contrast, only remembers the most recent two.
        assert_eq!(snap.recent.iter().map(|s| s.total_ns).collect::<Vec<_>>(), vec![9, 10]);
    }

    #[test]
    fn threshold_gates_span_capture_not_the_ring() {
        let fr = FlightRecorder::new(8, 4, 200);
        fr.record(summary(100), &[]);
        fr.record(summary(300), &[]);
        let snap = fr.snapshot();
        assert_eq!(snap.recent.len(), 2);
        assert_eq!(snap.slowest.len(), 1);
        assert_eq!(snap.slowest[0].summary.total_ns, 300);
    }

    #[test]
    fn disabled_recorder_drops_everything() {
        let fr = FlightRecorder::default();
        fr.set_enabled(false);
        fr.record(summary(1), &[]);
        assert_eq!(fr.snapshot().recorded, 0);
    }

    #[test]
    fn snapshot_json_round_trips() {
        let fr = FlightRecorder::new(4, 2, 0);
        let tree = vec![SpanNode {
            name: "serve.request".into(),
            count: 1,
            total_ns: 42,
            children: vec![SpanNode { name: "serve.queue_wait".into(), ..SpanNode::default() }],
            ..SpanNode::default()
        }];
        fr.record(summary(42), &tree);
        let snap = fr.snapshot();
        let parsed = FlightSnapshot::from_json(&Json::parse(&snap.to_json().to_string()).unwrap())
            .expect("round trip");
        assert_eq!(parsed, snap);
    }
}
