//! Request-scoped trace contexts and wall-clock span events.
//!
//! A [`TraceId`] names one top-level operation — a CLI command, one
//! `cape-serve` request — and follows the work across threads: the worker
//! that dequeues a request enters the request's trace scope before
//! executing it, so every span the request produces carries the same id
//! no matter which thread closed it.
//!
//! While a recorder has trace capture enabled (see
//! [`Recorder::enable_trace_capture`](crate::Recorder::enable_trace_capture)),
//! every span close additionally appends a [`TraceEvent`] — the span's
//! wall-clock begin/end offsets relative to the recorder's start, the
//! closing thread's lane, and the current trace id — to a bounded
//! [`TraceBuffer`]. The buffer feeds the Chrome `trace_event` exporter in
//! [`crate::export`], so an entire session can be opened in
//! `about:tracing` / Perfetto with per-thread lanes and per-request ids.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};

/// A 64-bit identifier for one top-level traced operation.
///
/// Ids are unique within a process run and start from a per-process seed
/// derived from the clock and process id, so ids from different runs are
/// unlikely to collide in merged logs. The id `0` is reserved for
/// "no trace" and never produced.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TraceId(u64);

/// SplitMix64 finalizer: a cheap, well-distributed bijection on u64.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

fn process_seed() -> u64 {
    static SEED: OnceLock<u64> = OnceLock::new();
    *SEED.get_or_init(|| {
        let nanos = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0);
        splitmix64(nanos ^ (std::process::id() as u64) << 32)
    })
}

impl TraceId {
    /// Allocate a fresh, process-unique trace id.
    pub fn next() -> TraceId {
        static COUNTER: AtomicU64 = AtomicU64::new(1);
        let n = COUNTER.fetch_add(1, Ordering::Relaxed);
        let id = splitmix64(process_seed().wrapping_add(n));
        TraceId(if id == 0 { 1 } else { id })
    }

    /// Wrap a raw id (0 is remapped to 1, keeping 0 reserved).
    pub fn from_u64(raw: u64) -> TraceId {
        TraceId(if raw == 0 { 1 } else { raw })
    }

    /// The raw 64-bit value.
    pub fn as_u64(self) -> u64 {
        self.0
    }
}

impl std::fmt::Display for TraceId {
    /// Fixed-width lowercase hex, the form used in logs and exports.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:016x}", self.0)
    }
}

/// A small dense per-thread lane number for trace exports (`tid` in the
/// Chrome trace format). Monotonically assigned on first use per thread;
/// stable for the thread's lifetime.
pub fn thread_lane() -> u64 {
    static NEXT: AtomicU64 = AtomicU64::new(1);
    thread_local! {
        static LANE: u64 = NEXT.fetch_add(1, Ordering::Relaxed);
    }
    LANE.with(|l| *l)
}

/// One captured span close: wall-clock begin/duration relative to the
/// owning recorder's start, plus attribution (trace id, thread lane).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// The trace scope active when the span closed (0 = none).
    pub trace_id: u64,
    /// Span name.
    pub name: &'static str,
    /// Closing thread's lane ([`thread_lane`]).
    pub tid: u64,
    /// Wall-clock begin, nanoseconds since the recorder started.
    pub begin_ns: u64,
    /// Wall-clock duration in nanoseconds.
    pub dur_ns: u64,
    /// Per-span counters attached via [`crate::SpanGuard::add`].
    pub counters: Vec<(&'static str, u64)>,
}

/// A bounded, thread-safe buffer of [`TraceEvent`]s. When full, further
/// events are counted as dropped rather than growing without limit — a
/// flight-recorder discipline: the exporter reports the drop count so a
/// truncated trace is never mistaken for a complete one.
#[derive(Debug)]
pub struct TraceBuffer {
    events: Mutex<Vec<TraceEvent>>,
    dropped: AtomicU64,
    capacity: usize,
}

/// Default capacity: enough for every span of a large batch run while
/// bounding worst-case memory to a few MiB.
pub const DEFAULT_TRACE_CAPACITY: usize = 1 << 17;

impl Default for TraceBuffer {
    fn default() -> Self {
        TraceBuffer::with_capacity(DEFAULT_TRACE_CAPACITY)
    }
}

impl TraceBuffer {
    /// An empty buffer holding at most `capacity` events.
    pub fn with_capacity(capacity: usize) -> Self {
        TraceBuffer { events: Mutex::new(Vec::new()), dropped: AtomicU64::new(0), capacity }
    }

    /// Append one event, or count it as dropped when full.
    pub fn push(&self, event: TraceEvent) {
        let mut events = self.events.lock().expect("trace lock");
        if events.len() < self.capacity {
            events.push(event);
        } else {
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Snapshot the buffered events, ordered by begin time.
    pub fn events(&self) -> Vec<TraceEvent> {
        let mut out = self.events.lock().expect("trace lock").clone();
        out.sort_by_key(|e| (e.begin_ns, e.dur_ns));
        out
    }

    /// Number of buffered events.
    pub fn len(&self) -> usize {
        self.events.lock().expect("trace lock").len()
    }

    /// Whether no events have been captured.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Events rejected because the buffer was full.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_are_unique_and_nonzero() {
        let mut seen = std::collections::HashSet::new();
        for _ in 0..1000 {
            let id = TraceId::next();
            assert_ne!(id.as_u64(), 0);
            assert!(seen.insert(id.as_u64()), "duplicate trace id");
        }
    }

    #[test]
    fn display_is_fixed_width_hex() {
        let id = TraceId::from_u64(0xabc);
        assert_eq!(id.to_string(), "0000000000000abc");
        assert_eq!(TraceId::from_u64(0).as_u64(), 1, "zero is reserved");
    }

    #[test]
    fn buffer_bounds_and_counts_drops() {
        let buf = TraceBuffer::with_capacity(2);
        for i in 0..5u64 {
            buf.push(TraceEvent {
                trace_id: 1,
                name: "x",
                tid: 1,
                begin_ns: i,
                dur_ns: 1,
                counters: Vec::new(),
            });
        }
        assert_eq!(buf.len(), 2);
        assert_eq!(buf.dropped(), 3);
    }

    #[test]
    fn events_sorted_by_begin() {
        let buf = TraceBuffer::with_capacity(8);
        for begin in [30u64, 10, 20] {
            buf.push(TraceEvent {
                trace_id: 1,
                name: "x",
                tid: 1,
                begin_ns: begin,
                dur_ns: 1,
                counters: Vec::new(),
            });
        }
        let begins: Vec<u64> = buf.events().iter().map(|e| e.begin_ns).collect();
        assert_eq!(begins, vec![10, 20, 30]);
    }

    #[test]
    fn thread_lanes_are_stable_and_distinct() {
        let here = thread_lane();
        assert_eq!(here, thread_lane());
        let other = std::thread::spawn(thread_lane).join().unwrap();
        assert_ne!(here, other);
    }
}
