//! Log-scale latency histogram with lock-free recording.
//!
//! Values (nanoseconds) land in power-of-two buckets: bucket `i` covers
//! `[2^(i-1), 2^i)` with bucket 0 holding zero. Quantiles are estimated as
//! the geometric midpoint of the bucket containing the requested rank, so
//! they are accurate within a factor of √2 — plenty for the p50/p95/p99
//! summaries the telemetry snapshot reports.

use std::sync::atomic::{AtomicU64, Ordering};

const BUCKETS: usize = 64;

/// A concurrent log₂-bucketed histogram of `u64` observations.
#[derive(Debug)]
pub struct Histogram {
    counts: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            counts: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }
}

fn bucket_of(value: u64) -> usize {
    (64 - value.leading_zeros()) as usize
}

/// Upper bound (exclusive) of bucket `i`; its geometric midpoint is the
/// quantile estimate.
fn bucket_mid(i: usize) -> u64 {
    if i == 0 {
        return 0;
    }
    let low = 1u64 << (i - 1);
    let high = low.saturating_mul(2);
    // Geometric-ish midpoint, safe against overflow in the top bucket.
    low + (high - low) / 2
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Histogram::default()
    }

    /// Record one observation.
    pub fn observe(&self, value: u64) {
        self.counts[bucket_of(value)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.max.fetch_max(value, Ordering::Relaxed);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all observations.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Largest observation (exact, not bucketed). Zero when empty.
    pub fn max(&self) -> u64 {
        self.max.load(Ordering::Relaxed)
    }

    /// Estimate the `q`-quantile (`0.0 ..= 1.0`). Zero when empty; the
    /// estimate never exceeds [`Histogram::max`].
    pub fn quantile(&self, q: f64) -> u64 {
        let total = self.count();
        if total == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * total as f64).ceil() as u64).max(1);
        let counts: Vec<u64> = self.counts.iter().map(|c| c.load(Ordering::Relaxed)).collect();
        let last = counts.iter().rposition(|&c| c > 0).unwrap_or(0);
        let mut seen = 0u64;
        for (i, &c) in counts.iter().enumerate().take(last + 1) {
            seen += c;
            if seen >= rank {
                // In the top occupied bucket the exact max is a better
                // estimate than the midpoint (and makes p100 exact).
                return if i == last { self.max() } else { bucket_mid(i).min(self.max()) };
            }
        }
        self.max()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_are_log2() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(1024), 11);
    }

    #[test]
    fn quantiles_on_known_inputs() {
        let h = Histogram::new();
        for v in 1..=1000u64 {
            h.observe(v);
        }
        assert_eq!(h.count(), 1000);
        assert_eq!(h.max(), 1000);
        assert_eq!(h.sum(), 500_500);
        let p50 = h.quantile(0.5);
        let p95 = h.quantile(0.95);
        let p99 = h.quantile(0.99);
        // Log buckets: estimates within a factor of 2 of the true value.
        assert!((250..=1000).contains(&p50), "p50 = {p50}");
        assert!((475..=1000).contains(&p95), "p95 = {p95}");
        assert!(p50 <= p95 && p95 <= p99 && p99 <= h.max());
    }

    #[test]
    fn empty_and_single() {
        let h = Histogram::new();
        assert_eq!(h.quantile(0.5), 0);
        assert_eq!(h.max(), 0);
        h.observe(7);
        assert_eq!(h.quantile(0.5), 7); // clamped to max
        assert_eq!(h.quantile(1.0), 7);
    }
}
