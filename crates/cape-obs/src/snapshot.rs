//! Exportable telemetry: a point-in-time view of one recorder's spans and
//! metrics, convertible to and from JSON for `results/` files and bench
//! reports.

use crate::json::Json;
use crate::ring::FlightSnapshot;
use crate::span::{SpanAgg, SpanPath};
use std::collections::BTreeMap;

/// One node of the span tree.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SpanNode {
    /// Span name (`subsystem.verb_noun`).
    pub name: String,
    /// Times this span closed. Zero for a node that only exists as an
    /// ancestor of recorded spans (e.g. a still-open parent).
    pub count: u64,
    /// Total wall-clock nanoseconds (children included).
    pub total_ns: u64,
    /// Per-span counters.
    pub counters: BTreeMap<String, u64>,
    /// Child spans, sorted by name.
    pub children: Vec<SpanNode>,
}

/// Summary of one latency histogram.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct HistogramSummary {
    /// Number of observations.
    pub count: u64,
    /// Sum of observations (nanoseconds).
    pub sum_ns: u64,
    /// Median estimate.
    pub p50_ns: u64,
    /// 95th-percentile estimate.
    pub p95_ns: u64,
    /// 99th-percentile estimate.
    pub p99_ns: u64,
    /// Exact maximum.
    pub max_ns: u64,
}

/// The per-phase breakdown the paper's Figure 4 plots: relational query
/// time (`data.*` spans), regression time (`regress.*` spans), and the
/// residual, relative to the run's total wall time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PhaseBreakdown {
    /// Total wall-clock nanoseconds of the outermost spans.
    pub total_ns: u64,
    /// Nanoseconds inside relational operators.
    pub query_ns: u64,
    /// Nanoseconds inside regression fitting.
    pub regression_ns: u64,
    /// `total − query − regression`, floored at zero (parallel runs sum
    /// per-worker CPU time, which may exceed wall clock).
    pub other_ns: u64,
}

/// A point-in-time export of a recorder's telemetry.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct TelemetrySnapshot {
    /// Root spans (no open ancestor when they were recorded).
    pub spans: Vec<SpanNode>,
    /// Counter values by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauge values by name.
    pub gauges: BTreeMap<String, f64>,
    /// Histogram summaries by name.
    pub histograms: BTreeMap<String, HistogramSummary>,
    /// Flight-recorder state (recent + slowest requests); present when at
    /// least one request was recorded.
    pub requests: Option<FlightSnapshot>,
}

/// Build the span tree from flat `(path, aggregate)` entries.
pub(crate) fn build_tree(entries: Vec<(SpanPath, SpanAgg)>) -> Vec<SpanNode> {
    let mut roots: Vec<SpanNode> = Vec::new();
    for (path, agg) in entries {
        let mut level = &mut roots;
        for (depth, &seg) in path.iter().enumerate() {
            let idx = match level.iter().position(|n| n.name == seg) {
                Some(i) => i,
                None => {
                    level.push(SpanNode { name: seg.to_string(), ..SpanNode::default() });
                    level.len() - 1
                }
            };
            if depth + 1 == path.len() {
                let node = &mut level[idx];
                node.count = agg.count;
                node.total_ns = agg.total_ns;
                node.counters = agg.counters.iter().map(|(k, v)| (k.to_string(), *v)).collect();
                break;
            }
            level = &mut level[idx].children;
        }
    }
    sort_tree(&mut roots);
    roots
}

fn sort_tree(nodes: &mut [SpanNode]) {
    nodes.sort_by(|a, b| a.name.cmp(&b.name));
    for n in nodes.iter_mut() {
        sort_tree(&mut n.children);
    }
}

enum Phase {
    Query,
    Regression,
    Other,
}

fn phase_of(name: &str) -> Phase {
    if name.starts_with("data.") {
        Phase::Query
    } else if name.starts_with("regress.") {
        Phase::Regression
    } else {
        Phase::Other
    }
}

/// Returns this subtree's contribution to total time while accumulating
/// query/regression time. A node that never closed (count 0) contributes
/// the sum of its children instead of its own (zero) duration.
fn visit(node: &SpanNode, ph: &mut PhaseBreakdown) -> u64 {
    match phase_of(&node.name) {
        Phase::Query if node.count > 0 => {
            ph.query_ns += node.total_ns;
            node.total_ns
        }
        Phase::Regression if node.count > 0 => {
            ph.regression_ns += node.total_ns;
            node.total_ns
        }
        _ => {
            let child_sum: u64 = node.children.iter().map(|c| visit(c, ph)).sum();
            if node.count > 0 {
                node.total_ns
            } else {
                child_sum
            }
        }
    }
}

impl TelemetrySnapshot {
    /// A counter's value (zero if absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Derive the query/regression/other breakdown from the span tree.
    pub fn phase_breakdown(&self) -> PhaseBreakdown {
        let mut ph = PhaseBreakdown::default();
        for root in &self.spans {
            ph.total_ns += visit(root, &mut ph);
        }
        ph.other_ns = ph.total_ns.saturating_sub(ph.query_ns + ph.regression_ns);
        ph
    }

    /// Serialize to a JSON object (spans, counters, gauges, histograms,
    /// plus the derived `phases` block and, when requests were recorded,
    /// the flight-recorder `requests` section).
    pub fn to_json(&self) -> Json {
        let ph = self.phase_breakdown();
        let mut fields = vec![
            (
                "phases".into(),
                Json::Obj(vec![
                    ("total_ns".into(), Json::Num(ph.total_ns as f64)),
                    ("query_ns".into(), Json::Num(ph.query_ns as f64)),
                    ("regression_ns".into(), Json::Num(ph.regression_ns as f64)),
                    ("other_ns".into(), Json::Num(ph.other_ns as f64)),
                ]),
            ),
            ("spans".into(), Json::Arr(self.spans.iter().map(span_to_json).collect())),
            (
                "counters".into(),
                Json::Obj(
                    self.counters.iter().map(|(k, v)| (k.clone(), Json::Num(*v as f64))).collect(),
                ),
            ),
            (
                "gauges".into(),
                Json::Obj(self.gauges.iter().map(|(k, v)| (k.clone(), Json::Num(*v))).collect()),
            ),
            (
                "histograms".into(),
                Json::Obj(
                    self.histograms
                        .iter()
                        .map(|(k, h)| {
                            (
                                k.clone(),
                                Json::Obj(vec![
                                    ("count".into(), Json::Num(h.count as f64)),
                                    ("sum_ns".into(), Json::Num(h.sum_ns as f64)),
                                    ("p50_ns".into(), Json::Num(h.p50_ns as f64)),
                                    ("p95_ns".into(), Json::Num(h.p95_ns as f64)),
                                    ("p99_ns".into(), Json::Num(h.p99_ns as f64)),
                                    ("max_ns".into(), Json::Num(h.max_ns as f64)),
                                ]),
                            )
                        })
                        .collect(),
                ),
            ),
        ];
        if let Some(flight) = &self.requests {
            fields.push(("requests".into(), flight.to_json()));
        }
        Json::Obj(fields)
    }

    /// Parse a snapshot previously produced by [`TelemetrySnapshot::to_json`].
    pub fn from_json(v: &Json) -> Result<TelemetrySnapshot, String> {
        let mut snap = TelemetrySnapshot::default();
        if let Some(items) = v.get("spans").and_then(Json::as_arr) {
            snap.spans = items.iter().map(span_from_json).collect::<Result<_, _>>()?;
        }
        if let Some(fields) = v.get("counters").and_then(Json::as_obj) {
            for (k, val) in fields {
                snap.counters
                    .insert(k.clone(), val.as_u64().ok_or("counter value must be a number")?);
            }
        }
        if let Some(fields) = v.get("gauges").and_then(Json::as_obj) {
            for (k, val) in fields {
                snap.gauges.insert(k.clone(), val.as_f64().ok_or("gauge value must be a number")?);
            }
        }
        if let Some(fields) = v.get("histograms").and_then(Json::as_obj) {
            for (k, val) in fields {
                let field = |name: &str| {
                    val.get(name).and_then(Json::as_u64).ok_or_else(|| format!("missing {name}"))
                };
                snap.histograms.insert(
                    k.clone(),
                    HistogramSummary {
                        count: field("count")?,
                        sum_ns: field("sum_ns")?,
                        p50_ns: field("p50_ns")?,
                        p95_ns: field("p95_ns")?,
                        p99_ns: field("p99_ns")?,
                        max_ns: field("max_ns")?,
                    },
                );
            }
        }
        if let Some(flight) = v.get("requests") {
            snap.requests = Some(FlightSnapshot::from_json(flight)?);
        }
        Ok(snap)
    }
}

pub(crate) fn span_to_json(node: &SpanNode) -> Json {
    Json::Obj(vec![
        ("name".into(), Json::Str(node.name.clone())),
        ("count".into(), Json::Num(node.count as f64)),
        ("total_ns".into(), Json::Num(node.total_ns as f64)),
        (
            "counters".into(),
            Json::Obj(
                node.counters.iter().map(|(k, v)| (k.clone(), Json::Num(*v as f64))).collect(),
            ),
        ),
        ("children".into(), Json::Arr(node.children.iter().map(span_to_json).collect())),
    ])
}

pub(crate) fn span_from_json(v: &Json) -> Result<SpanNode, String> {
    let mut node = SpanNode {
        name: v.get("name").and_then(Json::as_str).ok_or("span missing name")?.to_string(),
        count: v.get("count").and_then(Json::as_u64).ok_or("span missing count")?,
        total_ns: v.get("total_ns").and_then(Json::as_u64).ok_or("span missing total_ns")?,
        ..SpanNode::default()
    };
    if let Some(fields) = v.get("counters").and_then(Json::as_obj) {
        for (k, val) in fields {
            node.counters.insert(k.clone(), val.as_u64().ok_or("span counter must be a number")?);
        }
    }
    if let Some(items) = v.get("children").and_then(Json::as_arr) {
        node.children = items.iter().map(span_from_json).collect::<Result<_, _>>()?;
    }
    Ok(node)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    fn agg(count: u64, total_ns: u64) -> SpanAgg {
        SpanAgg { count, total_ns, counters: HashMap::new() }
    }

    #[test]
    fn tree_reconstruction_nests_paths() {
        let entries = vec![
            (vec!["mine"].into_boxed_slice(), agg(1, 1000)),
            (vec!["mine", "data.sort"].into_boxed_slice(), agg(3, 300)),
            (vec!["mine", "regress.fit"].into_boxed_slice(), agg(5, 200)),
        ];
        let tree = build_tree(entries);
        assert_eq!(tree.len(), 1);
        assert_eq!(tree[0].name, "mine");
        assert_eq!(tree[0].children.len(), 2);
    }

    #[test]
    fn phases_from_categorized_spans() {
        let entries = vec![
            (vec!["mine"].into_boxed_slice(), agg(1, 1000)),
            (vec!["mine", "data.sort"].into_boxed_slice(), agg(3, 300)),
            (vec!["mine", "regress.fit"].into_boxed_slice(), agg(5, 200)),
        ];
        let snap = TelemetrySnapshot { spans: build_tree(entries), ..Default::default() };
        let ph = snap.phase_breakdown();
        assert_eq!(ph.total_ns, 1000);
        assert_eq!(ph.query_ns, 300);
        assert_eq!(ph.regression_ns, 200);
        assert_eq!(ph.other_ns, 500);
    }

    #[test]
    fn unclosed_root_sums_children() {
        // The outer CLI span may still be open when a nested recorder
        // snapshots; total must come from the closed children.
        let entries = vec![
            (vec!["cli.mine", "mine"].into_boxed_slice(), agg(1, 900)),
            (vec!["cli.mine", "mine", "data.sort"].into_boxed_slice(), agg(2, 400)),
        ];
        let snap = TelemetrySnapshot { spans: build_tree(entries), ..Default::default() };
        let ph = snap.phase_breakdown();
        assert_eq!(ph.total_ns, 900);
        assert_eq!(ph.query_ns, 400);
        assert_eq!(ph.other_ns, 500);
    }

    #[test]
    fn category_nodes_do_not_double_count_nested_same_category() {
        // data.cube containing data.group_by: only the outer span counts.
        let entries = vec![
            (vec!["data.cube"].into_boxed_slice(), agg(1, 500)),
            (vec!["data.cube", "data.group_by"].into_boxed_slice(), agg(4, 300)),
        ];
        let snap = TelemetrySnapshot { spans: build_tree(entries), ..Default::default() };
        let ph = snap.phase_breakdown();
        assert_eq!(ph.query_ns, 500);
        assert_eq!(ph.total_ns, 500);
    }
}
