//! A minimal JSON value with serializer and parser (std-only).
//!
//! Numbers are stored as `f64`; integers up to 2^53 round-trip exactly,
//! which covers every counter and nanosecond duration the telemetry layer
//! produces. Object key order is preserved.

use std::fmt;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number (integers render without a decimal point).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; insertion order is preserved.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Object field lookup (first match).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The boolean value, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The number value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The number value truncated to `u64`, if numeric and non-negative.
    pub fn as_u64(&self) -> Option<u64> {
        self.as_f64().filter(|n| *n >= 0.0).map(|n| n as u64)
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The fields, if this is an object.
    pub fn as_obj(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(fields) => Some(fields),
            _ => None,
        }
    }

    /// Parse a JSON document.
    pub fn parse(text: &str) -> Result<Json, String> {
        let mut p = Parser { bytes: text.as_bytes(), pos: 0 };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing input at byte {}", p.pos));
        }
        Ok(v)
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Json::Null => f.write_str("null"),
            Json::Bool(b) => write!(f, "{b}"),
            Json::Num(n) => {
                if n.fract() == 0.0 && n.abs() < 9.007_199_254_740_992e15 {
                    write!(f, "{}", *n as i64)
                } else {
                    write!(f, "{n}")
                }
            }
            Json::Str(s) => write_escaped(f, s),
            Json::Arr(items) => {
                f.write_str("[")?;
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{v}")?;
                }
                f.write_str("]")
            }
            Json::Obj(fields) => {
                f.write_str("{")?;
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write_escaped(f, k)?;
                    write!(f, ":{v}")?;
                }
                f.write_str("}")
            }
        }
    }
}

fn write_escaped(f: &mut fmt::Formatter<'_>, s: &str) -> fmt::Result {
    f.write_str("\"")?;
    for c in s.chars() {
        match c {
            '"' => f.write_str("\\\"")?,
            '\\' => f.write_str("\\\\")?,
            '\n' => f.write_str("\\n")?,
            '\t' => f.write_str("\\t")?,
            '\r' => f.write_str("\\r")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => write!(f, "{c}")?,
        }
    }
    f.write_str("\"")
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len() && self.bytes[self.pos].is_ascii_whitespace() {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected `{}` at byte {}", b as char, self.pos))
        }
    }

    fn literal(&mut self, lit: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(format!("unexpected input at byte {}", self.pos)),
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        while let Some(b) = self.peek() {
            if b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E') {
                self.pos += 1;
            } else {
                break;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("digits are utf-8");
        text.parse::<f64>().map(Json::Num).map_err(|_| format!("bad number `{text}`"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or("truncated \\u escape")?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?,
                                16,
                            )
                            .map_err(|_| "bad \\u escape")?;
                            // Surrogate pairs are not produced by our serializer.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err("bad escape".to_string()),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| "invalid utf-8 in string")?;
                    let c = rest.chars().next().expect("non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected `,` or `]` at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(format!("expected `,` or `}}` at byte {}", self.pos)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_and_parses_scalars() {
        assert_eq!(Json::Num(3.0).to_string(), "3");
        assert_eq!(Json::Num(3.5).to_string(), "3.5");
        assert_eq!(Json::parse("3.5").unwrap(), Json::Num(3.5));
        assert_eq!(Json::parse(" null ").unwrap(), Json::Null);
        assert_eq!(Json::parse("true").unwrap(), Json::Bool(true));
    }

    #[test]
    fn round_trips_nested_values() {
        let v = Json::Obj(vec![
            ("name".into(), Json::Str("data.sort \"x\"\n".into())),
            ("ns".into(), Json::Num(123456789.0)),
            ("children".into(), Json::Arr(vec![Json::Num(1.0), Json::Bool(false), Json::Null])),
        ]);
        let text = v.to_string();
        assert_eq!(Json::parse(&text).unwrap(), v);
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("12 34").is_err());
        assert!(Json::parse("\"open").is_err());
    }

    #[test]
    fn object_lookup() {
        let v = Json::parse(r#"{"a": 1, "b": {"c": "x"}}"#).unwrap();
        assert_eq!(v.get("a").and_then(Json::as_u64), Some(1));
        assert_eq!(v.get("b").and_then(|b| b.get("c")).and_then(Json::as_str), Some("x"));
        assert!(v.get("missing").is_none());
    }
}
