//! Event severity levels.

use std::fmt;
use std::str::FromStr;

/// Severity of an [`crate::Event`], ordered from most to least severe.
///
/// A level `l` passes a filter at `max` when `l <= max`, so
/// `Level::Error < Level::Trace`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Level {
    /// The operation failed.
    Error,
    /// Something surprising that does not stop the run.
    Warn,
    /// High-level progress (default for interactive output).
    Info,
    /// Detailed diagnostics (`-v`).
    Debug,
    /// Per-span noise (`--trace`).
    Trace,
}

impl Level {
    /// All levels, most severe first.
    pub const ALL: [Level; 5] =
        [Level::Error, Level::Warn, Level::Info, Level::Debug, Level::Trace];

    /// Lower-case name (`"error"`, `"warn"`, …).
    pub fn name(self) -> &'static str {
        match self {
            Level::Error => "error",
            Level::Warn => "warn",
            Level::Info => "info",
            Level::Debug => "debug",
            Level::Trace => "trace",
        }
    }

    pub(crate) fn from_u8(v: u8) -> Level {
        match v {
            0 => Level::Error,
            1 => Level::Warn,
            2 => Level::Info,
            3 => Level::Debug,
            _ => Level::Trace,
        }
    }
}

impl fmt::Display for Level {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl FromStr for Level {
    type Err = String;

    fn from_str(s: &str) -> Result<Level, String> {
        Level::ALL
            .into_iter()
            .find(|l| l.name() == s)
            .ok_or_else(|| format!("unknown level `{s}` (error|warn|info|debug|trace)"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering_matches_severity() {
        assert!(Level::Error < Level::Warn);
        assert!(Level::Info < Level::Trace);
    }

    #[test]
    fn round_trips_names() {
        for l in Level::ALL {
            assert_eq!(l.name().parse::<Level>().unwrap(), l);
            assert_eq!(Level::from_u8(l as u8), l);
        }
        assert!("loud".parse::<Level>().is_err());
    }
}
