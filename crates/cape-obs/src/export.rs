//! Exporters: Chrome `trace_event` JSON and JSON-lines streams.
//!
//! The Chrome format is the least-common-denominator of timeline viewers:
//! a file written here loads directly in `about:tracing` (Chrome) and
//! <https://ui.perfetto.dev> with per-thread lanes, nested slices, and the
//! span counters under each slice's `args`. We emit complete-duration
//! (`"ph": "X"`) events only, which need no begin/end pairing and are
//! robust to truncated buffers.

use crate::json::Json;
use crate::trace::TraceEvent;
use std::io::Write;
use std::sync::Mutex;

/// Convert captured events into one Chrome `trace_event` JSON document.
///
/// Timestamps and durations are microseconds (the format's unit), kept
/// fractional so nanosecond spans remain visible. Each slice's `args`
/// carry the trace id (hex) and the span's counters. `dropped` (from
/// [`TraceBuffer::dropped`](crate::trace::TraceBuffer::dropped)) is
/// reported under `otherData` so a truncated capture is self-describing.
pub fn chrome_trace(process_name: &str, events: &[TraceEvent], dropped: u64) -> Json {
    let mut out: Vec<Json> = Vec::with_capacity(events.len() + 1);
    // Process-name metadata event (ph "M").
    out.push(Json::Obj(vec![
        ("name".into(), Json::Str("process_name".into())),
        ("ph".into(), Json::Str("M".into())),
        ("pid".into(), Json::Num(1.0)),
        ("tid".into(), Json::Num(0.0)),
        ("args".into(), Json::Obj(vec![("name".into(), Json::Str(process_name.to_string()))])),
    ]));
    for e in events {
        let mut args: Vec<(String, Json)> = Vec::with_capacity(1 + e.counters.len());
        if e.trace_id != 0 {
            args.push(("trace_id".into(), Json::Str(format!("{:016x}", e.trace_id))));
        }
        for &(name, value) in &e.counters {
            args.push((name.to_string(), Json::Num(value as f64)));
        }
        out.push(Json::Obj(vec![
            ("name".into(), Json::Str(e.name.to_string())),
            ("cat".into(), Json::Str("cape".into())),
            ("ph".into(), Json::Str("X".into())),
            ("ts".into(), Json::Num(e.begin_ns as f64 / 1000.0)),
            ("dur".into(), Json::Num(e.dur_ns as f64 / 1000.0)),
            ("pid".into(), Json::Num(1.0)),
            ("tid".into(), Json::Num(e.tid as f64)),
            ("args".into(), Json::Obj(args)),
        ]));
    }
    Json::Obj(vec![
        ("traceEvents".into(), Json::Arr(out)),
        ("displayTimeUnit".into(), Json::Str("ms".into())),
        ("otherData".into(), Json::Obj(vec![("dropped_events".into(), Json::Num(dropped as f64))])),
    ])
}

/// A thread-safe JSON-lines sink: one JSON document per line, flushed per
/// write so a crash loses at most the line being written. Backs the
/// cape-serve access log.
pub struct JsonLinesWriter {
    out: Mutex<Box<dyn Write + Send>>,
}

impl std::fmt::Debug for JsonLinesWriter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JsonLinesWriter").finish_non_exhaustive()
    }
}

impl JsonLinesWriter {
    /// Append to (creating if needed) the file at `path`.
    pub fn create(path: impl AsRef<std::path::Path>) -> std::io::Result<Self> {
        let file = std::fs::OpenOptions::new().create(true).append(true).open(path)?;
        Ok(JsonLinesWriter::from_writer(Box::new(std::io::BufWriter::new(file))))
    }

    /// Wrap any writer (tests use an in-memory buffer).
    pub fn from_writer(out: Box<dyn Write + Send>) -> Self {
        JsonLinesWriter { out: Mutex::new(out) }
    }

    /// Write one JSON value as a line. Errors are reported, not panicked:
    /// an unwritable access log must never take down the service.
    pub fn write_line(&self, value: &Json) -> std::io::Result<()> {
        let mut out = self.out.lock().expect("jsonl lock");
        writeln!(out, "{value}")?;
        out.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn event(name: &'static str, begin: u64, dur: u64) -> TraceEvent {
        TraceEvent { trace_id: 7, name, tid: 3, begin_ns: begin, dur_ns: dur, counters: vec![] }
    }

    #[test]
    fn chrome_trace_shape_and_round_trip() {
        let events =
            vec![event("cli.batch_explain", 0, 5_000_000), event("serve.explain", 1_000, 2_000)];
        let doc = chrome_trace("cape", &events, 2);
        let parsed = Json::parse(&doc.to_string()).expect("exporter emits valid JSON");
        let items = parsed.get("traceEvents").and_then(Json::as_arr).unwrap();
        assert_eq!(items.len(), 3, "metadata + 2 slices");
        let slice = &items[1];
        assert_eq!(slice.get("ph").and_then(Json::as_str), Some("X"));
        assert_eq!(slice.get("name").and_then(Json::as_str), Some("cli.batch_explain"));
        assert_eq!(slice.get("dur").and_then(Json::as_f64), Some(5000.0));
        assert_eq!(
            slice.get("args").and_then(|a| a.get("trace_id")).and_then(Json::as_str),
            Some("0000000000000007")
        );
        assert_eq!(
            parsed.get("otherData").and_then(|o| o.get("dropped_events")).and_then(Json::as_u64),
            Some(2)
        );
    }

    #[test]
    fn jsonl_writes_one_parseable_line_per_entry() {
        #[derive(Clone, Default)]
        struct Buf(Arc<Mutex<Vec<u8>>>);
        impl Write for Buf {
            fn write(&mut self, data: &[u8]) -> std::io::Result<usize> {
                self.0.lock().unwrap().extend_from_slice(data);
                Ok(data.len())
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        let buf = Buf::default();
        let sink = JsonLinesWriter::from_writer(Box::new(buf.clone()));
        sink.write_line(&Json::Obj(vec![("a".into(), Json::Num(1.0))])).unwrap();
        sink.write_line(&Json::Obj(vec![("b".into(), Json::Str("x \"y\"".into()))])).unwrap();
        let text = String::from_utf8(buf.0.lock().unwrap().clone()).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        for line in lines {
            Json::parse(line).expect("each access-log line is standalone JSON");
        }
    }
}
