//! The recorder: one unit of telemetry collection (a CLI session, one
//! miner run, one test), combining a metrics registry, a span collector,
//! and an event pipeline with leveled sinks.

use crate::event::{Event, Sink};
use crate::level::Level;
use crate::registry::Registry;
use crate::ring::FlightRecorder;
use crate::snapshot::{build_tree, HistogramSummary, TelemetrySnapshot};
use crate::span::SpanCollector;
use crate::trace::{thread_lane, TraceBuffer, TraceEvent};
use std::sync::atomic::{AtomicBool, AtomicU8, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// A cheaply clonable handle to one telemetry collection unit.
///
/// Recorders do nothing until [installed](Recorder::install) on a thread;
/// every instrumentation call then records into *all* recorders installed
/// on the calling thread, so a per-run recorder (for `MiningStats`) and an
/// outer session recorder (for `--metrics` export) both observe the run.
#[derive(Clone, Default)]
pub struct Recorder {
    inner: Arc<Inner>,
}

impl std::fmt::Debug for Recorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Recorder").field("level", &self.level()).finish_non_exhaustive()
    }
}

pub(crate) struct Inner {
    pub(crate) start: Instant,
    level: AtomicU8,
    pub(crate) metrics: Registry,
    pub(crate) spans: SpanCollector,
    sinks: Mutex<Vec<Box<dyn Sink>>>,
    trace_capture: AtomicBool,
    traces: TraceBuffer,
    flight: FlightRecorder,
}

impl Default for Inner {
    fn default() -> Self {
        Inner {
            start: Instant::now(),
            level: AtomicU8::new(Level::Info as u8),
            metrics: Registry::new(),
            spans: SpanCollector::new(),
            sinks: Mutex::new(Vec::new()),
            trace_capture: AtomicBool::new(false),
            traces: TraceBuffer::default(),
            flight: FlightRecorder::default(),
        }
    }
}

impl Recorder {
    /// A fresh recorder at [`Level::Info`] with no sinks.
    pub fn new() -> Self {
        Recorder::default()
    }

    /// Maximum level events must have to reach this recorder's sinks.
    pub fn level(&self) -> Level {
        Level::from_u8(self.inner.level.load(Ordering::Relaxed))
    }

    /// Set the level filter.
    pub fn set_level(&self, level: Level) {
        self.inner.level.store(level as u8, Ordering::Relaxed);
    }

    /// Attach a sink; events at or below the level filter are delivered.
    pub fn add_sink(&self, sink: Box<dyn Sink>) {
        self.inner.sinks.lock().expect("sink lock").push(sink);
    }

    /// Whether an event at `level` would reach any sink.
    pub fn emits(&self, level: Level) -> bool {
        level <= self.level() && !self.inner.sinks.lock().expect("sink lock").is_empty()
    }

    /// Deliver an event (already past the level check) to every sink.
    pub(crate) fn emit(&self, level: Level, target: &'static str, message: &str) {
        let event = Event {
            level,
            target,
            message: message.to_string(),
            elapsed: self.inner.start.elapsed(),
        };
        for sink in self.inner.sinks.lock().expect("sink lock").iter_mut() {
            sink.emit(&event);
        }
    }

    pub(crate) fn inner(&self) -> &Inner {
        &self.inner
    }

    /// Whether two handles reference the same recorder.
    pub fn same_as(&self, other: &Recorder) -> bool {
        Arc::ptr_eq(&self.inner, &other.inner)
    }

    /// A counter's current value (zero if never touched).
    pub fn counter(&self, name: &str) -> u64 {
        self.inner.metrics.counter(name)
    }

    /// Start capturing per-close [`TraceEvent`]s (wall-clock begin/end
    /// per span) for Chrome-trace export. Off by default: aggregation is
    /// always on, event capture only when someone will export it.
    pub fn enable_trace_capture(&self) {
        self.inner.trace_capture.store(true, Ordering::Relaxed);
    }

    /// Whether trace-event capture is on.
    pub fn trace_capture_enabled(&self) -> bool {
        self.inner.trace_capture.load(Ordering::Relaxed)
    }

    /// Record one trace event if capture is enabled. `end` is the span's
    /// wall-clock close; the begin offset is derived from this recorder's
    /// own start so events from recorders installed at different times
    /// stay on one timeline.
    pub(crate) fn capture_trace(
        &self,
        name: &'static str,
        end: Instant,
        dur_ns: u64,
        counters: &[(&'static str, u64)],
    ) {
        if !self.trace_capture_enabled() {
            return;
        }
        let end_off = end.saturating_duration_since(self.inner.start).as_nanos() as u64;
        self.inner.traces.push(TraceEvent {
            trace_id: crate::current_trace_raw(),
            name,
            tid: thread_lane(),
            begin_ns: end_off.saturating_sub(dur_ns),
            dur_ns,
            counters: counters.to_vec(),
        });
    }

    /// The captured trace events, ordered by begin time.
    pub fn trace_events(&self) -> Vec<TraceEvent> {
        self.inner.traces.events()
    }

    /// Trace events dropped because the capture buffer was full.
    pub fn trace_dropped(&self) -> u64 {
        self.inner.traces.dropped()
    }

    /// Render the captured events as a Chrome `trace_event` JSON document
    /// (loadable in `about:tracing` / Perfetto).
    pub fn chrome_trace(&self, process_name: &str) -> crate::Json {
        crate::export::chrome_trace(process_name, &self.trace_events(), self.trace_dropped())
    }

    /// Write the Chrome trace to a file.
    pub fn write_chrome_trace(
        &self,
        path: impl AsRef<std::path::Path>,
        process_name: &str,
    ) -> std::io::Result<()> {
        std::fs::write(path, format!("{}\n", self.chrome_trace(process_name)))
    }

    /// This recorder's flight recorder (completed-request ring).
    pub fn flight(&self) -> &FlightRecorder {
        &self.inner.flight
    }

    /// Export the current spans and metrics.
    pub fn snapshot(&self) -> TelemetrySnapshot {
        let flight = self.inner.flight.snapshot();
        let mut snap = TelemetrySnapshot {
            spans: build_tree(self.inner.spans.entries()),
            requests: (flight.recorded > 0).then_some(flight),
            ..Default::default()
        };
        self.inner.metrics.for_each_counter(|name, v| {
            snap.counters.insert(name.to_string(), v);
        });
        self.inner.metrics.for_each_gauge(|name, v| {
            snap.gauges.insert(name.to_string(), v);
        });
        self.inner.metrics.for_each_histogram(|name, h| {
            snap.histograms.insert(
                name.to_string(),
                HistogramSummary {
                    count: h.count(),
                    sum_ns: h.sum(),
                    p50_ns: h.quantile(0.5),
                    p95_ns: h.quantile(0.95),
                    p99_ns: h.quantile(0.99),
                    max_ns: h.max(),
                },
            );
        });
        snap
    }
}
