//! The recorder: one unit of telemetry collection (a CLI session, one
//! miner run, one test), combining a metrics registry, a span collector,
//! and an event pipeline with leveled sinks.

use crate::event::{Event, Sink};
use crate::level::Level;
use crate::registry::Registry;
use crate::snapshot::{build_tree, HistogramSummary, TelemetrySnapshot};
use crate::span::SpanCollector;
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// A cheaply clonable handle to one telemetry collection unit.
///
/// Recorders do nothing until [installed](Recorder::install) on a thread;
/// every instrumentation call then records into *all* recorders installed
/// on the calling thread, so a per-run recorder (for `MiningStats`) and an
/// outer session recorder (for `--metrics` export) both observe the run.
#[derive(Clone, Default)]
pub struct Recorder {
    inner: Arc<Inner>,
}

impl std::fmt::Debug for Recorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Recorder").field("level", &self.level()).finish_non_exhaustive()
    }
}

pub(crate) struct Inner {
    pub(crate) start: Instant,
    level: AtomicU8,
    pub(crate) metrics: Registry,
    pub(crate) spans: SpanCollector,
    sinks: Mutex<Vec<Box<dyn Sink>>>,
}

impl Default for Inner {
    fn default() -> Self {
        Inner {
            start: Instant::now(),
            level: AtomicU8::new(Level::Info as u8),
            metrics: Registry::new(),
            spans: SpanCollector::new(),
            sinks: Mutex::new(Vec::new()),
        }
    }
}

impl Recorder {
    /// A fresh recorder at [`Level::Info`] with no sinks.
    pub fn new() -> Self {
        Recorder::default()
    }

    /// Maximum level events must have to reach this recorder's sinks.
    pub fn level(&self) -> Level {
        Level::from_u8(self.inner.level.load(Ordering::Relaxed))
    }

    /// Set the level filter.
    pub fn set_level(&self, level: Level) {
        self.inner.level.store(level as u8, Ordering::Relaxed);
    }

    /// Attach a sink; events at or below the level filter are delivered.
    pub fn add_sink(&self, sink: Box<dyn Sink>) {
        self.inner.sinks.lock().expect("sink lock").push(sink);
    }

    /// Whether an event at `level` would reach any sink.
    pub fn emits(&self, level: Level) -> bool {
        level <= self.level() && !self.inner.sinks.lock().expect("sink lock").is_empty()
    }

    /// Deliver an event (already past the level check) to every sink.
    pub(crate) fn emit(&self, level: Level, target: &'static str, message: &str) {
        let event = Event {
            level,
            target,
            message: message.to_string(),
            elapsed: self.inner.start.elapsed(),
        };
        for sink in self.inner.sinks.lock().expect("sink lock").iter_mut() {
            sink.emit(&event);
        }
    }

    pub(crate) fn inner(&self) -> &Inner {
        &self.inner
    }

    /// Whether two handles reference the same recorder.
    pub fn same_as(&self, other: &Recorder) -> bool {
        Arc::ptr_eq(&self.inner, &other.inner)
    }

    /// A counter's current value (zero if never touched).
    pub fn counter(&self, name: &str) -> u64 {
        self.inner.metrics.counter(name)
    }

    /// Export the current spans and metrics.
    pub fn snapshot(&self) -> TelemetrySnapshot {
        let mut snap = TelemetrySnapshot {
            spans: build_tree(self.inner.spans.entries()),
            ..Default::default()
        };
        self.inner.metrics.for_each_counter(|name, v| {
            snap.counters.insert(name.to_string(), v);
        });
        self.inner.metrics.for_each_gauge(|name, v| {
            snap.gauges.insert(name.to_string(), v);
        });
        self.inner.metrics.for_each_histogram(|name, h| {
            snap.histograms.insert(
                name.to_string(),
                HistogramSummary {
                    count: h.count(),
                    sum_ns: h.sum(),
                    p50_ns: h.quantile(0.5),
                    p95_ns: h.quantile(0.95),
                    p99_ns: h.quantile(0.99),
                    max_ns: h.max(),
                },
            );
        });
        snap
    }
}
