//! The metrics registry: named counters, gauges, and latency histograms.
//!
//! Metric names are `&'static str` in the `subsystem.verb_noun` scheme
//! (`mining.candidates_considered`, `regress.fit_ns`). The hot path — an
//! existing counter — takes a read lock plus one atomic add.

use crate::histogram::Histogram;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

/// Thread-safe registry of counters, gauges, and histograms.
#[derive(Debug, Default)]
pub struct Registry {
    counters: RwLock<HashMap<&'static str, Arc<AtomicU64>>>,
    gauges: RwLock<HashMap<&'static str, Arc<AtomicU64>>>, // f64 bits
    histograms: RwLock<HashMap<&'static str, Arc<Histogram>>>,
}

fn intern<T: Default>(map: &RwLock<HashMap<&'static str, Arc<T>>>, name: &'static str) -> Arc<T> {
    if let Some(v) = map.read().expect("registry lock").get(name) {
        return Arc::clone(v);
    }
    Arc::clone(map.write().expect("registry lock").entry(name).or_default())
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    /// Add `delta` to a counter, creating it at zero first. A zero delta
    /// still creates the counter, so snapshots list every metric a run
    /// publishes even when nothing was counted.
    pub fn counter_add(&self, name: &'static str, delta: u64) {
        intern(&self.counters, name).fetch_add(delta, Ordering::Relaxed);
    }

    /// Current counter value (zero if never touched).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters
            .read()
            .expect("registry lock")
            .get(name)
            .map_or(0, |c| c.load(Ordering::Relaxed))
    }

    /// Set a gauge to `value`.
    pub fn gauge_set(&self, name: &'static str, value: f64) {
        intern(&self.gauges, name).store(value.to_bits(), Ordering::Relaxed);
    }

    /// Current gauge value, if ever set.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges
            .read()
            .expect("registry lock")
            .get(name)
            .map(|g| f64::from_bits(g.load(Ordering::Relaxed)))
    }

    /// Record one observation into a histogram, creating it if needed.
    pub fn observe(&self, name: &'static str, value: u64) {
        intern(&self.histograms, name).observe(value);
    }

    /// The histogram registered under `name`, if any.
    pub fn histogram(&self, name: &str) -> Option<Arc<Histogram>> {
        self.histograms.read().expect("registry lock").get(name).map(Arc::clone)
    }

    /// Visit every counter as `(name, value)`.
    pub fn for_each_counter(&self, mut f: impl FnMut(&'static str, u64)) {
        for (name, c) in self.counters.read().expect("registry lock").iter() {
            f(name, c.load(Ordering::Relaxed));
        }
    }

    /// Visit every gauge as `(name, value)`.
    pub fn for_each_gauge(&self, mut f: impl FnMut(&'static str, f64)) {
        for (name, g) in self.gauges.read().expect("registry lock").iter() {
            f(name, f64::from_bits(g.load(Ordering::Relaxed)));
        }
    }

    /// Visit every histogram.
    pub fn for_each_histogram(&self, mut f: impl FnMut(&'static str, &Histogram)) {
        for (name, h) in self.histograms.read().expect("registry lock").iter() {
            f(name, h);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let r = Registry::new();
        r.counter_add("a.b", 2);
        r.counter_add("a.b", 3);
        assert_eq!(r.counter("a.b"), 5);
        assert_eq!(r.counter("missing"), 0);
        r.counter_add("zeroed", 0);
        let mut names = Vec::new();
        r.for_each_counter(|n, _| names.push(n));
        assert!(names.contains(&"zeroed"), "zero add must still register");
    }

    #[test]
    fn gauges_overwrite() {
        let r = Registry::new();
        assert_eq!(r.gauge("g"), None);
        r.gauge_set("g", 1.5);
        r.gauge_set("g", -2.25);
        assert_eq!(r.gauge("g"), Some(-2.25));
    }

    #[test]
    fn histograms_record() {
        let r = Registry::new();
        r.observe("h", 10);
        r.observe("h", 20);
        let h = r.histogram("h").unwrap();
        assert_eq!(h.count(), 2);
        assert_eq!(h.max(), 20);
    }
}
