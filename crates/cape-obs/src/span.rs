//! Hierarchical span aggregation.
//!
//! A span is a named scope of work; nesting follows the thread's RAII
//! guard stack, so `data.sort` opened while `mining.mine` is active is
//! recorded under the path `mining.mine/data.sort`. The collector keeps
//! one aggregate (invocation count, total wall time, per-span counters)
//! per distinct path and is thread-safe, so parallel-miner workers that
//! attach the owning thread's context aggregate into the same tree.

use std::collections::HashMap;
use std::sync::Mutex;

/// A span path: the names of every open ancestor plus the span itself.
pub type SpanPath = Box<[&'static str]>;

/// Aggregated measurements for one span path.
#[derive(Debug, Clone, Default)]
pub struct SpanAgg {
    /// Times a span with this path closed.
    pub count: u64,
    /// Total wall-clock nanoseconds across those closes (children included).
    pub total_ns: u64,
    /// Per-span counters attached via [`crate::SpanGuard::add`].
    pub counters: HashMap<&'static str, u64>,
}

/// Thread-safe map from span path to aggregate.
#[derive(Debug, Default)]
pub struct SpanCollector {
    map: Mutex<HashMap<SpanPath, SpanAgg>>,
}

impl SpanCollector {
    /// An empty collector.
    pub fn new() -> Self {
        SpanCollector::default()
    }

    /// Fold one span close into the aggregate for `path`.
    pub fn record(&self, path: &[&'static str], elapsed_ns: u64, counters: &[(&'static str, u64)]) {
        let mut map = self.map.lock().expect("span lock");
        let agg = match map.get_mut(path) {
            Some(agg) => agg,
            None => map.entry(path.to_vec().into_boxed_slice()).or_default(),
        };
        agg.count += 1;
        agg.total_ns += elapsed_ns;
        for &(name, delta) in counters {
            *agg.counters.entry(name).or_default() += delta;
        }
    }

    /// Snapshot every `(path, aggregate)` pair, sorted by path for
    /// deterministic output.
    pub fn entries(&self) -> Vec<(SpanPath, SpanAgg)> {
        let map = self.map.lock().expect("span lock");
        let mut out: Vec<(SpanPath, SpanAgg)> =
            map.iter().map(|(k, v)| (k.clone(), v.clone())).collect();
        out.sort_by(|a, b| a.0.cmp(&b.0));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aggregates_by_path() {
        let c = SpanCollector::new();
        c.record(&["mine", "data.sort"], 100, &[("rows", 5)]);
        c.record(&["mine", "data.sort"], 50, &[("rows", 3)]);
        c.record(&["mine"], 500, &[]);
        let entries = c.entries();
        assert_eq!(entries.len(), 2);
        let sort = entries.iter().find(|(p, _)| p.len() == 2).unwrap();
        assert_eq!(sort.1.count, 2);
        assert_eq!(sort.1.total_ns, 150);
        assert_eq!(sort.1.counters["rows"], 8);
    }
}
