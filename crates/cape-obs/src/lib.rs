#![warn(missing_docs)]

//! # cape-obs — observability substrate for the CAPE workspace
//!
//! Zero-dependency (std-only) tracing spans, metrics, leveled events, and
//! JSON telemetry:
//!
//! * [`Recorder`] — one unit of collection (a CLI session, one miner run,
//!   one test) holding a metrics registry, a span collector, and sinks;
//! * [`span`] — RAII scoped timers with parent/child nesting and per-span
//!   counters; parallel workers [attach](ThreadContext) the spawning
//!   thread's context so their spans aggregate into the same tree;
//! * [`counter_add`] / [`gauge_set`] / [`observe_ns`] — named metrics with
//!   log-scale latency histograms (p50/p95/p99/max);
//! * [`event`] and the level helpers ([`error`], [`warn`], [`info`],
//!   [`debug`], [`trace`]) — leveled events with pluggable sinks
//!   ([`StderrSink`] pretty-printer, [`JsonLinesSink`]);
//! * [`TelemetrySnapshot`] — a JSON-exportable view of everything above,
//!   including the query/regression/other phase breakdown mining reports.
//!
//! Instrumentation is free when no recorder is installed on the calling
//! thread: every entry point checks a thread-local stack first and
//! returns without taking a timestamp or a lock.
//!
//! ```
//! use cape_obs as obs;
//!
//! let rec = obs::Recorder::new();
//! let _install = rec.install();
//! {
//!     let mut span = obs::span("data.sort");
//!     span.add("rows", 128);
//! }
//! obs::counter_add("mining.candidates_considered", 3);
//! drop(_install);
//!
//! let snap = rec.snapshot();
//! assert_eq!(snap.counter("mining.candidates_considered"), 3);
//! assert_eq!(snap.spans[0].name, "data.sort");
//! ```

mod event;
mod export;
mod histogram;
mod json;
mod level;
mod recorder;
mod registry;
mod ring;
mod snapshot;
mod span;
mod trace;

pub use event::{Event, JsonLinesSink, Sink, StderrSink};
pub use export::{chrome_trace, JsonLinesWriter};
pub use histogram::Histogram;
pub use json::Json;
pub use level::Level;
pub use recorder::Recorder;
pub use registry::Registry;
pub use ring::{FlightRecorder, FlightSnapshot, RequestSummary, SlowRequest};
pub use snapshot::{HistogramSummary, PhaseBreakdown, SpanNode, TelemetrySnapshot};
pub use span::{SpanAgg, SpanCollector, SpanPath};
pub use trace::{thread_lane, TraceBuffer, TraceEvent, TraceId};

use std::cell::RefCell;
use std::time::Instant;

#[derive(Default)]
struct ThreadState {
    recorders: Vec<Recorder>,
    path: Vec<&'static str>,
    trace: Option<TraceId>,
}

thread_local! {
    static TLS: RefCell<ThreadState> = RefCell::new(ThreadState::default());
}

/// Clones of the recorders currently installed on this thread (innermost
/// last). Used by instrumentation after dropping the thread-local borrow.
fn installed() -> Vec<Recorder> {
    TLS.with(|t| t.borrow().recorders.clone())
}

/// The innermost recorder installed on the current thread, if any —
/// for handing to a subsystem that wants to *read* the same telemetry
/// this thread is writing (e.g. a server's `/metrics` endpoint).
pub fn current_recorder() -> Option<Recorder> {
    TLS.with(|t| t.borrow().recorders.last().cloned())
}

fn any_installed() -> bool {
    TLS.with(|t| !t.borrow().recorders.is_empty())
}

impl Recorder {
    /// Install this recorder on the current thread until the guard drops.
    /// Guards must drop in LIFO order (the natural scoping).
    pub fn install(&self) -> InstallGuard {
        TLS.with(|t| t.borrow_mut().recorders.push(self.clone()));
        InstallGuard { recorder: self.clone(), _not_send: std::marker::PhantomData }
    }
}

/// Uninstalls its recorder from the thread on drop.
#[must_use = "the recorder is uninstalled when the guard drops"]
pub struct InstallGuard {
    recorder: Recorder,
    _not_send: std::marker::PhantomData<*const ()>,
}

impl Drop for InstallGuard {
    fn drop(&mut self) {
        TLS.with(|t| {
            let recorders = &mut t.borrow_mut().recorders;
            let popped = recorders.pop();
            debug_assert!(
                popped.as_ref().is_some_and(|r| r.same_as(&self.recorder)),
                "install guards dropped out of order"
            );
        });
    }
}

/// A captured copy of the calling thread's observability context (the
/// installed recorders, the open span path, and the active trace id), for
/// handing to worker threads so their spans and counters aggregate under
/// the same tree and keep the originating request's trace id.
#[derive(Debug, Clone, Default)]
pub struct ThreadContext {
    recorders: Vec<Recorder>,
    path: Vec<&'static str>,
    trace: Option<TraceId>,
}

impl ThreadContext {
    /// Capture the current thread's context.
    pub fn capture() -> ThreadContext {
        TLS.with(|t| {
            let s = t.borrow();
            ThreadContext { recorders: s.recorders.clone(), path: s.path.clone(), trace: s.trace }
        })
    }

    /// Install this context on the current (worker) thread until the
    /// guard drops. Any previously installed state is saved and restored.
    pub fn attach(&self) -> AttachGuard {
        let prev = TLS.with(|t| {
            let mut s = t.borrow_mut();
            ThreadState {
                recorders: std::mem::replace(&mut s.recorders, self.recorders.clone()),
                path: std::mem::replace(&mut s.path, self.path.clone()),
                trace: std::mem::replace(&mut s.trace, self.trace),
            }
        });
        AttachGuard { prev: Some(prev), _not_send: std::marker::PhantomData }
    }
}

/// Restores the thread's previous context on drop.
#[must_use = "the context is detached when the guard drops"]
pub struct AttachGuard {
    prev: Option<ThreadState>,
    _not_send: std::marker::PhantomData<*const ()>,
}

impl Drop for AttachGuard {
    fn drop(&mut self) {
        if let Some(prev) = self.prev.take() {
            TLS.with(|t| *t.borrow_mut() = prev);
        }
    }
}

/// RAII scoped timer. Created by [`span`]; records on drop into every
/// recorder installed on the thread at that moment.
#[must_use = "a span measures the scope it is alive in"]
pub struct SpanGuard {
    start: Option<Instant>,
    name: &'static str,
    histogram: Option<&'static str>,
    counters: Vec<(&'static str, u64)>,
}

impl SpanGuard {
    /// Attach (or bump) a per-span counter, flushed when the span closes.
    pub fn add(&mut self, counter: &'static str, delta: u64) {
        if self.start.is_none() {
            return;
        }
        match self.counters.iter_mut().find(|(n, _)| *n == counter) {
            Some((_, v)) => *v += delta,
            None => self.counters.push((counter, delta)),
        }
    }

    /// Whether any recorder is listening (false ⇒ the span is free).
    pub fn is_active(&self) -> bool {
        self.start.is_some()
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(start) = self.start else { return };
        let end = Instant::now();
        let elapsed_ns = end.saturating_duration_since(start).as_nanos() as u64;
        let (recorders, path) = TLS.with(|t| {
            let mut s = t.borrow_mut();
            debug_assert_eq!(s.path.last(), Some(&self.name), "span guards dropped out of order");
            let path = s.path.clone().into_boxed_slice();
            s.path.pop();
            (s.recorders.clone(), path)
        });
        for rec in &recorders {
            rec.inner().spans.record(&path, elapsed_ns, &self.counters);
            rec.capture_trace(self.name, end, elapsed_ns, &self.counters);
            if let Some(hist) = self.histogram {
                rec.inner().metrics.observe(hist, elapsed_ns);
            }
            if rec.emits(Level::Trace) {
                rec.emit(
                    Level::Trace,
                    "span",
                    &format!("{} closed in {elapsed_ns}ns", path.join("/")),
                );
            }
        }
    }
}

/// Enter a trace scope: until the guard drops, spans closed on this
/// thread (and on workers that [attach](ThreadContext) a context captured
/// inside the scope) are attributed to `id`. Scopes nest; the previous id
/// is restored on drop.
pub fn trace_scope(id: TraceId) -> TraceScopeGuard {
    let prev = TLS.with(|t| t.borrow_mut().trace.replace(id));
    TraceScopeGuard { prev, _not_send: std::marker::PhantomData }
}

/// The trace id active on this thread, if any.
pub fn current_trace() -> Option<TraceId> {
    TLS.with(|t| t.borrow().trace)
}

/// The active trace id as a raw u64, 0 when none (the form trace events
/// carry).
pub(crate) fn current_trace_raw() -> u64 {
    current_trace().map_or(0, TraceId::as_u64)
}

/// Restores the previously active trace id on drop.
#[must_use = "the trace scope ends when the guard drops"]
pub struct TraceScopeGuard {
    prev: Option<TraceId>,
    _not_send: std::marker::PhantomData<*const ()>,
}

impl Drop for TraceScopeGuard {
    fn drop(&mut self) {
        TLS.with(|t| t.borrow_mut().trace = self.prev);
    }
}

/// Record a completed interval `[begin, end]` that was *not* measured by
/// an open [`span`] — e.g. queue wait measured from a submission
/// timestamp stamped on another thread. The interval aggregates into the
/// span tree as a child `name` of the current path and, on
/// capture-enabled recorders, becomes a trace event with true wall-clock
/// begin/end. No-op without an installed recorder.
pub fn interval(name: &'static str, begin: Instant, end: Instant) {
    let (recorders, mut path) = TLS.with(|t| {
        let s = t.borrow();
        (s.recorders.clone(), s.path.clone())
    });
    if recorders.is_empty() {
        return;
    }
    path.push(name);
    let dur_ns = end.saturating_duration_since(begin).as_nanos() as u64;
    for rec in &recorders {
        rec.inner().spans.record(&path, dur_ns, &[]);
        rec.capture_trace(name, end, dur_ns, &[]);
    }
}

/// Push one completed-request record into the flight recorder of every
/// recorder installed on this thread. `spans` is the request's own span
/// tree (kept only for slowest-N requests past each recorder's
/// threshold).
pub fn flight_record(summary: &RequestSummary, spans: &[SpanNode]) {
    for rec in installed() {
        let mut summary = summary.clone();
        summary.end_off_ns = rec.inner().start.elapsed().as_nanos() as u64;
        rec.flight().record(summary, spans);
    }
}

/// Whether any installed recorder would keep a flight record — callers
/// can skip building per-request summaries and span trees when false.
pub fn flight_wanted() -> bool {
    installed().iter().any(|r| r.flight().enabled())
}

/// Open a span named `name` (scheme `subsystem.verb_noun`). No-op when no
/// recorder is installed on this thread.
pub fn span(name: &'static str) -> SpanGuard {
    span_impl(name, None)
}

/// Like [`span`], but additionally records the span's duration into the
/// latency histogram `histogram` on every close.
pub fn span_with_histogram(name: &'static str, histogram: &'static str) -> SpanGuard {
    span_impl(name, Some(histogram))
}

fn span_impl(name: &'static str, histogram: Option<&'static str>) -> SpanGuard {
    let active = TLS.with(|t| {
        let mut s = t.borrow_mut();
        if s.recorders.is_empty() {
            false
        } else {
            s.path.push(name);
            true
        }
    });
    SpanGuard { start: active.then(Instant::now), name, histogram, counters: Vec::new() }
}

/// Add `delta` to the named counter in every installed recorder. A zero
/// delta still registers the counter (so snapshots list it).
pub fn counter_add(name: &'static str, delta: u64) {
    for rec in installed() {
        rec.inner().metrics.counter_add(name, delta);
    }
}

/// Set the named gauge in every installed recorder.
pub fn gauge_set(name: &'static str, value: f64) {
    for rec in installed() {
        rec.inner().metrics.gauge_set(name, value);
    }
}

/// Record a nanosecond observation into the named latency histogram of
/// every installed recorder.
pub fn observe_ns(name: &'static str, ns: u64) {
    for rec in installed() {
        rec.inner().metrics.observe(name, ns);
    }
}

/// Whether an event at `level` would reach any sink of any installed
/// recorder — check before formatting an expensive message.
pub fn enabled(level: Level) -> bool {
    if !any_installed() {
        return false;
    }
    installed().iter().any(|r| r.emits(level))
}

/// Emit a leveled event. The message closure runs only if some installed
/// recorder has a sink accepting `level`.
pub fn event(level: Level, target: &'static str, message: impl FnOnce() -> String) {
    if !any_installed() {
        return;
    }
    let recorders: Vec<Recorder> = installed().into_iter().filter(|r| r.emits(level)).collect();
    if recorders.is_empty() {
        return;
    }
    let msg = message();
    for rec in recorders {
        rec.emit(level, target, &msg);
    }
}

/// Emit at [`Level::Error`].
pub fn error(target: &'static str, message: impl FnOnce() -> String) {
    event(Level::Error, target, message);
}

/// Emit at [`Level::Warn`].
pub fn warn(target: &'static str, message: impl FnOnce() -> String) {
    event(Level::Warn, target, message);
}

/// Emit at [`Level::Info`].
pub fn info(target: &'static str, message: impl FnOnce() -> String) {
    event(Level::Info, target, message);
}

/// Emit at [`Level::Debug`].
pub fn debug(target: &'static str, message: impl FnOnce() -> String) {
    event(Level::Debug, target, message);
}

/// Emit at [`Level::Trace`].
pub fn trace(target: &'static str, message: impl FnOnce() -> String) {
    event(Level::Trace, target, message);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_recorder_means_inactive_span() {
        let s = span("data.sort");
        assert!(!s.is_active());
        counter_add("orphan", 1); // must not panic
        assert!(!enabled(Level::Error));
    }

    #[test]
    fn nested_recorders_both_observe() {
        let outer = Recorder::new();
        let inner = Recorder::new();
        let _a = outer.install();
        {
            let _b = inner.install();
            counter_add("k", 2);
        }
        counter_add("k", 1); // inner uninstalled: outer only
        assert_eq!(outer.counter("k"), 3);
        assert_eq!(inner.counter("k"), 2);
    }

    #[test]
    fn span_nesting_builds_paths() {
        let rec = Recorder::new();
        let _g = rec.install();
        {
            let _outer = span("mine");
            let _inner = span("data.sort");
        }
        drop(_g);
        let snap = rec.snapshot();
        assert_eq!(snap.spans.len(), 1);
        assert_eq!(snap.spans[0].name, "mine");
        assert_eq!(snap.spans[0].children[0].name, "data.sort");
    }
}
