//! Integration tests for the recorder as a whole: span timing, cross-
//! thread aggregation, and snapshot JSON round-trips.

use cape_obs::{Json, Recorder, TelemetrySnapshot, ThreadContext};
use std::time::Duration;

fn find<'a>(nodes: &'a [cape_obs::SpanNode], name: &str) -> Option<&'a cape_obs::SpanNode> {
    for n in nodes {
        if n.name == name {
            return Some(n);
        }
        if let Some(hit) = find(&n.children, name) {
            return Some(hit);
        }
    }
    None
}

#[test]
fn parent_span_time_covers_children() {
    let rec = Recorder::new();
    let guard = rec.install();
    {
        let _outer = cape_obs::span("test.outer");
        for _ in 0..3 {
            let _inner = cape_obs::span("test.inner");
            std::thread::sleep(Duration::from_millis(2));
        }
    }
    drop(guard);
    let snap = rec.snapshot();
    let outer = find(&snap.spans, "test.outer").expect("outer span");
    let inner = find(&outer.children, "test.inner").expect("inner nested");
    assert_eq!(outer.count, 1);
    assert_eq!(inner.count, 3);
    // Wall-clock monotonicity: the parent was open the whole time the
    // children ran, and each child slept ≥ 2ms.
    assert!(inner.total_ns >= 3 * 2_000_000, "inner too fast: {}", inner.total_ns);
    assert!(outer.total_ns >= inner.total_ns, "parent shorter than child");
}

#[test]
fn counters_aggregate_across_threads() {
    const THREADS: u64 = 8;
    const PER_THREAD: u64 = 10_000;
    let rec = Recorder::new();
    let guard = rec.install();
    {
        let _root = cape_obs::span("test.fanout");
        let ctx = ThreadContext::capture();
        std::thread::scope(|scope| {
            for t in 0..THREADS {
                let ctx = &ctx;
                scope.spawn(move || {
                    let _obs = ctx.attach();
                    let mut span = cape_obs::span("test.worker");
                    for _ in 0..PER_THREAD {
                        cape_obs::counter_add("test.items", 1);
                    }
                    span.add("slices", 1);
                    cape_obs::observe_ns("test.worker_ns", (t + 1) * 1_000);
                });
            }
        });
    }
    drop(guard);
    let snap = rec.snapshot();
    // No increments lost to races, no double counting.
    assert_eq!(snap.counter("test.items"), THREADS * PER_THREAD);
    let worker = find(&snap.spans, "test.worker").expect("worker spans attached under root");
    assert_eq!(worker.count, THREADS);
    assert_eq!(worker.counters.get("slices"), Some(&THREADS));
    let hist = &snap.histograms["test.worker_ns"];
    assert_eq!(hist.count, THREADS);
    assert_eq!(hist.max_ns, THREADS * 1_000);
}

#[test]
fn snapshot_round_trips_through_json() {
    let rec = Recorder::new();
    let guard = rec.install();
    {
        let mut span = cape_obs::span("test.root");
        span.add("widgets", 7);
        let _child = cape_obs::span("data.scan");
    }
    cape_obs::counter_add("test.count", 42);
    cape_obs::gauge_set("test.ratio", 0.5);
    for ns in [100, 1_000, 10_000, 1_000_000] {
        cape_obs::observe_ns("test.lat_ns", ns);
    }
    drop(guard);

    let snap = rec.snapshot();
    let text = snap.to_json().to_string();
    let parsed = Json::parse(&text).expect("own JSON parses");
    let back = TelemetrySnapshot::from_json(&parsed).expect("snapshot deserializes");
    assert_eq!(back, snap);

    // The derived phases block is part of the document.
    let phases = parsed.get("phases").expect("phases present");
    assert!(phases.get("query_ns").and_then(Json::as_u64).unwrap() > 0);
}

#[test]
fn histogram_percentiles_are_ordered_and_max_exact() {
    let rec = Recorder::new();
    let guard = rec.install();
    for i in 1..=1000u64 {
        cape_obs::observe_ns("test.lat_ns", i * 1_000);
    }
    drop(guard);
    let h = &rec.snapshot().histograms["test.lat_ns"];
    assert_eq!(h.count, 1000);
    assert!(h.p50_ns <= h.p95_ns && h.p95_ns <= h.p99_ns && h.p99_ns <= h.max_ns);
    assert_eq!(h.max_ns, 1_000_000);
    // Log-scale buckets: estimates are within a factor of two of truth.
    assert!(h.p50_ns >= 250_000 && h.p50_ns <= 1_000_000, "p50 {}", h.p50_ns);
}
