//! Edge-case tests across the cape-obs public API: histogram percentiles
//! at tiny sample counts, span nesting across worker attach/detach,
//! flight-ring wraparound at exactly capacity, and Chrome-trace / JSON
//! escaping of hostile strings.

use cape_obs::{
    chrome_trace, FlightRecorder, Histogram, Json, Recorder, RequestSummary, ThreadContext,
    TraceEvent, TraceId,
};

#[test]
fn histogram_quantiles_with_zero_and_one_samples() {
    let h = Histogram::new();
    assert_eq!(h.count(), 0);
    for q in [0.0, 0.5, 0.95, 0.99, 1.0] {
        assert_eq!(h.quantile(q), 0, "empty histogram must answer 0 for q={q}");
    }
    assert_eq!(h.max(), 0);

    h.observe(1_500);
    assert_eq!(h.count(), 1);
    assert_eq!(h.max(), 1_500);
    let p50 = h.quantile(0.5);
    let p99 = h.quantile(0.99);
    assert_eq!(p50, p99, "one sample: every quantile is that sample's bucket");
    assert!(p50 >= 1_500, "bucket upper bound covers the sample, got {p50}");

    // A single-sample histogram through the snapshot path too.
    let rec = Recorder::new();
    let guard = rec.install();
    cape_obs::observe_ns("edge.single_ns", 1_500);
    drop(guard);
    let snap = rec.snapshot();
    let summary = &snap.histograms["edge.single_ns"];
    assert_eq!(summary.count, 1);
    assert_eq!(summary.p50_ns, summary.p99_ns);
    assert_eq!(summary.max_ns, 1_500);
}

#[test]
fn span_nesting_survives_thread_context_attach_detach() {
    let rec = Recorder::new();
    let guard = rec.install();
    {
        let _outer = cape_obs::span("edge.outer");
        // Capture while `edge.outer` is open; the worker's spans must nest
        // under it even though they close on another thread.
        let ctx = ThreadContext::capture();
        let worker = std::thread::spawn(move || {
            let _attach = ctx.attach();
            let _inner = cape_obs::span("edge.worker");
            cape_obs::counter_add("edge.worker_ran", 1);
            // Guard drops here: span recorded, then context detached.
        });
        worker.join().unwrap();

        // After the worker detached, this thread's path is unchanged:
        // a sibling span still lands under `edge.outer`, not under any
        // leftover worker state.
        let _sibling = cape_obs::span("edge.sibling");
    }
    drop(guard);

    let snap = rec.snapshot();
    assert_eq!(snap.counter("edge.worker_ran"), 1);
    assert_eq!(snap.spans.len(), 1, "one root: {:?}", snap.spans);
    let root = &snap.spans[0];
    assert_eq!(root.name, "edge.outer");
    let child_names: Vec<&str> = root.children.iter().map(|c| c.name.as_str()).collect();
    assert_eq!(child_names, vec!["edge.sibling", "edge.worker"], "children sorted by name");
    // The worker thread saw no installed recorder after the detach.
    let orphan = std::thread::spawn(|| cape_obs::span("edge.orphan").is_active());
    assert!(!orphan.join().unwrap(), "fresh thread must not inherit the context");
}

#[test]
fn flight_ring_wraparound_at_exact_capacity() {
    let fr = FlightRecorder::new(4, 0, 0);
    let push = |n: u64| {
        fr.record(RequestSummary { trace_id: n, total_ns: n, ..RequestSummary::default() }, &[]);
    };
    // Exactly capacity: nothing evicted yet.
    (1..=4).for_each(push);
    let snap = fr.snapshot();
    assert_eq!(snap.recorded, 4);
    assert_eq!(snap.recent.iter().map(|s| s.trace_id).collect::<Vec<_>>(), vec![1, 2, 3, 4]);
    // One past capacity: the oldest (and only the oldest) is gone.
    push(5);
    let snap = fr.snapshot();
    assert_eq!(snap.recorded, 5, "eviction must not lose the running count");
    assert_eq!(snap.recent.iter().map(|s| s.trace_id).collect::<Vec<_>>(), vec![2, 3, 4, 5]);
    // Wrap all the way around twice.
    (6..=13).for_each(push);
    let snap = fr.snapshot();
    assert_eq!(snap.recorded, 13);
    assert_eq!(snap.recent.iter().map(|s| s.trace_id).collect::<Vec<_>>(), vec![10, 11, 12, 13]);
}

#[test]
fn chrome_trace_escapes_quotes_and_backslashes() {
    // Process names and flight labels come from user data (file paths,
    // rendered questions); the exported JSON must stay parseable.
    let hostile = r#"cape "batch" C:\data\pubs.csv
with newline"#;
    let events = vec![TraceEvent {
        trace_id: 1,
        name: "serve.request",
        tid: 0,
        begin_ns: 0,
        dur_ns: 10,
        counters: vec![],
    }];
    let doc = chrome_trace(hostile, &events, 0);
    let text = doc.to_string();
    let parsed = Json::parse(&text).expect("escaped Chrome trace parses");
    let name = parsed
        .get("traceEvents")
        .and_then(Json::as_arr)
        .and_then(|a| a.first())
        .and_then(|m| m.get("args"))
        .and_then(|a| a.get("name"))
        .and_then(Json::as_str)
        .expect("process name survives");
    assert_eq!(name, hostile, "quotes, backslashes, and newlines round-trip");
}

#[test]
fn flight_snapshot_json_escapes_hostile_labels() {
    let fr = FlightRecorder::new(4, 2, 0);
    let label = r#"author = "A\X", venue = "SIG\KDD""#;
    fr.record(
        RequestSummary {
            trace_id: 7,
            label: label.into(),
            outcome: "ok".into(),
            total_ns: 42,
            ..RequestSummary::default()
        },
        &[],
    );
    let snap = fr.snapshot();
    let text = snap.to_json().to_string();
    let parsed = cape_obs::FlightSnapshot::from_json(&Json::parse(&text).expect("parses"))
        .expect("snapshot round-trips");
    assert_eq!(parsed.recent[0].label, label);
    assert_eq!(parsed, snap);
}

#[test]
fn trace_ids_are_unique_and_propagate_through_contexts() {
    let a = TraceId::next();
    let b = TraceId::next();
    assert_ne!(a, b);
    assert_ne!(a.as_u64(), 0, "0 is reserved for untraced");
    assert_eq!(format!("{a}").len(), 16, "fixed-width hex rendering");

    let rec = Recorder::new();
    rec.enable_trace_capture();
    let guard = rec.install();
    let scope = cape_obs::trace_scope(a);
    assert_eq!(cape_obs::current_trace(), Some(a));
    let ctx = ThreadContext::capture();
    std::thread::spawn(move || {
        let _attach = ctx.attach();
        assert_eq!(cape_obs::current_trace(), Some(a), "trace id crosses threads via the context");
        let _span = cape_obs::span("edge.traced");
    })
    .join()
    .unwrap();
    drop(scope);
    assert_eq!(cape_obs::current_trace(), None, "scope restored on drop");
    drop(guard);
    let events = rec.trace_events();
    assert_eq!(events.len(), 1);
    assert_eq!(events[0].trace_id, a.as_u64());
}
