//! Error type for the CAPE core.

use cape_data::DataError;
use cape_regress::RegressError;
use std::fmt;

/// Errors produced by mining and explanation generation.
#[derive(Debug, Clone, PartialEq)]
pub enum CapeError {
    /// Propagated relational-engine error.
    Data(DataError),
    /// Propagated regression error.
    Regress(RegressError),
    /// The user question is inconsistent with the relation or pattern set.
    InvalidQuestion(String),
    /// The question's aggregate references a column that does not exist
    /// in the relation schema. Distinguished from the generic
    /// [`InvalidQuestion`](CapeError::InvalidQuestion) so front-ends can
    /// report it precisely (CLI exit code 4, HTTP
    /// `unknown_aggregate_column` payload) instead of a generic runtime
    /// failure.
    UnknownAggregateColumn(String),
    /// Invalid configuration (e.g. ψ < 2).
    InvalidConfig(String),
}

impl fmt::Display for CapeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CapeError::Data(e) => write!(f, "data error: {e}"),
            CapeError::Regress(e) => write!(f, "regression error: {e}"),
            CapeError::InvalidQuestion(m) => write!(f, "invalid user question: {m}"),
            CapeError::UnknownAggregateColumn(name) => {
                write!(f, "unknown aggregate column `{name}`: not in the relation schema")
            }
            CapeError::InvalidConfig(m) => write!(f, "invalid configuration: {m}"),
        }
    }
}

impl std::error::Error for CapeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CapeError::Data(e) => Some(e),
            CapeError::Regress(e) => Some(e),
            _ => None,
        }
    }
}

impl From<DataError> for CapeError {
    fn from(e: DataError) -> Self {
        CapeError::Data(e)
    }
}

impl From<RegressError> for CapeError {
    fn from(e: RegressError) -> Self {
        CapeError::Regress(e)
    }
}

/// Result alias for this crate.
pub type Result<T> = std::result::Result<T, CapeError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_display() {
        let e: CapeError = DataError::EmptyInput("x").into();
        assert!(e.to_string().contains("data error"));
        let e: CapeError = RegressError::EmptyTrainingSet.into();
        assert!(e.to_string().contains("regression error"));
        assert!(CapeError::InvalidQuestion("no group".into()).to_string().contains("no group"));
        let e = CapeError::UnknownAggregateColumn("pages".into());
        assert!(e.to_string().contains("unknown aggregate column `pages`"));
        assert!(CapeError::InvalidConfig("psi".into()).to_string().contains("psi"));
    }

    #[test]
    fn source_chains() {
        use std::error::Error;
        let e: CapeError = DataError::EmptyInput("x").into();
        assert!(e.source().is_some());
        assert!(CapeError::InvalidQuestion("q".into()).source().is_none());
    }
}
