//! Pattern instances (globally holding ARPs with their local models) and
//! the pattern store queried during explanation generation.

use crate::group_data::GroupData;
use crate::pattern::Arp;
use cape_data::{AttrId, Schema, Value};
use cape_regress::Fitted;
use std::collections::HashMap;
use std::sync::Arc;

/// A pattern holding *locally* on one fragment `f ∈ frag(R, P)`
/// (Definition 3): the fitted model `g_{P,f}` plus bookkeeping used by
/// explanation scoring and pruning.
#[derive(Debug, Clone, PartialEq)]
pub struct LocalPattern {
    /// The fitted regression model and its goodness-of-fit.
    pub fitted: Fitted,
    /// Local support `|Q_{P,f}(R)|` — distinct predictor values in the fragment.
    pub support: usize,
    /// Largest positive deviation `t[agg(A)] − g(t[V])` within the fragment.
    pub max_pos_dev: f64,
    /// Most negative deviation within the fragment (≤ 0).
    pub max_neg_dev: f64,
}

/// A globally holding ARP (Definition 4) together with its local models
/// and the shared aggregate data it was mined from.
#[derive(Debug, Clone)]
pub struct PatternInstance {
    /// The pattern shape.
    pub arp: Arp,
    /// The materialized `γ_{F∪V, agg(A)}(R)` this pattern was fitted on.
    pub data: Arc<GroupData>,
    /// Column of `agg(A)` within `data.relation`.
    pub agg_col: usize,
    /// Local models keyed by the fragment value `f = t[F]`
    /// (values in `arp.f()` order).
    pub locals: HashMap<Vec<Value>, LocalPattern>,
    /// Global confidence `|frag_good| / |frag_supp|`.
    pub confidence: f64,
    /// `|frag_supp|`: fragments with local support ≥ δ.
    pub num_supported: usize,
    /// Largest positive deviation across *all* fragments (pruning bound).
    pub max_pos_dev: f64,
    /// Most negative deviation across all fragments (pruning bound).
    pub max_neg_dev: f64,
}

impl PatternInstance {
    /// Global support `|frag_good|`.
    pub fn global_support(&self) -> usize {
        self.locals.len()
    }

    /// Look up the local model for fragment value `f` (in `arp.f()` order).
    pub fn local(&self, f: &[Value]) -> Option<&LocalPattern> {
        self.locals.get(f)
    }

    /// Predict the aggregate for row `i` of `data.relation` using the
    /// local model of that row's fragment. Returns `None` when the
    /// pattern does not hold locally there or a predictor is non-numeric
    /// under a linear model.
    pub fn predict_row(&self, i: usize) -> Option<f64> {
        let f_key = self.data.key_of(i, self.arp.f())?;
        let local = self.locals.get(&f_key)?;
        let x = self.predictor_vec(i)?;
        Some(local.fitted.model.predict(&x))
    }

    /// Deviation `dev_P(t)` (Definition 8) of row `i` of `data.relation`.
    pub fn deviation_row(&self, i: usize) -> Option<f64> {
        let actual = self.data.agg_value(i, self.agg_col)?;
        Some(actual - self.predict_row(i)?)
    }

    /// Numeric predictor vector of row `i` (values of `V` as `f64`).
    ///
    /// For constant models the values are not used by `predict`, but we
    /// still build the vector for uniformity; categorical predictors under
    /// a `Const` model are encoded as 0.0 placeholders.
    pub fn predictor_vec(&self, i: usize) -> Option<Vec<f64>> {
        let cols = self.data.cols_of_attrs(self.arp.v())?;
        let needs_numeric = self.arp.model.requires_numeric_predictors();
        let mut out = Vec::with_capacity(cols.len());
        for c in cols {
            match self.data.relation.value(i, c).as_f64() {
                Some(x) => out.push(x),
                None if !needs_numeric => out.push(0.0),
                None => return None,
            }
        }
        Some(out)
    }
}

/// A set of globally holding patterns, indexed for relevance and
/// refinement lookups during explanation generation.
#[derive(Debug, Clone, Default)]
pub struct PatternStore {
    instances: Vec<PatternInstance>,
}

impl PatternStore {
    /// Empty store.
    pub fn new() -> Self {
        PatternStore::default()
    }

    /// Build from mined instances.
    pub fn from_instances(instances: Vec<PatternInstance>) -> Self {
        PatternStore { instances }
    }

    /// Add a pattern instance; returns its index.
    pub fn push(&mut self, instance: PatternInstance) -> usize {
        self.instances.push(instance);
        self.instances.len() - 1
    }

    /// Number of stored patterns.
    pub fn len(&self) -> usize {
        self.instances.len()
    }

    /// True when no pattern is stored.
    pub fn is_empty(&self) -> bool {
        self.instances.is_empty()
    }

    /// Access a pattern by index.
    pub fn get(&self, idx: usize) -> Option<&PatternInstance> {
        self.instances.get(idx)
    }

    /// Iterate over `(index, instance)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (usize, &PatternInstance)> {
        self.instances.iter().enumerate()
    }

    /// Indices of all patterns `P'` that refine the pattern at `idx`
    /// (Definition 6: `F' ⊇ F`, same `V`, same aggregate). The pattern
    /// itself is included when a same-shape pattern exists under another
    /// model; `P' = P` (identical index) is also returned because the
    /// drill-down with `F' = F` is a legal explanation source.
    pub fn refinements_of(&self, idx: usize) -> Vec<usize> {
        let Some(base) = self.instances.get(idx) else {
            return Vec::new();
        };
        self.instances
            .iter()
            .enumerate()
            .filter(|(_, cand)| base.arp.is_refined_by(&cand.arp))
            .map(|(i, _)| i)
            .collect()
    }

    /// Refinement indices for *every* pattern at once: entry `i` equals
    /// `refinements_of(i)`. [`refinements_of`](Self::refinements_of) is an
    /// O(n) scan per call; services answering many questions against an
    /// immutable store precompute this table once and share it.
    pub fn refinement_index(&self) -> Vec<Vec<usize>> {
        (0..self.instances.len()).map(|i| self.refinements_of(i)).collect()
    }

    /// Total number of local patterns across all instances — the paper's
    /// `N_P` knob in the explanation-generation experiments (§5.2).
    pub fn num_local_patterns(&self) -> usize {
        self.instances.iter().map(|p| p.locals.len()).sum()
    }

    /// Keep only the first `n` local patterns (in store order), dropping
    /// instances that lose all locals. Used by the `N_P` sweeps.
    pub fn truncate_locals(&self, n: usize) -> PatternStore {
        let mut remaining = n;
        let mut out = Vec::new();
        for inst in &self.instances {
            if remaining == 0 {
                break;
            }
            let take = inst.locals.len().min(remaining);
            remaining -= take;
            if take == inst.locals.len() {
                out.push(inst.clone());
            } else {
                // Deterministic subset: sort fragment keys.
                let mut keys: Vec<&Vec<Value>> = inst.locals.keys().collect();
                keys.sort();
                let kept: HashMap<Vec<Value>, LocalPattern> = keys
                    .into_iter()
                    .take(take)
                    .map(|k| (k.clone(), inst.locals[k].clone()))
                    .collect();
                let mut trimmed = inst.clone();
                trimmed.locals = kept;
                out.push(trimmed);
            }
        }
        PatternStore { instances: out }
    }

    /// Human-readable summary of the stored patterns.
    pub fn describe(&self, schema: &Schema) -> String {
        let mut lines = Vec::new();
        for (i, inst) in self.iter() {
            lines.push(format!(
                "#{i} {} | fragments: {} / supported: {} | confidence: {:.2}",
                inst.arp.display(schema),
                inst.global_support(),
                inst.num_supported,
                inst.confidence
            ));
        }
        lines.join("\n")
    }
}

/// Helper used by miners: fold per-fragment deviation extremes into the
/// instance-level bounds.
pub fn fold_dev_bounds(instance: &mut PatternInstance) {
    let mut pos = 0.0f64;
    let mut neg = 0.0f64;
    for local in instance.locals.values() {
        pos = pos.max(local.max_pos_dev);
        neg = neg.min(local.max_neg_dev);
    }
    instance.max_pos_dev = pos;
    instance.max_neg_dev = neg;
}

/// Extract, for a list of wanted attributes, the values they take in a
/// tuple given as parallel `(attrs, values)` arrays. Returns `None` when
/// a wanted attribute is absent.
pub fn project_tuple(attrs: &[AttrId], values: &[Value], wanted: &[AttrId]) -> Option<Vec<Value>> {
    wanted.iter().map(|w| attrs.iter().position(|a| a == w).map(|i| values[i].clone())).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use cape_data::{AggFunc, Relation, Schema, ValueType};
    use cape_regress::{Model, ModelType};

    fn mk_instance(f: Vec<AttrId>, v: Vec<AttrId>, model: ModelType) -> PatternInstance {
        // Base schema: author(0), year(1), venue(2)
        let base = Schema::new([
            ("author", ValueType::Str),
            ("year", ValueType::Int),
            ("venue", ValueType::Str),
        ])
        .unwrap();
        let mut g: Vec<AttrId> = f.iter().chain(&v).copied().collect();
        g.sort_unstable();
        let mut rel = Relation::new(base);
        // rows: (ax, 2004, KDD) x2, (ax, 2005, KDD), (ay, 2004, ICDE)
        for (a, y, ve) in
            [("ax", 2004, "KDD"), ("ax", 2004, "KDD"), ("ax", 2005, "KDD"), ("ay", 2004, "ICDE")]
        {
            rel.push_row(vec![Value::str(a), Value::Int(y), Value::str(ve)]).unwrap();
        }
        let data = GroupData::compute(&rel, &g, &[(AggFunc::Count, None)]).unwrap();
        let agg_col = data.agg_col(AggFunc::Count, None).unwrap();
        let arp = Arp::new(f.clone(), v, AggFunc::Count, None, model);
        let mut locals = HashMap::new();
        // One local for fragment (ax).
        let f_cols_key: Vec<Value> = if f == vec![0] {
            vec![Value::str("ax")]
        } else {
            vec![Value::str("ax"), Value::str("KDD")]
        };
        locals.insert(
            f_cols_key,
            LocalPattern {
                fitted: Fitted { model: Model::Constant { beta: 1.5 }, gof: 0.9, n: 2 },
                support: 2,
                max_pos_dev: 0.5,
                max_neg_dev: -0.5,
            },
        );
        let mut inst = PatternInstance {
            arp,
            data: Arc::new(data),
            agg_col,
            locals,
            confidence: 1.0,
            num_supported: 1,
            max_pos_dev: 0.0,
            max_neg_dev: 0.0,
        };
        fold_dev_bounds(&mut inst);
        inst
    }

    #[test]
    fn predict_and_deviation() {
        let inst = mk_instance(vec![0], vec![1], ModelType::Const);
        // Row 0 of grouped data is (ax, 2004) with count 2; model predicts 1.5.
        assert_eq!(inst.predict_row(0), Some(1.5));
        assert_eq!(inst.deviation_row(0), Some(0.5));
        // Fragment (ay) has no local model.
        let ay_row = (0..inst.data.relation.num_rows())
            .find(|&i| inst.data.relation.value(i, 0) == Value::str("ay"))
            .unwrap();
        assert_eq!(inst.predict_row(ay_row), None);
    }

    #[test]
    fn dev_bounds_folded() {
        let inst = mk_instance(vec![0], vec![1], ModelType::Const);
        assert_eq!(inst.max_pos_dev, 0.5);
        assert_eq!(inst.max_neg_dev, -0.5);
        assert_eq!(inst.global_support(), 1);
    }

    #[test]
    fn store_refinements() {
        let p1 = mk_instance(vec![0], vec![1], ModelType::Const);
        let p2 = mk_instance(vec![0, 2], vec![1], ModelType::Const);
        let mut store = PatternStore::new();
        let i1 = store.push(p1);
        let i2 = store.push(p2);
        let refs = store.refinements_of(i1);
        assert!(refs.contains(&i1)); // self
        assert!(refs.contains(&i2)); // strict refinement
        assert_eq!(store.refinements_of(i2), vec![i2]);
        assert_eq!(store.refinements_of(99), Vec::<usize>::new());
    }

    #[test]
    fn local_pattern_counting_and_truncation() {
        let p1 = mk_instance(vec![0], vec![1], ModelType::Const);
        let p2 = mk_instance(vec![0, 2], vec![1], ModelType::Const);
        let store = PatternStore::from_instances(vec![p1, p2]);
        assert_eq!(store.num_local_patterns(), 2);
        let cut = store.truncate_locals(1);
        assert_eq!(cut.num_local_patterns(), 1);
        assert_eq!(cut.len(), 1);
        let all = store.truncate_locals(10);
        assert_eq!(all.num_local_patterns(), 2);
    }

    #[test]
    fn project_tuple_helper() {
        let attrs = vec![0, 2, 1];
        let values = vec![Value::str("ax"), Value::str("KDD"), Value::Int(2004)];
        assert_eq!(
            project_tuple(&attrs, &values, &[1, 0]),
            Some(vec![Value::Int(2004), Value::str("ax")])
        );
        assert_eq!(project_tuple(&attrs, &values, &[5]), None);
    }

    #[test]
    fn describe_mentions_pattern() {
        let schema = Schema::new([
            ("author", ValueType::Str),
            ("year", ValueType::Int),
            ("venue", ValueType::Str),
        ])
        .unwrap();
        let store =
            PatternStore::from_instances(vec![mk_instance(vec![0], vec![1], ModelType::Const)]);
        let d = store.describe(&schema);
        assert!(d.contains("[author]"));
        assert!(d.contains("confidence"));
    }
}
