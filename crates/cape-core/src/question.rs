//! User questions (Definition 1): "why is this aggregate value high/low?".

use cape_data::{AggFunc, AttrId, Schema, Value};

/// Whether the user considers the value higher or lower than expected.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Direction {
    /// The value is higher than the user expected.
    High,
    /// The value is lower than the user expected.
    Low,
}

impl Direction {
    /// The `isLow` factor of the scoring function (Definition 10):
    /// `1` for low questions, `−1` for high questions.
    pub fn is_low_sign(self) -> f64 {
        match self {
            Direction::Low => 1.0,
            Direction::High => -1.0,
        }
    }

    /// A counterbalance must deviate in the opposite direction: positive
    /// deviation for a low question, negative for a high question.
    pub fn counterbalances(self, deviation: f64) -> bool {
        match self {
            Direction::Low => deviation > 0.0,
            Direction::High => deviation < 0.0,
        }
    }
}

impl std::fmt::Display for Direction {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Direction::High => "high",
            Direction::Low => "low",
        })
    }
}

/// A user question `φ = (Q, R, t, dir)` (Definition 1) about the result of
/// `Q = γ_{G, agg(A)}(R)`. The relation `R` is passed separately to the
/// explanation APIs; the question records the query shape and the tuple.
#[derive(Debug, Clone, PartialEq)]
pub struct UserQuestion {
    /// Group-by attributes `G` of the aggregate query (base-schema ids).
    pub group_attrs: Vec<AttrId>,
    /// The aggregate function of the query.
    pub agg: AggFunc,
    /// Aggregated attribute (`None` = `count(*)`).
    pub agg_attr: Option<AttrId>,
    /// The group-by values of the questioned tuple `t`, aligned with
    /// `group_attrs`.
    pub tuple: Vec<Value>,
    /// The aggregate value `t[agg(A)]` the user finds surprising.
    pub agg_value: f64,
    /// Whether the value is surprisingly high or low.
    pub dir: Direction,
}

impl UserQuestion {
    /// Construct a question; `tuple` must align with `group_attrs`.
    ///
    /// # Panics
    /// Panics if the lengths differ (a programming error).
    pub fn new(
        group_attrs: Vec<AttrId>,
        agg: AggFunc,
        agg_attr: Option<AttrId>,
        tuple: Vec<Value>,
        agg_value: f64,
        dir: Direction,
    ) -> Self {
        assert_eq!(group_attrs.len(), tuple.len(), "tuple must align with group attrs");
        UserQuestion { group_attrs, agg, agg_attr, tuple, agg_value, dir }
    }

    /// Build a question by evaluating the aggregate query on `rel` and
    /// looking up the tuple with the given group-by values — so the
    /// question's `agg_value` always matches the data.
    ///
    /// Returns an error when the tuple does not appear in the result.
    pub fn from_query(
        rel: &cape_data::Relation,
        group_attrs: Vec<AttrId>,
        agg: AggFunc,
        agg_attr: Option<AttrId>,
        tuple: Vec<Value>,
        dir: Direction,
    ) -> crate::error::Result<Self> {
        use cape_data::ops::aggregate;
        use cape_data::AggSpec;
        let result = aggregate(rel, &group_attrs, &[AggSpec { func: agg, attr: agg_attr }])
            .map_err(crate::error::CapeError::from)?
            .relation;
        let agg_col = group_attrs.len();
        for i in 0..result.num_rows() {
            if (0..group_attrs.len()).all(|c| result.value(i, c) == tuple[c]) {
                let agg_value = result.value(i, agg_col).as_f64().ok_or_else(|| {
                    crate::error::CapeError::InvalidQuestion("non-numeric aggregate".into())
                })?;
                return Ok(UserQuestion::new(group_attrs, agg, agg_attr, tuple, agg_value, dir));
            }
        }
        Err(crate::error::CapeError::InvalidQuestion(format!(
            "tuple {tuple:?} not in the query result"
        )))
    }

    /// Build a question from a SQL aggregate query of the paper's shape
    /// (`SELECT G, agg(A) FROM R GROUP BY G`, Definition 1) plus the
    /// group-by values of the surprising tuple.
    ///
    /// The query may not contain WHERE/ORDER/LIMIT — a CAPE question is
    /// about a plain group-by aggregation over the full relation.
    pub fn from_sql(
        rel: &cape_data::Relation,
        sql: &str,
        tuple: Vec<Value>,
        dir: Direction,
    ) -> crate::error::Result<Self> {
        use cape_data::sql::{parse, SelectItem};
        let invalid = |m: String| crate::error::CapeError::InvalidQuestion(m);
        let stmt = parse(sql).map_err(|e| invalid(e.to_string()))?;
        if !stmt.is_cape_query() {
            return Err(invalid(
                "question queries must have the shape SELECT G, agg(A) FROM R GROUP BY G"
                    .to_string(),
            ));
        }
        if stmt.selection.is_some() || !stmt.order_by.is_empty() || stmt.limit.is_some() {
            return Err(invalid(
                "question queries may not use WHERE / ORDER BY / LIMIT".to_string(),
            ));
        }
        let group_attrs: crate::error::Result<Vec<AttrId>> = stmt
            .group_by
            .iter()
            .map(|name| rel.schema().attr_id(name).map_err(crate::error::CapeError::from))
            .collect();
        let agg_item = stmt
            .items
            .iter()
            .find_map(|i| match i {
                SelectItem::Aggregate { call, .. } => Some(call.clone()),
                _ => None,
            })
            .expect("is_cape_query guarantees one aggregate");
        let agg_attr = match &agg_item.arg {
            Some(name) => Some(
                rel.schema()
                    .attr_id(name)
                    .map_err(|_| crate::error::CapeError::UnknownAggregateColumn(name.clone()))?,
            ),
            None => None,
        };
        Self::from_query(rel, group_attrs?, agg_item.func, agg_attr, tuple, dir)
    }

    /// Build a **zero-count question**: "why did this group not appear at
    /// all?" — the missing-answer case the paper's conclusion names as an
    /// open problem (e.g. *AX had no SIGKDD paper in 2007 at all*).
    ///
    /// The tuple must be *absent* from `γ_{G, count(*)}(rel)` while every
    /// individual value exists somewhere in its attribute's column
    /// (otherwise the question is about a value the data has never seen
    /// and no pattern could possibly relate to it). The direction is
    /// necessarily [`Direction::Low`] and the aggregate `count(*) = 0`.
    pub fn zero_count(
        rel: &cape_data::Relation,
        group_attrs: Vec<AttrId>,
        tuple: Vec<Value>,
    ) -> crate::error::Result<Self> {
        use crate::error::CapeError;
        if group_attrs.len() != tuple.len() {
            return Err(CapeError::InvalidQuestion("tuple must align with group attrs".into()));
        }
        // Each value must occur in its column…
        for (&a, v) in group_attrs.iter().zip(&tuple) {
            rel.schema().attr(a).map_err(CapeError::Data)?;
            if !rel.column_iter(a).any(|x| x == *v) {
                return Err(CapeError::InvalidQuestion(format!(
                    "value {v} never occurs in attribute #{a}; cannot pose a question about it"
                )));
            }
        }
        // …but the combination must not.
        let combination_exists = (0..rel.num_rows())
            .any(|i| group_attrs.iter().zip(&tuple).all(|(&a, v)| rel.value(i, a) == *v));
        if combination_exists {
            return Err(CapeError::InvalidQuestion(
                "the group exists — use from_query for questions about existing answers".into(),
            ));
        }
        Ok(UserQuestion::new(group_attrs, AggFunc::Count, None, tuple, 0.0, Direction::Low))
    }

    /// The questioned tuple's value for a base attribute, if grouped on it.
    pub fn value_of(&self, attr: AttrId) -> Option<&Value> {
        self.group_attrs.iter().position(|&a| a == attr).map(|i| &self.tuple[i])
    }

    /// Values for several attributes (all must be in `G`), e.g. `t[F]`.
    pub fn values_of(&self, attrs: &[AttrId]) -> Option<Vec<Value>> {
        attrs.iter().map(|&a| self.value_of(a).cloned()).collect()
    }

    /// Whether every attribute in `attrs` is part of the question's `G`
    /// (the "generalizes φ" half of relevance, Definition 5).
    pub fn covers_attrs(&self, attrs: &[AttrId]) -> bool {
        attrs.iter().all(|a| self.group_attrs.contains(a))
    }

    /// Render like `why is count(*) = 1 for (author=AX, venue=SIGKDD,
    /// year=2007) low?`.
    pub fn display(&self, schema: &Schema) -> String {
        let parts: Vec<String> = self
            .group_attrs
            .iter()
            .zip(&self.tuple)
            .map(|(&a, v)| {
                let name = schema
                    .attr(a)
                    .map(|at| at.name().to_string())
                    .unwrap_or_else(|_| format!("#{a}"));
                format!("{name}={v}")
            })
            .collect();
        let agg_name = match self.agg_attr {
            Some(a) => {
                schema.attr(a).map(|at| at.name().to_string()).unwrap_or_else(|_| format!("#{a}"))
            }
            None => "*".to_string(),
        };
        format!(
            "why is {}({}) = {} for ({}) {}?",
            self.agg,
            agg_name,
            self.agg_value,
            parts.join(", "),
            self.dir
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cape_data::{Schema, ValueType};

    fn q() -> UserQuestion {
        UserQuestion::new(
            vec![0, 3, 2],
            AggFunc::Count,
            None,
            vec![Value::str("AX"), Value::str("SIGKDD"), Value::Int(2007)],
            1.0,
            Direction::Low,
        )
    }

    #[test]
    fn direction_semantics() {
        assert_eq!(Direction::Low.is_low_sign(), 1.0);
        assert_eq!(Direction::High.is_low_sign(), -1.0);
        assert!(Direction::Low.counterbalances(2.0));
        assert!(!Direction::Low.counterbalances(-2.0));
        assert!(!Direction::Low.counterbalances(0.0));
        assert!(Direction::High.counterbalances(-0.1));
        assert!(!Direction::High.counterbalances(0.1));
        assert_eq!(Direction::Low.to_string(), "low");
    }

    #[test]
    fn attribute_lookup() {
        let uq = q();
        assert_eq!(uq.value_of(3), Some(&Value::str("SIGKDD")));
        assert_eq!(uq.value_of(1), None);
        assert_eq!(uq.values_of(&[2, 0]), Some(vec![Value::Int(2007), Value::str("AX")]));
        assert_eq!(uq.values_of(&[1]), None);
        assert!(uq.covers_attrs(&[0, 2]));
        assert!(!uq.covers_attrs(&[0, 1]));
    }

    #[test]
    #[should_panic(expected = "align")]
    fn misaligned_tuple_rejected() {
        UserQuestion::new(
            vec![0, 1],
            AggFunc::Count,
            None,
            vec![Value::Int(1)],
            1.0,
            Direction::Low,
        );
    }

    #[test]
    fn from_query_reads_the_actual_value() {
        use cape_data::{Relation, Schema, ValueType};
        let schema = Schema::new([("author", ValueType::Str), ("year", ValueType::Int)]).unwrap();
        let rel = Relation::from_rows(
            schema,
            vec![
                vec![Value::str("AX"), Value::Int(2007)],
                vec![Value::str("AX"), Value::Int(2007)],
                vec![Value::str("AX"), Value::Int(2008)],
            ],
        )
        .unwrap();
        let uq = UserQuestion::from_query(
            &rel,
            vec![0, 1],
            AggFunc::Count,
            None,
            vec![Value::str("AX"), Value::Int(2007)],
            Direction::Low,
        )
        .unwrap();
        assert_eq!(uq.agg_value, 2.0);
        // Missing tuple is rejected.
        let missing = UserQuestion::from_query(
            &rel,
            vec![0, 1],
            AggFunc::Count,
            None,
            vec![Value::str("AX"), Value::Int(1999)],
            Direction::Low,
        );
        assert!(missing.is_err());
    }

    #[test]
    fn from_sql_parses_the_paper_question() {
        use cape_data::{Relation, Schema, ValueType};
        let schema = Schema::new([
            ("author", ValueType::Str),
            ("year", ValueType::Int),
            ("venue", ValueType::Str),
        ])
        .unwrap();
        let rel = Relation::from_rows(
            schema,
            vec![
                vec![Value::str("AX"), Value::Int(2007), Value::str("SIGKDD")],
                vec![Value::str("AX"), Value::Int(2007), Value::str("ICDE")],
                vec![Value::str("AX"), Value::Int(2007), Value::str("ICDE")],
            ],
        )
        .unwrap();
        let uq = UserQuestion::from_sql(
            &rel,
            "SELECT author, year, venue, count(*) AS pubcnt FROM Pub GROUP BY author, year, venue",
            vec![Value::str("AX"), Value::Int(2007), Value::str("SIGKDD")],
            Direction::Low,
        )
        .unwrap();
        assert_eq!(uq.group_attrs, vec![0, 1, 2]);
        assert_eq!(uq.agg, AggFunc::Count);
        assert_eq!(uq.agg_value, 1.0);

        // Wrong shapes are rejected.
        for bad in [
            "SELECT author FROM pub",                                   // no aggregate
            "SELECT author, count(*) FROM pub GROUP BY author LIMIT 3", // limit
            "SELECT author, count(*) FROM pub WHERE year = 2007 GROUP BY author", // where
            "SELECT venue, count(*) FROM pub GROUP BY author",          // projection ≠ G
        ] {
            let r = UserQuestion::from_sql(&rel, bad, vec![Value::str("AX")], Direction::Low);
            assert!(r.is_err(), "should reject `{bad}`");
        }
    }

    #[test]
    fn display_mentions_everything() {
        let schema = Schema::new([
            ("author", ValueType::Str),
            ("pubid", ValueType::Str),
            ("year", ValueType::Int),
            ("venue", ValueType::Str),
        ])
        .unwrap();
        let s = q().display(&schema);
        assert!(s.contains("author=AX"));
        assert!(s.contains("venue=SIGKDD"));
        assert!(s.contains("count(*) = 1"));
        assert!(s.contains("low"));
    }
}
