#![warn(missing_docs)]

//! # cape-core — CAPE: pattern-based counterbalance explanations
//!
//! A Rust implementation of the CAPE system from *"Going Beyond
//! Provenance: Explaining Query Answers with Pattern-based
//! Counterbalances"* (SIGMOD 2019):
//!
//! * [`pattern::Arp`] — aggregate regression patterns `[F]: V ~M~> agg(A)`;
//! * [`mining`] — the NAIVE / CUBE / SHARE-GRP / ARP-MINE discovery
//!   algorithms with FD optimizations;
//! * [`explain`] — counterbalance explanation generation with scoring and
//!   top-k pruning, plus the non-pattern baseline.
//!
//! ## Quick start
//!
//! ```
//! use cape_core::prelude::*;
//! use cape_data::{Relation, Schema, Value, ValueType};
//!
//! // Authors publishing a constant number of papers per year …
//! let schema = Schema::new([("author", ValueType::Str), ("year", ValueType::Int)]).unwrap();
//! let mut rel = Relation::new(schema);
//! for a in 0..5 {
//!     for y in 2000..2010 {
//!         for _ in 0..3 {
//!             rel.push_row(vec![Value::str(format!("a{a}")), Value::Int(y)]).unwrap();
//!         }
//!     }
//! }
//! // … are found by mining:
//! let cfg = MiningConfig {
//!     thresholds: Thresholds::new(0.3, 3, 0.5, 2),
//!     psi: 2,
//!     ..MiningConfig::default()
//! };
//! let out = ArpMiner.mine(&rel, &cfg).unwrap();
//! assert!(out.store.len() > 0);
//! ```

pub mod config;
pub mod error;
pub mod explain;
pub mod group_data;
pub mod incr;
pub mod mining;
pub mod pattern;
pub mod persist;
pub mod question;
pub mod report;
pub mod session;
pub mod snapshot;
pub mod store;

pub use config::{AggSelection, MiningConfig, Thresholds};
pub use error::{CapeError, Result};
pub use incr::{AppendReport, IncrError, IncrStore, DEFAULT_WAL_COMPACT_BYTES};
pub use pattern::Arp;
pub use question::{Direction, UserQuestion};
pub use session::{CapeSession, ExplainAlgo};
pub use snapshot::{SnapshotContents, SnapshotError};
pub use store::{LocalPattern, PatternInstance, PatternStore};

/// Convenient glob-import surface for examples and applications.
pub mod prelude {
    pub use crate::config::{AggSelection, MiningConfig, Thresholds};
    pub use crate::error::{CapeError, Result};
    pub use crate::explain::{
        BaselineExplainer, ExplainConfig, Explanation, NaiveExplainer, OptimizedExplainer,
        TopKExplainer,
    };
    pub use crate::incr::{AppendReport, IncrError, IncrStore};
    pub use crate::mining::{
        ArpMiner, CubeMiner, Miner, MiningOutput, NaiveMiner, ParallelMiner, ShareGrpMiner,
    };
    pub use crate::pattern::Arp;
    pub use crate::question::{Direction, UserQuestion};
    pub use crate::session::{CapeSession, ExplainAlgo};
    pub use crate::snapshot::{load_snapshot, save_snapshot, SnapshotContents, SnapshotError};
    pub use crate::store::{PatternInstance, PatternStore};
}
