//! Aggregate regression patterns (ARPs) — Definition 2 of the paper.

use cape_data::{AggFunc, AttrId, Schema};
use cape_regress::ModelType;
use std::collections::BTreeSet;

/// An aggregate regression pattern `P = (F, V, agg, A, M)`, written
/// `[F] : V ~M~> agg(A)`.
///
/// `F` (partition attributes) and `V` (predictor attributes) are stored
/// sorted by attribute id so that two ARPs with the same attribute *sets*
/// compare equal regardless of construction order.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Arp {
    f: Vec<AttrId>,
    v: Vec<AttrId>,
    /// Aggregate function (count, sum, min, max).
    pub agg: AggFunc,
    /// Aggregated attribute; `None` encodes `*` for `count`.
    pub agg_attr: Option<AttrId>,
    /// Regression model type `M`.
    pub model: ModelType,
}

impl Arp {
    /// Construct an ARP; `f` and `v` are deduplicated and sorted.
    ///
    /// # Panics
    /// Panics if `f` or `v` is empty or they overlap, or if `agg_attr`
    /// appears in `F ∪ V` — these are structural invariants of
    /// Definition 2, and violating them is a programming error.
    pub fn new(
        f: impl IntoIterator<Item = AttrId>,
        v: impl IntoIterator<Item = AttrId>,
        agg: AggFunc,
        agg_attr: Option<AttrId>,
        model: ModelType,
    ) -> Self {
        let f: BTreeSet<AttrId> = f.into_iter().collect();
        let v: BTreeSet<AttrId> = v.into_iter().collect();
        assert!(!f.is_empty(), "ARP requires non-empty F");
        assert!(!v.is_empty(), "ARP requires non-empty V");
        assert!(f.is_disjoint(&v), "F and V must be disjoint");
        if let Some(a) = agg_attr {
            assert!(!f.contains(&a) && !v.contains(&a), "A must not be in F ∪ V");
        }
        Arp { f: f.into_iter().collect(), v: v.into_iter().collect(), agg, agg_attr, model }
    }

    /// Partition attributes `F`, sorted.
    pub fn f(&self) -> &[AttrId] {
        &self.f
    }

    /// Predictor attributes `V`, sorted.
    pub fn v(&self) -> &[AttrId] {
        &self.v
    }

    /// `G_P = F ∪ V`, sorted.
    pub fn g_attrs(&self) -> Vec<AttrId> {
        let mut g: Vec<AttrId> = self.f.iter().chain(&self.v).copied().collect();
        g.sort_unstable();
        g
    }

    /// `|F ∪ V|` — the pattern size bounded by ψ during mining.
    pub fn size(&self) -> usize {
        self.f.len() + self.v.len()
    }

    /// Whether `other` is a **refinement** of `self` w.r.t. Definition 6:
    /// `F' ⊇ F`, same `V`, same aggregate. (`M'` may differ; a strict
    /// superset is not required — the paper allows `F' = F` with a
    /// different model, and the drill-down handles the `F' = F` case.)
    pub fn is_refined_by(&self, other: &Arp) -> bool {
        self.v == other.v
            && self.agg == other.agg
            && self.agg_attr == other.agg_attr
            && self.f.iter().all(|a| other.f.contains(a))
    }

    /// The same pattern shape with a different model type.
    pub fn with_model(&self, model: ModelType) -> Arp {
        Arp { model, ..self.clone() }
    }

    /// Paper notation rendered against a schema, e.g.
    /// `[author]: year ~Const~> count(*)`.
    pub fn display(&self, schema: &Schema) -> String {
        let name = |id: &AttrId| {
            schema.attr(*id).map(|a| a.name().to_string()).unwrap_or_else(|_| format!("#{id}"))
        };
        let f: Vec<String> = self.f.iter().map(name).collect();
        let v: Vec<String> = self.v.iter().map(name).collect();
        let a = match self.agg_attr {
            Some(id) => name(&id),
            None => "*".to_string(),
        };
        format!("[{}]: {} ~{}~> {}({})", f.join(","), v.join(","), self.model, self.agg, a)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cape_data::{Schema, ValueType};

    fn schema() -> Schema {
        Schema::new([
            ("author", ValueType::Str),
            ("pubid", ValueType::Str),
            ("year", ValueType::Int),
            ("venue", ValueType::Str),
        ])
        .unwrap()
    }

    #[test]
    fn normalizes_attribute_order() {
        let a = Arp::new([3, 0], [2], AggFunc::Count, None, ModelType::Const);
        let b = Arp::new([0, 3], [2], AggFunc::Count, None, ModelType::Const);
        assert_eq!(a, b);
        assert_eq!(a.f(), &[0, 3]);
        assert_eq!(a.g_attrs(), vec![0, 2, 3]);
        assert_eq!(a.size(), 3);
    }

    #[test]
    #[should_panic(expected = "non-empty F")]
    fn empty_f_rejected() {
        Arp::new([], [2], AggFunc::Count, None, ModelType::Const);
    }

    #[test]
    #[should_panic(expected = "disjoint")]
    fn overlapping_f_v_rejected() {
        Arp::new([0, 2], [2], AggFunc::Count, None, ModelType::Const);
    }

    #[test]
    #[should_panic(expected = "A must not be")]
    fn agg_attr_inside_g_rejected() {
        Arp::new([0], [2], AggFunc::Sum, Some(2), ModelType::Lin);
    }

    #[test]
    fn refinement_relation() {
        let p1 = Arp::new([0], [2], AggFunc::Count, None, ModelType::Const);
        let p2 = Arp::new([0, 3], [2], AggFunc::Count, None, ModelType::Const);
        assert!(p1.is_refined_by(&p2));
        assert!(!p2.is_refined_by(&p1));
        // Same F with different model is still a refinement candidate.
        assert!(p1.is_refined_by(&p1.with_model(ModelType::Lin)));
        // Different V breaks refinement.
        let p3 = Arp::new([0, 2], [3], AggFunc::Count, None, ModelType::Const);
        assert!(!p1.is_refined_by(&p3));
        // Different aggregate breaks refinement.
        let p4 = Arp::new([0, 3], [2], AggFunc::Max, Some(1), ModelType::Const);
        assert!(!p1.is_refined_by(&p4));
    }

    #[test]
    fn paper_notation() {
        let p = Arp::new([0], [2], AggFunc::Count, None, ModelType::Const);
        assert_eq!(p.display(&schema()), "[author]: year ~Const~> count(*)");
        let p2 = Arp::new([0, 3], [2], AggFunc::Sum, Some(1), ModelType::Lin);
        assert_eq!(p2.display(&schema()), "[author,venue]: year ~Lin~> sum(pubid)");
    }
}
