//! Mining thresholds and configuration.

use cape_data::{AggFunc, AttrId, FdSet, Relation};
use cape_regress::ModelType;

/// The four thresholds of Definition 4: local model quality θ, local
/// support δ, global confidence λ, global support Δ.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Thresholds {
    /// Local model quality threshold θ ∈ [0, 1]: minimum goodness-of-fit
    /// for a pattern to hold locally.
    pub theta: f64,
    /// Local support threshold δ: minimum number of distinct predictor
    /// values in a fragment.
    pub delta: usize,
    /// Global confidence threshold λ ∈ [0, 1]: minimum fraction of
    /// sufficiently supported fragments on which the pattern holds locally.
    pub lambda: f64,
    /// Global support threshold Δ: minimum number of fragments on which
    /// the pattern holds locally.
    pub global_support: usize,
}

impl Default for Thresholds {
    /// The setting used in the paper's mining experiments (§5.1):
    /// θ = 0.5, λ = 0.5, δ = 15, Δ = 15.
    fn default() -> Self {
        Thresholds { theta: 0.5, delta: 15, lambda: 0.5, global_support: 15 }
    }
}

impl Thresholds {
    /// Convenience constructor in the paper's `(θ, δ), (λ, Δ)` order.
    pub fn new(theta: f64, delta: usize, lambda: f64, global_support: usize) -> Self {
        Thresholds { theta, delta, lambda, global_support }
    }
}

/// Which aggregate calls to mine patterns for.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AggSelection {
    /// Only `count(*)` — the cheapest useful setting and what both paper
    /// datasets' example patterns use.
    CountStar,
    /// `count(*)` plus every ARP aggregate function over every *numeric*
    /// attribute outside `F ∪ V` (the paper's full candidate space).
    AllNumeric,
    /// An explicit list of `(function, attribute)` pairs
    /// (`None` = `count(*)`).
    Explicit(Vec<(AggFunc, Option<AttrId>)>),
}

/// Full mining configuration.
#[derive(Debug, Clone)]
pub struct MiningConfig {
    /// The `(θ, δ), (λ, Δ)` thresholds.
    pub thresholds: Thresholds,
    /// Maximum pattern size ψ = max |F ∪ V| (paper §4.1). The minimum
    /// size is always 2 (one partition plus one predictor attribute).
    pub psi: usize,
    /// Aggregates to consider.
    pub aggs: AggSelection,
    /// Regression model types to fit.
    pub models: Vec<ModelType>,
    /// Attributes excluded from `F`/`V` (near-unique identifiers such as
    /// `pubid`; the paper drops these in preprocessing).
    pub exclude: Vec<AttrId>,
    /// Whether to apply the FD optimizations of Appendix D.
    pub fd_pruning: bool,
    /// FDs known up front (e.g. from key constraints). Discovered FDs are
    /// added on top when `fd_pruning` is enabled.
    pub initial_fds: FdSet,
    /// Whether to derive child group sets from already-materialized
    /// lattice parents (roll-up aggregation) instead of rescanning the
    /// base relation. Output-equivalent either way.
    pub rollup: bool,
    /// Whether to cache sort permutations per group set and serve `(F, V)`
    /// splits from prefix-compatible cached orders.
    pub sort_cache: bool,
    /// Bounded-memory budget for roll-up parents: total cached *group*
    /// rows across materializations before least-recently-used eviction.
    pub rollup_budget_rows: usize,
    /// Whether the miner's data path runs over the typed column slabs:
    /// group-by via the packed slab-code kernel and fragment fitting via
    /// slab gather + batched kernels (`fit_split`). `false` selects the
    /// legacy row-oriented path — `Vec<Value>` hash group keys and
    /// per-cell `Value` dispatch (`fit_split_rows`) — kept as the
    /// benchmark baseline and differential-suite reference. Identical
    /// results either way (group order, patterns, fits to 1e-9);
    /// `--no-columnar` flips this off from the command line.
    pub columnar_fit: bool,
}

impl Default for MiningConfig {
    fn default() -> Self {
        MiningConfig {
            thresholds: Thresholds::default(),
            psi: 4,
            aggs: AggSelection::CountStar,
            models: vec![ModelType::Const, ModelType::Lin],
            exclude: Vec::new(),
            fd_pruning: false,
            initial_fds: FdSet::new(),
            rollup: true,
            sort_cache: true,
            rollup_budget_rows: 2_000_000,
            columnar_fit: true,
        }
    }
}

impl MiningConfig {
    /// The attribute ids eligible for `F ∪ V`.
    pub fn candidate_attrs(&self, rel: &Relation) -> Vec<AttrId> {
        (0..rel.schema().arity()).filter(|a| !self.exclude.contains(a)).collect()
    }

    /// Resolve [`AggSelection`] into concrete `(function, attribute)` pairs
    /// for a given group-by set `g` (attribute must lie outside `F ∪ V`).
    pub fn resolve_aggs(&self, rel: &Relation, g: &[AttrId]) -> Vec<(AggFunc, Option<AttrId>)> {
        match &self.aggs {
            AggSelection::CountStar => vec![(AggFunc::Count, None)],
            AggSelection::AllNumeric => {
                let mut out = vec![(AggFunc::Count, None)];
                for a in 0..rel.schema().arity() {
                    if g.contains(&a) || self.exclude.contains(&a) {
                        continue;
                    }
                    let ty = rel.schema().attr(a).expect("valid id").value_type();
                    if ty.is_numeric() {
                        for func in [AggFunc::Sum, AggFunc::Min, AggFunc::Max] {
                            out.push((func, Some(a)));
                        }
                    }
                }
                out
            }
            AggSelection::Explicit(list) => list
                .iter()
                .filter(|(_, attr)| attr.is_none_or(|a| !g.contains(&a)))
                .cloned()
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cape_data::{Schema, ValueType};

    fn rel() -> Relation {
        let schema = Schema::new([
            ("author", ValueType::Str),
            ("year", ValueType::Int),
            ("venue", ValueType::Str),
            ("cites", ValueType::Int),
        ])
        .unwrap();
        Relation::new(schema)
    }

    #[test]
    fn default_thresholds_match_paper() {
        let t = Thresholds::default();
        assert_eq!(t.theta, 0.5);
        assert_eq!(t.delta, 15);
        assert_eq!(t.lambda, 0.5);
        assert_eq!(t.global_support, 15);
    }

    #[test]
    fn candidate_attrs_respects_exclusions() {
        let cfg = MiningConfig { exclude: vec![3], ..MiningConfig::default() };
        assert_eq!(cfg.candidate_attrs(&rel()), vec![0, 1, 2]);
    }

    #[test]
    fn count_star_selection() {
        let cfg = MiningConfig::default();
        assert_eq!(cfg.resolve_aggs(&rel(), &[0, 1]), vec![(AggFunc::Count, None)]);
    }

    #[test]
    fn all_numeric_selection_excludes_group_attrs() {
        let cfg = MiningConfig { aggs: AggSelection::AllNumeric, ..MiningConfig::default() };
        let aggs = cfg.resolve_aggs(&rel(), &[0, 2]);
        // count(*) + {sum,min,max} over year and cites (both numeric, not in G)
        assert_eq!(aggs.len(), 1 + 3 + 3);
        let aggs_with_year_grouped = cfg.resolve_aggs(&rel(), &[0, 1]);
        assert_eq!(aggs_with_year_grouped.len(), 1 + 3);
    }

    #[test]
    fn explicit_selection_filters_grouped_attrs() {
        let cfg = MiningConfig {
            aggs: AggSelection::Explicit(vec![(AggFunc::Count, None), (AggFunc::Sum, Some(3))]),
            ..MiningConfig::default()
        };
        assert_eq!(cfg.resolve_aggs(&rel(), &[0, 3]).len(), 1);
        assert_eq!(cfg.resolve_aggs(&rel(), &[0, 1]).len(), 2);
    }
}
