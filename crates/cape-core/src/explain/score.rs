//! Scoring (Definition 10): `score(E) = dev·isLow / (d · NORM)` with the
//! NORM factor taken from the relevant pattern's aggregation at the user
//! question's coordinates.

use crate::question::UserQuestion;
use crate::store::PatternInstance;
use cape_data::Value;

/// Added to the denominator to avoid division by zero when NORM or the
/// distance degenerates (footnote 2 of the paper).
pub const SCORE_EPSILON: f64 = 1e-6;

/// The normalization factor NORM for a relevant pattern `P` and question
/// `φ`:
/// `NORM = π_{agg(A)}(σ_{F=t[F] ∧ V=t[V]}(γ_{F∪V, agg(A)}(R)))`,
/// i.e. the question's aggregate value re-aggregated at `P`'s granularity.
/// The absolute value is used so that negative aggregates (e.g. `sum` of
/// negative numbers) cannot flip the score's sign or break the pruning
/// bound's monotonicity.
///
/// When the group is **absent** at this granularity — which happens for
/// zero-count "missing answer" questions (the open problem of the paper's
/// conclusion) — NORM degenerates; we return the neutral factor 1.0 so
/// that the score reduces to `dev / d` and the distance still
/// discriminates between candidates.
pub fn norm_factor(pattern: &PatternInstance, uq: &UserQuestion) -> f64 {
    let g = pattern.arp.g_attrs();
    let Some(wanted) = uq.values_of(&g) else {
        return 1.0;
    };
    let Some(cols) = pattern.data.cols_of_attrs(&g) else {
        return 1.0;
    };
    let rel = &pattern.data.relation;
    for i in 0..rel.num_rows() {
        if cols.iter().zip(&wanted).all(|(&c, w)| rel.value(i, c) == *w) {
            return pattern.data.agg_value(i, pattern.agg_col).unwrap_or(0.0).abs();
        }
    }
    1.0
}

/// The score of Definition 10 from its ingredients.
pub fn score_value(deviation: f64, is_low_sign: f64, distance: f64, norm: f64) -> f64 {
    deviation * is_low_sign / (distance * norm + SCORE_EPSILON)
}

/// The upper score bound `score_↑(φ, P, P')` of §3.5 from the refinement's
/// deviation bound, the distance lower bound, and `P`'s NORM.
pub fn score_upper_bound(dev_bound: f64, dist_lower: f64, norm: f64) -> f64 {
    dev_bound / (dist_lower * norm + SCORE_EPSILON)
}

/// Whether a pattern is **relevant** for a question (Definition 5): the
/// pattern uses the same aggregate, generalizes the question
/// (`F ∪ V ⊆ G`), and holds locally on `t[F]`. Returns the fragment key
/// `t[F]` on success so callers can reuse it.
pub fn relevant_fragment(pattern: &PatternInstance, uq: &UserQuestion) -> Option<Vec<Value>> {
    if pattern.arp.agg != uq.agg || pattern.arp.agg_attr != uq.agg_attr {
        return None;
    }
    if !uq.covers_attrs(&pattern.arp.g_attrs()) {
        return None;
    }
    let f_vals = uq.values_of(pattern.arp.f())?;
    if pattern.local(&f_vals).is_some() {
        Some(f_vals)
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{MiningConfig, Thresholds};
    use crate::mining::{Miner, ShareGrpMiner};
    use crate::question::Direction;
    use cape_data::{AggFunc, Relation, Schema, ValueType};

    /// Authors with constant publication counts; author a0 publishes 4/yr.
    fn mined() -> (Relation, crate::store::PatternStore) {
        let schema = Schema::new([
            ("author", ValueType::Str),
            ("year", ValueType::Int),
            ("venue", ValueType::Str),
        ])
        .unwrap();
        let mut rel = Relation::new(schema);
        for a in 0..3 {
            for y in 0..6 {
                for p in 0..4 {
                    rel.push_row(vec![
                        Value::str(format!("a{a}")),
                        Value::Int(2000 + y),
                        Value::str(if p % 2 == 0 { "KDD" } else { "ICDE" }),
                    ])
                    .unwrap();
                }
            }
        }
        let cfg = MiningConfig {
            thresholds: Thresholds::new(0.3, 3, 0.5, 2),
            psi: 2,
            ..MiningConfig::default()
        };
        let out = ShareGrpMiner.mine(&rel, &cfg).unwrap();
        (rel, out.store)
    }

    fn question() -> UserQuestion {
        UserQuestion::new(
            vec![0, 1, 2],
            AggFunc::Count,
            None,
            vec![Value::str("a0"), Value::Int(2003), Value::str("KDD")],
            2.0,
            Direction::Low,
        )
    }

    #[test]
    fn relevance_requires_local_hold_and_coverage() {
        let (_, store) = mined();
        let uq = question();
        let (_, author_year) = store
            .iter()
            .find(|(_, p)| p.arp.f() == [0] && p.arp.v() == [1])
            .expect("author/year pattern mined");
        let frag = relevant_fragment(author_year, &uq);
        assert_eq!(frag, Some(vec![Value::str("a0")]));

        // A question grouped only on (author, year) cannot use patterns
        // mentioning venue.
        let narrow = UserQuestion::new(
            vec![0, 1],
            AggFunc::Count,
            None,
            vec![Value::str("a0"), Value::Int(2003)],
            4.0,
            Direction::Low,
        );
        let venue_pattern = store.iter().find(|(_, p)| p.arp.g_attrs().contains(&2));
        if let Some((_, venue_pattern)) = venue_pattern {
            assert_eq!(relevant_fragment(venue_pattern, &narrow), None);
        };
    }

    #[test]
    fn relevance_requires_same_aggregate() {
        let (_, store) = mined();
        let mut uq = question();
        uq.agg = AggFunc::Sum;
        uq.agg_attr = Some(1);
        for (_, p) in store.iter() {
            assert_eq!(relevant_fragment(p, &uq), None);
        }
    }

    #[test]
    fn norm_is_the_question_value_at_pattern_granularity() {
        let (_, store) = mined();
        let uq = question();
        let (_, author_year) =
            store.iter().find(|(_, p)| p.arp.f() == [0] && p.arp.v() == [1]).unwrap();
        // a0 publishes 4 papers in 2003 overall.
        assert_eq!(norm_factor(author_year, &uq), 4.0);
    }

    #[test]
    fn norm_neutral_when_group_missing() {
        // Missing groups (zero-count questions) get the neutral factor 1.
        let (_, store) = mined();
        let mut uq = question();
        uq.tuple[0] = Value::str("nobody");
        let (_, author_year) =
            store.iter().find(|(_, p)| p.arp.f() == [0] && p.arp.v() == [1]).unwrap();
        assert_eq!(norm_factor(author_year, &uq), 1.0);
    }

    #[test]
    fn score_math() {
        // low question: positive deviation, closer and smaller-NORM wins.
        let s1 = score_value(2.0, 1.0, 0.5, 4.0);
        let s2 = score_value(2.0, 1.0, 0.9, 4.0);
        assert!(s1 > s2);
        let s3 = score_value(2.0, 1.0, 0.5, 40.0);
        assert!(s1 > s3);
        // high question: negative deviation yields positive score.
        assert!(score_value(-2.0, -1.0, 0.5, 4.0) > 0.0);
        // epsilon guards zero denominators.
        assert!(score_value(2.0, 1.0, 0.0, 0.0).is_finite());
        // Upper bound dominates any same-ingredient score.
        assert!(score_upper_bound(2.0, 0.5, 4.0) >= s1);
    }
}
