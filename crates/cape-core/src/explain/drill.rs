//! Shared drill-down: enumerate counterbalance tuples for one
//! `(relevant pattern, refinement)` pair and offer them to the top-k heap.

use crate::explain::candidate::Explanation;
use crate::explain::score::score_value;
use crate::explain::topk::TopK;
use crate::explain::{ExplainConfig, ExplainStats};
use crate::question::UserQuestion;
use crate::store::PatternInstance;
use cape_data::{AttrId, Value};

/// Iterate all tuples `t' ∈ γ_{F'∪V, agg(A)}(R)` for refinement `p2`,
/// apply the conditions of Definition 7, score survivors against the
/// relevant pattern's NORM, and push them into `topk`.
#[allow(clippy::too_many_arguments)]
pub(crate) fn drill_down(
    p_idx: usize,
    p: &PatternInstance,
    f_vals: &[Value],
    norm: f64,
    p2_idx: usize,
    p2: &PatternInstance,
    uq: &UserQuestion,
    cfg: &ExplainConfig,
    topk: &mut TopK,
    stats: &mut ExplainStats,
) {
    let rel = &p2.data.relation;
    let Some(f_cols) = p2.data.cols_of_attrs(p.arp.f()) else {
        return; // refinement's data must contain P's partition attributes
    };
    // Attributes of t' in output order: F' then V.
    let mut t_attrs: Vec<AttrId> = p2.arp.f().to_vec();
    t_attrs.extend_from_slice(p2.arp.v());
    let Some(t_cols) = p2.data.cols_of_attrs(&t_attrs) else {
        return;
    };
    let fprime_cols = p2.data.cols_of_attrs(p2.arp.f()).expect("F' within its own data");

    // Same-schema check data: when G_{P'} equals the question's group-by
    // set, t' = t must be excluded (condition 4 of Definition 7).
    let mut uq_sorted: Vec<AttrId> = uq.group_attrs.clone();
    uq_sorted.sort_unstable();
    let same_schema = p2.arp.g_attrs() == uq_sorted;
    let uq_vals_for_t: Option<Vec<Value>> = if same_schema {
        Some(t_attrs.iter().map(|&a| uq.value_of(a).expect("covered attr").clone()).collect())
    } else {
        None
    };

    for i in 0..rel.num_rows() {
        stats.tuples_checked += 1;

        // (4a) t'[F] = t[F].
        if f_cols.iter().zip(f_vals).any(|(&c, w)| rel.value(i, c) != w) {
            continue;
        }
        let t_vals = rel.row_project(i, &t_cols);
        // (4b) t' ≠ t when over the same schema.
        if let Some(uq_vals) = &uq_vals_for_t {
            if &t_vals == uq_vals {
                continue;
            }
        }
        // (3) t'[F'] must hold locally under P'.
        let fprime_key = rel.row_project(i, &fprime_cols);
        let Some(local) = p2.local(&fprime_key) else {
            continue;
        };
        // (5) Deviation in the opposite direction.
        let Some(x) = p2.predictor_vec(i) else { continue };
        let Some(actual) = p2.data.agg_value(i, p2.agg_col) else { continue };
        let predicted = local.fitted.model.predict(&x);
        let deviation = actual - predicted;
        if !uq.dir.counterbalances(deviation) {
            continue;
        }
        stats.candidates_generated += 1;

        let distance = cfg.distance.tuple_distance(&uq.group_attrs, &uq.tuple, &t_attrs, &t_vals);
        let score = score_value(deviation, uq.dir.is_low_sign(), distance, norm);
        topk.offer(Explanation {
            pattern_idx: p_idx,
            refinement_idx: p2_idx,
            attrs: t_attrs.clone(),
            tuple: t_vals,
            agg_value: actual,
            predicted,
            deviation,
            distance,
            norm,
            score,
        });
    }
}
