//! Shared drill-down: enumerate counterbalance tuples for one
//! `(relevant pattern, refinement)` pair and offer them to the top-k heap.
//!
//! The work splits into two halves with very different reuse profiles:
//!
//! * [`raw_candidates`] — the **question-independent** scan. It depends
//!   only on `(F, t[F], P')`: which rows of `P'`'s grouped data match the
//!   fragment value, hold locally, and by how much they deviate. Two
//!   questions over the same relation that share a fragment value (same
//!   author, same shop, …) produce identical raw candidate lists, which
//!   is what `cape-serve` caches and shares across concurrent requests.
//! * [`offer_candidates`] — the **question-dependent** filter and scorer:
//!   direction of counterbalance, exclusion of the question tuple itself,
//!   distance, NORM, and the top-k offer.
//!
//! [`drill_down`] is simply the composition of the two.

use crate::explain::candidate::Explanation;
use crate::explain::score::score_value;
use crate::explain::topk::TopK;
use crate::explain::{ExplainConfig, ExplainStats};
use crate::question::UserQuestion;
use crate::store::PatternInstance;
use cape_data::{AttrId, Value};

/// One tuple `t'` of a refinement's grouped data that matches the
/// fragment value and holds locally, together with its deviation — before
/// any question-specific filtering.
#[derive(Debug, Clone, PartialEq)]
pub struct RawCandidate {
    /// Values of `t'` over [`DrillResult::attrs`] (`F'` then `V` order).
    pub tuple: Vec<Value>,
    /// Actual aggregate value of `t'`.
    pub agg_value: f64,
    /// Local-model prediction for `t'`.
    pub predicted: f64,
    /// `agg_value − predicted` (Definition 8), any sign.
    pub deviation: f64,
}

/// The question-independent part of one `(F, t[F], P')` drill-down:
/// matching, locally-holding rows with their deviations.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct DrillResult {
    /// Attributes of each candidate tuple, in `F'` then `V` order.
    pub attrs: Vec<AttrId>,
    /// Candidate tuples (both deviation signs — callers filter by
    /// direction).
    pub candidates: Vec<RawCandidate>,
    /// Rows of the refinement's grouped relation that were scanned;
    /// feeds the `tuples_checked` statistic.
    pub rows_scanned: usize,
}

/// Scan refinement `p2` for rows whose `F`-projection equals `f_vals`
/// (condition 4a of Definition 7) and that hold locally under `P'`
/// (condition 3), recording each row's deviation. Depends only on
/// `(f_attrs, f_vals, p2)` — never on the user question — so the result
/// is cacheable and shareable across questions.
pub fn raw_candidates(f_attrs: &[AttrId], f_vals: &[Value], p2: &PatternInstance) -> DrillResult {
    let rel = &p2.data.relation;
    let Some(f_cols) = p2.data.cols_of_attrs(f_attrs) else {
        return DrillResult::default(); // refinement must contain P's partition attributes
    };
    // Attributes of t' in output order: F' then V.
    let mut t_attrs: Vec<AttrId> = p2.arp.f().to_vec();
    t_attrs.extend_from_slice(p2.arp.v());
    let Some(t_cols) = p2.data.cols_of_attrs(&t_attrs) else {
        return DrillResult::default();
    };
    let fprime_cols = p2.data.cols_of_attrs(p2.arp.f()).expect("F' within its own data");

    let mut out =
        DrillResult { attrs: t_attrs, candidates: Vec::new(), rows_scanned: rel.num_rows() };
    for i in 0..rel.num_rows() {
        // (4a) t'[F] = t[F].
        if f_cols.iter().zip(f_vals).any(|(&c, w)| rel.value(i, c) != *w) {
            continue;
        }
        // (3) t'[F'] must hold locally under P'.
        let fprime_key = rel.row_project(i, &fprime_cols);
        let Some(local) = p2.local(&fprime_key) else {
            continue;
        };
        let Some(x) = p2.predictor_vec(i) else { continue };
        let Some(actual) = p2.data.agg_value(i, p2.agg_col) else { continue };
        let predicted = local.fitted.model.predict(&x);
        out.candidates.push(RawCandidate {
            tuple: rel.row_project(i, &t_cols),
            agg_value: actual,
            predicted,
            deviation: actual - predicted,
        });
    }
    out
}

/// Apply the question-dependent conditions of Definition 7 to a raw
/// drill-down result — counterbalancing direction (condition 5) and
/// exclusion of the question tuple itself when `G_{P'}` equals the
/// question's group-by set (condition 4b) — then score survivors against
/// the relevant pattern's NORM and push them into `topk`.
#[allow(clippy::too_many_arguments)]
pub fn offer_candidates(
    drill: &DrillResult,
    p_idx: usize,
    p2_idx: usize,
    p2: &PatternInstance,
    norm: f64,
    uq: &UserQuestion,
    cfg: &ExplainConfig,
    topk: &mut TopK,
    stats: &mut ExplainStats,
) {
    // Same-schema check data: when G_{P'} equals the question's group-by
    // set, t' = t must be excluded (condition 4 of Definition 7).
    let mut uq_sorted: Vec<AttrId> = uq.group_attrs.clone();
    uq_sorted.sort_unstable();
    let same_schema = p2.arp.g_attrs() == uq_sorted;
    let uq_vals_for_t: Option<Vec<Value>> = if same_schema {
        Some(drill.attrs.iter().map(|&a| uq.value_of(a).expect("covered attr").clone()).collect())
    } else {
        None
    };

    for cand in &drill.candidates {
        // (4b) t' ≠ t when over the same schema.
        if let Some(uq_vals) = &uq_vals_for_t {
            if &cand.tuple == uq_vals {
                continue;
            }
        }
        // (5) Deviation in the opposite direction.
        if !uq.dir.counterbalances(cand.deviation) {
            continue;
        }
        stats.candidates_generated += 1;

        let distance =
            cfg.distance.tuple_distance(&uq.group_attrs, &uq.tuple, &drill.attrs, &cand.tuple);
        let score = score_value(cand.deviation, uq.dir.is_low_sign(), distance, norm);
        topk.offer(Explanation {
            pattern_idx: p_idx,
            refinement_idx: p2_idx,
            attrs: drill.attrs.clone(),
            tuple: cand.tuple.clone(),
            agg_value: cand.agg_value,
            predicted: cand.predicted,
            deviation: cand.deviation,
            distance,
            norm,
            score,
        });
    }
}

/// Iterate all tuples `t' ∈ γ_{F'∪V, agg(A)}(R)` for refinement `p2`,
/// apply the conditions of Definition 7, score survivors against the
/// relevant pattern's NORM, and push them into `topk`.
#[allow(clippy::too_many_arguments)]
pub(crate) fn drill_down(
    p_idx: usize,
    p: &PatternInstance,
    f_vals: &[Value],
    norm: f64,
    p2_idx: usize,
    p2: &PatternInstance,
    uq: &UserQuestion,
    cfg: &ExplainConfig,
    topk: &mut TopK,
    stats: &mut ExplainStats,
) {
    let drill = raw_candidates(p.arp.f(), f_vals, p2);
    stats.tuples_checked += drill.rows_scanned;
    offer_candidates(&drill, p_idx, p2_idx, p2, norm, uq, cfg, topk, stats);
}
