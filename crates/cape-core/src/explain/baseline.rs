//! The baseline explainer of Appendix A.2: counterbalances are sought in
//! the *query result itself*, scored by deviation from the result's
//! average divided by distance — no patterns, no drill-down.
//!
//! The paper uses this to show what pattern-awareness buys: the baseline
//! prefers tuples whose absolute value is high/low even when that value is
//! entirely expected (e.g. venues an author rarely publishes in).

use crate::explain::candidate::Explanation;
use crate::explain::score::SCORE_EPSILON;
use crate::explain::topk::TopK;
use crate::explain::ExplainConfig;
use crate::question::UserQuestion;
use cape_data::ops::aggregate;
use cape_data::{AggSpec, Relation, Result};
use std::time::Instant;

/// Sentinel pattern index for baseline explanations (no pattern involved).
pub const NO_PATTERN: usize = usize::MAX;

/// The non-pattern baseline explainer.
#[derive(Debug, Clone, Copy, Default)]
pub struct BaselineExplainer;

/// Stats for the baseline run.
#[derive(Debug, Clone, Default)]
pub struct BaselineStats {
    /// Wall-clock time.
    pub time: std::time::Duration,
    /// Result tuples examined.
    pub tuples_checked: usize,
}

impl BaselineExplainer {
    /// Generate top-k baseline explanations for `uq` by evaluating the
    /// question's query on `rel` and ranking counterbalancing result
    /// tuples by `(deviation from result average) / distance`.
    pub fn explain(
        &self,
        rel: &Relation,
        uq: &UserQuestion,
        cfg: &ExplainConfig,
    ) -> Result<(Vec<Explanation>, BaselineStats)> {
        let t0 = Instant::now();
        let mut span = cape_obs::span("explain.baseline");
        let mut stats = BaselineStats::default();

        let spec = AggSpec { func: uq.agg, attr: uq.agg_attr };
        let result = aggregate(rel, &uq.group_attrs, &[spec])?.relation;
        let agg_col = uq.group_attrs.len();

        // Average aggregate value over the whole query result.
        let mut sum = 0.0;
        let mut n = 0usize;
        for i in 0..result.num_rows() {
            if let Some(v) = result.value(i, agg_col).as_f64() {
                sum += v;
                n += 1;
            }
        }
        if n == 0 {
            return Ok((Vec::new(), stats));
        }
        let avg = sum / n as f64;

        let mut topk = TopK::new(cfg.k);
        let key_cols: Vec<usize> = (0..uq.group_attrs.len()).collect();
        for i in 0..result.num_rows() {
            stats.tuples_checked += 1;
            let Some(actual) = result.value(i, agg_col).as_f64() else { continue };
            let tuple = result.row_project(i, &key_cols);
            if tuple == uq.tuple {
                continue; // the questioned tuple itself
            }
            let deviation = actual - avg;
            if !uq.dir.counterbalances(deviation) {
                continue;
            }
            let distance =
                cfg.distance.tuple_distance(&uq.group_attrs, &uq.tuple, &uq.group_attrs, &tuple);
            let score = deviation * uq.dir.is_low_sign() / (distance + SCORE_EPSILON);
            topk.offer(Explanation {
                pattern_idx: NO_PATTERN,
                refinement_idx: NO_PATTERN,
                attrs: uq.group_attrs.clone(),
                tuple,
                agg_value: actual,
                predicted: avg,
                deviation,
                distance,
                norm: 1.0,
                score,
            });
        }

        stats.time = t0.elapsed();
        span.add("tuples_checked", stats.tuples_checked as u64);
        drop(span);
        cape_obs::counter_add("explain.baseline_tuples_checked", stats.tuples_checked as u64);
        Ok((topk.into_sorted_vec(), stats))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::explain::naive::tests::{planted, question};

    #[test]
    fn baseline_prefers_extreme_absolute_values() {
        let rel = planted();
        let cfg = ExplainConfig::default_for(&rel, 5);
        let (expls, stats) = BaselineExplainer.explain(&rel, &question(), &cfg).unwrap();
        assert!(!expls.is_empty());
        assert!(stats.tuples_checked > 0);
        // All explanations counterbalance (above-average counts for a low
        // question) and carry the sentinel pattern index.
        for e in &expls {
            assert!(e.deviation > 0.0);
            assert_eq!(e.pattern_idx, NO_PATTERN);
        }
        // The 4-publication (a0, ICDE, 2003) spike is the most extreme
        // value closest to the question.
        assert!(expls[0].tuple.contains(&cape_data::Value::Int(2003)));
    }

    #[test]
    fn baseline_never_returns_question_tuple() {
        let rel = planted();
        let cfg = ExplainConfig::default_for(&rel, 100);
        let uq = question();
        let (expls, _) = BaselineExplainer.explain(&rel, &uq, &cfg).unwrap();
        assert!(expls.iter().all(|e| e.tuple != uq.tuple));
    }

    #[test]
    fn baseline_on_empty_relation() {
        let rel = planted();
        let empty = cape_data::Relation::new(rel.schema().clone());
        let cfg = ExplainConfig::default_for(&rel, 5);
        let (expls, _) = BaselineExplainer.explain(&empty, &question(), &cfg).unwrap();
        assert!(expls.is_empty());
    }
}
