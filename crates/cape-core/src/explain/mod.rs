//! Explanation generation (Section 3): relevant patterns, drill-down via
//! refinements, scoring, and top-k selection — in a naive variant
//! (Algorithm 1) and an optimized variant with upper-bound pruning
//! (§3.5), plus the non-pattern baseline of Appendix A.2.

pub mod baseline;
pub mod candidate;
pub mod distance;
pub mod drill;
pub mod generalize;
pub mod naive;
pub mod optimized;
pub mod provenance;
pub mod score;
pub mod summarize;
pub mod topk;

pub use baseline::BaselineExplainer;
pub use candidate::{render_table, Explanation};
pub use distance::{AttrDistanceFn, DistanceModel};
pub use drill::{offer_candidates, raw_candidates, DrillResult, RawCandidate};
pub use generalize::{generalizations, GeneralizationFinding};
pub use naive::NaiveExplainer;
pub use optimized::OptimizedExplainer;
pub use provenance::{provenance_of, summarize as summarize_provenance, ProvenanceSummary};
pub use score::{norm_factor, relevant_fragment, score_value, SCORE_EPSILON};
pub use summarize::{
    relative_loss, render_summaries, summarize, SummarizeConfig, Summary, SummaryFragment,
    DEFAULT_MAX_LOSS, DEFAULT_MIN_MEMBERS,
};
pub use topk::TopK;

use crate::question::UserQuestion;
use crate::store::PatternStore;
use cape_data::Relation;
use std::time::Duration;

/// Configuration for explanation generation.
#[derive(Debug, Clone)]
pub struct ExplainConfig {
    /// Number of explanations to return.
    pub k: usize,
    /// Tuple distance model (weights + per-attribute distances).
    pub distance: DistanceModel,
}

impl ExplainConfig {
    /// Default distances for `rel`, returning the top `k` explanations.
    pub fn default_for(rel: &Relation, k: usize) -> Self {
        ExplainConfig { k, distance: DistanceModel::default_for(rel) }
    }
}

/// Instrumentation collected during one explanation run (Figure 6).
#[derive(Debug, Clone, Default)]
pub struct ExplainStats {
    /// Wall-clock time of the run.
    pub time: Duration,
    /// Patterns relevant to the question.
    pub patterns_relevant: usize,
    /// `(P, P')` refinement pairs considered.
    pub refinements_considered: usize,
    /// Refinement pairs skipped by the upper score bound.
    pub refinements_pruned: usize,
    /// Candidate tuples `t'` examined.
    pub tuples_checked: usize,
    /// Candidates satisfying all conditions of Definition 7.
    pub candidates_generated: usize,
}

impl ExplainStats {
    /// Publish this run's statistics to the installed recorders as
    /// `explain.*` counters plus an `explain.run_ns` histogram sample.
    /// Zero-valued counters are published too, so a snapshot always
    /// contains the full `explain.*` key set after a run.
    pub fn publish(&self) {
        cape_obs::counter_add("explain.patterns_relevant", self.patterns_relevant as u64);
        cape_obs::counter_add("explain.refinements_considered", self.refinements_considered as u64);
        cape_obs::counter_add("explain.refinements_pruned", self.refinements_pruned as u64);
        cape_obs::counter_add("explain.tuples_checked", self.tuples_checked as u64);
        cape_obs::counter_add("explain.candidates_generated", self.candidates_generated as u64);
        cape_obs::observe_ns("explain.run_ns", self.time.as_nanos() as u64);
    }
}

/// A top-k explanation generator over a mined pattern store.
pub trait TopKExplainer {
    /// Name used in benchmark output.
    fn name(&self) -> &'static str;

    /// Generate the top-k explanations for `uq` from `store`.
    fn explain(
        &self,
        store: &PatternStore,
        uq: &UserQuestion,
        cfg: &ExplainConfig,
    ) -> (Vec<Explanation>, ExplainStats);
}
