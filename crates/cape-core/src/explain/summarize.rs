//! Post-top-k summarization: merge high-scoring counterbalance tuples
//! into maximal common-ancestor summaries in the refinement lattice.
//!
//! Ten near-duplicate tuples from the same fragment are one insight, not
//! ten. Following "Summarized Causal Explanations For Aggregate Views"
//! (Youngmann et al.), the top-k heap is post-processed greedily: each
//! high-scoring tuple is coarsened to the **coarsest** `F''`-fragment in
//! the existing lattice (an ancestor `P''` with `F'' ⊆ F'`, same `V`,
//! same aggregate — Definition 6 read upward) that covers at least
//! `min_members` top-k tuples whose relative score loss against the best
//! member stays within `max_loss`. Tuples that cannot be merged fall back
//! to singleton summaries — **no tuple is ever dropped**, so the member
//! union of the summaries is exactly the raw top-k.
//!
//! Summarization is strictly a post-processing layer: it consumes the
//! deterministic sorted output of [`TopK`](crate::explain::TopK) and
//! touches neither drill-down caching nor deadline handling upstream.

use crate::explain::candidate::Explanation;
use crate::explain::score::SCORE_EPSILON;
use crate::store::{project_tuple, PatternStore};
use cape_data::{AttrId, Schema, Value};
use std::time::Instant;

/// Default minimum members for a merged (non-singleton) summary.
pub const DEFAULT_MIN_MEMBERS: usize = 2;
/// Default bound on the relative score loss within one summary.
pub const DEFAULT_MAX_LOSS: f64 = 0.5;

/// Knobs of the greedy coarsening.
#[derive(Debug, Clone, PartialEq)]
pub struct SummarizeConfig {
    /// A common-ancestor fragment must cover at least this many top-k
    /// tuples to be emitted as a merged summary (values < 1 behave as 1).
    pub min_members: usize,
    /// Maximum relative score loss of any member against the summary's
    /// best member: `(best − score) / max(|best|, ε) ≤ max_loss`.
    pub max_loss: f64,
}

impl Default for SummarizeConfig {
    fn default() -> Self {
        SummarizeConfig { min_members: DEFAULT_MIN_MEMBERS, max_loss: DEFAULT_MAX_LOSS }
    }
}

/// A fragment predicate `⋀ attr = value` in the refinement lattice. The
/// attrs are a (sorted) `F''` of some stored pattern; every member tuple
/// of the summary satisfies the predicate, so the rows matching a
/// member's full `F' ∪ V` tuple are a subset of the rows matching the
/// fragment (predicate subsumption).
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct SummaryFragment {
    /// Fragment attributes (sorted, as stored in the pattern's `F`).
    pub attrs: Vec<AttrId>,
    /// Fragment values, aligned with `attrs`.
    pub values: Vec<Value>,
}

impl SummaryFragment {
    /// Whether a tuple given as parallel `(attrs, values)` arrays
    /// satisfies this fragment's predicate.
    pub fn covers(&self, attrs: &[AttrId], tuple: &[Value]) -> bool {
        project_tuple(attrs, tuple, &self.attrs).is_some_and(|vals| vals == self.values)
    }

    /// Render as `[author=AX, year=2007]`.
    pub fn display(&self, schema: &Schema) -> String {
        let parts: Vec<String> = self
            .attrs
            .iter()
            .zip(&self.values)
            .map(|(&a, v)| {
                let name = schema
                    .attr(a)
                    .map(|at| at.name().to_string())
                    .unwrap_or_else(|_| format!("#{a}"));
                format!("{name}={v}")
            })
            .collect();
        format!("[{}]", parts.join(", "))
    }
}

/// One merged (or singleton) summary over the input top-k slice.
#[derive(Debug, Clone, PartialEq)]
pub struct Summary {
    /// The common-ancestor fragment covering every member.
    pub fragment: SummaryFragment,
    /// Indices into the input explanation slice, ascending (best first,
    /// since the input is sorted best-first).
    pub members: Vec<usize>,
    /// `(best, worst)` member scores.
    pub score_range: (f64, f64),
    /// Index of the best-scoring member (always `members[0]`).
    pub representative: usize,
}

impl Summary {
    /// Relative score loss between the best and worst member.
    pub fn loss(&self) -> f64 {
        relative_loss(self.score_range.0, self.score_range.1)
    }
}

/// Relative score loss of `score` against `best` (non-negative when
/// `best ≥ score`; the ε guard keeps near-zero best scores finite).
pub fn relative_loss(best: f64, score: f64) -> f64 {
    (best - score) / best.abs().max(SCORE_EPSILON)
}

/// Candidate ancestor fragments of one explanation, coarsest first: for
/// every stored pattern `P''` that the explanation's refinement `P'`
/// refines (`F'' ⊆ F'`, same `V`, same aggregate), the projection of the
/// counterbalance tuple onto `F''`. Deterministically ordered by
/// `(|F''|, attrs, values)` and deduplicated — two ancestor patterns
/// differing only in model type yield one fragment.
fn ancestor_fragments(e: &Explanation, store: &PatternStore) -> Vec<SummaryFragment> {
    let Some(refinement) = store.get(e.refinement_idx) else {
        return Vec::new();
    };
    let mut out: Vec<SummaryFragment> = Vec::new();
    for (_, inst) in store.iter() {
        if !inst.arp.is_refined_by(&refinement.arp) {
            continue;
        }
        let attrs = inst.arp.f().to_vec();
        let Some(values) = project_tuple(&e.attrs, &e.tuple, &attrs) else {
            continue;
        };
        let frag = SummaryFragment { attrs, values };
        if !out.contains(&frag) {
            out.push(frag);
        }
    }
    out.sort_by(|a, b| a.attrs.len().cmp(&b.attrs.len()).then_with(|| a.cmp(b)));
    out
}

/// The fallback fragment of an unmergeable tuple: its refinement's own
/// `F'` fragment when the refinement is in the store, else the full
/// `(attrs, tuple)` of the explanation (covers the baseline explainer's
/// `NO_PATTERN` sentinel and stores with no matching lattice node).
fn singleton_fragment(e: &Explanation, store: &PatternStore) -> SummaryFragment {
    if let Some(inst) = store.get(e.refinement_idx) {
        let attrs = inst.arp.f().to_vec();
        if let Some(values) = project_tuple(&e.attrs, &e.tuple, &attrs) {
            return SummaryFragment { attrs, values };
        }
    }
    SummaryFragment { attrs: e.attrs.clone(), values: e.tuple.clone() }
}

/// Greedily coarsen a sorted top-k slice into common-ancestor summaries.
///
/// `expls` must be sorted best-first (the deterministic order produced by
/// [`TopK::into_sorted_vec`](crate::explain::TopK::into_sorted_vec));
/// the output is then itself deterministic and insertion-order
/// independent, sorted by best member score descending (each summary's
/// representative is the best unassigned tuple at the time it seeded).
///
/// Every input index appears in exactly one summary's `members`.
/// Publishes `explain.summarize_ns`, `explain.summaries_emitted`, and
/// `explain.tuples_merged` to the installed `cape-obs` recorders.
pub fn summarize(
    expls: &[Explanation],
    store: &PatternStore,
    cfg: &SummarizeConfig,
) -> Vec<Summary> {
    let start = Instant::now();
    let min_members = cfg.min_members.max(1);
    let mut assigned = vec![false; expls.len()];
    let mut out = Vec::new();
    for seed in 0..expls.len() {
        if assigned[seed] {
            continue;
        }
        let best = expls[seed].score;
        // Pick the coarsest qualifying ancestor fragment; among equally
        // coarse candidates, the one covering the most tuples (ties are
        // already broken by the candidates' (attrs, values) order).
        let mut chosen: Option<(SummaryFragment, Vec<usize>)> = None;
        for frag in ancestor_fragments(&expls[seed], store) {
            if let Some((cf, _)) = &chosen {
                if frag.attrs.len() > cf.attrs.len() {
                    break; // candidates are coarsest-first
                }
            }
            let members: Vec<usize> = (seed..expls.len())
                .filter(|&j| {
                    !assigned[j]
                        && relative_loss(best, expls[j].score) <= cfg.max_loss
                        && frag.covers(&expls[j].attrs, &expls[j].tuple)
                })
                .collect();
            if members.len() < min_members {
                continue;
            }
            let better = match &chosen {
                None => true,
                Some((_, cm)) => members.len() > cm.len(),
            };
            if better {
                chosen = Some((frag, members));
            }
        }
        match chosen {
            Some((fragment, members)) => {
                for &m in &members {
                    assigned[m] = true;
                }
                let worst = members.iter().map(|&m| expls[m].score).fold(f64::INFINITY, f64::min);
                out.push(Summary {
                    fragment,
                    representative: members[0],
                    score_range: (expls[members[0]].score, worst),
                    members,
                });
            }
            None => {
                assigned[seed] = true;
                out.push(Summary {
                    fragment: singleton_fragment(&expls[seed], store),
                    members: vec![seed],
                    score_range: (best, best),
                    representative: seed,
                });
            }
        }
    }
    let merged = expls.len().saturating_sub(out.len());
    cape_obs::observe_ns("explain.summarize_ns", start.elapsed().as_nanos() as u64);
    cape_obs::counter_add("explain.summaries_emitted", out.len() as u64);
    cape_obs::counter_add("explain.tuples_merged", merged as u64);
    out
}

/// Render summaries as an ASCII table beneath the raw explanation table.
/// Member ranks are 1-based positions in the raw top-k list.
pub fn render_summaries(summaries: &[Summary], expls: &[Explanation], schema: &Schema) -> String {
    let mut out = String::new();
    out.push_str("summary | fragment\n");
    out.push_str("--------+---------\n");
    for (i, s) in summaries.iter().enumerate() {
        let ranks: Vec<String> = s.members.iter().map(|&m| format!("{}", m + 1)).collect();
        let members = if s.members.len() == 1 {
            format!("rank {}", ranks[0])
        } else {
            format!("{} members (ranks {})", s.members.len(), ranks.join(","))
        };
        let _ = &expls; // ranks refer into this slice; scores are carried on the summary
        out.push_str(&format!(
            "{:>7} | {} {} — score {:.2}..{:.2}\n",
            i + 1,
            s.fragment.display(schema),
            members,
            s.score_range.0,
            s.score_range.1,
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::group_data::GroupData;
    use crate::pattern::Arp;
    use crate::store::{fold_dev_bounds, LocalPattern, PatternInstance};
    use cape_data::{AggFunc, Relation, Schema, ValueType};
    use cape_regress::{Fitted, Model, ModelType};
    use std::collections::HashMap;
    use std::sync::Arc;

    // Schema: author(0), year(1), venue(2).
    fn schema() -> Schema {
        Schema::new([
            ("author", ValueType::Str),
            ("year", ValueType::Int),
            ("venue", ValueType::Str),
        ])
        .unwrap()
    }

    fn instance(f: Vec<AttrId>, v: Vec<AttrId>) -> PatternInstance {
        let mut rel = Relation::new(schema());
        for (a, y, ve) in
            [("ax", 2004, "KDD"), ("ax", 2005, "KDD"), ("ay", 2004, "ICDE"), ("ay", 2005, "ICDE")]
        {
            rel.push_row(vec![Value::str(a), Value::Int(y), Value::str(ve)]).unwrap();
        }
        let mut g: Vec<AttrId> = f.iter().chain(&v).copied().collect();
        g.sort_unstable();
        let data = GroupData::compute(&rel, &g, &[(AggFunc::Count, None)]).unwrap();
        let agg_col = data.agg_col(AggFunc::Count, None).unwrap();
        let arp = Arp::new(f, v, AggFunc::Count, None, ModelType::Const);
        let mut locals = HashMap::new();
        locals.insert(
            vec![Value::str("ax")],
            LocalPattern {
                fitted: Fitted { model: Model::Constant { beta: 1.0 }, gof: 0.9, n: 2 },
                support: 2,
                max_pos_dev: 0.5,
                max_neg_dev: -0.5,
            },
        );
        let mut inst = PatternInstance {
            arp,
            data: Arc::new(data),
            agg_col,
            locals,
            confidence: 1.0,
            num_supported: 1,
            max_pos_dev: 0.0,
            max_neg_dev: 0.0,
        };
        fold_dev_bounds(&mut inst);
        inst
    }

    /// Store with the two-level lattice `[author] ⊑ [author, venue]`.
    fn lattice_store() -> PatternStore {
        PatternStore::from_instances(vec![
            instance(vec![0], vec![1]),    // 0: [author]: year
            instance(vec![0, 2], vec![1]), // 1: [author,venue]: year
        ])
    }

    fn expl(refinement: usize, attrs: Vec<AttrId>, tuple: Vec<Value>, score: f64) -> Explanation {
        Explanation {
            pattern_idx: 0,
            refinement_idx: refinement,
            attrs,
            tuple,
            agg_value: 1.0,
            predicted: 1.0,
            deviation: 0.0,
            distance: 1.0,
            norm: 1.0,
            score,
        }
    }

    /// Refined explanation over `[author,venue]: year` for one
    /// (author, venue, year) counterbalance.
    fn refined(author: &str, venue: &str, year: i64, score: f64) -> Explanation {
        expl(1, vec![0, 2, 1], vec![Value::str(author), Value::str(venue), Value::Int(year)], score)
    }

    #[test]
    fn merges_same_author_into_common_ancestor() {
        let store = lattice_store();
        let expls = vec![
            refined("ax", "KDD", 2004, 10.0),
            refined("ax", "ICDE", 2005, 9.0),
            refined("ay", "KDD", 2004, 1.0),
        ];
        let sums = summarize(&expls, &store, &SummarizeConfig::default());
        assert_eq!(sums.len(), 2);
        // The two ax tuples merge under the coarse [author] fragment even
        // though their venues differ.
        assert_eq!(sums[0].fragment.attrs, vec![0]);
        assert_eq!(sums[0].fragment.values, vec![Value::str("ax")]);
        assert_eq!(sums[0].members, vec![0, 1]);
        assert_eq!(sums[0].representative, 0);
        assert_eq!(sums[0].score_range, (10.0, 9.0));
        // ay stays a singleton (score loss vs ax is irrelevant — it seeds
        // its own summary; it just has no second member).
        assert_eq!(sums[1].members, vec![2]);
        assert_eq!(sums[1].score_range, (1.0, 1.0));
    }

    #[test]
    fn max_loss_splits_a_would_be_merge() {
        let store = lattice_store();
        let expls = vec![refined("ax", "KDD", 2004, 10.0), refined("ax", "ICDE", 2005, 1.0)];
        // 90% loss > 50% bound: two singletons.
        let sums = summarize(&expls, &store, &SummarizeConfig::default());
        assert_eq!(sums.len(), 2);
        assert!(sums.iter().all(|s| s.members.len() == 1));
        // A permissive bound merges them.
        let sums = summarize(&expls, &store, &SummarizeConfig { min_members: 2, max_loss: 1.0 });
        assert_eq!(sums.len(), 1);
        assert_eq!(sums[0].members, vec![0, 1]);
        assert!((sums[0].loss() - 0.9).abs() < 1e-9);
    }

    #[test]
    fn min_members_gates_merging() {
        let store = lattice_store();
        let expls = vec![
            refined("ax", "KDD", 2004, 10.0),
            refined("ax", "ICDE", 2005, 9.0),
            refined("ax", "KDD", 2006, 8.5),
        ];
        let sums = summarize(&expls, &store, &SummarizeConfig { min_members: 4, max_loss: 0.5 });
        assert_eq!(sums.len(), 3, "a 4-member floor over 3 tuples forces singletons");
        let sums = summarize(&expls, &store, &SummarizeConfig { min_members: 3, max_loss: 0.5 });
        assert_eq!(sums.len(), 1);
        assert_eq!(sums[0].members, vec![0, 1, 2]);
    }

    #[test]
    fn every_member_covered_and_no_tuple_dropped() {
        let store = lattice_store();
        let expls = vec![
            refined("ax", "KDD", 2004, 10.0),
            refined("ay", "KDD", 2004, 9.5),
            refined("ax", "ICDE", 2005, 9.0),
            refined("ay", "ICDE", 2005, 8.0),
        ];
        let sums = summarize(&expls, &store, &SummarizeConfig::default());
        let mut seen = vec![false; expls.len()];
        for s in &sums {
            assert_eq!(s.representative, s.members[0]);
            for &m in &s.members {
                assert!(!seen[m], "member {m} assigned twice");
                seen[m] = true;
                assert!(s.fragment.covers(&expls[m].attrs, &expls[m].tuple));
                assert!(relative_loss(s.score_range.0, expls[m].score) <= 0.5 + 1e-12);
            }
        }
        assert!(seen.iter().all(|&s| s), "every top-k tuple is a member of some summary");
    }

    #[test]
    fn empty_and_singleton_topk() {
        let store = lattice_store();
        assert!(summarize(&[], &store, &SummarizeConfig::default()).is_empty());
        let one = vec![refined("ax", "KDD", 2004, 5.0)];
        let sums = summarize(&one, &store, &SummarizeConfig::default());
        assert_eq!(sums.len(), 1);
        assert_eq!(sums[0].members, vec![0]);
        // Singleton falls back to the refinement's own F' fragment.
        assert_eq!(sums[0].fragment.attrs, vec![0, 2]);
    }

    #[test]
    fn unknown_refinement_falls_back_to_full_tuple() {
        let store = lattice_store();
        // The baseline explainer's NO_PATTERN sentinel: refinement index
        // outside the store.
        let e = expl(usize::MAX, vec![0, 1], vec![Value::str("ax"), Value::Int(2004)], 3.0);
        let sums = summarize(std::slice::from_ref(&e), &store, &SummarizeConfig::default());
        assert_eq!(sums.len(), 1);
        assert_eq!(sums[0].fragment.attrs, e.attrs);
        assert_eq!(sums[0].fragment.values, e.tuple);
    }

    #[test]
    fn null_values_merge_like_any_other() {
        let store = lattice_store();
        let mk = |venue: &str, year: i64, score: f64| {
            expl(1, vec![0, 2, 1], vec![Value::Null, Value::str(venue), Value::Int(year)], score)
        };
        let expls = vec![mk("KDD", 2004, 4.0), mk("ICDE", 2005, 3.5)];
        let sums = summarize(&expls, &store, &SummarizeConfig::default());
        assert_eq!(sums.len(), 1, "NULL fragment values compare equal and merge");
        assert_eq!(sums[0].fragment.values, vec![Value::Null]);
    }

    #[test]
    fn tied_scores_have_zero_loss_and_merge() {
        let store = lattice_store();
        let expls = vec![
            refined("ax", "KDD", 2004, 7.0),
            refined("ax", "ICDE", 2005, 7.0),
            refined("ax", "KDD", 2006, 7.0),
        ];
        let sums = summarize(&expls, &store, &SummarizeConfig { min_members: 2, max_loss: 0.0 });
        assert_eq!(sums.len(), 1, "zero max_loss still merges exact ties");
        assert_eq!(sums[0].score_range, (7.0, 7.0));
        assert_eq!(sums[0].loss(), 0.0);
    }

    #[test]
    fn no_common_ancestor_store_yields_singletons() {
        // Two patterns with disjoint F sets: [author] and [venue] —
        // neither refines the other, so cross-pattern tuples cannot merge.
        let store = PatternStore::from_instances(vec![
            instance(vec![0], vec![1]), // [author]: year
            instance(vec![2], vec![1]), // [venue]: year
        ]);
        let expls = vec![
            expl(0, vec![0, 1], vec![Value::str("ax"), Value::Int(2004)], 5.0),
            expl(1, vec![2, 1], vec![Value::str("KDD"), Value::Int(2004)], 4.5),
        ];
        let sums = summarize(&expls, &store, &SummarizeConfig::default());
        assert_eq!(sums.len(), 2, "no common ancestor: singletons, nothing dropped");
        assert_eq!(sums[0].members, vec![0]);
        assert_eq!(sums[1].members, vec![1]);
    }

    #[test]
    fn counters_published() {
        let rec = cape_obs::Recorder::new();
        let guard = rec.install();
        let store = lattice_store();
        let expls = vec![refined("ax", "KDD", 2004, 10.0), refined("ax", "ICDE", 2005, 9.0)];
        let _ = summarize(&expls, &store, &SummarizeConfig::default());
        drop(guard);
        let snap = rec.snapshot();
        assert_eq!(snap.counters.get("explain.summaries_emitted").copied(), Some(1));
        assert_eq!(snap.counters.get("explain.tuples_merged").copied(), Some(1));
        assert!(snap.histograms.contains_key("explain.summarize_ns"));
    }

    #[test]
    fn render_is_deterministic_text() {
        let store = lattice_store();
        let expls = vec![
            refined("ax", "KDD", 2004, 10.0),
            refined("ax", "ICDE", 2005, 9.0),
            refined("ay", "KDD", 2004, 8.0),
        ];
        let sums = summarize(&expls, &store, &SummarizeConfig::default());
        let text = render_summaries(&sums, &expls, &schema());
        assert!(text.contains("[author=ax]"), "{text}");
        assert!(text.contains("2 members (ranks 1,2)"), "{text}");
        assert!(text.contains("score 10.00..9.00"), "{text}");
    }
}
