//! Provenance view: the tuples the questioned answer was computed from.
//!
//! The paper's introduction contrasts CAPE with provenance-based
//! explanation: the provenance of `(AX, SIGKDD, 2007, 1)` is the single
//! SIGKDD paper, which cannot explain why the count is low. This module
//! implements that provenance retrieval — both as a useful primitive and
//! as the demonstration of its insufficiency (paper §1) — and is one leg
//! of the conclusion's "unified system combining counterbalance,
//! generalization and provenance".

use crate::question::UserQuestion;
use cape_data::ops::select;
use cape_data::{Predicate, Relation};

/// The provenance of a user question's tuple: all base rows with
/// `t[G] = uq.tuple` (the why-provenance of a group-by aggregate answer).
pub fn provenance_of(rel: &Relation, uq: &UserQuestion) -> Relation {
    let pred = Predicate::key_match(&uq.group_attrs, &uq.tuple);
    select(rel, &pred)
}

/// Summary statistics of the provenance (size and the aggregate's raw
/// inputs), used by reports.
#[derive(Debug, Clone, PartialEq)]
pub struct ProvenanceSummary {
    /// Number of contributing base rows.
    pub rows: usize,
    /// Aggregated attribute values of those rows (empty for `count(*)`).
    pub inputs: Vec<f64>,
}

/// Summarize the provenance of a question.
pub fn summarize(rel: &Relation, uq: &UserQuestion) -> ProvenanceSummary {
    let prov = provenance_of(rel, uq);
    let inputs = match uq.agg_attr {
        Some(a) => (0..prov.num_rows()).filter_map(|i| prov.value(i, a).as_f64()).collect(),
        None => Vec::new(),
    };
    ProvenanceSummary { rows: prov.num_rows(), inputs }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::question::Direction;
    use cape_data::{AggFunc, Schema, Value, ValueType};

    fn setup() -> (Relation, UserQuestion) {
        let schema = Schema::new([
            ("author", ValueType::Str),
            ("venue", ValueType::Str),
            ("cites", ValueType::Int),
        ])
        .unwrap();
        let rel = Relation::from_rows(
            schema,
            vec![
                vec![Value::str("AX"), Value::str("KDD"), Value::Int(10)],
                vec![Value::str("AX"), Value::str("KDD"), Value::Int(5)],
                vec![Value::str("AX"), Value::str("ICDE"), Value::Int(7)],
                vec![Value::str("AY"), Value::str("KDD"), Value::Int(3)],
            ],
        )
        .unwrap();
        let uq = UserQuestion::new(
            vec![0, 1],
            AggFunc::Count,
            None,
            vec![Value::str("AX"), Value::str("KDD")],
            2.0,
            Direction::Low,
        );
        (rel, uq)
    }

    #[test]
    fn provenance_is_the_matching_rows() {
        let (rel, uq) = setup();
        let prov = provenance_of(&rel, &uq);
        assert_eq!(prov.num_rows(), 2);
        for i in 0..prov.num_rows() {
            assert_eq!(prov.value(i, 0), Value::str("AX"));
            assert_eq!(prov.value(i, 1), Value::str("KDD"));
        }
    }

    #[test]
    fn summary_for_count_has_no_inputs() {
        let (rel, uq) = setup();
        let s = summarize(&rel, &uq);
        assert_eq!(s.rows, 2);
        assert!(s.inputs.is_empty());
    }

    #[test]
    fn summary_for_sum_collects_inputs() {
        let (rel, mut uq) = setup();
        uq.agg = AggFunc::Sum;
        uq.agg_attr = Some(2);
        uq.agg_value = 15.0;
        let s = summarize(&rel, &uq);
        assert_eq!(s.rows, 2);
        assert_eq!(s.inputs, vec![10.0, 5.0]);
    }

    #[test]
    fn provenance_of_missing_tuple_is_empty() {
        let (rel, mut uq) = setup();
        uq.tuple[0] = Value::str("nobody");
        assert!(provenance_of(&rel, &uq).is_empty());
    }
}
