//! Top-k collection with per-candidate deduplication and a **total**
//! candidate order.
//!
//! Algorithm 1 keeps a min-heap of the best k explanations. Additionally,
//! when the same `(P', t')` arises from several relevant patterns `P`, only
//! the highest-scored copy may survive (§3.3). We implement this with a
//! lazy-deletion min-heap plus a best-score map.
//!
//! Candidates are compared under a strict total order — score descending,
//! then dedup key `(refinement, tuple)` ascending — so the surviving set is
//! a function of the *candidate set only*, never of insertion order. This
//! is what lets concurrent, cached, and re-ordered explainers produce
//! byte-identical top-k lists (the `cape-serve` differential harness
//! asserts exactly that).

use crate::explain::candidate::Explanation;
use cape_data::Value;
use std::cmp::{Ordering, Reverse};
use std::collections::{BinaryHeap, HashMap};

/// Total order wrapper for finite scores.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) struct OrdF64(pub f64);

impl Eq for OrdF64 {}

impl PartialOrd for OrdF64 {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for OrdF64 {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }
}

type Key = (usize, Vec<Value>);

/// `true` when candidate `(score_a, key_a)` ranks strictly better than
/// `(score_b, key_b)`: higher score wins; equal scores break toward the
/// smaller key (refinement index, then tuple values).
fn beats(score_a: f64, key_a: &Key, score_b: f64, key_b: &Key) -> bool {
    match score_a.total_cmp(&score_b) {
        Ordering::Greater => true,
        Ordering::Less => false,
        Ordering::Equal => key_a < key_b,
    }
}

/// A size-`k` collection of the best-scored explanations, deduplicated by
/// `(refinement, tuple)`, with deterministic tie-breaking.
#[derive(Debug)]
pub struct TopK {
    k: usize,
    /// Live explanations by key.
    live: HashMap<Key, Explanation>,
    /// Min-heap of (score, key); may contain stale entries whose score no
    /// longer matches `live` (lazy deletion). The inner `Reverse<Key>`
    /// makes the heap minimum the *worst* candidate under the total
    /// order: lowest score, and among equal scores the largest key.
    heap: BinaryHeap<Reverse<(OrdF64, Reverse<Key>)>>,
}

impl TopK {
    /// Empty collection holding at most `k` explanations.
    pub fn new(k: usize) -> Self {
        TopK { k, live: HashMap::new(), heap: BinaryHeap::new() }
    }

    /// Number of live explanations (≤ k).
    pub fn len(&self) -> usize {
        self.live.len()
    }

    /// True when no explanation has been kept.
    pub fn is_empty(&self) -> bool {
        self.live.is_empty()
    }

    /// The current pruning threshold: the k-th best score once the
    /// collection is full, `None` while it still has room. Candidates with
    /// `score < threshold` cannot enter; candidates with `score ==
    /// threshold` still can (they may win the deterministic tie-break), so
    /// upper-bound pruning against this threshold must use a **strict**
    /// comparison.
    pub fn threshold(&mut self) -> Option<f64> {
        if self.live.len() < self.k {
            return None;
        }
        self.drop_stale();
        self.heap.peek().map(|Reverse((s, _))| s.0)
    }

    fn drop_stale(&mut self) {
        while let Some(Reverse((s, Reverse(key)))) = self.heap.peek() {
            match self.live.get(key) {
                Some(e) if e.score == s.0 => break,
                _ => {
                    self.heap.pop();
                }
            }
        }
    }

    /// Offer a candidate. Returns `true` if it was kept (possibly evicting
    /// a weaker one or replacing a weaker duplicate).
    pub fn offer(&mut self, expl: Explanation) -> bool {
        if self.k == 0 || !expl.score.is_finite() {
            return false;
        }
        let key = expl.key();
        if let Some(existing) = self.live.get(&key) {
            // Duplicate (P', t'): keep only the better-scored copy.
            if existing.score >= expl.score {
                return false;
            }
            self.heap.push(Reverse((OrdF64(expl.score), Reverse(key.clone()))));
            self.live.insert(key, expl);
            return true;
        }
        if self.live.len() < self.k {
            self.heap.push(Reverse((OrdF64(expl.score), Reverse(key.clone()))));
            self.live.insert(key, expl);
            return true;
        }
        // Full: must beat the current worst under the total order, so that
        // equal-score survivors never depend on insertion order.
        self.drop_stale();
        let enters = match self.heap.peek() {
            Some(Reverse((worst_score, Reverse(worst_key)))) => {
                beats(expl.score, &key, worst_score.0, worst_key)
            }
            None => true, // unreachable while full, but harmless
        };
        if !enters {
            return false;
        }
        // Evict the worst.
        if let Some(Reverse((_, Reverse(k)))) = self.heap.pop() {
            self.live.remove(&k);
        }
        self.heap.push(Reverse((OrdF64(expl.score), Reverse(key.clone()))));
        self.live.insert(key, expl);
        true
    }

    /// Extract the explanations, best first, under the same total order
    /// used for eviction (score descending, then dedup key ascending).
    pub fn into_sorted_vec(self) -> Vec<Explanation> {
        let mut v: Vec<Explanation> = self.live.into_values().collect();
        v.sort_by(|a, b| {
            b.score
                .total_cmp(&a.score)
                .then_with(|| a.refinement_idx.cmp(&b.refinement_idx))
                .then_with(|| a.tuple.cmp(&b.tuple))
        });
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn expl(refinement: usize, tag: i64, score: f64) -> Explanation {
        Explanation {
            pattern_idx: 0,
            refinement_idx: refinement,
            attrs: vec![0],
            tuple: vec![Value::Int(tag)],
            agg_value: 0.0,
            predicted: 0.0,
            deviation: 0.0,
            distance: 0.0,
            norm: 1.0,
            score,
        }
    }

    #[test]
    fn keeps_best_k() {
        let mut tk = TopK::new(3);
        for (i, s) in [5.0, 1.0, 9.0, 3.0, 7.0].iter().enumerate() {
            tk.offer(expl(0, i as i64, *s));
        }
        let v = tk.into_sorted_vec();
        let scores: Vec<f64> = v.iter().map(|e| e.score).collect();
        assert_eq!(scores, vec![9.0, 7.0, 5.0]);
    }

    #[test]
    fn threshold_appears_when_full() {
        let mut tk = TopK::new(2);
        assert_eq!(tk.threshold(), None);
        tk.offer(expl(0, 1, 4.0));
        assert_eq!(tk.threshold(), None);
        tk.offer(expl(0, 2, 6.0));
        assert_eq!(tk.threshold(), Some(4.0));
        tk.offer(expl(0, 3, 5.0));
        assert_eq!(tk.threshold(), Some(5.0));
    }

    #[test]
    fn duplicates_keep_max_score() {
        let mut tk = TopK::new(5);
        assert!(tk.offer(expl(1, 7, 3.0)));
        // Same (P', t') with lower score is rejected.
        assert!(!tk.offer(expl(1, 7, 2.0)));
        // Higher score replaces.
        assert!(tk.offer(expl(1, 7, 8.0)));
        let v = tk.into_sorted_vec();
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].score, 8.0);
    }

    #[test]
    fn stale_entries_do_not_corrupt_threshold() {
        let mut tk = TopK::new(2);
        tk.offer(expl(1, 7, 1.0));
        tk.offer(expl(1, 8, 2.0));
        // Upgrade the minimum — the old heap entry becomes stale.
        tk.offer(expl(1, 7, 5.0));
        assert_eq!(tk.threshold(), Some(2.0));
        tk.offer(expl(1, 9, 3.0)); // evicts score-2.0 entry
        let v = tk.into_sorted_vec();
        let scores: Vec<f64> = v.iter().map(|e| e.score).collect();
        assert_eq!(scores, vec![5.0, 3.0]);
    }

    #[test]
    fn rejects_below_threshold_and_nonfinite() {
        let mut tk = TopK::new(1);
        tk.offer(expl(0, 1, 5.0));
        assert!(!tk.offer(expl(0, 2, 4.0)));
        assert!(!tk.offer(expl(0, 3, f64::NAN)));
        assert!(!tk.offer(expl(0, 4, f64::INFINITY)));
        assert_eq!(tk.len(), 1);
    }

    #[test]
    fn zero_k() {
        let mut tk = TopK::new(0);
        assert!(!tk.offer(expl(0, 1, 5.0)));
        assert!(tk.is_empty());
        assert!(tk.into_sorted_vec().is_empty());
    }

    #[test]
    fn deterministic_tiebreak() {
        let mut tk = TopK::new(3);
        tk.offer(expl(2, 1, 5.0));
        tk.offer(expl(1, 1, 5.0));
        tk.offer(expl(1, 0, 5.0));
        let v = tk.into_sorted_vec();
        assert_eq!(v[0].refinement_idx, 1);
        assert_eq!(v[0].tuple, vec![Value::Int(0)]);
        assert_eq!(v[2].refinement_idx, 2);
    }

    /// Equal-score survivors are a function of the candidate *set*: every
    /// insertion order of tied candidates keeps exactly the smallest keys.
    #[test]
    fn tie_survivors_independent_of_insertion_order() {
        let tied: Vec<Explanation> =
            (0..6).map(|t| expl(1, t, 4.0)).chain((0..3).map(|t| expl(0, t, 4.0))).collect();
        let orders: Vec<Vec<usize>> = vec![
            (0..tied.len()).collect(),
            (0..tied.len()).rev().collect(),
            vec![4, 1, 7, 0, 8, 3, 6, 2, 5],
        ];
        let mut outcomes = Vec::new();
        for order in orders {
            let mut tk = TopK::new(4);
            tk.offer(expl(2, 99, 9.0)); // one clear winner above the ties
            for i in order {
                tk.offer(tied[i].clone());
            }
            let keys: Vec<(usize, Vec<Value>)> =
                tk.into_sorted_vec().iter().map(|e| e.key()).collect();
            outcomes.push(keys);
        }
        assert_eq!(outcomes[0], outcomes[1]);
        assert_eq!(outcomes[0], outcomes[2]);
        // Best first: the 9.0, then the three smallest tied keys.
        assert_eq!(
            outcomes[0],
            vec![
                (2, vec![Value::Int(99)]),
                (0, vec![Value::Int(0)]),
                (0, vec![Value::Int(1)]),
                (0, vec![Value::Int(2)]),
            ]
        );
    }

    /// A tied candidate with a smaller key evicts the largest-key survivor
    /// even when the collection is already full.
    #[test]
    fn tied_candidate_with_smaller_key_enters_full_collection() {
        let mut tk = TopK::new(2);
        tk.offer(expl(1, 5, 3.0));
        tk.offer(expl(1, 7, 3.0));
        assert!(tk.offer(expl(1, 2, 3.0)), "smaller key must enter");
        assert!(!tk.offer(expl(1, 9, 3.0)), "larger key must not");
        let v = tk.into_sorted_vec();
        assert_eq!(v[0].tuple, vec![Value::Int(2)]);
        assert_eq!(v[1].tuple, vec![Value::Int(5)]);
    }
}
