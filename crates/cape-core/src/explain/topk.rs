//! Top-k collection with per-candidate deduplication.
//!
//! Algorithm 1 keeps a min-heap of the best k explanations. Additionally,
//! when the same `(P', t')` arises from several relevant patterns `P`, only
//! the highest-scored copy may survive (§3.3). We implement this with a
//! lazy-deletion min-heap plus a best-score map.

use crate::explain::candidate::Explanation;
use cape_data::Value;
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};

/// Total order wrapper for finite scores.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) struct OrdF64(pub f64);

impl Eq for OrdF64 {}

impl PartialOrd for OrdF64 {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for OrdF64 {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }
}

type Key = (usize, Vec<Value>);

/// A size-`k` collection of the best-scored explanations, deduplicated by
/// `(refinement, tuple)`.
#[derive(Debug)]
pub struct TopK {
    k: usize,
    /// Live explanations by key.
    live: HashMap<Key, Explanation>,
    /// Min-heap of (score, key); may contain stale entries whose score no
    /// longer matches `live` (lazy deletion).
    heap: BinaryHeap<Reverse<(OrdF64, usize, Vec<Value>)>>,
}

impl TopK {
    /// Empty collection holding at most `k` explanations.
    pub fn new(k: usize) -> Self {
        TopK { k, live: HashMap::new(), heap: BinaryHeap::new() }
    }

    /// Number of live explanations (≤ k).
    pub fn len(&self) -> usize {
        self.live.len()
    }

    /// True when no explanation has been kept.
    pub fn is_empty(&self) -> bool {
        self.live.is_empty()
    }

    /// The current pruning threshold: the k-th best score once the
    /// collection is full, `None` while it still has room. Candidates with
    /// `score ≤ threshold` cannot enter.
    pub fn threshold(&mut self) -> Option<f64> {
        if self.live.len() < self.k {
            return None;
        }
        self.drop_stale();
        self.heap.peek().map(|Reverse((s, _, _))| s.0)
    }

    fn drop_stale(&mut self) {
        while let Some(Reverse((s, r, t))) = self.heap.peek() {
            let key = (*r, t.clone());
            match self.live.get(&key) {
                Some(e) if e.score == s.0 => break,
                _ => {
                    self.heap.pop();
                }
            }
        }
    }

    /// Offer a candidate. Returns `true` if it was kept (possibly evicting
    /// a weaker one or replacing a weaker duplicate).
    pub fn offer(&mut self, expl: Explanation) -> bool {
        if self.k == 0 || !expl.score.is_finite() {
            return false;
        }
        let key = expl.key();
        if let Some(existing) = self.live.get(&key) {
            // Duplicate (P', t'): keep only the better-scored copy.
            if existing.score >= expl.score {
                return false;
            }
            self.heap.push(Reverse((OrdF64(expl.score), key.0, key.1.clone())));
            self.live.insert(key, expl);
            return true;
        }
        if self.live.len() < self.k {
            self.heap.push(Reverse((OrdF64(expl.score), key.0, key.1.clone())));
            self.live.insert(key, expl);
            return true;
        }
        // Full: must beat the current minimum.
        self.drop_stale();
        let min = self.heap.peek().map(|Reverse((s, _, _))| s.0).unwrap_or(f64::NEG_INFINITY);
        if expl.score <= min {
            return false;
        }
        // Evict the minimum.
        if let Some(Reverse((_, r, t))) = self.heap.pop() {
            self.live.remove(&(r, t));
        }
        self.heap.push(Reverse((OrdF64(expl.score), key.0, key.1.clone())));
        self.live.insert(key, expl);
        true
    }

    /// Extract the explanations, best first. Ties break deterministically
    /// on the dedup key.
    pub fn into_sorted_vec(self) -> Vec<Explanation> {
        let mut v: Vec<Explanation> = self.live.into_values().collect();
        v.sort_by(|a, b| {
            b.score
                .total_cmp(&a.score)
                .then_with(|| a.refinement_idx.cmp(&b.refinement_idx))
                .then_with(|| a.tuple.cmp(&b.tuple))
        });
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn expl(refinement: usize, tag: i64, score: f64) -> Explanation {
        Explanation {
            pattern_idx: 0,
            refinement_idx: refinement,
            attrs: vec![0],
            tuple: vec![Value::Int(tag)],
            agg_value: 0.0,
            predicted: 0.0,
            deviation: 0.0,
            distance: 0.0,
            norm: 1.0,
            score,
        }
    }

    #[test]
    fn keeps_best_k() {
        let mut tk = TopK::new(3);
        for (i, s) in [5.0, 1.0, 9.0, 3.0, 7.0].iter().enumerate() {
            tk.offer(expl(0, i as i64, *s));
        }
        let v = tk.into_sorted_vec();
        let scores: Vec<f64> = v.iter().map(|e| e.score).collect();
        assert_eq!(scores, vec![9.0, 7.0, 5.0]);
    }

    #[test]
    fn threshold_appears_when_full() {
        let mut tk = TopK::new(2);
        assert_eq!(tk.threshold(), None);
        tk.offer(expl(0, 1, 4.0));
        assert_eq!(tk.threshold(), None);
        tk.offer(expl(0, 2, 6.0));
        assert_eq!(tk.threshold(), Some(4.0));
        tk.offer(expl(0, 3, 5.0));
        assert_eq!(tk.threshold(), Some(5.0));
    }

    #[test]
    fn duplicates_keep_max_score() {
        let mut tk = TopK::new(5);
        assert!(tk.offer(expl(1, 7, 3.0)));
        // Same (P', t') with lower score is rejected.
        assert!(!tk.offer(expl(1, 7, 2.0)));
        // Higher score replaces.
        assert!(tk.offer(expl(1, 7, 8.0)));
        let v = tk.into_sorted_vec();
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].score, 8.0);
    }

    #[test]
    fn stale_entries_do_not_corrupt_threshold() {
        let mut tk = TopK::new(2);
        tk.offer(expl(1, 7, 1.0));
        tk.offer(expl(1, 8, 2.0));
        // Upgrade the minimum — the old heap entry becomes stale.
        tk.offer(expl(1, 7, 5.0));
        assert_eq!(tk.threshold(), Some(2.0));
        tk.offer(expl(1, 9, 3.0)); // evicts score-2.0 entry
        let v = tk.into_sorted_vec();
        let scores: Vec<f64> = v.iter().map(|e| e.score).collect();
        assert_eq!(scores, vec![5.0, 3.0]);
    }

    #[test]
    fn rejects_below_threshold_and_nonfinite() {
        let mut tk = TopK::new(1);
        tk.offer(expl(0, 1, 5.0));
        assert!(!tk.offer(expl(0, 2, 4.0)));
        assert!(!tk.offer(expl(0, 3, f64::NAN)));
        assert!(!tk.offer(expl(0, 4, f64::INFINITY)));
        assert_eq!(tk.len(), 1);
    }

    #[test]
    fn zero_k() {
        let mut tk = TopK::new(0);
        assert!(!tk.offer(expl(0, 1, 5.0)));
        assert!(tk.is_empty());
        assert!(tk.into_sorted_vec().is_empty());
    }

    #[test]
    fn deterministic_tiebreak() {
        let mut tk = TopK::new(3);
        tk.offer(expl(2, 1, 5.0));
        tk.offer(expl(1, 1, 5.0));
        tk.offer(expl(1, 0, 5.0));
        let v = tk.into_sorted_vec();
        assert_eq!(v[0].refinement_idx, 1);
        assert_eq!(v[0].tuple, vec![Value::Int(0)]);
        assert_eq!(v[2].refinement_idx, 2);
    }
}
