//! EXPL-GEN-NAIVE (Algorithm 1): exhaustively check every tuple of every
//! refinement of every relevant pattern.

use crate::explain::drill::drill_down;
use crate::explain::score::{norm_factor, relevant_fragment};
use crate::explain::topk::TopK;
use crate::explain::{ExplainConfig, ExplainStats, Explanation, TopKExplainer};
use crate::question::UserQuestion;
use crate::store::PatternStore;
use std::time::Instant;

/// The brute-force explanation generator.
#[derive(Debug, Clone, Copy, Default)]
pub struct NaiveExplainer;

impl TopKExplainer for NaiveExplainer {
    fn name(&self) -> &'static str {
        "EXPL-GEN-NAIVE"
    }

    fn explain(
        &self,
        store: &PatternStore,
        uq: &UserQuestion,
        cfg: &ExplainConfig,
    ) -> (Vec<Explanation>, ExplainStats) {
        let t0 = Instant::now();
        let span = cape_obs::span("explain.run");
        let mut stats = ExplainStats::default();
        let mut topk = TopK::new(cfg.k);

        for (p_idx, p) in store.iter() {
            let Some(f_vals) = relevant_fragment(p, uq) else {
                continue;
            };
            stats.patterns_relevant += 1;
            let norm = norm_factor(p, uq);
            for p2_idx in store.refinements_of(p_idx) {
                stats.refinements_considered += 1;
                let p2 = store.get(p2_idx).expect("index from store");
                drill_down(p_idx, p, &f_vals, norm, p2_idx, p2, uq, cfg, &mut topk, &mut stats);
            }
        }

        drop(span);
        stats.time = t0.elapsed();
        stats.publish();
        (topk.into_sorted_vec(), stats)
    }
}

#[cfg(test)]
pub(crate) mod tests {
    use super::*;
    use crate::config::{MiningConfig, Thresholds};
    use crate::mining::{Miner, ShareGrpMiner};
    use crate::question::Direction;
    use cape_data::{AggFunc, Relation, Schema, Value, ValueType};

    /// A DBLP-like relation with a planted counterbalance: author a0
    /// usually publishes 2 papers per venue per year (venues KDD, ICDE),
    /// but in 2003 published 0 in KDD and 4 in ICDE.
    pub(crate) fn planted() -> Relation {
        let schema = Schema::new([
            ("author", ValueType::Str),
            ("year", ValueType::Int),
            ("venue", ValueType::Str),
        ])
        .unwrap();
        let mut rel = Relation::new(schema);
        for a in 0..4 {
            let name = format!("a{a}");
            for y in 2000..2008 {
                for venue in ["KDD", "ICDE"] {
                    let mut n = 2;
                    if a == 0 && y == 2003 {
                        n = if venue == "KDD" { 1 } else { 4 };
                    }
                    for _ in 0..n {
                        rel.push_row(vec![Value::str(&name), Value::Int(y), Value::str(venue)])
                            .unwrap();
                    }
                }
            }
        }
        rel
    }

    pub(crate) fn mine(rel: &Relation) -> crate::store::PatternStore {
        let cfg = MiningConfig {
            thresholds: Thresholds::new(0.1, 3, 0.5, 2),
            psi: 3,
            ..MiningConfig::default()
        };
        ShareGrpMiner.mine(rel, &cfg).unwrap().store
    }

    pub(crate) fn question() -> UserQuestion {
        UserQuestion::new(
            vec![0, 1, 2],
            AggFunc::Count,
            None,
            vec![Value::str("a0"), Value::Int(2003), Value::str("KDD")],
            1.0,
            Direction::Low,
        )
    }

    #[test]
    fn finds_the_planted_counterbalance() {
        let rel = planted();
        let store = mine(&rel);
        assert!(!store.is_empty(), "mining found nothing");
        let cfg = ExplainConfig::default_for(&rel, 10);
        let (expls, stats) = NaiveExplainer.explain(&store, &question(), &cfg);
        assert!(!expls.is_empty(), "no explanations generated");
        assert!(stats.patterns_relevant > 0);
        assert!(stats.candidates_generated > 0);
        // The ICDE-2003 spike must appear among the top explanations.
        let found = expls
            .iter()
            .any(|e| e.tuple.contains(&Value::str("ICDE")) && e.tuple.contains(&Value::Int(2003)));
        assert!(
            found,
            "expected (a0, ICDE, 2003) counterbalance, got:\n{}",
            crate::explain::render_table(&expls, rel.schema())
        );
    }

    #[test]
    fn top_explanation_is_the_same_year_spike() {
        let rel = planted();
        let store = mine(&rel);
        let cfg = ExplainConfig::default_for(&rel, 5);
        let (expls, _) = NaiveExplainer.explain(&store, &question(), &cfg);
        let top = &expls[0];
        // Highest score: the deviating ICDE count in the *same* year.
        assert!(top.tuple.contains(&Value::Int(2003)), "top = {top:?}");
        assert!(top.deviation > 0.0);
        assert!(top.score > 0.0);
    }

    #[test]
    fn scores_are_sorted_descending() {
        let rel = planted();
        let store = mine(&rel);
        let cfg = ExplainConfig::default_for(&rel, 10);
        let (expls, _) = NaiveExplainer.explain(&store, &question(), &cfg);
        for w in expls.windows(2) {
            assert!(w[0].score >= w[1].score);
        }
    }

    #[test]
    fn high_question_finds_negative_deviations() {
        let rel = planted();
        let store = mine(&rel);
        let cfg = ExplainConfig::default_for(&rel, 10);
        let uq = UserQuestion::new(
            vec![0, 1, 2],
            AggFunc::Count,
            None,
            vec![Value::str("a0"), Value::Int(2003), Value::str("ICDE")],
            4.0,
            Direction::High,
        );
        let (expls, _) = NaiveExplainer.explain(&store, &uq, &cfg);
        assert!(!expls.is_empty());
        for e in &expls {
            assert!(e.deviation < 0.0, "high question needs negative deviations: {e:?}");
            assert!(e.score > 0.0);
        }
        // The KDD 2003 dip should be among them.
        assert!(expls
            .iter()
            .any(|e| e.tuple.contains(&Value::str("KDD")) && e.tuple.contains(&Value::Int(2003))));
    }

    #[test]
    fn question_tuple_itself_is_never_an_explanation() {
        let rel = planted();
        let store = mine(&rel);
        let cfg = ExplainConfig::default_for(&rel, 50);
        let uq = question();
        let (expls, _) = NaiveExplainer.explain(&store, &uq, &cfg);
        for e in &expls {
            if e.attrs.len() == 3 {
                // Same schema as the question: must differ somewhere.
                let same = e.attrs.iter().zip(&e.tuple).all(|(&a, v)| uq.value_of(a) == Some(v));
                assert!(!same, "question tuple leaked into explanations");
            }
        }
    }

    #[test]
    fn no_patterns_no_explanations() {
        let rel = planted();
        let cfg = ExplainConfig::default_for(&rel, 10);
        let (expls, stats) = NaiveExplainer.explain(&PatternStore::new(), &question(), &cfg);
        assert!(expls.is_empty());
        assert_eq!(stats.patterns_relevant, 0);
    }
}
