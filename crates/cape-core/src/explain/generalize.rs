//! Generalization explanations — the conclusion's proposed extension of
//! CAPE ("combine explanations through counterbalance with explanations
//! through generalization/specialization").
//!
//! A **generalization finding** rolls the user question up to the coarser
//! granularity of a relevant pattern `P` (with `F ∪ V ⊂ G`) and reports
//! whether the question's group is *also* an outlier there. If AX's
//! SIGKDD-2007 count is low and AX's *total* 2007 output is also below
//! prediction, the venue-level dip generalizes (AX simply wrote less that
//! year); if the total is normal or high, the dip is venue-specific and
//! counterbalances are the better explanation.

use crate::explain::score::relevant_fragment;
use crate::question::UserQuestion;
use crate::store::PatternStore;
use cape_data::{AttrId, Value};

/// The question viewed at one relevant pattern's granularity.
#[derive(Debug, Clone, PartialEq)]
pub struct GeneralizationFinding {
    /// Index of the relevant pattern in the store.
    pub pattern_idx: usize,
    /// Attributes of the rolled-up tuple (`F` then `V` of the pattern).
    pub attrs: Vec<AttrId>,
    /// Values of the rolled-up tuple.
    pub tuple: Vec<Value>,
    /// Actual aggregate value at this granularity.
    pub actual: f64,
    /// Model prediction at this granularity.
    pub predicted: f64,
    /// `actual − predicted`.
    pub deviation: f64,
    /// Whether the deviation points the *same* way as the question
    /// (true ⇒ the outlier generalizes to this coarser level).
    pub generalizes: bool,
}

/// Roll the question up through every relevant pattern whose `F ∪ V` is a
/// *strict* subset of the question's group-by attributes.
pub fn generalizations(store: &PatternStore, uq: &UserQuestion) -> Vec<GeneralizationFinding> {
    let mut out = Vec::new();
    for (idx, p) in store.iter() {
        if p.arp.size() >= uq.group_attrs.len() {
            continue; // not a strict roll-up
        }
        let Some(f_vals) = relevant_fragment(p, uq) else {
            continue;
        };
        let Some(local) = p.local(&f_vals) else { continue };

        // Locate the question's coordinates in the pattern's group data.
        let g = p.arp.g_attrs();
        let Some(wanted) = uq.values_of(&g) else { continue };
        let Some(cols) = p.data.cols_of_attrs(&g) else { continue };
        let rel = &p.data.relation;
        let row = (0..rel.num_rows())
            .find(|&i| cols.iter().zip(&wanted).all(|(&c, w)| rel.value(i, c) == *w));
        let Some(row) = row else { continue };

        let Some(actual) = p.data.agg_value(row, p.agg_col) else { continue };
        let Some(x) = p.predictor_vec(row) else { continue };
        let predicted = local.fitted.model.predict(&x);
        let deviation = actual - predicted;
        // Same direction as the question: low question & negative dev, or
        // high question & positive dev.
        let generalizes = match uq.dir {
            crate::question::Direction::Low => deviation < 0.0,
            crate::question::Direction::High => deviation > 0.0,
        };

        let mut attrs: Vec<AttrId> = p.arp.f().to_vec();
        attrs.extend_from_slice(p.arp.v());
        let tuple: Vec<Value> =
            attrs.iter().map(|&a| uq.value_of(a).expect("covered").clone()).collect();
        out.push(GeneralizationFinding {
            pattern_idx: idx,
            attrs,
            tuple,
            actual,
            predicted,
            deviation,
            generalizes,
        });
    }
    // Deterministic order: most strongly generalizing first.
    out.sort_by(|a, b| {
        b.generalizes
            .cmp(&a.generalizes)
            .then_with(|| b.deviation.abs().total_cmp(&a.deviation.abs()))
            .then_with(|| a.pattern_idx.cmp(&b.pattern_idx))
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{MiningConfig, Thresholds};
    use crate::mining::{Miner, ShareGrpMiner};
    use crate::question::Direction;
    use cape_data::{AggFunc, Relation, Schema, ValueType};

    /// Author a0's 2003 is low in *both* venues (the dip generalizes);
    /// author a1's 2003 is low in KDD but high in ICDE (does not
    /// generalize).
    fn setup() -> (Relation, PatternStore) {
        let schema = Schema::new([
            ("author", ValueType::Str),
            ("year", ValueType::Int),
            ("venue", ValueType::Str),
        ])
        .unwrap();
        let mut rel = Relation::new(schema);
        for a in 0..4 {
            for y in 2000..2008i64 {
                for venue in ["KDD", "ICDE"] {
                    let n = match (a, y, venue) {
                        (0, 2003, _) => 1,      // generalizing dip
                        (1, 2003, "KDD") => 1,  // venue-specific dip …
                        (1, 2003, "ICDE") => 5, // … counterbalanced
                        _ => 3,
                    };
                    for _ in 0..n {
                        rel.push_row(vec![
                            Value::str(format!("a{a}")),
                            Value::Int(y),
                            Value::str(venue),
                        ])
                        .unwrap();
                    }
                }
            }
        }
        let cfg = MiningConfig {
            thresholds: Thresholds::new(0.1, 3, 0.3, 2),
            psi: 2,
            ..MiningConfig::default()
        };
        let store = ShareGrpMiner.mine(&rel, &cfg).unwrap().store;
        (rel, store)
    }

    fn question(author: &str) -> UserQuestion {
        UserQuestion::new(
            vec![0, 1, 2],
            AggFunc::Count,
            None,
            vec![Value::str(author), Value::Int(2003), Value::str("KDD")],
            1.0,
            Direction::Low,
        )
    }

    #[test]
    fn generalizing_dip_is_detected() {
        let (_, store) = setup();
        let findings = generalizations(&store, &question("a0"));
        assert!(!findings.is_empty(), "no roll-up patterns found");
        // a0's total 2003 output (2) is below the ~6/year prediction.
        let author_year =
            findings.iter().find(|f| f.attrs == vec![0, 1]).expect("author/year roll-up exists");
        assert!(author_year.generalizes, "{author_year:?}");
        assert!(author_year.deviation < 0.0);
        assert_eq!(author_year.tuple, vec![Value::str("a0"), Value::Int(2003)]);
    }

    #[test]
    fn venue_specific_dip_does_not_generalize() {
        let (_, store) = setup();
        let findings = generalizations(&store, &question("a1"));
        let author_year =
            findings.iter().find(|f| f.attrs == vec![0, 1]).expect("author/year roll-up exists");
        // a1's total 2003 output is 1 + 5 = 6 = the usual level.
        assert!(!author_year.generalizes, "{author_year:?}");
        assert!(author_year.deviation.abs() < 1.0);
    }

    #[test]
    fn strict_subset_required() {
        let (_, store) = setup();
        // A question grouped only on (author, year) admits no strict
        // roll-up from ≥2-attribute patterns.
        let narrow = UserQuestion::new(
            vec![0, 1],
            AggFunc::Count,
            None,
            vec![Value::str("a0"), Value::Int(2003)],
            2.0,
            Direction::Low,
        );
        for f in generalizations(&store, &narrow) {
            assert!(f.attrs.len() < 2);
        }
    }

    #[test]
    fn ordering_puts_generalizing_first() {
        let (_, store) = setup();
        let findings = generalizations(&store, &question("a0"));
        let mut seen_non_generalizing = false;
        for f in &findings {
            if !f.generalizes {
                seen_non_generalizing = true;
            } else {
                assert!(!seen_non_generalizing, "generalizing after non-generalizing");
            }
        }
    }
}
