//! EXPL-GEN-OPT (§3.5): explanation generation with upper-score-bound
//! pruning of refinement pairs.
//!
//! For every `(P, P')` pair we bound the achievable score by combining the
//! refinement's precomputed deviation extremes (`dev_↑`), a lower bound on
//! the distance from the schema difference (`d_↓`), and `P`'s NORM. Pairs
//! whose bound cannot beat the current k-th best score are skipped without
//! enumerating any tuple.
//!
//! Ordering note: the paper's text says to iterate patterns "in decreasing
//! order of NORM"; since the score is *inversely* proportional to NORM,
//! processing small-NORM patterns first fills the heap with high-scoring
//! explanations sooner and prunes more, so we iterate in **increasing**
//! NORM order and flag the deviation here.

use crate::explain::drill::drill_down;
use crate::explain::score::{norm_factor, relevant_fragment, score_upper_bound};
use crate::explain::topk::TopK;
use crate::explain::{ExplainConfig, ExplainStats, Explanation, TopKExplainer};
use crate::question::{Direction, UserQuestion};
use crate::store::{PatternInstance, PatternStore};
use std::time::Instant;

/// The pruning explanation generator.
#[derive(Debug, Clone, Copy, Default)]
pub struct OptimizedExplainer;

/// The direction-appropriate deviation magnitude bound `dev_↑(φ, P')`.
fn dev_bound(p2: &PatternInstance, dir: Direction) -> f64 {
    match dir {
        Direction::Low => p2.max_pos_dev,
        Direction::High => -p2.max_neg_dev,
    }
}

impl TopKExplainer for OptimizedExplainer {
    fn name(&self) -> &'static str {
        "EXPL-GEN-OPT"
    }

    fn explain(
        &self,
        store: &PatternStore,
        uq: &UserQuestion,
        cfg: &ExplainConfig,
    ) -> (Vec<Explanation>, ExplainStats) {
        let t0 = Instant::now();
        let span = cape_obs::span("explain.run");
        let mut stats = ExplainStats::default();
        let mut topk = TopK::new(cfg.k);

        // Collect relevant patterns with their fragments and NORM factors.
        let mut relevant: Vec<(usize, Vec<cape_data::Value>, f64)> = store
            .iter()
            .filter_map(|(idx, p)| relevant_fragment(p, uq).map(|f| (idx, f, norm_factor(p, uq))))
            .collect();
        stats.patterns_relevant = relevant.len();
        // Small NORM ⇒ large potential scores ⇒ process first.
        relevant.sort_by(|a, b| a.2.total_cmp(&b.2));

        for (p_idx, f_vals, norm) in relevant {
            let p = store.get(p_idx).expect("relevant index");
            for p2_idx in store.refinements_of(p_idx) {
                stats.refinements_considered += 1;
                let p2 = store.get(p2_idx).expect("refinement index");

                // Upper bound for any explanation from this (P, P') pair.
                let dev_up = dev_bound(p2, uq.dir);
                if dev_up <= 0.0 {
                    // No tuple of P' deviates in the counterbalancing
                    // direction at all.
                    stats.refinements_pruned += 1;
                    continue;
                }
                if let Some(threshold) = topk.threshold() {
                    let mut t_attrs: Vec<cape_data::AttrId> = p2.arp.f().to_vec();
                    t_attrs.extend_from_slice(p2.arp.v());
                    let d_low = cfg.distance.lower_bound(&uq.group_attrs, &t_attrs);
                    let bound = score_upper_bound(dev_up, d_low, norm);
                    // Strictly below the k-th best only: a candidate whose
                    // score *equals* the threshold can still enter via the
                    // deterministic tie-break, and skipping it here would
                    // make the result depend on pattern iteration order.
                    if bound < threshold {
                        stats.refinements_pruned += 1;
                        continue;
                    }
                }
                drill_down(p_idx, p, &f_vals, norm, p2_idx, p2, uq, cfg, &mut topk, &mut stats);
            }
        }

        drop(span);
        stats.time = t0.elapsed();
        stats.publish();
        (topk.into_sorted_vec(), stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::explain::naive::tests::{mine, planted, question};
    use crate::explain::NaiveExplainer;

    #[test]
    fn optimized_matches_naive_results() {
        let rel = planted();
        let store = mine(&rel);
        let cfg = ExplainConfig::default_for(&rel, 10);
        let uq = question();
        let (naive, _) = NaiveExplainer.explain(&store, &uq, &cfg);
        let (opt, _) = OptimizedExplainer.explain(&store, &uq, &cfg);
        assert_eq!(naive.len(), opt.len());
        for (a, b) in naive.iter().zip(&opt) {
            assert_eq!(a.key(), b.key(), "top-k sets diverge");
            assert!((a.score - b.score).abs() < 1e-9);
        }
    }

    #[test]
    fn optimized_checks_no_more_tuples() {
        let rel = planted();
        let store = mine(&rel);
        // Small k makes the threshold bite early.
        let cfg = ExplainConfig::default_for(&rel, 2);
        let uq = question();
        let (_, s_naive) = NaiveExplainer.explain(&store, &uq, &cfg);
        let (_, s_opt) = OptimizedExplainer.explain(&store, &uq, &cfg);
        assert!(
            s_opt.tuples_checked <= s_naive.tuples_checked,
            "opt {} vs naive {}",
            s_opt.tuples_checked,
            s_naive.tuples_checked
        );
    }

    #[test]
    fn dev_bound_follows_direction() {
        let rel = planted();
        let store = mine(&rel);
        let (_, p) = store.iter().next().unwrap();
        assert_eq!(dev_bound(p, Direction::Low), p.max_pos_dev);
        assert_eq!(dev_bound(p, Direction::High), -p.max_neg_dev);
    }

    #[test]
    fn stats_report_pruning_with_tiny_k() {
        let rel = planted();
        let store = mine(&rel);
        let cfg = ExplainConfig::default_for(&rel, 1);
        let (expls, stats) = OptimizedExplainer.explain(&store, &question(), &cfg);
        assert_eq!(expls.len(), 1);
        assert!(stats.refinements_considered > 0);
    }
}
