//! Candidate explanations (Definition 7) and their rendering.

use cape_data::{AttrId, Schema, Value};

/// A scored candidate explanation `E = (P, P', t')`: the relevant pattern,
/// its refinement, and the counterbalance tuple with its score breakdown.
#[derive(Debug, Clone, PartialEq)]
pub struct Explanation {
    /// Index of the relevant pattern `P` in the [`crate::PatternStore`].
    pub pattern_idx: usize,
    /// Index of the refinement `P'` in the store (may equal `pattern_idx`).
    pub refinement_idx: usize,
    /// Attributes of the counterbalance tuple `t'` (`F'` then `V`).
    pub attrs: Vec<AttrId>,
    /// Values of `t'`, aligned with `attrs`.
    pub tuple: Vec<Value>,
    /// Actual aggregate value `t'[agg(A)]`.
    pub agg_value: f64,
    /// Predicted value `g_{P', t'[F']}(t'[V])`.
    pub predicted: f64,
    /// Deviation `agg_value − predicted` (Definition 8).
    pub deviation: f64,
    /// Distance `d(t[G], t'[F' ∪ V])` (Definition 9).
    pub distance: f64,
    /// Normalization factor NORM (Definition 10).
    pub norm: f64,
    /// Final score (Definition 10) — larger is better.
    pub score: f64,
}

impl Explanation {
    /// Deduplication key: the refinement pattern plus the tuple. The paper
    /// keeps only the best-scored `(P, P', t')` per `(P', t')`.
    pub fn key(&self) -> (usize, Vec<Value>) {
        (self.refinement_idx, self.tuple.clone())
    }

    /// Render as `(AX, ICDE, 2007, 6.0) [score 13.78]`-style text.
    pub fn display(&self, schema: &Schema) -> String {
        let vals: Vec<String> = self
            .attrs
            .iter()
            .zip(&self.tuple)
            .map(|(&a, v)| {
                let name = schema
                    .attr(a)
                    .map(|at| at.name().to_string())
                    .unwrap_or_else(|_| format!("#{a}"));
                format!("{name}={v}")
            })
            .collect();
        format!(
            "({}, agg={}) predicted {:.2}, dev {:+.2}, dist {:.3} → score {:.2}",
            vals.join(", "),
            self.agg_value,
            self.predicted,
            self.deviation,
            self.distance,
            self.score
        )
    }
}

/// Render a ranked list of explanations as an ASCII table (like the
/// paper's Tables 3–7).
pub fn render_table(expls: &[Explanation], schema: &Schema) -> String {
    let mut out = String::new();
    out.push_str("rank | explanation\n");
    out.push_str("-----+------------\n");
    for (i, e) in expls.iter().enumerate() {
        out.push_str(&format!("{:>4} | {}\n", i + 1, e.display(schema)));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use cape_data::{Schema, ValueType};

    fn expl() -> Explanation {
        Explanation {
            pattern_idx: 0,
            refinement_idx: 1,
            attrs: vec![0, 2],
            tuple: vec![Value::str("AX"), Value::Int(2007)],
            agg_value: 6.0,
            predicted: 4.2,
            deviation: 1.8,
            distance: 0.3,
            norm: 1.0,
            score: 6.0,
        }
    }

    #[test]
    fn key_identifies_refinement_and_tuple() {
        let e = expl();
        assert_eq!(e.key(), (1, vec![Value::str("AX"), Value::Int(2007)]));
    }

    #[test]
    fn display_and_table() {
        let schema = Schema::new([
            ("author", ValueType::Str),
            ("venue", ValueType::Str),
            ("year", ValueType::Int),
        ])
        .unwrap();
        let e = expl();
        let s = e.display(&schema);
        assert!(s.contains("author=AX"));
        assert!(s.contains("year=2007"));
        assert!(s.contains("score 6.00"));
        let t = render_table(&[e], &schema);
        assert!(t.contains("rank"));
        assert!(t.contains("   1 |"));
    }
}
