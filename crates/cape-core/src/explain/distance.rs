//! Tuple distance (Definition 9): weighted L2 over per-attribute distances.
//!
//! Default per-attribute distances follow the paper's description: an
//! attribute's domain is (implicitly) partitioned into proximity classes —
//! identical values have distance 0, nearby values low distance, far
//! values distance 1. For numeric attributes we realize this with a
//! scaled absolute difference `min(1, |a−b| / scale)`; for categorical
//! attributes with exact match (optionally a user-supplied class map,
//! e.g. adjacent community areas). Attributes present in only one of the
//! two schemas contribute the maximal distance 1.

use cape_data::stats::attr_stats;
use cape_data::{AttrId, Relation, Value};
use std::collections::HashMap;

/// Distance between two values of one attribute, in `[0, 1]`.
#[derive(Debug, Clone)]
pub enum AttrDistanceFn {
    /// `min(1, |a − b| / scale)` for numeric values; 1 when either side is
    /// non-numeric and they differ.
    NumericScaled {
        /// Difference treated as "maximally far".
        scale: f64,
    },
    /// 0 if equal, 1 otherwise.
    Exact,
    /// Class-based: 0 if equal, `within_class` if both values map to the
    /// same class, 1 otherwise (values missing from the map are their own
    /// class).
    Classes {
        /// Value → class id.
        classes: HashMap<Value, u32>,
        /// Distance for distinct values within one class.
        within_class: f64,
    },
}

impl AttrDistanceFn {
    /// Evaluate the distance.
    pub fn dist(&self, a: &Value, b: &Value) -> f64 {
        if a == b {
            return 0.0;
        }
        match self {
            AttrDistanceFn::NumericScaled { scale } => match (a.as_f64(), b.as_f64()) {
                (Some(x), Some(y)) => ((x - y).abs() / scale.max(f64::MIN_POSITIVE)).min(1.0),
                _ => 1.0,
            },
            AttrDistanceFn::Exact => 1.0,
            AttrDistanceFn::Classes { classes, within_class } => {
                match (classes.get(a), classes.get(b)) {
                    (Some(ca), Some(cb)) if ca == cb => *within_class,
                    _ => 1.0,
                }
            }
        }
    }
}

/// Per-attribute weights and distance functions for one base relation.
#[derive(Debug, Clone)]
pub struct DistanceModel {
    weights: Vec<f64>,
    fns: Vec<AttrDistanceFn>,
}

impl DistanceModel {
    /// The paper's defaults: equal weights for all attributes; numeric
    /// attributes use a scaled difference with `scale = max(1, range/4)`
    /// (a quarter of the observed range counts as "far"), categorical
    /// attributes use exact matching.
    pub fn default_for(rel: &Relation) -> Self {
        let arity = rel.schema().arity();
        let weights = vec![1.0 / arity.max(1) as f64; arity];
        let fns = (0..arity)
            .map(|a| {
                let ty = rel.schema().attr(a).expect("valid id").value_type();
                if ty.is_numeric() {
                    let scale = attr_stats(rel, a)
                        .ok()
                        .and_then(|s| s.range())
                        .map_or(1.0, |r| (r / 4.0).max(1.0));
                    AttrDistanceFn::NumericScaled { scale }
                } else {
                    AttrDistanceFn::Exact
                }
            })
            .collect();
        DistanceModel { weights, fns }
    }

    /// Construct with explicit weights (will be normalized to sum 1) and
    /// distance functions; lengths must equal the base-schema arity.
    pub fn new(weights: Vec<f64>, fns: Vec<AttrDistanceFn>) -> Self {
        assert_eq!(weights.len(), fns.len(), "weights and fns must align");
        let total: f64 = weights.iter().sum();
        assert!(total > 0.0, "weights must not all be zero");
        let weights = weights.into_iter().map(|w| w / total).collect();
        DistanceModel { weights, fns }
    }

    /// Replace the distance function for one attribute (e.g. install a
    /// class map for community areas).
    pub fn set_fn(&mut self, attr: AttrId, f: AttrDistanceFn) {
        self.fns[attr] = f;
    }

    /// Number of base attributes covered.
    pub fn arity(&self) -> usize {
        self.weights.len()
    }

    /// The distance of Definition 9 between tuple `t1` (attributes
    /// `attrs1`, values `vals1`) and `t2`:
    ///
    /// `d(t1, t2) = sqrt( (1/W) Σ_{A ∈ T1∪T2} w_A · d_A(t1[A], t2[A])² )`
    ///
    /// with `d_A = 1` for attributes appearing in only one schema and
    /// `W = Σ_{A ∈ T1∪T2} w_A`.
    pub fn tuple_distance(
        &self,
        attrs1: &[AttrId],
        vals1: &[Value],
        attrs2: &[AttrId],
        vals2: &[Value],
    ) -> f64 {
        debug_assert_eq!(attrs1.len(), vals1.len());
        debug_assert_eq!(attrs2.len(), vals2.len());
        let mut w_total = 0.0;
        let mut acc = 0.0;
        // Attributes of t1 (shared or t1-only).
        for (&a, v1) in attrs1.iter().zip(vals1) {
            let w = self.weights[a];
            w_total += w;
            let d = match attrs2.iter().position(|&b| b == a) {
                Some(j) => self.fns[a].dist(v1, &vals2[j]),
                None => 1.0,
            };
            acc += w * d * d;
        }
        // Attributes only in t2.
        for &b in attrs2 {
            if !attrs1.contains(&b) {
                let w = self.weights[b];
                w_total += w;
                acc += w; // d = 1, squared
            }
        }
        if w_total == 0.0 {
            return 0.0;
        }
        (acc / w_total).sqrt()
    }

    /// Lower bound `d_↓(φ, P')` on the distance between the question tuple
    /// (schema `attrs1`) and *any* tuple over schema `attrs2` (§3.5):
    /// attributes in the symmetric difference are guaranteed to contribute
    /// the maximal distance 1; shared attributes may contribute 0.
    pub fn lower_bound(&self, attrs1: &[AttrId], attrs2: &[AttrId]) -> f64 {
        let mut w_total = 0.0;
        let mut acc = 0.0;
        for &a in attrs1 {
            w_total += self.weights[a];
            if !attrs2.contains(&a) {
                acc += self.weights[a];
            }
        }
        for &b in attrs2 {
            if !attrs1.contains(&b) {
                w_total += self.weights[b];
                acc += self.weights[b];
            }
        }
        if w_total == 0.0 {
            return 0.0;
        }
        (acc / w_total).sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cape_data::{Schema, ValueType};

    fn rel() -> Relation {
        let schema = Schema::new([
            ("author", ValueType::Str),
            ("venue", ValueType::Str),
            ("year", ValueType::Int),
        ])
        .unwrap();
        let mut r = Relation::new(schema);
        for y in 2000..2017 {
            r.push_row(vec![Value::str("a"), Value::str("v"), Value::Int(y)]).unwrap();
        }
        r
    }

    #[test]
    fn numeric_scaled_distance() {
        let f = AttrDistanceFn::NumericScaled { scale: 4.0 };
        assert_eq!(f.dist(&Value::Int(2007), &Value::Int(2007)), 0.0);
        assert!((f.dist(&Value::Int(2007), &Value::Int(2006)) - 0.25).abs() < 1e-12);
        assert_eq!(f.dist(&Value::Int(2007), &Value::Int(2020)), 1.0);
        assert_eq!(f.dist(&Value::Int(2007), &Value::str("x")), 1.0);
    }

    #[test]
    fn class_distance() {
        let mut classes = HashMap::new();
        classes.insert(Value::Int(25), 1u32);
        classes.insert(Value::Int(26), 1u32);
        classes.insert(Value::Int(77), 2u32);
        let f = AttrDistanceFn::Classes { classes, within_class: 0.5 };
        assert_eq!(f.dist(&Value::Int(25), &Value::Int(25)), 0.0);
        assert_eq!(f.dist(&Value::Int(25), &Value::Int(26)), 0.5);
        assert_eq!(f.dist(&Value::Int(25), &Value::Int(77)), 1.0);
        assert_eq!(f.dist(&Value::Int(25), &Value::Int(99)), 1.0);
    }

    #[test]
    fn defaults_scale_numeric_by_range() {
        let dm = DistanceModel::default_for(&rel());
        // year range 16 ⇒ scale 4; adjacent years at distance 0.25.
        let d = dm.tuple_distance(&[2], &[Value::Int(2007)], &[2], &[Value::Int(2006)]);
        assert!((d - 0.25).abs() < 1e-9, "d = {d}");
    }

    #[test]
    fn identical_tuples_have_zero_distance() {
        let dm = DistanceModel::default_for(&rel());
        let attrs = [0, 1, 2];
        let vals = [Value::str("a"), Value::str("v"), Value::Int(2007)];
        assert_eq!(dm.tuple_distance(&attrs, &vals, &attrs, &vals), 0.0);
    }

    #[test]
    fn missing_attributes_cost_one() {
        let dm = DistanceModel::default_for(&rel());
        // t1 over (author, venue, year), t2 over (author, year): venue
        // contributes 1², equal author/year contribute 0.
        let d = dm.tuple_distance(
            &[0, 1, 2],
            &[Value::str("a"), Value::str("v"), Value::Int(2007)],
            &[0, 2],
            &[Value::str("a"), Value::Int(2007)],
        );
        // sqrt((1/3·1)/(3·1/3)) = sqrt(1/3)
        assert!((d - (1.0f64 / 3.0).sqrt()).abs() < 1e-9, "d = {d}");
    }

    #[test]
    fn closer_years_are_closer_explanations() {
        // Ranking from the paper's Table 3: same-year other venue beats
        // adjacent-year, which beats far-year.
        let dm = DistanceModel::default_for(&rel());
        let q_attrs = [0, 1, 2];
        let q_vals = [Value::str("AX"), Value::str("SIGKDD"), Value::Int(2007)];
        let d_same_year = dm.tuple_distance(
            &q_attrs,
            &q_vals,
            &[0, 1, 2],
            &[Value::str("AX"), Value::str("ICDE"), Value::Int(2007)],
        );
        let d_adjacent = dm.tuple_distance(
            &q_attrs,
            &q_vals,
            &[0, 1, 2],
            &[Value::str("AX"), Value::str("ICDE"), Value::Int(2006)],
        );
        let d_far = dm.tuple_distance(
            &q_attrs,
            &q_vals,
            &[0, 1, 2],
            &[Value::str("AX"), Value::str("ICDE"), Value::Int(2012)],
        );
        assert!(d_same_year < d_adjacent && d_adjacent < d_far);
    }

    #[test]
    fn lower_bound_properties() {
        let dm = DistanceModel::default_for(&rel());
        // Same schema: bound 0 (values could coincide on shared attrs).
        assert_eq!(dm.lower_bound(&[0, 1, 2], &[0, 1, 2]), 0.0);
        // Disjoint additional attribute forces positive bound ≤ actual.
        let lb = dm.lower_bound(&[0, 1, 2], &[0, 2]);
        assert!(lb > 0.0);
        let actual = dm.tuple_distance(
            &[0, 1, 2],
            &[Value::str("a"), Value::str("v"), Value::Int(2007)],
            &[0, 2],
            &[Value::str("b"), Value::Int(1999)],
        );
        assert!(lb <= actual + 1e-12);
    }

    #[test]
    fn custom_weights_normalized() {
        let dm = DistanceModel::new(
            vec![2.0, 1.0, 1.0],
            vec![AttrDistanceFn::Exact, AttrDistanceFn::Exact, AttrDistanceFn::Exact],
        );
        // author mismatch weighs double: d = sqrt(0.5·1 / 1) over {author,venue}
        let d = dm.tuple_distance(
            &[0, 1],
            &[Value::str("a"), Value::str("v")],
            &[0, 1],
            &[Value::str("b"), Value::str("v")],
        );
        assert!((d - (0.5f64 / 0.75).sqrt()).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "align")]
    fn mismatched_weights_rejected() {
        DistanceModel::new(vec![1.0], vec![AttrDistanceFn::Exact, AttrDistanceFn::Exact]);
    }
}
