//! Natural-language rendering of explanations, in the style of the
//! paper's Example 5 narrative: *"Even though ⟨pattern⟩ holds, … which
//! may be explained by ⟨counterbalance⟩ being higher than usual."*

use crate::explain::Explanation;
use crate::question::{Direction, UserQuestion};
use crate::store::PatternStore;
use cape_data::Schema;
use cape_regress::ModelType;

fn attr_name(schema: &Schema, id: usize) -> String {
    schema.attr(id).map(|a| a.name().to_string()).unwrap_or_else(|_| format!("#{id}"))
}

fn list_names(schema: &Schema, ids: &[usize]) -> String {
    ids.iter().map(|&a| attr_name(schema, a)).collect::<Vec<_>>().join(", ")
}

fn tuple_text(schema: &Schema, attrs: &[usize], values: &[cape_data::Value]) -> String {
    attrs
        .iter()
        .zip(values)
        .map(|(&a, v)| format!("{} {}", attr_name(schema, a), v))
        .collect::<Vec<_>>()
        .join(", ")
}

fn trend_text(model: ModelType) -> &'static str {
    match model {
        ModelType::Const => "stays roughly constant",
        ModelType::Lin => "follows a roughly linear trend",
        ModelType::Quad => "follows a roughly quadratic trend",
    }
}

/// Render one explanation as a narrative sentence.
///
/// Returns a generic fallback when the explanation's pattern indices are
/// not resolvable in `store` (e.g. baseline explanations).
pub fn narrate(
    expl: &Explanation,
    store: &PatternStore,
    uq: &UserQuestion,
    schema: &Schema,
) -> String {
    let question_part = format!(
        "the {} for ({}) is {}",
        agg_text(uq, schema),
        tuple_text(schema, &uq.group_attrs, &uq.tuple),
        match uq.dir {
            Direction::Low => "unusually low",
            Direction::High => "unusually high",
        }
    );
    let counter_dir = match uq.dir {
        Direction::Low => "higher",
        Direction::High => "lower",
    };
    let counter_part = format!(
        "({}) has {} {:.1} — {} than the predicted {:.1}",
        tuple_text(schema, &expl.attrs, &expl.tuple),
        agg_text(uq, schema),
        expl.agg_value,
        counter_dir,
        expl.predicted,
    );

    match (store.get(expl.pattern_idx), store.get(expl.refinement_idx)) {
        (Some(p), Some(p2)) => {
            format!(
                "Even though per {} the {} {} over {} (pattern {}), {}; \
                 this may be explained by the fact that {} (pattern {}).",
                list_names(schema, p.arp.f()),
                agg_text(uq, schema),
                trend_text(p.arp.model),
                list_names(schema, p.arp.v()),
                p.arp.display(schema),
                question_part,
                counter_part,
                p2.arp.display(schema),
            )
        }
        _ => format!("{question_part}; a counterbalance: {counter_part}."),
    }
}

fn agg_text(uq: &UserQuestion, schema: &Schema) -> String {
    match uq.agg_attr {
        Some(a) => format!("{}({})", uq.agg, attr_name(schema, a)),
        None => format!("{}(*)", uq.agg),
    }
}

/// Render the full ranked list as numbered narrative lines.
pub fn narrate_all(
    expls: &[Explanation],
    store: &PatternStore,
    uq: &UserQuestion,
    schema: &Schema,
) -> String {
    let mut out = String::new();
    for (i, e) in expls.iter().enumerate() {
        out.push_str(&format!(
            "{}. [score {:.2}] {}\n",
            i + 1,
            e.score,
            narrate(e, store, uq, schema)
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{MiningConfig, Thresholds};
    use crate::explain::{ExplainConfig, TopKExplainer};
    use crate::mining::{Miner, ShareGrpMiner};
    use cape_data::{AggFunc, Relation, Schema, Value, ValueType};

    fn setup() -> (Relation, PatternStore, UserQuestion, Vec<Explanation>) {
        let schema = Schema::new([
            ("author", ValueType::Str),
            ("year", ValueType::Int),
            ("venue", ValueType::Str),
        ])
        .unwrap();
        let mut rel = Relation::new(schema);
        for a in 0..3 {
            for y in 2000..2008i64 {
                for venue in ["KDD", "ICDE"] {
                    let n = match (a, y, venue) {
                        (0, 2003, "KDD") => 1,
                        (0, 2003, "ICDE") => 5,
                        _ => 2,
                    };
                    for _ in 0..n {
                        rel.push_row(vec![
                            Value::str(format!("a{a}")),
                            Value::Int(y),
                            Value::str(venue),
                        ])
                        .unwrap();
                    }
                }
            }
        }
        let cfg = MiningConfig {
            thresholds: Thresholds::new(0.1, 3, 0.3, 2),
            psi: 3,
            ..MiningConfig::default()
        };
        let store = ShareGrpMiner.mine(&rel, &cfg).unwrap().store;
        let uq = UserQuestion::from_query(
            &rel,
            vec![0, 1, 2],
            AggFunc::Count,
            None,
            vec![Value::str("a0"), Value::Int(2003), Value::str("KDD")],
            crate::question::Direction::Low,
        )
        .unwrap();
        let ecfg = ExplainConfig::default_for(&rel, 5);
        let (expls, _) = crate::prelude::OptimizedExplainer.explain(&store, &uq, &ecfg);
        (rel, store, uq, expls)
    }

    #[test]
    fn narration_mentions_patterns_and_values() {
        let (rel, store, uq, expls) = setup();
        assert!(!expls.is_empty());
        let text = narrate(&expls[0], &store, &uq, rel.schema());
        assert!(text.contains("Even though"), "{text}");
        assert!(text.contains("unusually low"), "{text}");
        assert!(text.contains("higher"), "{text}");
        assert!(text.contains("count(*)"), "{text}");
    }

    #[test]
    fn narrate_all_numbers_lines() {
        let (rel, store, uq, expls) = setup();
        let text = narrate_all(&expls, &store, &uq, rel.schema());
        assert!(text.starts_with("1. [score"));
        assert_eq!(text.lines().count(), expls.len());
    }

    #[test]
    fn fallback_for_baseline_explanations() {
        let (rel, store, uq, mut expls) = setup();
        expls[0].pattern_idx = usize::MAX;
        expls[0].refinement_idx = usize::MAX;
        let text = narrate(&expls[0], &store, &uq, rel.schema());
        assert!(text.contains("counterbalance"), "{text}");
        assert!(!text.contains("Even though"));
    }
}
