//! A high-level session API tying the pipeline together: load data, mine
//! once, then ask any number of questions by attribute *name*.

use crate::config::MiningConfig;
use crate::error::{CapeError, Result};
use crate::explain::{BaselineExplainer, ExplainConfig, ExplainStats, Explanation, TopKExplainer};
use crate::mining::{ArpMiner, Miner, MiningStats};
use crate::prelude::{NaiveExplainer, OptimizedExplainer};
use crate::question::{Direction, UserQuestion};
use crate::store::PatternStore;
use cape_data::{AggFunc, Relation, Value};

/// Which explanation algorithm a session uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ExplainAlgo {
    /// EXPL-GEN-OPT (upper-bound pruning) — the default.
    #[default]
    Optimized,
    /// EXPL-GEN-NAIVE (exhaustive).
    Naive,
}

/// An explanation session: a relation, its mined patterns, and an
/// explanation configuration.
///
/// ```
/// use cape_core::session::CapeSession;
/// use cape_core::{Direction, MiningConfig, Thresholds};
/// use cape_data::{AggFunc, Relation, Schema, Value, ValueType};
///
/// let schema = Schema::new([("shop", ValueType::Str), ("day", ValueType::Int)]).unwrap();
/// let mut rel = Relation::new(schema);
/// for shop in ["A", "B", "C"] {
///     for day in 0..8i64 {
///         let n = if shop == "A" && day == 3 { 1 } else { 4 };
///         let n = if shop == "A" && day == 4 { 7 } else { n };
///         for _ in 0..n {
///             rel.push_row(vec![Value::str(shop), Value::Int(day)]).unwrap();
///         }
///     }
/// }
/// let cfg = MiningConfig {
///     thresholds: Thresholds::new(0.1, 3, 0.3, 2),
///     psi: 2,
///     ..MiningConfig::default()
/// };
/// let session = CapeSession::mine(rel, &cfg).unwrap();
/// let (expls, _) = session
///     .why_count(&[("shop", Value::str("A")), ("day", Value::Int(3))], Direction::Low)
///     .unwrap();
/// assert!(expls.iter().any(|e| e.tuple.contains(&Value::Int(4))));
/// ```
#[derive(Debug)]
pub struct CapeSession {
    relation: Relation,
    store: PatternStore,
    explain_cfg: ExplainConfig,
    algo: ExplainAlgo,
    mining_stats: Option<MiningStats>,
    mining_telemetry: Option<cape_obs::TelemetrySnapshot>,
}

impl CapeSession {
    /// Mine patterns for `relation` and build a session.
    pub fn mine(relation: Relation, cfg: &MiningConfig) -> Result<Self> {
        let out = ArpMiner.mine(&relation, cfg)?;
        let explain_cfg = ExplainConfig::default_for(&relation, 10);
        Ok(CapeSession {
            relation,
            store: out.store,
            explain_cfg,
            algo: ExplainAlgo::default(),
            mining_stats: Some(out.stats),
            mining_telemetry: Some(out.telemetry),
        })
    }

    /// Build a session around an existing (e.g. reloaded) pattern store.
    pub fn with_store(relation: Relation, store: PatternStore) -> Self {
        let explain_cfg = ExplainConfig::default_for(&relation, 10);
        CapeSession {
            relation,
            store,
            explain_cfg,
            algo: ExplainAlgo::default(),
            mining_stats: None,
            mining_telemetry: None,
        }
    }

    /// The underlying relation.
    pub fn relation(&self) -> &Relation {
        &self.relation
    }

    /// The mined pattern store.
    pub fn store(&self) -> &PatternStore {
        &self.store
    }

    /// Mining statistics, when the session mined its own patterns.
    pub fn mining_stats(&self) -> Option<&MiningStats> {
        self.mining_stats.as_ref()
    }

    /// Full mining telemetry (span tree, counters, histograms), when the
    /// session mined its own patterns.
    pub fn mining_telemetry(&self) -> Option<&cape_obs::TelemetrySnapshot> {
        self.mining_telemetry.as_ref()
    }

    /// Change how many explanations questions return (default 10).
    pub fn with_top_k(mut self, k: usize) -> Self {
        self.explain_cfg.k = k;
        self
    }

    /// Replace the distance model.
    pub fn with_distance(mut self, distance: crate::explain::DistanceModel) -> Self {
        self.explain_cfg.distance = distance;
        self
    }

    /// Select the explanation algorithm.
    pub fn with_algo(mut self, algo: ExplainAlgo) -> Self {
        self.algo = algo;
        self
    }

    /// Build a user question from attribute *names*: the group-by
    /// attributes are exactly the named ones, the aggregate value is read
    /// from the data.
    pub fn question(
        &self,
        agg: AggFunc,
        agg_attr: Option<&str>,
        keys: &[(&str, Value)],
        dir: Direction,
    ) -> Result<UserQuestion> {
        let schema = self.relation.schema();
        let group_attrs: Result<Vec<usize>> =
            keys.iter().map(|(name, _)| schema.attr_id(name).map_err(CapeError::Data)).collect();
        let agg_attr = match agg_attr {
            Some(name) => Some(schema.attr_id(name).map_err(CapeError::Data)?),
            None => None,
        };
        let tuple: Vec<Value> = keys.iter().map(|(_, v)| v.clone()).collect();
        UserQuestion::from_query(&self.relation, group_attrs?, agg, agg_attr, tuple, dir)
    }

    /// Explain an already-built question.
    pub fn explain(&self, uq: &UserQuestion) -> (Vec<Explanation>, ExplainStats) {
        match self.algo {
            ExplainAlgo::Optimized => {
                OptimizedExplainer.explain(&self.store, uq, &self.explain_cfg)
            }
            ExplainAlgo::Naive => NaiveExplainer.explain(&self.store, uq, &self.explain_cfg),
        }
    }

    /// One-call convenience for count queries: "why is the count for
    /// these group-by values high/low?".
    pub fn why_count(
        &self,
        keys: &[(&str, Value)],
        dir: Direction,
    ) -> Result<(Vec<Explanation>, ExplainStats)> {
        let uq = self.question(AggFunc::Count, None, keys, dir)?;
        Ok(self.explain(&uq))
    }

    /// The Appendix-A.2 baseline for the same question shape.
    pub fn baseline(&self, uq: &UserQuestion) -> Result<Vec<Explanation>> {
        let (expls, _) = BaselineExplainer
            .explain(&self.relation, uq, &self.explain_cfg)
            .map_err(CapeError::Data)?;
        Ok(expls)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Thresholds;
    use cape_data::{Schema, ValueType};

    fn shops() -> Relation {
        let schema = Schema::new([("shop", ValueType::Str), ("day", ValueType::Int)]).unwrap();
        let mut rel = Relation::new(schema);
        for shop in ["A", "B", "C"] {
            for day in 0..8i64 {
                let n = match (shop, day) {
                    ("A", 3) => 1,
                    ("A", 4) => 7,
                    _ => 4,
                };
                for _ in 0..n {
                    rel.push_row(vec![Value::str(shop), Value::Int(day)]).unwrap();
                }
            }
        }
        rel
    }

    fn session() -> CapeSession {
        let cfg = MiningConfig {
            thresholds: Thresholds::new(0.1, 3, 0.3, 2),
            psi: 2,
            ..MiningConfig::default()
        };
        CapeSession::mine(shops(), &cfg).unwrap()
    }

    #[test]
    fn end_to_end_by_name() {
        let s = session();
        assert!(!s.store().is_empty());
        assert!(s.mining_stats().is_some());
        let (expls, stats) = s
            .why_count(&[("shop", Value::str("A")), ("day", Value::Int(3))], Direction::Low)
            .unwrap();
        assert!(!expls.is_empty());
        assert!(stats.patterns_relevant > 0);
        assert!(expls.iter().any(|e| e.tuple.contains(&Value::Int(4))));
    }

    #[test]
    fn unknown_attribute_is_an_error() {
        let s = session();
        let err = s.why_count(&[("bogus", Value::Int(1))], Direction::Low);
        assert!(err.is_err());
    }

    #[test]
    fn naive_and_optimized_sessions_agree() {
        let cfg = MiningConfig {
            thresholds: Thresholds::new(0.1, 3, 0.3, 2),
            psi: 2,
            ..MiningConfig::default()
        };
        let opt = CapeSession::mine(shops(), &cfg).unwrap();
        let naive = CapeSession::mine(shops(), &cfg).unwrap().with_algo(ExplainAlgo::Naive);
        let keys = [("shop", Value::str("A")), ("day", Value::Int(3))];
        let (a, _) = opt.why_count(&keys, Direction::Low).unwrap();
        let (b, _) = naive.why_count(&keys, Direction::Low).unwrap();
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.key(), y.key());
        }
    }

    #[test]
    fn top_k_is_respected() {
        let s = session().with_top_k(2);
        let (expls, _) = s
            .why_count(&[("shop", Value::str("A")), ("day", Value::Int(3))], Direction::Low)
            .unwrap();
        assert!(expls.len() <= 2);
    }

    #[test]
    fn with_store_roundtrip() {
        let s = session();
        let mut buf = Vec::new();
        crate::persist::write_store(&mut buf, s.store()).unwrap();
        let store = crate::persist::read_store(&buf[..], s.relation()).unwrap();
        let s2 = CapeSession::with_store(shops(), store);
        assert!(s2.mining_stats().is_none());
        let keys = [("shop", Value::str("A")), ("day", Value::Int(3))];
        let (a, _) = s.why_count(&keys, Direction::Low).unwrap();
        let (b, _) = s2.why_count(&keys, Direction::Low).unwrap();
        assert_eq!(a.len(), b.len());
    }

    #[test]
    fn baseline_available() {
        let s = session();
        let uq = s
            .question(
                AggFunc::Count,
                None,
                &[("shop", Value::str("A")), ("day", Value::Int(3))],
                Direction::Low,
            )
            .unwrap();
        let base = s.baseline(&uq).unwrap();
        assert!(!base.is_empty());
    }
}
