//! Pattern-store persistence: save mined ARPs (with their local models)
//! to a line-based text format and reload them against the base relation.
//!
//! CAPE's workflow is offline mining + online explanation; persisting the
//! mined store lets the two run in different processes. Only the pattern
//! metadata and fitted models are stored — the aggregated group data is
//! recomputed from the relation at load time (one group-by per `F ∪ V`,
//! far cheaper than mining, which also had to enumerate/sort/fit).

use crate::group_data::GroupData;
use crate::pattern::Arp;
use crate::store::{fold_dev_bounds, LocalPattern, PatternInstance, PatternStore};
use cape_data::{AggFunc, AttrId, Relation, Value};
use cape_regress::{Fitted, Model, ModelType};
use std::collections::HashMap;
use std::io::{BufRead, BufReader, Read, Write};
use std::sync::Arc;

/// Errors from reading a persisted store.
#[derive(Debug, Clone, PartialEq)]
pub enum PersistError {
    /// Line could not be parsed.
    Parse {
        /// 1-based line number.
        line: usize,
        /// What went wrong.
        message: String,
    },
    /// I/O failure (stringified to keep the error `Clone`).
    Io(String),
    /// The store references attributes the relation does not have.
    SchemaMismatch(String),
}

impl std::fmt::Display for PersistError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PersistError::Parse { line, message } => {
                write!(f, "parse error at line {line}: {message}")
            }
            PersistError::Io(m) => write!(f, "io error: {m}"),
            PersistError::SchemaMismatch(m) => write!(f, "schema mismatch: {m}"),
        }
    }
}

impl std::error::Error for PersistError {}

impl From<std::io::Error> for PersistError {
    fn from(e: std::io::Error) -> Self {
        PersistError::Io(e.to_string())
    }
}

fn encode_value(v: &Value) -> String {
    match v {
        Value::Null => "n:".to_string(),
        Value::Int(i) => format!("i:{i}"),
        Value::Float(f) => format!("f:{}", f.to_bits()),
        Value::Str(s) => {
            let mut out = String::with_capacity(s.len() + 2);
            out.push_str("s:");
            for c in s.chars() {
                match c {
                    '%' => out.push_str("%25"),
                    '|' => out.push_str("%7C"),
                    ' ' => out.push_str("%20"),
                    '\n' => out.push_str("%0A"),
                    c => out.push(c),
                }
            }
            out
        }
    }
}

fn decode_value(s: &str, line: usize) -> Result<Value, PersistError> {
    let err = |m: &str| PersistError::Parse { line, message: m.to_string() };
    let (tag, rest) = s.split_once(':').ok_or_else(|| err("missing value tag"))?;
    match tag {
        "n" => Ok(Value::Null),
        "i" => rest.parse::<i64>().map(Value::Int).map_err(|_| err("bad int")),
        "f" => rest
            .parse::<u64>()
            .map(|bits| Value::Float(f64::from_bits(bits)))
            .map_err(|_| err("bad float bits")),
        "s" => {
            let mut out = String::new();
            let mut chars = rest.chars();
            while let Some(c) = chars.next() {
                if c == '%' {
                    let hi = chars.next().ok_or_else(|| err("bad escape"))?;
                    let lo = chars.next().ok_or_else(|| err("bad escape"))?;
                    let byte = u8::from_str_radix(&format!("{hi}{lo}"), 16)
                        .map_err(|_| err("bad escape hex"))?;
                    out.push(byte as char);
                } else {
                    out.push(c);
                }
            }
            Ok(Value::str(out))
        }
        _ => Err(err("unknown value tag")),
    }
}

fn encode_model(m: &Model) -> String {
    match m {
        Model::Constant { beta } => format!("const {}", beta.to_bits()),
        Model::Linear { intercept, coefs } => {
            let cs: Vec<String> = coefs.iter().map(|c| c.to_bits().to_string()).collect();
            format!("lin {} {}", intercept.to_bits(), cs.join(","))
        }
        Model::Quadratic { intercept, lin, quad } => {
            let ls: Vec<String> = lin.iter().map(|c| c.to_bits().to_string()).collect();
            let qs: Vec<String> = quad.iter().map(|c| c.to_bits().to_string()).collect();
            format!("quad {} {} {}", intercept.to_bits(), ls.join(","), qs.join(","))
        }
    }
}

fn decode_model(s: &str, line: usize) -> Result<Model, PersistError> {
    let err = |m: &str| PersistError::Parse { line, message: m.to_string() };
    let mut parts = s.split_whitespace();
    match parts.next() {
        Some("const") => {
            let bits = parts.next().ok_or_else(|| err("missing beta"))?;
            let beta = f64::from_bits(bits.parse().map_err(|_| err("bad beta"))?);
            Ok(Model::Constant { beta })
        }
        Some("lin") => {
            let bits = parts.next().ok_or_else(|| err("missing intercept"))?;
            let intercept = f64::from_bits(bits.parse().map_err(|_| err("bad intercept"))?);
            let coefs_str = parts.next().ok_or_else(|| err("missing coefs"))?;
            let coefs: Result<Vec<f64>, _> =
                coefs_str.split(',').map(|c| c.parse::<u64>().map(f64::from_bits)).collect();
            Ok(Model::Linear { intercept, coefs: coefs.map_err(|_| err("bad coef"))? })
        }
        Some("quad") => {
            let bits = parts.next().ok_or_else(|| err("missing intercept"))?;
            let intercept = f64::from_bits(bits.parse().map_err(|_| err("bad intercept"))?);
            let parse_list = |s: &str| -> Result<Vec<f64>, PersistError> {
                s.split(',')
                    .map(|c| c.parse::<u64>().map(f64::from_bits))
                    .collect::<Result<Vec<f64>, _>>()
                    .map_err(|_| err("bad coef"))
            };
            let lin = parse_list(parts.next().ok_or_else(|| err("missing lin coefs"))?)?;
            let quad = parse_list(parts.next().ok_or_else(|| err("missing quad coefs"))?)?;
            Ok(Model::Quadratic { intercept, lin, quad })
        }
        _ => Err(err("unknown model kind")),
    }
}

fn agg_name(agg: AggFunc) -> &'static str {
    agg.name()
}

fn parse_agg(s: &str, line: usize) -> Result<AggFunc, PersistError> {
    match s {
        "count" => Ok(AggFunc::Count),
        "sum" => Ok(AggFunc::Sum),
        "min" => Ok(AggFunc::Min),
        "max" => Ok(AggFunc::Max),
        "avg" => Ok(AggFunc::Avg),
        _ => Err(PersistError::Parse { line, message: format!("unknown agg `{s}`") }),
    }
}

fn ids(list: &[AttrId]) -> String {
    list.iter().map(|a| a.to_string()).collect::<Vec<_>>().join(",")
}

fn parse_ids(s: &str, line: usize) -> Result<Vec<AttrId>, PersistError> {
    s.split(',')
        .map(|p| {
            p.parse::<AttrId>()
                .map_err(|_| PersistError::Parse { line, message: format!("bad attr id `{p}`") })
        })
        .collect()
}

/// Serialize the store. Format (one record per line):
///
/// ```text
/// cape-store v1
/// pattern f=0,3 v=2 agg=count attr=- model=Const conf=<bits> supp=12
/// local key=s:AX|s:SIGKDD n=10 gof=<bits> pos=<bits> neg=<bits> model=const <bits>
/// ```
pub fn write_store<W: Write>(w: &mut W, store: &PatternStore) -> Result<(), PersistError> {
    writeln!(w, "cape-store v1")?;
    for (_, inst) in store.iter() {
        let attr = match inst.arp.agg_attr {
            Some(a) => a.to_string(),
            None => "-".to_string(),
        };
        writeln!(
            w,
            "pattern f={} v={} agg={} attr={} model={} conf={} supp={}",
            ids(inst.arp.f()),
            ids(inst.arp.v()),
            agg_name(inst.arp.agg),
            attr,
            inst.arp.model,
            inst.confidence.to_bits(),
            inst.num_supported,
        )?;
        // Deterministic order for reproducible files.
        let mut keys: Vec<&Vec<Value>> = inst.locals.keys().collect();
        keys.sort();
        for key in keys {
            let local = &inst.locals[key];
            let enc_key: Vec<String> = key.iter().map(encode_value).collect();
            writeln!(
                w,
                "local key={} n={} gof={} pos={} neg={} model={}",
                enc_key.join("|"),
                local.support,
                local.fitted.gof.to_bits(),
                local.max_pos_dev.to_bits(),
                local.max_neg_dev.to_bits(),
                encode_model(&local.fitted.model),
            )?;
        }
    }
    Ok(())
}

fn field<'a>(parts: &'a [(&str, &str)], name: &str, line: usize) -> Result<&'a str, PersistError> {
    parts
        .iter()
        .find(|(k, _)| *k == name)
        .map(|(_, v)| *v)
        .ok_or_else(|| PersistError::Parse { line, message: format!("missing field `{name}`") })
}

/// Deserialize a store, recomputing the shared group data from `rel`.
pub fn read_store<R: Read>(r: R, rel: &Relation) -> Result<PatternStore, PersistError> {
    let reader = BufReader::new(r);
    let mut lines = reader.lines().enumerate();
    let (_, header) =
        lines.next().ok_or(PersistError::Parse { line: 1, message: "empty file".into() })?;
    if header?.trim() != "cape-store v1" {
        return Err(PersistError::Parse { line: 1, message: "bad header".into() });
    }

    struct Pending {
        arp: Arp,
        confidence: f64,
        num_supported: usize,
        locals: HashMap<Vec<Value>, LocalPattern>,
    }
    let mut pendings: Vec<Pending> = Vec::new();

    for (idx, line) in lines {
        let line_no = idx + 1;
        let line = line?;
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let (kind, rest) = line
            .split_once(' ')
            .ok_or(PersistError::Parse { line: line_no, message: "bad record".into() })?;
        let parts: Vec<(&str, &str)> = rest
            .split(' ')
            .filter(|p| !p.is_empty())
            .map(|p| p.split_once('=').unwrap_or((p, "")))
            .collect();
        match kind {
            "pattern" => {
                let f = parse_ids(field(&parts, "f", line_no)?, line_no)?;
                let v = parse_ids(field(&parts, "v", line_no)?, line_no)?;
                let agg = parse_agg(field(&parts, "agg", line_no)?, line_no)?;
                let attr_s = field(&parts, "attr", line_no)?;
                let agg_attr = if attr_s == "-" {
                    None
                } else {
                    Some(attr_s.parse::<AttrId>().map_err(|_| PersistError::Parse {
                        line: line_no,
                        message: "bad agg attr".into(),
                    })?)
                };
                let model = match field(&parts, "model", line_no)? {
                    "Const" => ModelType::Const,
                    "Lin" => ModelType::Lin,
                    "Quad" => ModelType::Quad,
                    other => {
                        return Err(PersistError::Parse {
                            line: line_no,
                            message: format!("unknown model `{other}`"),
                        })
                    }
                };
                let confidence =
                    f64::from_bits(field(&parts, "conf", line_no)?.parse().map_err(|_| {
                        PersistError::Parse { line: line_no, message: "bad confidence".into() }
                    })?);
                let num_supported = field(&parts, "supp", line_no)?.parse().map_err(|_| {
                    PersistError::Parse { line: line_no, message: "bad support".into() }
                })?;
                pendings.push(Pending {
                    arp: Arp::new(f, v, agg, agg_attr, model),
                    confidence,
                    num_supported,
                    locals: HashMap::new(),
                });
            }
            "local" => {
                let pending = pendings.last_mut().ok_or(PersistError::Parse {
                    line: line_no,
                    message: "local before pattern".into(),
                })?;
                let key: Result<Vec<Value>, _> = field(&parts, "key", line_no)?
                    .split('|')
                    .map(|p| decode_value(p, line_no))
                    .collect();
                let support = field(&parts, "n", line_no)?
                    .parse()
                    .map_err(|_| PersistError::Parse { line: line_no, message: "bad n".into() })?;
                let bits = |name: &str| -> Result<f64, PersistError> {
                    Ok(f64::from_bits(field(&parts, name, line_no)?.parse().map_err(|_| {
                        PersistError::Parse {
                            line: line_no,
                            message: format!("bad bits for {name}"),
                        }
                    })?))
                };
                let gof = bits("gof")?;
                let max_pos_dev = bits("pos")?;
                let max_neg_dev = bits("neg")?;
                // ` model=` is the final field; everything after it is the
                // space-separated model encoding. The leading space cannot
                // appear inside other fields because values escape spaces.
                let model_pos = rest.find(" model=").ok_or(PersistError::Parse {
                    line: line_no,
                    message: "missing model".into(),
                })?;
                let model = decode_model(&rest[model_pos + 7..], line_no)?;
                pending.locals.insert(
                    key?,
                    LocalPattern {
                        fitted: Fitted { model, gof, n: support },
                        support,
                        max_pos_dev,
                        max_neg_dev,
                    },
                );
            }
            other => {
                return Err(PersistError::Parse {
                    line: line_no,
                    message: format!("unknown record `{other}`"),
                })
            }
        }
    }

    // Recompute shared group data per (G, aggs needed).
    let mut cache: HashMap<Vec<AttrId>, Arc<GroupData>> = HashMap::new();
    let mut aggs_by_g: HashMap<Vec<AttrId>, Vec<(AggFunc, Option<AttrId>)>> = HashMap::new();
    for p in &pendings {
        let g = p.arp.g_attrs();
        let list = aggs_by_g.entry(g).or_default();
        let key = (p.arp.agg, p.arp.agg_attr);
        if !list.contains(&key) {
            list.push(key);
        }
    }
    let arity = rel.schema().arity();
    let mut store = PatternStore::new();
    for p in pendings {
        let g = p.arp.g_attrs();
        if g.iter().any(|&a| a >= arity) {
            return Err(PersistError::SchemaMismatch(format!(
                "pattern references attribute {} but relation has arity {arity}",
                g.iter().max().unwrap()
            )));
        }
        let gd = match cache.get(&g) {
            Some(gd) => Arc::clone(gd),
            None => {
                let aggs = &aggs_by_g[&g];
                let gd = Arc::new(
                    GroupData::compute(rel, &g, aggs)
                        .map_err(|e| PersistError::SchemaMismatch(e.to_string()))?,
                );
                cache.insert(g.clone(), Arc::clone(&gd));
                gd
            }
        };
        let agg_col = gd
            .agg_col(p.arp.agg, p.arp.agg_attr)
            .ok_or_else(|| PersistError::SchemaMismatch("aggregate column missing".into()))?;
        let mut inst = PatternInstance {
            arp: p.arp,
            data: gd,
            agg_col,
            locals: p.locals,
            confidence: p.confidence,
            num_supported: p.num_supported,
            max_pos_dev: 0.0,
            max_neg_dev: 0.0,
        };
        fold_dev_bounds(&mut inst);
        store.push(inst);
    }
    Ok(store)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{MiningConfig, Thresholds};
    use crate::mining::{Miner, ShareGrpMiner};
    use cape_data::{Schema, ValueType};

    fn mined() -> (Relation, PatternStore) {
        let schema = Schema::new([
            ("author", ValueType::Str),
            ("year", ValueType::Int),
            ("venue", ValueType::Str),
        ])
        .unwrap();
        let mut rel = Relation::new(schema);
        for a in 0..4 {
            for y in 0..6 {
                for p in 0..3 {
                    rel.push_row(vec![
                        Value::str(format!("a {a}|x%")), // exercise escaping
                        Value::Int(2000 + y),
                        Value::str(if p % 2 == 0 { "KDD" } else { "ICDE" }),
                    ])
                    .unwrap();
                }
            }
        }
        let cfg = MiningConfig {
            thresholds: Thresholds::new(0.2, 3, 0.4, 2),
            psi: 3,
            ..MiningConfig::default()
        };
        let store = ShareGrpMiner.mine(&rel, &cfg).unwrap().store;
        (rel, store)
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let (rel, store) = mined();
        assert!(!store.is_empty());
        let mut buf = Vec::new();
        write_store(&mut buf, &store).unwrap();
        let back = read_store(&buf[..], &rel).unwrap();
        assert_eq!(back.len(), store.len());
        for ((_, a), (_, b)) in store.iter().zip(back.iter()) {
            assert_eq!(a.arp, b.arp);
            assert_eq!(a.confidence, b.confidence);
            assert_eq!(a.num_supported, b.num_supported);
            assert_eq!(a.locals.len(), b.locals.len());
            assert_eq!(a.max_pos_dev, b.max_pos_dev);
            assert_eq!(a.max_neg_dev, b.max_neg_dev);
            for (key, la) in &a.locals {
                let lb = &b.locals[key];
                assert_eq!(la.fitted, lb.fitted);
                assert_eq!(la.support, lb.support);
                assert_eq!(la.max_pos_dev, lb.max_pos_dev);
            }
            // Group data was recomputed and serves the same predictions.
            for i in 0..a.data.relation.num_rows().min(5) {
                assert_eq!(a.predict_row(i), b.predict_row(i));
            }
        }
    }

    #[test]
    fn value_codec_roundtrip() {
        for v in [
            Value::Null,
            Value::Int(-42),
            Value::Float(3.25),
            Value::Float(-0.0),
            Value::str("plain"),
            Value::str("with space|pipe%percent\nnewline"),
        ] {
            let enc = encode_value(&v);
            let dec = decode_value(&enc, 1).unwrap();
            assert_eq!(dec, v, "roundtrip failed for {enc}");
        }
    }

    #[test]
    fn model_codec_roundtrip() {
        for m in [
            Model::Constant { beta: 4.5 },
            Model::Linear { intercept: -1.25, coefs: vec![0.5, 3.0] },
            Model::Quadratic { intercept: 0.5, lin: vec![1.0, -2.0], quad: vec![0.25, 4.0] },
        ] {
            let enc = encode_model(&m);
            assert_eq!(decode_model(&enc, 1).unwrap(), m);
        }
    }

    #[test]
    fn bad_inputs_rejected() {
        let (rel, _) = mined();
        assert!(read_store("not a store".as_bytes(), &rel).is_err());
        assert!(read_store("cape-store v1\nbogus record".as_bytes(), &rel).is_err());
        assert!(read_store(
            "cape-store v1\nlocal key=i:1 n=1 gof=0 pos=0 neg=0 model=const 0".as_bytes(),
            &rel
        )
        .is_err());
        // Pattern referencing attribute 9 with arity 3.
        let bad = "cape-store v1\npattern f=9 v=1 agg=count attr=- model=Const conf=0 supp=1";
        assert!(matches!(read_store(bad.as_bytes(), &rel), Err(PersistError::SchemaMismatch(_))));
    }

    #[test]
    fn explanations_identical_after_reload() {
        use crate::explain::{ExplainConfig, TopKExplainer};
        use crate::prelude::OptimizedExplainer;
        use crate::question::{Direction, UserQuestion};

        let (rel, store) = mined();
        let mut buf = Vec::new();
        write_store(&mut buf, &store).unwrap();
        let back = read_store(&buf[..], &rel).unwrap();

        let uq = UserQuestion::from_query(
            &rel,
            vec![0, 2, 1],
            AggFunc::Count,
            None,
            vec![Value::str("a 0|x%"), Value::str("KDD"), Value::Int(2003)],
            Direction::Low,
        )
        .unwrap();
        let cfg = ExplainConfig::default_for(&rel, 10);
        let (a, _) = OptimizedExplainer.explain(&store, &uq, &cfg);
        let (b, _) = OptimizedExplainer.explain(&back, &uq, &cfg);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.tuple, y.tuple);
            assert!((x.score - y.score).abs() < 1e-12);
        }
    }
}
