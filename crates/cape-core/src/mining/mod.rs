//! ARP mining: the NAIVE, CUBE, SHARE-GRP and ARP-MINE algorithm variants
//! of Section 4, sharing candidate enumeration and fragment fitting.

pub mod arp_mine;
pub mod candidates;
pub mod cube;
pub mod fit;
pub mod naive;
pub mod parallel;
pub(crate) mod rollup;
pub mod share_grp;
mod stats;

pub use arp_mine::ArpMiner;
pub use candidates::{splits_of, Split};
pub use cube::CubeMiner;
pub use naive::NaiveMiner;
pub use parallel::ParallelMiner;
pub use share_grp::ShareGrpMiner;
pub use stats::MiningStats;

use crate::config::MiningConfig;
use crate::error::Result;
use crate::store::PatternStore;
use cape_data::{FdSet, Relation};
use cape_obs::TelemetrySnapshot;

/// The output of a mining run: the globally holding patterns, the FDs
/// that were known or discovered, and timing/count statistics.
#[derive(Debug, Clone)]
pub struct MiningOutput {
    /// Globally holding patterns with their local models.
    pub store: PatternStore,
    /// Functional dependencies (initial + discovered).
    pub fds: FdSet,
    /// Instrumentation for the subtask-breakdown experiment (Figure 4),
    /// derived from [`MiningOutput::telemetry`].
    pub stats: MiningStats,
    /// Full telemetry of the run: span tree, counters, histograms.
    pub telemetry: TelemetrySnapshot,
}

/// Run one miner body under a fresh [`cape_obs::Recorder`] with a root
/// `mining.mine` span, and package the result with the run's telemetry.
///
/// The recorder is *installed* (pushed on the thread's recorder stack), so
/// an outer session recorder — e.g. the CLI's `--metrics` recorder — still
/// observes everything the run records.
pub(crate) fn record_mining_run(
    body: impl FnOnce() -> Result<(PatternStore, FdSet)>,
) -> Result<MiningOutput> {
    let recorder = cape_obs::Recorder::new();
    let install = recorder.install();
    let t_total = std::time::Instant::now();
    let result = {
        let _root = cape_obs::span("mining.mine");
        body()
    };
    let (store, fds) = result?;
    cape_obs::observe_ns("mining.run_ns", t_total.elapsed().as_nanos() as u64);
    drop(install);
    let telemetry = recorder.snapshot();
    let stats = MiningStats::from_telemetry(&telemetry);
    Ok(MiningOutput { store, fds, stats, telemetry })
}

/// A pattern-mining algorithm. All four paper variants implement this.
pub trait Miner {
    /// Short name used in benchmark output (`NAIVE`, `CUBE`, …).
    fn name(&self) -> &'static str;

    /// Mine all ARPs that hold globally on `rel` under `cfg`.
    fn mine(&self, rel: &Relation, cfg: &MiningConfig) -> Result<MiningOutput>;
}

/// Build a [`crate::store::PatternInstance`] from a fitting outcome.
pub(crate) fn make_instance(
    arp: crate::pattern::Arp,
    data: std::sync::Arc<crate::group_data::GroupData>,
    agg_col: usize,
    outcome: fit::FitOutcome,
) -> crate::store::PatternInstance {
    let mut inst = crate::store::PatternInstance {
        arp,
        data,
        agg_col,
        locals: outcome.locals,
        confidence: outcome.confidence,
        num_supported: outcome.num_supported,
        max_pos_dev: 0.0,
        max_neg_dev: 0.0,
    };
    crate::store::fold_dev_bounds(&mut inst);
    inst
}

/// Validate a mining configuration before running (ψ ≥ 2, sane thresholds).
pub fn validate_config(cfg: &MiningConfig) -> Result<()> {
    use crate::error::CapeError;
    if cfg.psi < 2 {
        return Err(CapeError::InvalidConfig(format!(
            "psi must be ≥ 2 (one partition + one predictor attribute), got {}",
            cfg.psi
        )));
    }
    let t = &cfg.thresholds;
    if !(0.0..=1.0).contains(&t.theta) || !(0.0..=1.0).contains(&t.lambda) {
        return Err(CapeError::InvalidConfig("theta and lambda must lie in [0, 1]".to_string()));
    }
    if cfg.models.is_empty() {
        return Err(CapeError::InvalidConfig("no regression model types selected".into()));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_validation() {
        let mut cfg = MiningConfig::default();
        assert!(validate_config(&cfg).is_ok());
        cfg.psi = 1;
        assert!(validate_config(&cfg).is_err());
        cfg.psi = 4;
        cfg.thresholds.theta = 1.5;
        assert!(validate_config(&cfg).is_err());
        cfg.thresholds.theta = 0.5;
        cfg.models.clear();
        assert!(validate_config(&cfg).is_err());
    }
}
