//! ARP-MINE (Algorithm 2): shared group-by queries, sort-order reuse
//! across `(F, V)` splits, and the FD optimizations of Appendix D.

use crate::config::MiningConfig;
use crate::error::Result;
use crate::group_data::GroupData;
use crate::mining::candidates::group_sets;
use crate::mining::fit::{fit_split, fit_split_rows};
use crate::mining::share_grp::build_candidates;
use crate::mining::{make_instance, record_mining_run, validate_config, Miner, MiningOutput};
use crate::pattern::Arp;
use crate::store::PatternStore;
use cape_data::stats::attr_stats;
use cape_data::{AttrId, FdDiscovery, FdSet, Relation};
use std::collections::{BTreeSet, HashSet};
use std::sync::Arc;

/// The ARP-MINE miner with optional FD pruning.
#[derive(Debug, Clone, Copy, Default)]
pub struct ArpMiner;

impl Miner for ArpMiner {
    fn name(&self) -> &'static str {
        "ARP-MINE"
    }

    fn mine(&self, rel: &Relation, cfg: &MiningConfig) -> Result<MiningOutput> {
        validate_config(cfg)?;
        record_mining_run(|| {
            let mut store = PatternStore::new();
            let mut fds = cfg.initial_fds.clone();
            let mut fd_disc = FdDiscovery::new();
            let attrs = cfg.candidate_attrs(rel);

            // Seed FD discovery with singleton cardinalities (|π_A(R)|): the
            // group-size map needs them to test FDs A → B at |G| = 2.
            if cfg.fd_pruning {
                for &a in &attrs {
                    let s = attr_stats(rel, a)?;
                    let distinct = s.distinct + usize::from(s.nulls > 0);
                    fd_disc.record([a], distinct);
                }
            }

            for g in group_sets(&attrs, cfg.psi) {
                let aggs = cfg.resolve_aggs(rel, &g);
                if aggs.is_empty() {
                    continue;
                }
                let gd =
                    Arc::new(GroupData::compute_with_layout(rel, &g, &aggs, cfg.columnar_fit)?);
                cape_obs::counter_add("mining.group_queries", 1);

                // Record |π_G(R)| and detect new FDs (detectFDs, Appendix D).
                if cfg.fd_pruning {
                    let g_set: BTreeSet<AttrId> = g.iter().copied().collect();
                    fd_disc.record(g.iter().copied(), gd.relation.num_rows());
                    let found = fd_disc.detect(&g_set, &mut fds);
                    cape_obs::counter_add("mining.fds_discovered", found.len() as u64);
                }

                explore_sort_orders(rel, cfg, &gd, &g, &fds, &mut store)?;
                gd.clear_sort_cache();
            }

            Ok((store, fds))
        })
    }
}

/// ExploreSortOrders (Algorithm 5): enumerate permutations `S` of `G`,
/// sort once per *useful* permutation, and evaluate every `(F, V)` pair
/// whose `F` is a prefix set of `S` that has not been covered yet.
pub(crate) fn explore_sort_orders(
    rel: &Relation,
    cfg: &MiningConfig,
    gd: &Arc<GroupData>,
    g: &[AttrId],
    fds: &FdSet,
    store: &mut PatternStore,
) -> Result<()> {
    let aggs = cfg.resolve_aggs(rel, g);
    let mut covered: HashSet<Vec<AttrId>> = HashSet::new(); // F sets (sorted)

    // FD admissibility is independent of the sort order, so check it up
    // front: an FD-pruned (F, V) counts as covered without ever requiring
    // a sort — this is where the Appendix-D optimization saves queries,
    // not just regressions.
    if cfg.fd_pruning && !fds.is_empty() {
        for split in crate::mining::candidates::splits_of(g) {
            if !validate_fds(&split.f, &split.v, fds) {
                cape_obs::counter_add("mining.skipped_by_fd", 1);
                covered.insert(split.f);
            }
        }
    }

    for perm in permutations(g) {
        // Which prefix F-sets of this permutation are still uncovered?
        let mut new_fs: Vec<Vec<AttrId>> = Vec::new();
        for k in 1..perm.len() {
            let mut f: Vec<AttrId> = perm[..k].to_vec();
            f.sort_unstable();
            if !covered.contains(&f) {
                new_fs.push(f);
            }
        }
        if new_fs.is_empty() {
            continue; // nothing new — skip the sort entirely (line 2 of Alg. 5)
        }

        // One sort order covers every prefix split of this permutation; a
        // cached permutation whose prefixes match each needed F as a set
        // (from another permutation of G, or a prior mine_split) serves
        // without re-sorting. `sort_queries` still counts the logical
        // request, as in the paper's cost model.
        let perm_cols: Vec<usize> =
            perm.iter().map(|&a| gd.col_of_attr(a).expect("attr in G")).collect();
        cape_obs::counter_add("mining.sort_queries", 1);
        let prefix_lens: Vec<usize> = new_fs.iter().map(|f| f.len()).collect();
        let (sorted_copy, sort_perm) = if cfg.sort_cache {
            (None, gd.sort_perm_covering(&perm_cols, &prefix_lens, true))
        } else {
            // Pre-kernel data path: one materialized `ORDER BY` copy per
            // useful permutation, scanned in storage order.
            let sorted = cape_data::ops::sort_by(&gd.relation, &perm_cols);
            let identity: Arc<Vec<usize>> = Arc::new((0..sorted.num_rows()).collect());
            (Some(sorted), identity)
        };
        let scan: &Relation = sorted_copy.as_ref().unwrap_or(&gd.relation);

        for f in new_fs {
            covered.insert(f.clone());
            let v: Vec<AttrId> = g.iter().copied().filter(|a| !f.contains(a)).collect();
            let split = crate::mining::candidates::Split { f, v };
            let f_cols = gd.cols_of_attrs(&split.f).expect("F within G");
            let v_cols = gd.cols_of_attrs(&split.v).expect("V within G");
            let candidates = build_candidates(rel, cfg, gd, &split, &aggs);
            if candidates.is_empty() {
                continue;
            }
            let fitter = if cfg.columnar_fit { fit_split } else { fit_split_rows };
            let outcomes = fitter(scan, &sort_perm, &f_cols, &v_cols, &candidates, &cfg.thresholds);
            for (cand, outcome) in candidates.iter().zip(outcomes) {
                if let Some(outcome) = outcome {
                    let arp = Arp::new(
                        split.f.iter().copied(),
                        split.v.iter().copied(),
                        cand.agg,
                        cand.agg_attr,
                        cand.model,
                    );
                    store.push(make_instance(arp, Arc::clone(gd), cand.agg_col, outcome));
                }
            }
        }
    }
    Ok(())
}

/// The FD admissibility check of Appendix D: `F` must be minimal w.r.t.
/// the FDs (no `A ∈ F` implied by `F − {A}`) and must not determine all of
/// `V` (otherwise every fragment has a single row and can never meet δ).
pub(crate) fn validate_fds(f: &[AttrId], v: &[AttrId], fds: &FdSet) -> bool {
    if fds.is_empty() {
        return true;
    }
    let f_set: BTreeSet<AttrId> = f.iter().copied().collect();
    let v_set: BTreeSet<AttrId> = v.iter().copied().collect();
    fds.is_minimal(&f_set) && !fds.determines_all(&f_set, &v_set)
}

/// All permutations of `items` (lexicographic by input order).
fn permutations(items: &[AttrId]) -> Vec<Vec<AttrId>> {
    fn rec(remaining: &mut Vec<AttrId>, cur: &mut Vec<AttrId>, out: &mut Vec<Vec<AttrId>>) {
        if remaining.is_empty() {
            out.push(cur.clone());
            return;
        }
        for i in 0..remaining.len() {
            let item = remaining.remove(i);
            cur.push(item);
            rec(remaining, cur, out);
            cur.pop();
            remaining.insert(i, item);
        }
    }
    let mut out = Vec::new();
    rec(&mut items.to_vec(), &mut Vec::new(), &mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Thresholds;
    use crate::mining::share_grp::ShareGrpMiner;
    use cape_data::{Fd, Schema, Value, ValueType};

    fn pubs() -> Relation {
        crate::mining::share_grp::tests::pubs(4, 6, 3)
    }

    fn cfg() -> MiningConfig {
        MiningConfig {
            thresholds: Thresholds::new(0.3, 3, 0.5, 2),
            psi: 3,
            ..MiningConfig::default()
        }
    }

    #[test]
    fn permutation_count() {
        assert_eq!(permutations(&[0]).len(), 1);
        assert_eq!(permutations(&[0, 1]).len(), 2);
        assert_eq!(permutations(&[0, 1, 2]).len(), 6);
        assert_eq!(permutations(&[0, 1, 2, 3]).len(), 24);
        // Every permutation is a permutation of the input.
        for p in permutations(&[0, 1, 2]) {
            let mut s = p.clone();
            s.sort_unstable();
            assert_eq!(s, vec![0, 1, 2]);
        }
    }

    #[test]
    fn agrees_with_share_grp() {
        let rel = pubs();
        let a = ArpMiner.mine(&rel, &cfg()).unwrap();
        let b = ShareGrpMiner.mine(&rel, &cfg()).unwrap();
        // Same set of globally holding ARPs.
        let set_a: std::collections::HashSet<_> =
            a.store.iter().map(|(_, p)| p.arp.clone()).collect();
        let set_b: std::collections::HashSet<_> =
            b.store.iter().map(|(_, p)| p.arp.clone()).collect();
        assert_eq!(set_a, set_b);
        assert_eq!(a.store.num_local_patterns(), b.store.num_local_patterns());
    }

    #[test]
    fn fewer_sorts_than_share_grp() {
        let rel = pubs();
        let a = ArpMiner.mine(&rel, &cfg()).unwrap();
        let b = ShareGrpMiner.mine(&rel, &cfg()).unwrap();
        // Sort-order reuse: ARP-MINE sorts strictly less often for |G| ≥ 3.
        assert!(
            a.stats.sort_queries < b.stats.sort_queries,
            "ARP-MINE {} vs SHARE-GRP {}",
            a.stats.sort_queries,
            b.stats.sort_queries
        );
    }

    #[test]
    fn fd_pruning_skips_redundant_partitions() {
        // venue2 is functionally determined by venue (duplicate column).
        let schema = Schema::new([
            ("author", ValueType::Str),
            ("year", ValueType::Int),
            ("venue", ValueType::Str),
            ("venue2", ValueType::Str),
        ])
        .unwrap();
        let mut rel = Relation::new(schema);
        for a in 0..4 {
            for y in 0..6 {
                for p in 0..3 {
                    let venue = if p % 2 == 0 { "KDD" } else { "ICDE" };
                    rel.push_row(vec![
                        Value::str(format!("a{a}")),
                        Value::Int(2000 + y),
                        Value::str(venue),
                        Value::str(format!("{venue}-dup")),
                    ])
                    .unwrap();
                }
            }
        }
        let mut c = cfg();
        c.fd_pruning = true;
        let with_fd = ArpMiner.mine(&rel, &c).unwrap();
        assert!(with_fd.stats.skipped_by_fd > 0, "expected FD-based skips");
        assert!(with_fd.stats.fds_discovered > 0, "expected discovered FDs");
        // No pattern may partition on both venue and venue2 (non-minimal F).
        for (_, p) in with_fd.store.iter() {
            let f = p.arp.f();
            assert!(!(f.contains(&2) && f.contains(&3)), "non-minimal F survived: {:?}", f);
        }
        // Without pruning, mining still works but skips nothing.
        c.fd_pruning = false;
        let without = ArpMiner.mine(&rel, &c).unwrap();
        assert_eq!(without.stats.skipped_by_fd, 0);
        // Pruning only removes redundant patterns, so every pattern found
        // with pruning also exists without it.
        let set_without: std::collections::HashSet<_> =
            without.store.iter().map(|(_, p)| p.arp.clone()).collect();
        for (_, p) in with_fd.store.iter() {
            assert!(set_without.contains(&p.arp));
        }
    }

    #[test]
    fn validate_fds_rules() {
        let mut fds = FdSet::new();
        fds.add(Fd::new([0], 1));
        // F = {0,1} non-minimal (1 implied by 0).
        assert!(!validate_fds(&[0, 1], &[2], &fds));
        assert!(validate_fds(&[0], &[2], &fds));
        // F → V: fragments would be single rows.
        assert!(!validate_fds(&[0], &[1], &fds));
        // Empty FD set admits everything.
        assert!(validate_fds(&[0, 1], &[2], &FdSet::new()));
    }

    #[test]
    fn provided_initial_fds_are_used() {
        let rel = pubs();
        let mut c = cfg();
        c.fd_pruning = true;
        // Claim author → venue (false in the data, but mining must honor it).
        c.initial_fds.add(Fd::new([0], 2));
        let out = ArpMiner.mine(&rel, &c).unwrap();
        for (_, p) in out.store.iter() {
            let f = p.arp.f();
            assert!(!(f.contains(&0) && f.contains(&2)), "F={f:?} should be pruned");
        }
    }
}
