//! Mining instrumentation for the subtask-breakdown experiment (Figure 4).

use std::time::Duration;

/// Timing and counting statistics collected during one mining run.
///
/// `query_time` covers relational work (aggregation, sorting, selection,
/// cube); `regression_time` covers model fitting and GoF computation;
/// everything else (candidate enumeration, bookkeeping, FD reasoning) is
/// `other_time = total_time − query_time − regression_time`.
#[derive(Debug, Clone, Default)]
pub struct MiningStats {
    /// Wall-clock time of the whole mining run.
    pub total_time: Duration,
    /// Time in relational operators.
    pub query_time: Duration,
    /// Time in regression fitting.
    pub regression_time: Duration,
    /// Pattern candidates `(F, V, agg, A, M)` considered.
    pub candidates_considered: usize,
    /// Patterns found to hold globally.
    pub patterns_found: usize,
    /// Fragments on which a regression was fitted.
    pub fragments_fitted: usize,
    /// `(F, V)` splits skipped by the FD optimizations (Appendix D).
    pub skipped_by_fd: usize,
    /// Group-by queries executed.
    pub group_queries: usize,
    /// Sort queries executed.
    pub sort_queries: usize,
    /// Functional dependencies discovered from group cardinalities.
    pub fds_discovered: usize,
}

impl MiningStats {
    /// Time spent outside queries and regression.
    pub fn other_time(&self) -> Duration {
        self.total_time.saturating_sub(self.query_time).saturating_sub(self.regression_time)
    }

    /// Fractions `(query, regression, other)` of total time, for the
    /// normalized stacked bars of Figure 4. Returns zeros for an empty run.
    pub fn fractions(&self) -> (f64, f64, f64) {
        let total = self.total_time.as_secs_f64();
        if total == 0.0 {
            return (0.0, 0.0, 0.0);
        }
        (
            self.query_time.as_secs_f64() / total,
            self.regression_time.as_secs_f64() / total,
            self.other_time().as_secs_f64() / total,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn other_time_is_residual() {
        let s = MiningStats {
            total_time: Duration::from_millis(100),
            query_time: Duration::from_millis(60),
            regression_time: Duration::from_millis(25),
            ..Default::default()
        };
        assert_eq!(s.other_time(), Duration::from_millis(15));
        let (q, r, o) = s.fractions();
        assert!((q - 0.6).abs() < 1e-9);
        assert!((r - 0.25).abs() < 1e-9);
        assert!((o - 0.15).abs() < 1e-9);
    }

    #[test]
    fn residual_saturates() {
        // Query + regression can slightly exceed total due to timer nesting.
        let s = MiningStats {
            total_time: Duration::from_millis(10),
            query_time: Duration::from_millis(8),
            regression_time: Duration::from_millis(5),
            ..Default::default()
        };
        assert_eq!(s.other_time(), Duration::ZERO);
    }

    #[test]
    fn empty_run_fractions() {
        assert_eq!(MiningStats::default().fractions(), (0.0, 0.0, 0.0));
    }
}
