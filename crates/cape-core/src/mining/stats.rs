//! Mining instrumentation for the subtask-breakdown experiment (Figure 4).

use cape_obs::TelemetrySnapshot;
use std::time::Duration;

/// Timing and counting statistics collected during one mining run.
///
/// `query_time` covers relational work (aggregation, sorting, selection,
/// cube); `regression_time` covers model fitting and GoF computation;
/// everything else (candidate enumeration, bookkeeping, FD reasoning) is
/// `other_time = total_time − query_time − regression_time`.
///
/// The numbers are derived from a [`TelemetrySnapshot`]: phase times from
/// the span tree (`data.*` spans → query, `regress.*` spans → regression)
/// and counts from the `mining.*` counters.
#[derive(Debug, Clone, Default)]
pub struct MiningStats {
    /// Wall-clock time of the whole mining run.
    pub total_time: Duration,
    /// Time in relational operators.
    pub query_time: Duration,
    /// Time in regression fitting.
    pub regression_time: Duration,
    /// Pattern candidates `(F, V, agg, A, M)` considered.
    pub candidates_considered: usize,
    /// Patterns found to hold globally.
    pub patterns_found: usize,
    /// Fragments on which a regression was fitted.
    pub fragments_fitted: usize,
    /// `(F, V)` splits skipped by the FD optimizations (Appendix D).
    pub skipped_by_fd: usize,
    /// Group-by queries executed.
    pub group_queries: usize,
    /// Sort queries executed.
    pub sort_queries: usize,
    /// Functional dependencies discovered from group cardinalities.
    pub fds_discovered: usize,
    /// Group materializations served from the lattice roll-up cache
    /// (exact hits + parent derivations) instead of a base scan.
    pub rollup_hits: usize,
    /// Sort requests served from a cached permutation.
    pub sort_cache_hits: usize,
    /// Base-relation rows *not* scanned thanks to roll-up and the sort
    /// cache (the perf headline of the columnar mining kernels).
    pub scan_rows_saved: usize,
}

impl MiningStats {
    /// Derive Figure-4 statistics from a mining run's telemetry.
    pub fn from_telemetry(snapshot: &TelemetrySnapshot) -> Self {
        let phases = snapshot.phase_breakdown();
        let c = |name: &str| snapshot.counter(name) as usize;
        MiningStats {
            total_time: Duration::from_nanos(phases.total_ns),
            query_time: Duration::from_nanos(phases.query_ns),
            regression_time: Duration::from_nanos(phases.regression_ns),
            candidates_considered: c("mining.candidates_considered"),
            patterns_found: c("mining.patterns_found"),
            fragments_fitted: c("mining.fragments_fitted"),
            skipped_by_fd: c("mining.skipped_by_fd"),
            group_queries: c("mining.group_queries"),
            sort_queries: c("mining.sort_queries"),
            fds_discovered: c("mining.fds_discovered"),
            rollup_hits: c("mining.rollup_hits"),
            sort_cache_hits: c("mining.sort_cache_hits"),
            scan_rows_saved: c("mining.scan_rows_saved"),
        }
    }

    /// Time spent outside queries and regression.
    ///
    /// Saturates at zero: in a parallel run the per-thread phase times can
    /// sum past the wall-clock total.
    pub fn other_time(&self) -> Duration {
        self.total_time.saturating_sub(self.query_time).saturating_sub(self.regression_time)
    }

    /// Fractions `(query, regression, other)` of total time, for the
    /// normalized stacked bars of Figure 4. Returns zeros for an empty run.
    ///
    /// Invariant: for any non-empty run the three fractions sum to 1. The
    /// denominator is `max(total, query + regression)` so that when summed
    /// per-thread phase times exceed the wall-clock total (parallel mining)
    /// the bars still normalize instead of overflowing past 100%.
    pub fn fractions(&self) -> (f64, f64, f64) {
        let measured = self.query_time + self.regression_time;
        let denom = self.total_time.max(measured).as_secs_f64();
        if denom == 0.0 {
            return (0.0, 0.0, 0.0);
        }
        (
            self.query_time.as_secs_f64() / denom,
            self.regression_time.as_secs_f64() / denom,
            self.other_time().as_secs_f64() / denom,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn other_time_is_residual() {
        let s = MiningStats {
            total_time: Duration::from_millis(100),
            query_time: Duration::from_millis(60),
            regression_time: Duration::from_millis(25),
            ..Default::default()
        };
        assert_eq!(s.other_time(), Duration::from_millis(15));
        let (q, r, o) = s.fractions();
        assert!((q - 0.6).abs() < 1e-9);
        assert!((r - 0.25).abs() < 1e-9);
        assert!((o - 0.15).abs() < 1e-9);
    }

    #[test]
    fn residual_saturates() {
        // Query + regression can exceed total when threads overlap.
        let s = MiningStats {
            total_time: Duration::from_millis(10),
            query_time: Duration::from_millis(8),
            regression_time: Duration::from_millis(5),
            ..Default::default()
        };
        assert_eq!(s.other_time(), Duration::ZERO);
    }

    #[test]
    fn fractions_sum_to_one_even_when_phases_exceed_total() {
        let s = MiningStats {
            total_time: Duration::from_millis(10),
            query_time: Duration::from_millis(8),
            regression_time: Duration::from_millis(5),
            ..Default::default()
        };
        let (q, r, o) = s.fractions();
        assert!((q + r + o - 1.0).abs() < 1e-9, "fractions must sum to 1, got {}", q + r + o);
        assert!((q - 8.0 / 13.0).abs() < 1e-9);
        assert!((r - 5.0 / 13.0).abs() < 1e-9);
        assert_eq!(o, 0.0);
    }

    #[test]
    fn empty_run_fractions() {
        assert_eq!(MiningStats::default().fractions(), (0.0, 0.0, 0.0));
    }

    #[test]
    fn from_empty_telemetry_is_default() {
        let rec = cape_obs::Recorder::new();
        let s = MiningStats::from_telemetry(&rec.snapshot());
        assert_eq!(s.candidates_considered, 0);
        assert_eq!(s.total_time, Duration::ZERO);
    }
}
