//! Candidate enumeration: group-by sets `G`, `(F, V)` splits, and the
//! validity rules tying model types to predictor types.

use cape_data::{AttrId, Relation};
use cape_regress::ModelType;

/// A partition of a group-by set `G` into partition attributes `F` and
/// predictor attributes `V` (both non-empty, disjoint, `F ∪ V = G`).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Split {
    /// Partition attributes, sorted by id.
    pub f: Vec<AttrId>,
    /// Predictor attributes, sorted by id.
    pub v: Vec<AttrId>,
}

/// All subsets of `attrs` with `2 ≤ |G| ≤ psi`, in increasing size then
/// lexicographic order. Increasing size matters: FD discovery needs the
/// cardinality of `G − {A}` to be recorded before `G` is processed
/// (Appendix D).
pub fn group_sets(attrs: &[AttrId], psi: usize) -> Vec<Vec<AttrId>> {
    let mut out = Vec::new();
    fn combos(
        attrs: &[AttrId],
        start: usize,
        left: usize,
        cur: &mut Vec<AttrId>,
        out: &mut Vec<Vec<AttrId>>,
    ) {
        if left == 0 {
            out.push(cur.clone());
            return;
        }
        if attrs.len().saturating_sub(start) < left {
            return;
        }
        for i in start..=attrs.len() - left {
            cur.push(attrs[i]);
            combos(attrs, i + 1, left - 1, cur, out);
            cur.pop();
        }
    }
    for size in 2..=psi.min(attrs.len()) {
        combos(attrs, 0, size, &mut Vec::new(), &mut out);
    }
    out
}

/// All `(F, V)` splits of `g` with non-empty `F` and `V`
/// (`2^|g| − 2` splits).
pub fn splits_of(g: &[AttrId]) -> Vec<Split> {
    let n = g.len();
    debug_assert!(n >= 2);
    let mut out = Vec::with_capacity((1usize << n) - 2);
    // Bitmask enumeration: bit i set ⇒ g[i] ∈ F.
    for mask in 1..(1u32 << n) - 1 {
        let mut f = Vec::new();
        let mut v = Vec::new();
        for (i, &a) in g.iter().enumerate() {
            if mask & (1 << i) != 0 {
                f.push(a);
            } else {
                v.push(a);
            }
        }
        out.push(Split { f, v });
    }
    out
}

/// Whether a model type may be fitted over predictor attributes `v`:
/// linear regression needs numeric predictors, constant regression works
/// for any predictor type.
pub fn model_valid_for(rel: &Relation, model: ModelType, v: &[AttrId]) -> bool {
    if !model.requires_numeric_predictors() {
        return true;
    }
    v.iter().all(|&a| rel.schema().attr(a).map(|at| at.value_type().is_numeric()).unwrap_or(false))
}

#[cfg(test)]
mod tests {
    use super::*;
    use cape_data::{Schema, ValueType};

    #[test]
    fn group_sets_sizes_and_order() {
        let gs = group_sets(&[0, 1, 2], 3);
        assert_eq!(gs, vec![vec![0, 1], vec![0, 2], vec![1, 2], vec![0, 1, 2],]);
        // ψ caps the size.
        assert_eq!(group_sets(&[0, 1, 2, 3], 2).len(), 6);
        // ψ larger than arity is fine.
        assert_eq!(group_sets(&[0, 1], 9).len(), 1);
        // Too few attributes ⇒ nothing.
        assert!(group_sets(&[0], 4).is_empty());
    }

    #[test]
    fn splits_cover_all_partitions() {
        let s = splits_of(&[0, 1]);
        assert_eq!(s.len(), 2);
        assert!(s.contains(&Split { f: vec![0], v: vec![1] }));
        assert!(s.contains(&Split { f: vec![1], v: vec![0] }));
        let s3 = splits_of(&[0, 1, 2]);
        assert_eq!(s3.len(), 6); // 2^3 − 2
        for split in &s3 {
            assert!(!split.f.is_empty() && !split.v.is_empty());
            let mut all: Vec<AttrId> = split.f.iter().chain(&split.v).copied().collect();
            all.sort_unstable();
            assert_eq!(all, vec![0, 1, 2]);
        }
    }

    #[test]
    fn model_validity() {
        let schema = Schema::new([("author", ValueType::Str), ("year", ValueType::Int)]).unwrap();
        let rel = Relation::new(schema);
        assert!(model_valid_for(&rel, ModelType::Const, &[0]));
        assert!(model_valid_for(&rel, ModelType::Const, &[0, 1]));
        assert!(model_valid_for(&rel, ModelType::Lin, &[1]));
        assert!(!model_valid_for(&rel, ModelType::Lin, &[0]));
        assert!(!model_valid_for(&rel, ModelType::Lin, &[0, 1]));
        assert!(!model_valid_for(&rel, ModelType::Lin, &[9]));
    }
}
