//! SHARE-GRP: one group-by query per `F ∪ V`, one sort per `(F, V)`.
//!
//! Implements the "one query per F ∪ V" optimization (§4.1): all pattern
//! candidates sharing a group-by set `G` reuse a single materialized
//! aggregation; each `(F, V)` split re-sorts that materialization and all
//! `(agg, A, M)` combinations are fitted in one scan.

use crate::config::MiningConfig;
use crate::error::Result;
use crate::group_data::GroupData;
use crate::mining::candidates::{group_sets, model_valid_for, splits_of, Split};
use crate::mining::fit::{fit_split, fit_split_rows, SplitCandidate};
use crate::mining::rollup::{materialize_group, plan_order, LatticeRollup};
use crate::mining::{make_instance, record_mining_run, validate_config, Miner, MiningOutput};
use crate::pattern::Arp;
use crate::store::PatternStore;
use cape_data::{AggFunc, AttrId, Relation};
use std::sync::{Arc, Mutex};

/// The SHARE-GRP miner.
#[derive(Debug, Clone, Copy, Default)]
pub struct ShareGrpMiner;

impl Miner for ShareGrpMiner {
    fn name(&self) -> &'static str {
        "SHARE-GRP"
    }

    fn mine(&self, rel: &Relation, cfg: &MiningConfig) -> Result<MiningOutput> {
        validate_config(cfg)?;
        record_mining_run(|| {
            let attrs = cfg.candidate_attrs(rel);
            let gs = group_sets(&attrs, cfg.psi);
            let lattice = Mutex::new(LatticeRollup::new(rel.num_rows(), cfg));

            // Roll-up visits the lattice parents-first (decreasing size);
            // per-set stores are merged back in candidate order so the
            // resulting pattern order is identical either way.
            let mut slices: Vec<PatternStore> = gs.iter().map(|_| PatternStore::new()).collect();
            for &i in &plan_order(&gs, cfg.rollup) {
                let g = &gs[i];
                let aggs = cfg.resolve_aggs(rel, g);
                if aggs.is_empty() {
                    continue;
                }
                let gd = materialize_group(rel, g, &aggs, &lattice, cfg.columnar_fit)?;
                for split in splits_of(g) {
                    mine_split(rel, cfg, &gd, &split, &aggs, &mut slices[i])?;
                }
                gd.clear_sort_cache();
            }

            let mut store = PatternStore::new();
            for slice in slices {
                for (_, inst) in slice.iter() {
                    store.push(inst.clone());
                }
            }
            Ok((store, cfg.initial_fds.clone()))
        })
    }
}

/// Obtain a fragment-contiguous sort order for one `(F, V)` split of the
/// shared aggregation and fit every `(agg, A, M)` candidate in one scan.
/// Shared with the CUBE miner.
///
/// The order is a permutation *view* over the shared [`GroupData`] — no
/// sorted relation copy is materialized — served from the group's sort
/// cache when a compatible order exists (any cached key sequence whose
/// leading `|F|` columns equal `F` as a set keeps fragments contiguous).
pub(crate) fn mine_split(
    rel: &Relation,
    cfg: &MiningConfig,
    gd: &Arc<GroupData>,
    split: &Split,
    aggs: &[(AggFunc, Option<AttrId>)],
    store: &mut PatternStore,
) -> Result<()> {
    let f_cols = gd.cols_of_attrs(&split.f).expect("F within G");
    let v_cols = gd.cols_of_attrs(&split.v).expect("V within G");

    let candidates = build_candidates(rel, cfg, gd, split, aggs);
    if candidates.is_empty() {
        return Ok(());
    }

    // `sort_queries` counts logical sort requests (the paper's cost
    // model); cache hits/misses are reported separately.
    cape_obs::counter_add("mining.sort_queries", 1);
    let sort_keys: Vec<usize> = f_cols.iter().chain(&v_cols).copied().collect();
    let fitter = if cfg.columnar_fit { fit_split } else { fit_split_rows };
    let outcomes = if cfg.sort_cache {
        let perm = gd.sort_perm_covering(&sort_keys, &[f_cols.len()], true);
        fitter(&gd.relation, &perm, &f_cols, &v_cols, &candidates, &cfg.thresholds)
    } else {
        // Pre-kernel data path: one materialized `ORDER BY` copy per
        // split, scanned in storage order.
        let sorted = cape_data::ops::sort_by(&gd.relation, &sort_keys);
        let identity: Vec<usize> = (0..sorted.num_rows()).collect();
        fitter(&sorted, &identity, &f_cols, &v_cols, &candidates, &cfg.thresholds)
    };
    for (cand, outcome) in candidates.iter().zip(outcomes) {
        if let Some(outcome) = outcome {
            let arp = Arp::new(
                split.f.iter().copied(),
                split.v.iter().copied(),
                cand.agg,
                cand.agg_attr,
                cand.model,
            );
            store.push(make_instance(arp, Arc::clone(gd), cand.agg_col, outcome));
        }
    }
    Ok(())
}

/// Expand `(agg, A)` pairs × model types into [`SplitCandidate`]s, dropping
/// model types invalid for the split's predictor attributes.
pub(crate) fn build_candidates(
    rel: &Relation,
    cfg: &MiningConfig,
    gd: &GroupData,
    split: &Split,
    aggs: &[(AggFunc, Option<AttrId>)],
) -> Vec<SplitCandidate> {
    let mut out = Vec::new();
    for &(agg, agg_attr) in aggs {
        // The aggregated attribute must lie outside F ∪ V (Definition 2);
        // resolve_aggs guarantees A ∉ G for generated lists, but explicit
        // lists are filtered per G, so double-check here for CUBE reuse.
        if let Some(a) = agg_attr {
            if split.f.contains(&a) || split.v.contains(&a) {
                continue;
            }
        }
        let Some(agg_col) = gd.agg_col(agg, agg_attr) else { continue };
        for &model in &cfg.models {
            if model_valid_for(rel, model, &split.v) {
                out.push(SplitCandidate { agg, agg_attr, agg_col, model });
            }
        }
    }
    out
}

#[cfg(test)]
pub(crate) mod tests {
    use super::*;
    use crate::config::Thresholds;
    use cape_data::{Schema, Value, ValueType};

    /// A publications-like relation where "authors" publish a constant
    /// number of papers per year.
    pub(crate) fn pubs(n_authors: usize, n_years: usize, per_year: usize) -> Relation {
        let schema = Schema::new([
            ("author", ValueType::Str),
            ("year", ValueType::Int),
            ("venue", ValueType::Str),
        ])
        .unwrap();
        let mut rel = Relation::new(schema);
        for a in 0..n_authors {
            for y in 0..n_years {
                for p in 0..per_year {
                    rel.push_row(vec![
                        Value::str(format!("a{a}")),
                        Value::Int(2000 + y as i64),
                        Value::str(if p % 2 == 0 { "KDD" } else { "ICDE" }),
                    ])
                    .unwrap();
                }
            }
        }
        rel
    }

    fn cfg() -> MiningConfig {
        MiningConfig {
            thresholds: Thresholds::new(0.3, 3, 0.5, 2),
            psi: 2,
            ..MiningConfig::default()
        }
    }

    #[test]
    fn finds_constant_author_year_pattern() {
        let rel = pubs(4, 6, 3);
        let out = ShareGrpMiner.mine(&rel, &cfg()).unwrap();
        // [author]: year ~Const~> count(*) must be among the found patterns.
        let found = out.store.iter().any(|(_, p)| {
            p.arp.f() == [0] && p.arp.v() == [1] && p.arp.model == cape_regress::ModelType::Const
        });
        assert!(
            found,
            "expected [author]: year pattern, got:\n{}",
            out.store.describe(rel.schema())
        );
        assert!(out.stats.group_queries >= 1);
        assert!(out.stats.sort_queries >= 2);
        assert!(out.stats.total_time >= out.stats.query_time);
    }

    #[test]
    fn psi_bounds_pattern_size() {
        let rel = pubs(4, 6, 3);
        let mut c = cfg();
        c.psi = 3;
        let out = ShareGrpMiner.mine(&rel, &c).unwrap();
        assert!(out.store.iter().all(|(_, p)| p.arp.size() <= 3));
        // Larger ψ explores at least as many candidates.
        let out2 = ShareGrpMiner.mine(&rel, &cfg()).unwrap();
        assert!(out.stats.candidates_considered >= out2.stats.candidates_considered);
    }

    #[test]
    fn local_models_predict_constant() {
        let rel = pubs(3, 6, 4);
        let out = ShareGrpMiner.mine(&rel, &cfg()).unwrap();
        let (_, p) = out
            .store
            .iter()
            .find(|(_, p)| {
                p.arp.f() == [0]
                    && p.arp.v() == [1]
                    && p.arp.model == cape_regress::ModelType::Const
            })
            .unwrap();
        let local = p.local(&[Value::str("a0")]).expect("a0 holds locally");
        // 4 papers per year.
        assert!((local.fitted.model.predict(&[2003.0]) - 4.0).abs() < 1e-9);
        assert_eq!(local.support, 6);
    }

    #[test]
    fn excluded_attrs_never_appear() {
        let rel = pubs(3, 6, 3);
        let mut c = cfg();
        c.exclude = vec![2];
        let out = ShareGrpMiner.mine(&rel, &c).unwrap();
        assert!(out.store.iter().all(|(_, p)| !p.arp.g_attrs().contains(&2)));
    }
}
