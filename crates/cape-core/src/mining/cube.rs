//! CUBE mining: a single cube query materializes the data for every
//! pattern candidate (paper §4.1, "Using the CUBE BY operator").
//!
//! Fidelity note: the paper's SQL CUBE computes *all* groupings and
//! filters with `GROUPING()`. Our cube operator pushes the ψ bound into
//! the enumeration (groupings of size 0..ψ) to keep memory bounded; the
//! characteristic CUBE cost — one scan maintaining *every* grouping's
//! hash table simultaneously, including the aggregates that are invalid
//! for a particular grouping — is preserved, and the benchmark still
//! shows CUBE's growing overhead with the attribute count.

use crate::config::{AggSelection, MiningConfig};
use crate::error::Result;
use crate::group_data::GroupData;
use crate::mining::candidates::{group_sets, splits_of};
use crate::mining::rollup::{materialize_group, plan_order, LatticeRollup};
use crate::mining::share_grp::mine_split;
use crate::mining::{record_mining_run, validate_config, Miner, MiningOutput};
use crate::store::PatternStore;
use cape_data::ops::cube;
use cape_data::{AggFunc, AggSpec, AttrId, Relation};
use std::collections::HashMap;
use std::sync::{Arc, Mutex};

/// The CUBE miner.
#[derive(Debug, Clone, Copy, Default)]
pub struct CubeMiner;

impl Miner for CubeMiner {
    fn name(&self) -> &'static str {
        "CUBE"
    }

    fn mine(&self, rel: &Relation, cfg: &MiningConfig) -> Result<MiningOutput> {
        validate_config(cfg)?;
        record_mining_run(|| {
            let attrs = cfg.candidate_attrs(rel);

            // The single cube query must evaluate the union of all aggregate
            // calls any grouping needs (invalid combinations — A inside the
            // grouping — are computed and discarded, as in SQL).
            let union_aggs = union_agg_list(rel, cfg);
            let specs: Vec<AggSpec> =
                union_aggs.iter().map(|&(func, attr)| AggSpec { func, attr }).collect();

            // With roll-up on, only the *maximal* groupings come from the
            // cube scan; every smaller grouping derives from them through
            // the lattice (the slices carry the full union aggregate list,
            // so any child's aggregates compose). With roll-up off, the
            // cube materializes all groupings as before.
            let min_size = if cfg.rollup { cfg.psi.min(attrs.len()) } else { 0 };
            let slices = cube(rel, &attrs, min_size, cfg.psi, &specs)?;
            cape_obs::counter_add("mining.group_queries", 1); // one cube query

            let lattice = Mutex::new(LatticeRollup::new(rel.num_rows(), cfg));
            let mut by_dims: HashMap<Vec<AttrId>, Arc<GroupData>> = HashMap::new();
            for slice in slices {
                let gd = Arc::new(GroupData::from_parts(
                    slice.dims.clone(),
                    slice.relation,
                    &union_aggs,
                ));
                lattice.lock().expect("lattice").seed(Arc::clone(&gd), specs.clone());
                by_dims.insert(slice.dims, gd);
            }

            let gs = group_sets(&attrs, cfg.psi);
            let mut stores: Vec<PatternStore> = gs.iter().map(|_| PatternStore::new()).collect();
            for &i in &plan_order(&gs, cfg.rollup) {
                let g = &gs[i];
                // Only the aggregates valid for this grouping (A ∉ G).
                let aggs: Vec<(AggFunc, Option<AttrId>)> = union_aggs
                    .iter()
                    .filter(|(_, attr)| attr.is_none_or(|a| !g.contains(&a)))
                    .cloned()
                    .collect();
                if aggs.is_empty() {
                    continue;
                }
                let gd = if cfg.rollup {
                    materialize_group(rel, g, &aggs, &lattice, cfg.columnar_fit)?
                } else {
                    match by_dims.get(g) {
                        Some(gd) => Arc::clone(gd),
                        None => continue,
                    }
                };
                for split in splits_of(g) {
                    mine_split(rel, cfg, &gd, &split, &aggs, &mut stores[i])?;
                }
                gd.clear_sort_cache();
            }

            let mut store = PatternStore::new();
            for slice in stores {
                for (_, inst) in slice.iter() {
                    store.push(inst.clone());
                }
            }
            Ok((store, cfg.initial_fds.clone()))
        })
    }
}

/// The union of aggregate calls over all groupings.
fn union_agg_list(rel: &Relation, cfg: &MiningConfig) -> Vec<(AggFunc, Option<AttrId>)> {
    match &cfg.aggs {
        AggSelection::CountStar => vec![(AggFunc::Count, None)],
        AggSelection::AllNumeric => {
            let mut out = vec![(AggFunc::Count, None)];
            for a in 0..rel.schema().arity() {
                if cfg.exclude.contains(&a) {
                    continue;
                }
                if rel.schema().attr(a).expect("valid id").value_type().is_numeric() {
                    for func in [AggFunc::Sum, AggFunc::Min, AggFunc::Max] {
                        out.push((func, Some(a)));
                    }
                }
            }
            out
        }
        AggSelection::Explicit(list) => list.clone(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Thresholds;
    use crate::mining::share_grp::ShareGrpMiner;
    use crate::mining::Miner;

    fn cfg() -> MiningConfig {
        MiningConfig {
            thresholds: Thresholds::new(0.3, 3, 0.5, 2),
            psi: 2,
            ..MiningConfig::default()
        }
    }

    #[test]
    fn cube_agrees_with_share_grp() {
        let rel = crate::mining::share_grp::tests::pubs(3, 6, 3);
        let a = CubeMiner.mine(&rel, &cfg()).unwrap();
        let b = ShareGrpMiner.mine(&rel, &cfg()).unwrap();
        let set_a: std::collections::HashSet<_> =
            a.store.iter().map(|(_, p)| p.arp.clone()).collect();
        let set_b: std::collections::HashSet<_> =
            b.store.iter().map(|(_, p)| p.arp.clone()).collect();
        assert_eq!(set_a, set_b);
        assert_eq!(a.store.num_local_patterns(), b.store.num_local_patterns());
    }

    #[test]
    fn cube_uses_one_group_query() {
        let rel = crate::mining::share_grp::tests::pubs(3, 6, 3);
        let out = CubeMiner.mine(&rel, &cfg()).unwrap();
        assert_eq!(out.stats.group_queries, 1);
    }

    #[test]
    fn cube_with_all_numeric_aggs() {
        use crate::config::AggSelection;
        let rel = crate::mining::share_grp::tests::pubs(3, 6, 3);
        let mut c = cfg();
        c.aggs = AggSelection::AllNumeric;
        let a = CubeMiner.mine(&rel, &c).unwrap();
        let b = ShareGrpMiner.mine(&rel, &c).unwrap();
        let set_a: std::collections::HashSet<_> =
            a.store.iter().map(|(_, p)| p.arp.clone()).collect();
        let set_b: std::collections::HashSet<_> =
            b.store.iter().map(|(_, p)| p.arp.clone()).collect();
        assert_eq!(set_a, set_b);
    }
}
