//! Lattice roll-up planning: order the ψ-bounded group-set lattice so
//! each child `G` aggregates from its smallest already-materialized
//! parent `G' ⊃ G` instead of rescanning the base relation.
//!
//! Processing the lattice in decreasing set size materializes supersets
//! first; every smaller set then rolls up from a cached parent when its
//! aggregates compose (see [`cape_data::ops::rollup_supported`]). The
//! derived `GroupData` is row-identical to a base scan — the parent's
//! groups are in base first-appearance order, so re-grouping them in
//! parent order reproduces the base first-appearance order — which keeps
//! every miner's output byte-equivalent with roll-up on or off (modulo
//! float summation order, covered by the differential suite's tolerance).
//!
//! Memory is bounded: cached parents are evicted least-recently-used once
//! their total group-row count exceeds the configured budget.

use crate::config::MiningConfig;
use crate::error::Result;
use crate::group_data::GroupData;
use cape_data::ops::{rollup_aggregate, rollup_supported};
use cape_data::{AggFunc, AggSpec, AttrId, Relation};
use std::sync::{Arc, Mutex};

/// Visit order over `group_sets` output: identity when roll-up is off
/// (preserving the legacy increasing-size walk), decreasing set size
/// (stable within a size) when on, so parents precede children.
pub fn plan_order(gs: &[Vec<AttrId>], rollup: bool) -> Vec<usize> {
    let mut order: Vec<usize> = (0..gs.len()).collect();
    if rollup {
        order.sort_by(|&a, &b| gs[b].len().cmp(&gs[a].len()).then(a.cmp(&b)));
    }
    order
}

struct CacheEntry {
    dims: Vec<AttrId>,
    specs: Vec<AggSpec>,
    gd: Arc<GroupData>,
    last_used: u64,
}

/// The shared roll-up state of one mining run: every materialized
/// `GroupData` keyed by its dimension set, with LRU eviction past
/// `budget_rows` total cached group rows.
pub struct LatticeRollup {
    enabled: bool,
    base_rows: usize,
    budget_rows: usize,
    tick: u64,
    entries: Vec<CacheEntry>,
}

enum Found {
    /// The requested dims are cached verbatim.
    Exact(Arc<GroupData>),
    /// A strict superset parent whose aggregates compose.
    Parent {
        gd: Arc<GroupData>,
        dims: Vec<AttrId>,
        specs: Vec<AggSpec>,
    },
    None,
}

impl LatticeRollup {
    /// Fresh state for a run over a base relation of `base_rows` rows.
    pub fn new(base_rows: usize, cfg: &MiningConfig) -> Self {
        LatticeRollup {
            enabled: cfg.rollup,
            base_rows,
            budget_rows: cfg.rollup_budget_rows,
            tick: 0,
            entries: Vec::new(),
        }
    }

    /// Pre-populate the cache (the CUBE miner seeds the maximal slices its
    /// single cube query produced).
    pub fn seed(&mut self, gd: Arc<GroupData>, specs: Vec<AggSpec>) {
        if self.enabled {
            self.insert(gd, specs);
        }
    }

    fn find(&mut self, dims: &[AttrId], child_specs: &[AggSpec]) -> Found {
        if !self.enabled {
            return Found::None;
        }
        self.tick += 1;
        let tick = self.tick;
        if let Some(e) = self.entries.iter_mut().find(|e| e.dims == dims) {
            e.last_used = tick;
            return Found::Exact(Arc::clone(&e.gd));
        }
        // Smallest composing strict superset = cheapest roll-up input. A
        // parent nearly as large as the base relation is no cheaper than a
        // fresh scan (roll-up pays hash-regrouping per parent row, roughly
        // 1.5x a base-scan row), so only parents with at most 2/3 of the
        // base row count qualify.
        let base_rows = self.base_rows;
        let mut best: Option<&mut CacheEntry> = None;
        for e in self.entries.iter_mut() {
            if e.dims.len() > dims.len()
                && e.gd.relation.num_rows() * 3 <= base_rows * 2
                && dims.iter().all(|d| e.dims.contains(d))
                && rollup_supported(&e.dims, &e.specs, dims, child_specs)
            {
                let better = best
                    .as_ref()
                    .is_none_or(|b| e.gd.relation.num_rows() < b.gd.relation.num_rows());
                if better {
                    best = Some(e);
                }
            }
        }
        match best {
            Some(e) => {
                e.last_used = tick;
                Found::Parent {
                    gd: Arc::clone(&e.gd),
                    dims: e.dims.clone(),
                    specs: e.specs.clone(),
                }
            }
            None => Found::None,
        }
    }

    fn insert(&mut self, gd: Arc<GroupData>, specs: Vec<AggSpec>) {
        if !self.enabled {
            return;
        }
        self.tick += 1;
        self.entries.push(CacheEntry {
            dims: gd.group_attrs.clone(),
            specs,
            gd,
            last_used: self.tick,
        });
        // LRU eviction once the cached group rows exceed the budget; the
        // newest entry always survives.
        let total =
            |es: &[CacheEntry]| -> usize { es.iter().map(|e| e.gd.relation.num_rows()).sum() };
        while self.entries.len() > 1 && total(&self.entries) > self.budget_rows {
            let (victim, _) = self
                .entries
                .iter()
                .enumerate()
                .min_by_key(|(_, e)| e.last_used)
                .expect("non-empty");
            self.entries.remove(victim);
        }
    }

    #[cfg(test)]
    fn cached_dims(&self) -> Vec<Vec<AttrId>> {
        self.entries.iter().map(|e| e.dims.clone()).collect()
    }
}

/// Materialize `γ_{g, aggs}` for one group set: from the roll-up cache
/// when possible (exact hit or parent derivation), else by a base scan.
/// Shared by the SHARE-GRP, CUBE and parallel miners; the `Mutex` makes
/// the same code serve the work-queue workers.
pub fn materialize_group(
    rel: &Relation,
    g: &[AttrId],
    aggs: &[(AggFunc, Option<AttrId>)],
    lattice: &Mutex<LatticeRollup>,
    columnar: bool,
) -> Result<Arc<GroupData>> {
    let specs: Vec<AggSpec> = aggs.iter().map(|&(func, attr)| AggSpec { func, attr }).collect();
    let (found, base_rows) = {
        let mut lat = lattice.lock().expect("rollup lattice poisoned");
        (lat.find(g, &specs), lat.base_rows)
    };
    match found {
        Found::Exact(gd) => {
            cape_obs::counter_add("mining.rollup_hits", 1);
            cape_obs::counter_add("mining.scan_rows_saved", base_rows as u64);
            Ok(gd)
        }
        Found::Parent { gd: parent, dims, specs: parent_specs } => {
            // Derive outside the lock: rolls-ups of disjoint children can
            // proceed concurrently.
            let rolled =
                rollup_aggregate(rel.schema(), &parent.relation, &dims, &parent_specs, g, &specs)?;
            cape_obs::counter_add("mining.rollup_hits", 1);
            cape_obs::counter_add(
                "mining.scan_rows_saved",
                base_rows.saturating_sub(parent.relation.num_rows()) as u64,
            );
            let gd = Arc::new(GroupData::from_parts(g.to_vec(), rolled.relation, aggs));
            lattice.lock().expect("rollup lattice poisoned").insert(Arc::clone(&gd), specs);
            Ok(gd)
        }
        Found::None => {
            let gd = Arc::new(GroupData::compute_with_layout(rel, g, aggs, columnar)?);
            cape_obs::counter_add("mining.group_queries", 1);
            cape_obs::counter_add("mining.rollup_misses", 1);
            lattice.lock().expect("rollup lattice poisoned").insert(Arc::clone(&gd), specs);
            Ok(gd)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mining::candidates::group_sets;

    fn rel() -> Relation {
        crate::mining::share_grp::tests::pubs(4, 6, 3)
    }

    #[test]
    fn plan_order_modes() {
        let gs = group_sets(&[0, 1, 2], 3);
        // Legacy walk: identity.
        assert_eq!(plan_order(&gs, false), (0..gs.len()).collect::<Vec<_>>());
        // Roll-up walk: decreasing size, stable within a size.
        let order = plan_order(&gs, true);
        let sizes: Vec<usize> = order.iter().map(|&i| gs[i].len()).collect();
        let mut sorted = sizes.clone();
        sorted.sort_by(|a, b| b.cmp(a));
        assert_eq!(sizes, sorted);
        assert_eq!(order.len(), gs.len());
    }

    #[test]
    fn children_roll_up_from_parents() {
        let rel = rel();
        let cfg = MiningConfig::default();
        let lattice = Mutex::new(LatticeRollup::new(rel.num_rows(), &cfg));
        let aggs = [(AggFunc::Count, None)];
        let rec = cape_obs::Recorder::new();
        let guard = rec.install();
        // Materialize the apex first (decreasing-size order).
        let apex = materialize_group(&rel, &[0, 1, 2], &aggs, &lattice, true).unwrap();
        let child = materialize_group(&rel, &[0, 1], &aggs, &lattice, true).unwrap();
        drop(guard);
        let snap = rec.snapshot();
        assert_eq!(snap.counter("mining.group_queries"), 1, "child must not rescan the base");
        assert_eq!(snap.counter("mining.rollup_hits"), 1);
        assert!(snap.counter("mining.scan_rows_saved") > 0);
        // The derived child equals a direct scan.
        let direct = GroupData::compute(&rel, &[0, 1], &aggs).unwrap();
        assert_eq!(child.relation, direct.relation);
        assert!(apex.relation.num_rows() >= child.relation.num_rows());
    }

    #[test]
    fn disabled_lattice_always_scans() {
        let rel = rel();
        let cfg = MiningConfig { rollup: false, ..MiningConfig::default() };
        let lattice = Mutex::new(LatticeRollup::new(rel.num_rows(), &cfg));
        let aggs = [(AggFunc::Count, None)];
        let rec = cape_obs::Recorder::new();
        let guard = rec.install();
        materialize_group(&rel, &[0, 1, 2], &aggs, &lattice, true).unwrap();
        materialize_group(&rel, &[0, 1], &aggs, &lattice, true).unwrap();
        drop(guard);
        let snap = rec.snapshot();
        assert_eq!(snap.counter("mining.group_queries"), 2);
        assert_eq!(snap.counter("mining.rollup_hits"), 0);
    }

    #[test]
    fn budget_evicts_lru() {
        let rel = rel();
        let cfg = MiningConfig { rollup_budget_rows: 30, ..MiningConfig::default() };
        let mut lat = LatticeRollup::new(rel.num_rows(), &cfg);
        let aggs = [(AggFunc::Count, None)];
        // pubs(4, 6, _): |{0,1,2}| = 48 groups, |{0,1}| = 24, |{0}| = 4.
        let g012 = Arc::new(GroupData::compute(&rel, &[0, 1, 2], &aggs).unwrap());
        let g01 = Arc::new(GroupData::compute(&rel, &[0, 1], &aggs).unwrap());
        lat.insert(g012, vec![AggSpec::count_star()]);
        lat.insert(g01, vec![AggSpec::count_star()]);
        // 48 + 24 > 30: the older apex is evicted, the newest survives.
        assert_eq!(lat.cached_dims(), vec![vec![0, 1]]);
        // A child of the evicted apex now misses.
        assert!(matches!(lat.find(&[0, 2], &[AggSpec::count_star()]), Found::None));
        // But a child of the surviving pair still rolls up.
        assert!(matches!(lat.find(&[0], &[AggSpec::count_star()]), Found::Parent { .. }));
    }

    #[test]
    fn smallest_parent_is_chosen() {
        let rel = rel();
        let cfg = MiningConfig::default();
        let mut lat = LatticeRollup::new(rel.num_rows(), &cfg);
        let aggs = [(AggFunc::Count, None)];
        let g012 = Arc::new(GroupData::compute(&rel, &[0, 1, 2], &aggs).unwrap());
        let g01 = Arc::new(GroupData::compute(&rel, &[0, 1], &aggs).unwrap());
        lat.insert(g012, vec![AggSpec::count_star()]);
        lat.insert(g01, vec![AggSpec::count_star()]);
        match lat.find(&[0], &[AggSpec::count_star()]) {
            Found::Parent { dims, .. } => assert_eq!(dims, vec![0, 1], "prefer smaller parent"),
            _ => panic!("expected a parent"),
        }
    }
}
