//! NAIVE pattern discovery (Algorithms 3 and 4): one retrieval query per
//! fragment per pattern candidate. Kept as the faithful baseline for the
//! mining benchmarks — it is deliberately slow.

use crate::config::MiningConfig;
use crate::error::Result;
use crate::group_data::GroupData;
use crate::mining::candidates::{group_sets, model_valid_for, splits_of};
use crate::mining::fit::FitOutcome;
use crate::mining::{make_instance, record_mining_run, validate_config, Miner, MiningOutput};
use crate::pattern::Arp;
use crate::store::PatternStore;
use cape_data::ops::{aggregate_with_row_count, distinct_project, select};
use cape_data::{AggSpec, AttrId, Predicate, Relation, Value};
use cape_regress::fit;
use std::collections::HashMap;
use std::sync::Arc;

/// The brute-force miner.
#[derive(Debug, Clone, Copy, Default)]
pub struct NaiveMiner;

impl Miner for NaiveMiner {
    fn name(&self) -> &'static str {
        "NAIVE"
    }

    fn mine(&self, rel: &Relation, cfg: &MiningConfig) -> Result<MiningOutput> {
        validate_config(cfg)?;
        record_mining_run(|| {
            let mut store = PatternStore::new();
            let attrs = cfg.candidate_attrs(rel);
            // Shared aggregations are only computed for patterns that hold, to
            // attach the `data` needed by explanation generation; the mining
            // work itself is per-fragment as in Algorithm 4.
            let mut data_cache: HashMap<Vec<AttrId>, Arc<GroupData>> = HashMap::new();

            for g in group_sets(&attrs, cfg.psi) {
                let aggs = cfg.resolve_aggs(rel, &g);
                for split in splits_of(&g) {
                    for &(agg, agg_attr) in &aggs {
                        if let Some(a) = agg_attr {
                            if g.contains(&a) {
                                continue;
                            }
                        }
                        for &model in &cfg.models {
                            if !model_valid_for(rel, model, &split.v) {
                                continue;
                            }
                            cape_obs::counter_add("mining.candidates_considered", 1);
                            let outcome = naive_pattern_holds(
                                rel, &split.f, &split.v, agg, agg_attr, model, cfg,
                            )?;
                            if let Some(outcome) = outcome {
                                cape_obs::counter_add("mining.patterns_found", 1);
                                let gd = match data_cache.get(&g) {
                                    Some(gd) => Arc::clone(gd),
                                    None => {
                                        let gd = Arc::new(GroupData::compute(rel, &g, &aggs)?);
                                        cape_obs::counter_add("mining.group_queries", 1);
                                        data_cache.insert(g.clone(), Arc::clone(&gd));
                                        gd
                                    }
                                };
                                let agg_col =
                                    gd.agg_col(agg, agg_attr).expect("agg in shared data");
                                let arp = Arp::new(
                                    split.f.iter().copied(),
                                    split.v.iter().copied(),
                                    agg,
                                    agg_attr,
                                    model,
                                );
                                store.push(make_instance(arp, gd, agg_col, outcome));
                            }
                        }
                    }
                }
            }

            Ok((store, cfg.initial_fds.clone()))
        })
    }
}

/// NaivePatternHolds (Algorithm 4): enumerate fragments via `π_F(R)`, run
/// one retrieval query `γ_{V, agg}(σ_{F=f}(R))` per fragment, fit, and
/// apply the global thresholds.
#[allow(clippy::too_many_arguments)]
fn naive_pattern_holds(
    rel: &Relation,
    f: &[AttrId],
    v: &[AttrId],
    agg: cape_data::AggFunc,
    agg_attr: Option<AttrId>,
    model: cape_regress::ModelType,
    cfg: &MiningConfig,
) -> Result<Option<FitOutcome>> {
    let th = &cfg.thresholds;
    let frags = distinct_project(rel, f)?;
    cape_obs::counter_add("mining.group_queries", 1);

    let mut locals = HashMap::new();
    let mut num_supported = 0usize;

    for fi in 0..frags.num_rows() {
        let f_key: Vec<Value> = frags.row(fi);

        // Retrieval query Q_{P,f}.
        let selected = select(rel, &Predicate::key_match(f, &f_key));
        let spec = AggSpec { func: agg, attr: agg_attr };
        let grouped = aggregate_with_row_count(&selected, v, &[spec])?.relation;
        cape_obs::counter_add("mining.group_queries", 1);

        let support = grouped.num_rows();
        if support < th.delta {
            continue;
        }
        num_supported += 1;

        // Build the training set h_{P,f} : V → agg(A).
        let agg_col = v.len();
        let lin = model.requires_numeric_predictors();
        let mut xs: Vec<Vec<f64>> = Vec::with_capacity(support);
        let mut ys: Vec<f64> = Vec::with_capacity(support);
        'row: for i in 0..grouped.num_rows() {
            let Some(y) = grouped.value(i, agg_col).as_f64() else { continue };
            let mut x = Vec::with_capacity(v.len());
            for c in 0..v.len() {
                match grouped.value(i, c).as_f64() {
                    Some(xv) => x.push(xv),
                    None if !lin => x.push(0.0),
                    None => continue 'row,
                }
            }
            xs.push(x);
            ys.push(y);
        }
        if ys.len() < th.delta {
            continue;
        }

        cape_obs::counter_add("mining.fragments_fitted", 1);
        let Ok(fitted) = fit(model, &xs, &ys) else { continue };
        if fitted.gof < th.theta {
            continue;
        }
        let mut max_pos = 0.0f64;
        let mut max_neg = 0.0f64;
        for (x, y) in xs.iter().zip(&ys) {
            let dev = y - fitted.model.predict(x);
            max_pos = max_pos.max(dev);
            max_neg = max_neg.min(dev);
        }
        locals.insert(
            f_key,
            crate::store::LocalPattern {
                fitted,
                support,
                max_pos_dev: max_pos,
                max_neg_dev: max_neg,
            },
        );
    }

    if num_supported == 0 {
        return Ok(None);
    }
    let good = locals.len();
    let confidence = good as f64 / num_supported as f64;
    if good >= th.global_support && confidence >= th.lambda {
        Ok(Some(FitOutcome { locals, confidence, num_supported }))
    } else {
        Ok(None)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Thresholds;
    use crate::mining::share_grp::ShareGrpMiner;

    fn cfg() -> MiningConfig {
        MiningConfig {
            thresholds: Thresholds::new(0.3, 3, 0.5, 2),
            psi: 2,
            ..MiningConfig::default()
        }
    }

    #[test]
    fn naive_agrees_with_share_grp() {
        let rel = crate::mining::share_grp::tests::pubs(3, 6, 3);
        let a = NaiveMiner.mine(&rel, &cfg()).unwrap();
        let b = ShareGrpMiner.mine(&rel, &cfg()).unwrap();
        let set_a: std::collections::HashSet<_> =
            a.store.iter().map(|(_, p)| p.arp.clone()).collect();
        let set_b: std::collections::HashSet<_> =
            b.store.iter().map(|(_, p)| p.arp.clone()).collect();
        assert_eq!(set_a, set_b);
        // Same local fragments for the author/year pattern.
        let find = |out: &crate::mining::MiningOutput| {
            out.store
                .iter()
                .find(|(_, p)| {
                    p.arp.f() == [0]
                        && p.arp.v() == [1]
                        && p.arp.model == cape_regress::ModelType::Const
                })
                .map(|(_, p)| p.locals.len())
        };
        assert_eq!(find(&a), find(&b));
    }

    #[test]
    fn naive_runs_many_more_queries() {
        let rel = crate::mining::share_grp::tests::pubs(3, 6, 3);
        let a = NaiveMiner.mine(&rel, &cfg()).unwrap();
        let b = ShareGrpMiner.mine(&rel, &cfg()).unwrap();
        assert!(
            a.stats.group_queries > 5 * b.stats.group_queries,
            "naive {} vs share-grp {}",
            a.stats.group_queries,
            b.stats.group_queries
        );
    }
}
