//! Multi-threaded ARP mining: group-by sets are independent work units,
//! so they parallelize across scoped threads pulling from a shared work
//! queue (an atomic cursor over the planned visit order), which keeps
//! workers busy on skewed lattices where static striping would idle them.
//!
//! Semantics match [`crate::mining::ArpMiner`] with one exception: FD
//! *discovery* (Appendix D) requires processing group sets in increasing
//! size so that subset cardinalities are recorded before they are
//! needed — an inherently sequential dependency — so the parallel miner
//! runs a cheap sequential cardinality pre-pass (distinct counts only)
//! before fanning out, and then prunes with the discovered FDs exactly
//! like the sequential miner. Group materialization goes through the
//! shared [`LatticeRollup`], so children claimed after their parent was
//! cached derive by roll-up instead of rescanning the base relation.

use crate::config::MiningConfig;
use crate::error::Result;
use crate::mining::arp_mine::explore_sort_orders;
use crate::mining::candidates::group_sets;
use crate::mining::rollup::{materialize_group, plan_order, LatticeRollup};
use crate::mining::{record_mining_run, validate_config, Miner, MiningOutput};
use crate::store::PatternStore;
use cape_data::ops::distinct_project;
use cape_data::stats::attr_stats;
use cape_data::{AttrId, FdDiscovery, Relation};
use std::collections::BTreeSet;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// A parallel ARP-MINE over `threads` worker threads
/// (`0` = use the machine's available parallelism).
#[derive(Debug, Clone, Copy, Default)]
pub struct ParallelMiner {
    /// Number of worker threads; `0` selects
    /// [`std::thread::available_parallelism`].
    pub threads: usize,
}

impl ParallelMiner {
    fn effective_threads(&self) -> usize {
        if self.threads > 0 {
            self.threads
        } else {
            std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
        }
    }
}

impl Miner for ParallelMiner {
    fn name(&self) -> &'static str {
        "PAR-ARP-MINE"
    }

    fn mine(&self, rel: &Relation, cfg: &MiningConfig) -> Result<MiningOutput> {
        validate_config(cfg)?;
        record_mining_run(|| {
            let attrs = cfg.candidate_attrs(rel);
            let gs = group_sets(&attrs, cfg.psi);
            let threads = self.effective_threads().min(gs.len().max(1));

            // Sequential FD pre-pass: record |π_G(R)| for every candidate
            // set with distinct-count queries (no aggregates, no sorting),
            // then derive the FD set once.
            let mut fds = cfg.initial_fds.clone();
            if cfg.fd_pruning {
                let mut fd_disc = FdDiscovery::new();
                for &a in &attrs {
                    let s = attr_stats(rel, a)?;
                    fd_disc.record([a], s.distinct + usize::from(s.nulls > 0));
                }
                for g in &gs {
                    let count = distinct_project(rel, g)?.num_rows();
                    fd_disc.record(g.iter().copied(), count);
                }
                // Detect in increasing-size order (gs is size-ordered).
                for g in &gs {
                    let g_set: BTreeSet<AttrId> = g.iter().copied().collect();
                    let found = fd_disc.detect(&g_set, &mut fds);
                    cape_obs::counter_add("mining.fds_discovered", found.len() as u64);
                }
            }
            let fds = fds; // frozen; shared read-only below

            // Fan out over a shared work queue: an atomic cursor walks the
            // planned visit order (parents-first when roll-up is on), so a
            // worker stuck on a heavy group set never blocks the rest of
            // the lattice. Each worker attaches the spawning thread's
            // observability context so its spans and counters land in the
            // same recorders.
            struct Slice {
                index: usize,
                store: PatternStore,
            }
            let order = plan_order(&gs, cfg.rollup);
            let cursor = AtomicUsize::new(0);
            let lattice = Mutex::new(LatticeRollup::new(rel.num_rows(), cfg));
            let ctx = cape_obs::ThreadContext::capture();
            let results: Result<Vec<Vec<Slice>>> = std::thread::scope(|scope| {
                let mut handles = Vec::with_capacity(threads);
                for _ in 0..threads {
                    let gs = &gs;
                    let fds = &fds;
                    let ctx = &ctx;
                    let order = &order;
                    let cursor = &cursor;
                    let lattice = &lattice;
                    handles.push(scope.spawn(move || -> Result<Vec<Slice>> {
                        let _obs = ctx.attach();
                        let mut out = Vec::new();
                        loop {
                            let next = cursor.fetch_add(1, Ordering::Relaxed);
                            if next >= order.len() {
                                break;
                            }
                            let i = order[next];
                            let g = &gs[i];
                            let mut store = PatternStore::new();
                            let aggs = cfg.resolve_aggs(rel, g);
                            if !aggs.is_empty() {
                                let gd =
                                    materialize_group(rel, g, &aggs, lattice, cfg.columnar_fit)?;
                                explore_sort_orders(rel, cfg, &gd, g, fds, &mut store)?;
                                gd.clear_sort_cache();
                            }
                            out.push(Slice { index: i, store });
                        }
                        Ok(out)
                    }));
                }
                handles.into_iter().map(|h| h.join().expect("worker panicked")).collect()
            });

            // Merge deterministically in group-set order. Phase times are
            // summed CPU across workers and may exceed the wall clock —
            // `MiningStats::fractions` normalizes for that.
            let mut slices: Vec<Slice> = results?.into_iter().flatten().collect();
            slices.sort_by_key(|s| s.index);
            let mut store = PatternStore::new();
            for slice in slices {
                for (_, inst) in slice.store.iter() {
                    store.push(inst.clone());
                }
            }
            Ok((store, fds))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Thresholds;
    use crate::mining::ArpMiner;
    use std::collections::BTreeSet as Set;

    fn cfg(fd: bool) -> MiningConfig {
        MiningConfig {
            thresholds: Thresholds::new(0.3, 3, 0.5, 2),
            psi: 3,
            fd_pruning: fd,
            ..MiningConfig::default()
        }
    }

    fn pattern_names(out: &MiningOutput, rel: &Relation) -> Set<String> {
        out.store.iter().map(|(_, p)| p.arp.display(rel.schema())).collect()
    }

    #[test]
    fn parallel_matches_sequential() {
        let rel = crate::mining::share_grp::tests::pubs(4, 6, 3);
        let seq = ArpMiner.mine(&rel, &cfg(false)).unwrap();
        for threads in [1, 2, 4] {
            let par = ParallelMiner { threads }.mine(&rel, &cfg(false)).unwrap();
            assert_eq!(pattern_names(&par, &rel), pattern_names(&seq, &rel));
            assert_eq!(par.store.num_local_patterns(), seq.store.num_local_patterns());
            assert_eq!(par.stats.candidates_considered, seq.stats.candidates_considered);
        }
    }

    #[test]
    fn parallel_result_order_is_deterministic() {
        let rel = crate::mining::share_grp::tests::pubs(4, 6, 3);
        let a = ParallelMiner { threads: 3 }.mine(&rel, &cfg(false)).unwrap();
        let b = ParallelMiner { threads: 3 }.mine(&rel, &cfg(false)).unwrap();
        let names = |o: &MiningOutput| -> Vec<String> {
            o.store.iter().map(|(_, p)| p.arp.display(rel.schema())).collect()
        };
        assert_eq!(names(&a), names(&b));
    }

    #[test]
    fn parallel_fd_pruning_matches_sequential() {
        // Duplicate column ⇒ FD venue → venue2.
        use cape_data::{Schema, Value, ValueType};
        let schema = Schema::new([
            ("author", ValueType::Str),
            ("year", ValueType::Int),
            ("venue", ValueType::Str),
            ("venue2", ValueType::Str),
        ])
        .unwrap();
        let mut rel = Relation::new(schema);
        for a in 0..4 {
            for y in 0..6 {
                for p in 0..3 {
                    let venue = if p % 2 == 0 { "KDD" } else { "ICDE" };
                    rel.push_row(vec![
                        Value::str(format!("a{a}")),
                        Value::Int(2000 + y),
                        Value::str(venue),
                        Value::str(format!("{venue}-dup")),
                    ])
                    .unwrap();
                }
            }
        }
        let seq = ArpMiner.mine(&rel, &cfg(true)).unwrap();
        let par = ParallelMiner { threads: 2 }.mine(&rel, &cfg(true)).unwrap();
        assert_eq!(pattern_names(&par, &rel), pattern_names(&seq, &rel));
        assert!(par.stats.skipped_by_fd > 0);
        assert_eq!(par.stats.skipped_by_fd, seq.stats.skipped_by_fd);
        assert!(par.stats.fds_discovered > 0);
    }

    #[test]
    fn zero_threads_uses_available_parallelism() {
        let rel = crate::mining::share_grp::tests::pubs(3, 6, 3);
        let out = ParallelMiner::default().mine(&rel, &cfg(false)).unwrap();
        assert!(!out.store.is_empty());
    }
}
