//! Fragment fitting: the FitPattern procedure (Algorithm 6) evaluating
//! whether patterns hold locally/globally by one scan of a sorted
//! aggregation result, for *all* candidates sharing an `(F, V)` split.

use crate::config::Thresholds;
use crate::store::LocalPattern;
use cape_data::ops::perm_block_starts;
use cape_data::{AggFunc, AttrId, NumView, Relation, Value};
use cape_regress::{fit, fit_constant_batch, fit_linear1_batch, ModelType};
use std::collections::HashMap;

/// The batched kernels agree with the exact kernels to far below this
/// band. A GoF landing within it of θ would let last-ulp differences flip
/// the hold decision against the row-oriented path, so such fragments are
/// re-derived with the exact kernel — the same guard the incremental
/// stats path applies (`cape_core::incr`).
const GOF_EDGE: f64 = 1e-9;

/// One pattern candidate sharing a given `(F, V)` split: the aggregate
/// call (with its column in the grouped relation) and the model type.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SplitCandidate {
    /// Aggregate function.
    pub agg: AggFunc,
    /// Aggregated attribute (`None` = `count(*)`).
    pub agg_attr: Option<AttrId>,
    /// Column index of `agg(A)` in the grouped relation being scanned.
    pub agg_col: usize,
    /// Regression model type to fit.
    pub model: ModelType,
}

/// The evidence that one candidate holds globally: its local models and
/// global-confidence bookkeeping.
#[derive(Debug, Clone)]
pub struct FitOutcome {
    /// Local models keyed by fragment value (F values, `f_cols` order).
    pub locals: HashMap<Vec<Value>, LocalPattern>,
    /// `|frag_good| / |frag_supp|`.
    pub confidence: f64,
    /// `|frag_supp|`.
    pub num_supported: usize,
}

/// Scan `grouped` — a grouped relation (`γ_{F∪V, aggs}`) — *through* the
/// sort permutation `perm` (virtual row `i` is `grouped`'s row `perm[i]`,
/// ordered so that all rows of a fragment `t[F] = f` are consecutive) and
/// evaluate every candidate. Returns one entry per candidate:
/// `Some(outcome)` if the pattern holds globally under `thresholds`, else
/// `None`.
///
/// Reading through the permutation means no sorted copy of the grouped
/// relation is ever materialized — one permutation vector replaces a full
/// relation clone per `(F, V)` split.
///
/// This is the "evaluate multiple patterns in parallel with one scan"
/// optimization of Section 4.2.
///
/// Extraction runs over the typed column slabs (one enum branch per
/// column per block, raw `i64`/`f64` loads per row) and falls back to
/// per-cell `Value` dispatch only for columns that degraded to `Mixed`.
/// Both paths feed the identical `fit` kernels in the identical row
/// order, so results are bit-for-bit equal — see
/// [`fit_split_rows`] for the always-row-oriented variant kept as the
/// benchmark baseline and `--no-columnar` escape hatch.
pub fn fit_split(
    grouped: &Relation,
    perm: &[usize],
    f_cols: &[usize],
    v_cols: &[usize],
    candidates: &[SplitCandidate],
    thresholds: &Thresholds,
) -> Vec<Option<FitOutcome>> {
    fit_split_impl(grouped, perm, f_cols, v_cols, candidates, thresholds, true)
}

/// Row-oriented [`fit_split`]: per-cell `Value` materialization and
/// dispatch, exactly the pre-columnar extraction loop. Selected by
/// `MiningConfig::columnar_fit = false` (CLI `--no-columnar`); also the
/// baseline the scale bench compares the slab gather against.
pub fn fit_split_rows(
    grouped: &Relation,
    perm: &[usize],
    f_cols: &[usize],
    v_cols: &[usize],
    candidates: &[SplitCandidate],
    thresholds: &Thresholds,
) -> Vec<Option<FitOutcome>> {
    fit_split_impl(grouped, perm, f_cols, v_cols, candidates, thresholds, false)
}

fn fit_split_impl(
    grouped: &Relation,
    perm: &[usize],
    f_cols: &[usize],
    v_cols: &[usize],
    candidates: &[SplitCandidate],
    thresholds: &Thresholds,
    columnar: bool,
) -> Vec<Option<FitOutcome>> {
    // The whole gather-and-fit scan is the miner's regression stage:
    // sample extraction (the per-`Value` dispatch the columnar path
    // eliminates) plus the model fits. Classifying it under `regress.`
    // makes `MiningStats::regression_time` measure what the batched
    // kernels actually move. Inner `regress.fit` spans nest below and are
    // not double-counted by the phase breakdown.
    let _span = cape_obs::span("regress.fit_split");
    cape_obs::counter_add("mining.candidates_considered", candidates.len() as u64);
    let mut fragments_fitted = 0u64;
    let mut patterns_found = 0u64;

    struct Partial {
        locals: HashMap<Vec<Value>, LocalPattern>,
    }
    let mut partials: Vec<Partial> =
        candidates.iter().map(|_| Partial { locals: HashMap::new() }).collect();
    let mut num_supported = 0usize;

    let needs_numeric_x = candidates.iter().any(|c| c.model.requires_numeric_predictors());
    let starts = perm_block_starts(grouped, perm, f_cols);

    // Distinct aggregate columns and each candidate's slot among them.
    let mut distinct_cols: Vec<usize> = Vec::new();
    let col_slot: Vec<usize> = candidates
        .iter()
        .map(|c| {
            distinct_cols.iter().position(|&d| d == c.agg_col).unwrap_or_else(|| {
                distinct_cols.push(c.agg_col);
                distinct_cols.len() - 1
            })
        })
        .collect();

    // Per-block extraction buffers, reused across blocks. Predictor rows
    // are only materialized when some candidate actually reads them —
    // models that ignore predictors fit straight from the y buffer.
    let mut xs_rows: Vec<Vec<f64>> = Vec::new();
    let mut xs_flat: Vec<f64> = Vec::new();
    let mut x_missing: Vec<bool> = Vec::new();
    let mut ys_raw: Vec<Vec<Option<f64>>> = vec![Vec::new(); distinct_cols.len()];
    let mut ys_dense: Vec<Vec<f64>> = vec![Vec::new(); distinct_cols.len()];
    let mut ys_is_dense: Vec<bool> = vec![false; distinct_cols.len()];

    for w in starts.windows(2) {
        let (start, end) = (w[0], w[1]);
        let support = end - start;
        if support < thresholds.delta {
            continue; // insufficient evidence: excluded from frag_supp
        }
        num_supported += 1;
        let f_key = grouped.row_project(perm[start], f_cols);

        // Pre-extract predictor rows once per block; nulls become 0.0 and
        // are flagged so models needing numeric predictors can drop the
        // row.
        let mut n_x_missing = 0usize;
        if needs_numeric_x {
            let block = &perm[start..end];
            if columnar {
                gather_xs_columnar(grouped, v_cols, block, &mut xs_rows, &mut x_missing);
                n_x_missing = x_missing.iter().filter(|&&m| m).count();
            } else {
                xs_rows.clear();
                x_missing.clear();
                for &p in block {
                    let mut x = Vec::with_capacity(v_cols.len());
                    let mut missing = false;
                    for &c in v_cols {
                        match grouped.value(p, c).as_f64() {
                            Some(v) => x.push(v),
                            None => {
                                x.push(0.0);
                                missing = true;
                            }
                        }
                    }
                    if missing {
                        n_x_missing += 1;
                    }
                    x_missing.push(missing);
                    xs_rows.push(x);
                }
            }
            // Flat predictor slab for the batched single-predictor OLS
            // kernel (row-major `xs_rows` stays the fallback shape).
            if columnar && v_cols.len() == 1 {
                xs_flat.clear();
                xs_flat.extend(xs_rows.iter().map(|r| r[0]));
            }
        }

        // Pre-extract each distinct aggregate column once per block,
        // keeping the null-free dense form so the common case fits
        // straight from the shared buffers with no per-candidate copies.
        for (j, &col) in distinct_cols.iter().enumerate() {
            let raw = &mut ys_raw[j];
            let dense = &mut ys_dense[j];
            raw.clear();
            dense.clear();
            let block = &perm[start..end];
            ys_is_dense[j] = if columnar {
                gather_ys_columnar(grouped, col, block, raw, dense)
            } else {
                let mut all_present = true;
                for &p in block {
                    let v = grouped.value(p, col).as_f64();
                    raw.push(v);
                    match v {
                        Some(y) => dense.push(y),
                        None => all_present = false,
                    }
                }
                all_present
            };
        }

        for ((cand, &slot), partial) in candidates.iter().zip(&col_slot).zip(&mut partials) {
            let lin = cand.model.requires_numeric_predictors();
            let mut xs_owned: Vec<Vec<f64>> = Vec::new();
            let mut ys_owned: Vec<f64> = Vec::new();
            // Dense fast path: no nulls anywhere — fit directly from the
            // shared block buffers. `xs_rows` is empty for models that
            // ignore predictors (their `predict` never reads `x`).
            let (xs, ys): (&[Vec<f64>], &[f64]) = if ys_is_dense[slot] && (!lin || n_x_missing == 0)
            {
                (&xs_rows, &ys_dense[slot])
            } else {
                for (i, y_opt) in ys_raw[slot].iter().enumerate() {
                    let Some(y) = y_opt else { continue };
                    if lin && x_missing[i] {
                        continue; // missing numeric predictor: drop row
                    }
                    if lin {
                        xs_owned.push(xs_rows[i].clone());
                    }
                    ys_owned.push(*y);
                }
                (&xs_owned, &ys_owned)
            };
            if ys.len() < thresholds.delta {
                continue; // nulls reduced the usable evidence below δ
            }
            fragments_fitted += 1;
            // Columnar path: Const and single-predictor Lin fits run the
            // chunked slab kernels over the flat buffers. A GoF inside
            // the θ knife-edge band (or a kernel error) falls back to the
            // exact kernel so hold decisions match the row path exactly.
            let dense = ys_is_dense[slot] && (!lin || n_x_missing == 0);
            let batched = if columnar {
                match cand.model {
                    ModelType::Const => Some(fit_constant_batch(ys)),
                    ModelType::Lin if lin && v_cols.len() == 1 && dense => {
                        Some(fit_linear1_batch(&xs_flat, ys))
                    }
                    _ => None,
                }
            } else {
                None
            };
            let fitted = match batched {
                Some(Ok(f)) if (f.gof - thresholds.theta).abs() >= GOF_EDGE => Ok(f),
                Some(_) => fit(cand.model, xs, ys),
                None => fit(cand.model, xs, ys),
            };
            let Ok(fitted) = fitted else { continue };
            if fitted.gof < thresholds.theta {
                continue;
            }
            // Holds locally: record per-tuple deviation extremes for the
            // upper score bound (§3.5). `xs` may be empty for models that
            // ignore predictors (their `predict` never reads `x`).
            let mut max_pos = 0.0f64;
            let mut max_neg = 0.0f64;
            for (i, y) in ys.iter().enumerate() {
                let x: &[f64] = xs.get(i).map(Vec::as_slice).unwrap_or(&[]);
                let dev = y - fitted.model.predict(x);
                max_pos = max_pos.max(dev);
                max_neg = max_neg.min(dev);
            }
            partial.locals.insert(
                f_key.clone(),
                LocalPattern { fitted, support, max_pos_dev: max_pos, max_neg_dev: max_neg },
            );
        }
    }

    let out: Vec<Option<FitOutcome>> = partials
        .into_iter()
        .map(|p| {
            if num_supported == 0 {
                return None;
            }
            let good = p.locals.len();
            let confidence = good as f64 / num_supported as f64;
            if good >= thresholds.global_support && confidence >= thresholds.lambda {
                patterns_found += 1;
                Some(FitOutcome { locals: p.locals, confidence, num_supported })
            } else {
                None
            }
        })
        .collect();
    cape_obs::counter_add("mining.fragments_fitted", fragments_fitted);
    cape_obs::counter_add("mining.patterns_found", patterns_found);
    out
}

/// Gather the aggregate column `col` through the permutation block into
/// the shared `raw`/`dense` buffers, returning whether every row was
/// present. The column's enum is matched once per block; inner loops run
/// over raw slab words. Produces exactly what the row-oriented loop
/// produces (`Value::as_f64` of each cell in block order).
fn gather_ys_columnar(
    grouped: &Relation,
    col: usize,
    block: &[usize],
    raw: &mut Vec<Option<f64>>,
    dense: &mut Vec<f64>,
) -> bool {
    match grouped.num_view(col) {
        Some(NumView::Float { data, nulls }) => {
            if nulls.no_nulls() {
                for &p in block {
                    let y = data[p];
                    raw.push(Some(y));
                    dense.push(y);
                }
                true
            } else {
                let mut all_present = true;
                for &p in block {
                    if nulls.get(p) {
                        raw.push(None);
                        all_present = false;
                    } else {
                        raw.push(Some(data[p]));
                        dense.push(data[p]);
                    }
                }
                all_present
            }
        }
        Some(NumView::Int { data, nulls }) => {
            if nulls.no_nulls() {
                for &p in block {
                    let y = data[p] as f64;
                    raw.push(Some(y));
                    dense.push(y);
                }
                true
            } else {
                let mut all_present = true;
                for &p in block {
                    if nulls.get(p) {
                        raw.push(None);
                        all_present = false;
                    } else {
                        let y = data[p] as f64;
                        raw.push(Some(y));
                        dense.push(y);
                    }
                }
                all_present
            }
        }
        // Mixed (or string) column: per-cell dispatch, same as the row path.
        None => {
            let mut all_present = true;
            for &p in block {
                let v = grouped.value_f64(p, col);
                raw.push(v);
                match v {
                    Some(y) => dense.push(y),
                    None => all_present = false,
                }
            }
            all_present
        }
    }
}

/// Gather predictor rows through the permutation block, column by column,
/// into the reused row-major buffers. Missing (NULL / non-numeric) cells
/// become 0.0 with the row flagged, identical to the row-oriented loop.
fn gather_xs_columnar(
    grouped: &Relation,
    v_cols: &[usize],
    block: &[usize],
    xs_rows: &mut Vec<Vec<f64>>,
    x_missing: &mut Vec<bool>,
) {
    let n = block.len();
    let width = v_cols.len();
    // Reuse the outer Vec and each row's allocation across blocks.
    xs_rows.truncate(n);
    for row in xs_rows.iter_mut() {
        row.clear();
        row.resize(width, 0.0);
    }
    while xs_rows.len() < n {
        xs_rows.push(vec![0.0; width]);
    }
    x_missing.clear();
    x_missing.resize(n, false);

    for (j, &c) in v_cols.iter().enumerate() {
        match grouped.num_view(c) {
            Some(NumView::Float { data, nulls }) => {
                if nulls.no_nulls() {
                    for (i, &p) in block.iter().enumerate() {
                        xs_rows[i][j] = data[p];
                    }
                } else {
                    for (i, &p) in block.iter().enumerate() {
                        if nulls.get(p) {
                            x_missing[i] = true;
                        } else {
                            xs_rows[i][j] = data[p];
                        }
                    }
                }
            }
            Some(NumView::Int { data, nulls }) => {
                if nulls.no_nulls() {
                    for (i, &p) in block.iter().enumerate() {
                        xs_rows[i][j] = data[p] as f64;
                    }
                } else {
                    for (i, &p) in block.iter().enumerate() {
                        if nulls.get(p) {
                            x_missing[i] = true;
                        } else {
                            xs_rows[i][j] = data[p] as f64;
                        }
                    }
                }
            }
            None => {
                for (i, &p) in block.iter().enumerate() {
                    match grouped.value_f64(p, c) {
                        Some(v) => xs_rows[i][j] = v,
                        None => x_missing[i] = true,
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cape_data::ops::sort_perm;
    use cape_data::{Schema, ValueType};

    /// Grouped data shaped like γ_{author, year, count(*)}: two authors
    /// with near-constant counts, one wildly varying author.
    fn grouped() -> Relation {
        let schema = Schema::new([
            ("author", ValueType::Str),
            ("year", ValueType::Int),
            ("cnt", ValueType::Int),
        ])
        .unwrap();
        let mut rows = Vec::new();
        for y in 0..6 {
            rows.push(vec![Value::str("stable1"), Value::Int(2000 + y), Value::Int(4)]);
            rows.push(vec![
                Value::str("stable2"),
                Value::Int(2000 + y),
                Value::Int(if y % 2 == 0 { 5 } else { 6 }),
            ]);
            rows.push(vec![
                Value::str("wild"),
                Value::Int(2000 + y),
                Value::Int(if y % 2 == 0 { 1 } else { 60 }),
            ]);
        }
        // A tiny fragment below δ.
        rows.push(vec![Value::str("tiny"), Value::Int(2000), Value::Int(3)]);
        Relation::from_rows(schema, rows).unwrap()
    }

    fn thresholds() -> Thresholds {
        Thresholds::new(0.5, 3, 0.5, 2)
    }

    /// Run `f` under a fresh recorder and return its result plus telemetry.
    fn recorded<T>(f: impl FnOnce() -> T) -> (T, cape_obs::TelemetrySnapshot) {
        let rec = cape_obs::Recorder::new();
        let guard = rec.install();
        let out = f();
        drop(guard);
        (out, rec.snapshot())
    }

    #[test]
    fn constant_pattern_holds_for_stable_authors() {
        let g = grouped();
        let perm = sort_perm(&g, &[0, 1]);
        let cands = [SplitCandidate {
            agg: AggFunc::Count,
            agg_attr: None,
            agg_col: 2,
            model: ModelType::Const,
        }];
        let (out, telemetry) = recorded(|| fit_split(&g, &perm, &[0], &[1], &cands, &thresholds()));
        let outcome = out[0].as_ref().expect("pattern should hold globally");
        // tiny is excluded (support 1 < δ); stable1+stable2 hold, wild does not.
        assert_eq!(outcome.num_supported, 3);
        assert_eq!(outcome.locals.len(), 2);
        assert!((outcome.confidence - 2.0 / 3.0).abs() < 1e-12);
        assert!(outcome.locals.contains_key(&vec![Value::str("stable1")]));
        assert!(outcome.locals.contains_key(&vec![Value::str("stable2")]));
        assert_eq!(telemetry.counter("mining.candidates_considered"), 1);
        assert_eq!(telemetry.counter("mining.fragments_fitted"), 3);
        assert_eq!(telemetry.counter("mining.patterns_found"), 1);
    }

    #[test]
    fn local_support_recorded() {
        let g = grouped();
        let perm = sort_perm(&g, &[0, 1]);
        let cands = [SplitCandidate {
            agg: AggFunc::Count,
            agg_attr: None,
            agg_col: 2,
            model: ModelType::Const,
        }];
        let out = fit_split(&g, &perm, &[0], &[1], &cands, &thresholds());
        let outcome = out[0].as_ref().unwrap();
        assert_eq!(outcome.locals[&vec![Value::str("stable1")]].support, 6);
        // Perfect constant fit: GoF 1, zero deviations.
        let local = &outcome.locals[&vec![Value::str("stable1")]];
        assert_eq!(local.fitted.gof, 1.0);
        assert_eq!(local.max_pos_dev, 0.0);
        assert_eq!(local.max_neg_dev, 0.0);
        // stable2 oscillates ±0.5 around 5.5.
        let local2 = &outcome.locals[&vec![Value::str("stable2")]];
        assert!((local2.max_pos_dev - 0.5).abs() < 1e-9);
        assert!((local2.max_neg_dev + 0.5).abs() < 1e-9);
    }

    #[test]
    fn strict_global_support_fails() {
        let g = grouped();
        let perm = sort_perm(&g, &[0, 1]);
        let cands = [SplitCandidate {
            agg: AggFunc::Count,
            agg_attr: None,
            agg_col: 2,
            model: ModelType::Const,
        }];
        let tight = Thresholds::new(0.5, 3, 0.5, 10); // Δ = 10 unreachable
        let out = fit_split(&g, &perm, &[0], &[1], &cands, &tight);
        assert!(out[0].is_none());
    }

    #[test]
    fn strict_confidence_fails() {
        let g = grouped();
        let perm = sort_perm(&g, &[0, 1]);
        let cands = [SplitCandidate {
            agg: AggFunc::Count,
            agg_attr: None,
            agg_col: 2,
            model: ModelType::Const,
        }];
        // 2/3 fragments hold; λ = 0.9 rejects.
        let tight = Thresholds::new(0.5, 3, 0.9, 2);
        let out = fit_split(&g, &perm, &[0], &[1], &cands, &tight);
        assert!(out[0].is_none());
    }

    #[test]
    fn multiple_candidates_one_scan() {
        let g = grouped();
        let perm = sort_perm(&g, &[0, 1]);
        let cands = [
            SplitCandidate {
                agg: AggFunc::Count,
                agg_attr: None,
                agg_col: 2,
                model: ModelType::Const,
            },
            SplitCandidate {
                agg: AggFunc::Count,
                agg_attr: None,
                agg_col: 2,
                model: ModelType::Lin,
            },
        ];
        let (out, telemetry) = recorded(|| fit_split(&g, &perm, &[0], &[1], &cands, &thresholds()));
        assert_eq!(out.len(), 2);
        assert!(out[0].is_some());
        // Linear fits constants perfectly too (slope ~0 is fine, R² = 1 for
        // stable1 which is exactly constant) — at least stable1 holds; the
        // pattern may or may not hold globally depending on stable2's R².
        assert_eq!(telemetry.counter("mining.candidates_considered"), 2);
    }

    #[test]
    fn empty_relation_yields_none() {
        let empty = Relation::new(grouped().schema().clone());
        let perm: Vec<usize> = Vec::new();
        let cands = [SplitCandidate {
            agg: AggFunc::Count,
            agg_attr: None,
            agg_col: 2,
            model: ModelType::Const,
        }];
        let out = fit_split(&empty, &perm, &[0], &[1], &cands, &thresholds());
        assert!(out[0].is_none());
    }
}
