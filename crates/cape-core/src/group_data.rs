//! Materialized group-by results shared across patterns.
//!
//! The mining optimization "one query per F ∪ V" (paper §4.1) computes a
//! single aggregation per group-by attribute set `G` and reuses it for
//! every `(F, V)` split and every aggregate call. [`GroupData`] is that
//! materialization: the aggregated relation plus the column bookkeeping
//! needed to find a given aggregate output or base attribute again.

use cape_data::ops::{aggregate_with_row_count, aggregate_with_row_count_unpacked, column_ranks};
use cape_data::{AggFunc, AggSpec, AttrId, Relation, Result, Value};
use std::collections::HashMap;
use std::sync::{Arc, Mutex};

/// One cached sort order of the grouped relation: the key columns the
/// permutation was computed under, and the permutation itself.
#[derive(Debug, Clone)]
struct SortEntry {
    keys: Vec<usize>,
    perm: Arc<Vec<usize>>,
}

/// Dense ranks of one column plus the distinct-value count.
type ColRanks = Arc<(Vec<u32>, u32)>;

/// The materialized result of `γ_{G, aggs}(R)` with column metadata.
#[derive(Debug)]
pub struct GroupData {
    /// The group-by attributes (ids into the *base* schema), in the order
    /// they appear as the leading columns of [`GroupData::relation`].
    pub group_attrs: Vec<AttrId>,
    /// Aggregated relation: `group_attrs` columns, one column per
    /// aggregate, then a trailing `__rows` raw-count column.
    pub relation: Relation,
    /// Column index of each aggregate output in `relation`.
    agg_cols: HashMap<(AggFunc, Option<AttrId>), usize>,
    /// Column index of the `__rows` count.
    pub rows_col: usize,
    /// Sort permutations computed over `relation`, reusable for any split
    /// whose `F` columns form a prefix *set* of a cached key sequence
    /// (blocks of equal `F` values stay contiguous under any internal
    /// reordering of the prefix).
    sort_cache: Mutex<Vec<SortEntry>>,
    /// Lazily computed dense ranks per column of `relation`. Computing the
    /// ranks costs one single-key sort per column, after which every
    /// multi-key sort over this group compares packed integers instead of
    /// `Value`s.
    ranks: Mutex<Vec<Option<ColRanks>>>,
}

impl Clone for GroupData {
    fn clone(&self) -> Self {
        GroupData {
            group_attrs: self.group_attrs.clone(),
            relation: self.relation.clone(),
            agg_cols: self.agg_cols.clone(),
            rows_col: self.rows_col,
            sort_cache: Mutex::new(self.sort_cache.lock().expect("sort cache poisoned").clone()),
            ranks: Mutex::new(self.ranks.lock().expect("rank cache poisoned").clone()),
        }
    }
}

impl GroupData {
    /// Run the shared group-by query for `group_attrs` evaluating all
    /// `aggs` (pairs of function and optional base attribute) in one scan.
    pub fn compute(
        rel: &Relation,
        group_attrs: &[AttrId],
        aggs: &[(AggFunc, Option<AttrId>)],
    ) -> Result<Self> {
        Self::compute_with_layout(rel, group_attrs, aggs, true)
    }

    /// [`GroupData::compute`] with an explicit data-path choice:
    /// `columnar = true` groups via the packed slab-code kernel, `false`
    /// via the legacy `Vec<Value>` hash keys — the row-oriented path the
    /// benches and differential suites compare against
    /// (`MiningConfig::columnar_fit = false`). Both produce identical
    /// relations (first-appearance group order).
    pub fn compute_with_layout(
        rel: &Relation,
        group_attrs: &[AttrId],
        aggs: &[(AggFunc, Option<AttrId>)],
        columnar: bool,
    ) -> Result<Self> {
        let specs: Vec<AggSpec> = aggs.iter().map(|&(func, attr)| AggSpec { func, attr }).collect();
        let result = if columnar {
            aggregate_with_row_count(rel, group_attrs, &specs)?
        } else {
            aggregate_with_row_count_unpacked(rel, group_attrs, &specs)?
        };
        Ok(Self::from_parts(group_attrs.to_vec(), result.relation, aggs))
    }

    /// Wrap an already-aggregated relation whose columns are
    /// `group_attrs…, aggs…, __rows` (used by the CUBE miner, which
    /// produces the same layout through the cube operator).
    pub fn from_parts(
        group_attrs: Vec<AttrId>,
        relation: Relation,
        aggs: &[(AggFunc, Option<AttrId>)],
    ) -> Self {
        let base = group_attrs.len();
        let agg_cols = aggs.iter().enumerate().map(|(i, &key)| (key, base + i)).collect();
        let rows_col = base + aggs.len();
        debug_assert_eq!(rows_col + 1, relation.schema().arity());
        let arity = relation.schema().arity();
        GroupData {
            group_attrs,
            relation,
            agg_cols,
            rows_col,
            sort_cache: Mutex::new(Vec::new()),
            ranks: Mutex::new(vec![None; arity]),
        }
    }

    /// Dense ranks of column `col`, computed once per group and shared by
    /// every sort request.
    fn col_ranks(&self, col: usize) -> ColRanks {
        let mut cache = self.ranks.lock().expect("rank cache poisoned");
        Arc::clone(cache[col].get_or_insert_with(|| Arc::new(column_ranks(&self.relation, col))))
    }

    /// Multi-key sort via per-column dense ranks. When the rank widths fit
    /// a `u64` the key columns are packed (with the row index as the low
    /// bits, making the unstable sort deterministic and equivalent to a
    /// stable sort); otherwise rank tuples are compared directly.
    fn rank_sort_perm(&self, key_cols: &[usize]) -> Vec<usize> {
        let n = self.relation.num_rows();
        let cols: Vec<ColRanks> = key_cols.iter().map(|&c| self.col_ranks(c)).collect();
        let bits: Vec<u32> = cols.iter().map(|c| bits_for(c.1)).collect();
        let idx_bits = bits_for(n as u32);
        let total: u32 = bits.iter().sum::<u32>() + idx_bits;
        let mut perm: Vec<usize> = (0..n).collect();
        if total <= 64 {
            let mut keyed: Vec<u64> = Vec::with_capacity(n);
            for row in 0..n {
                let mut k = 0u64;
                for (c, &b) in cols.iter().zip(&bits) {
                    k = (k << b) | u64::from(c.0[row]);
                }
                keyed.push((k << idx_bits) | row as u64);
            }
            perm.sort_unstable_by_key(|&r| keyed[r]);
        } else {
            perm.sort_by(|&a, &b| {
                for c in &cols {
                    match c.0[a].cmp(&c.0[b]) {
                        std::cmp::Ordering::Equal => continue,
                        o => return o,
                    }
                }
                std::cmp::Ordering::Equal
            });
        }
        perm
    }

    /// A sort permutation of [`GroupData::relation`] under `key_cols`,
    /// reusable for every prefix length in `prefix_lens`: a cached entry
    /// is served when, for each requested length `k`, its first `k` keys
    /// form the same *set* as `key_cols[..k]` (so each `F` block is
    /// contiguous, which is all fragment fitting needs).
    ///
    /// With `use_cache` false the permutation is recomputed every call and
    /// never stored — the pre-kernel behavior of one sort per request.
    pub fn sort_perm_covering(
        &self,
        key_cols: &[usize],
        prefix_lens: &[usize],
        use_cache: bool,
    ) -> Arc<Vec<usize>> {
        if use_cache {
            let cache = self.sort_cache.lock().expect("sort cache poisoned");
            for entry in cache.iter() {
                let serves = prefix_lens
                    .iter()
                    .all(|&k| k <= entry.keys.len() && set_eq(&entry.keys[..k], &key_cols[..k]));
                if serves {
                    cape_obs::counter_add("mining.sort_cache_hits", 1);
                    cape_obs::counter_add(
                        "mining.scan_rows_saved",
                        self.relation.num_rows() as u64,
                    );
                    return Arc::clone(&entry.perm);
                }
            }
        }
        let perm = {
            let mut span = cape_obs::span("data.sort");
            span.add("rows_in", self.relation.num_rows() as u64);
            Arc::new(self.rank_sort_perm(key_cols))
        };
        if use_cache {
            cape_obs::counter_add("mining.sort_cache_misses", 1);
            self.sort_cache
                .lock()
                .expect("sort cache poisoned")
                .push(SortEntry { keys: key_cols.to_vec(), perm: Arc::clone(&perm) });
        }
        perm
    }

    /// Drop all cached sort permutations (mining calls this once a group
    /// set is fully processed, so pattern instances holding `Arc<GroupData>`
    /// do not pin permutation memory in the store).
    pub fn clear_sort_cache(&self) {
        self.sort_cache.lock().expect("sort cache poisoned").clear();
    }

    /// Column index (into [`GroupData::relation`]) of the given aggregate.
    pub fn agg_col(&self, func: AggFunc, attr: Option<AttrId>) -> Option<usize> {
        self.agg_cols.get(&(func, attr)).copied()
    }

    /// Column index of a *base-schema* attribute within this group-by
    /// output, if it is one of the group-by attributes.
    pub fn col_of_attr(&self, attr: AttrId) -> Option<usize> {
        self.group_attrs.iter().position(|&a| a == attr)
    }

    /// Column indices for a list of base attributes (all must be present).
    pub fn cols_of_attrs(&self, attrs: &[AttrId]) -> Option<Vec<usize>> {
        attrs.iter().map(|&a| self.col_of_attr(a)).collect()
    }

    /// Project row `i` onto base attributes `attrs` (values cloned).
    pub fn key_of(&self, i: usize, attrs: &[AttrId]) -> Option<Vec<Value>> {
        let cols = self.cols_of_attrs(attrs)?;
        Some(self.relation.row_project(i, &cols))
    }

    /// The numeric aggregate value of row `i` in column `col`.
    pub fn agg_value(&self, i: usize, col: usize) -> Option<f64> {
        self.relation.value(i, col).as_f64()
    }
}

/// Bits needed to store any value in `0..card` (0 when there is at most
/// one value).
fn bits_for(card: u32) -> u32 {
    if card <= 1 {
        0
    } else {
        32 - (card - 1).leading_zeros()
    }
}

/// Set equality of two equal-length column-id slices (tiny: |G| ≤ ψ).
fn set_eq(a: &[usize], b: &[usize]) -> bool {
    debug_assert_eq!(a.len(), b.len());
    a.iter().all(|x| b.contains(x)) && b.iter().all(|x| a.contains(x))
}

#[cfg(test)]
mod tests {
    use super::*;
    use cape_data::{Schema, ValueType};

    fn rel() -> Relation {
        let schema = Schema::new([
            ("author", ValueType::Str),
            ("year", ValueType::Int),
            ("cites", ValueType::Int),
        ])
        .unwrap();
        Relation::from_rows(
            schema,
            vec![
                vec![Value::str("ax"), Value::Int(2004), Value::Int(1)],
                vec![Value::str("ax"), Value::Int(2004), Value::Int(2)],
                vec![Value::str("ax"), Value::Int(2005), Value::Int(3)],
                vec![Value::str("ay"), Value::Int(2004), Value::Int(4)],
            ],
        )
        .unwrap()
    }

    #[test]
    fn compute_and_lookup() {
        let g =
            GroupData::compute(&rel(), &[0, 1], &[(AggFunc::Count, None), (AggFunc::Sum, Some(2))])
                .unwrap();
        assert_eq!(g.relation.num_rows(), 3);
        let count_col = g.agg_col(AggFunc::Count, None).unwrap();
        let sum_col = g.agg_col(AggFunc::Sum, Some(2)).unwrap();
        assert_eq!(count_col, 2);
        assert_eq!(sum_col, 3);
        assert_eq!(g.rows_col, 4);
        // (ax, 2004): count 2, sum 3.
        assert_eq!(g.agg_value(0, count_col), Some(2.0));
        assert_eq!(g.agg_value(0, sum_col), Some(3.0));
        assert_eq!(g.agg_col(AggFunc::Max, Some(2)), None);
    }

    #[test]
    fn sort_cache_prefix_set_reuse() {
        let g = GroupData::compute(&rel(), &[0, 1], &[(AggFunc::Count, None)]).unwrap();
        let rec = cape_obs::Recorder::new();
        let guard = rec.install();
        let p1 = g.sort_perm_covering(&[0, 1], &[1], true);
        // Same leading set {0}: served from cache.
        let p2 = g.sort_perm_covering(&[0, 1], &[1], true);
        assert!(Arc::ptr_eq(&p1, &p2));
        // Prefix set {1, 0} of length 2 matches [0, 1]'s first two keys as
        // a set, so [1, 0] with prefix_len 2 is a hit too.
        let p3 = g.sort_perm_covering(&[1, 0], &[2], true);
        assert!(Arc::ptr_eq(&p1, &p3));
        // Prefix {1} of [1, 0] is NOT the set {0}: miss, new sort.
        let p4 = g.sort_perm_covering(&[1, 0], &[1], true);
        assert!(!Arc::ptr_eq(&p1, &p4));
        drop(guard);
        let snap = rec.snapshot();
        assert_eq!(snap.counter("mining.sort_cache_hits"), 2);
        assert_eq!(snap.counter("mining.sort_cache_misses"), 2);
        assert!(snap.counter("mining.scan_rows_saved") > 0);
        // Disabled cache: always a fresh permutation, never stored.
        g.clear_sort_cache();
        let q1 = g.sort_perm_covering(&[0, 1], &[1], false);
        let q2 = g.sort_perm_covering(&[0, 1], &[1], false);
        assert!(!Arc::ptr_eq(&q1, &q2));
        assert_eq!(*q1, *q2);
    }

    #[test]
    fn cached_perm_actually_sorts() {
        let g = GroupData::compute(&rel(), &[0, 1], &[(AggFunc::Count, None)]).unwrap();
        let perm = g.sort_perm_covering(&[1, 0], &[1], true);
        for w in perm.windows(2) {
            assert!(g.relation.value(w[0], 1) <= g.relation.value(w[1], 1));
        }
    }

    #[test]
    fn rank_sort_matches_value_sort() {
        let g =
            GroupData::compute(&rel(), &[0, 1], &[(AggFunc::Count, None), (AggFunc::Sum, Some(2))])
                .unwrap();
        for keys in [vec![0usize, 1], vec![1, 0], vec![3, 0, 1], vec![2]] {
            let ours = g.sort_perm_covering(&keys, &[1], false);
            let legacy = cape_data::ops::sort_perm(&g.relation, &keys);
            assert_eq!(*ours, legacy, "keys {keys:?}");
        }
    }

    #[test]
    fn bit_widths() {
        assert_eq!(bits_for(0), 0);
        assert_eq!(bits_for(1), 0);
        assert_eq!(bits_for(2), 1);
        assert_eq!(bits_for(3), 2);
        assert_eq!(bits_for(4), 2);
        assert_eq!(bits_for(5), 3);
        assert_eq!(bits_for(u32::MAX), 32);
    }

    #[test]
    fn attr_mapping() {
        let g = GroupData::compute(&rel(), &[1, 0], &[(AggFunc::Count, None)]).unwrap();
        assert_eq!(g.col_of_attr(1), Some(0));
        assert_eq!(g.col_of_attr(0), Some(1));
        assert_eq!(g.col_of_attr(2), None);
        assert_eq!(g.cols_of_attrs(&[0, 1]), Some(vec![1, 0]));
        assert_eq!(g.cols_of_attrs(&[0, 2]), None);
        let key = g.key_of(0, &[0]).unwrap();
        assert_eq!(key, vec![Value::str("ax")]);
    }
}
