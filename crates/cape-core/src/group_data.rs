//! Materialized group-by results shared across patterns.
//!
//! The mining optimization "one query per F ∪ V" (paper §4.1) computes a
//! single aggregation per group-by attribute set `G` and reuses it for
//! every `(F, V)` split and every aggregate call. [`GroupData`] is that
//! materialization: the aggregated relation plus the column bookkeeping
//! needed to find a given aggregate output or base attribute again.

use cape_data::ops::aggregate_with_row_count;
use cape_data::{AggFunc, AggSpec, AttrId, Relation, Result, Value};
use std::collections::HashMap;

/// The materialized result of `γ_{G, aggs}(R)` with column metadata.
#[derive(Debug, Clone)]
pub struct GroupData {
    /// The group-by attributes (ids into the *base* schema), in the order
    /// they appear as the leading columns of [`GroupData::relation`].
    pub group_attrs: Vec<AttrId>,
    /// Aggregated relation: `group_attrs` columns, one column per
    /// aggregate, then a trailing `__rows` raw-count column.
    pub relation: Relation,
    /// Column index of each aggregate output in `relation`.
    agg_cols: HashMap<(AggFunc, Option<AttrId>), usize>,
    /// Column index of the `__rows` count.
    pub rows_col: usize,
}

impl GroupData {
    /// Run the shared group-by query for `group_attrs` evaluating all
    /// `aggs` (pairs of function and optional base attribute) in one scan.
    pub fn compute(
        rel: &Relation,
        group_attrs: &[AttrId],
        aggs: &[(AggFunc, Option<AttrId>)],
    ) -> Result<Self> {
        let specs: Vec<AggSpec> = aggs.iter().map(|&(func, attr)| AggSpec { func, attr }).collect();
        let result = aggregate_with_row_count(rel, group_attrs, &specs)?;
        Ok(Self::from_parts(group_attrs.to_vec(), result.relation, aggs))
    }

    /// Wrap an already-aggregated relation whose columns are
    /// `group_attrs…, aggs…, __rows` (used by the CUBE miner, which
    /// produces the same layout through the cube operator).
    pub fn from_parts(
        group_attrs: Vec<AttrId>,
        relation: Relation,
        aggs: &[(AggFunc, Option<AttrId>)],
    ) -> Self {
        let base = group_attrs.len();
        let agg_cols = aggs.iter().enumerate().map(|(i, &key)| (key, base + i)).collect();
        let rows_col = base + aggs.len();
        debug_assert_eq!(rows_col + 1, relation.schema().arity());
        GroupData { group_attrs, relation, agg_cols, rows_col }
    }

    /// Column index (into [`GroupData::relation`]) of the given aggregate.
    pub fn agg_col(&self, func: AggFunc, attr: Option<AttrId>) -> Option<usize> {
        self.agg_cols.get(&(func, attr)).copied()
    }

    /// Column index of a *base-schema* attribute within this group-by
    /// output, if it is one of the group-by attributes.
    pub fn col_of_attr(&self, attr: AttrId) -> Option<usize> {
        self.group_attrs.iter().position(|&a| a == attr)
    }

    /// Column indices for a list of base attributes (all must be present).
    pub fn cols_of_attrs(&self, attrs: &[AttrId]) -> Option<Vec<usize>> {
        attrs.iter().map(|&a| self.col_of_attr(a)).collect()
    }

    /// Project row `i` onto base attributes `attrs` (values cloned).
    pub fn key_of(&self, i: usize, attrs: &[AttrId]) -> Option<Vec<Value>> {
        let cols = self.cols_of_attrs(attrs)?;
        Some(self.relation.row_project(i, &cols))
    }

    /// The numeric aggregate value of row `i` in column `col`.
    pub fn agg_value(&self, i: usize, col: usize) -> Option<f64> {
        self.relation.value(i, col).as_f64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cape_data::{Schema, ValueType};

    fn rel() -> Relation {
        let schema = Schema::new([
            ("author", ValueType::Str),
            ("year", ValueType::Int),
            ("cites", ValueType::Int),
        ])
        .unwrap();
        Relation::from_rows(
            schema,
            vec![
                vec![Value::str("ax"), Value::Int(2004), Value::Int(1)],
                vec![Value::str("ax"), Value::Int(2004), Value::Int(2)],
                vec![Value::str("ax"), Value::Int(2005), Value::Int(3)],
                vec![Value::str("ay"), Value::Int(2004), Value::Int(4)],
            ],
        )
        .unwrap()
    }

    #[test]
    fn compute_and_lookup() {
        let g =
            GroupData::compute(&rel(), &[0, 1], &[(AggFunc::Count, None), (AggFunc::Sum, Some(2))])
                .unwrap();
        assert_eq!(g.relation.num_rows(), 3);
        let count_col = g.agg_col(AggFunc::Count, None).unwrap();
        let sum_col = g.agg_col(AggFunc::Sum, Some(2)).unwrap();
        assert_eq!(count_col, 2);
        assert_eq!(sum_col, 3);
        assert_eq!(g.rows_col, 4);
        // (ax, 2004): count 2, sum 3.
        assert_eq!(g.agg_value(0, count_col), Some(2.0));
        assert_eq!(g.agg_value(0, sum_col), Some(3.0));
        assert_eq!(g.agg_col(AggFunc::Max, Some(2)), None);
    }

    #[test]
    fn attr_mapping() {
        let g = GroupData::compute(&rel(), &[1, 0], &[(AggFunc::Count, None)]).unwrap();
        assert_eq!(g.col_of_attr(1), Some(0));
        assert_eq!(g.col_of_attr(0), Some(1));
        assert_eq!(g.col_of_attr(2), None);
        assert_eq!(g.cols_of_attrs(&[0, 1]), Some(vec![1, 0]));
        assert_eq!(g.cols_of_attrs(&[0, 2]), None);
        let key = g.key_of(0, &[0]).unwrap();
        assert_eq!(key, vec![Value::str("ax")]);
    }
}
