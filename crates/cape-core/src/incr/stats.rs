//! Sufficient statistics for incremental Const/Lin fits.
//!
//! An append changes a fragment only through the aggregate outputs of the
//! grouped rows it touches, so each fragment keeps running sums from which
//! the batch fit can be reproduced without rescanning: `n`, `Σy`, `Σy²`
//! for constant regression and additionally `Σx`, `Σx²`, `Σxy` for simple
//! linear regression. Updates are subtract-old/add-new on the touched
//! row's aggregate value.
//!
//! Two details make the statistics numerically faithful to the batch
//! path:
//!
//! * **Shifted sums.** All sums are taken relative to the first finite
//!   observation (`y − y₀`, `x − x₀`). A fragment whose observations are
//!   all equal — the overwhelmingly common "perfectly constant" case —
//!   then accumulates exact zeros, so the chi-square statistic is exactly
//!   `0` and the goodness-of-fit exactly `1.0`, bit-identical to the
//!   batch fit. With integer-valued aggregates (`count(*)`, integer sums)
//!   every shifted sum below 2⁵³ is exact, so the incremental fit matches
//!   the batch fit to the last bit there too.
//! * **Canonical NULL/NaN bookkeeping.** NULL aggregate values are not
//!   observations at all (they never enter `n`); non-finite observations
//!   are counted in `n` but tracked in `n_bad` and kept out of the sums,
//!   so the fit reports "no model" exactly when the batch fit returns
//!   [`cape_regress::RegressError::NonFiniteInput`] — and the sums stay
//!   poison-free so later removals restore a usable state.
//!
//! One more guard covers the subtract side: removing an observation does
//! not cancel its earlier addition exactly in floating point, so a
//! fragment whose *surviving* observations are degenerate (all equal, or
//! a single point) can be left with a centered sum of ~`ε × gross mass`
//! instead of exactly zero — and `R²`-style ratios of two such residues
//! are garbage. Each statistic therefore tracks the gross (never
//! decremented) shifted mass and treats a centered sum below
//! `CANCEL_GUARD × gross` as exactly zero, which reproduces the batch
//! path's degenerate-case answers after any amount of churn.

use cape_regress::special::chi_square_sf;
use cape_regress::{Fitted, Model};

/// Floor for the chi-square expectation denominator; mirrors
/// `cape_regress::constant::EXPECTATION_FLOOR`.
const EXPECTATION_FLOOR: f64 = 1e-9;

/// A centered sum below this fraction of the gross shifted mass is
/// cancellation residue, not signal (float ε is ~2.2e-16 per operation;
/// 1e-12 leaves four orders of headroom for thousands of updates while
/// staying far below any variance the 1e-9 differential tolerance can
/// distinguish).
const CANCEL_GUARD: f64 = 1e-12;

/// Running statistics for a constant fit over one fragment's aggregate
/// column: observation count, non-finite count, and shifted `Σy`, `Σy²`.
#[derive(Debug, Clone, Default)]
pub struct ConstStats {
    n: usize,
    n_bad: usize,
    y0: Option<f64>,
    s1: f64,
    s2: f64,
    /// Gross shifted second moment: grows on every add *and* remove,
    /// bounding the cancellation residue left in `s1`/`s2`.
    gross: f64,
}

impl ConstStats {
    /// Fresh, empty statistics.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of observations (non-NULL aggregate values, finite or not) —
    /// the batch path's `ys.len()` for the δ gate.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Record one observation. `None` = NULL: not an observation.
    pub fn add(&mut self, y: Option<f64>) {
        let Some(y) = y else { return };
        self.n += 1;
        if !y.is_finite() {
            self.n_bad += 1;
            return;
        }
        let y0 = *self.y0.get_or_insert(y);
        let d = y - y0;
        self.s1 += d;
        self.s2 += d * d;
        self.gross += d * d;
    }

    /// Remove one previously added observation.
    pub fn remove(&mut self, y: Option<f64>) {
        let Some(y) = y else { return };
        debug_assert!(self.n > 0, "removing from empty ConstStats");
        self.n = self.n.saturating_sub(1);
        if !y.is_finite() {
            self.n_bad = self.n_bad.saturating_sub(1);
            return;
        }
        let d = y - self.y0.unwrap_or(y);
        self.s1 -= d;
        self.s2 -= d * d;
        self.gross += d * d;
    }

    /// The constant fit these statistics imply, mirroring
    /// `cape_regress::fit_constant` (including its error cases as `None`):
    /// empty or non-finite input fits nothing; otherwise `β` is the mean
    /// and GoF the Pearson chi-square p-value.
    pub fn fit(&self) -> Option<Fitted> {
        if self.n == 0 || self.n_bad > 0 {
            return None;
        }
        let n = self.n as f64;
        let y0 = self.y0.unwrap_or(0.0);
        let beta = y0 + self.s1 / n;
        let gof = if self.n <= 1 {
            1.0
        } else {
            // Σ(y − β)² = Σ(y − y₀)² − (Σ(y − y₀))²/n; anything at
            // cancellation-residue scale is exactly zero (the floored
            // denominator below would otherwise amplify the residue).
            let mut ss = (self.s2 - self.s1 * self.s1 / n).max(0.0);
            if ss <= self.gross * CANCEL_GUARD {
                ss = 0.0;
            }
            let statistic = ss / beta.abs().max(EXPECTATION_FLOOR);
            if statistic == 0.0 {
                1.0
            } else {
                chi_square_sf(statistic, (self.n - 1) as f64)
            }
        };
        Some(Fitted { model: Model::Constant { beta }, gof, n: self.n })
    }
}

/// Running statistics for a simple (single-predictor) linear fit:
/// observation count over usable `(x, y)` pairs, non-finite count, and
/// shifted `Σx`, `Σx²`, `Σxy`, `Σy`, `Σy²`.
#[derive(Debug, Clone, Default)]
pub struct LinStats {
    n: usize,
    n_bad: usize,
    x0: f64,
    y0: f64,
    shifted: bool,
    sx: f64,
    sxx: f64,
    sxy: f64,
    sy: f64,
    syy: f64,
    /// Gross shifted masses (grow on add *and* remove): the noise scale
    /// for the degeneracy guards in [`LinStats::fit`].
    gross_xx: f64,
    gross_yy: f64,
}

impl LinStats {
    /// Fresh, empty statistics.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of usable observations (both `x` and `y` non-NULL) — the
    /// batch path's `ys.len()` for the δ gate.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Record one observation. A NULL on either side means the pair is
    /// not usable for linear regression (the batch path drops the row).
    pub fn add(&mut self, x: Option<f64>, y: Option<f64>) {
        let (Some(x), Some(y)) = (x, y) else { return };
        self.n += 1;
        if !x.is_finite() || !y.is_finite() {
            self.n_bad += 1;
            return;
        }
        if !self.shifted {
            self.shifted = true;
            self.x0 = x;
            self.y0 = y;
        }
        let dx = x - self.x0;
        let dy = y - self.y0;
        self.sx += dx;
        self.sxx += dx * dx;
        self.sxy += dx * dy;
        self.sy += dy;
        self.syy += dy * dy;
        self.gross_xx += dx * dx;
        self.gross_yy += dy * dy;
    }

    /// Remove one previously added observation.
    pub fn remove(&mut self, x: Option<f64>, y: Option<f64>) {
        let (Some(x), Some(y)) = (x, y) else { return };
        debug_assert!(self.n > 0, "removing from empty LinStats");
        self.n = self.n.saturating_sub(1);
        if !x.is_finite() || !y.is_finite() {
            self.n_bad = self.n_bad.saturating_sub(1);
            return;
        }
        let dx = x - self.x0;
        let dy = y - self.y0;
        self.sx -= dx;
        self.sxx -= dx * dx;
        self.sxy -= dx * dy;
        self.sy -= dy;
        self.syy -= dy * dy;
        self.gross_xx += dx * dx;
        self.gross_yy += dy * dy;
    }

    /// The simple linear fit these statistics imply, mirroring
    /// `cape_regress::fit_linear` for `d = 1` (error cases as `None`):
    /// closed-form OLS with slope 0 when all `x` coincide, and `R²`
    /// goodness-of-fit clamped to `[0, 1]` (1 when the targets are
    /// constant).
    pub fn fit(&self) -> Option<Fitted> {
        if self.n == 0 || self.n_bad > 0 {
            return None;
        }
        let n = self.n as f64;
        let mx = self.x0 + self.sx / n;
        let my = self.y0 + self.sy / n;
        let mut sxx_c = (self.sxx - self.sx * self.sx / n).max(0.0);
        let sxy_c = self.sxy - self.sx * self.sy / n;
        let mut syy_c = (self.syy - self.sy * self.sy / n).max(0.0);
        // Degeneracy at cancellation-residue scale is exact degeneracy:
        // all surviving x (or y) coincide, or only one point survives.
        if sxx_c <= self.gross_xx * CANCEL_GUARD {
            sxx_c = 0.0;
        }
        if syy_c <= self.gross_yy * CANCEL_GUARD {
            syy_c = 0.0;
        }
        let slope = if sxx_c == 0.0 { 0.0 } else { sxy_c / sxx_c };
        let intercept = my - slope * mx;
        let gof = if syy_c == 0.0 {
            1.0
        } else {
            let ss_res = (syy_c - 2.0 * slope * sxy_c + slope * slope * sxx_c).max(0.0);
            (1.0 - ss_res / syy_c).clamp(0.0, 1.0)
        };
        Some(Fitted { model: Model::Linear { intercept, coefs: vec![slope] }, gof, n: self.n })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cape_regress::{fit_constant, fit_linear};

    fn const_from_scratch(ys: &[Option<f64>]) -> Option<Fitted> {
        let present: Vec<f64> = ys.iter().filter_map(|y| *y).collect();
        if present.is_empty() {
            return None;
        }
        fit_constant(&present).ok()
    }

    fn lin_from_scratch(pairs: &[(Option<f64>, Option<f64>)]) -> Option<Fitted> {
        let usable: Vec<(f64, f64)> = pairs.iter().filter_map(|&(x, y)| Some((x?, y?))).collect();
        if usable.is_empty() {
            return None;
        }
        let xs: Vec<Vec<f64>> = usable.iter().map(|&(x, _)| vec![x]).collect();
        let ys: Vec<f64> = usable.iter().map(|&(_, y)| y).collect();
        fit_linear(&xs, &ys).ok()
    }

    fn assert_fit_close(a: &Option<Fitted>, b: &Option<Fitted>) {
        match (a, b) {
            (None, None) => {}
            (Some(a), Some(b)) => {
                assert_eq!(a.n, b.n);
                assert!((a.gof - b.gof).abs() < 1e-9, "gof {} vs {}", a.gof, b.gof);
                match (&a.model, &b.model) {
                    (Model::Constant { beta: ba }, Model::Constant { beta: bb }) => {
                        assert!((ba - bb).abs() < 1e-9)
                    }
                    (
                        Model::Linear { intercept: ia, coefs: ca },
                        Model::Linear { intercept: ib, coefs: cb },
                    ) => {
                        assert!((ia - ib).abs() < 1e-9);
                        assert!((ca[0] - cb[0]).abs() < 1e-9);
                    }
                    (a, b) => panic!("model shape mismatch: {a:?} vs {b:?}"),
                }
            }
            (a, b) => panic!("fit presence mismatch: {a:?} vs {b:?}"),
        }
    }

    #[test]
    fn constant_matches_batch_exactly_on_equal_ints() {
        let mut st = ConstStats::new();
        for _ in 0..8 {
            st.add(Some(4.0));
        }
        let f = st.fit().unwrap();
        assert_eq!(f.gof, 1.0); // exact, not approximate
        assert_eq!(f.model, Model::Constant { beta: 4.0 });
    }

    #[test]
    fn constant_matches_batch_after_updates() {
        let mut st = ConstStats::new();
        let mut ys: Vec<Option<f64>> = Vec::new();
        for y in [4.0, 5.0, 4.0, 5.0, 4.0, 6.0] {
            st.add(Some(y));
            ys.push(Some(y));
        }
        // A grouped row's aggregate moves 5.0 → 9.0 (subtract-old/add-new).
        st.remove(Some(5.0));
        st.add(Some(9.0));
        ys[1] = Some(9.0);
        assert_fit_close(&st.fit(), &const_from_scratch(&ys));
    }

    #[test]
    fn nulls_are_not_observations() {
        let mut st = ConstStats::new();
        st.add(None);
        st.add(Some(3.0));
        st.add(None);
        assert_eq!(st.n(), 1);
        assert_eq!(st.fit().unwrap().gof, 1.0); // single observation
                                                // NULL → non-NULL transition: remove(None) is a no-op.
        st.remove(None);
        st.add(Some(3.0));
        assert_eq!(st.n(), 2);
    }

    #[test]
    fn nan_blocks_fit_until_removed() {
        let mut st = ConstStats::new();
        st.add(Some(2.0));
        st.add(Some(f64::NAN));
        assert_eq!(st.n(), 2);
        assert!(st.fit().is_none()); // batch: NonFiniteInput
        st.remove(Some(f64::NAN));
        let f = st.fit().unwrap();
        assert_eq!(f.model, Model::Constant { beta: 2.0 });
        // Sums stayed finite through the NaN episode.
        st.add(Some(4.0));
        assert!((st.fit().unwrap().model.predict(&[]) - 3.0).abs() < 1e-12);
    }

    #[test]
    fn linear_matches_batch_after_updates() {
        let mut st = LinStats::new();
        let mut pairs: Vec<(Option<f64>, Option<f64>)> = Vec::new();
        for (x, y) in [(2000.0, 3.0), (2001.0, 5.0), (2002.0, 7.0), (2003.0, 8.0)] {
            st.add(Some(x), Some(y));
            pairs.push((Some(x), Some(y)));
        }
        assert_fit_close(&st.fit(), &lin_from_scratch(&pairs));
        // Update y at x=2001: 5.0 → 6.0.
        st.remove(Some(2001.0), Some(5.0));
        st.add(Some(2001.0), Some(6.0));
        pairs[1].1 = Some(6.0);
        assert_fit_close(&st.fit(), &lin_from_scratch(&pairs));
    }

    #[test]
    fn linear_degenerate_cases() {
        // Single observation: slope 0, perfect fit — matches batch.
        let mut st = LinStats::new();
        st.add(Some(7.0), Some(3.0));
        let f = st.fit().unwrap();
        assert_eq!(f.model, Model::Linear { intercept: 3.0, coefs: vec![0.0] });
        assert_eq!(f.gof, 1.0);
        // All x equal: slope degenerates to 0 exactly, like fit_simple.
        let mut st = LinStats::new();
        st.add(Some(5.0), Some(1.0));
        st.add(Some(5.0), Some(3.0));
        let f = st.fit().unwrap();
        let b = lin_from_scratch(&[(Some(5.0), Some(1.0)), (Some(5.0), Some(3.0))]).unwrap();
        assert_fit_close(&Some(f), &Some(b));
        // Missing x drops the pair entirely.
        let mut st = LinStats::new();
        st.add(None, Some(1.0));
        st.add(Some(1.0), None);
        assert_eq!(st.n(), 0);
        assert!(st.fit().is_none());
    }

    #[test]
    fn linear_nan_handling() {
        let mut st = LinStats::new();
        st.add(Some(1.0), Some(2.0));
        st.add(Some(f64::NAN), Some(3.0));
        assert!(st.fit().is_none());
        st.remove(Some(f64::NAN), Some(3.0));
        assert!(st.fit().is_some());
    }

    #[test]
    fn empty_stats_fit_nothing() {
        assert!(ConstStats::new().fit().is_none());
        assert!(LinStats::new().fit().is_none());
    }
}
