//! The append-delta write-ahead log.
//!
//! A WAL file lives beside its `.cape` snapshot and holds every row batch
//! appended since the store's base relation, as length-prefixed,
//! CRC-checksummed records in the style of [`crate::snapshot::codec`]:
//!
//! ```text
//! header:  "CAPEWAL1" | version u32 | schema fingerprint u64 | folded_seq u64
//! record:  "WREC" | seq u64 | payload_len u64 | payload | crc32 | "WCMT"
//! payload: n_rows u64 | n_rows × arity values
//! ```
//!
//! Every record carries a strictly increasing sequence number and a
//! trailing commit marker; the CRC covers the sequence number, the
//! payload length, and the payload. `folded_seq` is the compaction watermark: the adjacent
//! snapshot's patterns reflect all records with `seq ≤ folded_seq`.
//! Compaction rewrites the file (atomic temp + rename) as a fresh header
//! plus one consolidated record holding the full delta, with
//! `folded_seq = last_seq`.
//!
//! Replay is **committed-prefix** recovery: a record cut short by the end
//! of the file, or a tail of zero bytes at a record boundary, is the
//! signature of an append that crashed mid-write — it is discarded and the
//! committed prefix loads cleanly. Any other malformation (bad tag, CRC
//! mismatch, wrong commit marker, duplicate or out-of-order sequence
//! numbers, fingerprint mismatch) is a typed [`WalError`]: no partial or
//! reordered delta is ever installed.

use crate::snapshot::codec::{crc32, read_value, write_value, ByteReader, ByteWriter};
use cape_data::Value;
use std::io::Write;
use std::ops::Range;
use std::path::Path;

/// Leading file magic of a WAL file (version baked into the last byte).
pub const WAL_MAGIC: &[u8; 8] = b"CAPEWAL1";
/// Current (and only) WAL format version.
pub const WAL_VERSION: u32 = 1;
/// Record tag.
const TAG_RECORD: u32 = u32::from_le_bytes(*b"WREC");
/// Per-record commit marker.
const TAG_COMMIT: u32 = u32::from_le_bytes(*b"WCMT");
/// Header size in bytes: magic + version + fingerprint + folded_seq.
pub const HEADER_LEN: usize = 8 + 4 + 8 + 8;

/// Why a WAL was rejected (or could not be written). One variant per
/// failure class, mirroring [`crate::snapshot::SnapshotError`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WalError {
    /// The file does not start with the WAL magic.
    BadMagic,
    /// The file declares a WAL format version this build cannot read.
    VersionUnsupported {
        /// The version the file declared.
        found: u32,
    },
    /// The WAL was written for a different relation schema.
    SchemaMismatch {
        /// Fingerprint of the live schema.
        expected: u64,
        /// Fingerprint recorded in the WAL header.
        found: u64,
    },
    /// A committed record failed a structural or CRC check.
    Corrupt {
        /// Sequence number of the failing record (the expected one when
        /// the recorded number itself is unreadable).
        seq: u64,
        /// What failed (`"record tag"`, `"crc"`, `"commit marker"`,
        /// `"payload"`).
        what: &'static str,
    },
    /// A sequence number was skipped.
    SeqGap {
        /// The sequence number that should have come next.
        expected: u64,
        /// The sequence number found instead.
        found: u64,
    },
    /// The same sequence number appeared twice in a row.
    DuplicateSeq {
        /// The repeated sequence number.
        seq: u64,
    },
    /// A record's sequence number went backwards.
    OutOfOrder {
        /// The previous record's sequence number.
        prev: u64,
        /// The smaller number found after it.
        found: u64,
    },
    /// The file is shorter than its fixed header.
    Truncated,
    /// Filesystem failure (stringified to keep the error `Clone`).
    Io(String),
}

impl std::fmt::Display for WalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WalError::BadMagic => f.write_str("bad magic (not a cape wal)"),
            WalError::VersionUnsupported { found } => {
                write!(f, "unsupported wal version {found} (this build reads {WAL_VERSION})")
            }
            WalError::SchemaMismatch { expected, found } => {
                write!(f, "wal schema fingerprint {found:#x} does not match relation {expected:#x}")
            }
            WalError::Corrupt { seq, what } => write!(f, "wal record {seq} corrupt: {what}"),
            WalError::SeqGap { expected, found } => {
                write!(f, "wal sequence gap: expected {expected}, found {found}")
            }
            WalError::DuplicateSeq { seq } => write!(f, "duplicate wal sequence number {seq}"),
            WalError::OutOfOrder { prev, found } => {
                write!(f, "wal sequence went backwards: {found} after {prev}")
            }
            WalError::Truncated => f.write_str("wal file shorter than its header"),
            WalError::Io(m) => write!(f, "io error: {m}"),
        }
    }
}

impl std::error::Error for WalError {}

/// The decoded state of a WAL: its committed batches and watermarks.
#[derive(Debug, Clone, PartialEq)]
pub struct WalReplay {
    /// Committed append batches in order, each with its sequence number.
    pub batches: Vec<(u64, Vec<Vec<Value>>)>,
    /// Sequence number of the last committed record (`folded_seq` when the
    /// WAL holds no records).
    pub last_seq: u64,
    /// Compaction watermark from the header: the adjacent snapshot's
    /// patterns reflect records with `seq ≤ folded_seq`.
    pub folded_seq: u64,
    /// Bytes of uncommitted tail discarded by committed-prefix recovery
    /// (0 when the file ended cleanly).
    pub discarded_tail_bytes: usize,
}

/// Encode the fixed WAL header.
pub fn encode_header(schema_fp: u64, folded_seq: u64) -> Vec<u8> {
    let mut w = ByteWriter::new();
    w.bytes(WAL_MAGIC);
    w.u32(WAL_VERSION);
    w.u64(schema_fp);
    w.u64(folded_seq);
    w.into_bytes()
}

/// Encode one committed record for a batch of rows.
pub fn encode_record(seq: u64, rows: &[Vec<Value>]) -> Vec<u8> {
    let mut payload = ByteWriter::new();
    payload.u64(rows.len() as u64);
    for row in rows {
        for v in row {
            write_value(&mut payload, v);
        }
    }
    let payload = payload.into_bytes();
    let mut body = ByteWriter::new();
    body.u64(seq);
    body.u64(payload.len() as u64);
    body.bytes(&payload);
    let crc = crc32(&body.into_bytes());

    let mut w = ByteWriter::new();
    w.u32(TAG_RECORD);
    w.u64(seq);
    w.u64(payload.len() as u64);
    w.bytes(&payload);
    w.u32(crc);
    w.u32(TAG_COMMIT);
    w.into_bytes()
}

/// Structural byte ranges of the records in a WAL image, without
/// validating CRCs or sequence numbers. Used by the fault-injection
/// matrix to aim duplications/swaps at whole records.
pub fn record_spans(bytes: &[u8]) -> Vec<Range<usize>> {
    let mut out = Vec::new();
    let mut pos = HEADER_LEN;
    while pos + 4 + 8 + 8 <= bytes.len() {
        let len =
            u64::from_le_bytes(bytes[pos + 12..pos + 20].try_into().expect("8 bytes")) as usize;
        let Some(end) = pos.checked_add(4 + 8 + 8 + len + 4 + 4) else { break };
        if end > bytes.len() {
            break;
        }
        out.push(pos..end);
        pos = end;
    }
    out
}

/// True when the first record after a fresh header or a compacted header
/// carries a legal sequence number: `folded_seq + 1` for a plain append,
/// or `folded_seq` itself for the consolidated record compaction writes.
fn first_seq_ok(folded_seq: u64, seq: u64) -> bool {
    seq == folded_seq + 1 || (folded_seq > 0 && seq == folded_seq)
}

/// Decode a WAL image and validate it against the live schema
/// fingerprint and row arity. Committed-prefix recovery: see the module
/// docs for which tails are discarded versus rejected.
pub fn decode_wal(bytes: &[u8], schema_fp: u64, arity: usize) -> Result<WalReplay, WalError> {
    if bytes.len() < HEADER_LEN {
        return Err(WalError::Truncated);
    }
    if &bytes[..8] != WAL_MAGIC {
        return Err(WalError::BadMagic);
    }
    let mut r = ByteReader::new(&bytes[8..HEADER_LEN]);
    let version = r.u32().expect("sized above");
    if version != WAL_VERSION {
        return Err(WalError::VersionUnsupported { found: version });
    }
    let found_fp = r.u64().expect("sized above");
    if found_fp != schema_fp {
        return Err(WalError::SchemaMismatch { expected: schema_fp, found: found_fp });
    }
    let folded_seq = r.u64().expect("sized above");

    let mut batches: Vec<(u64, Vec<Vec<Value>>)> = Vec::new();
    let mut prev_seq: Option<u64> = None;
    let mut pos = HEADER_LEN;
    loop {
        if pos == bytes.len() {
            break; // clean end
        }
        let expected_seq = prev_seq.map_or(folded_seq + 1, |p| p + 1);
        // A tail of zero bytes at a record boundary is a torn append
        // (space allocated, data never flushed): discard it.
        if bytes[pos..].iter().all(|&b| b == 0) {
            break;
        }
        // Structural shortage from here on means the final record was cut
        // mid-write: discard the tail, keep the committed prefix.
        let Some(fixed) = bytes.get(pos..pos + 4 + 8 + 8) else { break };
        let tag = u32::from_le_bytes(fixed[..4].try_into().expect("4 bytes"));
        if tag != TAG_RECORD {
            return Err(WalError::Corrupt { seq: expected_seq, what: "record tag" });
        }
        let seq = u64::from_le_bytes(fixed[4..12].try_into().expect("8 bytes"));
        let payload_len = u64::from_le_bytes(fixed[12..20].try_into().expect("8 bytes"));
        let Ok(payload_len) = usize::try_from(payload_len) else { break };
        let body_start = pos + 4;
        let payload_start = pos + 20;
        let Some(payload) =
            payload_len.checked_add(payload_start).and_then(|end| bytes.get(payload_start..end))
        else {
            break;
        };
        let Some(trailer) = bytes.get(payload_start + payload_len..payload_start + payload_len + 8)
        else {
            break;
        };
        let crc_found = u32::from_le_bytes(trailer[..4].try_into().expect("4 bytes"));
        let commit = u32::from_le_bytes(trailer[4..].try_into().expect("4 bytes"));
        if crc32(&bytes[body_start..payload_start + payload_len]) != crc_found {
            return Err(WalError::Corrupt { seq, what: "crc" });
        }
        if commit != TAG_COMMIT {
            return Err(WalError::Corrupt { seq, what: "commit marker" });
        }
        // The record is committed and intact: sequence checks are hard
        // errors from here (a duplicated or reordered committed record is
        // corruption, not a torn tail).
        match prev_seq {
            None => {
                if !first_seq_ok(folded_seq, seq) {
                    return Err(WalError::SeqGap { expected: folded_seq + 1, found: seq });
                }
            }
            Some(p) if seq == p => return Err(WalError::DuplicateSeq { seq }),
            Some(p) if seq < p => return Err(WalError::OutOfOrder { prev: p, found: seq }),
            Some(p) if seq > p + 1 => return Err(WalError::SeqGap { expected: p + 1, found: seq }),
            Some(_) => {}
        }
        let rows = decode_payload(payload, arity, seq)?;
        batches.push((seq, rows));
        prev_seq = Some(seq);
        pos = payload_start + payload_len + 8;
    }
    Ok(WalReplay {
        last_seq: prev_seq.unwrap_or(folded_seq),
        folded_seq,
        discarded_tail_bytes: bytes.len() - pos,
        batches,
    })
}

fn decode_payload(payload: &[u8], arity: usize, seq: u64) -> Result<Vec<Vec<Value>>, WalError> {
    let corrupt = |_| WalError::Corrupt { seq, what: "payload" };
    let mut r = ByteReader::new(payload);
    let n_rows = r.u64().map_err(corrupt)?;
    // Each value costs at least one tag byte; reject absurd counts before
    // allocating (mirrors `ByteReader::count`).
    if n_rows > (payload.len() / arity.max(1)) as u64 {
        return Err(WalError::Corrupt { seq, what: "payload" });
    }
    let mut rows = Vec::with_capacity(n_rows as usize);
    for _ in 0..n_rows {
        let mut row = Vec::with_capacity(arity);
        for _ in 0..arity {
            row.push(read_value(&mut r).map_err(corrupt)?);
        }
        rows.push(row);
    }
    if !r.is_empty() {
        return Err(WalError::Corrupt { seq, what: "payload" });
    }
    Ok(rows)
}

fn io_err(e: std::io::Error) -> WalError {
    WalError::Io(e.to_string())
}

/// Read and decode a WAL file. `Ok(None)` when the file does not exist
/// (a store that has never seen a durable append).
pub fn load_wal(
    path: impl AsRef<Path>,
    schema_fp: u64,
    arity: usize,
) -> Result<Option<WalReplay>, WalError> {
    let bytes = match std::fs::read(path.as_ref()) {
        Ok(b) => b,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(io_err(e)),
    };
    decode_wal(&bytes, schema_fp, arity).map(Some)
}

/// Create a fresh WAL containing only a header. Overwrites atomically
/// (temp sibling + fsync + rename) so a crash never leaves a half header.
pub fn init_wal(path: impl AsRef<Path>, schema_fp: u64, folded_seq: u64) -> Result<(), WalError> {
    write_atomic(path.as_ref(), &encode_header(schema_fp, folded_seq))
}

/// Append one committed record to an existing WAL and fsync it. The
/// record bytes reach disk before this returns — the in-memory store may
/// only be updated afterwards (WAL-first ordering). Returns the bytes
/// appended.
pub fn append_record(
    path: impl AsRef<Path>,
    seq: u64,
    rows: &[Vec<Value>],
) -> Result<u64, WalError> {
    let record = encode_record(seq, rows);
    let mut f = std::fs::OpenOptions::new().append(true).open(path.as_ref()).map_err(io_err)?;
    f.write_all(&record).map_err(io_err)?;
    f.sync_all().map_err(io_err)?;
    Ok(record.len() as u64)
}

/// Rewrite the WAL as a compacted image: header with
/// `folded_seq = last_seq` plus one consolidated record (seq `last_seq`)
/// holding the entire delta, or header only when the delta is empty.
/// Atomic (temp sibling + fsync + rename). Returns the new file size.
pub fn write_compacted(
    path: impl AsRef<Path>,
    schema_fp: u64,
    last_seq: u64,
    delta_rows: &[Vec<Value>],
) -> Result<u64, WalError> {
    let mut bytes = encode_header(schema_fp, last_seq);
    if !delta_rows.is_empty() {
        bytes.extend_from_slice(&encode_record(last_seq, delta_rows));
    }
    write_atomic(path.as_ref(), &bytes)?;
    Ok(bytes.len() as u64)
}

fn write_atomic(path: &Path, bytes: &[u8]) -> Result<(), WalError> {
    let tmp = path.with_extension(format!("waltmp.{}", std::process::id()));
    {
        let mut f = std::fs::File::create(&tmp).map_err(io_err)?;
        f.write_all(bytes).map_err(io_err)?;
        f.sync_all().map_err(io_err)?;
    }
    if let Err(e) = std::fs::rename(&tmp, path) {
        let _ = std::fs::remove_file(&tmp);
        return Err(io_err(e));
    }
    if let Some(parent) = path.parent() {
        let dir = if parent.as_os_str().is_empty() { Path::new(".") } else { parent };
        if let Ok(d) = std::fs::File::open(dir) {
            let _ = d.sync_all();
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rows(tag: i64, n: usize) -> Vec<Vec<Value>> {
        (0..n).map(|i| vec![Value::str(format!("r{tag}")), Value::Int(i as i64)]).collect()
    }

    fn image(folded: u64, batches: &[(u64, Vec<Vec<Value>>)]) -> Vec<u8> {
        let mut bytes = encode_header(77, folded);
        for (seq, rows) in batches {
            bytes.extend_from_slice(&encode_record(*seq, rows));
        }
        bytes
    }

    #[test]
    fn roundtrip_multiple_batches() {
        let batches = vec![(1, rows(1, 3)), (2, rows(2, 1)), (3, rows(3, 0))];
        let replay = decode_wal(&image(0, &batches), 77, 2).unwrap();
        assert_eq!(replay.batches, batches);
        assert_eq!(replay.last_seq, 3);
        assert_eq!(replay.folded_seq, 0);
        assert_eq!(replay.discarded_tail_bytes, 0);
    }

    #[test]
    fn header_only_wal_is_empty() {
        let replay = decode_wal(&image(5, &[]), 77, 2).unwrap();
        assert!(replay.batches.is_empty());
        assert_eq!(replay.last_seq, 5);
        assert_eq!(replay.folded_seq, 5);
    }

    #[test]
    fn consolidated_record_accepted() {
        // After compaction the single record carries seq == folded_seq.
        let replay = decode_wal(&image(4, &[(4, rows(9, 2))]), 77, 2).unwrap();
        assert_eq!(replay.last_seq, 4);
        assert_eq!(replay.batches.len(), 1);
        // … and further appends continue from there.
        let replay = decode_wal(&image(4, &[(4, rows(9, 2)), (5, rows(5, 1))]), 77, 2).unwrap();
        assert_eq!(replay.last_seq, 5);
    }

    #[test]
    fn truncated_final_record_discarded() {
        let bytes = image(0, &[(1, rows(1, 3)), (2, rows(2, 2))]);
        let spans = record_spans(&bytes);
        assert_eq!(spans.len(), 2);
        // Cut anywhere inside the second record: first batch survives.
        for cut in spans[1].start + 1..spans[1].end {
            let replay = decode_wal(&bytes[..cut], 77, 2).unwrap();
            assert_eq!(replay.batches.len(), 1, "cut at {cut}");
            assert_eq!(replay.last_seq, 1);
            assert!(replay.discarded_tail_bytes > 0);
        }
        // Cutting at the boundary is a clean end.
        let replay = decode_wal(&bytes[..spans[1].start], 77, 2).unwrap();
        assert_eq!(replay.batches.len(), 1);
        assert_eq!(replay.discarded_tail_bytes, 0);
    }

    #[test]
    fn zero_tail_at_boundary_discarded() {
        let mut bytes = image(0, &[(1, rows(1, 2))]);
        let clean = bytes.len();
        bytes.extend_from_slice(&[0u8; 40]);
        let replay = decode_wal(&bytes, 77, 2).unwrap();
        assert_eq!(replay.batches.len(), 1);
        assert_eq!(replay.discarded_tail_bytes, bytes.len() - clean);
    }

    #[test]
    fn bit_flip_in_committed_record_is_typed_error() {
        let bytes = image(0, &[(1, rows(1, 2)), (2, rows(2, 2))]);
        let spans = record_spans(&bytes);
        // Flip a payload byte of the FIRST record: CRC catches it.
        let mut bad = bytes.clone();
        bad[spans[0].start + 25] ^= 0x10;
        assert!(matches!(decode_wal(&bad, 77, 2), Err(WalError::Corrupt { seq: 1, what: "crc" })));
    }

    #[test]
    fn wrong_commit_marker_rejected() {
        let bytes = image(0, &[(1, rows(1, 2))]);
        let mut bad = bytes.clone();
        let end = bytes.len();
        bad[end - 1] = b'X';
        assert!(matches!(
            decode_wal(&bad, 77, 2),
            Err(WalError::Corrupt { seq: 1, what: "commit marker" })
        ));
    }

    #[test]
    fn sequence_violations_are_typed() {
        assert!(matches!(
            decode_wal(&image(0, &[(1, rows(1, 1)), (1, rows(1, 1))]), 77, 2),
            Err(WalError::DuplicateSeq { seq: 1 })
        ));
        assert!(matches!(
            decode_wal(&image(0, &[(1, rows(1, 1)), (3, rows(3, 1))]), 77, 2),
            Err(WalError::SeqGap { expected: 2, found: 3 })
        ));
        assert!(matches!(
            decode_wal(&image(0, &[(2, rows(2, 1)), (3, rows(3, 1)), (1, rows(1, 1))]), 77, 2),
            Err(WalError::SeqGap { expected: 1, found: 2 })
        ));
        // Out-of-order after a consolidated start.
        assert!(matches!(
            decode_wal(&image(4, &[(4, rows(4, 1)), (3, rows(3, 1))]), 77, 2),
            Err(WalError::OutOfOrder { prev: 4, found: 3 })
        ));
        // First record must continue from the watermark.
        assert!(matches!(
            decode_wal(&image(0, &[(7, rows(7, 1))]), 77, 2),
            Err(WalError::SeqGap { expected: 1, found: 7 })
        ));
    }

    #[test]
    fn header_validation() {
        assert_eq!(decode_wal(&[], 77, 2), Err(WalError::Truncated));
        let mut bad_magic = image(0, &[]);
        bad_magic[0] = b'X';
        assert_eq!(decode_wal(&bad_magic, 77, 2), Err(WalError::BadMagic));
        let mut bad_version = image(0, &[]);
        bad_version[8] = 9;
        assert_eq!(decode_wal(&bad_version, 77, 2), Err(WalError::VersionUnsupported { found: 9 }));
        assert!(matches!(
            decode_wal(&image(0, &[]), 78, 2),
            Err(WalError::SchemaMismatch { expected: 78, found: 77 })
        ));
    }

    #[test]
    fn file_roundtrip_append_and_compact() {
        let dir = std::env::temp_dir().join(format!("cape_wal_test_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.wal");
        init_wal(&path, 77, 0).unwrap();
        assert!(load_wal(&path, 77, 2).unwrap().unwrap().batches.is_empty());
        append_record(&path, 1, &rows(1, 3)).unwrap();
        append_record(&path, 2, &rows(2, 1)).unwrap();
        let replay = load_wal(&path, 77, 2).unwrap().unwrap();
        assert_eq!(replay.batches.len(), 2);
        assert_eq!(replay.last_seq, 2);
        // Compact: all four rows fold into one consolidated record.
        let mut all = rows(1, 3);
        all.extend(rows(2, 1));
        write_compacted(&path, 77, 2, &all).unwrap();
        let replay = load_wal(&path, 77, 2).unwrap().unwrap();
        assert_eq!(replay.folded_seq, 2);
        assert_eq!(replay.last_seq, 2);
        assert_eq!(replay.batches.len(), 1);
        assert_eq!(replay.batches[0].1.len(), 4);
        // Appends continue past the consolidated record.
        append_record(&path, 3, &rows(3, 2)).unwrap();
        let replay = load_wal(&path, 77, 2).unwrap().unwrap();
        assert_eq!(replay.last_seq, 3);
        assert_eq!(replay.batches.len(), 2);
        // Missing file is Ok(None), not an error.
        assert_eq!(load_wal(dir.join("absent.wal"), 77, 2).unwrap(), None);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn record_spans_cover_records_exactly() {
        let bytes = image(0, &[(1, rows(1, 2)), (2, rows(2, 5))]);
        let spans = record_spans(&bytes);
        assert_eq!(spans.len(), 2);
        assert_eq!(spans[0].start, HEADER_LEN);
        assert_eq!(spans[1].end, bytes.len());
        assert_eq!(spans[0].end, spans[1].start);
        assert_eq!(record_spans(&image(3, &[])), Vec::<Range<usize>>::new());
    }
}
