//! Incremental ARP maintenance: streaming appends over a mined store.
//!
//! [`IncrStore`] keeps the mining state of a relation *live*: appending a
//! batch of rows updates the per-group aggregates in place, re-validates
//! only the fragments whose membership or aggregate outputs actually
//! changed (via per-fragment sufficient statistics — [`stats`]), and
//! re-derives the global holds from the updated local counts. Untouched
//! fragments keep their local patterns bit-for-bit; the regenerated
//! [`PatternStore`] lists instances in the exact order the batch miners
//! produce (group sets in lattice order × `(F, V)` splits × candidates),
//! so an incremental store is interchangeable with a re-mined one.
//!
//! Durability is a hot/durable tier split: the base relation's snapshot
//! (PR-4 format, untouched) plus a write-ahead log of append deltas beside
//! it ([`wal`]). Every append is committed to the WAL — fsync'd — *before*
//! the in-memory state changes; [`IncrStore::open`] replays the WAL over
//! the base relation and rebuilds the statistics, and
//! [`IncrStore::compact`] folds the accumulated delta into a fresh
//! snapshot and rewrites the WAL to a single consolidated record.
//!
//! What stays out of scope (and falls back to the batch path): candidates
//! whose fit has no compact sufficient statistics — multi-predictor
//! linear and quadratic models — are refit from the touched fragment's
//! rows only; deviation extremes are always recomputed by one scan of the
//! touched fragment (a running max cannot be maintained under value
//! updates). FD pruning changes the candidate space dynamically and is
//! rejected up front.

pub mod stats;
pub mod wal;

use crate::config::MiningConfig;
use crate::group_data::GroupData;
use crate::mining::candidates::{group_sets, splits_of, Split};
use crate::mining::fit::{FitOutcome, SplitCandidate};
use crate::mining::{make_instance, share_grp::build_candidates, validate_config};
use crate::pattern::Arp;
use crate::snapshot::{load_snapshot, save_snapshot, schema_fingerprint, SnapshotError};
use crate::store::{LocalPattern, PatternStore};
use cape_data::agg::Accumulator;
use cape_data::{AggFunc, AggSpec, AttrId, Relation, Schema, Value, ValueType};
use cape_regress::{fit, Fitted, ModelType};
use stats::{ConstStats, LinStats};
use std::collections::{HashMap, HashSet};
use std::path::{Path, PathBuf};
use std::sync::Arc;
use wal::WalError;

/// Why an incremental operation failed.
#[derive(Debug)]
pub enum IncrError {
    /// The mining configuration cannot be maintained incrementally.
    Config(String),
    /// An appended row has the wrong arity.
    Arity {
        /// Index of the offending row within the appended batch.
        row: usize,
        /// Expected arity (the relation schema's).
        expected: usize,
        /// The row's actual length.
        actual: usize,
    },
    /// An appended row holds a value incompatible with the schema.
    ValueType {
        /// Index of the offending row within the appended batch.
        row: usize,
        /// Column of the offending value.
        col: usize,
    },
    /// The base snapshot could not be loaded or saved.
    Snapshot(SnapshotError),
    /// The write-ahead log could not be read or written.
    Wal(WalError),
    /// `compact` was called on a store with no attached snapshot/WAL.
    NotDurable,
    /// A core mining/aggregation failure (stringified).
    Core(String),
}

impl std::fmt::Display for IncrError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IncrError::Config(m) => write!(f, "config not incrementally maintainable: {m}"),
            IncrError::Arity { row, expected, actual } => {
                write!(f, "appended row {row}: arity {actual}, schema expects {expected}")
            }
            IncrError::ValueType { row, col } => {
                write!(f, "appended row {row}: value in column {col} does not match the schema")
            }
            IncrError::Snapshot(e) => write!(f, "snapshot: {e}"),
            IncrError::Wal(e) => write!(f, "wal: {e}"),
            IncrError::NotDurable => {
                f.write_str("store has no attached snapshot/WAL (in-memory only)")
            }
            IncrError::Core(m) => write!(f, "{m}"),
        }
    }
}

impl std::error::Error for IncrError {}

impl From<SnapshotError> for IncrError {
    fn from(e: SnapshotError) -> Self {
        IncrError::Snapshot(e)
    }
}

impl From<WalError> for IncrError {
    fn from(e: WalError) -> Self {
        IncrError::Wal(e)
    }
}

/// What one append did: rows ingested, fragments re-validated, resulting
/// pattern count, and the WAL position the batch was committed at.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AppendReport {
    /// Rows ingested by this append.
    pub appended_rows: usize,
    /// Fragments whose local patterns were recomputed (summed over all
    /// group sets and splits).
    pub touched_fragments: usize,
    /// Pattern instances in the regenerated store.
    pub patterns: usize,
    /// WAL sequence number the batch committed at (`None` for in-memory
    /// stores and for empty batches, which write no record).
    pub wal_seq: Option<u64>,
    /// Bytes appended to the WAL.
    pub wal_bytes: u64,
    /// Whether this append pushed the WAL past its size threshold and
    /// triggered an automatic [`IncrStore::compact`].
    pub auto_compacted: bool,
}

/// Default WAL auto-compaction threshold (bytes). Once the on-disk log
/// grows past this, the next committed append folds it into the snapshot.
pub const DEFAULT_WAL_COMPACT_BYTES: u64 = 64 * 1024 * 1024;

/// Durable-tier state: where the snapshot and WAL live.
struct Durability {
    store_path: PathBuf,
    wal_path: PathBuf,
    schema_fp: u64,
    last_seq: u64,
    /// Current on-disk WAL size, maintained incrementally (append adds
    /// the record's bytes, compaction resets to the rewritten file's).
    wal_size: u64,
}

/// Per-candidate sufficient statistics within one fragment.
enum CandStats {
    /// Constant fit from running moments.
    Const(ConstStats),
    /// Single-predictor linear fit from running moments.
    Lin1(LinStats),
    /// No compact statistics (multi-predictor linear, quadratic): refit
    /// from the fragment's rows when touched.
    Refit,
}

/// One fragment (`t[F] = f`) of one split: its member grouped rows and
/// per-candidate statistics plus current local patterns.
struct FragState {
    key: Vec<Value>,
    slots: Vec<usize>,
    cand_stats: Vec<CandStats>,
    locals: Vec<Option<LocalPattern>>,
}

impl FragState {
    fn new(key: Vec<Value>, candidates: &[SplitCandidate], n_v: usize) -> Self {
        let cand_stats = candidates
            .iter()
            .map(|c| match c.model {
                ModelType::Const => CandStats::Const(ConstStats::new()),
                ModelType::Lin if n_v == 1 => CandStats::Lin1(LinStats::new()),
                _ => CandStats::Refit,
            })
            .collect();
        FragState { key, slots: Vec::new(), cand_stats, locals: vec![None; candidates.len()] }
    }
}

/// One `(F, V)` split of a group set: its candidates and fragment states.
struct SplitState {
    split: Split,
    f_cols: Vec<usize>,
    v_cols: Vec<usize>,
    candidates: Vec<SplitCandidate>,
    frag_index: HashMap<Vec<Value>, usize>,
    frags: Vec<FragState>,
    /// Fragments with support ≥ δ (the batch path's `|frag_supp|`).
    supported: usize,
}

/// One group set `G`: the live aggregation (accumulators + grouped
/// relation) and its splits.
struct GroupState {
    g: Vec<AttrId>,
    aggs: Vec<(AggFunc, Option<AttrId>)>,
    grouped: Relation,
    accs: Vec<Vec<Accumulator>>,
    row_counts: Vec<u64>,
    index: HashMap<Vec<Value>, usize>,
    splits: Vec<SplitState>,
}

impl GroupState {
    fn new(
        rel: &Relation,
        cfg: &MiningConfig,
        g: Vec<AttrId>,
        aggs: Vec<(AggFunc, Option<AttrId>)>,
    ) -> Result<Self, IncrError> {
        let schema = grouped_schema(rel.schema(), &g, &aggs)?;
        let grouped = Relation::new(schema);
        // Throwaway GroupData over the empty grouped relation, used only
        // to enumerate candidates with the exact batch logic.
        let gd = GroupData::from_parts(g.clone(), grouped.clone(), &aggs);
        let mut splits = Vec::new();
        for split in splits_of(&g) {
            let f_cols = gd.cols_of_attrs(&split.f).expect("F within G");
            let v_cols = gd.cols_of_attrs(&split.v).expect("V within G");
            let candidates = build_candidates(rel, cfg, &gd, &split, &aggs);
            if candidates.is_empty() {
                continue;
            }
            splits.push(SplitState {
                split,
                f_cols,
                v_cols,
                candidates,
                frag_index: HashMap::new(),
                frags: Vec::new(),
                supported: 0,
            });
        }
        Ok(GroupState {
            g,
            aggs,
            grouped,
            accs: Vec::new(),
            row_counts: Vec::new(),
            index: HashMap::new(),
            splits,
        })
    }

    /// Fold rows `start..` of `rel` into the live aggregation, then
    /// re-validate every fragment they touched. Returns the number of
    /// touched fragments.
    fn ingest(
        &mut self,
        rel: &Relation,
        start: usize,
        thresholds: &crate::config::Thresholds,
    ) -> Result<usize, IncrError> {
        // Phase 1: route each new row to its grouped slot, capturing the
        // slot's aggregate outputs before its first update (`None` marks a
        // slot created by this batch).
        let mut touched: HashMap<usize, Option<Vec<Value>>> = HashMap::new();
        for i in start..rel.num_rows() {
            let key = rel.row_project(i, &self.g);
            let slot = match self.index.get(&key) {
                Some(&s) => {
                    touched
                        .entry(s)
                        .or_insert_with(|| Some(self.accs[s].iter().map(|a| a.finish()).collect()));
                    s
                }
                None => {
                    let s = self.grouped.num_rows();
                    self.accs
                        .push(self.aggs.iter().map(|&(func, _)| Accumulator::new(func)).collect());
                    self.row_counts.push(0);
                    let mut row = key.clone();
                    row.extend(self.aggs.iter().map(|_| Value::Null));
                    row.push(Value::Int(0));
                    self.grouped.push_row(row).expect("grouped arity is fixed");
                    self.index.insert(key, s);
                    touched.insert(s, None);
                    s
                }
            };
            for (j, &(_, attr)) in self.aggs.iter().enumerate() {
                self.accs[slot][j]
                    .update(attr.map(|a| rel.value(i, a)).as_ref())
                    .map_err(|e| IncrError::Core(e.to_string()))?;
            }
            self.row_counts[slot] += 1;
        }

        // The map's iteration order is arbitrary, but phases 3–4 fold
        // floating-point statistics in iteration order — sort by slot so
        // every run (and the batch path, which gathers fragment rows in
        // ascending grouped-row order) folds in the same order. Without
        // this, a fragment whose GoF sits a few ulps from θ can flip its
        // hold decision between two runs of the same build.
        let mut touched: Vec<(usize, Option<Vec<Value>>)> = touched.into_iter().collect();
        touched.sort_unstable_by_key(|&(slot, _)| slot);

        // Phase 2: refresh the touched grouped rows' aggregate outputs.
        let base = self.g.len();
        for &(slot, _) in &touched {
            for (j, acc) in self.accs[slot].iter().enumerate() {
                self.grouped.set_value(slot, base + j, acc.finish());
            }
            self.grouped.set_value(
                slot,
                base + self.aggs.len(),
                Value::Int(self.row_counts[slot] as i64),
            );
        }

        // Phase 3: per split, move each touched slot's old aggregate
        // values out of its fragment's statistics and the new ones in,
        // then recompute the locals of every touched fragment.
        let delta = thresholds.delta;
        let grouped = &self.grouped;
        let mut touched_frags_total = 0usize;
        for sp in &mut self.splits {
            let mut touched_frags: HashSet<usize> = HashSet::new();
            for (slot, old) in &touched {
                let slot = *slot;
                let f_key = grouped.row_project(slot, &sp.f_cols);
                let fi = match sp.frag_index.get(&f_key) {
                    Some(&fi) => fi,
                    None => {
                        let fi = sp.frags.len();
                        sp.frags.push(FragState::new(
                            f_key.clone(),
                            &sp.candidates,
                            sp.v_cols.len(),
                        ));
                        sp.frag_index.insert(f_key, fi);
                        fi
                    }
                };
                let frag = &mut sp.frags[fi];
                if old.is_none() {
                    frag.slots.push(slot);
                    // Support is monotone: count the δ-crossing once.
                    if frag.slots.len() == delta.max(1) {
                        sp.supported += 1;
                    }
                }
                for (ci, cand) in sp.candidates.iter().enumerate() {
                    let agg_idx = cand.agg_col - base;
                    let new_y = grouped.value(slot, cand.agg_col).as_f64();
                    // `None` = new slot (nothing to remove); `Some(None)`
                    // = the old aggregate output was NULL.
                    let old_y: Option<Option<f64>> =
                        old.as_ref().map(|finishes| finishes[agg_idx].as_f64());
                    match &mut frag.cand_stats[ci] {
                        CandStats::Const(st) => {
                            if let Some(oy) = old_y {
                                st.remove(oy);
                            }
                            st.add(new_y);
                        }
                        CandStats::Lin1(st) => {
                            let x = grouped.value(slot, sp.v_cols[0]).as_f64();
                            if let Some(oy) = old_y {
                                st.remove(x, oy);
                            }
                            st.add(x, new_y);
                        }
                        CandStats::Refit => {}
                    }
                }
                touched_frags.insert(fi);
            }

            // Phase 4: recompute the locals of the touched fragments only.
            let SplitState { candidates, v_cols, frags, .. } = sp;
            for &fi in &touched_frags {
                let frag = &mut frags[fi];
                let supported = frag.slots.len() >= delta;
                for (ci, cand) in candidates.iter().enumerate() {
                    let local = if supported {
                        compute_local(
                            grouped,
                            &frag.slots,
                            &frag.cand_stats[ci],
                            cand,
                            v_cols,
                            thresholds,
                        )
                    } else {
                        None
                    };
                    frag.locals[ci] = local;
                }
            }
            touched_frags_total += touched_frags.len();
        }
        Ok(touched_frags_total)
    }
}

/// When a stats-path GoF lands this close to θ, the hold decision is
/// decided by floating-point noise (the incremental and batch sums differ
/// in their last ulps). Inside this band the fragment is refit exactly
/// like the batch path, so `gof < θ` flips identically on both sides.
const GOF_EDGE: f64 = 1e-9;

/// Refit one fragment from its rows with the exact batch-path gathering
/// rules: non-NULL `y`; for models that read predictors, additionally all
/// `V` values present. `None` on < δ usable rows or a failed fit.
fn exact_refit(
    grouped: &Relation,
    slots: &[usize],
    cand: &SplitCandidate,
    v_cols: &[usize],
    th: &crate::config::Thresholds,
) -> Option<Fitted> {
    let lin = cand.model.requires_numeric_predictors();
    let mut xs: Vec<Vec<f64>> = Vec::new();
    let mut ys: Vec<f64> = Vec::new();
    for &slot in slots {
        let Some(y) = grouped.value(slot, cand.agg_col).as_f64() else { continue };
        if lin {
            let Some(x) = predictor_row(grouped, slot, v_cols) else { continue };
            xs.push(x);
        }
        ys.push(y);
    }
    if ys.len() < th.delta {
        return None;
    }
    fit(cand.model, &xs, &ys).ok()
}

/// Compute one fragment's local pattern for one candidate, mirroring the
/// batch gates of `fit_split`: usable evidence ≥ δ, a successful fit, GoF
/// ≥ θ, then one scan for the deviation extremes.
fn compute_local(
    grouped: &Relation,
    slots: &[usize],
    stats: &CandStats,
    cand: &SplitCandidate,
    v_cols: &[usize],
    th: &crate::config::Thresholds,
) -> Option<LocalPattern> {
    let fast = match stats {
        CandStats::Const(st) => {
            if st.n() < th.delta {
                return None;
            }
            Some(st.fit()?)
        }
        CandStats::Lin1(st) => {
            if st.n() < th.delta {
                return None;
            }
            Some(st.fit()?)
        }
        CandStats::Refit => None,
    };
    let fitted: Fitted = match fast {
        Some(f) if (f.gof - th.theta).abs() >= GOF_EDGE => f,
        // Knife-edge GoF (or no sufficient statistics): take the batch
        // path's exact number.
        _ => exact_refit(grouped, slots, cand, v_cols, th)?,
    };
    if fitted.gof < th.theta {
        return None;
    }

    // Deviation extremes cannot be maintained as running values (an
    // update can retire the current maximum), so rescan the touched
    // fragment's usable rows — still O(|fragment|), never O(|grouped|).
    let lin = cand.model.requires_numeric_predictors();
    let mut max_pos = 0.0f64;
    let mut max_neg = 0.0f64;
    for &slot in slots {
        let Some(y) = grouped.value(slot, cand.agg_col).as_f64() else { continue };
        let dev = if lin {
            let Some(x) = predictor_row(grouped, slot, v_cols) else { continue };
            y - fitted.model.predict(&x)
        } else {
            y - fitted.model.predict(&[])
        };
        max_pos = max_pos.max(dev);
        max_neg = max_neg.min(dev);
    }
    Some(LocalPattern { fitted, support: slots.len(), max_pos_dev: max_pos, max_neg_dev: max_neg })
}

/// The numeric predictor vector of one grouped row, or `None` when any
/// predictor is NULL/non-numeric (the batch path drops such rows for
/// models that read predictors).
fn predictor_row(grouped: &Relation, slot: usize, v_cols: &[usize]) -> Option<Vec<f64>> {
    let mut x = Vec::with_capacity(v_cols.len());
    for &c in v_cols {
        x.push(grouped.value(slot, c).as_f64()?);
    }
    Some(x)
}

/// The grouped relation's schema: `G` columns, one output column per
/// aggregate (`count` is integer, everything else float), then `__rows`.
/// Mirrors `cape-data`'s internal `grouped_output_schema`.
fn grouped_schema(
    base: &Schema,
    g: &[AttrId],
    aggs: &[(AggFunc, Option<AttrId>)],
) -> Result<Schema, IncrError> {
    let mut schema = base.project(g).map_err(|e| IncrError::Core(e.to_string()))?;
    for &(func, attr) in aggs {
        let spec = AggSpec { func, attr };
        let attr_name = match attr {
            Some(a) => {
                Some(base.attr(a).map_err(|e| IncrError::Core(e.to_string()))?.name().to_string())
            }
            None => None,
        };
        let ty = match func {
            AggFunc::Count => ValueType::Int,
            _ => ValueType::Float,
        };
        schema
            .push(cape_data::Attribute::new(spec.output_name(attr_name.as_deref()), ty))
            .map_err(|e| IncrError::Core(e.to_string()))?;
    }
    schema
        .push(cape_data::Attribute::new("__rows", ValueType::Int))
        .map_err(|e| IncrError::Core(e.to_string()))?;
    Ok(schema)
}

/// A mined store maintained incrementally under streaming appends.
pub struct IncrStore {
    relation: Relation,
    cfg: MiningConfig,
    groups: Vec<GroupState>,
    store: Arc<PatternStore>,
    delta_rows: Vec<Vec<Value>>,
    durability: Option<Durability>,
    /// Auto-compaction threshold: once the WAL exceeds this many bytes,
    /// `append` compacts before returning. `None` disables.
    wal_compact_bytes: Option<u64>,
}

impl IncrStore {
    /// Build the incremental state by streaming `relation` through the
    /// same fold the appends use, then derive the initial pattern store.
    /// The resulting store is order- and content-equivalent to a batch
    /// mine of `relation` under `cfg`.
    ///
    /// Rejects configurations that cannot be maintained incrementally
    /// (currently: `fd_pruning`, whose candidate space changes with the
    /// data).
    pub fn build(relation: Relation, cfg: MiningConfig) -> Result<Self, IncrError> {
        validate_config(&cfg).map_err(|e| IncrError::Config(e.to_string()))?;
        if cfg.fd_pruning {
            return Err(IncrError::Config(
                "fd_pruning prunes candidates data-dependently; maintain without it".to_string(),
            ));
        }
        let attrs = cfg.candidate_attrs(&relation);
        let mut groups = Vec::new();
        for g in group_sets(&attrs, cfg.psi) {
            let aggs = cfg.resolve_aggs(&relation, &g);
            if aggs.is_empty() {
                continue;
            }
            groups.push(GroupState::new(&relation, &cfg, g, aggs)?);
        }
        let mut incr = IncrStore {
            relation,
            cfg,
            groups,
            store: Arc::new(PatternStore::new()),
            delta_rows: Vec::new(),
            durability: None,
            wal_compact_bytes: Some(DEFAULT_WAL_COMPACT_BYTES),
        };
        incr.ingest_range(0)?;
        incr.store = Arc::new(incr.regenerate());
        Ok(incr)
    }

    /// Open a durable store: load the snapshot at `store_path` (for the
    /// mining configuration and schema check), replay the sidecar WAL
    /// over `base`, and rebuild the incremental state over the combined
    /// relation. Creates an empty WAL beside the snapshot if none exists.
    ///
    /// A WAL that fails validation is a typed error — a partial or
    /// reordered delta is never installed.
    pub fn open(store_path: impl Into<PathBuf>, base: &Relation) -> Result<Self, IncrError> {
        let store_path = store_path.into();
        let contents = load_snapshot(&store_path, base)?;
        let schema_fp = schema_fingerprint(base.schema());
        let wal_path = wal_path_for(&store_path);
        let arity = base.schema().arity();

        let mut relation = base.clone();
        let mut delta_rows: Vec<Vec<Value>> = Vec::new();
        let last_seq = match wal::load_wal(&wal_path, schema_fp, arity)? {
            Some(replay) => {
                for (seq, batch) in replay.batches {
                    for row in batch {
                        validate_row(relation.schema(), &row)
                            .map_err(|_| WalError::Corrupt { seq, what: "row values" })?;
                        relation.push_row(row.clone()).expect("arity validated");
                        delta_rows.push(row);
                    }
                }
                replay.last_seq
            }
            None => {
                wal::init_wal(&wal_path, schema_fp, 0)?;
                0
            }
        };

        let mut incr = Self::build(relation, contents.config)?;
        incr.delta_rows = delta_rows;
        let wal_size = std::fs::metadata(&wal_path).map(|m| m.len()).unwrap_or(0);
        incr.durability = Some(Durability { store_path, wal_path, schema_fp, last_seq, wal_size });
        Ok(incr)
    }

    /// Attach a snapshot/WAL pair to an in-memory store, creating an
    /// empty WAL beside `store_path` (and refusing a non-empty one — its
    /// rows would not be part of this store's relation). The snapshot
    /// itself is written by [`IncrStore::compact`] or `save_snapshot`.
    pub fn attach_durability(&mut self, store_path: impl Into<PathBuf>) -> Result<(), IncrError> {
        let store_path = store_path.into();
        let wal_path = wal_path_for(&store_path);
        let schema_fp = schema_fingerprint(self.relation.schema());
        if let Some(replay) = wal::load_wal(&wal_path, schema_fp, self.relation.schema().arity())? {
            if !replay.batches.is_empty() || replay.folded_seq != 0 {
                return Err(IncrError::Config(format!(
                    "refusing to attach existing non-empty WAL {}",
                    wal_path.display()
                )));
            }
        } else {
            wal::init_wal(&wal_path, schema_fp, 0)?;
        }
        let wal_size = std::fs::metadata(&wal_path).map(|m| m.len()).unwrap_or(0);
        self.durability =
            Some(Durability { store_path, wal_path, schema_fp, last_seq: 0, wal_size });
        Ok(())
    }

    /// Append a batch of rows. The batch is committed to the WAL (fsync'd)
    /// before any in-memory state changes; then only the fragments it
    /// touches are re-validated and the pattern store is regenerated.
    ///
    /// An empty batch is a no-op: no WAL record, no new store.
    pub fn append(&mut self, rows: Vec<Vec<Value>>) -> Result<AppendReport, IncrError> {
        let span = cape_obs::span_with_histogram("incr.append", "incr.append_ns");
        if rows.is_empty() {
            drop(span);
            return Ok(AppendReport {
                appended_rows: 0,
                touched_fragments: 0,
                patterns: self.store.len(),
                wal_seq: None,
                wal_bytes: 0,
                auto_compacted: false,
            });
        }
        for (i, row) in rows.iter().enumerate() {
            validate_row(self.relation.schema(), row).map_err(|e| match e {
                RowError::Arity { expected, actual } => {
                    IncrError::Arity { row: i, expected, actual }
                }
                RowError::ValueType { col } => IncrError::ValueType { row: i, col },
            })?;
        }

        // WAL first: the delta must be durable before it is visible.
        let (wal_seq, wal_bytes) = match &mut self.durability {
            Some(d) => {
                let seq = d.last_seq + 1;
                let bytes = wal::append_record(&d.wal_path, seq, &rows)?;
                d.last_seq = seq;
                d.wal_size += bytes;
                cape_obs::counter_add("incr.wal_bytes", bytes);
                (Some(seq), bytes)
            }
            None => (None, 0),
        };

        let start = self.relation.num_rows();
        for row in &rows {
            self.relation.push_row(row.clone()).expect("arity validated");
        }
        let appended_rows = rows.len();
        self.delta_rows.extend(rows);

        let touched_fragments = self.ingest_range(start)?;
        cape_obs::counter_add("incr.fragments_revalidated", touched_fragments as u64);
        self.store = Arc::new(self.regenerate());

        // Size-triggered auto-compaction: once the log outgrows the
        // threshold, fold it into the snapshot so sustained appends keep
        // the WAL bounded by (threshold + one consolidated delta). The
        // batch itself is already durable at this point — a compaction
        // failure surfaces as an error but loses nothing on replay.
        let auto_compacted = match (self.wal_compact_bytes, &self.durability) {
            (Some(limit), Some(d)) if d.wal_size > limit => {
                self.compact()?;
                cape_obs::counter_add("incr.auto_compactions", 1);
                true
            }
            _ => false,
        };
        drop(span);
        Ok(AppendReport {
            appended_rows,
            touched_fragments,
            patterns: self.store.len(),
            wal_seq,
            wal_bytes,
            auto_compacted,
        })
    }

    /// Fold the WAL into a fresh snapshot: write the current patterns to
    /// the snapshot path (atomic), then rewrite the WAL as one
    /// consolidated record with the compaction watermark advanced to the
    /// last committed sequence number. A crash between the two writes
    /// leaves a newer snapshot with an older watermark — recovery simply
    /// replays the full WAL over the base relation, which is correct
    /// (rows never double-apply) just not yet compacted.
    pub fn compact(&mut self) -> Result<(), IncrError> {
        let Some(d) = &mut self.durability else { return Err(IncrError::NotDurable) };
        save_snapshot(&d.store_path, self.relation.schema(), &self.cfg, &self.store)?;
        let size = wal::write_compacted(&d.wal_path, d.schema_fp, d.last_seq, &self.delta_rows)?;
        d.wal_size = size;
        cape_obs::counter_add("incr.compactions", 1);
        Ok(())
    }

    /// The live relation (base plus every appended row).
    pub fn relation(&self) -> &Relation {
        &self.relation
    }

    /// The current pattern store, regenerated after each append. Clones of
    /// this `Arc` are snapshot-isolated: later appends install a new store
    /// without mutating this one.
    pub fn store(&self) -> Arc<PatternStore> {
        Arc::clone(&self.store)
    }

    /// The mining configuration the store is maintained under.
    pub fn config(&self) -> &MiningConfig {
        &self.cfg
    }

    /// Last committed WAL sequence number (`None` for in-memory stores).
    pub fn wal_seq(&self) -> Option<u64> {
        self.durability.as_ref().map(|d| d.last_seq)
    }

    /// Path of the attached WAL, if durable.
    pub fn wal_path(&self) -> Option<&Path> {
        self.durability.as_ref().map(|d| d.wal_path.as_path())
    }

    /// Current on-disk WAL size in bytes (`None` for in-memory stores).
    pub fn wal_size(&self) -> Option<u64> {
        self.durability.as_ref().map(|d| d.wal_size)
    }

    /// The auto-compaction threshold, if enabled (the default is
    /// [`DEFAULT_WAL_COMPACT_BYTES`]).
    pub fn wal_compact_threshold(&self) -> Option<u64> {
        self.wal_compact_bytes
    }

    /// Set (or with `None`, disable) the WAL size threshold past which
    /// [`IncrStore::append`] compacts automatically.
    pub fn set_wal_compact_threshold(&mut self, threshold: Option<u64>) {
        self.wal_compact_bytes = threshold;
    }

    /// Rows appended since the base relation (the WAL's logical content).
    pub fn delta_rows(&self) -> &[Vec<Value>] {
        &self.delta_rows
    }

    fn ingest_range(&mut self, start: usize) -> Result<usize, IncrError> {
        let relation = &self.relation;
        let thresholds = &self.cfg.thresholds;
        let mut touched = 0usize;
        for gs in &mut self.groups {
            touched += gs.ingest(relation, start, thresholds)?;
        }
        Ok(touched)
    }

    /// Derive the pattern store from the live fragment states, in the
    /// exact order the batch miners emit instances: group sets in lattice
    /// order, `(F, V)` splits in enumeration order, candidates in
    /// `build_candidates` order.
    fn regenerate(&self) -> PatternStore {
        let th = &self.cfg.thresholds;
        let mut store = PatternStore::new();
        for gs in &self.groups {
            if gs.splits.is_empty() || gs.grouped.is_empty() {
                continue;
            }
            // Fresh per-group data shared by this group's instances; old
            // epochs keep their own Arc (snapshot isolation).
            let gd = Arc::new(GroupData::from_parts(gs.g.clone(), gs.grouped.clone(), &gs.aggs));
            for sp in &gs.splits {
                if sp.supported == 0 {
                    continue;
                }
                for (ci, cand) in sp.candidates.iter().enumerate() {
                    let mut locals: HashMap<Vec<Value>, LocalPattern> = HashMap::new();
                    for frag in &sp.frags {
                        if frag.slots.len() < th.delta {
                            continue;
                        }
                        if let Some(local) = &frag.locals[ci] {
                            locals.insert(frag.key.clone(), local.clone());
                        }
                    }
                    let good = locals.len();
                    let confidence = good as f64 / sp.supported as f64;
                    if good >= th.global_support && confidence >= th.lambda {
                        let arp = Arp::new(
                            sp.split.f.iter().copied(),
                            sp.split.v.iter().copied(),
                            cand.agg,
                            cand.agg_attr,
                            cand.model,
                        );
                        store.push(make_instance(
                            arp,
                            Arc::clone(&gd),
                            cand.agg_col,
                            FitOutcome { locals, confidence, num_supported: sp.supported },
                        ));
                    }
                }
            }
        }
        store
    }
}

/// Sidecar WAL path of a snapshot: `<store>.wal`.
pub fn wal_path_for(store_path: &Path) -> PathBuf {
    let mut os = store_path.as_os_str().to_os_string();
    os.push(".wal");
    PathBuf::from(os)
}

enum RowError {
    Arity { expected: usize, actual: usize },
    ValueType { col: usize },
}

/// Check one row against the schema: exact arity; each value NULL or of
/// the column's type (integers are accepted in float columns).
fn validate_row(schema: &Schema, row: &[Value]) -> Result<(), RowError> {
    if row.len() != schema.arity() {
        return Err(RowError::Arity { expected: schema.arity(), actual: row.len() });
    }
    for (col, v) in row.iter().enumerate() {
        let want = schema.attr(col).expect("arity checked").value_type();
        let ok = match v {
            Value::Null => true,
            Value::Int(_) => matches!(want, ValueType::Int | ValueType::Float),
            Value::Float(_) => matches!(want, ValueType::Float),
            Value::Str(_) => matches!(want, ValueType::Str),
        };
        if !ok {
            return Err(RowError::ValueType { col });
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Thresholds;
    use crate::mining::share_grp::tests::pubs;
    use crate::mining::{Miner, ShareGrpMiner};

    fn lenient_cfg() -> MiningConfig {
        MiningConfig {
            thresholds: Thresholds::new(0.5, 3, 0.5, 2),
            psi: 2,
            ..MiningConfig::default()
        }
    }

    /// Full-store equivalence: same order, same ARPs, same locals (keys,
    /// supports, fits, deviation bounds) to 1e-9.
    fn assert_stores_match(incr: &PatternStore, mined: &PatternStore) {
        assert_eq!(incr.len(), mined.len(), "pattern count");
        for ((_, a), (_, b)) in incr.iter().zip(mined.iter()) {
            assert_eq!(a.arp, b.arp);
            assert_eq!(a.num_supported, b.num_supported);
            assert!((a.confidence - b.confidence).abs() < 1e-9);
            assert_eq!(a.locals.len(), b.locals.len(), "locals of {:?}", a.arp);
            for (key, la) in &a.locals {
                let lb = b.locals.get(key).unwrap_or_else(|| panic!("missing local {key:?}"));
                assert_eq!(la.support, lb.support);
                assert_eq!(la.fitted.n, lb.fitted.n);
                assert!((la.fitted.gof - lb.fitted.gof).abs() < 1e-9);
                assert!((la.max_pos_dev - lb.max_pos_dev).abs() < 1e-9);
                assert!((la.max_neg_dev - lb.max_neg_dev).abs() < 1e-9);
            }
            assert!((a.max_pos_dev - b.max_pos_dev).abs() < 1e-9);
            assert!((a.max_neg_dev - b.max_neg_dev).abs() < 1e-9);
        }
    }

    fn mine_store(rel: &Relation, cfg: &MiningConfig) -> PatternStore {
        ShareGrpMiner.mine(rel, cfg).expect("mine").store
    }

    #[test]
    fn build_matches_batch_mine() {
        let rel = pubs(6, 8, 2);
        let cfg = lenient_cfg();
        let incr = IncrStore::build(rel.clone(), cfg.clone()).unwrap();
        assert!(!incr.store().is_empty(), "fixture should yield patterns");
        assert_stores_match(&incr.store(), &mine_store(&rel, &cfg));
    }

    #[test]
    fn append_matches_mine_of_combined_relation() {
        let full = pubs(6, 8, 2);
        let cfg = lenient_cfg();
        // Split: first 2/3 of rows are the base, the rest arrive in two
        // appended batches (including a single-row batch).
        let n = full.num_rows();
        let cut = 2 * n / 3;
        let base_idx: Vec<usize> = (0..cut).collect();
        let base = full.take(&base_idx);
        let mut incr = IncrStore::build(base, cfg.clone()).unwrap();
        let rest: Vec<Vec<Value>> = (cut..n).map(|i| full.row(i)).collect();
        let (single, bulk) = rest.split_at(1);
        let r1 = incr.append(single.to_vec()).unwrap();
        assert_eq!(r1.appended_rows, 1);
        assert!(r1.touched_fragments > 0);
        let r2 = incr.append(bulk.to_vec()).unwrap();
        assert_eq!(r2.appended_rows, bulk.len());
        assert_stores_match(&incr.store(), &mine_store(&full, &cfg));
    }

    #[test]
    fn empty_append_is_a_noop_without_new_store() {
        let rel = pubs(4, 6, 2);
        let mut incr = IncrStore::build(rel, lenient_cfg()).unwrap();
        let before = incr.store();
        let report = incr.append(Vec::new()).unwrap();
        assert_eq!(report.appended_rows, 0);
        assert_eq!(report.wal_seq, None);
        assert_eq!(report.wal_bytes, 0);
        // Same Arc: no new epoch was created.
        assert!(Arc::ptr_eq(&before, &incr.store()));
    }

    #[test]
    fn append_to_store_mined_from_zero_rows() {
        let full = pubs(5, 8, 2);
        let cfg = lenient_cfg();
        let empty = Relation::new(full.schema().clone());
        let mut incr = IncrStore::build(empty, cfg.clone()).unwrap();
        assert_eq!(incr.store().len(), 0);
        let rows: Vec<Vec<Value>> = full.iter_rows().collect();
        incr.append(rows).unwrap();
        assert_stores_match(&incr.store(), &mine_store(&full, &cfg));
    }

    #[test]
    fn invalid_rows_rejected_before_any_state_change() {
        let rel = pubs(4, 6, 2);
        let mut incr = IncrStore::build(rel.clone(), lenient_cfg()).unwrap();
        let before = incr.store();
        let err = incr.append(vec![vec![Value::Int(1)]]).unwrap_err();
        assert!(matches!(err, IncrError::Arity { row: 0, actual: 1, .. }));
        let bad_type: Vec<Value> = vec![Value::Int(7), Value::Int(2000), Value::Int(1)]; // author must be Str
        let arity = rel.schema().arity();
        assert_eq!(bad_type.len(), arity);
        let err = incr.append(vec![bad_type]).unwrap_err();
        assert!(matches!(err, IncrError::ValueType { row: 0, col: 0 }));
        assert!(Arc::ptr_eq(&before, &incr.store()));
        assert_eq!(incr.relation().num_rows(), rel.num_rows());
    }

    #[test]
    fn fd_pruning_rejected() {
        let rel = pubs(3, 4, 1);
        let cfg = MiningConfig { fd_pruning: true, ..lenient_cfg() };
        assert!(matches!(IncrStore::build(rel, cfg), Err(IncrError::Config(_))));
    }

    #[test]
    fn durable_roundtrip_open_replays_wal() {
        let dir = std::env::temp_dir().join(format!("cape_incr_test_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let store_path = dir.join("pubs.cape");
        let full = pubs(6, 8, 2);
        let cfg = lenient_cfg();
        let n = full.num_rows();
        let cut = 3 * n / 4;
        let base = full.take(&(0..cut).collect::<Vec<_>>());

        // Mine the base, save its snapshot, then append durably.
        let mined = mine_store(&base, &cfg);
        save_snapshot(&store_path, base.schema(), &cfg, &mined).unwrap();
        let mut incr = IncrStore::open(&store_path, &base).unwrap();
        assert_eq!(incr.wal_seq(), Some(0));
        let rows: Vec<Vec<Value>> = (cut..n).map(|i| full.row(i)).collect();
        let report = incr.append(rows).unwrap();
        assert_eq!(report.wal_seq, Some(1));
        assert!(report.wal_bytes > 0);

        // A fresh open (fresh process in CI) replays the WAL and matches a
        // full mine of the combined relation.
        let reopened = IncrStore::open(&store_path, &base).unwrap();
        assert_eq!(reopened.wal_seq(), Some(1));
        assert_eq!(reopened.relation().num_rows(), n);
        assert_stores_match(&reopened.store(), &mine_store(&full, &cfg));

        // Compaction folds the delta into the snapshot and keeps replay
        // working (consolidated record, advanced watermark).
        let mut reopened = reopened;
        reopened.compact().unwrap();
        let after_compact = IncrStore::open(&store_path, &base).unwrap();
        assert_eq!(after_compact.wal_seq(), Some(1));
        assert_stores_match(&after_compact.store(), &mine_store(&full, &cfg));
        assert_eq!(after_compact.delta_rows().len(), n - cut);

        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn sustained_appends_keep_wal_bounded() {
        let dir = std::env::temp_dir().join(format!("cape_autocompact_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let store_path = dir.join("pubs.cape");
        let full = pubs(6, 8, 2);
        let cfg = lenient_cfg();
        let n = full.num_rows();
        let base = full.take(&(0..2).collect::<Vec<_>>());
        let mined = mine_store(&base, &cfg);
        save_snapshot(&store_path, base.schema(), &cfg, &mined).unwrap();

        let mut incr = IncrStore::open(&store_path, &base).unwrap();
        assert_eq!(incr.wal_compact_threshold(), Some(DEFAULT_WAL_COMPACT_BYTES));
        let threshold = 512u64;
        incr.set_wal_compact_threshold(Some(threshold));

        // One consolidated record holds the *entire* delta, so the lower
        // bound grows with it; what auto-compaction must bound is the
        // tail of per-append records on top of that.
        let mut compactions = 0usize;
        let mut max_excess = 0u64;
        for i in 2..n {
            let report = incr.append(vec![full.row(i)]).unwrap();
            if report.auto_compacted {
                compactions += 1;
            }
            let on_disk = std::fs::metadata(incr.wal_path().unwrap()).unwrap().len();
            assert_eq!(Some(on_disk), incr.wal_size(), "tracked size matches disk");
            let compacted_floor =
                wal::encode_header(0, 0).len() as u64 + compacted_record_len(incr.delta_rows());
            max_excess = max_excess.max(on_disk.saturating_sub(compacted_floor));
        }
        assert!(compactions >= 2, "sustained appends must compact repeatedly ({compactions})");
        // Between compactions the tail of loose records never exceeds the
        // threshold plus the one record that crossed it.
        assert!(
            max_excess <= threshold + 256,
            "WAL tail grew unbounded: {max_excess} bytes over the compacted floor"
        );

        // Everything still replays: a fresh open matches the full mine.
        let reopened = IncrStore::open(&store_path, &base).unwrap();
        assert_eq!(reopened.relation().num_rows(), n);
        assert_stores_match(&reopened.store(), &mine_store(&full, &cfg));

        // Disabling the threshold stops auto-compaction.
        let mut incr = reopened;
        incr.set_wal_compact_threshold(None);
        let before = std::fs::metadata(incr.wal_path().unwrap()).unwrap().len();
        let report = incr.append(vec![full.row(0)]).unwrap();
        assert!(!report.auto_compacted);
        assert!(std::fs::metadata(incr.wal_path().unwrap()).unwrap().len() > before);

        std::fs::remove_dir_all(&dir).ok();
    }

    /// Size of the consolidated record compaction would write for `rows`.
    fn compacted_record_len(rows: &[Vec<Value>]) -> u64 {
        if rows.is_empty() {
            0
        } else {
            wal::encode_record(1, rows).len() as u64
        }
    }

    #[test]
    fn in_memory_compact_is_typed_error() {
        let rel = pubs(3, 4, 1);
        let mut incr = IncrStore::build(rel, lenient_cfg()).unwrap();
        assert!(matches!(incr.compact(), Err(IncrError::NotDurable)));
    }
}
