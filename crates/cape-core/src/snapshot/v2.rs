//! Snapshot format **version 2**: v1's sections plus an aligned,
//! mmappable relation section, so a process can cold-start with the full
//! dataset *and* the mined patterns from one file — no CSV parse, no
//! per-cell decode.
//!
//! ## File format (version 2)
//!
//! ```text
//! ┌─ header ──────────────────────────────────────────────┐
//! │ magic    8B  b"CAPESNAP"                              │
//! │ version  u32 LE (2)                                   │
//! │ sections u32 LE (4)                                   │
//! ├─ section × 4: schema, config, patterns, relation ────┤
//! │ tag      u32 LE (SCHM / CONF / PATS / RELC)           │
//! │ len      u64 LE  payload length in bytes              │
//! │ payload  len bytes                                    │
//! │ crc32    u32 LE  CRC-32 (IEEE) of the payload         │
//! ├─ footer (commit marker) ─────────────────────────────┤
//! │ magic    8B  b"CAPECMIT"                              │
//! │ crc32    u32 LE  CRC-32 of every preceding byte       │
//! └───────────────────────────────────────────────────────┘
//! ```
//!
//! The `RELC` payload stores each column's slabs in their exact
//! in-memory layout, padded so every `i64`/`f64` slab begins at a file
//! offset divisible by 8 (and every `u32` code slab at one divisible
//! by 4). Because [`MapRegion`](cape_data::mmap::MapRegion) hands out
//! 8-byte-aligned bases, an aligned *file* offset is an aligned *memory*
//! address, and the loader can alias `Slab::Mapped` views straight into
//! the mapping:
//!
//! ```text
//! u64 row count · u32 column count · per column:
//!   u8 kind (0=Int, 1=Float, 2=Str, 3=Mixed)
//!   Int/Float: u32 null-word count · pad8 · null words (u64 LE each)
//!              · pad8 · rows × i64/f64 LE        ← mapped zero-copy
//!   Str:       u32 dict size · dict strings (u32-len-prefixed UTF-8)
//!              · u32 null-word count · pad8 · null words
//!              · pad4 · rows × u32 codes LE      ← mapped zero-copy
//!   Mixed:     rows × Value (v1 value codec)     ← decoded owned
//! ```
//!
//! `pad8`/`pad4` are zero bytes inserted until the *absolute file
//! offset* reaches the alignment; the reader recomputes the identical
//! offsets, so padding needs no length fields.
//!
//! ## mmap safety argument (DESIGN.md §17)
//!
//! * The mapping is **read-only and private**; mutation of a mapped slab
//!   copy-on-write promotes to an owned `Vec` first.
//! * Every section's CRC — and the whole-file CRC — is validated against
//!   the mapped bytes **before** any typed view is created, so a torn or
//!   corrupted file is rejected as a typed [`SnapshotError`], never read
//!   as slab data.
//! * Typed views are only created at offsets whose alignment is
//!   recomputed and checked at load time.
//! * Dictionary codes are range-checked against the decoded dictionary
//!   before the column is assembled, so a crafted code can never index
//!   out of bounds.
//! * Writers publish via atomic rename ([`super::write_atomic`]); a live
//!   mapping keeps seeing the old inode.
//!
//! Numeric slabs are stored little-endian and aliased directly on
//! little-endian targets (every supported platform); big-endian targets
//! fall back to an owned byte-swapped decode.

use super::codec::{self, ByteReader, ByteWriter};
use super::{
    decode_config_section, decode_patterns_section, decode_schema_section, rebuild_store,
    validate_schema, write_atomic, SnapshotContents, SnapshotError, FOOTER_MAGIC, MAGIC,
    TAG_CONFIG, TAG_PATTERNS, TAG_SCHEMA,
};
use crate::config::MiningConfig;
use crate::store::PatternStore;
use cape_data::column::{Column, Dict, FloatColumn, IntColumn, NullBitmap, Slab, StrColumn};
use cape_data::mmap::MapRegion;
use cape_data::{Relation, Schema};
use std::ops::Range;
use std::path::Path;
use std::sync::Arc;

/// The v2 format version (v1 sections + mmappable relation slabs).
pub const FORMAT_VERSION_V2: u32 = 2;

pub(crate) const TAG_RELATION: u32 = u32::from_le_bytes(*b"RELC");

/// `(tag, display name)` for the four v2 sections, in file order.
const SECTIONS_V2: [(u32, &str); 4] = [
    (TAG_SCHEMA, "schema"),
    (TAG_CONFIG, "config"),
    (TAG_PATTERNS, "patterns"),
    (TAG_RELATION, "relation"),
];

const KIND_INT: u8 = 0;
const KIND_FLOAT: u8 = 1;
const KIND_STR: u8 = 2;
const KIND_MIXED: u8 = 3;

/// Everything a v2 snapshot contains: the v1 contents plus the relation
/// itself, reconstructed from the file's own slabs (zero-copy on the
/// mmap path).
#[derive(Debug)]
pub struct SnapshotV2Contents {
    /// The relation schema recorded at save time.
    pub schema: Schema,
    /// The mining configuration the store was produced with.
    pub config: MiningConfig,
    /// The reloaded pattern store, with group data recomputed from the
    /// embedded relation.
    pub store: PatternStore,
    /// The embedded relation. On the [`load_snapshot_v2`] path its
    /// numeric and code slabs alias the mapped file.
    pub relation: Relation,
}

// --- encoding --------------------------------------------------------------

/// A byte writer that knows its absolute position in the final file, so
/// it can pad slabs to absolute 8-/4-byte alignment.
struct RelcWriter {
    w: ByteWriter,
    abs0: usize,
}

impl RelcWriter {
    fn abs(&self) -> usize {
        self.abs0 + self.w.len()
    }

    fn pad_to(&mut self, align: usize) {
        while !self.abs().is_multiple_of(align) {
            self.w.u8(0);
        }
    }
}

#[cfg(target_endian = "little")]
fn write_pod_slice<T: Copy>(w: &mut ByteWriter, xs: &[T]) {
    // SAFETY: T is a plain-old-data scalar (u64/i64/f64/u32) and the
    // target is little-endian, so the in-memory bytes are the wire bytes.
    let bytes =
        unsafe { std::slice::from_raw_parts(xs.as_ptr() as *const u8, std::mem::size_of_val(xs)) };
    w.bytes(bytes);
}

fn write_words(w: &mut ByteWriter, xs: &[u64]) {
    #[cfg(target_endian = "little")]
    write_pod_slice(w, xs);
    #[cfg(not(target_endian = "little"))]
    for &x in xs {
        w.u64(x);
    }
}

fn write_i64s(w: &mut ByteWriter, xs: &[i64]) {
    #[cfg(target_endian = "little")]
    write_pod_slice(w, xs);
    #[cfg(not(target_endian = "little"))]
    for &x in xs {
        w.i64(x);
    }
}

fn write_f64s(w: &mut ByteWriter, xs: &[f64]) {
    // Slab floats are already canonical (one NaN bit pattern, no -0.0);
    // raw bits are the canonical wire encoding.
    #[cfg(target_endian = "little")]
    write_pod_slice(w, xs);
    #[cfg(not(target_endian = "little"))]
    for &x in xs {
        w.u64(x.to_bits());
    }
}

fn write_u32s(w: &mut ByteWriter, xs: &[u32]) {
    #[cfg(target_endian = "little")]
    write_pod_slice(w, xs);
    #[cfg(not(target_endian = "little"))]
    for &x in xs {
        w.u32(x);
    }
}

fn write_nulls(rw: &mut RelcWriter, nulls: &NullBitmap) {
    rw.w.u32(nulls.words().len() as u32);
    rw.pad_to(8);
    write_words(&mut rw.w, nulls.words());
}

/// Encode the `RELC` payload. `abs0` is the absolute file offset the
/// payload will start at (needed for alignment padding).
fn encode_relation_section(rel: &Relation, abs0: usize) -> Vec<u8> {
    let mut rw = RelcWriter { w: ByteWriter::new(), abs0 };
    rw.w.u64(rel.num_rows() as u64);
    rw.w.u32(rel.schema().arity() as u32);
    for c in 0..rel.schema().arity() {
        match rel.col(c) {
            Column::Int(ic) => {
                rw.w.u8(KIND_INT);
                write_nulls(&mut rw, &ic.nulls);
                rw.pad_to(8);
                write_i64s(&mut rw.w, &ic.data);
            }
            Column::Float(fc) => {
                rw.w.u8(KIND_FLOAT);
                write_nulls(&mut rw, &fc.nulls);
                rw.pad_to(8);
                write_f64s(&mut rw.w, &fc.data);
            }
            Column::Str(sc) => {
                rw.w.u8(KIND_STR);
                rw.w.u32(sc.dict.len() as u32);
                for s in sc.dict.values() {
                    rw.w.str(s);
                }
                write_nulls(&mut rw, &sc.nulls);
                rw.pad_to(4);
                write_u32s(&mut rw.w, &sc.codes);
            }
            Column::Mixed(values) => {
                rw.w.u8(KIND_MIXED);
                for v in values {
                    codec::write_value(&mut rw.w, v);
                }
            }
        }
    }
    rw.w.into_bytes()
}

/// Encode a v2 snapshot to bytes (the pure half of [`save_snapshot_v2`]).
///
/// Two-pass: the fixed-size sections are encoded first so the relation
/// section's absolute payload offset — and therefore its alignment
/// padding — is known exactly.
pub fn encode_snapshot_v2(
    schema: &Schema,
    cfg: &MiningConfig,
    store: &PatternStore,
    rel: &Relation,
) -> Vec<u8> {
    let head = [
        super::encode_schema_section(schema),
        super::encode_config_section(cfg),
        super::encode_patterns_section(store),
    ];
    // header (16) + three framed sections (12 + len + 4 each) + RELC
    // frame prefix (12) = absolute offset of the RELC payload.
    let relc_abs0 = 16 + head.iter().map(|p| 12 + p.len() + 4).sum::<usize>() + 12;
    let relc = encode_relation_section(rel, relc_abs0);

    let mut w = ByteWriter::new();
    w.bytes(MAGIC);
    w.u32(FORMAT_VERSION_V2);
    w.u32(SECTIONS_V2.len() as u32);
    for ((tag, _), payload) in SECTIONS_V2.iter().zip(head.iter().chain([&relc])) {
        w.u32(*tag);
        w.u64(payload.len() as u64);
        w.bytes(payload);
        w.u32(codec::crc32(payload));
    }
    let mut out = w.into_bytes();
    debug_assert_eq!(out.len(), relc_abs0 + relc.len() + 4);
    let body_crc = codec::crc32(&out);
    out.extend_from_slice(FOOTER_MAGIC);
    out.extend_from_slice(&body_crc.to_le_bytes());
    out
}

/// Atomically write a v2 snapshot (same durability protocol as
/// [`super::save_snapshot`]). Returns the byte size written. Counts
/// `store.v2.save_ns` and `store.v2.bytes`.
pub fn save_snapshot_v2(
    path: impl AsRef<Path>,
    schema: &Schema,
    cfg: &MiningConfig,
    store: &PatternStore,
    rel: &Relation,
) -> Result<u64, SnapshotError> {
    let t0 = std::time::Instant::now();
    let bytes = encode_snapshot_v2(schema, cfg, store, rel);
    write_atomic(path.as_ref(), &bytes)?;
    cape_obs::observe_ns("store.v2.save_ns", t0.elapsed().as_nanos() as u64);
    cape_obs::counter_add("store.v2.bytes", bytes.len() as u64);
    Ok(bytes.len() as u64)
}

// --- structural parse ------------------------------------------------------

/// Magic/version/section framing + CRC validation for a v2 file.
/// Returns each section payload's byte range within `bytes`.
fn parse_v2_sections(bytes: &[u8]) -> Result<Vec<Range<usize>>, SnapshotError> {
    if bytes.len() < MAGIC.len() {
        return if *bytes == MAGIC[..bytes.len()] {
            Err(SnapshotError::Truncated)
        } else {
            Err(SnapshotError::BadMagic)
        };
    }
    let mut r = ByteReader::new(bytes);
    if r.take(8).expect("checked above") != MAGIC {
        return Err(SnapshotError::BadMagic);
    }
    let version = r.u32().map_err(|_| SnapshotError::Truncated)?;
    if version != FORMAT_VERSION_V2 {
        return Err(SnapshotError::VersionUnsupported { found: version });
    }
    let n_sections = r.u32().map_err(|_| SnapshotError::Truncated)?;
    if n_sections as usize != SECTIONS_V2.len() {
        return Err(SnapshotError::SectionCorrupt { section: "header" });
    }
    let mut ranges = Vec::with_capacity(SECTIONS_V2.len());
    for (expected_tag, name) in SECTIONS_V2 {
        let tag = r.u32().map_err(|_| SnapshotError::Truncated)?;
        if tag != expected_tag {
            return Err(SnapshotError::SectionCorrupt { section: name });
        }
        let len = r.u64().map_err(|_| SnapshotError::Truncated)?;
        let len = usize::try_from(len).map_err(|_| SnapshotError::Truncated)?;
        if len > r.remaining() {
            return Err(SnapshotError::Truncated);
        }
        let start = bytes.len() - r.remaining();
        let payload = r.take(len).expect("length checked");
        let crc = r.u32().map_err(|_| SnapshotError::Truncated)?;
        if codec::crc32(payload) != crc {
            return Err(SnapshotError::SectionCorrupt { section: name });
        }
        ranges.push(start..start + len);
    }
    let body_end = bytes.len() - r.remaining();
    let footer = r.take(12).map_err(|_| SnapshotError::Truncated)?;
    if &footer[..8] != FOOTER_MAGIC {
        return Err(SnapshotError::Truncated);
    }
    if !r.is_empty() {
        return Err(SnapshotError::SectionCorrupt { section: "footer" });
    }
    let file_crc = u32::from_le_bytes(footer[8..12].try_into().expect("4 bytes"));
    if codec::crc32(&bytes[..body_end]) != file_crc {
        return Err(SnapshotError::SectionCorrupt { section: "footer" });
    }
    Ok(ranges)
}

// --- relation decode -------------------------------------------------------

fn relc_err() -> SnapshotError {
    SnapshotError::SectionCorrupt { section: "relation" }
}

fn read_words_le(bytes: &[u8]) -> Vec<u64> {
    bytes.chunks_exact(8).map(|c| u64::from_le_bytes(c.try_into().expect("8 bytes"))).collect()
}

/// Skip padding until the absolute offset is `align`-divisible, then
/// take `len` bytes, returning them plus their absolute start offset.
fn take_aligned<'a>(
    r: &mut ByteReader<'a>,
    payload_len: usize,
    abs0: usize,
    align: usize,
    len: usize,
) -> Result<(&'a [u8], usize), SnapshotError> {
    let abs = abs0 + (payload_len - r.remaining());
    let pad = (align - abs % align) % align;
    r.take(pad).map_err(|_| relc_err())?;
    let start = abs0 + (payload_len - r.remaining());
    debug_assert_eq!(start % align, 0);
    let bytes = r.take(len).map_err(|_| relc_err())?;
    Ok((bytes, start))
}

/// Build a numeric slab over `bytes` at absolute offset `abs`: a
/// zero-copy view into `region` when available (little-endian targets),
/// an owned decode otherwise.
fn numeric_slab<T: Copy>(
    bytes: &[u8],
    abs: usize,
    rows: usize,
    region: Option<&Arc<MapRegion>>,
) -> Slab<T> {
    debug_assert_eq!(bytes.len(), rows * std::mem::size_of::<T>());
    #[cfg(target_endian = "little")]
    if let Some(region) = region {
        if rows > 0 {
            debug_assert_eq!(abs % std::mem::align_of::<T>(), 0);
            // SAFETY: `abs` lies within the region (the ByteReader
            // bounds-checked the take), the offset is aligned for T, the
            // region is immutable and outlives the slab via the Arc, and
            // T is a plain scalar for which any bit pattern is valid.
            let ptr = unsafe { region.base_ptr().add(abs) as *const T };
            return Slab::Mapped { ptr, len: rows, region: Arc::clone(region) };
        }
    }
    let _ = abs;
    // Owned fallback (big-endian, heapless read, or zero rows).
    let elem = std::mem::size_of::<T>();
    let mut out: Vec<T> = Vec::with_capacity(rows);
    for i in 0..rows {
        let chunk = &bytes[i * elem..(i + 1) * elem];
        // SAFETY: T is u32/i64/f64; reading `elem` bytes into it is a
        // plain (little-endian) bit copy.
        let mut v = std::mem::MaybeUninit::<T>::uninit();
        unsafe {
            let src = chunk.as_ptr();
            #[cfg(target_endian = "little")]
            std::ptr::copy_nonoverlapping(src, v.as_mut_ptr() as *mut u8, elem);
            #[cfg(not(target_endian = "little"))]
            {
                let dst = v.as_mut_ptr() as *mut u8;
                for b in 0..elem {
                    *dst.add(b) = *src.add(elem - 1 - b);
                }
            }
            out.push(v.assume_init());
        }
    }
    Slab::Owned(out)
}

/// Decode the `RELC` payload into columns. `abs0` is the payload's byte
/// offset within the file; `region` enables zero-copy slab views.
fn decode_relation_section(
    payload: &[u8],
    abs0: usize,
    schema: &Schema,
    region: Option<&Arc<MapRegion>>,
) -> Result<Relation, SnapshotError> {
    let mut r = ByteReader::new(payload);
    let rows = r.usize().map_err(|_| relc_err())?;
    let ncols = r.u32().map_err(|_| relc_err())? as usize;
    if ncols != schema.arity() {
        return Err(relc_err());
    }
    // Guard counts against the bytes that could possibly back them.
    if rows > payload.len().saturating_mul(64) {
        return Err(relc_err());
    }
    let word_count = rows.div_ceil(64);
    let mut columns = Vec::with_capacity(ncols);
    for _ in 0..ncols {
        let kind = r.u8().map_err(|_| relc_err())?;
        let col = match kind {
            KIND_INT | KIND_FLOAT => {
                let wc = r.u32().map_err(|_| relc_err())? as usize;
                if wc != word_count {
                    return Err(relc_err());
                }
                let (word_bytes, _) = take_aligned(&mut r, payload.len(), abs0, 8, wc * 8)?;
                let nulls = NullBitmap::from_words(read_words_le(word_bytes), rows);
                let (data, abs) = take_aligned(&mut r, payload.len(), abs0, 8, rows * 8)?;
                if kind == KIND_INT {
                    Column::Int(IntColumn { data: numeric_slab(data, abs, rows, region), nulls })
                } else {
                    Column::Float(FloatColumn {
                        data: numeric_slab(data, abs, rows, region),
                        nulls,
                    })
                }
            }
            KIND_STR => {
                let dn = r.count(4).map_err(|_| relc_err())?;
                let mut values: Vec<Arc<str>> = Vec::with_capacity(dn);
                for _ in 0..dn {
                    values.push(Arc::from(r.str().map_err(|_| relc_err())?));
                }
                let dict = Dict::from_values(values);
                let wc = r.u32().map_err(|_| relc_err())? as usize;
                if wc != word_count {
                    return Err(relc_err());
                }
                let (word_bytes, _) = take_aligned(&mut r, payload.len(), abs0, 8, wc * 8)?;
                let nulls = NullBitmap::from_words(read_words_le(word_bytes), rows);
                let (code_bytes, abs) = take_aligned(&mut r, payload.len(), abs0, 4, rows * 4)?;
                let codes: Slab<u32> = numeric_slab(code_bytes, abs, rows, region);
                // Range-check every non-NULL code before the dictionary
                // can be indexed with it (NULL rows hold placeholder 0,
                // which may exceed an empty dictionary).
                let dict_len = dict.len() as u32;
                for (i, &c) in codes.as_slice().iter().enumerate() {
                    if c >= dict_len && !nulls.get(i) {
                        return Err(relc_err());
                    }
                }
                Column::Str(StrColumn { codes, dict, nulls })
            }
            KIND_MIXED => {
                let mut values = Vec::with_capacity(rows.min(payload.len()));
                for _ in 0..rows {
                    values.push(codec::read_value(&mut r).map_err(|_| relc_err())?);
                }
                Column::Mixed(values)
            }
            _ => return Err(relc_err()),
        };
        if col.len() != rows {
            return Err(relc_err());
        }
        columns.push(col);
    }
    if !r.is_empty() {
        return Err(relc_err());
    }
    Relation::from_columns(schema.clone(), columns).map_err(|_| relc_err())
}

// --- loading ---------------------------------------------------------------

fn read_v2_inner(
    bytes: &[u8],
    region: Option<&Arc<MapRegion>>,
) -> Result<SnapshotV2Contents, SnapshotError> {
    let ranges = parse_v2_sections(bytes)?;
    let (_, schema) = decode_schema_section(&bytes[ranges[0].clone()])?;
    let config = decode_config_section(&bytes[ranges[1].clone()])?;
    let relc = ranges[3].clone();
    let relation = decode_relation_section(&bytes[relc.clone()], relc.start, &schema, region)?;
    let pendings = decode_patterns_section(&bytes[ranges[2].clone()])?;
    let store = rebuild_store(pendings, &relation)?;
    Ok(SnapshotV2Contents { schema, config, store, relation })
}

/// Decode a v2 snapshot from a plain byte slice (owned slabs — no
/// mapping to alias). The mmap path is [`load_snapshot_v2`].
pub fn read_snapshot_v2(bytes: &[u8]) -> Result<SnapshotV2Contents, SnapshotError> {
    read_v2_inner(bytes, None)
}

/// Map a v2 snapshot file and reconstruct its contents with zero-copy
/// relation slabs: CRCs are validated against the mapped bytes, then
/// numeric and dictionary-code slabs alias the mapping directly. Counts
/// `store.v2.load_ns`, `store.v2.mapped_bytes`, and
/// `store.corrupt_rejects` on rejection.
pub fn load_snapshot_v2(path: impl AsRef<Path>) -> Result<SnapshotV2Contents, SnapshotError> {
    let t0 = std::time::Instant::now();
    let region =
        MapRegion::open(path.as_ref()).map_err(|e| SnapshotError::Io(format!("map: {e}")))?;
    let out = read_v2_inner(region.bytes(), Some(&region));
    match &out {
        Ok(c) => {
            cape_obs::observe_ns("store.v2.load_ns", t0.elapsed().as_nanos() as u64);
            cape_obs::counter_add("store.v2.mapped_bytes", region.len() as u64);
            cape_obs::counter_add("store.v2.relation_rows", c.relation.num_rows() as u64);
        }
        Err(SnapshotError::Io(_)) => {}
        Err(_) => cape_obs::counter_add("store.corrupt_rejects", 1),
    }
    out
}

/// Map a v2 snapshot and reconstruct **only** the relation (schema +
/// slabs), skipping pattern decode and group-data rebuild. This is the
/// measured cold-start primitive: its cost is framing + CRC + O(dict)
/// string decode, independent of row count materialization.
pub fn load_relation_v2(path: impl AsRef<Path>) -> Result<(Schema, Relation), SnapshotError> {
    let region =
        MapRegion::open(path.as_ref()).map_err(|e| SnapshotError::Io(format!("map: {e}")))?;
    let bytes = region.bytes();
    let ranges = parse_v2_sections(bytes)?;
    let (_, schema) = decode_schema_section(&bytes[ranges[0].clone()])?;
    let relc = ranges[3].clone();
    let relation =
        decode_relation_section(&bytes[relc.clone()], relc.start, &schema, Some(&region))?;
    Ok((schema, relation))
}

/// Peek a snapshot file's declared format version (magic-checked).
pub fn snapshot_version(path: impl AsRef<Path>) -> Result<u32, SnapshotError> {
    use std::io::Read;
    let mut f =
        std::fs::File::open(path.as_ref()).map_err(|e| SnapshotError::Io(format!("open: {e}")))?;
    let mut head = [0u8; 12];
    f.read_exact(&mut head).map_err(|_| SnapshotError::Truncated)?;
    if &head[..8] != MAGIC {
        return Err(SnapshotError::BadMagic);
    }
    Ok(u32::from_le_bytes(head[8..12].try_into().expect("4 bytes")))
}

/// Load a snapshot of either version against a **live** relation:
/// v1 files go through [`super::load_snapshot`] unchanged; v2 files are
/// validated against `rel`'s schema and their store is rebuilt from
/// `rel` (the caller's relation is authoritative — it may have grown
/// past the snapshot). The embedded v2 relation is *not* decoded here.
pub fn load_snapshot_auto(
    path: impl AsRef<Path>,
    rel: &Relation,
) -> Result<SnapshotContents, SnapshotError> {
    let path = path.as_ref();
    match snapshot_version(path)? {
        super::FORMAT_VERSION => super::load_snapshot(path, rel),
        FORMAT_VERSION_V2 => {
            let region =
                MapRegion::open(path).map_err(|e| SnapshotError::Io(format!("map: {e}")))?;
            let bytes = region.bytes();
            let ranges = parse_v2_sections(bytes)?;
            let (_, schema) = decode_schema_section(&bytes[ranges[0].clone()])?;
            validate_schema(&schema, rel.schema())?;
            let config = decode_config_section(&bytes[ranges[1].clone()])?;
            let pendings = decode_patterns_section(&bytes[ranges[2].clone()])?;
            let store = rebuild_store(pendings, rel)?;
            Ok(SnapshotContents { schema, config, store })
        }
        found => Err(SnapshotError::VersionUnsupported { found }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Thresholds;
    use crate::mining::{Miner, ShareGrpMiner};
    use cape_data::{Value, ValueType};

    fn mined() -> (Relation, MiningConfig, PatternStore) {
        let schema = Schema::new([
            ("author", ValueType::Str),
            ("year", ValueType::Int),
            ("score", ValueType::Float),
        ])
        .unwrap();
        let mut rel = Relation::new(schema);
        for a in 0..4 {
            for y in 0..6 {
                for p in 0..3 {
                    rel.push_row(vec![
                        Value::str(format!("auth {a}")),
                        Value::Int(2000 + y),
                        if (a + y + p) % 5 == 0 {
                            Value::Null
                        } else {
                            Value::Float(0.5 * (p as f64) + a as f64)
                        },
                    ])
                    .unwrap();
                }
            }
        }
        let cfg = MiningConfig {
            thresholds: Thresholds::new(0.2, 3, 0.4, 2),
            psi: 3,
            exclude: vec![2],
            ..MiningConfig::default()
        };
        let store = ShareGrpMiner.mine(&rel, &cfg).unwrap().store;
        (rel, cfg, store)
    }

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("cape-v2-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    #[test]
    fn v2_roundtrip_owned() {
        let (rel, cfg, store) = mined();
        assert!(!store.is_empty());
        let bytes = encode_snapshot_v2(rel.schema(), &cfg, &store, &rel);
        let loaded = read_snapshot_v2(&bytes).unwrap();
        assert_eq!(loaded.relation, rel);
        assert_eq!(loaded.store.len(), store.len());
        assert_eq!(loaded.config.thresholds, cfg.thresholds);
        for ((_, a), (_, b)) in store.iter().zip(loaded.store.iter()) {
            assert_eq!(a.arp, b.arp);
            assert_eq!(a.locals, b.locals);
        }
    }

    #[test]
    fn v2_encoding_is_deterministic() {
        let (rel, cfg, store) = mined();
        let a = encode_snapshot_v2(rel.schema(), &cfg, &store, &rel);
        let b = encode_snapshot_v2(rel.schema(), &cfg, &store, &rel);
        assert_eq!(a, b);
    }

    #[test]
    fn v2_mmap_load_aliases_slabs() {
        let (rel, cfg, store) = mined();
        let path = tmp("mapped.cape");
        save_snapshot_v2(&path, rel.schema(), &cfg, &store, &rel).unwrap();
        let loaded = load_snapshot_v2(&path).unwrap();
        assert_eq!(loaded.relation, rel);
        // Typed slabs alias the mapping (zero decode).
        match loaded.relation.col(1) {
            Column::Int(c) => assert!(c.data.is_mapped(), "int slab must alias the map"),
            other => panic!("expected int column, got {other:?}"),
        }
        match loaded.relation.col(2) {
            Column::Float(c) => assert!(c.data.is_mapped(), "float slab must alias the map"),
            other => panic!("expected float column, got {other:?}"),
        }
        match loaded.relation.col(0) {
            Column::Str(c) => assert!(c.codes.is_mapped(), "code slab must alias the map"),
            other => panic!("expected str column, got {other:?}"),
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn mapped_relation_mutation_is_copy_on_write() {
        let (rel, cfg, store) = mined();
        let path = tmp("cow.cape");
        save_snapshot_v2(&path, rel.schema(), &cfg, &store, &rel).unwrap();
        let mut loaded = load_snapshot_v2(&path).unwrap();
        let n = loaded.relation.num_rows();
        loaded
            .relation
            .push_row(vec![Value::str("new author"), Value::Int(2099), Value::Float(1.5)])
            .unwrap();
        assert_eq!(loaded.relation.num_rows(), n + 1);
        assert_eq!(loaded.relation.value(n, 1), Value::Int(2099));
        match loaded.relation.col(1) {
            Column::Int(c) => assert!(!c.data.is_mapped(), "mutation must promote to owned"),
            other => panic!("expected int column, got {other:?}"),
        }
        // The file on disk is untouched.
        let again = load_snapshot_v2(&path).unwrap();
        assert_eq!(again.relation.num_rows(), n);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn v2_rejected_by_v1_reader_with_typed_error() {
        let (rel, cfg, store) = mined();
        let bytes = encode_snapshot_v2(rel.schema(), &cfg, &store, &rel);
        match super::super::read_snapshot(&bytes, &rel) {
            Err(SnapshotError::VersionUnsupported { found: 2 }) => {}
            other => panic!("expected VersionUnsupported {{ found: 2 }}, got {other:?}"),
        }
    }

    #[test]
    fn v1_rejected_by_v2_reader_with_typed_error() {
        let (rel, cfg, store) = mined();
        let bytes = super::super::encode_snapshot(rel.schema(), &cfg, &store);
        match read_snapshot_v2(&bytes) {
            Err(SnapshotError::VersionUnsupported { found: 1 }) => {}
            other => panic!("expected VersionUnsupported {{ found: 1 }}, got {other:?}"),
        }
    }

    #[test]
    fn auto_loader_reads_both_versions() {
        let (rel, cfg, store) = mined();
        let p1 = tmp("auto_v1.cape");
        let p2 = tmp("auto_v2.cape");
        super::super::save_snapshot(&p1, rel.schema(), &cfg, &store).unwrap();
        save_snapshot_v2(&p2, rel.schema(), &cfg, &store, &rel).unwrap();
        assert_eq!(snapshot_version(&p1).unwrap(), 1);
        assert_eq!(snapshot_version(&p2).unwrap(), 2);
        let a = load_snapshot_auto(&p1, &rel).unwrap();
        let b = load_snapshot_auto(&p2, &rel).unwrap();
        assert_eq!(a.store.len(), store.len());
        assert_eq!(b.store.len(), store.len());
        for ((_, x), (_, y)) in a.store.iter().zip(b.store.iter()) {
            assert_eq!(x.arp, y.arp);
            assert_eq!(x.locals, y.locals);
        }
        std::fs::remove_file(&p1).ok();
        std::fs::remove_file(&p2).ok();
    }

    #[test]
    fn corrupt_relation_section_is_typed() {
        let (rel, cfg, store) = mined();
        let mut bytes = encode_snapshot_v2(rel.schema(), &cfg, &store, &rel);
        // Flip a byte near the end of the RELC payload (before footer).
        let i = bytes.len() - 20;
        bytes[i] ^= 0xFF;
        match read_snapshot_v2(&bytes) {
            Err(SnapshotError::SectionCorrupt { .. }) => {}
            other => panic!("expected SectionCorrupt, got {other:?}"),
        }
    }

    #[test]
    fn truncated_v2_is_typed() {
        let (rel, cfg, store) = mined();
        let bytes = encode_snapshot_v2(rel.schema(), &cfg, &store, &rel);
        for cut in [bytes.len() - 1, bytes.len() - 13, 20, 4] {
            let out = read_snapshot_v2(&bytes[..cut]);
            assert!(out.is_err(), "cut at {cut} must fail");
        }
    }

    #[test]
    fn zero_row_relation_roundtrips() {
        let schema = Schema::new([("a", ValueType::Str), ("x", ValueType::Float)]).unwrap();
        let rel = Relation::new(schema);
        let cfg = MiningConfig::default();
        let store = PatternStore::new();
        let bytes = encode_snapshot_v2(rel.schema(), &cfg, &store, &rel);
        let loaded = read_snapshot_v2(&bytes).unwrap();
        assert_eq!(loaded.relation.num_rows(), 0);
        assert_eq!(loaded.relation, rel);
        let path = tmp("zero.cape");
        save_snapshot_v2(&path, rel.schema(), &cfg, &store, &rel).unwrap();
        assert_eq!(load_snapshot_v2(&path).unwrap().relation.num_rows(), 0);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn all_null_and_mixed_columns_roundtrip() {
        let schema =
            Schema::new([("s", ValueType::Str), ("n", ValueType::Int), ("m", ValueType::Int)])
                .unwrap();
        let mut rel = Relation::new(schema);
        rel.push_row(vec![Value::Null, Value::Null, Value::Int(1)]).unwrap();
        rel.push_row(vec![Value::Null, Value::Null, Value::str("degrade me")]).unwrap();
        rel.push_row(vec![Value::Null, Value::Null, Value::Float(2.5)]).unwrap();
        assert!(!rel.fully_typed(), "column m must have degraded to Mixed");
        let cfg = MiningConfig::default();
        let store = PatternStore::new();
        let path = tmp("nulls.cape");
        save_snapshot_v2(&path, rel.schema(), &cfg, &store, &rel).unwrap();
        let loaded = load_snapshot_v2(&path).unwrap();
        assert_eq!(loaded.relation, rel);
        assert!(loaded.relation.is_null(0, 0) && loaded.relation.is_null(2, 1));
        assert_eq!(loaded.relation.value(1, 2), Value::str("degrade me"));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn nan_and_negative_zero_survive_v2() {
        let schema = Schema::new([("x", ValueType::Float)]).unwrap();
        let mut rel = Relation::new(schema);
        rel.push_row(vec![Value::Float(f64::NAN)]).unwrap();
        rel.push_row(vec![Value::Float(-0.0)]).unwrap();
        rel.push_row(vec![Value::Float(-1.25)]).unwrap();
        let bytes =
            encode_snapshot_v2(rel.schema(), &MiningConfig::default(), &PatternStore::new(), &rel);
        let loaded = read_snapshot_v2(&bytes).unwrap();
        match loaded.relation.col(0) {
            Column::Float(c) => {
                assert_eq!(c.data[0].to_bits(), f64::NAN.to_bits(), "canonical NaN");
                assert_eq!(c.data[1].to_bits(), 0.0f64.to_bits(), "-0.0 canonicalized");
                assert_eq!(c.data[2], -1.25);
            }
            other => panic!("expected float column, got {other:?}"),
        }
        assert_eq!(loaded.relation, rel);
    }

    #[test]
    fn relation_only_load_skips_patterns() {
        let (rel, cfg, store) = mined();
        let path = tmp("relonly.cape");
        save_snapshot_v2(&path, rel.schema(), &cfg, &store, &rel).unwrap();
        let (schema, relation) = load_relation_v2(&path).unwrap();
        assert_eq!(&schema, rel.schema());
        assert_eq!(relation, rel);
        std::fs::remove_file(&path).ok();
    }
}
