//! Byte-level wire codec for the snapshot format: little-endian integer
//! primitives, length-prefixed strings, CRC-32, and the [`Value`] /
//! [`Model`] encoders shared by every section.
//!
//! Readers are *adversarial-input safe*: every read is bounds-checked
//! against the remaining input and every count prefix is validated
//! against the bytes that could possibly back it before anything is
//! allocated, so a corrupted length field can never trigger an
//! out-of-memory allocation or an out-of-bounds slice.

use cape_data::{AggFunc, Value, ValueType};
use cape_regress::{Model, ModelType};

/// IEEE CRC-32 (polynomial `0xEDB88320`), table-driven.
const fn crc_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 { 0xEDB8_8320 ^ (c >> 1) } else { c >> 1 };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

static CRC_TABLE: [u32; 256] = crc_table();

/// CRC-32 of a byte slice (IEEE, as used by zip/png).
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in bytes {
        c = CRC_TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

/// Canonical bit pattern of an `f64` for serialization: every NaN
/// collapses to the one canonical quiet NaN and `-0.0` collapses to
/// `+0.0`, mirroring the canonicalization [`Value`] applies for hashing
/// and equality. Byte-identical snapshots for semantically equal stores.
pub fn canonical_f64_bits(x: f64) -> u64 {
    if x.is_nan() {
        f64::NAN.to_bits()
    } else if x == 0.0 {
        0
    } else {
        x.to_bits()
    }
}

/// A decoding failure inside a section payload. The snapshot layer maps
/// this to `SnapshotError::SectionCorrupt` with the section's name.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WireError {
    /// The input ended before the value was complete.
    Short,
    /// A tag, count, or string was structurally invalid.
    Invalid(&'static str),
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Short => f.write_str("input too short"),
            WireError::Invalid(what) => write!(f, "invalid {what}"),
        }
    }
}

/// Growable little-endian byte sink.
#[derive(Debug, Default)]
pub struct ByteWriter {
    buf: Vec<u8>,
}

impl ByteWriter {
    /// Empty writer.
    pub fn new() -> Self {
        ByteWriter::default()
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Finish and take the buffer.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Append a single byte.
    pub fn u8(&mut self, x: u8) {
        self.buf.push(x);
    }

    /// Append a `u32`, little-endian.
    pub fn u32(&mut self, x: u32) {
        self.buf.extend_from_slice(&x.to_le_bytes());
    }

    /// Append a `u64`, little-endian.
    pub fn u64(&mut self, x: u64) {
        self.buf.extend_from_slice(&x.to_le_bytes());
    }

    /// Append an `i64`, little-endian.
    pub fn i64(&mut self, x: i64) {
        self.buf.extend_from_slice(&x.to_le_bytes());
    }

    /// Append an `f64` as its [canonical](canonical_f64_bits) bit pattern.
    pub fn f64(&mut self, x: f64) {
        self.u64(canonical_f64_bits(x));
    }

    /// Append raw bytes (no length prefix).
    pub fn bytes(&mut self, b: &[u8]) {
        self.buf.extend_from_slice(b);
    }

    /// Append a `u32`-length-prefixed UTF-8 string.
    pub fn str(&mut self, s: &str) {
        self.u32(s.len() as u32);
        self.buf.extend_from_slice(s.as_bytes());
    }
}

/// Bounds-checked little-endian byte source.
#[derive(Debug)]
pub struct ByteReader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    /// Read from a slice.
    pub fn new(bytes: &'a [u8]) -> Self {
        ByteReader { bytes, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.bytes.len() - self.pos
    }

    /// True when every byte has been consumed.
    pub fn is_empty(&self) -> bool {
        self.remaining() == 0
    }

    /// Take `n` raw bytes.
    pub fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        if self.remaining() < n {
            return Err(WireError::Short);
        }
        let out = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    /// Read one byte.
    pub fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }

    /// Read a little-endian `u32`.
    pub fn u32(&mut self) -> Result<u32, WireError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4 bytes")))
    }

    /// Read a little-endian `u64`.
    pub fn u64(&mut self) -> Result<u64, WireError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8 bytes")))
    }

    /// Read a little-endian `i64`.
    pub fn i64(&mut self) -> Result<i64, WireError> {
        Ok(i64::from_le_bytes(self.take(8)?.try_into().expect("8 bytes")))
    }

    /// Read an `f64` from its bit pattern.
    pub fn f64(&mut self) -> Result<f64, WireError> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// Read a `u64` that must fit a `usize` (counts, supports).
    pub fn usize(&mut self) -> Result<usize, WireError> {
        usize::try_from(self.u64()?).map_err(|_| WireError::Invalid("count"))
    }

    /// Read a `u32` element count and validate it against the remaining
    /// input: each element occupies at least `min_elem_bytes`, so a count
    /// larger than `remaining / min_elem_bytes` is corrupt — rejecting it
    /// here keeps a flipped length byte from requesting a giant
    /// allocation.
    pub fn count(&mut self, min_elem_bytes: usize) -> Result<usize, WireError> {
        let n = self.u32()? as usize;
        if n > self.remaining() / min_elem_bytes.max(1) {
            return Err(WireError::Invalid("count"));
        }
        Ok(n)
    }

    /// Read a `u32`-length-prefixed UTF-8 string.
    pub fn str(&mut self) -> Result<String, WireError> {
        let n = self.count(1)?;
        let bytes = self.take(n)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| WireError::Invalid("utf-8 string"))
    }
}

// --- domain codecs ---------------------------------------------------------

const VALUE_NULL: u8 = 0;
const VALUE_INT: u8 = 1;
const VALUE_FLOAT: u8 = 2;
const VALUE_STR: u8 = 3;

/// Encode one [`Value`].
pub fn write_value(w: &mut ByteWriter, v: &Value) {
    match v {
        Value::Null => w.u8(VALUE_NULL),
        Value::Int(i) => {
            w.u8(VALUE_INT);
            w.i64(*i);
        }
        Value::Float(f) => {
            w.u8(VALUE_FLOAT);
            w.f64(*f);
        }
        Value::Str(s) => {
            w.u8(VALUE_STR);
            w.str(s);
        }
    }
}

/// Decode one [`Value`].
pub fn read_value(r: &mut ByteReader) -> Result<Value, WireError> {
    match r.u8()? {
        VALUE_NULL => Ok(Value::Null),
        VALUE_INT => Ok(Value::Int(r.i64()?)),
        VALUE_FLOAT => Ok(Value::Float(r.f64()?)),
        VALUE_STR => Ok(Value::str(r.str()?)),
        _ => Err(WireError::Invalid("value tag")),
    }
}

/// Encode a [`ValueType`] as one byte.
pub fn write_value_type(w: &mut ByteWriter, ty: ValueType) {
    w.u8(match ty {
        ValueType::Int => 0,
        ValueType::Float => 1,
        ValueType::Str => 2,
    });
}

/// Decode a [`ValueType`].
pub fn read_value_type(r: &mut ByteReader) -> Result<ValueType, WireError> {
    match r.u8()? {
        0 => Ok(ValueType::Int),
        1 => Ok(ValueType::Float),
        2 => Ok(ValueType::Str),
        _ => Err(WireError::Invalid("value type tag")),
    }
}

/// Encode an [`AggFunc`] as one byte.
pub fn write_agg(w: &mut ByteWriter, agg: AggFunc) {
    w.u8(match agg {
        AggFunc::Count => 0,
        AggFunc::Sum => 1,
        AggFunc::Min => 2,
        AggFunc::Max => 3,
        AggFunc::Avg => 4,
    });
}

/// Decode an [`AggFunc`].
pub fn read_agg(r: &mut ByteReader) -> Result<AggFunc, WireError> {
    match r.u8()? {
        0 => Ok(AggFunc::Count),
        1 => Ok(AggFunc::Sum),
        2 => Ok(AggFunc::Min),
        3 => Ok(AggFunc::Max),
        4 => Ok(AggFunc::Avg),
        _ => Err(WireError::Invalid("aggregate tag")),
    }
}

/// Encode a [`ModelType`] as one byte.
pub fn write_model_type(w: &mut ByteWriter, ty: ModelType) {
    w.u8(match ty {
        ModelType::Const => 0,
        ModelType::Lin => 1,
        ModelType::Quad => 2,
    });
}

/// Decode a [`ModelType`].
pub fn read_model_type(r: &mut ByteReader) -> Result<ModelType, WireError> {
    match r.u8()? {
        0 => Ok(ModelType::Const),
        1 => Ok(ModelType::Lin),
        2 => Ok(ModelType::Quad),
        _ => Err(WireError::Invalid("model type tag")),
    }
}

fn write_coefs(w: &mut ByteWriter, coefs: &[f64]) {
    w.u32(coefs.len() as u32);
    for &c in coefs {
        w.f64(c);
    }
}

fn read_coefs(r: &mut ByteReader) -> Result<Vec<f64>, WireError> {
    let n = r.count(8)?;
    (0..n).map(|_| r.f64()).collect()
}

/// Encode a fitted [`Model`].
pub fn write_model(w: &mut ByteWriter, m: &Model) {
    match m {
        Model::Constant { beta } => {
            w.u8(0);
            w.f64(*beta);
        }
        Model::Linear { intercept, coefs } => {
            w.u8(1);
            w.f64(*intercept);
            write_coefs(w, coefs);
        }
        Model::Quadratic { intercept, lin, quad } => {
            w.u8(2);
            w.f64(*intercept);
            write_coefs(w, lin);
            write_coefs(w, quad);
        }
    }
}

/// Decode a fitted [`Model`].
pub fn read_model(r: &mut ByteReader) -> Result<Model, WireError> {
    match r.u8()? {
        0 => Ok(Model::Constant { beta: r.f64()? }),
        1 => Ok(Model::Linear { intercept: r.f64()?, coefs: read_coefs(r)? }),
        2 => {
            Ok(Model::Quadratic { intercept: r.f64()?, lin: read_coefs(r)?, quad: read_coefs(r)? })
        }
        _ => Err(WireError::Invalid("model tag")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_known_vectors() {
        // Standard check value for the ASCII digits.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn primitives_roundtrip() {
        let mut w = ByteWriter::new();
        w.u8(7);
        w.u32(0xDEAD_BEEF);
        w.u64(u64::MAX - 3);
        w.i64(-42);
        w.f64(3.5);
        w.str("héllo");
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        assert_eq!(r.u8().unwrap(), 7);
        assert_eq!(r.u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.u64().unwrap(), u64::MAX - 3);
        assert_eq!(r.i64().unwrap(), -42);
        assert_eq!(r.f64().unwrap(), 3.5);
        assert_eq!(r.str().unwrap(), "héllo");
        assert!(r.is_empty());
    }

    #[test]
    fn short_input_is_an_error_not_a_panic() {
        let mut r = ByteReader::new(&[1, 2]);
        assert_eq!(r.u32(), Err(WireError::Short));
        let mut r = ByteReader::new(&[]);
        assert_eq!(r.u8(), Err(WireError::Short));
    }

    #[test]
    fn count_rejects_absurd_lengths() {
        // A length prefix claiming 4 billion elements over a 2-byte tail.
        let mut w = ByteWriter::new();
        w.u32(u32::MAX);
        w.u8(0);
        w.u8(0);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        assert_eq!(r.count(8), Err(WireError::Invalid("count")));
    }

    #[test]
    fn nan_and_negative_zero_canonicalized() {
        assert_eq!(canonical_f64_bits(f64::NAN), canonical_f64_bits(-f64::NAN));
        assert_eq!(canonical_f64_bits(-0.0), canonical_f64_bits(0.0));
        assert_ne!(canonical_f64_bits(1.0), canonical_f64_bits(-1.0));
    }

    #[test]
    fn value_and_model_roundtrip() {
        let values = [
            Value::Null,
            Value::Int(i64::MIN),
            Value::Float(-2.5),
            Value::Float(f64::NAN),
            Value::str("a|b %20 \n 北京"),
            Value::str(""),
        ];
        for v in &values {
            let mut w = ByteWriter::new();
            write_value(&mut w, v);
            let bytes = w.into_bytes();
            let mut r = ByteReader::new(&bytes);
            assert_eq!(&read_value(&mut r).unwrap(), v);
            assert!(r.is_empty());
        }
        let models = [
            Model::Constant { beta: 4.5 },
            Model::Linear { intercept: -1.25, coefs: vec![0.5, 3.0] },
            Model::Quadratic { intercept: 0.5, lin: vec![1.0, -2.0], quad: vec![0.25, 4.0] },
        ];
        for m in &models {
            let mut w = ByteWriter::new();
            write_model(&mut w, m);
            let bytes = w.into_bytes();
            let mut r = ByteReader::new(&bytes);
            assert_eq!(&read_model(&mut r).unwrap(), m);
            assert!(r.is_empty());
        }
    }
}
