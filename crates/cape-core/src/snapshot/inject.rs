//! Deterministic fault injection for snapshot bytes.
//!
//! A mined store is serialized once, then replayed through every
//! mutation this module can generate; the `store_corruption` test matrix
//! asserts each mutated byte string yields a clean typed
//! [`SnapshotError`](super::SnapshotError) — never a panic, hang, or
//! silently different store. All generators are pure functions of their
//! inputs (plus an explicit seed for the sampled bit flips), so a failing
//! case reproduces from its `Fault` value alone.

use super::SnapshotLayout;
use std::ops::Range;

/// One mutation of a byte string.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Fault {
    /// Keep only the first `len` bytes.
    Truncate(usize),
    /// XOR one bit: `bytes[offset] ^= 1 << bit`.
    FlipBit {
        /// Byte offset of the flip.
        offset: usize,
        /// Bit index within the byte (0–7).
        bit: u8,
    },
    /// Invert a whole byte: `bytes[offset] ^= 0xFF`.
    FlipByte(usize),
    /// Torn write: the first `keep` bytes reached disk, the tail reads
    /// back as zeros (rename observed before the data was flushed).
    TornWrite {
        /// Prefix length that survived.
        keep: usize,
    },
    /// Swap the byte ranges of two sections (must not overlap).
    SectionSwap {
        /// First section's byte range.
        a: Range<usize>,
        /// Second section's byte range.
        b: Range<usize>,
    },
    /// Re-insert a copy of `bytes[range]` immediately after it — a
    /// replayed write. Aimed at whole WAL records it models a duplicated
    /// append (same sequence number twice).
    DuplicateRange(Range<usize>),
}

impl Fault {
    /// Apply the mutation to a copy of `bytes`.
    pub fn apply(&self, bytes: &[u8]) -> Vec<u8> {
        match self {
            Fault::Truncate(len) => bytes[..(*len).min(bytes.len())].to_vec(),
            Fault::FlipBit { offset, bit } => {
                let mut out = bytes.to_vec();
                out[*offset] ^= 1 << bit;
                out
            }
            Fault::FlipByte(offset) => {
                let mut out = bytes.to_vec();
                out[*offset] ^= 0xFF;
                out
            }
            Fault::TornWrite { keep } => {
                let mut out = vec![0u8; bytes.len()];
                let keep = (*keep).min(bytes.len());
                out[..keep].copy_from_slice(&bytes[..keep]);
                out
            }
            Fault::SectionSwap { a, b } => {
                // Rebuild: prefix, b's bytes, gap, a's bytes, suffix.
                let (first, second) = if a.start <= b.start { (a, b) } else { (b, a) };
                assert!(first.end <= second.start, "sections overlap");
                let mut out = Vec::with_capacity(bytes.len());
                out.extend_from_slice(&bytes[..first.start]);
                out.extend_from_slice(&bytes[second.clone()]);
                out.extend_from_slice(&bytes[first.end..second.start]);
                out.extend_from_slice(&bytes[first.clone()]);
                out.extend_from_slice(&bytes[second.end..]);
                out
            }
            Fault::DuplicateRange(range) => {
                let mut out = Vec::with_capacity(bytes.len() + range.len());
                out.extend_from_slice(&bytes[..range.end]);
                out.extend_from_slice(&bytes[range.clone()]);
                out.extend_from_slice(&bytes[range.end..]);
                out
            }
        }
    }
}

/// Every truncation length `0..len` — exhaustive for small snapshots and
/// a superset of truncation-at-every-boundary.
pub fn exhaustive_truncations(len: usize) -> Vec<Fault> {
    (0..len).map(Fault::Truncate).collect()
}

/// Truncations exactly at the structural boundaries of a snapshot
/// (header end, each section end, footer end minus one).
pub fn boundary_truncations(layout: &SnapshotLayout) -> Vec<Fault> {
    let mut out: Vec<Fault> = layout
        .boundaries()
        .into_iter()
        .filter(|&b| b < layout.footer.end)
        .map(Fault::Truncate)
        .collect();
    // One byte short of complete: the commit marker is present but the
    // final CRC byte is missing.
    out.push(Fault::Truncate(layout.footer.end - 1));
    out
}

/// Invert every byte once — exhaustive single-byte corruption.
pub fn exhaustive_byte_flips(len: usize) -> Vec<Fault> {
    (0..len).map(Fault::FlipByte).collect()
}

/// Scramble a user seed into a non-zero xorshift64 state (splitmix64
/// finalizer, so adjacent seeds produce unrelated streams).
fn xorshift_state(seed: u64) -> u64 {
    let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^= z >> 31;
    z.max(1)
}

/// `n` single-bit flips at seeded pseudo-random positions (xorshift64;
/// the same seed always yields the same faults).
pub fn seeded_bit_flips(len: usize, n: usize, seed: u64) -> Vec<Fault> {
    assert!(len > 0, "cannot flip bits in an empty file");
    let mut state = xorshift_state(seed);
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    (0..n)
        .map(|_| {
            let r = next();
            Fault::FlipBit { offset: (r >> 8) as usize % len, bit: (r & 7) as u8 }
        })
        .collect()
}

/// Torn writes at every structural boundary plus seeded interior cuts:
/// the prefix survived, the rest reads back as zeros.
pub fn torn_writes(layout: &SnapshotLayout, extra_cuts: usize, seed: u64) -> Vec<Fault> {
    let len = layout.footer.end;
    let mut out: Vec<Fault> = layout
        .boundaries()
        .into_iter()
        .filter(|&b| b < len)
        .map(|keep| Fault::TornWrite { keep })
        .collect();
    let mut state = xorshift_state(seed);
    for _ in 0..extra_cuts {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        out.push(Fault::TornWrite { keep: (state >> 8) as usize % len });
    }
    out
}

/// Every unordered pair of distinct sections, swapped.
pub fn section_swaps(layout: &SnapshotLayout) -> Vec<Fault> {
    let mut out = Vec::new();
    for i in 0..layout.sections.len() {
        for j in (i + 1)..layout.sections.len() {
            out.push(Fault::SectionSwap {
                a: layout.sections[i].1.clone(),
                b: layout.sections[j].1.clone(),
            });
        }
    }
    out
}

/// Every unordered pair of distinct spans, swapped. The WAL analogue of
/// [`section_swaps`]: aimed at record spans it models reordered appends.
pub fn span_swaps(spans: &[Range<usize>]) -> Vec<Fault> {
    let mut out = Vec::new();
    for i in 0..spans.len() {
        for j in (i + 1)..spans.len() {
            out.push(Fault::SectionSwap { a: spans[i].clone(), b: spans[j].clone() });
        }
    }
    out
}

/// One duplication per span — each record replayed once.
pub fn span_duplications(spans: &[Range<usize>]) -> Vec<Fault> {
    spans.iter().cloned().map(Fault::DuplicateRange).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn apply_is_pure_and_length_preserving_where_expected() {
        let bytes: Vec<u8> = (0..32u8).collect();
        assert_eq!(Fault::Truncate(10).apply(&bytes).len(), 10);
        assert_eq!(Fault::FlipBit { offset: 3, bit: 7 }.apply(&bytes).len(), 32);
        assert_eq!(Fault::FlipByte(0).apply(&bytes)[0], 0xFF);
        let torn = Fault::TornWrite { keep: 4 }.apply(&bytes);
        assert_eq!(torn.len(), 32);
        assert_eq!(&torn[..4], &bytes[..4]);
        assert!(torn[4..].iter().all(|&b| b == 0));
        let swapped = Fault::SectionSwap { a: 0..4, b: 8..12 }.apply(&bytes);
        assert_eq!(&swapped[..4], &bytes[8..12]);
        assert_eq!(&swapped[8..12], &bytes[..4]);
        assert_eq!(swapped.len(), 32);
        let duped = Fault::DuplicateRange(4..8).apply(&bytes);
        assert_eq!(duped.len(), 36);
        assert_eq!(&duped[..8], &bytes[..8]);
        assert_eq!(&duped[8..12], &bytes[4..8]);
        assert_eq!(&duped[12..], &bytes[8..]);
    }

    #[test]
    fn seeded_generators_are_deterministic() {
        let a = seeded_bit_flips(100, 16, 42);
        let b = seeded_bit_flips(100, 16, 42);
        assert_eq!(a, b);
        let c = seeded_bit_flips(100, 16, 43);
        assert_ne!(a, c, "different seeds should differ");
        for f in &a {
            match f {
                Fault::FlipBit { offset, bit } => {
                    assert!(*offset < 100);
                    assert!(*bit < 8);
                }
                other => panic!("unexpected fault {other:?}"),
            }
        }
    }
}
