//! `cape-store` — the durable, versioned binary snapshot of a mined
//! [`PatternStore`].
//!
//! CAPE splits its pipeline into an *offline* mining phase and an
//! *online* explanation phase (§1 of the paper); this module is the
//! durable boundary between the two. `cape mine --save store.cape`
//! persists the miner's output once, and every later `explain`,
//! `batch-explain`, or `cape-serve` process cold-starts from the
//! snapshot instead of re-mining, so start-up cost scales with pattern
//! count rather than relation size.
//!
//! ## File format (version 1)
//!
//! ```text
//! ┌─ header ──────────────────────────────────────────────┐
//! │ magic    8B  b"CAPESNAP"                              │
//! │ version  u32 LE (1)                                   │
//! │ sections u32 LE (3)                                   │
//! ├─ section × 3, fixed order: schema, config, patterns ─┤
//! │ tag      u32 LE (b"SCHM" / b"CONF" / b"PATS")         │
//! │ len      u64 LE  payload length in bytes              │
//! │ payload  len bytes                                    │
//! │ crc32    u32 LE  CRC-32 (IEEE) of the payload         │
//! ├─ footer (commit marker) ─────────────────────────────┤
//! │ magic    8B  b"CAPECMIT"                              │
//! │ crc32    u32 LE  CRC-32 of every preceding byte       │
//! └───────────────────────────────────────────────────────┘
//! ```
//!
//! Only the pattern metadata and fitted models are stored; the
//! aggregated group data is recomputed from the live relation at load
//! time (one group-by per `F ∪ V` — far cheaper than mining, which also
//! had to enumerate, sort, and fit).
//!
//! ## Durability protocol
//!
//! [`save_snapshot`] writes the encoded bytes to a sibling temporary
//! file, `fsync`s it, atomically renames it over the destination, and
//! `fsync`s the parent directory. The footer's commit marker is written
//! last inside the buffer, so a torn write (rename observed before the
//! data was flushed) is detected as [`SnapshotError::Truncated`] rather
//! than being half-read.
//!
//! ## Failure taxonomy
//!
//! Every way a file can fail to load maps to one [`SnapshotError`]
//! variant — never a panic, hang, or silently wrong store. The
//! `snapshot::inject` fault-injection harness and the
//! `store_corruption` test matrix enforce this byte-by-byte.

pub mod codec;
pub mod inject;
pub mod v2;

pub use v2::{
    load_relation_v2, load_snapshot_auto, load_snapshot_v2, read_snapshot_v2, save_snapshot_v2,
    snapshot_version, SnapshotV2Contents, FORMAT_VERSION_V2,
};

use crate::config::{AggSelection, MiningConfig, Thresholds};
use crate::group_data::GroupData;
use crate::pattern::Arp;
use crate::store::{fold_dev_bounds, LocalPattern, PatternInstance, PatternStore};
use cape_data::{AggFunc, AttrId, Relation, Schema, Value};
use cape_regress::Fitted;
use codec::{ByteReader, ByteWriter, WireError};
use std::collections::HashMap;
use std::io::Write;
use std::ops::Range;
use std::path::Path;
use std::sync::Arc;

/// Leading file magic: identifies a CAPE snapshot.
pub const MAGIC: &[u8; 8] = b"CAPESNAP";
/// Trailing commit marker: present only once the file is fully written.
pub const FOOTER_MAGIC: &[u8; 8] = b"CAPECMIT";
/// The v1 format version (patterns only; relation recomputed from CSV).
pub const FORMAT_VERSION: u32 = 1;

pub(crate) const TAG_SCHEMA: u32 = u32::from_le_bytes(*b"SCHM");
pub(crate) const TAG_CONFIG: u32 = u32::from_le_bytes(*b"CONF");
pub(crate) const TAG_PATTERNS: u32 = u32::from_le_bytes(*b"PATS");

/// `(tag, display name)` for the three v1 sections, in file order.
const SECTIONS: [(u32, &str); 3] =
    [(TAG_SCHEMA, "schema"), (TAG_CONFIG, "config"), (TAG_PATTERNS, "patterns")];

/// Why a snapshot was rejected. One variant per failure class so callers
/// (the CLI's exit code 3, `cape-serve` construction, the corruption
/// test matrix) can react to the class, not a string.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnapshotError {
    /// The file does not start with the snapshot magic.
    BadMagic,
    /// The file declares a format version this build cannot read.
    VersionUnsupported {
        /// The version the file declared.
        found: u32,
    },
    /// A section failed its structural or CRC check.
    SectionCorrupt {
        /// Which section (`"header"`, `"schema"`, `"config"`,
        /// `"patterns"`, or `"footer"`).
        section: &'static str,
    },
    /// The file ends early or its commit marker is missing (torn write).
    Truncated,
    /// The snapshot was mined against a different relation schema.
    SchemaMismatch(String),
    /// Filesystem failure (stringified to keep the error `Clone`).
    Io(String),
}

impl std::fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SnapshotError::BadMagic => f.write_str("bad magic (not a cape snapshot)"),
            SnapshotError::VersionUnsupported { found } => {
                write!(
                    f,
                    "unsupported snapshot version {found} (this build reads v{FORMAT_VERSION}; \
                     v{} via the v2 loader)",
                    v2::FORMAT_VERSION_V2
                )
            }
            SnapshotError::SectionCorrupt { section } => write!(f, "section corrupt: {section}"),
            SnapshotError::Truncated => f.write_str("truncated snapshot (missing commit marker)"),
            SnapshotError::SchemaMismatch(m) => write!(f, "schema mismatch: {m}"),
            SnapshotError::Io(m) => write!(f, "io error: {m}"),
        }
    }
}

impl std::error::Error for SnapshotError {}

/// What a snapshot contains after validation against a live relation.
#[derive(Debug, Clone)]
pub struct SnapshotContents {
    /// The relation schema recorded at save time (validated to match the
    /// live relation on load).
    pub schema: Schema,
    /// The mining configuration the store was produced with. Execution
    /// knobs that do not affect the mined output (roll-up, sort cache,
    /// initial FDs) are not persisted and carry their defaults.
    pub config: MiningConfig,
    /// The reloaded pattern store, with group data recomputed from the
    /// live relation.
    pub store: PatternStore,
}

/// FNV-1a 64-bit fingerprint of a schema: attribute names and types in
/// order. Cheap to compare, stable across processes, and independent of
/// the in-memory layout.
pub fn schema_fingerprint(schema: &Schema) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut eat = |b: u8| {
        h ^= b as u64;
        h = h.wrapping_mul(0x1_0000_0000_01b3);
    };
    for attr in schema.iter() {
        for b in attr.name().bytes() {
            eat(b);
        }
        eat(0xFF);
        eat(match attr.value_type() {
            cape_data::ValueType::Int => 0,
            cape_data::ValueType::Float => 1,
            cape_data::ValueType::Str => 2,
        });
    }
    h
}

// --- encoding --------------------------------------------------------------

pub(crate) fn encode_schema_section(schema: &Schema) -> Vec<u8> {
    let mut w = ByteWriter::new();
    w.u64(schema_fingerprint(schema));
    w.u32(schema.arity() as u32);
    for attr in schema.iter() {
        w.str(attr.name());
        codec::write_value_type(&mut w, attr.value_type());
    }
    w.into_bytes()
}

pub(crate) fn encode_config_section(cfg: &MiningConfig) -> Vec<u8> {
    let mut w = ByteWriter::new();
    w.f64(cfg.thresholds.theta);
    w.u64(cfg.thresholds.delta as u64);
    w.f64(cfg.thresholds.lambda);
    w.u64(cfg.thresholds.global_support as u64);
    w.u64(cfg.psi as u64);
    w.u8(cfg.fd_pruning as u8);
    w.u32(cfg.models.len() as u32);
    for &m in &cfg.models {
        codec::write_model_type(&mut w, m);
    }
    w.u32(cfg.exclude.len() as u32);
    for &a in &cfg.exclude {
        w.u32(a as u32);
    }
    match &cfg.aggs {
        AggSelection::CountStar => w.u8(0),
        AggSelection::AllNumeric => w.u8(1),
        AggSelection::Explicit(list) => {
            w.u8(2);
            w.u32(list.len() as u32);
            for (func, attr) in list {
                codec::write_agg(&mut w, *func);
                match attr {
                    Some(a) => {
                        w.u8(1);
                        w.u32(*a as u32);
                    }
                    None => w.u8(0),
                }
            }
        }
    }
    w.into_bytes()
}

fn write_attr_list(w: &mut ByteWriter, ids: &[AttrId]) {
    w.u32(ids.len() as u32);
    for &a in ids {
        w.u32(a as u32);
    }
}

pub(crate) fn encode_patterns_section(store: &PatternStore) -> Vec<u8> {
    let mut w = ByteWriter::new();
    w.u32(store.len() as u32);
    for (_, inst) in store.iter() {
        write_attr_list(&mut w, inst.arp.f());
        write_attr_list(&mut w, inst.arp.v());
        codec::write_agg(&mut w, inst.arp.agg);
        match inst.arp.agg_attr {
            Some(a) => {
                w.u8(1);
                w.u32(a as u32);
            }
            None => w.u8(0),
        }
        codec::write_model_type(&mut w, inst.arp.model);
        w.f64(inst.confidence);
        w.u64(inst.num_supported as u64);
        // Locals in sorted key order: byte-identical files for equal stores.
        let mut keys: Vec<&Vec<Value>> = inst.locals.keys().collect();
        keys.sort();
        w.u32(keys.len() as u32);
        for key in keys {
            let local = &inst.locals[key];
            w.u32(key.len() as u32);
            for v in key {
                codec::write_value(&mut w, v);
            }
            w.u64(local.support as u64);
            w.f64(local.fitted.gof);
            w.f64(local.max_pos_dev);
            w.f64(local.max_neg_dev);
            codec::write_model(&mut w, &local.fitted.model);
        }
    }
    w.into_bytes()
}

/// Encode a snapshot to bytes (the pure half of [`save_snapshot`]).
pub fn encode_snapshot(schema: &Schema, cfg: &MiningConfig, store: &PatternStore) -> Vec<u8> {
    let payloads =
        [encode_schema_section(schema), encode_config_section(cfg), encode_patterns_section(store)];
    let mut w = ByteWriter::new();
    w.bytes(MAGIC);
    w.u32(FORMAT_VERSION);
    w.u32(SECTIONS.len() as u32);
    for ((tag, _), payload) in SECTIONS.iter().zip(&payloads) {
        w.u32(*tag);
        w.u64(payload.len() as u64);
        w.bytes(payload);
        w.u32(codec::crc32(payload));
    }
    let mut out = w.into_bytes();
    let body_crc = codec::crc32(&out);
    out.extend_from_slice(FOOTER_MAGIC);
    out.extend_from_slice(&body_crc.to_le_bytes());
    out
}

// --- layout (for fault injection and tooling) ------------------------------

/// Byte ranges of the structural regions of a snapshot. Produced by
/// [`layout`]; consumed by the fault injector to mutate *at* boundaries.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SnapshotLayout {
    /// Magic + version + section count.
    pub header: Range<usize>,
    /// `(section name, full byte range incl. tag/len/crc)` in file order.
    pub sections: Vec<(&'static str, Range<usize>)>,
    /// Footer magic + file CRC.
    pub footer: Range<usize>,
}

impl SnapshotLayout {
    /// Every region boundary offset, ascending (truncation targets).
    pub fn boundaries(&self) -> Vec<usize> {
        let mut out = vec![self.header.start, self.header.end];
        for (_, r) in &self.sections {
            out.push(r.end);
        }
        out.push(self.footer.end);
        out
    }
}

/// Parse the structural layout of a *valid* snapshot (bounds-checked but
/// without CRC validation — the injector needs offsets, not contents).
pub fn layout(bytes: &[u8]) -> Result<SnapshotLayout, SnapshotError> {
    let mut r = ByteReader::new(bytes);
    r.take(8).map_err(|_| SnapshotError::Truncated)?;
    r.u32().map_err(|_| SnapshotError::Truncated)?;
    let n = r.u32().map_err(|_| SnapshotError::Truncated)? as usize;
    if n != SECTIONS.len() {
        return Err(SnapshotError::SectionCorrupt { section: "header" });
    }
    let header = 0..(bytes.len() - r.remaining());
    let mut sections = Vec::new();
    for (_, name) in SECTIONS {
        let start = bytes.len() - r.remaining();
        r.take(4).map_err(|_| SnapshotError::Truncated)?;
        let len = r.u64().map_err(|_| SnapshotError::Truncated)? as usize;
        r.take(len).map_err(|_| SnapshotError::Truncated)?;
        r.take(4).map_err(|_| SnapshotError::Truncated)?;
        sections.push((name, start..(bytes.len() - r.remaining())));
    }
    let footer_start = bytes.len() - r.remaining();
    r.take(12).map_err(|_| SnapshotError::Truncated)?;
    Ok(SnapshotLayout { header, sections, footer: footer_start..(bytes.len() - r.remaining()) })
}

// --- decoding --------------------------------------------------------------

pub(crate) fn corrupt(section: &'static str) -> impl Fn(WireError) -> SnapshotError {
    move |_| SnapshotError::SectionCorrupt { section }
}

pub(crate) fn decode_schema_section(payload: &[u8]) -> Result<(u64, Schema), SnapshotError> {
    let e = corrupt("schema");
    let mut r = ByteReader::new(payload);
    let fingerprint = r.u64().map_err(&e)?;
    let arity = r.count(5).map_err(&e)?;
    let mut attrs = Vec::with_capacity(arity);
    for _ in 0..arity {
        let name = r.str().map_err(&e)?;
        let ty = codec::read_value_type(&mut r).map_err(&e)?;
        attrs.push((name, ty));
    }
    if !r.is_empty() {
        return Err(SnapshotError::SectionCorrupt { section: "schema" });
    }
    let schema =
        Schema::new(attrs).map_err(|_| SnapshotError::SectionCorrupt { section: "schema" })?;
    if schema_fingerprint(&schema) != fingerprint {
        return Err(SnapshotError::SectionCorrupt { section: "schema" });
    }
    Ok((fingerprint, schema))
}

pub(crate) fn decode_config_section(payload: &[u8]) -> Result<MiningConfig, SnapshotError> {
    let e = corrupt("config");
    let mut r = ByteReader::new(payload);
    let theta = r.f64().map_err(&e)?;
    let delta = r.usize().map_err(&e)?;
    let lambda = r.f64().map_err(&e)?;
    let global_support = r.usize().map_err(&e)?;
    let psi = r.usize().map_err(&e)?;
    let fd_pruning = match r.u8().map_err(&e)? {
        0 => false,
        1 => true,
        _ => return Err(SnapshotError::SectionCorrupt { section: "config" }),
    };
    let n_models = r.count(1).map_err(&e)?;
    let models = (0..n_models)
        .map(|_| codec::read_model_type(&mut r).map_err(&e))
        .collect::<Result<Vec<_>, _>>()?;
    let n_exclude = r.count(4).map_err(&e)?;
    let exclude = (0..n_exclude)
        .map(|_| r.u32().map(|a| a as AttrId).map_err(&e))
        .collect::<Result<Vec<_>, _>>()?;
    let aggs = match r.u8().map_err(&e)? {
        0 => AggSelection::CountStar,
        1 => AggSelection::AllNumeric,
        2 => {
            let n = r.count(2).map_err(&e)?;
            let mut list = Vec::with_capacity(n);
            for _ in 0..n {
                let func = codec::read_agg(&mut r).map_err(&e)?;
                let attr = match r.u8().map_err(&e)? {
                    0 => None,
                    1 => Some(r.u32().map_err(&e)? as AttrId),
                    _ => return Err(SnapshotError::SectionCorrupt { section: "config" }),
                };
                list.push((func, attr));
            }
            AggSelection::Explicit(list)
        }
        _ => return Err(SnapshotError::SectionCorrupt { section: "config" }),
    };
    if !r.is_empty() {
        return Err(SnapshotError::SectionCorrupt { section: "config" });
    }
    Ok(MiningConfig {
        thresholds: Thresholds::new(theta, delta, lambda, global_support),
        psi,
        aggs,
        models,
        exclude,
        fd_pruning,
        ..MiningConfig::default()
    })
}

pub(crate) struct PendingPattern {
    pub(crate) arp: Arp,
    pub(crate) confidence: f64,
    pub(crate) num_supported: usize,
    pub(crate) locals: HashMap<Vec<Value>, LocalPattern>,
}

fn read_attr_list(r: &mut ByteReader) -> Result<Vec<AttrId>, WireError> {
    let n = r.count(4)?;
    (0..n).map(|_| r.u32().map(|a| a as AttrId)).collect()
}

pub(crate) fn decode_patterns_section(
    payload: &[u8],
) -> Result<Vec<PendingPattern>, SnapshotError> {
    let e = corrupt("patterns");
    let mut r = ByteReader::new(payload);
    let n = r.count(1).map_err(&e)?;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        let f = read_attr_list(&mut r).map_err(&e)?;
        let v = read_attr_list(&mut r).map_err(&e)?;
        let agg = codec::read_agg(&mut r).map_err(&e)?;
        let agg_attr = match r.u8().map_err(&e)? {
            0 => None,
            1 => Some(r.u32().map_err(&e)? as AttrId),
            _ => return Err(SnapshotError::SectionCorrupt { section: "patterns" }),
        };
        let model = codec::read_model_type(&mut r).map_err(&e)?;
        let confidence = r.f64().map_err(&e)?;
        let num_supported = r.usize().map_err(&e)?;
        let n_locals = r.count(1).map_err(&e)?;
        let mut locals = HashMap::with_capacity(n_locals);
        for _ in 0..n_locals {
            let key_len = r.count(1).map_err(&e)?;
            let key = (0..key_len)
                .map(|_| codec::read_value(&mut r).map_err(&e))
                .collect::<Result<Vec<_>, _>>()?;
            let support = r.usize().map_err(&e)?;
            let gof = r.f64().map_err(&e)?;
            let max_pos_dev = r.f64().map_err(&e)?;
            let max_neg_dev = r.f64().map_err(&e)?;
            let fit_model = codec::read_model(&mut r).map_err(&e)?;
            locals.insert(
                key,
                LocalPattern {
                    fitted: Fitted { model: fit_model, gof, n: support },
                    support,
                    max_pos_dev,
                    max_neg_dev,
                },
            );
        }
        out.push(PendingPattern {
            arp: Arp::new(f, v, agg, agg_attr, model),
            confidence,
            num_supported,
            locals,
        });
    }
    if !r.is_empty() {
        return Err(SnapshotError::SectionCorrupt { section: "patterns" });
    }
    Ok(out)
}

/// Check the recorded schema against the live relation's.
pub(crate) fn validate_schema(recorded: &Schema, live: &Schema) -> Result<(), SnapshotError> {
    if schema_fingerprint(recorded) == schema_fingerprint(live) && recorded.arity() == live.arity()
    {
        return Ok(());
    }
    if recorded.arity() != live.arity() {
        return Err(SnapshotError::SchemaMismatch(format!(
            "snapshot was mined over {} attributes, live relation has {}",
            recorded.arity(),
            live.arity()
        )));
    }
    for (a, b) in recorded.iter().zip(live.iter()) {
        if a.name() != b.name() || a.value_type() != b.value_type() {
            return Err(SnapshotError::SchemaMismatch(format!(
                "attribute `{}:{}` in snapshot vs `{}:{}` in live relation",
                a.name(),
                a.value_type(),
                b.name(),
                b.value_type()
            )));
        }
    }
    Err(SnapshotError::SchemaMismatch("schema fingerprints differ".into()))
}

/// Rebuild pattern instances: recompute the shared group data per
/// `(F ∪ V, aggregates)` from the live relation.
pub(crate) fn rebuild_store(
    pendings: Vec<PendingPattern>,
    rel: &Relation,
) -> Result<PatternStore, SnapshotError> {
    let mut aggs_by_g: HashMap<Vec<AttrId>, Vec<(AggFunc, Option<AttrId>)>> = HashMap::new();
    for p in &pendings {
        let list = aggs_by_g.entry(p.arp.g_attrs()).or_default();
        let key = (p.arp.agg, p.arp.agg_attr);
        if !list.contains(&key) {
            list.push(key);
        }
    }
    let arity = rel.schema().arity();
    let mut cache: HashMap<Vec<AttrId>, Arc<GroupData>> = HashMap::new();
    let mut store = PatternStore::new();
    for p in pendings {
        let g = p.arp.g_attrs();
        if g.iter().any(|&a| a >= arity) {
            return Err(SnapshotError::SchemaMismatch(format!(
                "pattern references attribute {} but the relation has arity {arity}",
                g.iter().max().copied().unwrap_or(0)
            )));
        }
        let gd = match cache.get(&g) {
            Some(gd) => Arc::clone(gd),
            None => {
                let gd = Arc::new(
                    GroupData::compute(rel, &g, &aggs_by_g[&g])
                        .map_err(|e| SnapshotError::SchemaMismatch(e.to_string()))?,
                );
                cache.insert(g.clone(), Arc::clone(&gd));
                gd
            }
        };
        let agg_col = gd
            .agg_col(p.arp.agg, p.arp.agg_attr)
            .ok_or_else(|| SnapshotError::SchemaMismatch("aggregate column missing".into()))?;
        let mut inst = PatternInstance {
            arp: p.arp,
            data: gd,
            agg_col,
            locals: p.locals,
            confidence: p.confidence,
            num_supported: p.num_supported,
            max_pos_dev: 0.0,
            max_neg_dev: 0.0,
        };
        fold_dev_bounds(&mut inst);
        store.push(inst);
    }
    Ok(store)
}

fn read_inner(bytes: &[u8], rel: &Relation) -> Result<SnapshotContents, SnapshotError> {
    // Header. A short prefix of the valid magic is a truncation, any
    // other leading bytes are not a snapshot at all.
    if bytes.len() < MAGIC.len() {
        return if *bytes == MAGIC[..bytes.len()] {
            Err(SnapshotError::Truncated)
        } else {
            Err(SnapshotError::BadMagic)
        };
    }
    let mut r = ByteReader::new(bytes);
    if r.take(8).expect("checked above") != MAGIC {
        return Err(SnapshotError::BadMagic);
    }
    let version = r.u32().map_err(|_| SnapshotError::Truncated)?;
    if version != FORMAT_VERSION {
        return Err(SnapshotError::VersionUnsupported { found: version });
    }
    let n_sections = r.u32().map_err(|_| SnapshotError::Truncated)?;
    if n_sections as usize != SECTIONS.len() {
        return Err(SnapshotError::SectionCorrupt { section: "header" });
    }

    // Sections, in fixed order, each CRC-checked before decoding.
    let mut payloads: Vec<&[u8]> = Vec::with_capacity(SECTIONS.len());
    for (expected_tag, name) in SECTIONS {
        let tag = r.u32().map_err(|_| SnapshotError::Truncated)?;
        if tag != expected_tag {
            return Err(SnapshotError::SectionCorrupt { section: name });
        }
        let len = r.u64().map_err(|_| SnapshotError::Truncated)?;
        let len = usize::try_from(len).map_err(|_| SnapshotError::Truncated)?;
        if len > r.remaining() {
            return Err(SnapshotError::Truncated);
        }
        let payload = r.take(len).expect("length checked");
        let crc = r.u32().map_err(|_| SnapshotError::Truncated)?;
        if codec::crc32(payload) != crc {
            return Err(SnapshotError::SectionCorrupt { section: name });
        }
        payloads.push(payload);
    }

    // Footer: commit marker + whole-body CRC. Absence ⇒ the write never
    // committed (torn write) ⇒ Truncated.
    let body_end = bytes.len() - r.remaining();
    let footer = r.take(12).map_err(|_| SnapshotError::Truncated)?;
    if &footer[..8] != FOOTER_MAGIC {
        return Err(SnapshotError::Truncated);
    }
    if !r.is_empty() {
        return Err(SnapshotError::SectionCorrupt { section: "footer" });
    }
    let file_crc = u32::from_le_bytes(footer[8..12].try_into().expect("4 bytes"));
    if codec::crc32(&bytes[..body_end]) != file_crc {
        return Err(SnapshotError::SectionCorrupt { section: "footer" });
    }

    // Decode payloads and validate against the live relation.
    let (_, schema) = decode_schema_section(payloads[0])?;
    validate_schema(&schema, rel.schema())?;
    let config = decode_config_section(payloads[1])?;
    let pendings = decode_patterns_section(payloads[2])?;
    let store = rebuild_store(pendings, rel)?;
    Ok(SnapshotContents { schema, config, store })
}

/// Decode and validate a snapshot from bytes, recomputing group data
/// from `rel`. Counts `store.load_ns` / `store.bytes` on success and
/// `store.corrupt_rejects` on every rejection.
pub fn read_snapshot(bytes: &[u8], rel: &Relation) -> Result<SnapshotContents, SnapshotError> {
    let t0 = std::time::Instant::now();
    let out = read_inner(bytes, rel);
    match &out {
        Ok(_) => {
            cape_obs::observe_ns("store.load_ns", t0.elapsed().as_nanos() as u64);
            cape_obs::counter_add("store.bytes", bytes.len() as u64);
        }
        Err(SnapshotError::Io(_)) => {}
        Err(_) => cape_obs::counter_add("store.corrupt_rejects", 1),
    }
    out
}

/// Load and validate a snapshot file against `rel`.
pub fn load_snapshot(
    path: impl AsRef<Path>,
    rel: &Relation,
) -> Result<SnapshotContents, SnapshotError> {
    let bytes =
        std::fs::read(path.as_ref()).map_err(|e| SnapshotError::Io(format!("read: {e}")))?;
    read_snapshot(&bytes, rel)
}

/// Atomically write a snapshot: encode, write to a sibling temp file,
/// `fsync`, rename over `path`, `fsync` the directory. Returns the byte
/// size written. Counts `store.save_ns` and `store.bytes`.
pub fn save_snapshot(
    path: impl AsRef<Path>,
    schema: &Schema,
    cfg: &MiningConfig,
    store: &PatternStore,
) -> Result<u64, SnapshotError> {
    let path = path.as_ref();
    let t0 = std::time::Instant::now();
    let bytes = encode_snapshot(schema, cfg, store);
    write_atomic(path, &bytes)?;
    cape_obs::observe_ns("store.save_ns", t0.elapsed().as_nanos() as u64);
    cape_obs::counter_add("store.bytes", bytes.len() as u64);
    Ok(bytes.len() as u64)
}

/// Durably publish `bytes` at `path`: write to a sibling temp file,
/// `fsync`, atomically rename, `fsync` the directory (shared by the v1
/// and v2 savers).
pub(crate) fn write_atomic(path: &Path, bytes: &[u8]) -> Result<(), SnapshotError> {
    let io = |e: std::io::Error| SnapshotError::Io(e.to_string());
    let tmp = path.with_extension(format!("tmp.{}", std::process::id()));
    {
        let mut f = std::fs::File::create(&tmp).map_err(io)?;
        f.write_all(bytes).map_err(io)?;
        // Data must be on disk *before* the rename publishes the file;
        // the commit-marker footer catches the case where it was not.
        f.sync_all().map_err(io)?;
    }
    if let Err(e) = std::fs::rename(&tmp, path) {
        let _ = std::fs::remove_file(&tmp);
        return Err(io(e));
    }
    // Persist the rename itself (directory entry). Best effort: some
    // filesystems reject directory fsync; the rename is still atomic.
    if let Some(parent) = path.parent() {
        let dir = if parent.as_os_str().is_empty() { Path::new(".") } else { parent };
        if let Ok(d) = std::fs::File::open(dir) {
            let _ = d.sync_all();
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mining::{Miner, ShareGrpMiner};
    use cape_data::ValueType;

    fn mined() -> (Relation, MiningConfig, PatternStore) {
        let schema = Schema::new([
            ("author", ValueType::Str),
            ("year", ValueType::Int),
            ("venue", ValueType::Str),
        ])
        .unwrap();
        let mut rel = Relation::new(schema);
        for a in 0..4 {
            for y in 0..6 {
                for p in 0..3 {
                    rel.push_row(vec![
                        Value::str(format!("a {a}|x%")),
                        Value::Int(2000 + y),
                        Value::str(if p % 2 == 0 { "KDD" } else { "ICDE" }),
                    ])
                    .unwrap();
                }
            }
        }
        let cfg = MiningConfig {
            thresholds: Thresholds::new(0.2, 3, 0.4, 2),
            psi: 3,
            ..MiningConfig::default()
        };
        let store = ShareGrpMiner.mine(&rel, &cfg).unwrap().store;
        (rel, cfg, store)
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let (rel, cfg, store) = mined();
        assert!(!store.is_empty());
        let bytes = encode_snapshot(rel.schema(), &cfg, &store);
        let loaded = read_snapshot(&bytes, &rel).unwrap();
        assert_eq!(loaded.store.len(), store.len());
        assert_eq!(loaded.config.thresholds, cfg.thresholds);
        assert_eq!(loaded.config.psi, cfg.psi);
        assert_eq!(loaded.config.models, cfg.models);
        for ((_, a), (_, b)) in store.iter().zip(loaded.store.iter()) {
            assert_eq!(a.arp, b.arp);
            assert_eq!(a.confidence, b.confidence);
            assert_eq!(a.num_supported, b.num_supported);
            assert_eq!(a.locals, b.locals);
            assert_eq!(a.max_pos_dev, b.max_pos_dev);
            assert_eq!(a.max_neg_dev, b.max_neg_dev);
            for i in 0..a.data.relation.num_rows().min(5) {
                assert_eq!(a.predict_row(i), b.predict_row(i));
            }
        }
    }

    #[test]
    fn encoding_is_deterministic() {
        let (rel, cfg, store) = mined();
        let a = encode_snapshot(rel.schema(), &cfg, &store);
        let b = encode_snapshot(rel.schema(), &cfg, &store);
        assert_eq!(a, b, "same store must serialize to identical bytes");
    }

    #[test]
    fn layout_covers_the_whole_file() {
        let (rel, cfg, store) = mined();
        let bytes = encode_snapshot(rel.schema(), &cfg, &store);
        let lay = layout(&bytes).unwrap();
        assert_eq!(lay.header, 0..16);
        assert_eq!(lay.sections.len(), 3);
        assert_eq!(lay.sections[0].1.start, 16);
        assert_eq!(lay.footer.end, bytes.len());
        let mut prev = lay.header.end;
        for (_, r) in &lay.sections {
            assert_eq!(r.start, prev);
            prev = r.end;
        }
        assert_eq!(lay.footer.start, prev);
    }

    #[test]
    fn schema_mismatch_detected() {
        let (rel, cfg, store) = mined();
        let bytes = encode_snapshot(rel.schema(), &cfg, &store);
        // Same arity, different attribute type.
        let other = Schema::new([
            ("author", ValueType::Str),
            ("year", ValueType::Str),
            ("venue", ValueType::Str),
        ])
        .unwrap();
        let other_rel = Relation::new(other);
        match read_snapshot(&bytes, &other_rel) {
            Err(SnapshotError::SchemaMismatch(m)) => assert!(m.contains("year"), "{m}"),
            other => panic!("expected SchemaMismatch, got {other:?}"),
        }
        // Different arity.
        let narrow = Relation::new(Schema::new([("author", ValueType::Str)]).unwrap());
        assert!(matches!(read_snapshot(&bytes, &narrow), Err(SnapshotError::SchemaMismatch(_))));
    }

    #[test]
    fn version_and_magic_rejections() {
        let (rel, cfg, store) = mined();
        let mut bytes = encode_snapshot(rel.schema(), &cfg, &store);
        assert!(matches!(read_snapshot(b"hello world", &rel), Err(SnapshotError::BadMagic)));
        assert!(matches!(read_snapshot(b"CAPE", &rel), Err(SnapshotError::Truncated)));
        assert!(matches!(read_snapshot(b"", &rel), Err(SnapshotError::Truncated)));
        bytes[8] = 99; // version field
        assert!(matches!(
            read_snapshot(&bytes, &rel),
            Err(SnapshotError::VersionUnsupported { found: 99 })
        ));
    }

    #[test]
    fn empty_store_roundtrips() {
        let schema = Schema::new([("a", ValueType::Str)]).unwrap();
        let rel = Relation::new(schema);
        let bytes = encode_snapshot(rel.schema(), &MiningConfig::default(), &PatternStore::new());
        let loaded = read_snapshot(&bytes, &rel).unwrap();
        assert!(loaded.store.is_empty());
    }

    #[test]
    fn save_and_load_via_filesystem() {
        let (rel, cfg, store) = mined();
        let dir = std::env::temp_dir().join(format!("cape-snap-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("store.cape");
        let written = save_snapshot(&path, rel.schema(), &cfg, &store).unwrap();
        assert_eq!(written, std::fs::metadata(&path).unwrap().len());
        let loaded = load_snapshot(&path, &rel).unwrap();
        assert_eq!(loaded.store.len(), store.len());
        // No temp file left behind.
        let leftovers: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.file_name().to_string_lossy().contains("tmp"))
            .collect();
        assert!(leftovers.is_empty(), "temp files left behind: {leftovers:?}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_file_is_io_not_corrupt() {
        let (rel, _, _) = mined();
        assert!(matches!(
            load_snapshot("/nonexistent/path/store.cape", &rel),
            Err(SnapshotError::Io(_))
        ));
    }
}
