//! Property tests of the incremental sufficient statistics: after any
//! interleaving of adds and removes — NULL-heavy streams, NaN poison,
//! single-observation deltas — the running fit must match a from-scratch
//! batch fit of the surviving observations to 1e-9 (or agree that no fit
//! exists).

use cape_core::incr::stats::{ConstStats, LinStats};
use cape_regress::{fit, Fitted, ModelType};
use proptest::prelude::*;

/// NULL-heavy observation strategy: ~30% NULL, ~10% NaN, rest finite.
fn arb_y() -> impl Strategy<Value = Option<f64>> {
    (0u8..10, -100.0f64..100.0).prop_map(|(kind, v)| match kind {
        0..=2 => None,
        3 => Some(f64::NAN),
        _ => Some(v),
    })
}

fn arb_bool() -> impl Strategy<Value = bool> {
    (0u8..2).prop_map(|b| b == 1)
}

fn batch_const(ys: &[f64]) -> Option<Fitted> {
    if ys.is_empty() {
        return None;
    }
    fit(ModelType::Const, &[], ys).ok()
}

fn batch_lin(xs: &[f64], ys: &[f64]) -> Option<Fitted> {
    if ys.is_empty() {
        return None;
    }
    let rows: Vec<Vec<f64>> = xs.iter().map(|&x| vec![x]).collect();
    fit(ModelType::Lin, &rows, ys).ok()
}

fn assert_fits_agree(incr: Option<&Fitted>, batch: Option<&Fitted>, ctx: &str) {
    match (incr, batch) {
        (None, None) => {}
        (Some(a), Some(b)) => {
            assert_eq!(a.n, b.n, "n differs ({ctx})");
            assert!((a.gof - b.gof).abs() < 1e-9, "gof {} vs {} ({ctx})", a.gof, b.gof);
            let pa = a.model.predict(&[1.75]);
            let pb = b.model.predict(&[1.75]);
            assert!((pa - pb).abs() < 1e-9, "prediction {pa} vs {pb} ({ctx})");
        }
        (a, b) => {
            panic!("one side fits, the other does not ({ctx}): {a:?} vs {b:?}");
        }
    }
}

proptest! {
    #[test]
    fn const_stats_match_batch_after_adds_and_removes(
        ops in collection::vec((arb_y(), arb_bool()), 0..60),
    ) {
        let mut st = ConstStats::new();
        for (y, _) in &ops {
            st.add(*y);
        }
        // Remove the non-kept observations (models a grouped row whose
        // aggregate output moved: old value out, new value in).
        for (y, keep) in &ops {
            if !keep {
                st.remove(*y);
            }
        }
        // Batch reference over the surviving observations: NULLs are not
        // observations; a surviving NaN makes the batch fit error out.
        let ys: Vec<f64> =
            ops.iter().filter(|(_, keep)| *keep).filter_map(|(y, _)| *y).collect();
        assert_fits_agree(st.fit().as_ref(), batch_const(&ys).as_ref(), "const");
    }

    #[test]
    fn const_stats_match_batch_under_single_row_deltas(
        ys in collection::vec(arb_y(), 1..40),
    ) {
        // Feed one observation at a time; after every step the running
        // fit must equal a batch fit of the prefix.
        let mut st = ConstStats::new();
        let mut seen: Vec<f64> = Vec::new();
        for y in &ys {
            st.add(*y);
            if let Some(v) = y {
                seen.push(*v);
            }
            assert_fits_agree(st.fit().as_ref(), batch_const(&seen).as_ref(), "const prefix");
        }
    }

    #[test]
    fn lin_stats_match_batch_after_adds_and_removes(
        ops in collection::vec((arb_y(), arb_y(), arb_bool()), 0..60),
    ) {
        let mut st = LinStats::new();
        for (x, y, _) in &ops {
            st.add(*x, *y);
        }
        for (x, y, keep) in &ops {
            if !keep {
                st.remove(*x, *y);
            }
        }
        // A usable pair needs both coordinates non-NULL (the batch path
        // drops rows with missing predictors for linear models).
        let mut xs: Vec<f64> = Vec::new();
        let mut ysv: Vec<f64> = Vec::new();
        for (x, y, keep) in &ops {
            if *keep {
                if let (Some(x), Some(y)) = (x, y) {
                    xs.push(*x);
                    ysv.push(*y);
                }
            }
        }
        assert_fits_agree(st.fit().as_ref(), batch_lin(&xs, &ysv).as_ref(), "lin");
    }

    #[test]
    fn lin_stats_match_batch_under_single_row_deltas(
        pairs in collection::vec((arb_y(), arb_y()), 1..40),
    ) {
        let mut st = LinStats::new();
        let mut xs: Vec<f64> = Vec::new();
        let mut ysv: Vec<f64> = Vec::new();
        for (x, y) in &pairs {
            st.add(*x, *y);
            if let (Some(x), Some(y)) = (x, y) {
                xs.push(*x);
                ysv.push(*y);
            }
            assert_fits_agree(st.fit().as_ref(), batch_lin(&xs, &ysv).as_ref(), "lin prefix");
        }
    }
}
