//! WAL fault-injection matrix.
//!
//! A WAL image is replayed through every mutation `snapshot::inject` can
//! generate — exhaustive truncations, exhaustive byte inversions, seeded
//! bit flips, torn writes at every prefix length, record swaps, and
//! record duplications. Each mutated image must either fail with a typed
//! [`WalError`] or decode to a clean *prefix* of the original committed
//! batches (committed-prefix recovery for tails that look torn). A decode
//! that returns rows differing from the original in any way is a silent
//! corruption and fails the matrix.

use cape_core::incr::wal::{decode_wal, encode_header, encode_record, record_spans, WalError};
use cape_core::snapshot::inject::{
    exhaustive_byte_flips, exhaustive_truncations, seeded_bit_flips, span_duplications, span_swaps,
    Fault,
};
use cape_data::Value;

const FP: u64 = 0x1234_5678_9ABC_DEF0;
const ARITY: usize = 3;

/// The committed batches a WAL image must decode to: `(seq, rows)` pairs.
type Batches = Vec<(u64, Vec<Vec<Value>>)>;

fn batch(tag: i64, n: usize) -> Vec<Vec<Value>> {
    (0..n)
        .map(|i| {
            vec![
                Value::str(format!("g{tag}")),
                Value::Int(i as i64),
                if i % 3 == 0 { Value::Null } else { Value::Float(i as f64 / 4.0) },
            ]
        })
        .collect()
}

fn baseline() -> (Vec<u8>, Batches) {
    let batches = vec![(1, batch(1, 4)), (2, batch(2, 1)), (3, batch(3, 0)), (4, batch(4, 2))];
    let mut bytes = encode_header(FP, 0);
    for (seq, rows) in &batches {
        bytes.extend_from_slice(&encode_record(*seq, rows));
    }
    (bytes, batches)
}

/// The matrix oracle: decoding a mutated image must yield a typed error
/// or a clean prefix of the original batches — never different rows.
fn assert_no_silent_corruption(
    fault: &Fault,
    mutated: &[u8],
    original: &[(u64, Vec<Vec<Value>>)],
) -> bool {
    match decode_wal(mutated, FP, ARITY) {
        Err(_) => false, // typed rejection
        Ok(replay) => {
            assert!(
                replay.batches.len() <= original.len(),
                "{fault:?}: decoded more batches than were written"
            );
            for (got, want) in replay.batches.iter().zip(original) {
                assert_eq!(got, want, "{fault:?}: replayed batch differs from the original");
            }
            true
        }
    }
}

#[test]
fn truncation_matrix() {
    let (bytes, batches) = baseline();
    for fault in exhaustive_truncations(bytes.len()) {
        assert_no_silent_corruption(&fault, &fault.apply(&bytes), &batches);
    }
    // The unmutated image decodes in full.
    let replay = decode_wal(&bytes, FP, ARITY).unwrap();
    assert_eq!(replay.batches, batches);
}

#[test]
fn byte_flip_matrix() {
    let (bytes, batches) = baseline();
    let mut survived_clean = 0usize;
    for fault in exhaustive_byte_flips(bytes.len()) {
        if assert_no_silent_corruption(&fault, &fault.apply(&bytes), &batches) {
            // An Ok decode under a byte flip is only legal when the flip
            // landed in a region committed-prefix recovery discards (it
            // made the tail look torn) — i.e. the result lost records.
            let replay = decode_wal(&fault.apply(&bytes), FP, ARITY).unwrap();
            assert!(
                replay.batches.len() < batches.len(),
                "{fault:?}: full decode despite a flipped byte"
            );
            survived_clean += 1;
        }
    }
    // Only a flip in a record's 8-byte length field can masquerade as a
    // torn tail (shortage → prefix recovery); everything else must be a
    // typed rejection.
    let bound = 8 * record_spans(&bytes).len();
    assert!(survived_clean <= bound, "too many flips survived: {survived_clean} > {bound}");
}

#[test]
fn bit_flip_matrix() {
    let (bytes, batches) = baseline();
    for fault in seeded_bit_flips(bytes.len(), 2048, 0xCAFE) {
        assert_no_silent_corruption(&fault, &fault.apply(&bytes), &batches);
    }
}

#[test]
fn torn_write_matrix() {
    let (bytes, batches) = baseline();
    // Every prefix length: the kept prefix survived, the tail reads back
    // as zeros (rename-before-flush crash signature).
    for keep in 0..bytes.len() {
        let fault = Fault::TornWrite { keep };
        assert_no_silent_corruption(&fault, &fault.apply(&bytes), &batches);
    }
}

#[test]
fn duplicate_and_reordered_records_are_typed_errors() {
    let (bytes, batches) = baseline();
    let spans = record_spans(&bytes);
    assert_eq!(spans.len(), batches.len());
    for fault in span_duplications(&spans) {
        match decode_wal(&fault.apply(&bytes), FP, ARITY) {
            Err(WalError::DuplicateSeq { .. }) => {}
            other => panic!("{fault:?}: expected DuplicateSeq, got {other:?}"),
        }
    }
    for fault in span_swaps(&spans) {
        match decode_wal(&fault.apply(&bytes), FP, ARITY) {
            Err(WalError::SeqGap { .. } | WalError::OutOfOrder { .. }) => {}
            other => panic!("{fault:?}: expected a sequence error, got {other:?}"),
        }
    }
}

/// End to end: a corrupted WAL file keeps `IncrStore::open` from
/// installing anything — the error is typed, not a panic or a partial
/// store.
#[test]
fn open_refuses_corrupt_wal_file() {
    use cape_core::prelude::*;
    use cape_core::IncrStore;
    use cape_data::{Relation, Schema, ValueType};

    let dir = std::env::temp_dir().join(format!("cape_walcorrupt_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let store_path = dir.join("s.cape");

    let schema = Schema::new([("author", ValueType::Str), ("year", ValueType::Int)]).unwrap();
    let mut rel = Relation::new(schema);
    for a in 0..4 {
        for y in 2000..2008 {
            for _ in 0..3 {
                rel.push_row(vec![Value::str(format!("a{a}")), Value::Int(y)]).unwrap();
            }
        }
    }
    let cfg = MiningConfig {
        thresholds: Thresholds::new(0.3, 3, 0.5, 2),
        psi: 2,
        ..MiningConfig::default()
    };
    let store = ShareGrpMiner.mine(&rel, &cfg).unwrap().store;
    save_snapshot(&store_path, rel.schema(), &cfg, &store).unwrap();

    let mut incr = IncrStore::open(&store_path, &rel).unwrap();
    incr.append(vec![vec![Value::str("a9"), Value::Int(2008)]]).unwrap();
    let wal_path = incr.wal_path().unwrap().to_path_buf();
    drop(incr);

    // Flip one byte inside the committed record.
    let mut wal_bytes = std::fs::read(&wal_path).unwrap();
    let spans = record_spans(&wal_bytes);
    assert_eq!(spans.len(), 1);
    wal_bytes[spans[0].start + 30] ^= 0xFF;
    std::fs::write(&wal_path, &wal_bytes).unwrap();

    match IncrStore::open(&store_path, &rel) {
        Err(cape_core::IncrError::Wal(_)) => {}
        other => panic!("expected a typed WAL error, got {:?}", other.map(|_| "store")),
    }
    std::fs::remove_dir_all(&dir).ok();
}
