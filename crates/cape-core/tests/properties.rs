//! Property-based tests of the CAPE core: candidate enumeration, the
//! top-k heap (including deterministic tie-breaking), the scoring
//! function's monotonicity, the distance model, and miner agreement on
//! random data.

use cape_core::explain::{
    relative_loss, score_value, summarize, DistanceModel, Explanation, SummarizeConfig, TopK,
};
use cape_core::mining::{splits_of, ArpMiner, Miner, ShareGrpMiner};
use cape_core::store::PatternStore;
use cape_core::{MiningConfig, Thresholds};
use cape_data::{Relation, Schema, Value, ValueType};
use proptest::prelude::*;
use std::collections::BTreeSet;

fn arb_relation(max_rows: usize) -> impl Strategy<Value = Relation> {
    let row = (0u8..3, 0i64..5, 0u8..3);
    proptest::collection::vec(row, 8..max_rows).prop_map(|rows| {
        let schema =
            Schema::new([("a", ValueType::Str), ("x", ValueType::Int), ("b", ValueType::Str)])
                .unwrap();
        Relation::from_rows(
            schema,
            rows.into_iter().map(|(a, x, b)| {
                vec![Value::str(format!("a{a}")), Value::Int(x), Value::str(format!("b{b}"))]
            }),
        )
        .unwrap()
    })
}

fn expl(refinement: usize, tag: i64, score: f64) -> Explanation {
    Explanation {
        pattern_idx: 0,
        refinement_idx: refinement,
        attrs: vec![0],
        tuple: vec![Value::Int(tag)],
        agg_value: 0.0,
        predicted: 0.0,
        deviation: 0.0,
        distance: 0.0,
        norm: 1.0,
        score,
    }
}

/// A mined store over a dense `a × x × b` cross product: every split of
/// the three attributes fits a constant count model perfectly, so the
/// refinement lattice contains `[a]: x`, `[b]: x`, and `[a, b]: x`.
/// Returns the store and the index of the `[a, b]: x` refinement.
fn lattice_store() -> (PatternStore, usize) {
    let schema =
        Schema::new([("a", ValueType::Str), ("x", ValueType::Int), ("b", ValueType::Str)]).unwrap();
    let mut rel = Relation::new(schema);
    for a in 0..3u8 {
        for x in 0..6i64 {
            for b in 0..4u8 {
                for _ in 0..2 {
                    rel.push_row(vec![
                        Value::str(format!("a{a}")),
                        Value::Int(x),
                        Value::str(format!("b{b}")),
                    ])
                    .unwrap();
                }
            }
        }
    }
    let cfg = MiningConfig {
        thresholds: Thresholds::new(0.0, 2, 0.0, 1),
        psi: 3,
        ..MiningConfig::default()
    };
    let store = ArpMiner.mine(&rel, &cfg).unwrap().store;
    let ridx = store
        .iter()
        .find(|(_, p)| p.arp.f() == [0, 2] && p.arp.v() == [1])
        .map(|(i, _)| i)
        .expect("[a,b]: x must be mined");
    assert!(
        store.iter().any(|(_, p)| p.arp.f() == [0] && p.arp.v() == [1]),
        "[a]: x ancestor must be mined"
    );
    (store, ridx)
}

/// A refined explanation over `[a, b]: x` for the summarizer properties.
fn refined_expl(ridx: usize, a: u8, b: u8, x: i64, score: f64) -> Explanation {
    Explanation {
        pattern_idx: 0,
        refinement_idx: ridx,
        attrs: vec![0, 2, 1],
        tuple: vec![Value::str(format!("a{a}")), Value::str(format!("b{b}")), Value::Int(x)],
        agg_value: 0.0,
        predicted: 0.0,
        deviation: 0.0,
        distance: 0.0,
        norm: 1.0,
        score,
    }
}

proptest! {
    #[test]
    fn splits_enumerate_all_partitions(n in 2usize..6) {
        let g: Vec<usize> = (0..n).collect();
        let splits = splits_of(&g);
        prop_assert_eq!(splits.len(), (1usize << n) - 2);
        let mut seen = BTreeSet::new();
        for s in &splits {
            prop_assert!(!s.f.is_empty() && !s.v.is_empty());
            let f: BTreeSet<usize> = s.f.iter().copied().collect();
            let v: BTreeSet<usize> = s.v.iter().copied().collect();
            prop_assert!(f.is_disjoint(&v));
            let mut all: Vec<usize> = f.union(&v).copied().collect();
            all.sort_unstable();
            prop_assert_eq!(&all, &g);
            prop_assert!(seen.insert(s.f.clone()), "duplicate split");
        }
    }

    #[test]
    fn topk_matches_sorted_reference(
        scores in proptest::collection::vec(0.0f64..100.0, 0..60),
        k in 1usize..10,
    ) {
        let mut tk = TopK::new(k);
        for (i, &s) in scores.iter().enumerate() {
            tk.offer(expl(0, i as i64, s));
        }
        let got: Vec<f64> = tk.into_sorted_vec().iter().map(|e| e.score).collect();
        let mut expect = scores.clone();
        expect.sort_by(|a, b| b.total_cmp(a));
        expect.truncate(k);
        prop_assert_eq!(got.len(), expect.len());
        for (g, e) in got.iter().zip(&expect) {
            prop_assert_eq!(g, e);
        }
    }

    #[test]
    fn topk_dedupes_to_max_per_key(
        scores in proptest::collection::vec((0i64..5, 0.0f64..100.0), 0..60),
    ) {
        let mut tk = TopK::new(50);
        for &(tag, s) in &scores {
            tk.offer(expl(1, tag, s));
        }
        let got = tk.into_sorted_vec();
        // One survivor per distinct tag, carrying the max score.
        use std::collections::HashMap;
        let mut best: HashMap<i64, f64> = HashMap::new();
        for &(tag, s) in &scores {
            let e = best.entry(tag).or_insert(f64::NEG_INFINITY);
            if s > *e { *e = s; }
        }
        prop_assert_eq!(got.len(), best.len());
        for e in &got {
            let tag = e.tuple[0].as_i64().unwrap();
            prop_assert_eq!(e.score, best[&tag]);
        }
    }

    #[test]
    fn distance_is_a_semimetric(
        v1 in 0i64..20, v2 in 0i64..20, s1 in 0u8..4, s2 in 0u8..4,
    ) {
        let schema = Schema::new([("s", ValueType::Str), ("n", ValueType::Int)]).unwrap();
        let mut rel = Relation::new(schema);
        for n in 0..20 {
            rel.push_row(vec![Value::str("x"), Value::Int(n)]).unwrap();
        }
        let dm = DistanceModel::default_for(&rel);
        let t1 = [Value::str(format!("s{s1}")), Value::Int(v1)];
        let t2 = [Value::str(format!("s{s2}")), Value::Int(v2)];
        let d12 = dm.tuple_distance(&[0, 1], &t1, &[0, 1], &t2);
        let d21 = dm.tuple_distance(&[0, 1], &t2, &[0, 1], &t1);
        prop_assert!((d12 - d21).abs() < 1e-12, "asymmetric");
        prop_assert!((0.0..=1.0 + 1e-12).contains(&d12));
        if s1 == s2 && v1 == v2 {
            prop_assert_eq!(d12, 0.0);
        }
        // Lower bound never exceeds the actual distance.
        let lb = dm.lower_bound(&[0, 1], &[1]);
        let cross = dm.tuple_distance(&[0, 1], &t1, &[1], &t2[1..]);
        prop_assert!(lb <= cross + 1e-12);
    }

    /// The surviving top-k set is a pure function of the candidate *set*:
    /// any insertion order — including heavy score ties from quantized
    /// scores — keeps exactly the k best candidates under the total order
    /// (score desc, then refinement, then tuple).
    #[test]
    fn topk_survivors_are_order_independent(
        entries in proptest::collection::vec((0usize..3, 0i64..8, 0u8..4), 1..40),
        priorities in proptest::collection::vec(0u32..1000, 40..41),
        k in 1usize..8,
    ) {
        // Quantized scores force ties; (refinement, tag) pairs collide too.
        let candidates: Vec<Explanation> = entries
            .iter()
            .map(|&(r, tag, q)| expl(r, tag, f64::from(q)))
            .collect();

        // Reference: dedup each key to its max score, then apply the
        // documented total order and truncate to k.
        use std::collections::HashMap;
        let mut best: HashMap<(usize, i64), f64> = HashMap::new();
        for &(r, tag, q) in &entries {
            let e = best.entry((r, tag)).or_insert(f64::NEG_INFINITY);
            if f64::from(q) > *e { *e = f64::from(q); }
        }
        let mut expect: Vec<((usize, i64), f64)> = best.into_iter().collect();
        expect.sort_by(|a, b| b.1.total_cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        expect.truncate(k);

        // A generated permutation of the insertion order.
        let mut order: Vec<usize> = (0..candidates.len()).collect();
        order.sort_by_key(|&i| (priorities[i % priorities.len()], i));

        for ord in [&(0..candidates.len()).collect::<Vec<_>>(), &order] {
            let mut tk = TopK::new(k);
            for &i in ord {
                tk.offer(candidates[i].clone());
            }
            let got: Vec<((usize, i64), f64)> = tk
                .into_sorted_vec()
                .iter()
                .map(|e| ((e.refinement_idx, e.tuple[0].as_i64().unwrap()), e.score))
                .collect();
            prop_assert_eq!(&got, &expect, "insertion order changed the survivors");
        }
    }

    /// Definition 10: the score grows strictly with the counterbalancing
    /// deviation and shrinks strictly as the explanation tuple moves away
    /// from the question tuple. Holds for both question directions.
    #[test]
    fn score_monotone_in_deviation_antimonotone_in_distance(
        dev in 0.01f64..50.0,
        bump in 0.01f64..10.0,
        dist in 0.0f64..5.0,
        step in 0.01f64..5.0,
        norm in 0.1f64..20.0,
        low in 0u8..2,
    ) {
        // A Low question counterbalances with positive deviations, a High
        // question with negative ones; the isLow factor flips the sign
        // back so the score stays positive either way.
        let is_low = if low == 0 { 1.0 } else { -1.0 };
        let base = score_value(is_low * dev, is_low, dist, norm);
        prop_assert!(base > 0.0);

        let more_dev = score_value(is_low * (dev + bump), is_low, dist, norm);
        prop_assert!(
            more_dev > base,
            "larger deviation must score higher: {} vs {}", more_dev, base
        );

        let farther = score_value(is_low * dev, is_low, dist + step, norm);
        prop_assert!(
            farther < base,
            "farther tuple must score lower: {} vs {}", farther, base
        );
    }

    /// Summarization is a lossless partition of the top-k: every tuple
    /// lands in exactly one summary, every member satisfies its summary
    /// fragment's predicate (subsumption in the lattice), the per-summary
    /// relative score loss respects the bound, and summaries emit in
    /// best-member-score order.
    #[test]
    fn summaries_partition_cover_and_respect_loss(
        entries in proptest::collection::vec((0u8..3, 0u8..4, 0i64..6, 0u8..5), 1..40),
        k in 1usize..10,
        min_members in 1usize..4,
        max_loss in 0.0f64..1.0,
    ) {
        let (store, ridx) = lattice_store();
        let mut tk = TopK::new(k);
        for &(a, b, x, q) in &entries {
            tk.offer(refined_expl(ridx, a, b, x, f64::from(q)));
        }
        let expls = tk.into_sorted_vec();
        let cfg = SummarizeConfig { min_members, max_loss };
        let summaries = summarize(&expls, &store, &cfg);

        // Partition: each index exactly once, none dropped.
        let mut seen = BTreeSet::new();
        for s in &summaries {
            for &m in &s.members {
                prop_assert!(m < expls.len(), "member out of range");
                prop_assert!(seen.insert(m), "tuple {m} in two summaries");
            }
        }
        prop_assert_eq!(seen.len(), expls.len(), "summaries dropped a tuple");

        for s in &summaries {
            // Subsumption: the fragment predicate holds for every member.
            for &m in &s.members {
                prop_assert!(
                    s.fragment.covers(&expls[m].attrs, &expls[m].tuple),
                    "member {m} not covered by its summary fragment"
                );
            }
            // Score range is the members' actual best/worst, and the
            // representative is the best member.
            let best = s.members.iter().map(|&m| expls[m].score).fold(f64::MIN, f64::max);
            let worst = s.members.iter().map(|&m| expls[m].score).fold(f64::MAX, f64::min);
            prop_assert_eq!(s.score_range, (best, worst));
            prop_assert_eq!(expls[s.representative].score, best);
            // Loss bound: merged summaries stay within max_loss.
            if s.members.len() > 1 {
                prop_assert!(
                    relative_loss(best, worst) <= max_loss + 1e-12,
                    "loss {} exceeds bound {max_loss}", relative_loss(best, worst)
                );
            }
        }

        // Emission order: best member score descending.
        for pair in summaries.windows(2) {
            prop_assert!(pair[0].score_range.0 >= pair[1].score_range.0);
        }
    }

    /// Summaries are a pure function of the candidate *set*: permuting
    /// the insertion order into the top-k heap (with heavy forced ties
    /// from quantized scores) yields identical summaries.
    #[test]
    fn summaries_are_insertion_order_independent(
        entries in proptest::collection::vec((0u8..3, 0u8..4, 0i64..6, 0u8..4), 1..40),
        priorities in proptest::collection::vec(0u32..1000, 40..41),
        k in 1usize..8,
    ) {
        let (store, ridx) = lattice_store();
        let candidates: Vec<Explanation> = entries
            .iter()
            .map(|&(a, b, x, q)| refined_expl(ridx, a, b, x, f64::from(q)))
            .collect();
        let mut order: Vec<usize> = (0..candidates.len()).collect();
        order.sort_by_key(|&i| (priorities[i % priorities.len()], i));

        let cfg = SummarizeConfig::default();
        let mut outputs = Vec::new();
        for ord in [&(0..candidates.len()).collect::<Vec<_>>(), &order] {
            let mut tk = TopK::new(k);
            for &i in ord {
                tk.offer(candidates[i].clone());
            }
            outputs.push(summarize(&tk.into_sorted_vec(), &store, &cfg));
        }
        prop_assert_eq!(&outputs[0], &outputs[1], "insertion order changed the summaries");
    }

    #[test]
    fn miners_agree_on_random_relations(rel in arb_relation(80)) {
        let cfg = MiningConfig {
            thresholds: Thresholds::new(0.2, 2, 0.3, 1),
            psi: 3,
            ..MiningConfig::default()
        };
        let a = ArpMiner.mine(&rel, &cfg).unwrap();
        let b = ShareGrpMiner.mine(&rel, &cfg).unwrap();
        let sa: BTreeSet<String> =
            a.store.iter().map(|(_, p)| p.arp.display(rel.schema())).collect();
        let sb: BTreeSet<String> =
            b.store.iter().map(|(_, p)| p.arp.display(rel.schema())).collect();
        prop_assert_eq!(sa, sb);
    }

    #[test]
    fn mined_locals_respect_thresholds(rel in arb_relation(80)) {
        let th = Thresholds::new(0.3, 2, 0.4, 1);
        let cfg = MiningConfig { thresholds: th, psi: 2, ..MiningConfig::default() };
        let out = ArpMiner.mine(&rel, &cfg).unwrap();
        for (_, p) in out.store.iter() {
            prop_assert!(p.global_support() >= th.global_support);
            prop_assert!(p.confidence >= th.lambda - 1e-12);
            for local in p.locals.values() {
                prop_assert!(local.support >= th.delta);
                prop_assert!(local.fitted.gof >= th.theta);
                prop_assert!(local.max_pos_dev >= 0.0);
                prop_assert!(local.max_neg_dev <= 0.0);
            }
            prop_assert!(p.max_pos_dev >= 0.0);
            prop_assert!(p.max_neg_dev <= 0.0);
        }
    }
}
