//! Wiring tests: running the miners and explainers produces the
//! documented `mining.*` / `explain.*` metric names with plausible
//! values, both in `MiningOutput::telemetry` and in an enclosing
//! session recorder (the `cape --metrics` path).

use cape_core::explain::{BaselineExplainer, ExplainConfig, TopKExplainer};
use cape_core::mining::{ArpMiner, CubeMiner, Miner, NaiveMiner, ParallelMiner, ShareGrpMiner};
use cape_core::prelude::OptimizedExplainer;
use cape_core::session::CapeSession;
use cape_core::{Direction, MiningConfig, Thresholds};
use cape_data::{AggFunc, Relation, Schema, Value, ValueType};
use cape_obs::{SpanNode, TelemetrySnapshot};

/// Shops × days with a planted dip (A, day 3) and spike (A, day 4).
fn shops() -> Relation {
    let schema = Schema::new([("shop", ValueType::Str), ("day", ValueType::Int)]).unwrap();
    let mut rel = Relation::new(schema);
    for shop in ["A", "B", "C"] {
        for day in 0..8i64 {
            let n = match (shop, day) {
                ("A", 3) => 1,
                ("A", 4) => 7,
                _ => 4,
            };
            for _ in 0..n {
                rel.push_row(vec![Value::str(shop), Value::Int(day)]).unwrap();
            }
        }
    }
    rel
}

fn config() -> MiningConfig {
    MiningConfig { thresholds: Thresholds::new(0.1, 3, 0.3, 2), psi: 2, ..MiningConfig::default() }
}

fn span_names(nodes: &[SpanNode], out: &mut Vec<String>) {
    for n in nodes {
        out.push(n.name.clone());
        span_names(&n.children, out);
    }
}

fn assert_mining_telemetry(miner: &dyn Miner, name: &str) -> TelemetrySnapshot {
    let out = miner.mine(&shops(), &config()).expect("mining succeeds");
    let t = &out.telemetry;
    assert!(t.counter("mining.candidates_considered") > 0, "{name}: no candidates");
    assert!(t.counter("mining.fragments_fitted") > 0, "{name}: no fits");
    assert!(t.counter("mining.patterns_found") > 0, "{name}: no patterns");
    assert!(
        t.counter("mining.group_queries") + t.counter("mining.sort_queries") > 0,
        "{name}: no relational queries recorded"
    );
    let hist = t.histograms.get("mining.run_ns").unwrap_or_else(|| panic!("{name}: no run_ns"));
    assert_eq!(hist.count, 1, "{name}: one run, one observation");
    let mut names = Vec::new();
    span_names(&t.spans, &mut names);
    assert!(names.iter().any(|n| n == "mining.mine"), "{name}: no root span in {names:?}");
    out.telemetry.clone()
}

#[test]
fn every_miner_emits_the_documented_metrics() {
    let miners: [(&str, &dyn Miner); 5] = [
        ("NAIVE", &NaiveMiner),
        ("CUBE", &CubeMiner),
        ("SHARE-GRP", &ShareGrpMiner),
        ("ARP-MINE", &ArpMiner),
        ("PARALLEL", &ParallelMiner::default()),
    ];
    for (name, miner) in miners {
        assert_mining_telemetry(miner, name);
    }
}

#[test]
fn session_recorder_observes_nested_mining_run() {
    let recorder = cape_obs::Recorder::new();
    let install = recorder.install();
    let out = ArpMiner.mine(&shops(), &config()).unwrap();
    drop(install);
    let outer = recorder.snapshot();
    // The miner's own recorder and the outer session recorder both saw
    // the same counters.
    assert_eq!(
        outer.counter("mining.candidates_considered"),
        out.telemetry.counter("mining.candidates_considered")
    );
    assert_eq!(
        outer.counter("mining.candidates_considered") as usize,
        out.stats.candidates_considered
    );
    assert!(outer.histograms.contains_key("mining.run_ns"));
}

#[test]
fn explainers_publish_metrics_to_installed_recorder() {
    let session = CapeSession::mine(shops(), &config()).unwrap();
    let uq = session
        .question(
            AggFunc::Count,
            None,
            &[("shop", Value::str("A")), ("day", Value::Int(3))],
            Direction::Low,
        )
        .unwrap();
    let cfg = ExplainConfig::default_for(session.relation(), 2);

    let recorder = cape_obs::Recorder::new();
    let install = recorder.install();
    let (expls, stats) = OptimizedExplainer.explain(session.store(), &uq, &cfg);
    drop(install);
    assert!(!expls.is_empty());

    let snap = recorder.snapshot();
    assert_eq!(snap.counter("explain.patterns_relevant") as usize, stats.patterns_relevant);
    assert!(snap.counter("explain.tuples_checked") > 0);
    // Zero-valued counters are still published so snapshots always carry
    // the full explain.* key set.
    for key in [
        "explain.patterns_relevant",
        "explain.refinements_considered",
        "explain.refinements_pruned",
        "explain.tuples_checked",
        "explain.candidates_generated",
    ] {
        assert!(snap.counters.contains_key(key), "missing {key}");
    }
    assert_eq!(snap.histograms.get("explain.run_ns").map(|h| h.count), Some(1));
    let mut names = Vec::new();
    span_names(&snap.spans, &mut names);
    assert!(names.iter().any(|n| n == "explain.run"), "no explain.run span in {names:?}");
}

#[test]
fn snapshot_store_publishes_save_load_and_reject_metrics() {
    let rel = shops();
    let cfg = config();
    let store = ArpMiner.mine(&rel, &cfg).unwrap().store;
    let dir = std::env::temp_dir().join(format!("cape-obs-snap-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("store.cape");

    let recorder = cape_obs::Recorder::new();
    let install = recorder.install();
    let written = cape_core::snapshot::save_snapshot(&path, rel.schema(), &cfg, &store).unwrap();
    let loaded = cape_core::snapshot::load_snapshot(&path, &rel).unwrap();
    drop(install);
    assert_eq!(loaded.store.len(), store.len());

    let snap = recorder.snapshot();
    // One save, one load, and the byte counter saw the file twice.
    assert_eq!(snap.histograms.get("store.save_ns").map(|h| h.count), Some(1));
    assert_eq!(snap.histograms.get("store.load_ns").map(|h| h.count), Some(1));
    assert_eq!(snap.counter("store.bytes"), 2 * written as u64);
    assert_eq!(snap.counter("store.corrupt_rejects"), 0);

    // A corrupted file increments the reject counter and records no
    // additional successful load.
    let mut bytes = std::fs::read(&path).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0xFF;
    std::fs::write(&path, &bytes).unwrap();
    let recorder = cape_obs::Recorder::new();
    let install = recorder.install();
    assert!(cape_core::snapshot::load_snapshot(&path, &rel).is_err());
    drop(install);
    let snap = recorder.snapshot();
    assert_eq!(snap.counter("store.corrupt_rejects"), 1);
    assert!(!snap.histograms.contains_key("store.save_ns"));

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn baseline_explainer_is_instrumented() {
    let session = CapeSession::mine(shops(), &config()).unwrap();
    let uq = session
        .question(
            AggFunc::Count,
            None,
            &[("shop", Value::str("A")), ("day", Value::Int(3))],
            Direction::Low,
        )
        .unwrap();
    let cfg = ExplainConfig::default_for(session.relation(), 5);

    let recorder = cape_obs::Recorder::new();
    let install = recorder.install();
    let (_, stats) = BaselineExplainer.explain(session.relation(), &uq, &cfg).unwrap();
    drop(install);

    let snap = recorder.snapshot();
    assert_eq!(snap.counter("explain.baseline_tuples_checked") as usize, stats.tuples_checked);
    let mut names = Vec::new();
    span_names(&snap.spans, &mut names);
    assert!(names.iter().any(|n| n == "explain.baseline"));
}
