//! Property-based round-trip tests for the durable snapshot format:
//! arbitrary values survive the wire codec, arbitrary local-pattern maps
//! survive a full snapshot encode/decode, and float canonicalization
//! keeps the encoding byte-deterministic (no NaN payload or signed-zero
//! leakage into the file).

use cape_core::mining::{Miner, ShareGrpMiner};
use cape_core::snapshot::codec::{
    canonical_f64_bits, read_value, write_value, ByteReader, ByteWriter,
};
use cape_core::snapshot::{encode_snapshot, read_snapshot};
use cape_core::store::{LocalPattern, PatternStore};
use cape_core::{MiningConfig, Thresholds};
use cape_data::{Relation, Schema, Value, ValueType};
use cape_regress::{Fitted, Model};
use proptest::prelude::*;
use std::collections::HashMap;

/// Build a `Value` from a generated spec tuple.
fn value_from_spec((tag, i, s): (u8, i64, u8)) -> Value {
    match tag % 4 {
        0 => Value::Null,
        1 => Value::Int(i),
        2 => Value::Float(i as f64 / 3.0),
        _ => Value::str(format!("s{} {{}}|,%\"{s}", s)),
    }
}

/// A small mined fixture whose store has at least one instance.
fn mined() -> (Relation, MiningConfig, PatternStore) {
    let schema = Schema::new([("a", ValueType::Str), ("x", ValueType::Int)]).unwrap();
    let mut rel = Relation::new(schema);
    for g in 0..3 {
        for x in 0..5i64 {
            for _ in 0..3 {
                rel.push_row(vec![Value::str(format!("g{g}")), Value::Int(x)]).unwrap();
            }
        }
    }
    let cfg = MiningConfig {
        thresholds: Thresholds::new(0.1, 2, 0.1, 1),
        psi: 2,
        ..MiningConfig::default()
    };
    let store = ShareGrpMiner.mine(&rel, &cfg).unwrap().store;
    assert!(!store.is_empty());
    (rel, cfg, store)
}

proptest! {
    /// Every `Value` the pipeline can produce survives the wire codec
    /// bit-for-bit (under `Value`'s canonical equality).
    #[test]
    fn value_codec_roundtrips(specs in collection::vec((0u8..4, -1000i64..1000, 0u8..50), 1..40)) {
        let values: Vec<Value> = specs.into_iter().map(value_from_spec).collect();
        let mut w = ByteWriter::new();
        for v in &values {
            write_value(&mut w, v);
        }
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        for v in &values {
            prop_assert_eq!(&read_value(&mut r).unwrap(), v);
        }
        prop_assert!(r.is_empty(), "codec left trailing bytes");
    }

    /// An arbitrary fragment→local-pattern map — including keys that do
    /// not occur in the relation's data — survives a full snapshot
    /// encode/decode with `Eq`-identical locals.
    #[test]
    fn arbitrary_locals_roundtrip(
        key_specs in collection::vec((0u8..4, -5i64..6, 0u8..4), 0..12),
        val_specs in collection::vec((0.0f64..100.0, 0.0f64..1.0, 1usize..40, 0.0f64..10.0), 12..13),
    ) {
        let (rel, cfg, mut store) = mined();
        let arity = store.get(0).unwrap().arp.f().len();
        let mut locals: HashMap<Vec<Value>, LocalPattern> = HashMap::new();
        for (i, spec) in key_specs.iter().enumerate() {
            // Cycle the spec into a key of the pattern's partition arity.
            let key: Vec<Value> = (0..arity)
                .map(|j| value_from_spec((spec.0.wrapping_add(j as u8), spec.1 + j as i64, spec.2)))
                .collect();
            let (beta, gof, support, dev) = val_specs[i % val_specs.len()];
            locals.insert(key, LocalPattern {
                fitted: Fitted { model: Model::Constant { beta }, gof, n: support },
                support,
                max_pos_dev: dev,
                max_neg_dev: -dev,
            });
        }
        let instances: Vec<_> = store.iter().map(|(_, p)| p.clone()).collect();
        let mut first = instances[0].clone();
        first.locals = locals.clone();
        store = PatternStore::from_instances(
            std::iter::once(first).chain(instances.into_iter().skip(1)).collect(),
        );

        let bytes = encode_snapshot(rel.schema(), &cfg, &store);
        let back = read_snapshot(&bytes, &rel).unwrap();
        prop_assert_eq!(back.store.len(), store.len());
        prop_assert_eq!(&back.store.get(0).unwrap().locals, &locals);
        for ((_, a), (_, b)) in store.iter().zip(back.store.iter()) {
            prop_assert_eq!(&a.arp, &b.arp);
            prop_assert_eq!(&a.locals, &b.locals);
            prop_assert_eq!(a.confidence.to_bits(), b.confidence.to_bits());
        }
        // Determinism: re-encoding the decoded store reproduces the file.
        prop_assert_eq!(&encode_snapshot(rel.schema(), &back.config, &back.store), &bytes);
    }
}

#[test]
fn nan_and_signed_zero_canonicalize_in_the_file() {
    // Two different NaN payloads and the two signed zeros must produce
    // byte-identical encodings, or snapshots stop being deterministic.
    let quiet = f64::NAN;
    let payload = f64::from_bits(f64::NAN.to_bits() ^ 0xdead);
    assert!(payload.is_nan());
    assert_eq!(canonical_f64_bits(quiet), canonical_f64_bits(payload));
    assert_eq!(canonical_f64_bits(0.0), canonical_f64_bits(-0.0));

    let encode = |x: f64| {
        let mut w = ByteWriter::new();
        write_value(&mut w, &Value::Float(x));
        w.into_bytes()
    };
    assert_eq!(encode(quiet), encode(payload));
    assert_eq!(encode(0.0), encode(-0.0));

    // And a NaN value still round-trips to a NaN (Value's canonical
    // equality treats all NaNs as equal).
    let bytes = encode(f64::NAN);
    let mut r = ByteReader::new(&bytes);
    assert_eq!(read_value(&mut r).unwrap(), Value::Float(f64::NAN));
}

#[test]
fn empty_store_roundtrip() {
    let schema = Schema::new([("a", ValueType::Str)]).unwrap();
    let rel = Relation::new(schema);
    let cfg = MiningConfig::default();
    let bytes = encode_snapshot(rel.schema(), &cfg, &PatternStore::new());
    let back = read_snapshot(&bytes, &rel).unwrap();
    assert!(back.store.is_empty());
}

#[test]
fn single_pattern_roundtrip() {
    let (rel, cfg, store) = mined();
    let one = PatternStore::from_instances(vec![store.get(0).unwrap().clone()]);
    let bytes = encode_snapshot(rel.schema(), &cfg, &one);
    let back = read_snapshot(&bytes, &rel).unwrap();
    assert_eq!(back.store.len(), 1);
    assert_eq!(back.store.get(0).unwrap().arp, one.get(0).unwrap().arp);
    assert_eq!(back.store.get(0).unwrap().locals, one.get(0).unwrap().locals);
}
