//! Synthetic DBLP-like publication data with planted ARP structure.
//!
//! The paper evaluates on a crawl of DBLP (schema
//! `Pub(author, pubid, year, venue)`, versions from 10k to 1M rows) that
//! we do not ship. This generator produces a statistically similar
//! substitute: authors with careers spanning a subset of years, a
//! per-author publication *trend* that is either constant or linear (so
//! both `Const` and `Lin` ARPs exist to be mined), and Zipf-skewed venue
//! preferences. A designated case-study author reproduces the shape of
//! the paper's running example (the SIGKDD-2007 dip counterbalanced by
//! ICDE publications and a 2010 surge) for the qualitative tables.

use crate::zipf::Zipf;
use cape_data::interner::Interner;
use cape_data::{Relation, Schema, Value, ValueType};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Attribute indices of the generated `Pub` relation.
pub mod attrs {
    /// `author` (Str).
    pub const AUTHOR: usize = 0;
    /// `pubid` (Str, unique — exclude from mining like the paper does).
    pub const PUBID: usize = 1;
    /// `year` (Int).
    pub const YEAR: usize = 2;
    /// `venue` (Str).
    pub const VENUE: usize = 3;
}

/// Name of the planted case-study author (the paper's `A_X`).
pub const CASE_STUDY_AUTHOR: &str = "AX";

/// Configuration for the DBLP generator.
#[derive(Debug, Clone)]
pub struct DblpConfig {
    /// Approximate number of rows to generate (the generator stops adding
    /// authors once reached; the final count lands within one author's
    /// career of the target).
    pub target_rows: usize,
    /// Number of distinct venues.
    pub n_venues: usize,
    /// First publication year (inclusive).
    pub year_min: i64,
    /// Last publication year (inclusive).
    pub year_max: i64,
    /// RNG seed — generation is fully deterministic given the config.
    pub seed: u64,
    /// Inject the case-study author `AX` used by the qualitative tables.
    pub case_study: bool,
}

impl Default for DblpConfig {
    fn default() -> Self {
        DblpConfig {
            target_rows: 10_000,
            n_venues: 50,
            year_min: 2000,
            year_max: 2017,
            seed: 0xCAFE,
            case_study: true,
        }
    }
}

impl DblpConfig {
    /// Convenience: a config for a given row count.
    pub fn with_rows(target_rows: usize) -> Self {
        DblpConfig { target_rows, ..DblpConfig::default() }
    }
}

/// The `Pub(author, pubid, year, venue)` schema.
pub fn pub_schema() -> Schema {
    Schema::new([
        ("author", ValueType::Str),
        ("pubid", ValueType::Str),
        ("year", ValueType::Int),
        ("venue", ValueType::Str),
    ])
    .expect("static schema")
}

/// Generate the synthetic publications relation.
pub fn generate(cfg: &DblpConfig) -> Relation {
    assert!(cfg.year_min <= cfg.year_max);
    assert!(cfg.n_venues >= 1);
    let mut rng = SmallRng::seed_from_u64(cfg.seed);
    let mut rel = Relation::with_capacity(pub_schema(), cfg.target_rows + 256);
    let mut interner = Interner::new();
    let mut pub_counter = 0usize;

    let venue_names: Vec<String> = (0..cfg.n_venues).map(venue_name).collect();
    let venue_zipf = Zipf::new(cfg.n_venues, 0.9);
    let n_years = (cfg.year_max - cfg.year_min + 1) as usize;

    if cfg.case_study {
        emit_case_study(&mut rel, &mut interner, &mut pub_counter);
    }

    let mut author_id = 0usize;
    while rel.num_rows() < cfg.target_rows {
        let author = format!("a{author_id}");
        author_id += 1;

        // Career: a contiguous span of years.
        let span = rng.gen_range(3..=n_years);
        let start = rng.gen_range(0..=n_years - span);

        // Trend: constant rate or linearly growing/declining output.
        let constant = rng.gen_bool(0.6);
        let base = rng.gen_range(1..=8) as f64;
        let slope = if constant { 0.0 } else { rng.gen_range(-0.8..0.8) };

        // Venue taste: each author draws from the global Zipf through a
        // personal offset, giving everyone a few favourite venues.
        let offset = rng.gen_range(0..cfg.n_venues);

        for (i, y) in (start..start + span).enumerate() {
            let year = cfg.year_min + y as i64;
            let expected = (base + slope * i as f64).max(0.0);
            // Small integer noise around the trend keeps GoF high but not 1.
            let noise = rng.gen_range(-1.0..=1.0f64);
            let n_papers = (expected + noise).round().max(0.0) as usize;
            for _ in 0..n_papers {
                let v = (venue_zipf.sample(&mut rng) + offset) % cfg.n_venues;
                push_pub(&mut rel, &mut interner, &mut pub_counter, &author, year, &venue_names[v]);
            }
        }
    }
    rel
}

/// The case-study author's publication counts per (venue, year), shaped
/// after the paper's running example: near-constant output per venue with
/// a SIGKDD dip in 2007 counterbalanced by extra ICDE papers in 2006/2007,
/// a SIGKDD surge in 2012 counterbalanced by a thin 2013, and an
/// everything-surge in 2010.
fn case_study_counts() -> Vec<(&'static str, i64, usize)> {
    let mut out = Vec::new();
    // (venue, base rate per year 2004..=2013)
    let venues: [(&str, usize); 6] =
        [("SIGKDD", 4), ("ICDE", 4), ("VLDB", 3), ("ICDM", 3), ("SIGMOD", 2), ("TKDE", 2)];
    for (venue, base) in venues {
        for year in 2004..=2013 {
            let mut n = base;
            match (venue, year) {
                // The φ₀ outlier: only 1 SIGKDD paper in 2007 …
                ("SIGKDD", 2007) => n = 1,
                // … counterbalanced by extra ICDE papers.
                ("ICDE", 2007) => n = base + 3,
                ("ICDE", 2006) => n = base + 2,
                // Table 4's high outlier: many SIGKDD papers in 2012 …
                ("SIGKDD", 2012) => n = base + 4,
                // … explained by a thin 2013 everywhere.
                (_, 2013) => n = 1,
                // A 2010 surge across the board (the paper's rank-10
                // "63 publications in 2010" explanation).
                (_, 2010) => n = base * 2 + 2,
                _ => {}
            }
            out.push((venue, year, n));
        }
    }
    out
}

fn emit_case_study(rel: &mut Relation, interner: &mut Interner, counter: &mut usize) {
    for (venue, year, n) in case_study_counts() {
        for _ in 0..n {
            push_pub(rel, interner, counter, CASE_STUDY_AUTHOR, year, venue);
        }
    }
}

fn push_pub(
    rel: &mut Relation,
    interner: &mut Interner,
    counter: &mut usize,
    author: &str,
    year: i64,
    venue: &str,
) {
    let pubid = format!("p{counter}");
    *counter += 1;
    rel.push_row(vec![
        Value::Str(interner.intern(author)),
        Value::str(pubid),
        Value::Int(year),
        Value::Str(interner.intern(venue)),
    ])
    .expect("schema-conforming row");
}

fn venue_name(i: usize) -> String {
    // A few recognizable names first, then synthetic ones.
    const KNOWN: [&str; 10] =
        ["SIGKDD", "ICDE", "VLDB", "ICDM", "SIGMOD", "TKDE", "WSDM", "CIKM", "EDBT", "PODS"];
    KNOWN.get(i).map(|s| s.to_string()).unwrap_or_else(|| format!("VENUE{i}"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use cape_data::ops::{aggregate, distinct_project};
    use cape_data::{AggSpec, Predicate};

    #[test]
    fn deterministic_given_seed() {
        let cfg = DblpConfig { target_rows: 2_000, ..DblpConfig::default() };
        let a = generate(&cfg);
        let b = generate(&cfg);
        assert_eq!(a.num_rows(), b.num_rows());
        assert_eq!(a.row(123), b.row(123));
        let mut cfg2 = cfg;
        cfg2.seed = 7;
        let c = generate(&cfg2);
        assert!(
            c.iter_rows().zip(a.iter_rows()).any(|(x, y)| x != y),
            "different seeds should differ"
        );
    }

    #[test]
    fn reaches_target_size() {
        for target in [1_000, 5_000] {
            let rel = generate(&DblpConfig::with_rows(target));
            assert!(rel.num_rows() >= target);
            // Within one author's career of the target.
            assert!(rel.num_rows() < target + 500, "overshoot: {}", rel.num_rows());
        }
    }

    #[test]
    fn pubids_are_unique() {
        let rel = generate(&DblpConfig::with_rows(3_000));
        let ids = distinct_project(&rel, &[attrs::PUBID]).unwrap();
        assert_eq!(ids.num_rows(), rel.num_rows());
    }

    #[test]
    fn years_within_range() {
        let cfg = DblpConfig { target_rows: 2_000, case_study: false, ..DblpConfig::default() };
        let rel = generate(&cfg);
        for v in rel.column_iter(attrs::YEAR) {
            let y = v.as_i64().unwrap();
            assert!((cfg.year_min..=cfg.year_max).contains(&y));
        }
    }

    #[test]
    fn case_study_author_has_the_planted_dip() {
        let rel = generate(&DblpConfig::with_rows(2_000));
        let ax = cape_data::ops::select(
            &rel,
            &Predicate::Eq(attrs::AUTHOR, Value::str(CASE_STUDY_AUTHOR)),
        );
        assert!(!ax.is_empty(), "case-study author missing");
        let counts = aggregate(&ax, &[attrs::VENUE, attrs::YEAR], &[AggSpec::count_star()])
            .unwrap()
            .relation;
        let count_of = |venue: &str, year: i64| -> i64 {
            (0..counts.num_rows())
                .find(|&i| {
                    counts.value(i, 0) == Value::str(venue)
                        && counts.value(i, 1) == Value::Int(year)
                })
                .map(|i| counts.value(i, 2).as_i64().unwrap())
                .unwrap_or(0)
        };
        assert_eq!(count_of("SIGKDD", 2007), 1);
        assert!(count_of("SIGKDD", 2006) >= 3);
        assert!(count_of("ICDE", 2007) > count_of("ICDE", 2008));
        assert!(count_of("SIGKDD", 2012) >= 8);
    }

    #[test]
    fn many_authors_have_mineable_careers() {
        let rel = generate(&DblpConfig::with_rows(5_000));
        let authors = distinct_project(&rel, &[attrs::AUTHOR]).unwrap();
        assert!(authors.num_rows() > 20, "too few authors: {}", authors.num_rows());
    }
}
