#![warn(missing_docs)]

//! # cape-datagen — synthetic datasets for the CAPE reproduction
//!
//! The paper evaluates on two external datasets (a DBLP crawl and the
//! Chicago Crime open-data extract) that are not shipped here. This crate
//! generates deterministic synthetic substitutes that preserve what the
//! experiments measure:
//!
//! * [`dblp`] — `Pub(author, pubid, year, venue)` with per-author
//!   constant/linear publication trends and a planted case-study author;
//! * [`crime`] — 11 discrete attributes with planted FDs
//!   (`community → district`, `month → season`, …) and per-(type, area)
//!   yearly trends;
//! * [`ground_truth`] — outlier/counterbalance injection for the
//!   parameter-sensitivity experiment (Figure 7);
//! * [`zipf`] — skewed categorical sampling.

pub mod crime;
pub mod dblp;
pub mod ground_truth;
pub mod zipf;

pub use crime::{crime_schema, CrimeConfig};
pub use dblp::{pub_schema, DblpConfig, CASE_STUDY_AUTHOR};
pub use ground_truth::{inject, pick_coordinates, InjectedCase};
pub use zipf::Zipf;
