//! Ground-truth outlier/counterbalance injection (paper §5.3).
//!
//! The parameter-sensitivity experiment (Figure 7) needs datasets with
//! *known* explanations: starting from a base relation, pick a fragment
//! (partition-attribute value) and a predictor value, push the aggregate
//! at that coordinate down (or up) to create the questioned outlier, and
//! push a nearby coordinate the opposite way to create the ground-truth
//! counterbalance. Precision is then the fraction of planted
//! counterbalances CAPE ranks into the top-k.
//!
//! This module works purely on relations (it cannot depend on
//! `cape-core`); the benchmark harness turns [`InjectedCase`]s into user
//! questions.

use cape_data::ops::{filter, select};
use cape_data::{AttrId, Predicate, Relation, Value};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Where and how a case was planted.
#[derive(Debug, Clone)]
pub struct InjectedCase {
    /// The modified relation.
    pub relation: Relation,
    /// Partition attributes of the planted pattern coordinate.
    pub f_attrs: Vec<AttrId>,
    /// The fragment value the outlier lives in.
    pub f_vals: Vec<Value>,
    /// Predictor attribute.
    pub v_attr: AttrId,
    /// Predictor value of the outlier.
    pub outlier_v: Value,
    /// Predictor value of the planted counterbalance.
    pub counter_v: Value,
    /// `true` = the outlier is LOW (rows removed) and the counterbalance
    /// HIGH (rows added); `false` = the reverse.
    pub outlier_low: bool,
    /// Number of rows moved.
    pub moved: usize,
}

impl InjectedCase {
    /// The machine-readable answer key recording where the
    /// counterbalance was planted.
    pub fn answer_key(&self) -> AnswerKey {
        AnswerKey {
            f_attrs: self.f_attrs.clone(),
            f_vals: self.f_vals.clone(),
            v_attr: self.v_attr,
            counter_v: self.counter_v.clone(),
            outlier_v: self.outlier_v.clone(),
            outlier_low: self.outlier_low,
        }
    }
}

/// Machine-readable answer key for one planted case: the exact lattice
/// coordinate `(F = f_vals, V = counter_v)` a correct explainer must
/// retrieve. Benchmarks serialize this next to their metrics so a result
/// file is self-describing, and use [`AnswerKey::matches`] to score
/// retrieved explanations.
#[derive(Debug, Clone, PartialEq)]
pub struct AnswerKey {
    /// Partition attributes of the planted coordinate.
    pub f_attrs: Vec<AttrId>,
    /// Fragment values the outlier lives in.
    pub f_vals: Vec<Value>,
    /// Predictor attribute.
    pub v_attr: AttrId,
    /// Predictor value of the planted counterbalance — the value a
    /// retrieved explanation tuple must carry at `v_attr`.
    pub counter_v: Value,
    /// Predictor value of the questioned outlier.
    pub outlier_v: Value,
    /// Whether the questioned outlier is low (counterbalance high).
    pub outlier_low: bool,
}

impl AnswerKey {
    /// Does a retrieved explanation hit the planted counterbalance? The
    /// explanation is given as parallel `(attrs, tuple)` slices (the
    /// shape CAPE emits); it matches when every fragment coordinate is
    /// present with the planted value AND the predictor attribute is
    /// present with `counter_v`. Coarser explanations that omit a planted
    /// coordinate do not match — the key names one exact cell.
    pub fn matches(&self, attrs: &[AttrId], tuple: &[Value]) -> bool {
        let find = |want: AttrId| attrs.iter().position(|a| *a == want).map(|i| &tuple[i]);
        self.f_attrs.iter().zip(&self.f_vals).all(|(a, v)| find(*a).is_some_and(|got| got == v))
            && find(self.v_attr).is_some_and(|got| *got == self.counter_v)
    }
}

/// Plant an outlier/counterbalance pair: remove (or duplicate) a fraction
/// of the rows at `(F = f_vals, V = outlier_v)` and add (or remove) the
/// same number at `(F = f_vals, V = counter_v)`.
///
/// Returns `None` when the source coordinate has too few rows (< 4) to
/// carry a visible outlier.
#[allow(clippy::too_many_arguments)] // mirrors the paper's (F, v, direction, magnitude) spec
pub fn inject(
    rel: &Relation,
    f_attrs: &[AttrId],
    f_vals: &[Value],
    v_attr: AttrId,
    outlier_v: &Value,
    counter_v: &Value,
    outlier_low: bool,
    fraction: f64,
    seed: u64,
) -> Option<InjectedCase> {
    assert!((0.0..=1.0).contains(&fraction));
    let mut pred_out = Predicate::key_match(f_attrs, f_vals);
    if let Predicate::And(parts) = &mut pred_out {
        parts.push(Predicate::Eq(v_attr, outlier_v.clone()));
    }
    let at_outlier: Vec<usize> = (0..rel.num_rows()).filter(|&i| pred_out.eval(rel, i)).collect();
    if at_outlier.len() < 4 {
        return None;
    }
    let moved = ((at_outlier.len() as f64) * fraction).round().max(1.0) as usize;
    let mut rng = SmallRng::seed_from_u64(seed);

    let (removed_at, duplicated_at) = if outlier_low {
        (outlier_v.clone(), counter_v.clone())
    } else {
        (counter_v.clone(), outlier_v.clone())
    };

    // Rows to delete: `moved` random rows at (F, removed_at).
    let mut pred_rm = Predicate::key_match(f_attrs, f_vals);
    if let Predicate::And(parts) = &mut pred_rm {
        parts.push(Predicate::Eq(v_attr, removed_at.clone()));
    }
    let mut removable: Vec<usize> = (0..rel.num_rows()).filter(|&i| pred_rm.eval(rel, i)).collect();
    if removable.len() < moved {
        return None;
    }
    // Deterministic shuffle-select.
    for i in (1..removable.len()).rev() {
        removable.swap(i, rng.gen_range(0..=i));
    }
    let to_remove: std::collections::HashSet<usize> = removable.into_iter().take(moved).collect();

    let mut out = filter(rel, |_, i| !to_remove.contains(&i));

    // Rows to duplicate: sample `moved` rows at (F, duplicated_at) as
    // templates, rewrite their V value, and append.
    let mut pred_dup = Predicate::key_match(f_attrs, f_vals);
    if let Predicate::And(parts) = &mut pred_dup {
        parts.push(Predicate::Eq(v_attr, duplicated_at.clone()));
    }
    let templates = select(rel, &pred_dup);
    let template_pool = if templates.is_empty() {
        // No row exists yet at the boosted coordinate: clone from the
        // removal site and rewrite V below.
        select(rel, &pred_rm)
    } else {
        templates
    };
    for n in 0..moved {
        let src = rng.gen_range(0..template_pool.num_rows());
        let mut row = template_pool.row(src);
        row[v_attr] = duplicated_at.clone();
        // Unique-ish identifier columns would collide; the CAPE datasets
        // exclude them from mining, so leaving duplicates is harmless —
        // but jitter any column literally named like an id if present.
        let _ = n;
        out.push_row(row).expect("same schema");
    }

    Some(InjectedCase {
        relation: out,
        f_attrs: f_attrs.to_vec(),
        f_vals: f_vals.to_vec(),
        v_attr,
        outlier_v: outlier_v.clone(),
        counter_v: counter_v.clone(),
        outlier_low,
        moved,
    })
}

/// Pick random fragment / predictor-value coordinates for injection from
/// the data itself: a fragment with at least `min_rows` rows at two
/// distinct predictor values.
pub fn pick_coordinates(
    rel: &Relation,
    f_attrs: &[AttrId],
    v_attr: AttrId,
    min_rows: usize,
    seed: u64,
) -> Option<(Vec<Value>, Value, Value)> {
    use std::collections::HashMap;
    let mut counts: HashMap<(Vec<Value>, Value), usize> = HashMap::new();
    for i in 0..rel.num_rows() {
        let f = rel.row_project(i, f_attrs);
        let v = rel.value(i, v_attr).clone();
        *counts.entry((f, v)).or_insert(0) += 1;
    }
    // Fragment → list of (v, count), needs ≥ 2 qualifying predictor values.
    let mut by_frag: HashMap<Vec<Value>, Vec<(Value, usize)>> = HashMap::new();
    for ((f, v), n) in counts {
        if n >= min_rows {
            by_frag.entry(f).or_default().push((v, n));
        }
    }
    type Fragment = (Vec<Value>, Vec<(Value, usize)>);
    let mut frags: Vec<Fragment> = by_frag.into_iter().filter(|(_, vs)| vs.len() >= 2).collect();
    if frags.is_empty() {
        return None;
    }
    frags.sort(); // determinism
    let mut rng = SmallRng::seed_from_u64(seed);
    let (f, mut vs) = frags.swap_remove(rng.gen_range(0..frags.len()));
    vs.sort_by(|a, b| a.0.cmp(&b.0));
    let i = rng.gen_range(0..vs.len());
    let mut j = rng.gen_range(0..vs.len());
    if j == i {
        j = (j + 1) % vs.len();
    }
    Some((f, vs[i].0.clone(), vs[j].0.clone()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dblp::{attrs, generate, DblpConfig};
    use cape_data::ops::aggregate;
    use cape_data::AggSpec;

    fn base() -> Relation {
        generate(&DblpConfig { target_rows: 3_000, case_study: false, ..DblpConfig::default() })
    }

    fn count_at(rel: &Relation, author: &Value, year: &Value) -> usize {
        (0..rel.num_rows())
            .filter(|&i| {
                rel.value(i, attrs::AUTHOR) == *author && rel.value(i, attrs::YEAR) == *year
            })
            .count()
    }

    #[test]
    fn pick_finds_usable_coordinates() {
        let rel = base();
        let picked = pick_coordinates(&rel, &[attrs::AUTHOR], attrs::YEAR, 3, 1);
        let (f, v1, v2) = picked.expect("coordinates should exist in 3k rows");
        assert_ne!(v1, v2);
        assert!(count_at(&rel, &f[0], &v1) >= 3);
        assert!(count_at(&rel, &f[0], &v2) >= 3);
    }

    #[test]
    fn low_outlier_moves_mass_to_counterbalance() {
        let rel = base();
        let (f, v1, v2) =
            pick_coordinates(&rel, &[attrs::AUTHOR], attrs::YEAR, 4, 2).expect("coords");
        let before_out = count_at(&rel, &f[0], &v1);
        let before_cnt = count_at(&rel, &f[0], &v2);
        let case = inject(&rel, &[attrs::AUTHOR], &f, attrs::YEAR, &v1, &v2, true, 0.6, 7)
            .expect("injectable");
        let after_out = count_at(&case.relation, &f[0], &v1);
        let after_cnt = count_at(&case.relation, &f[0], &v2);
        assert_eq!(after_out, before_out - case.moved);
        assert_eq!(after_cnt, before_cnt + case.moved);
        assert!(case.moved >= 2);
        // Total row count preserved.
        assert_eq!(case.relation.num_rows(), rel.num_rows());
    }

    #[test]
    fn high_outlier_reverses_direction() {
        let rel = base();
        let (f, v1, v2) =
            pick_coordinates(&rel, &[attrs::AUTHOR], attrs::YEAR, 4, 3).expect("coords");
        let before_out = count_at(&rel, &f[0], &v1);
        let case = inject(&rel, &[attrs::AUTHOR], &f, attrs::YEAR, &v1, &v2, false, 0.5, 9)
            .expect("injectable");
        let after_out = count_at(&case.relation, &f[0], &v1);
        assert!(after_out > before_out, "high outlier must gain rows");
        assert!(!case.outlier_low);
    }

    #[test]
    fn injection_preserves_aggregate_elsewhere() {
        let rel = base();
        let (f, v1, v2) =
            pick_coordinates(&rel, &[attrs::AUTHOR], attrs::YEAR, 4, 4).expect("coords");
        let case = inject(&rel, &[attrs::AUTHOR], &f, attrs::YEAR, &v1, &v2, true, 0.5, 11)
            .expect("injectable");
        // Counts for *other* authors are untouched.
        let agg_before =
            aggregate(&rel, &[attrs::AUTHOR], &[AggSpec::count_star()]).unwrap().relation;
        let agg_after =
            aggregate(&case.relation, &[attrs::AUTHOR], &[AggSpec::count_star()]).unwrap().relation;
        for i in 0..agg_before.num_rows() {
            let author = agg_before.value(i, 0);
            if author == f[0] {
                continue;
            }
            let before = agg_before.value(i, 1).as_i64().unwrap();
            let after = (0..agg_after.num_rows())
                .find(|&j| agg_after.value(j, 0) == author)
                .map(|j| agg_after.value(j, 1).as_i64().unwrap())
                .unwrap_or(0);
            assert_eq!(before, after, "author {author:?} changed");
        }
    }

    #[test]
    fn answer_key_matches_exact_cell_only() {
        let rel = base();
        let (f, v1, v2) =
            pick_coordinates(&rel, &[attrs::AUTHOR], attrs::YEAR, 4, 5).expect("coords");
        let case = inject(&rel, &[attrs::AUTHOR], &f, attrs::YEAR, &v1, &v2, true, 0.5, 13)
            .expect("injectable");
        let key = case.answer_key();
        assert_eq!(key.counter_v, v2);
        assert_eq!(key.outlier_v, v1);
        assert!(key.outlier_low);

        // The planted cell matches, in either attribute order and with
        // extra attributes present.
        let author = f[0].clone();
        assert!(key.matches(&[attrs::AUTHOR, attrs::YEAR], &[author.clone(), v2.clone()]));
        assert!(key.matches(&[attrs::YEAR, attrs::AUTHOR], &[v2.clone(), author.clone()]));
        assert!(key.matches(
            &[attrs::AUTHOR, attrs::VENUE, attrs::YEAR],
            &[author.clone(), Value::str("VLDB"), v2.clone()],
        ));

        // Wrong author, wrong year, or a missing coordinate: no match.
        assert!(!key.matches(&[attrs::AUTHOR, attrs::YEAR], &[Value::str("zz"), v2.clone()]));
        assert!(!key.matches(&[attrs::AUTHOR, attrs::YEAR], &[author.clone(), v1.clone()]));
        assert!(!key.matches(&[attrs::YEAR], std::slice::from_ref(&v2)));
        assert!(!key.matches(&[attrs::AUTHOR], &[author]));
    }

    #[test]
    fn tiny_coordinates_rejected() {
        let rel = base();
        let nobody = Value::str("no-such-author");
        assert!(inject(
            &rel,
            &[attrs::AUTHOR],
            &[nobody],
            attrs::YEAR,
            &Value::Int(2005),
            &Value::Int(2006),
            true,
            0.5,
            1
        )
        .is_none());
    }
}
