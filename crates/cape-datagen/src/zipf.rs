//! Zipf-distributed sampling for skewed categorical domains.

use rand::Rng;

/// A Zipf(α) distribution over ranks `0..n`: rank `r` has probability
/// proportional to `1 / (r + 1)^α`. Sampled by inverse CDF over a
/// precomputed table (domains here are at most tens of thousands).
#[derive(Debug, Clone)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Build a Zipf distribution over `n ≥ 1` ranks with exponent `alpha ≥ 0`
    /// (`alpha = 0` is uniform).
    pub fn new(n: usize, alpha: f64) -> Self {
        assert!(n >= 1, "Zipf needs at least one rank");
        assert!(alpha >= 0.0, "alpha must be non-negative");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for r in 0..n {
            acc += 1.0 / ((r + 1) as f64).powf(alpha);
            cdf.push(acc);
        }
        let total = acc;
        for c in &mut cdf {
            *c /= total;
        }
        Zipf { cdf }
    }

    /// Number of ranks.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// True when the domain has no ranks (never: `new` requires `n ≥ 1`).
    pub fn is_empty(&self) -> bool {
        self.cdf.is_empty()
    }

    /// Sample a rank.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.gen();
        // partition_point returns the first rank whose CDF value exceeds u.
        self.cdf.partition_point(|&c| c < u).min(self.cdf.len() - 1)
    }

    /// Probability mass of rank `r`.
    pub fn pmf(&self, r: usize) -> f64 {
        let lo = if r == 0 { 0.0 } else { self.cdf[r - 1] };
        self.cdf[r] - lo
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn uniform_when_alpha_zero() {
        let z = Zipf::new(4, 0.0);
        for r in 0..4 {
            assert!((z.pmf(r) - 0.25).abs() < 1e-12);
        }
    }

    #[test]
    fn skewed_when_alpha_positive() {
        let z = Zipf::new(10, 1.0);
        assert!(z.pmf(0) > z.pmf(1));
        assert!(z.pmf(1) > z.pmf(5));
        // PMF sums to 1.
        let total: f64 = (0..10).map(|r| z.pmf(r)).sum();
        assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    fn sampling_matches_pmf_roughly() {
        let z = Zipf::new(5, 1.2);
        let mut rng = SmallRng::seed_from_u64(42);
        let mut counts = [0usize; 5];
        let n = 50_000;
        for _ in 0..n {
            counts[z.sample(&mut rng)] += 1;
        }
        for (r, &count) in counts.iter().enumerate() {
            let freq = count as f64 / n as f64;
            assert!((freq - z.pmf(r)).abs() < 0.01, "rank {r}: freq {freq}, pmf {}", z.pmf(r));
        }
    }

    #[test]
    fn single_rank() {
        let z = Zipf::new(1, 2.0);
        let mut rng = SmallRng::seed_from_u64(1);
        assert_eq!(z.sample(&mut rng), 0);
        assert_eq!(z.len(), 1);
        assert!(!z.is_empty());
    }

    #[test]
    #[should_panic(expected = "at least one rank")]
    fn zero_ranks_rejected() {
        Zipf::new(0, 1.0);
    }
}
