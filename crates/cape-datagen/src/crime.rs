//! Synthetic Chicago-Crime-like data with planted trends and FDs.
//!
//! The paper's Crime dataset (6.5M rows, 22 attributes reduced to 4–11
//! discrete ones) is an external download we substitute with a generator
//! that matches what the experiments exercise:
//!
//! * 11 discrete attributes with domain sizes from 2 (arrest flag) to
//!   hundreds (location), ordered so that taking a prefix of the schema
//!   yields the paper's "vary the number of attributes A" datasets;
//! * planted functional dependencies (`community → district`,
//!   `district → side`, `beat → community`, `month → season`) so the FD
//!   optimizations of Appendix D have real work to do;
//! * per-(type, community) yearly crime counts following constant or
//!   linear trends with noise, so both ARP model types are mineable;
//! * an optional case-study cell reproducing the shape of the paper's
//!   `(Battery, community 26, 2011, low)` question from Appendix A.

use crate::zipf::Zipf;
use cape_data::interner::Interner;
use cape_data::{Relation, Schema, Value, ValueType};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Attribute indices of the generated crime relation. The order is chosen
/// so that prefixes are the natural small-schema versions: the first four
/// attributes are the core of every experiment's queries.
pub mod attrs {
    /// `primary_type` (Str, ~30 values).
    pub const PRIMARY_TYPE: usize = 0;
    /// `community` (Int, 1–77).
    pub const COMMUNITY: usize = 1;
    /// `year` (Int, 2001–2017).
    pub const YEAR: usize = 2;
    /// `month` (Int, 1–12).
    pub const MONTH: usize = 3;
    /// `district` (Int; FD: community → district).
    pub const DISTRICT: usize = 4;
    /// `side` (Str; FD: district → side).
    pub const SIDE: usize = 5;
    /// `beat` (Int; FD: beat → community).
    pub const BEAT: usize = 6;
    /// `season` (Str; FD: month → season).
    pub const SEASON: usize = 7;
    /// `dow` (Str, 7 values).
    pub const DOW: usize = 8;
    /// `location_desc` (Str, ~120 values).
    pub const LOCATION: usize = 9;
    /// `arrest` (Str, 2 values).
    pub const ARREST: usize = 10;
}

/// Number of generated attributes.
pub const N_ATTRS: usize = 11;

/// Configuration for the crime generator.
#[derive(Debug, Clone)]
pub struct CrimeConfig {
    /// Approximate number of rows.
    pub target_rows: usize,
    /// Number of crime types (domain of `primary_type`).
    pub n_types: usize,
    /// Number of community areas.
    pub n_communities: usize,
    /// Number of location descriptions.
    pub n_locations: usize,
    /// First year (inclusive).
    pub year_min: i64,
    /// Last year (inclusive).
    pub year_max: i64,
    /// RNG seed.
    pub seed: u64,
    /// Plant the Appendix-A case-study cell (Battery / community 26).
    pub case_study: bool,
}

impl Default for CrimeConfig {
    fn default() -> Self {
        CrimeConfig {
            target_rows: 10_000,
            n_types: 30,
            n_communities: 77,
            n_locations: 120,
            year_min: 2001,
            year_max: 2017,
            seed: 0xC1217,
            case_study: true,
        }
    }
}

impl CrimeConfig {
    /// Convenience: a config for a given row count.
    pub fn with_rows(target_rows: usize) -> Self {
        CrimeConfig { target_rows, ..CrimeConfig::default() }
    }
}

/// The 11-attribute crime schema.
pub fn crime_schema() -> Schema {
    Schema::new([
        ("primary_type", ValueType::Str),
        ("community", ValueType::Int),
        ("year", ValueType::Int),
        ("month", ValueType::Int),
        ("district", ValueType::Int),
        ("side", ValueType::Str),
        ("beat", ValueType::Int),
        ("season", ValueType::Str),
        ("dow", ValueType::Str),
        ("location_desc", ValueType::Str),
        ("arrest", ValueType::Str),
    ])
    .expect("static schema")
}

/// The planted FD `community → district`.
pub fn district_of(community: i64) -> i64 {
    community / 4 + 1
}

/// The planted FD `district → side`.
pub fn side_of(district: i64) -> &'static str {
    const SIDES: [&str; 9] = [
        "Far North",
        "North",
        "Northwest",
        "West",
        "Central",
        "South",
        "Southwest",
        "Southeast",
        "Far South",
    ];
    SIDES[(district as usize) % SIDES.len()]
}

/// The planted FD `month → season`.
pub fn season_of(month: i64) -> &'static str {
    match month {
        12 | 1 | 2 => "Winter",
        3..=5 => "Spring",
        6..=8 => "Summer",
        _ => "Fall",
    }
}

const DOWS: [&str; 7] = ["Mon", "Tue", "Wed", "Thu", "Fri", "Sat", "Sun"];

fn type_name(i: usize) -> String {
    const KNOWN: [&str; 10] = [
        "Theft",
        "Battery",
        "Criminal Damage",
        "Narcotics",
        "Assault",
        "Burglary",
        "Motor Vehicle Theft",
        "Robbery",
        "Deceptive Practice",
        "Criminal Trespass",
    ];
    KNOWN.get(i).map(|s| s.to_string()).unwrap_or_else(|| format!("TYPE{i}"))
}

/// Generate the synthetic crime relation (always 11 attributes; project a
/// prefix to obtain the smaller-schema versions the experiments vary).
pub fn generate(cfg: &CrimeConfig) -> Relation {
    assert!(cfg.year_min <= cfg.year_max);
    let mut rng = SmallRng::seed_from_u64(cfg.seed);
    let mut rel = Relation::with_capacity(crime_schema(), cfg.target_rows + 512);
    let mut interner = Interner::new();

    let type_zipf = Zipf::new(cfg.n_types, 1.1);
    let community_zipf = Zipf::new(cfg.n_communities, 0.7);
    let n_years = (cfg.year_max - cfg.year_min + 1) as usize;

    if cfg.case_study {
        emit_case_study(cfg, &mut rel, &mut interner, &mut rng);
    }

    // Cell-based generation: iterate (type, community) cells in decreasing
    // intensity until the row target is reached; each cell gets a yearly
    // trend (constant or declining-linear, matching real crime data).
    let mut cell_rng = SmallRng::seed_from_u64(cfg.seed ^ 0x51EE5);
    'outer: for t in 0..cfg.n_types {
        for c in 0..cfg.n_communities {
            if rel.num_rows() >= cfg.target_rows {
                break 'outer;
            }
            let community = (c + 1) as i64;
            if is_case_study_cell(cfg, t, community) {
                // The planted counts are authoritative: background rows in
                // these cells would shift the questioned aggregate away
                // from the calibrated value.
                continue;
            }
            // The 1.6 boost compensates for tail cells below the pattern
            // threshold; the `break 'outer` above stops at the target.
            let intensity = 1.6 * cfg.target_rows as f64 * type_zipf.pmf(t) * community_zipf.pmf(c);
            if intensity < (n_years * 2) as f64 {
                // Too thin to carry a pattern; emit a couple of rows so the
                // long tail exists, then move on.
                let n = cell_rng.gen_range(0..3);
                for _ in 0..n {
                    emit_row(cfg, &mut rel, &mut interner, &mut rng, t, community, None);
                }
                continue;
            }
            let per_year = intensity / n_years as f64;
            let constant = cell_rng.gen_bool(0.5);
            let slope = if constant {
                0.0
            } else {
                // Mostly declining, like the real dataset.
                -cell_rng.gen_range(0.0..(1.6 * per_year / n_years as f64))
            };
            for yi in 0..n_years {
                let year = cfg.year_min + yi as i64;
                let expected = (per_year + slope * (yi as f64 - n_years as f64 / 2.0)).max(0.0);
                let noise = 1.0 + cell_rng.gen_range(-0.15..0.15);
                let n = (expected * noise).round() as usize;
                for _ in 0..n {
                    emit_row(cfg, &mut rel, &mut interner, &mut rng, t, community, Some(year));
                }
            }
        }
    }
    rel
}

/// Whether `(type_idx, community)` is one of the cells [`emit_case_study`]
/// plants; the density pass leaves those untouched.
fn is_case_study_cell(cfg: &CrimeConfig, type_idx: usize, community: i64) -> bool {
    cfg.case_study && (type_idx == 1 || type_idx == 4) && (community == 25 || community == 26)
}

/// The Appendix-A case study: Battery in community 26 dips in 2011 and
/// surges in 2012; the neighbouring community 25 surges in 2011; assaults
/// in 26 surge in 2011.
///
/// The anomaly magnitudes are calibrated against the constant-model
/// chi-square goodness-of-fit gate: a deviation `d` on a base level `β`
/// adds `d²/β` to the statistic, and a local pattern only *holds* (and is
/// thus usable as a counterbalance source) while the series' total stays
/// within the significance threshold θ for its degrees of freedom. The
/// dips/spikes below keep every planted series inside that budget at
/// θ ≤ 0.4, so the ARP locals over them hold and the counterbalances are
/// discoverable; larger anomalies would break the very fits that CAPE
/// needs to explain them.
fn emit_case_study(
    cfg: &CrimeConfig,
    rel: &mut Relation,
    interner: &mut Interner,
    rng: &mut SmallRng,
) {
    // Yearly counts for 2001..=2017. Battery = type 1, Assault = 4; the
    // 2011 entry is index 10.
    //
    // Battery in 26: constant ~60 with the questioned 2011 dip (38) and
    // the 2012 counterbalance spike (82).
    const BATTERY_26: [usize; 17] =
        [60, 62, 58, 61, 59, 63, 60, 57, 61, 62, 38, 82, 59, 60, 62, 58, 61];
    // Battery in adjacent 25: constant ~45 with a 2011 spike (57).
    const BATTERY_25: [usize; 17] =
        [45, 47, 44, 46, 45, 48, 44, 46, 45, 47, 57, 44, 46, 45, 44, 47, 45];
    // Assault in 26: constant ~5 with a 2011 spike (9).
    const ASSAULT_26: [usize; 17] = [5, 4, 5, 6, 5, 4, 5, 5, 6, 4, 9, 5, 4, 5, 6, 5, 4];
    // Assault in 25 stays flat (control).
    const ASSAULT_25: [usize; 17] = [5, 5, 6, 5, 4, 5, 5, 6, 5, 4, 5, 6, 5, 5, 4, 5, 6];
    let series: [(usize, i64, &[usize; 17]); 4] =
        [(1, 26, &BATTERY_26), (1, 25, &BATTERY_25), (4, 26, &ASSAULT_26), (4, 25, &ASSAULT_25)];
    for (t, community, counts) in series {
        for (yi, &n) in counts.iter().enumerate() {
            let year = 2001 + yi as i64;
            for _ in 0..n {
                emit_row(cfg, rel, interner, rng, t, community, Some(year));
            }
        }
    }
}

fn emit_row(
    cfg: &CrimeConfig,
    rel: &mut Relation,
    interner: &mut Interner,
    rng: &mut SmallRng,
    type_idx: usize,
    community: i64,
    year: Option<i64>,
) {
    let year = year.unwrap_or_else(|| rng.gen_range(cfg.year_min..=cfg.year_max));
    // Seasonality: crime peaks in summer.
    let month_weights = [5, 5, 7, 8, 10, 12, 13, 12, 10, 8, 6, 5];
    let total: i64 = month_weights.iter().sum();
    let mut pick = rng.gen_range(0..total);
    let mut month = 12;
    for (i, w) in month_weights.iter().enumerate() {
        if pick < *w {
            month = i as i64 + 1;
            break;
        }
        pick -= w;
    }
    let district = district_of(community);
    let beat = community * 10 + rng.gen_range(0..10);
    let location_idx = rng.gen_range(0..cfg.n_locations);
    let location = if location_idx < LOCATION_NAMES.len() {
        LOCATION_NAMES[location_idx].to_string()
    } else {
        format!("LOC{location_idx}")
    };
    rel.push_row(vec![
        Value::Str(interner.intern(&type_name(type_idx))),
        Value::Int(community),
        Value::Int(year),
        Value::Int(month),
        Value::Int(district),
        Value::Str(interner.intern(side_of(district))),
        Value::Int(beat),
        Value::Str(interner.intern(season_of(month))),
        Value::Str(interner.intern(DOWS[rng.gen_range(0..7)])),
        Value::Str(interner.intern(&location)),
        Value::Str(interner.intern(if rng.gen_bool(0.25) { "Y" } else { "N" })),
    ])
    .expect("schema-conforming row");
}

const LOCATION_NAMES: [&str; 8] =
    ["Street", "Residence", "Apartment", "Sidewalk", "Garage", "CTA Bus", "Church", "School"];

#[cfg(test)]
mod tests {
    use super::*;
    use cape_data::ops::distinct_project;

    #[test]
    fn deterministic_and_sized() {
        let cfg = CrimeConfig::with_rows(5_000);
        let a = generate(&cfg);
        let b = generate(&cfg);
        assert_eq!(a.num_rows(), b.num_rows());
        assert_eq!(a.row(777), b.row(777));
        assert!(a.num_rows() >= 4_000, "got {}", a.num_rows());
    }

    #[test]
    fn planted_fds_hold() {
        let rel = generate(&CrimeConfig::with_rows(5_000));
        for i in 0..rel.num_rows() {
            let community = rel.value(i, attrs::COMMUNITY).as_i64().unwrap();
            let district = rel.value(i, attrs::DISTRICT).as_i64().unwrap();
            assert_eq!(district, district_of(community));
            let side_v = rel.value(i, attrs::SIDE);
            let side = side_v.as_str().unwrap();
            assert_eq!(side, side_of(district));
            let month = rel.value(i, attrs::MONTH).as_i64().unwrap();
            let season_v = rel.value(i, attrs::SEASON);
            let season = season_v.as_str().unwrap();
            assert_eq!(season, season_of(month));
            let beat = rel.value(i, attrs::BEAT).as_i64().unwrap();
            assert_eq!(beat / 10, community);
        }
    }

    #[test]
    fn fd_discovery_finds_planted_fds() {
        use cape_data::{FdDiscovery, FdSet};
        use std::collections::BTreeSet;
        let rel = generate(&CrimeConfig::with_rows(5_000));
        let mut disc = FdDiscovery::new();
        let count = |attrs: &[usize]| distinct_project(&rel, attrs).unwrap().num_rows();
        disc.record([attrs::COMMUNITY], count(&[attrs::COMMUNITY]));
        disc.record([attrs::DISTRICT], count(&[attrs::DISTRICT]));
        disc.record(
            [attrs::COMMUNITY, attrs::DISTRICT],
            count(&[attrs::COMMUNITY, attrs::DISTRICT]),
        );
        let mut fds = FdSet::new();
        let g: BTreeSet<usize> = [attrs::COMMUNITY, attrs::DISTRICT].into_iter().collect();
        let found = disc.detect(&g, &mut fds);
        assert!(
            found.iter().any(|fd| fd.rhs == attrs::DISTRICT),
            "community → district not discovered"
        );
    }

    #[test]
    fn domains_have_expected_sizes() {
        let rel = generate(&CrimeConfig::with_rows(20_000));
        let distinct = |a: usize| distinct_project(&rel, &[a]).unwrap().num_rows();
        assert!(distinct(attrs::ARREST) == 2);
        assert!(distinct(attrs::DOW) == 7);
        assert!(distinct(attrs::MONTH) == 12);
        assert!(distinct(attrs::SEASON) == 4);
        assert!(distinct(attrs::PRIMARY_TYPE) > 5);
        assert!(distinct(attrs::COMMUNITY) > 20);
    }

    #[test]
    fn case_study_cell_planted() {
        let rel = generate(&CrimeConfig::with_rows(5_000));
        let mut n_2011 = 0;
        let mut n_2012 = 0;
        for i in 0..rel.num_rows() {
            if rel.value(i, attrs::PRIMARY_TYPE) == Value::str("Battery")
                && rel.value(i, attrs::COMMUNITY) == Value::Int(26)
            {
                match rel.value(i, attrs::YEAR).as_i64().unwrap() {
                    2011 => n_2011 += 1,
                    2012 => n_2012 += 1,
                    _ => {}
                }
            }
        }
        assert_eq!(n_2011, 38);
        assert_eq!(n_2012, 82);
    }

    #[test]
    fn prefix_projection_gives_small_schemas() {
        let rel = generate(&CrimeConfig::with_rows(2_000));
        let four = cape_data::ops::project(&rel, &[0, 1, 2, 3]).unwrap();
        assert_eq!(four.schema().arity(), 4);
        assert_eq!(four.num_rows(), rel.num_rows());
    }
}
