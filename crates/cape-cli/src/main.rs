//! `cape` — command-line interface to the CAPE reproduction.
//!
//! ```text
//! cape demo                                # built-in DBLP walk-through
//! cape mine    --csv pub.csv --schema author:str,pubid:str,year:int,venue:str \
//!              --psi 3 --theta 0.15 --delta 4 --lambda 0.3 --support 3 \
//!              [--fd] [--exclude pubid] --out patterns.cape
//! cape patterns --csv pub.csv --schema ... --patterns patterns.cape
//! cape explain --csv pub.csv --schema ... --patterns patterns.cape \
//!              --sql "SELECT author, venue, year, count(*) FROM pub GROUP BY author, venue, year" \
//!              --tuple "AX,SIGKDD,2007" --dir low [--k 10] [--narrate] [--baseline]
//! cape query   --csv pub.csv --schema ... --sql "SELECT ..."
//! ```

mod args;
mod commands;
mod io;

use args::Args;

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let code = match run(&argv) {
        Ok(()) => 0,
        Err(e) => {
            eprintln!("error: {e}");
            2
        }
    };
    std::process::exit(code);
}

fn run(argv: &[String]) -> Result<(), String> {
    let args = Args::parse(argv)?;
    match args.command.as_deref() {
        Some("demo") => commands::demo(&args),
        Some("mine") => commands::mine(&args),
        Some("patterns") => commands::patterns(&args),
        Some("explain") => commands::explain(&args),
        Some("query") => commands::query(&args),
        Some("help") | None => {
            print!("{}", commands::USAGE);
            Ok(())
        }
        Some(other) => Err(format!("unknown command `{other}` (try `cape help`)")),
    }
}
