//! `cape` — command-line interface to the CAPE reproduction.
//!
//! ```text
//! cape demo                                # built-in DBLP walk-through
//! cape mine    --csv pub.csv --schema author:str,pubid:str,year:int,venue:str \
//!              --psi 3 --theta 0.15 --delta 4 --lambda 0.3 --support 3 \
//!              [--fd] [--exclude pubid] --out patterns.cape
//! cape append  --csv pub.csv --schema ... --store store.cape --rows delta.csv [--compact]
//! cape patterns --csv pub.csv --schema ... --patterns patterns.cape
//! cape explain --csv pub.csv --schema ... --patterns patterns.cape \
//!              --sql "SELECT author, venue, year, count(*) FROM pub GROUP BY author, venue, year" \
//!              --tuple "AX,SIGKDD,2007" --dir low [--k 10] [--narrate] [--baseline]
//! cape query   --csv pub.csv --schema ... --sql "SELECT ..."
//! ```
//!
//! Global options (any command): `-v`/`--verbose`, `-q`/`--quiet`,
//! `--trace`, `--metrics FILE` to dump a JSON telemetry snapshot, and
//! `--trace-out FILE` to dump a Chrome `trace_event` timeline (loadable
//! in `about:tracing` / <https://ui.perfetto.dev>).

mod args;
mod commands;
mod io;

use args::Args;

/// A CLI failure, classified so `main` can pick an exit code: usage
/// errors (bad flags, malformed option values) exit 2, runtime errors
/// (I/O, mining, query evaluation) exit 1, corrupt or incompatible
/// `--store` snapshot files exit 3, and questions referencing an
/// aggregate column that is not in the relation schema exit 4 — scripts
/// restarting a service can tell "re-mine the store" (3) and "fix the
/// question set" (4) apart from "fix the invocation" (2) and "transient
/// environment problem" (1).
#[derive(Debug)]
pub enum CliError {
    Usage(String),
    Runtime(String),
    Store(String),
    Question(String),
}

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CliError::Usage(m)
            | CliError::Runtime(m)
            | CliError::Store(m)
            | CliError::Question(m) => f.write_str(m),
        }
    }
}

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let code = match run(&argv) {
        Ok(()) => 0,
        Err(e) => {
            eprintln!("error: {e}");
            match e {
                CliError::Usage(_) => 2,
                CliError::Runtime(_) => 1,
                CliError::Store(_) => 3,
                CliError::Question(_) => 4,
            }
        }
    };
    std::process::exit(code);
}

/// The event level implied by `-q` / default / `-v` / `--trace`.
fn verbosity(args: &Args) -> cape_obs::Level {
    if args.flag("trace") {
        cape_obs::Level::Trace
    } else if args.flag("verbose") {
        cape_obs::Level::Debug
    } else if args.flag("quiet") {
        cape_obs::Level::Error
    } else {
        cape_obs::Level::Info
    }
}

/// Root span name for a subcommand (span names must be `'static`).
fn span_name(cmd: &str) -> &'static str {
    match cmd {
        "demo" => "cli.demo",
        "mine" => "cli.mine",
        "append" => "cli.append",
        "patterns" => "cli.patterns",
        "explain" => "cli.explain",
        "batch-explain" => "cli.batch_explain",
        "serve" => "cli.serve",
        "serve-report" => "cli.serve_report",
        "query" => "cli.query",
        _ => "cli.run",
    }
}

fn run(argv: &[String]) -> Result<(), CliError> {
    let args = Args::parse(argv).map_err(CliError::Usage)?;

    // A session-wide recorder: events go to stderr at the requested
    // level; spans/counters from every layer accumulate for --metrics.
    let recorder = cape_obs::Recorder::new();
    recorder.set_level(verbosity(&args));
    recorder.add_sink(Box::new(cape_obs::StderrSink));
    if args.get("trace-out").is_some() {
        recorder.enable_trace_capture();
    }
    let install = recorder.install();

    let cmd = args.command.clone().unwrap_or_else(|| "help".to_string());
    let result = {
        // The whole invocation is one trace: requests submitted inside
        // (e.g. by batch-explain) mint their own ids, everything else is
        // attributed to the session id.
        let _session = cape_obs::trace_scope(cape_obs::TraceId::next());
        let _root = cape_obs::span(span_name(&cmd));
        dispatch(&cmd, &args)
    };
    drop(install);

    if let Some(path) = args.get("metrics") {
        let json = recorder.snapshot().to_json();
        std::fs::write(path, format!("{json}\n"))
            .map_err(|e| CliError::Runtime(format!("cannot write {path}: {e}")))?;
    }
    if let Some(path) = args.get("trace-out") {
        recorder
            .write_chrome_trace(path, &format!("cape {cmd}"))
            .map_err(|e| CliError::Runtime(format!("cannot write {path}: {e}")))?;
    }
    result
}

fn dispatch(cmd: &str, args: &Args) -> Result<(), CliError> {
    match cmd {
        "demo" => commands::demo(args),
        "mine" => commands::mine(args),
        "append" => commands::append(args),
        "patterns" => commands::patterns(args),
        "explain" => commands::explain(args),
        "batch-explain" => commands::batch_explain(args),
        "serve" => commands::serve(args),
        "serve-report" => commands::serve_report(args),
        "query" => commands::query(args),
        "help" => {
            print!("{}", commands::USAGE);
            Ok(())
        }
        other => Err(CliError::Usage(format!("unknown command `{other}` (try `cape help`)"))),
    }
}
