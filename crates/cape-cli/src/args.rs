//! Minimal flag parsing for the `cape` binary (no external dependencies).

use std::collections::HashMap;

/// Parsed command line: a subcommand, `--key value` options, and `--flag`
/// booleans.
#[derive(Debug, Clone, Default)]
pub struct Args {
    pub command: Option<String>,
    options: HashMap<String, String>,
    flags: Vec<String>,
}

/// Option keys that take a value; everything else starting with `--` is a
/// boolean flag.
const VALUE_KEYS: &[&str] = &[
    "csv",
    "schema",
    "out",
    "save",
    "store",
    "patterns",
    "sql",
    "tuple",
    "dir",
    "k",
    "psi",
    "theta",
    "delta",
    "lambda",
    "support",
    "rows",
    "seed",
    "agg",
    "agg-attr",
    "exclude",
    "metrics",
    "questions",
    "threads",
    "timeout-ms",
    "cache",
    "trace-out",
    "access-log",
    "snapshot",
    "top",
    "listen",
    "name",
    "queue",
    "max-body",
    "deadline-ms",
    "max-connections",
    "min-members",
    "max-loss",
];

/// Single-dash short flags and the long flag each expands to.
const SHORT_FLAGS: &[(&str, &str)] = &[("-v", "verbose"), ("-q", "quiet")];

impl Args {
    /// Parse `argv[1..]`.
    pub fn parse(argv: &[String]) -> Result<Args, String> {
        let mut out = Args::default();
        let mut i = 0;
        while i < argv.len() {
            let a = &argv[i];
            if let Some(key) = a.strip_prefix("--") {
                if VALUE_KEYS.contains(&key) {
                    let value =
                        argv.get(i + 1).ok_or_else(|| format!("--{key} requires a value"))?;
                    out.options.insert(key.to_string(), value.clone());
                    i += 2;
                } else {
                    out.flags.push(key.to_string());
                    i += 1;
                }
            } else if let Some((_, long)) = SHORT_FLAGS.iter().find(|(s, _)| s == a) {
                out.flags.push(long.to_string());
                i += 1;
            } else if a.starts_with('-') {
                return Err(format!("unknown flag `{a}`"));
            } else if out.command.is_none() {
                out.command = Some(a.clone());
                i += 1;
            } else {
                return Err(format!("unexpected argument `{a}`"));
            }
        }
        Ok(out)
    }

    /// A string option.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.options.get(key).map(String::as_str)
    }

    /// A required string option.
    pub fn require(&self, key: &str) -> Result<&str, String> {
        self.get(key).ok_or_else(|| format!("missing required option --{key}"))
    }

    /// A typed option with a default.
    pub fn get_parse<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, String> {
        match self.get(key) {
            Some(v) => v.parse::<T>().map_err(|_| format!("invalid value for --{key}: `{v}`")),
            None => Ok(default),
        }
    }

    /// Whether a boolean flag was given.
    pub fn flag(&self, name: &str) -> bool {
        self.flags.iter().any(|f| f == name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(str::to_string).collect()
    }

    #[test]
    fn parses_command_options_flags() {
        let a = Args::parse(&argv("mine --csv pub.csv --psi 3 --fd")).unwrap();
        assert_eq!(a.command.as_deref(), Some("mine"));
        assert_eq!(a.get("csv"), Some("pub.csv"));
        assert_eq!(a.get_parse::<usize>("psi", 4).unwrap(), 3);
        assert!(a.flag("fd"));
        assert!(!a.flag("narrate"));
    }

    #[test]
    fn short_flags_and_metrics() {
        let a = Args::parse(&argv("explain --metrics out.json -v")).unwrap();
        assert_eq!(a.get("metrics"), Some("out.json"));
        assert!(a.flag("verbose"));
        let q = Args::parse(&argv("mine -q")).unwrap();
        assert!(q.flag("quiet"));
        assert!(Args::parse(&argv("mine -x")).is_err());
    }

    #[test]
    fn defaults_and_errors() {
        let a = Args::parse(&argv("explain")).unwrap();
        assert_eq!(a.get_parse::<usize>("k", 10).unwrap(), 10);
        assert!(a.require("csv").is_err());
        assert!(Args::parse(&argv("mine --csv")).is_err());
        assert!(Args::parse(&argv("mine extra-positional")).is_err());
        let bad = Args::parse(&argv("mine --psi abc")).unwrap();
        assert!(bad.get_parse::<usize>("psi", 4).is_err());
    }
}
