//! Schema/tuple parsing and CSV loading for the CLI.

use cape_data::{csv, Relation, Schema, Value, ValueType};
use std::fs::File;

/// Parse a schema spec like `author:str,pubid:str,year:int,venue:str`.
pub fn parse_schema(spec: &str) -> Result<Schema, String> {
    let mut cols = Vec::new();
    for part in spec.split(',') {
        let (name, ty) = part
            .split_once(':')
            .ok_or_else(|| format!("schema entry `{part}` must be name:type"))?;
        let ty = match ty.trim().to_ascii_lowercase().as_str() {
            "int" | "i64" => ValueType::Int,
            "float" | "f64" => ValueType::Float,
            "str" | "string" | "text" => ValueType::Str,
            other => return Err(format!("unknown type `{other}` (use int/float/str)")),
        };
        cols.push((name.trim().to_string(), ty));
    }
    Schema::new(cols).map_err(|e| e.to_string())
}

/// Load a relation from a CSV file with the given schema.
pub fn load_csv(path: &str, schema: Schema) -> Result<Relation, String> {
    let file = File::open(path).map_err(|e| format!("cannot open {path}: {e}"))?;
    csv::read_csv(file, schema).map_err(|e| e.to_string())
}

/// Parse comma-separated tuple values against the types of the given
/// attributes, e.g. `AX,SIGKDD,2007`.
pub fn parse_tuple(spec: &str, schema: &Schema, attrs: &[usize]) -> Result<Vec<Value>, String> {
    let parts: Vec<&str> = spec.split(',').collect();
    if parts.len() != attrs.len() {
        return Err(format!(
            "tuple has {} values but the query groups on {} attributes",
            parts.len(),
            attrs.len()
        ));
    }
    parts
        .iter()
        .zip(attrs)
        .map(|(raw, &a)| {
            let ty = schema.attr(a).map_err(|e| e.to_string())?.value_type();
            let raw = raw.trim();
            match ty {
                ValueType::Int => {
                    raw.parse::<i64>().map(Value::Int).map_err(|_| format!("`{raw}` is not an int"))
                }
                ValueType::Float => raw
                    .parse::<f64>()
                    .map(Value::Float)
                    .map_err(|_| format!("`{raw}` is not a float")),
                ValueType::Str => Ok(Value::str(raw)),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schema_spec() {
        let s = parse_schema("author:str, year:int, score:float").unwrap();
        assert_eq!(s.arity(), 3);
        assert_eq!(s.attr(1).unwrap().value_type(), ValueType::Int);
        assert!(parse_schema("noname").is_err());
        assert!(parse_schema("a:bogus").is_err());
        assert!(parse_schema("a:int,a:int").is_err());
    }

    #[test]
    fn tuple_spec() {
        let s = parse_schema("author:str,year:int").unwrap();
        let t = parse_tuple("AX, 2007", &s, &[0, 1]).unwrap();
        assert_eq!(t, vec![Value::str("AX"), Value::Int(2007)]);
        assert!(parse_tuple("AX", &s, &[0, 1]).is_err());
        assert!(parse_tuple("AX,notanint", &s, &[0, 1]).is_err());
    }

    #[test]
    fn missing_csv_file() {
        let s = parse_schema("a:int").unwrap();
        assert!(load_csv("/no/such/file.csv", s).is_err());
    }
}
