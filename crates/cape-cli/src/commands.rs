//! The `cape` subcommands.

use crate::args::Args;
use crate::io::{load_csv, parse_schema, parse_tuple};
use crate::CliError;
use cape_core::explain::{render_table, BaselineExplainer, ExplainConfig, TopKExplainer};
use cape_core::incr::wal_path_for;
use cape_core::mining::{ArpMiner, Miner};
use cape_core::prelude::OptimizedExplainer;
use cape_core::report::narrate_all;
use cape_core::snapshot::{self, SnapshotError};
use cape_core::{persist, Direction, IncrError, IncrStore, MiningConfig, Thresholds, UserQuestion};
use cape_data::sql;
use cape_data::Relation;
use std::fs::File;
use std::path::Path;

/// CLI usage text.
pub const USAGE: &str = "\
cape — explaining aggregate query answers with pattern-based counterbalances

USAGE:
  cape demo
      Run the built-in DBLP walk-through end to end.

  cape mine --csv FILE --schema SPEC [--psi N] [--theta F] [--delta N]
            [--lambda F] [--support N] [--fd] [--exclude COLS]
            [--out FILE] [--save FILE]
      Mine aggregate regression patterns and persist them: --out writes
      the line-based text format, --save writes the versioned,
      checksummed binary snapshot (written atomically; load it back with
      --store). At least one of the two is required.

  cape append --csv FILE --schema SPEC --store FILE --rows FILE [--compact]
      Append rows (a CSV with the same schema) to a mined --store snapshot
      incrementally: only fragments whose membership changed are
      re-validated, and the delta is made durable in a write-ahead log
      beside the snapshot (STORE.wal) before any state changes. --compact
      folds the log back into the snapshot afterwards. Every command that
      reads --store replays a WAL found beside it, so an appended store
      serves the refreshed patterns without re-mining.

  cape patterns --csv FILE --schema SPEC (--patterns FILE | --store FILE)
      List the patterns in a persisted store.

  cape explain --csv FILE --schema SPEC (--patterns FILE | --store FILE)
               --sql QUERY --tuple VALUES --dir high|low
               [--k N] [--narrate] [--baseline]
               [--summarize [--min-members N] [--max-loss X]]
      Explain why a query-result tuple is surprisingly high or low.
      --summarize appends common-ancestor summaries of the top-k (the
      coarsest lattice fragments covering ≥ --min-members answers within
      relative score loss --max-loss); the top-k table is unchanged.

  cape batch-explain --csv FILE --schema SPEC (--patterns FILE | --store FILE)
                     --sql QUERY --questions FILE [--k N] [--threads N]
                     [--timeout-ms MS] [--cache N] [--fail-on-timeout]
                     [--access-log FILE]
                     [--summarize [--min-members N] [--max-loss X]]
      Answer a file of questions concurrently over one shared pattern
      store. Each non-empty, non-# line of FILE is `VALUES high|low`
      (e.g. 'AX,SIGKDD,2007 low'). Answers print in input order; requests
      that exceed --timeout-ms return a partial top-k marked [partial]
      (exit 1 instead with --fail-on-timeout). --access-log appends one
      JSON line per request (trace id, question, deadline, cache
      hits/misses, outcome).

  cape serve --listen ADDR --csv FILE --schema SPEC
             (--patterns FILE | --store FILE) [--name NAME] [--threads N]
             [--queue N] [--cache N] [--max-body BYTES] [--deadline-ms MS]
             [--max-connections N] [--access-log FILE]
      Serve explanations over HTTP/1.1 (std-only, keep-alive and
      pipelining). Routes: POST /v1/NAME/explain, POST
      /v1/NAME/batch-explain, GET /v1/stores, POST
      /admin/stores/NAME/swap (hot-swap the --store snapshot under live
      traffic), GET /healthz, GET /metrics. --queue bounds concurrent
      requests (overflow answers 429 + Retry-After); --deadline-ms sets a
      default per-request deadline (exceeded requests degrade to a
      partial top-k, marked \"partial\": true). Prints one `listening on
      ADDR` line to stdout when ready; runs until killed.

  cape serve-report --snapshot FILE [--top N]
      Render the flight-recorder section of a --metrics snapshot: recent
      request summaries plus the slowest requests with their span trees
      (queue wait vs execution per request).

  cape query --csv FILE --schema SPEC --sql QUERY
      Run a SQL query against a CSV file.

GLOBAL OPTIONS:
  -v, --verbose     Debug-level progress on stderr (--trace for spans too).
  -q, --quiet       Errors only on stderr.
  --metrics FILE    Write a JSON telemetry snapshot (spans, counters,
                    histograms, per-phase timings, flight recorder) after
                    the command.
  --trace-out FILE  Write a Chrome trace_event timeline of the command
                    (open in about:tracing or https://ui.perfetto.dev).

  SPEC is name:type[,name:type...] with types int, float, str.
  VALUES are comma-separated group-by values, e.g. 'AX,SIGKDD,2007'.

EXIT CODES:
  0 success; 1 runtime error (I/O, mining, query evaluation);
  2 usage error; 3 corrupt or incompatible --store snapshot file;
  4 question references an aggregate column not in the relation schema.
";

fn usage(e: impl ToString) -> CliError {
    CliError::Usage(e.to_string())
}

fn runtime(e: impl ToString) -> CliError {
    CliError::Runtime(e.to_string())
}

/// Classify a question-construction failure: an unknown aggregate column
/// is the *question's* fault (exit 4), everything else is a runtime
/// error (exit 1).
fn question_err(e: cape_core::error::CapeError) -> CliError {
    match e {
        cape_core::error::CapeError::UnknownAggregateColumn(_) => CliError::Question(e.to_string()),
        other => runtime(other),
    }
}

fn load(args: &Args) -> Result<Relation, CliError> {
    let schema = parse_schema(args.require("schema").map_err(usage)?).map_err(usage)?;
    load_csv(args.require("csv").map_err(usage)?, schema).map_err(runtime)
}

fn mining_config(args: &Args, rel: &Relation) -> Result<MiningConfig, CliError> {
    let mut cfg = MiningConfig {
        thresholds: Thresholds::new(
            args.get_parse("theta", 0.15).map_err(usage)?,
            args.get_parse("delta", 4usize).map_err(usage)?,
            args.get_parse("lambda", 0.3).map_err(usage)?,
            args.get_parse("support", 3usize).map_err(usage)?,
        ),
        psi: args.get_parse("psi", 3usize).map_err(usage)?,
        fd_pruning: args.flag("fd"),
        ..MiningConfig::default()
    };
    if let Some(excluded) = args.get("exclude") {
        for name in excluded.split(',') {
            let id = rel
                .schema()
                .attr_id(name.trim())
                .map_err(|_| usage(format!("--exclude: unknown column `{name}`")))?;
            cfg.exclude.push(id);
        }
    }
    Ok(cfg)
}

/// `cape mine`.
pub fn mine(args: &Args) -> Result<(), CliError> {
    let rel = load(args)?;
    let cfg = mining_config(args, &rel)?;
    cape_obs::info("cli", || {
        format!(
            "mining {} rows (psi={}, thresholds={:?}) ...",
            rel.num_rows(),
            cfg.psi,
            cfg.thresholds
        )
    });
    let out = ArpMiner.mine(&rel, &cfg).map_err(runtime)?;
    cape_obs::info("cli", || {
        format!(
            "found {} patterns ({} local) in {:?}; {} candidates, {} skipped by FDs",
            out.store.len(),
            out.store.num_local_patterns(),
            out.stats.total_time,
            out.stats.candidates_considered,
            out.stats.skipped_by_fd,
        )
    });
    let out_path = args.get("out");
    let save_path = args.get("save");
    if out_path.is_none() && save_path.is_none() {
        return Err(usage("mine needs --out FILE (text) and/or --save FILE (binary snapshot)"));
    }
    if let Some(path) = out_path {
        let mut file =
            File::create(path).map_err(|e| runtime(format!("cannot create {path}: {e}")))?;
        persist::write_store(&mut file, &out.store).map_err(runtime)?;
        println!("wrote {} patterns to {path}", out.store.len());
    }
    if let Some(path) = save_path {
        // --v2 embeds the relation's column slabs so later cold starts
        // can mmap the dataset instead of re-parsing the CSV.
        let bytes = if args.flag("v2") {
            snapshot::save_snapshot_v2(path, rel.schema(), &cfg, &out.store, &rel)
        } else {
            snapshot::save_snapshot(path, rel.schema(), &cfg, &out.store)
        }
        .map_err(|e| runtime(format!("cannot save snapshot {path}: {e}")))?;
        println!("saved {} patterns to {path} ({bytes} bytes)", out.store.len());
    }
    Ok(())
}

/// `cape patterns`.
pub fn patterns(args: &Args) -> Result<(), CliError> {
    let (rel, store) = load_store(args)?;
    println!("{}", store.describe(rel.schema()));
    Ok(())
}

/// Classify an incremental-maintenance failure against `--store PATH`
/// into the CLI exit-code taxonomy: a snapshot or WAL the loader rejects
/// is a corrupt store (exit 3), a plain read failure stays a runtime
/// error, everything else (bad delta rows, mining) is runtime too.
fn incr_err(path: &str, e: IncrError) -> CliError {
    match e {
        IncrError::Snapshot(SnapshotError::Io(m)) => {
            runtime(format!("cannot read store {path}: {m}"))
        }
        IncrError::Snapshot(other) => {
            CliError::Store(format!("store file {path} rejected: {other}"))
        }
        IncrError::Wal(w) => CliError::Store(format!("wal beside store {path} rejected: {w}")),
        IncrError::Config(m) => {
            CliError::Store(format!("store file {path} cannot be maintained incrementally: {m}"))
        }
        other => runtime(other),
    }
}

/// Load the base relation (`--csv`/`--schema`) and the pattern store.
/// When `--store` has a write-ahead log beside it, the log is replayed:
/// the returned relation includes the appended rows and the store is the
/// refreshed (re-validated) one, so every read path serves what `cape
/// append` last committed.
fn load_store(args: &Args) -> Result<(Relation, cape_core::PatternStore), CliError> {
    let rel = load(args)?;
    read_patterns(args, rel)
}

/// Load the pattern store from `--store` (binary snapshot, validated
/// against the live relation, WAL-aware) or `--patterns` (line-based
/// text format). A rejected snapshot becomes [`CliError::Store`] (exit
/// 3) — except a plain read failure (absent file, permissions), which
/// stays a runtime error like any other missing input.
fn read_patterns(
    args: &Args,
    rel: Relation,
) -> Result<(Relation, cape_core::PatternStore), CliError> {
    if let Some(path) = args.get("store") {
        if wal_path_for(Path::new(path)).exists() {
            let incr = IncrStore::open(path, &rel).map_err(|e| incr_err(path, e))?;
            let replayed = incr.relation().clone();
            let store = incr.store();
            drop(incr);
            let store = std::sync::Arc::try_unwrap(store).unwrap_or_else(|arc| (*arc).clone());
            return Ok((replayed, store));
        }
        let loaded = snapshot::load_snapshot_auto(path, &rel).map_err(|e| match e {
            SnapshotError::Io(m) => runtime(format!("cannot read store {path}: {m}")),
            other => CliError::Store(format!("store file {path} rejected: {other}")),
        })?;
        return Ok((rel, loaded.store));
    }
    let path = args
        .require("patterns")
        .map_err(|_| usage("need --patterns FILE (text) or --store FILE (binary snapshot)"))?;
    let file = File::open(path).map_err(|e| runtime(format!("cannot open {path}: {e}")))?;
    let store = persist::read_store(file, &rel).map_err(runtime)?;
    Ok((rel, store))
}

/// `cape append` — stream rows into a mined snapshot incrementally.
///
/// The delta is WAL-committed before any in-memory state changes, so a
/// crash mid-append replays cleanly on the next load; `--compact` folds
/// the log into the snapshot once the append lands.
pub fn append(args: &Args) -> Result<(), CliError> {
    let rel = load(args)?;
    let store_path = args
        .require("store")
        .map_err(|_| usage("append needs --store FILE (a snapshot from `cape mine --save`)"))?;
    let rows_path = args
        .require("rows")
        .map_err(|_| usage("append needs --rows FILE (CSV of rows to append, same schema)"))?;
    let schema = parse_schema(args.require("schema").map_err(usage)?).map_err(usage)?;
    let delta = load_csv(rows_path, schema).map_err(runtime)?;

    let mut incr = IncrStore::open(store_path, &rel).map_err(|e| incr_err(store_path, e))?;
    let replayed = incr.relation().num_rows() - rel.num_rows();
    if replayed > 0 {
        cape_obs::info("cli", || format!("replayed {replayed} rows from the write-ahead log"));
    }
    let rows: Vec<_> = (0..delta.num_rows()).map(|i| delta.row(i)).collect();
    let report = incr.append(rows).map_err(|e| incr_err(store_path, e))?;
    println!(
        "appended {} rows ({} fragments re-validated); {} patterns over {} rows",
        report.appended_rows,
        report.touched_fragments,
        report.patterns,
        incr.relation().num_rows()
    );
    if let Some(seq) = report.wal_seq {
        println!("wal: record {seq} committed ({} bytes)", report.wal_bytes);
    }
    if args.flag("compact") {
        incr.compact().map_err(|e| incr_err(store_path, e))?;
        println!("compacted: snapshot {store_path} refreshed, wal folded");
    }
    Ok(())
}

/// Parse `--summarize [--min-members N] [--max-loss X]` into a config;
/// `None` when the flag is absent.
fn summarize_config(args: &Args) -> Result<Option<cape_core::explain::SummarizeConfig>, CliError> {
    use cape_core::explain::{SummarizeConfig, DEFAULT_MAX_LOSS, DEFAULT_MIN_MEMBERS};
    if !args.flag("summarize") {
        if args.get("min-members").is_some() || args.get("max-loss").is_some() {
            return Err(usage("--min-members/--max-loss require --summarize"));
        }
        return Ok(None);
    }
    let min_members = args.get_parse("min-members", DEFAULT_MIN_MEMBERS).map_err(usage)?;
    if min_members < 1 {
        return Err(usage("--min-members must be at least 1"));
    }
    let max_loss = args.get_parse("max-loss", DEFAULT_MAX_LOSS).map_err(usage)?;
    if !max_loss.is_finite() || max_loss < 0.0 {
        return Err(usage("--max-loss must be a non-negative number"));
    }
    Ok(Some(SummarizeConfig { min_members, max_loss }))
}

/// `cape explain`.
pub fn explain(args: &Args) -> Result<(), CliError> {
    let (rel, store) = load_store(args)?;
    let sql_text = args.require("sql").map_err(usage)?;
    let dir = match args.require("dir").map_err(usage)? {
        "high" => Direction::High,
        "low" => Direction::Low,
        other => return Err(usage(format!("--dir must be high or low, got `{other}`"))),
    };

    // Resolve group attrs from the query so the tuple can be typed.
    let stmt = sql::parse(sql_text).map_err(usage)?;
    let group_attrs: Result<Vec<usize>, CliError> =
        stmt.group_by.iter().map(|n| rel.schema().attr_id(n).map_err(usage)).collect();
    let tuple = parse_tuple(args.require("tuple").map_err(usage)?, rel.schema(), &group_attrs?)
        .map_err(usage)?;

    let uq = UserQuestion::from_sql(&rel, sql_text, tuple, dir).map_err(question_err)?;
    println!("question: {}\n", uq.display(rel.schema()));

    let k = args.get_parse("k", 10usize).map_err(usage)?;
    let cfg = ExplainConfig::default_for(&rel, k);
    cape_obs::debug("cli", || format!("explaining against {} patterns (k={k})", store.len()));
    let (expls, stats) = OptimizedExplainer.explain(&store, &uq, &cfg);
    println!(
        "top-{} explanations ({} relevant patterns, {} tuples checked, {:?}):",
        expls.len(),
        stats.patterns_relevant,
        stats.tuples_checked,
        stats.time
    );
    println!("{}", render_table(&expls, rel.schema()));
    if let Some(scfg) = summarize_config(args)? {
        let summaries = cape_core::explain::summarize(&expls, &store, &scfg);
        println!(
            "summaries (min_members={}, max_loss={:.2}): {} from {} explanations",
            scfg.min_members,
            scfg.max_loss,
            summaries.len(),
            expls.len()
        );
        println!("{}", cape_core::explain::render_summaries(&summaries, &expls, rel.schema()));
    }
    if args.flag("narrate") {
        println!("{}", narrate_all(&expls, &store, &uq, rel.schema()));
    }
    if args.flag("baseline") {
        let (base, _) = BaselineExplainer.explain(&rel, &uq, &cfg).map_err(runtime)?;
        println!("baseline (no patterns):\n{}", render_table(&base, rel.schema()));
    }
    Ok(())
}

/// `cape batch-explain` — answer a file of questions concurrently via
/// `cape-serve` over one shared pattern store.
///
/// Stdout is deterministic: answers print in input order and contain no
/// timings or thread counts, so runs with different `--threads` values
/// are byte-identical (the golden-file tests rely on this). Concurrency
/// diagnostics go to stderr / `--metrics` instead.
pub fn batch_explain(args: &Args) -> Result<(), CliError> {
    use cape_serve::{ExplainRequest, ExplainService, PatternStoreHandle, ServeConfig};
    use std::time::Duration;

    let (rel, store) = load_store(args)?;
    let sql_text = args.require("sql").map_err(usage)?;
    let stmt = sql::parse(sql_text).map_err(usage)?;
    let group_attrs: Vec<usize> = stmt
        .group_by
        .iter()
        .map(|n| rel.schema().attr_id(n).map_err(usage))
        .collect::<Result<_, _>>()?;

    // Detect an unknown aggregate column up front, before reading the
    // questions file — the query is shared by every question, so this
    // fails once with exit 4 instead of surfacing per-line.
    if let Some(arg) = stmt.items.iter().find_map(|i| match i {
        sql::SelectItem::Aggregate { call, .. } => call.arg.as_ref(),
        _ => None,
    }) {
        rel.schema().attr_id(arg).map_err(|_| {
            question_err(cape_core::error::CapeError::UnknownAggregateColumn(arg.clone()))
        })?;
    }

    let k = args.get_parse("k", 10usize).map_err(usage)?;
    let threads = args.get_parse("threads", 1usize).map_err(usage)?;
    if threads == 0 {
        return Err(usage("--threads must be at least 1"));
    }
    let cache = args.get_parse("cache", 4096usize).map_err(usage)?;
    let timeout = match args.get("timeout-ms") {
        Some(_) => Some(Duration::from_millis(args.get_parse("timeout-ms", 0u64).map_err(usage)?)),
        None => None,
    };

    // Parse the questions file: `VALUES high|low` per line.
    let qpath = args.require("questions").map_err(usage)?;
    let text =
        std::fs::read_to_string(qpath).map_err(|e| runtime(format!("cannot read {qpath}: {e}")))?;
    let mut questions = Vec::new();
    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let Some((values, dir_word)) = line.rsplit_once(char::is_whitespace) else {
            return Err(usage(format!(
                "{qpath}:{}: expected `VALUES high|low`, got `{line}`",
                lineno + 1
            )));
        };
        let dir = match dir_word {
            "high" => Direction::High,
            "low" => Direction::Low,
            other => {
                return Err(usage(format!(
                    "{qpath}:{}: direction must be high or low, got `{other}`",
                    lineno + 1
                )))
            }
        };
        let tuple = parse_tuple(values.trim(), rel.schema(), &group_attrs).map_err(usage)?;
        let uq = UserQuestion::from_sql(&rel, sql_text, tuple, dir).map_err(question_err)?;
        questions.push(uq);
    }
    if questions.is_empty() {
        return Err(runtime(format!("{qpath} contains no questions")));
    }

    cape_obs::info("cli", || {
        format!(
            "batch-explain: {} questions, {} threads, cache capacity {}",
            questions.len(),
            threads,
            cache
        )
    });
    let access_log = match args.get("access-log") {
        Some(path) => Some(std::sync::Arc::new(
            cape_obs::JsonLinesWriter::create(path)
                .map_err(|e| runtime(format!("cannot open access log {path}: {e}")))?,
        )),
        None => None,
    };
    let handle = PatternStoreHandle::new(rel, store);
    let service = ExplainService::start(
        handle.clone(),
        ServeConfig { threads, cache_capacity: cache, distance: None, access_log },
    );
    // Each request is its own top-level operation: mint a fresh trace id
    // rather than inheriting the session scope, so access-log lines and
    // Chrome-trace slices are attributable per question.
    let scfg = summarize_config(args)?;
    let requests: Vec<ExplainRequest> = questions
        .iter()
        .map(|q| {
            let mut req = ExplainRequest::new(q.clone(), k).with_trace(cape_obs::TraceId::next());
            if let Some(t) = timeout {
                req = req.with_timeout(t);
            }
            if let Some(s) = &scfg {
                req = req.with_summarize(s.clone());
            }
            req
        })
        .collect();
    let responses = service.batch(requests);

    let schema = handle.relation().schema();
    let mut partial_count = 0usize;
    for (i, (uq, resp)) in questions.iter().zip(&responses).enumerate() {
        let marker = if resp.partial {
            partial_count += 1;
            " [partial]"
        } else {
            ""
        };
        println!("[{i}] question: {}{marker}", uq.display(schema));
        println!("{}", render_table(&resp.explanations, schema));
        if let Some(summaries) = &resp.summaries {
            println!(
                "[{i}] summaries: {} from {} explanations",
                summaries.len(),
                resp.explanations.len()
            );
            println!(
                "{}",
                cape_core::explain::render_summaries(summaries, &resp.explanations, schema)
            );
        }
    }
    println!("answered {} questions ({partial_count} partial)", questions.len());
    cape_obs::info("cli", || {
        format!(
            "batch-explain: cache hits {} / misses {}",
            service.cache().hits(),
            service.cache().misses()
        )
    });
    if args.flag("fail-on-timeout") && partial_count > 0 {
        return Err(runtime(format!("{partial_count} request(s) exceeded the deadline")));
    }
    Ok(())
}

fn fmt_ms(ns: u64) -> String {
    format!("{:.3} ms", ns as f64 / 1e6)
}

fn render_span_tree(node: &cape_obs::SpanNode, depth: usize, out: &mut String) {
    use std::fmt::Write;
    let _ = writeln!(
        out,
        "{:indent$}{} — {} (x{})",
        "",
        node.name,
        fmt_ms(node.total_ns),
        node.count,
        indent = 4 + depth * 2
    );
    for child in &node.children {
        render_span_tree(child, depth + 1, out);
    }
}

/// `cape serve` — the network front-end: serve explanations over
/// std-only HTTP/1.1 with a hot-swappable store registry.
///
/// Prints a single `listening on ADDR` line to stdout once the listener
/// is bound (scripts wait on it), then parks until the process is
/// killed. The bound address includes the ephemeral port when `--listen`
/// ends in `:0`.
pub fn serve(args: &Args) -> Result<(), CliError> {
    use cape_net::http::HttpLimits;
    use cape_net::registry::StoreRegistry;
    use cape_net::server::{NetConfig, Server};
    use cape_serve::{PatternStoreHandle, ServeConfig};
    use std::time::Duration;

    let listen = args.require("listen").map_err(usage)?;
    let rel = load(args)?;
    let name = args.get("name").unwrap_or("default").to_string();

    let threads = args.get_parse("threads", 2usize).map_err(usage)?;
    let cache = args.get_parse("cache", 4096usize).map_err(usage)?;
    let queue = args.get_parse("queue", 64usize).map_err(usage)?;
    let max_body = args.get_parse("max-body", HttpLimits::default().max_body).map_err(usage)?;
    let max_connections = args.get_parse("max-connections", 256usize).map_err(usage)?;
    let default_deadline = match args.get("deadline-ms") {
        Some(_) => Some(Duration::from_millis(args.get_parse("deadline-ms", 0u64).map_err(usage)?)),
        None => None,
    };
    let access_log = match args.get("access-log") {
        Some(path) => Some(std::sync::Arc::new(
            cape_obs::JsonLinesWriter::create(path)
                .map_err(|e| runtime(format!("cannot open access log {path}: {e}")))?,
        )),
        None => None,
    };

    let serve_cfg = ServeConfig { threads, cache_capacity: cache, distance: None, access_log };
    let registry = std::sync::Arc::new(StoreRegistry::new());
    // A `--store` snapshot is served with incremental backing so `POST
    // /admin/stores/NAME/append` streams rows in live — unless the
    // snapshot was mined with a config the incremental layer can't
    // maintain (e.g. FD pruning), which degrades to read-only serving.
    match args.get("store") {
        Some(path) => match IncrStore::open(path, &rel) {
            Ok(incr) => {
                registry.register_incremental(&name, rel, incr, serve_cfg);
            }
            Err(IncrError::Config(m)) => {
                cape_obs::info("cli", || format!("serving read-only (no appends): {m}"));
                let (rel, store) = read_patterns(args, rel)?;
                registry.register(&name, PatternStoreHandle::new(rel, store), serve_cfg);
            }
            Err(e) => return Err(incr_err(path, e)),
        },
        None => {
            let (rel, store) = read_patterns(args, rel)?;
            registry.register(&name, PatternStoreHandle::new(rel, store), serve_cfg);
        }
    }

    // The session recorder is installed on this thread; Server::bind
    // captures it, so request counters/gauges feed --metrics and
    // GET /metrics alike.
    let net_cfg = NetConfig {
        limits: HttpLimits { max_body, ..HttpLimits::default() },
        admission_capacity: queue,
        max_connections,
        default_deadline,
        metrics: cape_obs::current_recorder(),
        ..NetConfig::default()
    };
    let server = Server::bind(listen, registry, net_cfg)
        .map_err(|e| runtime(format!("cannot bind {listen}: {e}")))?;
    println!("listening on {}", server.local_addr());
    use std::io::Write as _;
    let _ = std::io::stdout().flush();
    cape_obs::info("cli", || {
        format!(
            "serving store `{name}` on {} ({threads} workers, queue {queue})",
            server.local_addr()
        )
    });
    loop {
        std::thread::park();
    }
}

/// `cape serve-report` — render the flight-recorder section of a
/// `--metrics` telemetry snapshot.
pub fn serve_report(args: &Args) -> Result<(), CliError> {
    let path = args
        .require("snapshot")
        .map_err(|_| usage("serve-report needs --snapshot FILE (a --metrics output)"))?;
    let top = args.get_parse("top", 5usize).map_err(usage)?;
    let text =
        std::fs::read_to_string(path).map_err(|e| runtime(format!("cannot read {path}: {e}")))?;
    let json = cape_obs::Json::parse(&text)
        .map_err(|e| runtime(format!("{path} is not valid JSON: {e}")))?;
    let snap = cape_obs::TelemetrySnapshot::from_json(&json)
        .map_err(|e| runtime(format!("{path} is not a telemetry snapshot: {e}")))?;

    let Some(flight) = &snap.requests else {
        println!("no requests recorded in {path}");
        return Ok(());
    };
    println!(
        "{} request(s) recorded (slow-capture threshold {})",
        flight.recorded,
        fmt_ms(flight.threshold_ns)
    );
    for name in ["serve.request_ns", "serve.queue_wait_ns", "serve.exec_ns"] {
        if let Some(h) = snap.histograms.get(name) {
            println!(
                "  {name}: p50 {} / p95 {} / max {} ({} samples)",
                fmt_ms(h.p50_ns),
                fmt_ms(h.p95_ns),
                fmt_ms(h.max_ns),
                h.count
            );
        }
    }

    println!("\nslowest {} request(s):", flight.slowest.len().min(top));
    for slow in flight.slowest.iter().take(top) {
        let s = &slow.summary;
        println!(
            "  [{:016x}] {} — total {} (queue {}, exec {}), cache {}/{} hit/miss, {}",
            s.trace_id,
            s.label,
            fmt_ms(s.total_ns),
            fmt_ms(s.queue_ns),
            fmt_ms(s.exec_ns),
            s.cache_hits,
            s.cache_misses,
            s.outcome
        );
        let mut tree = String::new();
        for root in &slow.spans {
            render_span_tree(root, 0, &mut tree);
        }
        print!("{tree}");
    }

    let tail = flight.recent.len().min(top);
    println!("\nmost recent {tail} of {} summarie(s):", flight.recent.len());
    for s in flight.recent.iter().rev().take(tail) {
        println!(
            "  [{:016x}] {} — total {} (queue {}, exec {}), {}",
            s.trace_id,
            s.label,
            fmt_ms(s.total_ns),
            fmt_ms(s.queue_ns),
            fmt_ms(s.exec_ns),
            s.outcome
        );
    }
    Ok(())
}

/// `cape query`.
pub fn query(args: &Args) -> Result<(), CliError> {
    let rel = load(args)?;
    let stmt = sql::parse(args.require("sql").map_err(usage)?).map_err(usage)?;
    let out = sql::execute(&stmt, &rel).map_err(runtime)?;
    println!("{}", out.to_ascii(50));
    println!("({} rows)", out.num_rows());
    Ok(())
}

/// `cape demo` — generate DBLP data, mine, explain the paper's φ₀.
pub fn demo(_args: &Args) -> Result<(), CliError> {
    use cape_data::Value;
    use cape_datagen::{dblp, DblpConfig};

    println!("generating synthetic DBLP data (8,000 rows) ...");
    let rel = dblp::generate(&DblpConfig::with_rows(8_000));
    let cfg = MiningConfig {
        thresholds: Thresholds::new(0.15, 4, 0.3, 3),
        psi: 3,
        exclude: vec![dblp::attrs::PUBID],
        ..MiningConfig::default()
    };
    println!("mining patterns ...");
    let out = ArpMiner.mine(&rel, &cfg).map_err(runtime)?;
    println!(
        "found {} patterns ({} local) in {:?}\n",
        out.store.len(),
        out.store.num_local_patterns(),
        out.stats.total_time
    );
    println!("patterns:\n{}\n", out.store.describe(rel.schema()));

    let uq = UserQuestion::from_sql(
        &rel,
        "SELECT author, venue, year, count(*) AS pubcnt FROM pub GROUP BY author, venue, year",
        vec![Value::str(dblp::CASE_STUDY_AUTHOR), Value::str("SIGKDD"), Value::Int(2007)],
        Direction::Low,
    )
    .map_err(runtime)?;
    println!("question: {}\n", uq.display(rel.schema()));

    let ecfg = ExplainConfig::default_for(&rel, 10);
    let (expls, _) = OptimizedExplainer.explain(&out.store, &uq, &ecfg);
    println!("{}", render_table(&expls, rel.schema()));
    println!("{}", narrate_all(&expls[..expls.len().min(3)], &out.store, &uq, rel.schema()));
    Ok(())
}
