//! End-to-end tests of the `cape` binary: mine → persist → explain over
//! a real temporary CSV file, plus usage/error behavior.

use std::io::Write;
use std::path::{Path, PathBuf};
use std::process::{Command, Output};

fn cape() -> Command {
    Command::new(env!("CARGO_BIN_EXE_cape"))
}

fn run(args: &[&str]) -> Output {
    cape().args(args).output().expect("binary runs")
}

fn temp_dir(test: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("cape-cli-test-{}-{test}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// A tiny publications CSV with a planted dip/counterbalance.
fn write_csv(dir: &Path) -> String {
    let path = dir.join("pub.csv");
    let mut f = std::fs::File::create(&path).unwrap();
    writeln!(f, "author,year,venue").unwrap();
    for a in 0..5 {
        for y in 2000..2010 {
            for v in ["KDD", "ICDE"] {
                let n = match (a, y, v) {
                    (0, 2005, "KDD") => 1,
                    (0, 2005, "ICDE") => 5,
                    _ => 3,
                };
                for _ in 0..n {
                    writeln!(f, "a{a},{y},{v}").unwrap();
                }
            }
        }
    }
    path.to_string_lossy().into_owned()
}

const SCHEMA: &str = "author:str,year:int,venue:str";

#[test]
fn help_prints_usage() {
    let out = run(&["help"]);
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("cape mine"));
    assert!(text.contains("cape explain"));
}

#[test]
fn unknown_command_fails() {
    let out = run(&["bogus"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown command"));
}

#[test]
fn missing_options_reported() {
    let out = run(&["mine"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("--schema"));
}

#[test]
fn full_workflow_mine_patterns_explain_query() {
    let dir = temp_dir("workflow");
    let csv = write_csv(&dir);
    let patterns = dir.join("patterns.cape").to_string_lossy().into_owned();

    // mine
    let out = run(&[
        "mine",
        "--csv",
        &csv,
        "--schema",
        SCHEMA,
        "--theta",
        "0.1",
        "--delta",
        "3",
        "--lambda",
        "0.3",
        "--support",
        "2",
        "--psi",
        "3",
        "--out",
        &patterns,
    ]);
    assert!(out.status.success(), "mine failed: {}", String::from_utf8_lossy(&out.stderr));
    assert!(String::from_utf8_lossy(&out.stdout).contains("wrote"));

    // patterns listing
    let out = run(&["patterns", "--csv", &csv, "--schema", SCHEMA, "--patterns", &patterns]);
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("confidence"));

    // explain
    let out = run(&[
        "explain",
        "--csv",
        &csv,
        "--schema",
        SCHEMA,
        "--patterns",
        &patterns,
        "--sql",
        "SELECT author, year, venue, count(*) FROM pub GROUP BY author, year, venue",
        "--tuple",
        "a0,2005,KDD",
        "--dir",
        "low",
        "--k",
        "5",
        "--narrate",
    ]);
    assert!(out.status.success(), "explain failed: {}", String::from_utf8_lossy(&out.stderr));
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("ICDE"), "counterbalance missing:\n{text}");
    assert!(text.contains("Even though"), "narration missing");

    // query
    let out = run(&[
        "query",
        "--csv",
        &csv,
        "--schema",
        SCHEMA,
        "--sql",
        "SELECT venue, count(*) AS n FROM pub GROUP BY venue ORDER BY n DESC",
    ]);
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("ICDE") && text.contains("(2 rows)"));

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn explain_rejects_bad_direction_and_tuple() {
    let dir = temp_dir("baddir");
    let csv = write_csv(&dir);
    let patterns = dir.join("p2.cape").to_string_lossy().into_owned();
    let out = run(&[
        "mine",
        "--csv",
        &csv,
        "--schema",
        SCHEMA,
        "--theta",
        "0.1",
        "--delta",
        "3",
        "--lambda",
        "0.3",
        "--support",
        "2",
        "--psi",
        "2",
        "--out",
        &patterns,
    ]);
    assert!(out.status.success());

    let out = run(&[
        "explain",
        "--csv",
        &csv,
        "--schema",
        SCHEMA,
        "--patterns",
        &patterns,
        "--sql",
        "SELECT author, count(*) FROM pub GROUP BY author",
        "--tuple",
        "a0",
        "--dir",
        "sideways",
    ]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("high or low"));

    let out = run(&[
        "explain",
        "--csv",
        &csv,
        "--schema",
        SCHEMA,
        "--patterns",
        &patterns,
        "--sql",
        "SELECT author, year, count(*) FROM pub GROUP BY author, year",
        "--tuple",
        "a0",
        "--dir",
        "low",
    ]);
    assert!(!out.status.success(), "tuple arity mismatch accepted");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn query_reports_sql_errors() {
    let dir = temp_dir("sqlerr");
    let csv = write_csv(&dir);
    let out = run(&["query", "--csv", &csv, "--schema", SCHEMA, "--sql", "SELECT bogus FROM t"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("bogus"));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn exit_codes_distinguish_usage_from_runtime() {
    // Usage errors (bad invocation) exit 2.
    assert_eq!(run(&["mine"]).status.code(), Some(2), "missing options");
    assert_eq!(run(&["bogus"]).status.code(), Some(2), "unknown command");
    assert_eq!(run(&["mine", "-x"]).status.code(), Some(2), "unknown short flag");

    // Runtime errors (environment) exit 1: well-formed invocation, absent file.
    let dir = temp_dir("exitcodes");
    let out_path = dir.join("p.cape").to_string_lossy().into_owned();
    let out = run(&[
        "mine",
        "--csv",
        "/nonexistent/cape-test.csv",
        "--schema",
        SCHEMA,
        "--out",
        &out_path,
    ]);
    assert_eq!(out.status.code(), Some(1), "missing CSV: {}", String::from_utf8_lossy(&out.stderr));
    std::fs::remove_dir_all(&dir).ok();
}

/// Mine the planted CSV into `dir` and return the patterns path.
fn mine_planted(dir: &Path, csv: &str) -> String {
    let patterns = dir.join("patterns.cape").to_string_lossy().into_owned();
    let out = run(&[
        "mine",
        "--csv",
        csv,
        "--schema",
        SCHEMA,
        "--theta",
        "0.1",
        "--delta",
        "3",
        "--lambda",
        "0.3",
        "--support",
        "2",
        "--psi",
        "3",
        "--out",
        &patterns,
    ]);
    assert!(out.status.success(), "mine failed: {}", String::from_utf8_lossy(&out.stderr));
    patterns
}

/// A questions file exercising both directions, comments, and blanks.
fn write_questions(dir: &Path) -> String {
    let path = dir.join("questions.txt");
    std::fs::write(
        &path,
        "# planted dip and its counterbalance\n\
         a0,2005,KDD low\n\
         a0,2005,ICDE high\n\
         \n\
         a1,2003,KDD low\n\
         a2,2007,ICDE high\n",
    )
    .unwrap();
    path.to_string_lossy().into_owned()
}

const BATCH_SQL: &str =
    "SELECT author, year, venue, count(*) FROM pub GROUP BY author, year, venue";

#[test]
fn batch_explain_matches_golden_and_is_thread_invariant() {
    let dir = temp_dir("batchgolden");
    let csv = write_csv(&dir);
    let patterns = mine_planted(&dir, &csv);
    let questions = write_questions(&dir);

    let base = [
        "batch-explain",
        "--csv",
        &csv,
        "--schema",
        SCHEMA,
        "--patterns",
        &patterns,
        "--sql",
        BATCH_SQL,
        "--questions",
        &questions,
        "--k",
        "5",
    ];
    let mut one: Vec<&str> = base.to_vec();
    one.extend(["--threads", "1"]);
    let out1 = run(&one);
    assert!(out1.status.success(), "batch failed: {}", String::from_utf8_lossy(&out1.stderr));
    let stdout1 = String::from_utf8_lossy(&out1.stdout).into_owned();

    // Golden comparison; bless with CAPE_BLESS=1.
    let golden_path = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/golden/batch_explain.txt");
    if std::env::var_os("CAPE_BLESS").is_some() {
        std::fs::create_dir_all(golden_path.parent().unwrap()).unwrap();
        std::fs::write(&golden_path, &stdout1).unwrap();
    }
    let golden =
        std::fs::read_to_string(&golden_path).expect("golden file (CAPE_BLESS=1 to create)");
    assert_eq!(stdout1, golden, "batch-explain output drifted from the golden file");

    // The answers must mention the planted counterbalance and the summary.
    assert!(stdout1.contains("ICDE"), "counterbalance missing:\n{stdout1}");
    assert!(stdout1.contains("answered 4 questions (0 partial)"));

    // Different worker counts must be byte-identical on stdout.
    for threads in ["2", "4"] {
        let mut many: Vec<&str> = base.to_vec();
        many.extend(["--threads", threads]);
        let out = run(&many);
        assert!(out.status.success());
        assert_eq!(
            String::from_utf8_lossy(&out.stdout),
            stdout1,
            "--threads {threads} changed stdout"
        );
    }
    std::fs::remove_dir_all(&dir).ok();
}

/// A tiny crime-like CSV (primary_type, community, year) with a planted
/// dip/counterbalance at (THEFT, community 1, 2012→2013).
fn write_crime_csv(dir: &Path) -> String {
    let path = dir.join("crime.csv");
    let mut f = std::fs::File::create(&path).unwrap();
    writeln!(f, "primary_type,community,year").unwrap();
    for t in ["THEFT", "BATTERY", "ASSAULT"] {
        for c in 1..=4 {
            for y in 2010..2016 {
                let n = match (t, c, y) {
                    ("THEFT", 1, 2012) => 1,
                    ("THEFT", 1, 2013) => 5,
                    _ => 3,
                };
                for _ in 0..n {
                    writeln!(f, "{t},{c},{y}").unwrap();
                }
            }
        }
    }
    path.to_string_lossy().into_owned()
}

const CRIME_SCHEMA: &str = "primary_type:str,community:int,year:int";
const CRIME_SQL: &str =
    "SELECT primary_type, community, year, count(*) FROM crime GROUP BY primary_type, community, year";

fn mine_for(dir: &Path, csv: &str, schema: &str, name: &str) -> String {
    let patterns = dir.join(name).to_string_lossy().into_owned();
    let out = run(&[
        "mine",
        "--csv",
        csv,
        "--schema",
        schema,
        "--theta",
        "0.1",
        "--delta",
        "3",
        "--lambda",
        "0.3",
        "--support",
        "2",
        "--psi",
        "3",
        "--out",
        &patterns,
    ]);
    assert!(out.status.success(), "mine failed: {}", String::from_utf8_lossy(&out.stderr));
    patterns
}

/// Every line of `needle` appears, in order, somewhere in `hay`.
fn is_line_subsequence(needle: &str, hay: &str) -> bool {
    let mut lines = hay.lines();
    needle.lines().all(|n| lines.any(|h| h == n))
}

/// Differential golden: `--summarize` is strictly additive. Without it,
/// stdout is byte-identical across worker counts and untouched by the
/// feature existing; with it, the plain output survives as an ordered
/// line-subsequence plus appended summary sections — on the DBLP-like
/// and Crime-like datasets, at 1 and 4 workers.
#[test]
fn summarize_is_strictly_additive_and_thread_invariant() {
    let dir = temp_dir("sumadditive");
    let dblp_csv = write_csv(&dir);
    let crime_csv = write_crime_csv(&dir);
    let dblp_q = write_questions(&dir);
    let crime_q = dir.join("crime_questions.txt");
    std::fs::write(&crime_q, "THEFT,1,2012 low\nTHEFT,1,2013 high\nBATTERY,2,2011 low\n").unwrap();
    let crime_q = crime_q.to_string_lossy().into_owned();

    let datasets = [
        ("dblp", dblp_csv.as_str(), SCHEMA, BATCH_SQL, dblp_q.as_str(), "a0,2005,KDD"),
        ("crime", crime_csv.as_str(), CRIME_SCHEMA, CRIME_SQL, crime_q.as_str(), "THEFT,1,2012"),
    ];
    for (label, csv, schema, sql, questions, tuple) in datasets {
        let patterns = mine_for(&dir, csv, schema, &format!("{label}.cape"));
        let base = [
            "batch-explain",
            "--csv",
            csv,
            "--schema",
            schema,
            "--patterns",
            &patterns,
            "--sql",
            sql,
            "--questions",
            questions,
            "--k",
            "5",
        ];
        let batch = |extra: &[&str]| -> String {
            let mut args: Vec<&str> = base.to_vec();
            args.extend_from_slice(extra);
            let out = run(&args);
            assert!(
                out.status.success(),
                "{label} {extra:?} failed: {}",
                String::from_utf8_lossy(&out.stderr)
            );
            String::from_utf8_lossy(&out.stdout).into_owned()
        };

        let plain = batch(&["--threads", "1"]);
        assert_eq!(plain, batch(&["--threads", "4"]), "{label}: plain output thread-variant");
        let summarized = batch(&["--threads", "1", "--summarize"]);
        assert_eq!(
            summarized,
            batch(&["--threads", "4", "--summarize"]),
            "{label}: summarized output thread-variant"
        );

        // Strictly additive: the plain transcript survives verbatim as an
        // ordered subsequence, and summaries actually appeared.
        assert!(
            is_line_subsequence(&plain, &summarized),
            "{label}: --summarize rewrote plain output lines"
        );
        assert!(summarized.len() > plain.len(), "{label}: --summarize added nothing");
        assert!(summarized.contains("summaries:"), "{label}: no summary section\n{summarized}");

        // Single-question explain: the plain output is an exact prefix.
        let explain = |extra: &[&str]| -> String {
            let mut args = vec![
                "explain",
                "--csv",
                csv,
                "--schema",
                schema,
                "--patterns",
                &patterns,
                "--sql",
                sql,
                "--tuple",
                tuple,
                "--dir",
                "low",
                "--k",
                "5",
            ];
            args.extend_from_slice(extra);
            let out = run(&args);
            assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
            String::from_utf8_lossy(&out.stdout).into_owned()
        };
        // The explain header embeds a wall-clock duration; blank it out
        // before comparing (everything else is deterministic).
        let normalize = |s: &str| -> String {
            s.lines()
                .map(|l| l.find(" tuples checked, ").map_or(l, |i| &l[..i]))
                .collect::<Vec<_>>()
                .join("\n")
        };
        let plain_one = normalize(&explain(&[]));
        let summarized_one = normalize(&explain(&["--summarize"]));
        assert!(
            summarized_one.starts_with(&plain_one),
            "{label}: explain --summarize must append, not rewrite"
        );
        assert!(summarized_one.contains("summaries (min_members=2, max_loss=0.50)"));
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn batch_explain_timeout_degrades_and_exit_codes() {
    let dir = temp_dir("batchtimeout");
    let csv = write_csv(&dir);
    let patterns = mine_planted(&dir, &csv);
    let questions = write_questions(&dir);
    let base = [
        "batch-explain",
        "--csv",
        &csv,
        "--schema",
        SCHEMA,
        "--patterns",
        &patterns,
        "--sql",
        BATCH_SQL,
        "--questions",
        &questions,
        "--timeout-ms",
        "0",
    ];

    // Zero deadline: every answer is partial, but that is still success.
    let out = run(&base);
    assert!(out.status.success(), "partial answers must not fail by default");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("[partial]"), "no partial marker:\n{stdout}");
    assert!(stdout.contains("answered 4 questions (4 partial)"), "summary wrong:\n{stdout}");

    // With --fail-on-timeout the same run is a runtime failure (exit 1).
    let mut strict: Vec<&str> = base.to_vec();
    strict.push("--fail-on-timeout");
    let out = run(&strict);
    assert_eq!(out.status.code(), Some(1));
    assert!(String::from_utf8_lossy(&out.stderr).contains("deadline"));

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn batch_explain_usage_and_runtime_errors() {
    let dir = temp_dir("batcherr");
    let csv = write_csv(&dir);
    let patterns = mine_planted(&dir, &csv);
    let questions = write_questions(&dir);
    let base = |extra: &[&str]| {
        let mut v = vec![
            "batch-explain",
            "--csv",
            &csv,
            "--schema",
            SCHEMA,
            "--patterns",
            &patterns,
            "--sql",
            BATCH_SQL,
        ];
        v.extend_from_slice(extra);
        run(&v)
    };

    // Usage errors exit 2.
    assert_eq!(base(&[]).status.code(), Some(2), "missing --questions");
    assert_eq!(
        base(&["--questions", &questions, "--threads", "0"]).status.code(),
        Some(2),
        "--threads 0"
    );
    assert_eq!(
        base(&["--questions", &questions, "--threads", "abc"]).status.code(),
        Some(2),
        "non-numeric --threads"
    );
    let bad_dir = dir.join("bad.txt");
    std::fs::write(&bad_dir, "a0,2005,KDD sideways\n").unwrap();
    let bad_dir = bad_dir.to_string_lossy().into_owned();
    let out = base(&["--questions", &bad_dir]);
    assert_eq!(out.status.code(), Some(2), "bad direction in questions file");
    assert!(String::from_utf8_lossy(&out.stderr).contains("high or low"));

    // Runtime errors exit 1.
    assert_eq!(
        base(&["--questions", "/nonexistent/questions.txt"]).status.code(),
        Some(1),
        "missing questions file"
    );
    let empty = dir.join("empty.txt");
    std::fs::write(&empty, "# only comments\n\n").unwrap();
    let empty = empty.to_string_lossy().into_owned();
    assert_eq!(base(&["--questions", &empty]).status.code(), Some(1), "no questions");

    std::fs::remove_dir_all(&dir).ok();
}

/// Mine the planted CSV into a binary snapshot and return its path.
fn mine_snapshot(dir: &Path, csv: &str) -> String {
    let store = dir.join("store.cape").to_string_lossy().into_owned();
    let out = run(&[
        "mine",
        "--csv",
        csv,
        "--schema",
        SCHEMA,
        "--theta",
        "0.1",
        "--delta",
        "3",
        "--lambda",
        "0.3",
        "--support",
        "2",
        "--psi",
        "3",
        "--save",
        &store,
    ]);
    assert!(out.status.success(), "mine --save failed: {}", String::from_utf8_lossy(&out.stderr));
    assert!(String::from_utf8_lossy(&out.stdout).contains("saved"));
    store
}

#[test]
fn snapshot_workflow_mine_save_explain_store() {
    let dir = temp_dir("snapworkflow");
    let csv = write_csv(&dir);
    let store = mine_snapshot(&dir, &csv);

    // patterns listing from the snapshot.
    let out = run(&["patterns", "--csv", &csv, "--schema", SCHEMA, "--store", &store]);
    assert!(out.status.success(), "patterns --store: {}", String::from_utf8_lossy(&out.stderr));
    assert!(String::from_utf8_lossy(&out.stdout).contains("confidence"));

    // explain against the snapshot finds the planted counterbalance.
    let out = run(&[
        "explain",
        "--csv",
        &csv,
        "--schema",
        SCHEMA,
        "--store",
        &store,
        "--sql",
        BATCH_SQL,
        "--tuple",
        "a0,2005,KDD",
        "--dir",
        "low",
        "--k",
        "5",
    ]);
    assert!(out.status.success(), "explain --store: {}", String::from_utf8_lossy(&out.stderr));
    assert!(String::from_utf8_lossy(&out.stdout).contains("ICDE"));

    // batch-explain from the snapshot answers every question.
    let questions = write_questions(&dir);
    let out = run(&[
        "batch-explain",
        "--csv",
        &csv,
        "--schema",
        SCHEMA,
        "--store",
        &store,
        "--sql",
        BATCH_SQL,
        "--questions",
        &questions,
        "--k",
        "5",
    ]);
    assert!(out.status.success(), "batch --store: {}", String::from_utf8_lossy(&out.stderr));
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("answered 4 questions (0 partial)"), "summary wrong:\n{text}");

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn corrupt_store_files_exit_3_with_typed_stderr() {
    let dir = temp_dir("snapcorrupt");
    let csv = write_csv(&dir);
    let store = mine_snapshot(&dir, &csv);
    let bytes = std::fs::read(&store).unwrap();

    // Run `explain --store PATH` and return (exit code, stderr).
    let explain_with = |path: &str, schema: &str| {
        let out = run(&[
            "explain",
            "--csv",
            &csv,
            "--schema",
            schema,
            "--store",
            path,
            "--sql",
            BATCH_SQL,
            "--tuple",
            "a0,2005,KDD",
            "--dir",
            "low",
        ]);
        (out.status.code(), String::from_utf8_lossy(&out.stderr).into_owned())
    };
    let write_variant = |name: &str, content: &[u8]| {
        let path = dir.join(name).to_string_lossy().into_owned();
        std::fs::write(&path, content).unwrap();
        path
    };

    // Not a snapshot at all → bad magic.
    let p = write_variant("garbage.cape", b"NOTASNAPSHOTFILE-and-then-some-padding");
    let (code, stderr) = explain_with(&p, SCHEMA);
    assert_eq!(code, Some(3), "bad magic: {stderr}");
    assert!(stderr.contains("bad magic"), "stderr: {stderr}");

    // Version byte bumped → unsupported version.
    let mut v = bytes.clone();
    v[8] ^= 0xFF;
    let p = write_variant("version.cape", &v);
    let (code, stderr) = explain_with(&p, SCHEMA);
    assert_eq!(code, Some(3), "version: {stderr}");
    assert!(stderr.contains("unsupported snapshot version"), "stderr: {stderr}");

    // First section tag flipped → section corrupt.
    let mut v = bytes.clone();
    v[16] ^= 0xFF;
    let p = write_variant("section.cape", &v);
    let (code, stderr) = explain_with(&p, SCHEMA);
    assert_eq!(code, Some(3), "section: {stderr}");
    assert!(stderr.contains("section corrupt"), "stderr: {stderr}");

    // Last byte missing → truncated (torn write).
    let p = write_variant("torn.cape", &bytes[..bytes.len() - 1]);
    let (code, stderr) = explain_with(&p, SCHEMA);
    assert_eq!(code, Some(3), "truncated: {stderr}");
    assert!(stderr.contains("truncated"), "stderr: {stderr}");

    // Valid file, different schema → schema mismatch.
    let (code, stderr) = explain_with(&store, "author:str,year:str,venue:str");
    assert_eq!(code, Some(3), "schema: {stderr}");
    assert!(stderr.contains("schema mismatch"), "stderr: {stderr}");

    // A *missing* store file is an environment problem, not corruption:
    // exit 1, same as any other unreadable input.
    let (code, stderr) = explain_with("/nonexistent/store.cape", SCHEMA);
    assert_eq!(code, Some(1), "missing store file: {stderr}");
    assert!(stderr.contains("cannot read store"), "stderr: {stderr}");

    // Usage taxonomy stays intact: --patterns and --store both absent.
    let out = run(&[
        "explain",
        "--csv",
        &csv,
        "--schema",
        SCHEMA,
        "--sql",
        BATCH_SQL,
        "--tuple",
        "a0,2005,KDD",
        "--dir",
        "low",
    ]);
    assert_eq!(out.status.code(), Some(2), "no pattern source is a usage error");

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn mine_without_out_or_save_is_usage_error() {
    let dir = temp_dir("minesave");
    let csv = write_csv(&dir);
    let out = run(&["mine", "--csv", &csv, "--schema", SCHEMA]);
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("--save"));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn metrics_flag_writes_telemetry_snapshot() {
    let dir = temp_dir("metrics");
    let csv = write_csv(&dir);
    let patterns = dir.join("patterns.cape").to_string_lossy().into_owned();
    let mine_metrics = dir.join("mine.json").to_string_lossy().into_owned();
    let explain_metrics = dir.join("explain.json").to_string_lossy().into_owned();

    let out = run(&[
        "mine",
        "--csv",
        &csv,
        "--schema",
        SCHEMA,
        "--theta",
        "0.1",
        "--delta",
        "3",
        "--lambda",
        "0.3",
        "--support",
        "2",
        "--psi",
        "3",
        "--out",
        &patterns,
        "--metrics",
        &mine_metrics,
    ]);
    assert!(out.status.success(), "mine failed: {}", String::from_utf8_lossy(&out.stderr));
    let json = std::fs::read_to_string(&mine_metrics).expect("metrics file written");
    for key in [
        "\"phases\"",
        "\"counters\"",
        "\"spans\"",
        "\"histograms\"",
        "mining.candidates_considered",
        "mining.fragments_fitted",
        "cli.mine",
    ] {
        assert!(json.contains(key), "mine metrics missing {key}:\n{json}");
    }

    let out = run(&[
        "explain",
        "--csv",
        &csv,
        "--schema",
        SCHEMA,
        "--patterns",
        &patterns,
        "--sql",
        "SELECT author, year, venue, count(*) FROM pub GROUP BY author, year, venue",
        "--tuple",
        "a0,2005,KDD",
        "--dir",
        "low",
        "--metrics",
        &explain_metrics,
    ]);
    assert!(out.status.success(), "explain failed: {}", String::from_utf8_lossy(&out.stderr));
    let json = std::fs::read_to_string(&explain_metrics).expect("metrics file written");
    for key in ["\"phases\"", "explain.refinements_pruned", "explain.run_ns", "explain.run"] {
        assert!(json.contains(key), "explain metrics missing {key}:\n{json}");
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn batch_explain_trace_out_emits_valid_chrome_trace() {
    use cape_obs::Json;

    let dir = temp_dir("traceout");
    let csv = write_csv(&dir);
    let patterns = mine_planted(&dir, &csv);
    let questions = write_questions(&dir);
    let trace_path = dir.join("trace.json").to_string_lossy().into_owned();

    let out = run(&[
        "batch-explain",
        "--csv",
        &csv,
        "--schema",
        SCHEMA,
        "--patterns",
        &patterns,
        "--sql",
        BATCH_SQL,
        "--questions",
        &questions,
        "--threads",
        "2",
        "--trace-out",
        &trace_path,
    ]);
    assert!(out.status.success(), "batch failed: {}", String::from_utf8_lossy(&out.stderr));

    let text = std::fs::read_to_string(&trace_path).expect("trace file written");
    let doc = Json::parse(&text).expect("trace file is valid JSON");
    let events = doc.get("traceEvents").and_then(Json::as_arr).expect("traceEvents array");
    assert!(events.len() > 1, "trace has only the metadata event");

    // Metadata names the process; slices are complete-duration events
    // with numeric ts/dur and at least the serve-side phases present.
    assert_eq!(events[0].get("ph").and_then(Json::as_str), Some("M"));
    let mut names = std::collections::BTreeSet::new();
    let mut request_trace_ids = std::collections::BTreeSet::new();
    for slice in &events[1..] {
        assert_eq!(slice.get("ph").and_then(Json::as_str), Some("X"));
        assert!(slice.get("ts").and_then(Json::as_f64).is_some(), "slice missing ts");
        assert!(slice.get("dur").and_then(Json::as_f64).is_some(), "slice missing dur");
        let name = slice.get("name").and_then(Json::as_str).expect("slice name");
        names.insert(name.to_string());
        if name == "serve.request" {
            let id = slice
                .get("args")
                .and_then(|a| a.get("trace_id"))
                .and_then(Json::as_str)
                .expect("request slice carries its trace id");
            request_trace_ids.insert(id.to_string());
        }
    }
    for expected in ["cli.batch_explain", "serve.request", "serve.queue_wait", "serve.exec"] {
        assert!(names.contains(expected), "trace missing {expected} slices: {names:?}");
    }
    assert_eq!(request_trace_ids.len(), 4, "each of the 4 questions has its own trace id");
    assert_eq!(
        doc.get("otherData").and_then(|o| o.get("dropped_events")).and_then(Json::as_u64),
        Some(0)
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn access_log_and_serve_report_workflow() {
    use cape_obs::Json;

    let dir = temp_dir("accesslog");
    let csv = write_csv(&dir);
    let patterns = mine_planted(&dir, &csv);
    let questions = write_questions(&dir);
    let log_path = dir.join("access.jsonl").to_string_lossy().into_owned();
    let metrics_path = dir.join("metrics.json").to_string_lossy().into_owned();

    let out = run(&[
        "batch-explain",
        "--csv",
        &csv,
        "--schema",
        SCHEMA,
        "--patterns",
        &patterns,
        "--sql",
        BATCH_SQL,
        "--questions",
        &questions,
        "--threads",
        "2",
        "--access-log",
        &log_path,
        "--metrics",
        &metrics_path,
    ]);
    assert!(out.status.success(), "batch failed: {}", String::from_utf8_lossy(&out.stderr));

    // One parseable line per question with the attribution fields.
    let log = std::fs::read_to_string(&log_path).expect("access log written");
    let lines: Vec<&str> = log.lines().collect();
    assert_eq!(lines.len(), 4, "one access-log line per question:\n{log}");
    for line in &lines {
        let v = Json::parse(line).expect("access-log line parses");
        for key in ["trace_id", "question", "outcome", "queue_ns", "exec_ns", "total_ns"] {
            assert!(v.get(key).is_some(), "access-log line missing {key}: {line}");
        }
        assert_eq!(v.get("outcome").and_then(Json::as_str), Some("ok"));
    }

    // The metrics snapshot carries the flight-recorder section, and
    // serve-report renders it with the queue-wait/execution split.
    let out = run(&["serve-report", "--snapshot", &metrics_path, "--top", "3"]);
    assert!(out.status.success(), "serve-report: {}", String::from_utf8_lossy(&out.stderr));
    let report = String::from_utf8_lossy(&out.stdout);
    assert!(report.contains("4 request(s) recorded"), "report:\n{report}");
    assert!(report.contains("slowest"), "report:\n{report}");
    assert!(report.contains("serve.request"), "span tree missing:\n{report}");
    assert!(report.contains("serve.queue_wait"), "queue-wait phase missing:\n{report}");
    assert!(report.contains("serve.exec"), "execution phase missing:\n{report}");
    assert!(report.contains("serve.queue_wait_ns: p50"), "histogram line missing:\n{report}");

    // serve-report without --snapshot is a usage error.
    assert_eq!(run(&["serve-report"]).status.code(), Some(2));
    // A snapshot with no requests section reports that and succeeds.
    let empty = dir.join("empty.json").to_string_lossy().into_owned();
    std::fs::write(&empty, "{\"counters\":{}}\n").unwrap();
    let out = run(&["serve-report", "--snapshot", &empty]);
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("no requests recorded"));

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn quiet_suppresses_progress_verbose_keeps_it() {
    let dir = temp_dir("verbosity");
    let csv = write_csv(&dir);
    let patterns = dir.join("p.cape").to_string_lossy().into_owned();
    let base = [
        "mine",
        "--csv",
        &csv,
        "--schema",
        SCHEMA,
        "--theta",
        "0.1",
        "--delta",
        "3",
        "--lambda",
        "0.3",
        "--support",
        "2",
        "--psi",
        "2",
        "--out",
        &patterns,
    ];

    let out = run(&base);
    assert!(out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("mining") && stderr.contains("rows"), "no progress:\n{stderr}");

    let mut quiet: Vec<&str> = base.to_vec();
    quiet.push("-q");
    let out = run(&quiet);
    assert!(out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(!stderr.contains("mining"), "-q still noisy:\n{stderr}");
    assert!(String::from_utf8_lossy(&out.stdout).contains("wrote"), "data output suppressed");
    std::fs::remove_dir_all(&dir).ok();
}

/// Mine a patterns file for the unknown-aggregate-column tests.
fn mined_patterns(dir: &Path, csv: &str) -> String {
    let patterns = dir.join("p.cape").to_string_lossy().into_owned();
    let out = run(&[
        "mine",
        "--csv",
        csv,
        "--schema",
        SCHEMA,
        "--theta",
        "0.1",
        "--delta",
        "3",
        "--lambda",
        "0.3",
        "--support",
        "2",
        "--psi",
        "3",
        "--out",
        &patterns,
    ]);
    assert!(out.status.success(), "mine failed: {}", String::from_utf8_lossy(&out.stderr));
    patterns
}

const GOLDEN_UNKNOWN_COLUMN: &str =
    "error: unknown aggregate column `royalties`: not in the relation schema";

#[test]
fn explain_unknown_aggregate_column_exits_4() {
    let dir = temp_dir("unknown-agg-explain");
    let csv = write_csv(&dir);
    let patterns = mined_patterns(&dir, &csv);

    let out = run(&[
        "explain",
        "--csv",
        &csv,
        "--schema",
        SCHEMA,
        "--patterns",
        &patterns,
        "--sql",
        "SELECT author, year, venue, sum(royalties) FROM pub GROUP BY author, year, venue",
        "--tuple",
        "a0,2005,KDD",
        "--dir",
        "low",
    ]);
    // Distinct exit code: 4, not the generic runtime error (1).
    assert_eq!(out.status.code(), Some(4), "stderr: {}", String::from_utf8_lossy(&out.stderr));
    let stderr = String::from_utf8_lossy(&out.stderr);
    // Golden last line: the typed error, naming the column.
    assert_eq!(stderr.lines().last(), Some(GOLDEN_UNKNOWN_COLUMN), "stderr:\n{stderr}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn batch_explain_unknown_aggregate_column_exits_4_before_reading_questions() {
    let dir = temp_dir("unknown-agg-batch");
    let csv = write_csv(&dir);
    let patterns = mined_patterns(&dir, &csv);
    // The questions file does not even exist: the shared query is
    // validated up front, so the column error wins with exit 4 (a
    // missing file alone would be a runtime error, exit 1).
    let questions = dir.join("absent.txt").to_string_lossy().into_owned();

    let out = run(&[
        "batch-explain",
        "--csv",
        &csv,
        "--schema",
        SCHEMA,
        "--patterns",
        &patterns,
        "--sql",
        "SELECT author, year, venue, sum(royalties) FROM pub GROUP BY author, year, venue",
        "--questions",
        &questions,
    ]);
    assert_eq!(out.status.code(), Some(4), "stderr: {}", String::from_utf8_lossy(&out.stderr));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert_eq!(stderr.lines().last(), Some(GOLDEN_UNKNOWN_COLUMN), "stderr:\n{stderr}");

    // Control: the same invocation with a valid aggregate column fails
    // on the missing questions file instead — exit 1, different message.
    let out = run(&[
        "batch-explain",
        "--csv",
        &csv,
        "--schema",
        SCHEMA,
        "--patterns",
        &patterns,
        "--sql",
        "SELECT author, year, venue, count(*) FROM pub GROUP BY author, year, venue",
        "--questions",
        &questions,
    ]);
    assert_eq!(out.status.code(), Some(1));
    assert!(String::from_utf8_lossy(&out.stderr).contains("cannot read"));
    std::fs::remove_dir_all(&dir).ok();
}

/// Split the planted CSV into a base prefix and a delta suffix, so that
/// base + delta (in order) is exactly the full file.
fn write_split_csv(dir: &Path, delta_lines: usize) -> (String, String) {
    let full = write_csv(dir);
    let text = std::fs::read_to_string(&full).unwrap();
    let lines: Vec<&str> = text.lines().collect();
    let (header, data) = (lines[0], &lines[1..]);
    let cut = data.len() - delta_lines;
    let base_path = dir.join("base.csv");
    let delta_path = dir.join("delta.csv");
    std::fs::write(&base_path, format!("{header}\n{}\n", data[..cut].join("\n"))).unwrap();
    std::fs::write(&delta_path, format!("{header}\n{}\n", data[cut..].join("\n"))).unwrap();
    (base_path.to_string_lossy().into_owned(), delta_path.to_string_lossy().into_owned())
}

#[test]
fn append_workflow_wal_replay_and_compaction() {
    let dir = temp_dir("append");
    let (base, delta) = write_split_csv(&dir, 40);
    let store = mine_snapshot(&dir, &base);
    let wal = format!("{store}.wal");

    // Append the delta: the WAL appears beside the snapshot.
    let out =
        run(&["append", "--csv", &base, "--schema", SCHEMA, "--store", &store, "--rows", &delta]);
    assert!(out.status.success(), "append failed: {}", String::from_utf8_lossy(&out.stderr));
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("appended 40 rows"), "summary wrong:\n{text}");
    assert!(text.contains("wal: record 1 committed"), "wal line missing:\n{text}");
    assert!(Path::new(&wal).exists(), "no WAL beside the snapshot");

    // Read paths replay the WAL: explain over the *base* CSV serves the
    // appended store and still finds the planted counterbalance.
    let explain = |store: &str| {
        run(&[
            "explain",
            "--csv",
            &base,
            "--schema",
            SCHEMA,
            "--store",
            store,
            "--sql",
            BATCH_SQL,
            "--tuple",
            "a0,2005,KDD",
            "--dir",
            "low",
            "--k",
            "5",
        ])
    };
    let out = explain(&store);
    assert!(out.status.success(), "explain after append: {}", String::from_utf8_lossy(&out.stderr));
    assert!(String::from_utf8_lossy(&out.stdout).contains("ICDE"));

    // A second append replays the first from the WAL before committing
    // record 2 (the CLI passes the base CSV each time).
    let out = run(&[
        "append",
        "--csv",
        &base,
        "--schema",
        SCHEMA,
        "--store",
        &store,
        "--rows",
        &delta,
        "--compact",
    ]);
    assert!(out.status.success(), "append 2 failed: {}", String::from_utf8_lossy(&out.stderr));
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("wal: record 2 committed"), "sequence did not advance:\n{text}");
    assert!(text.contains("compacted"), "no compaction line:\n{text}");

    // After compaction the snapshot itself holds the appended rows'
    // patterns; but the base CSV no longer matches the compacted
    // snapshot's row set, so loading demands the WAL-aware path, which
    // replays an empty (folded) log — still success.
    let out = explain(&store);
    assert!(
        out.status.success(),
        "explain after compact: {}",
        String::from_utf8_lossy(&out.stderr)
    );

    // Corrupt the folded WAL header: reads now exit 3 with a typed error.
    let mut bytes = std::fs::read(&wal).unwrap();
    bytes[0] ^= 0xFF;
    std::fs::write(&wal, &bytes).unwrap();
    let out = explain(&store);
    assert_eq!(out.status.code(), Some(3), "stderr: {}", String::from_utf8_lossy(&out.stderr));
    assert!(String::from_utf8_lossy(&out.stderr).contains("wal"), "untyped wal error");

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn append_usage_and_store_errors() {
    let dir = temp_dir("appenderr");
    let (base, delta) = write_split_csv(&dir, 10);

    // Usage: --store and --rows are both required.
    let out = run(&["append", "--csv", &base, "--schema", SCHEMA, "--rows", &delta]);
    assert_eq!(out.status.code(), Some(2), "missing --store");
    let store = mine_snapshot(&dir, &base);
    let out = run(&["append", "--csv", &base, "--schema", SCHEMA, "--store", &store]);
    assert_eq!(out.status.code(), Some(2), "missing --rows");

    // Runtime: absent delta file.
    let out = run(&[
        "append",
        "--csv",
        &base,
        "--schema",
        SCHEMA,
        "--store",
        &store,
        "--rows",
        "/nonexistent/delta.csv",
    ]);
    assert_eq!(out.status.code(), Some(1), "missing delta CSV");

    // Store: a garbage snapshot is rejected with exit 3 before any append.
    let garbage = dir.join("garbage.cape").to_string_lossy().into_owned();
    std::fs::write(&garbage, b"NOTASNAPSHOTFILE-and-then-some-padding").unwrap();
    let out =
        run(&["append", "--csv", &base, "--schema", SCHEMA, "--store", &garbage, "--rows", &delta]);
    assert_eq!(out.status.code(), Some(3), "stderr: {}", String::from_utf8_lossy(&out.stderr));

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn usage_documents_exit_code_4() {
    let out = run(&["help"]);
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("cape serve --listen"), "serve missing from usage:\n{text}");
    assert!(text.contains("4 question references an aggregate column"), "exit 4 undocumented");
}
