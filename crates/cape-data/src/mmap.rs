//! Read-only file mappings for zero-copy snapshot loading.
//!
//! [`MapRegion`] maps a whole file read-only (`mmap(PROT_READ,
//! MAP_PRIVATE)` on unix, declared directly against the C runtime that
//! `std` already links — no external crate) and hands out `&[u8]` views
//! whose lifetime is pinned by an `Arc`. On non-unix targets, or when
//! `CAPE_NO_MMAP=1` is set, the file is read into an 8-byte-aligned heap
//! buffer instead, so every caller sees identical semantics and alignment
//! guarantees either way.
//!
//! Safety argument for mapping snapshot slabs (see DESIGN.md §17): the
//! mapping is private and read-only, the snapshot loader CRC-validates
//! every section against the mapped bytes *before* building any typed
//! view, and typed views are only created at offsets whose alignment was
//! checked at load time. A concurrent writer replacing the snapshot file
//! uses atomic rename, so an existing mapping keeps seeing the old inode.

use std::fs::File;
use std::io::{self, Read};
use std::path::Path;
use std::sync::Arc;

#[cfg(unix)]
mod sys {
    //! Minimal mmap bindings. `std` links libc on every unix target, so
    //! declaring the two symbols we need avoids an external dependency.
    use std::ffi::c_void;
    use std::os::fd::RawFd;

    pub const PROT_READ: i32 = 1;
    pub const MAP_PRIVATE: i32 = 2;

    extern "C" {
        pub fn mmap(
            addr: *mut c_void,
            len: usize,
            prot: i32,
            flags: i32,
            fd: RawFd,
            offset: i64,
        ) -> *mut c_void;
        pub fn munmap(addr: *mut c_void, len: usize) -> i32;
    }

    pub const MAP_FAILED: *mut c_void = usize::MAX as *mut c_void;
}

enum Backing {
    /// A live `mmap` that must be `munmap`ed on drop.
    #[cfg(unix)]
    Mapped { ptr: *mut std::ffi::c_void, len: usize },
    /// Heap fallback; `u64` storage guarantees 8-byte alignment for the
    /// `i64`/`f64` slab views carved out of it.
    Heap(Vec<u64>, usize),
}

/// An immutable, 8-byte-aligned byte region backing zero-copy slabs.
pub struct MapRegion {
    backing: Backing,
}

// SAFETY: the region's bytes are immutable for its whole lifetime; the
// raw pointer is only ever read.
unsafe impl Send for MapRegion {}
unsafe impl Sync for MapRegion {}

impl MapRegion {
    /// Map `path` read-only. Falls back to an aligned heap read when
    /// mapping is unavailable (non-unix, empty file, `CAPE_NO_MMAP=1`,
    /// or a failed `mmap` call).
    pub fn open(path: &Path) -> io::Result<Arc<MapRegion>> {
        let mut file = File::open(path)?;
        let len = file.metadata()?.len();
        let len = usize::try_from(len)
            .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "file too large to map"))?;

        #[cfg(unix)]
        {
            let no_mmap = std::env::var_os("CAPE_NO_MMAP").is_some_and(|v| v == "1");
            if len > 0 && !no_mmap {
                use std::os::fd::AsRawFd;
                // SAFETY: fd is open for the duration of the call; a
                // private read-only mapping has no aliasing hazards.
                let ptr = unsafe {
                    sys::mmap(
                        std::ptr::null_mut(),
                        len,
                        sys::PROT_READ,
                        sys::MAP_PRIVATE,
                        file.as_raw_fd(),
                        0,
                    )
                };
                if ptr != sys::MAP_FAILED {
                    cape_obs::counter_add("data.mmap.regions", 1);
                    cape_obs::counter_add("data.mmap.bytes", len as u64);
                    return Ok(Arc::new(MapRegion { backing: Backing::Mapped { ptr, len } }));
                }
                // mmap failed (e.g. odd filesystem): fall through to the
                // heap read rather than erroring.
            }
        }

        let mut words = vec![0u64; len.div_ceil(8)];
        // SAFETY: the Vec<u64> allocation is at least `len` bytes and
        // plain-old-data; we only reinterpret it as bytes to read into.
        let bytes = unsafe { std::slice::from_raw_parts_mut(words.as_mut_ptr() as *mut u8, len) };
        file.read_exact(bytes)?;
        cape_obs::counter_add("data.mmap.heap_fallbacks", 1);
        Ok(Arc::new(MapRegion { backing: Backing::Heap(words, len) }))
    }

    /// The mapped bytes.
    #[inline]
    pub fn bytes(&self) -> &[u8] {
        match &self.backing {
            #[cfg(unix)]
            // SAFETY: ptr/len come from a successful mmap that lives
            // until drop.
            Backing::Mapped { ptr, len } => unsafe {
                std::slice::from_raw_parts(*ptr as *const u8, *len)
            },
            Backing::Heap(words, len) => {
                // SAFETY: the u64 buffer holds at least `len` initialized bytes.
                unsafe { std::slice::from_raw_parts(words.as_ptr() as *const u8, *len) }
            }
        }
    }

    /// Region length in bytes.
    pub fn len(&self) -> usize {
        match &self.backing {
            #[cfg(unix)]
            Backing::Mapped { len, .. } => *len,
            Backing::Heap(_, len) => *len,
        }
    }

    /// True when the region is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Whether this region is a true `mmap` (vs. the heap fallback).
    pub fn is_mapped(&self) -> bool {
        match &self.backing {
            #[cfg(unix)]
            Backing::Mapped { .. } => true,
            Backing::Heap(..) => false,
        }
    }

    /// Base address of the region (8-byte aligned in both backings; mmap
    /// returns page-aligned addresses).
    pub fn base_ptr(&self) -> *const u8 {
        self.bytes().as_ptr()
    }
}

impl Drop for MapRegion {
    fn drop(&mut self) {
        #[cfg(unix)]
        if let Backing::Mapped { ptr, len } = self.backing {
            // SAFETY: ptr/len are the exact values returned by mmap and
            // no views outlive the Arc that owns this region.
            unsafe {
                sys::munmap(ptr, len);
            }
        }
    }
}

impl std::fmt::Debug for MapRegion {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MapRegion")
            .field("len", &self.len())
            .field("mapped", &self.is_mapped())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_file(name: &str, contents: &[u8]) -> std::path::PathBuf {
        let path = std::env::temp_dir().join(format!("cape_mmap_{}_{}", std::process::id(), name));
        std::fs::write(&path, contents).unwrap();
        path
    }

    #[test]
    fn maps_file_contents() {
        let path = tmp_file("basic", b"hello slab world");
        let region = MapRegion::open(&path).unwrap();
        assert_eq!(region.bytes(), b"hello slab world");
        assert_eq!(region.len(), 16);
        assert_eq!(region.base_ptr() as usize % 8, 0, "base must be 8-aligned");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn empty_file_uses_heap_backing() {
        let path = tmp_file("empty", b"");
        let region = MapRegion::open(&path).unwrap();
        assert!(region.is_empty());
        assert!(!region.is_mapped());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn typed_view_reads_aligned_words() {
        let mut bytes = Vec::new();
        for v in [1i64, -7, 1 << 40] {
            bytes.extend_from_slice(&v.to_le_bytes());
        }
        let path = tmp_file("words", &bytes);
        let region = MapRegion::open(&path).unwrap();
        let base = region.base_ptr();
        assert_eq!(base as usize % 8, 0);
        // SAFETY: offset 0 is 8-aligned and 3 i64s fit in the region.
        let view = unsafe { std::slice::from_raw_parts(base as *const i64, 3) };
        assert_eq!(view, &[1, -7, 1 << 40]);
        std::fs::remove_file(&path).ok();
    }
}
