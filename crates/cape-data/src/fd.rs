//! Functional dependencies: representation, attribute closure, minimality
//! checks, and discovery from group cardinalities (Appendix D of the paper).

use crate::schema::AttrId;
use std::collections::{BTreeSet, HashMap};

/// A functional dependency `lhs → rhs` with a single right-hand attribute.
/// (By Armstrong's axioms, multi-attribute right-hand sides decompose.)
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Fd {
    /// Determinant attribute set.
    pub lhs: BTreeSet<AttrId>,
    /// Determined attribute.
    pub rhs: AttrId,
}

impl Fd {
    /// Create an FD from an unordered left-hand side.
    pub fn new(lhs: impl IntoIterator<Item = AttrId>, rhs: AttrId) -> Self {
        Fd { lhs: lhs.into_iter().collect(), rhs }
    }
}

/// A set of functional dependencies with closure-based reasoning.
#[derive(Debug, Clone, Default)]
pub struct FdSet {
    fds: Vec<Fd>,
}

impl FdSet {
    /// Empty FD set.
    pub fn new() -> Self {
        FdSet::default()
    }

    /// Add an FD if not already present. Returns whether it was new.
    pub fn add(&mut self, fd: Fd) -> bool {
        if self.fds.contains(&fd) {
            false
        } else {
            self.fds.push(fd);
            true
        }
    }

    /// Number of stored FDs.
    pub fn len(&self) -> usize {
        self.fds.len()
    }

    /// True when no FDs are stored.
    pub fn is_empty(&self) -> bool {
        self.fds.is_empty()
    }

    /// Iterate over the stored FDs.
    pub fn iter(&self) -> impl Iterator<Item = &Fd> {
        self.fds.iter()
    }

    /// The attribute closure `attrs⁺` under this FD set.
    pub fn closure(&self, attrs: &BTreeSet<AttrId>) -> BTreeSet<AttrId> {
        let mut closure = attrs.clone();
        let mut changed = true;
        while changed {
            changed = false;
            for fd in &self.fds {
                if !closure.contains(&fd.rhs) && fd.lhs.is_subset(&closure) {
                    closure.insert(fd.rhs);
                    changed = true;
                }
            }
        }
        closure
    }

    /// Whether `lhs → rhs` is implied by this FD set.
    pub fn implies(&self, lhs: &BTreeSet<AttrId>, rhs: AttrId) -> bool {
        lhs.contains(&rhs) || self.closure(lhs).contains(&rhs)
    }

    /// Whether an attribute set is *minimal*: no attribute in it is implied
    /// by the remaining attributes. Patterns with non-minimal partition
    /// attributes `F` are redundant and skipped by mining (Appendix D).
    pub fn is_minimal(&self, attrs: &BTreeSet<AttrId>) -> bool {
        attrs.iter().all(|&a| {
            let mut rest: BTreeSet<AttrId> = attrs.clone();
            rest.remove(&a);
            !self.implies(&rest, a)
        })
    }

    /// Whether `lhs` functionally determines *every* attribute in `rhs`.
    pub fn determines_all(&self, lhs: &BTreeSet<AttrId>, rhs: &BTreeSet<AttrId>) -> bool {
        let closure = self.closure(lhs);
        rhs.iter().all(|a| closure.contains(a))
    }
}

/// Discovers FDs from group cardinalities gathered during mining
/// (Appendix D): `A → B` holds iff `|π_A(R)| = |π_{A∪B}(R)|`.
///
/// Mining records `|π_G(R)|` for each group-by set `G` it evaluates, in
/// increasing size of `G`, then calls [`FdDiscovery::detect`] to test all
/// single-RHS FDs `(G − {B}) → B` whose ingredients are available.
#[derive(Debug, Clone, Default)]
pub struct FdDiscovery {
    group_sizes: HashMap<BTreeSet<AttrId>, usize>,
}

impl FdDiscovery {
    /// Empty recorder.
    pub fn new() -> Self {
        FdDiscovery::default()
    }

    /// Record the number of distinct groups for a group-by attribute set.
    pub fn record(&mut self, group: impl IntoIterator<Item = AttrId>, num_groups: usize) {
        self.group_sizes.insert(group.into_iter().collect(), num_groups);
    }

    /// Look up a recorded cardinality.
    pub fn group_size(&self, group: &BTreeSet<AttrId>) -> Option<usize> {
        self.group_sizes.get(group).copied()
    }

    /// Given a just-recorded set `g`, detect FDs `(g − {b}) → b` for every
    /// `b ∈ g` whose subset cardinality is known, adding them to `fds`.
    /// Returns the FDs that were newly added.
    pub fn detect(&self, g: &BTreeSet<AttrId>, fds: &mut FdSet) -> Vec<Fd> {
        let mut found = Vec::new();
        let Some(&g_size) = self.group_sizes.get(g) else {
            return found;
        };
        for &b in g {
            let mut lhs: BTreeSet<AttrId> = g.clone();
            lhs.remove(&b);
            if lhs.is_empty() {
                continue;
            }
            if let Some(&lhs_size) = self.group_sizes.get(&lhs) {
                if lhs_size == g_size {
                    let fd = Fd { lhs, rhs: b };
                    if fds.add(fd.clone()) {
                        found.push(fd);
                    }
                }
            }
        }
        found
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn set(ids: &[AttrId]) -> BTreeSet<AttrId> {
        ids.iter().copied().collect()
    }

    #[test]
    fn closure_follows_chains() {
        let mut fds = FdSet::new();
        fds.add(Fd::new([0], 1)); // A → B
        fds.add(Fd::new([1], 2)); // B → C
        let c = fds.closure(&set(&[0]));
        assert_eq!(c, set(&[0, 1, 2]));
        assert!(fds.implies(&set(&[0]), 2));
        assert!(!fds.implies(&set(&[2]), 0));
    }

    #[test]
    fn implies_is_reflexive() {
        let fds = FdSet::new();
        assert!(fds.implies(&set(&[3]), 3));
    }

    #[test]
    fn minimality() {
        let mut fds = FdSet::new();
        fds.add(Fd::new([0], 1)); // district → side
                                  // {district, side} is non-minimal: side is implied by district.
        assert!(!fds.is_minimal(&set(&[0, 1])));
        assert!(fds.is_minimal(&set(&[0])));
        assert!(fds.is_minimal(&set(&[0, 2])));
    }

    #[test]
    fn determines_all() {
        let mut fds = FdSet::new();
        fds.add(Fd::new([0], 1));
        fds.add(Fd::new([0], 2));
        assert!(fds.determines_all(&set(&[0]), &set(&[1, 2])));
        assert!(!fds.determines_all(&set(&[1]), &set(&[2])));
    }

    #[test]
    fn duplicate_fds_not_stored_twice() {
        let mut fds = FdSet::new();
        assert!(fds.add(Fd::new([0], 1)));
        assert!(!fds.add(Fd::new([0], 1)));
        assert_eq!(fds.len(), 1);
    }

    #[test]
    fn discovery_from_group_sizes() {
        // |π_{A}(R)| = 5, |π_{A,B}(R)| = 5 ⇒ A → B.
        // |π_{B}(R)| = 3, |π_{A,B}(R)| = 5 ⇒ B → A does NOT hold.
        let mut disc = FdDiscovery::new();
        disc.record([0], 5);
        disc.record([1], 3);
        disc.record([0, 1], 5);
        let mut fds = FdSet::new();
        let found = disc.detect(&set(&[0, 1]), &mut fds);
        assert_eq!(found, vec![Fd::new([0], 1)]);
        assert!(fds.implies(&set(&[0]), 1));
        assert!(!fds.implies(&set(&[1]), 0));
    }

    #[test]
    fn discovery_requires_recorded_subsets() {
        let mut disc = FdDiscovery::new();
        disc.record([0, 1], 5);
        let mut fds = FdSet::new();
        // Subset cardinalities unknown ⇒ nothing detected.
        assert!(disc.detect(&set(&[0, 1]), &mut fds).is_empty());
        assert_eq!(disc.group_size(&set(&[0, 1])), Some(5));
        assert_eq!(disc.group_size(&set(&[0])), None);
    }
}
