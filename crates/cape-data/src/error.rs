//! Error type for the relational substrate.

use std::fmt;

/// Errors produced by relational operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DataError {
    /// An attribute name was not found in a schema.
    UnknownAttribute(String),
    /// An attribute index was out of bounds for a schema.
    AttributeIndexOutOfBounds {
        /// The requested index.
        index: usize,
        /// The schema's arity.
        arity: usize,
    },
    /// A row had a different arity than the schema.
    ArityMismatch {
        /// Schema arity.
        expected: usize,
        /// Row arity.
        actual: usize,
    },
    /// A value had a type incompatible with the requested operation.
    TypeMismatch {
        /// Expected type name.
        expected: &'static str,
        /// Actual type name.
        actual: &'static str,
    },
    /// An aggregate was requested over a non-numeric attribute.
    NonNumericAggregate(String),
    /// CSV input could not be parsed.
    Csv {
        /// 1-based input line.
        line: usize,
        /// What went wrong.
        message: String,
    },
    /// Duplicate attribute name while constructing a schema.
    DuplicateAttribute(String),
    /// An operation received an empty input where at least one row/attribute is required.
    EmptyInput(&'static str),
    /// The requested derivation is not expressible (e.g. a roll-up whose
    /// child aggregate cannot be composed from the parent's columns).
    Unsupported(&'static str),
    /// I/O error (carried as a string so the error stays `Clone + Eq`).
    Io(String),
}

impl fmt::Display for DataError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DataError::UnknownAttribute(name) => write!(f, "unknown attribute `{name}`"),
            DataError::AttributeIndexOutOfBounds { index, arity } => {
                write!(f, "attribute index {index} out of bounds for arity {arity}")
            }
            DataError::ArityMismatch { expected, actual } => {
                write!(f, "row arity {actual} does not match schema arity {expected}")
            }
            DataError::TypeMismatch { expected, actual } => {
                write!(f, "type mismatch: expected {expected}, got {actual}")
            }
            DataError::NonNumericAggregate(name) => {
                write!(f, "aggregate requires a numeric attribute, got `{name}`")
            }
            DataError::Csv { line, message } => {
                write!(f, "csv parse error at line {line}: {message}")
            }
            DataError::DuplicateAttribute(name) => write!(f, "duplicate attribute name `{name}`"),
            DataError::EmptyInput(what) => write!(f, "empty input: {what}"),
            DataError::Unsupported(what) => write!(f, "unsupported operation: {what}"),
            DataError::Io(msg) => write!(f, "io error: {msg}"),
        }
    }
}

impl std::error::Error for DataError {}

impl From<std::io::Error> for DataError {
    fn from(e: std::io::Error) -> Self {
        DataError::Io(e.to_string())
    }
}

/// Convenience result alias used throughout the crate.
pub type Result<T> = std::result::Result<T, DataError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = DataError::UnknownAttribute("year".into());
        assert!(e.to_string().contains("year"));
        let e = DataError::ArityMismatch { expected: 4, actual: 3 };
        assert!(e.to_string().contains('4') && e.to_string().contains('3'));
        let e = DataError::Csv { line: 7, message: "bad int".into() };
        assert!(e.to_string().contains("line 7"));
    }

    #[test]
    fn io_error_converts() {
        let io = std::io::Error::new(std::io::ErrorKind::NotFound, "nope");
        let e: DataError = io.into();
        assert!(matches!(e, DataError::Io(_)));
    }
}
