#![warn(missing_docs)]

//! # cape-data — relational substrate for CAPE
//!
//! An in-memory columnar relational engine providing everything the CAPE
//! system (SIGMOD 2019) asked of PostgreSQL:
//!
//! * typed [`value::Value`]s and [`schema::Schema`]s,
//! * columnar [`relation::Relation`]s with CSV I/O,
//! * selection / projection / multi-key sort / hash group-by aggregation,
//! * a CUBE-style operator evaluating every admissible grouping in one scan,
//! * functional-dependency reasoning and discovery from group cardinalities.
//!
//! The engine is deliberately simple and deterministic: group order is
//! first-appearance order, sorts are stable, and all operators are pure
//! functions of their inputs, which keeps the mining benchmarks comparable
//! across algorithm variants.

pub mod agg;
pub mod catalog;
pub mod column;
pub mod csv;
pub mod error;
pub mod fd;
pub mod interner;
pub mod mmap;
pub mod ops;
pub mod pred;
pub mod relation;
pub mod schema;
pub mod sql;
pub mod stats;
pub mod value;

pub use agg::{AggFunc, AggSpec};
pub use catalog::Catalog;
pub use column::{Column, Dict, NullBitmap, NumView, Slab};
pub use error::{DataError, Result};
pub use fd::{Fd, FdDiscovery, FdSet};
pub use pred::Predicate;
pub use relation::Relation;
pub use schema::{AttrId, Attribute, Schema};
pub use value::{Value, ValueType};
