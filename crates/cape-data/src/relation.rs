//! Columnar in-memory relations.
//!
//! A [`Relation`] stores tuples column-wise in compact typed slabs
//! ([`crate::column::Column`]): `i64`/`f64` data words, dictionary-coded
//! strings, and null bitmaps. This favours the access patterns of CAPE's
//! workload — aggregation, sorting and fragment fitting touch a few
//! columns of many rows — and lets the snapshot v2 loader alias slabs
//! straight out of an mmapped file. Cells are materialized as owned
//! [`Value`]s on demand; hot paths use the typed views instead
//! ([`Relation::col`], [`crate::column::NumView`]).

use crate::column::{Column, NumView};
use crate::error::{DataError, Result};
use crate::schema::{AttrId, Schema};
use crate::value::Value;
use std::fmt;

/// A columnar relation (bag of tuples) with a fixed [`Schema`].
#[derive(Debug, Clone)]
pub struct Relation {
    schema: Schema,
    columns: Vec<Column>,
    rows: usize,
}

impl Relation {
    /// Create an empty relation with the given schema.
    pub fn new(schema: Schema) -> Self {
        let columns = schema.iter().map(|a| Column::new(a.value_type())).collect();
        Relation { schema, columns, rows: 0 }
    }

    /// Create an empty relation, pre-allocating `capacity` rows per column.
    pub fn with_capacity(schema: Schema, capacity: usize) -> Self {
        let columns =
            schema.iter().map(|a| Column::with_capacity(a.value_type(), capacity)).collect();
        Relation { schema, columns, rows: 0 }
    }

    /// Assemble a relation from pre-built columns (snapshot v2 load).
    /// Every column must match the schema's arity and share one length.
    pub fn from_columns(schema: Schema, columns: Vec<Column>) -> Result<Self> {
        if columns.len() != schema.arity() {
            return Err(DataError::ArityMismatch {
                expected: schema.arity(),
                actual: columns.len(),
            });
        }
        let rows = columns.first().map_or(0, Column::len);
        if columns.iter().any(|c| c.len() != rows) {
            return Err(DataError::ArityMismatch { expected: rows, actual: 0 });
        }
        Ok(Relation { schema, columns, rows })
    }

    /// Build a relation from rows (convenience for tests and examples).
    pub fn from_rows<I>(schema: Schema, rows: I) -> Result<Self>
    where
        I: IntoIterator<Item = Vec<Value>>,
    {
        let mut rel = Relation::new(schema);
        for row in rows {
            rel.push_row(row)?;
        }
        Ok(rel)
    }

    /// The relation's schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Number of rows.
    pub fn num_rows(&self) -> usize {
        self.rows
    }

    /// True when the relation holds no tuples.
    pub fn is_empty(&self) -> bool {
        self.rows == 0
    }

    /// Append one row; the row arity must match the schema.
    pub fn push_row(&mut self, row: Vec<Value>) -> Result<()> {
        if row.len() != self.schema.arity() {
            return Err(DataError::ArityMismatch {
                expected: self.schema.arity(),
                actual: row.len(),
            });
        }
        for (col, v) in self.columns.iter_mut().zip(row) {
            col.push(v);
        }
        self.rows += 1;
        Ok(())
    }

    /// Read a single cell (materialized as an owned value).
    #[inline]
    pub fn value(&self, row: usize, col: AttrId) -> Value {
        self.columns[col].get(row)
    }

    /// Whether a cell is NULL, without materializing it.
    #[inline]
    pub fn is_null(&self, row: usize, col: AttrId) -> bool {
        self.columns[col].is_null(row)
    }

    /// Numeric view of a cell (`None` for NULL / non-numeric).
    #[inline]
    pub fn value_f64(&self, row: usize, col: AttrId) -> Option<f64> {
        self.columns[col].get_f64(row)
    }

    /// Overwrite a single cell in place. Used by incremental maintenance
    /// to refresh aggregate outputs of an existing grouped row without
    /// rebuilding the relation.
    pub fn set_value(&mut self, row: usize, col: AttrId, v: Value) {
        self.columns[col].set(row, v);
    }

    /// Borrow a column's typed storage.
    #[inline]
    pub fn col(&self, col: AttrId) -> &Column {
        &self.columns[col]
    }

    /// Numeric slab view of a column, when it kept a typed layout.
    #[inline]
    pub fn num_view(&self, col: AttrId) -> Option<NumView<'_>> {
        self.columns[col].num_view()
    }

    /// Materialize an entire column as owned values.
    pub fn column_values(&self, col: AttrId) -> Vec<Value> {
        (0..self.rows).map(|i| self.columns[col].get(i)).collect()
    }

    /// Iterate a column's values without materializing the whole column.
    pub fn column_iter(&self, col: AttrId) -> impl Iterator<Item = Value> + '_ {
        let c = &self.columns[col];
        (0..self.rows).map(move |i| c.get(i))
    }

    /// Materialize row `i` as an owned vector.
    pub fn row(&self, i: usize) -> Vec<Value> {
        self.columns.iter().map(|c| c.get(i)).collect()
    }

    /// Materialize the projection of row `i` onto `cols`.
    pub fn row_project(&self, i: usize, cols: &[AttrId]) -> Vec<Value> {
        cols.iter().map(|&c| self.columns[c].get(i)).collect()
    }

    /// Whether rows `i` and `j` agree on every column in `cols`
    /// (Value-level equality over the typed slabs; no materialization).
    #[inline]
    pub fn rows_equal_on(&self, i: usize, j: usize, cols: &[AttrId]) -> bool {
        cols.iter().all(|&c| self.columns[c].rows_equal(i, j))
    }

    /// Iterate over all rows as owned vectors.
    pub fn iter_rows(&self) -> impl Iterator<Item = Vec<Value>> + '_ {
        (0..self.rows).map(move |i| self.row(i))
    }

    /// Keep only the rows at the given indices (in the given order).
    pub fn take(&self, indices: &[usize]) -> Relation {
        let columns = self.columns.iter().map(|col| col.take(indices)).collect();
        Relation { schema: self.schema.clone(), columns, rows: indices.len() }
    }

    /// Append all rows of `other`; schemas must have identical shape.
    pub fn extend(&mut self, other: &Relation) -> Result<()> {
        if !self.schema.same_shape(&other.schema) {
            return Err(DataError::ArityMismatch {
                expected: self.schema.arity(),
                actual: other.schema.arity(),
            });
        }
        for (dst, src) in self.columns.iter_mut().zip(&other.columns) {
            dst.extend_from(src);
        }
        self.rows += other.rows;
        Ok(())
    }

    /// Approximate resident payload bytes across all columns (slab data,
    /// null bitmaps, dictionaries) — bench memory accounting.
    pub fn payload_bytes(&self) -> usize {
        self.columns.iter().map(Column::payload_bytes).sum()
    }

    /// True when every column kept its typed slab layout (no `Mixed`
    /// fallback in play) — the precondition for zero-copy snapshots.
    pub fn fully_typed(&self) -> bool {
        self.columns.iter().all(Column::is_typed)
    }

    /// Render the first `limit` rows as an ASCII table (for examples/demos).
    pub fn to_ascii(&self, limit: usize) -> String {
        let names = self.schema.names();
        let shown = self.rows.min(limit);
        let mut widths: Vec<usize> = names.iter().map(|n| n.len()).collect();
        let mut cells: Vec<Vec<String>> = Vec::with_capacity(shown);
        for i in 0..shown {
            let row: Vec<String> =
                (0..self.schema.arity()).map(|c| self.value(i, c).to_string()).collect();
            for (w, cell) in widths.iter_mut().zip(&row) {
                *w = (*w).max(cell.len());
            }
            cells.push(row);
        }
        let mut out = String::new();
        let sep = |out: &mut String| {
            out.push('+');
            for w in &widths {
                out.push_str(&"-".repeat(w + 2));
                out.push('+');
            }
            out.push('\n');
        };
        sep(&mut out);
        out.push('|');
        for (n, w) in names.iter().zip(&widths) {
            out.push_str(&format!(" {n:<w$} |"));
        }
        out.push('\n');
        sep(&mut out);
        for row in &cells {
            out.push('|');
            for (cell, w) in row.iter().zip(&widths) {
                out.push_str(&format!(" {cell:<w$} |"));
            }
            out.push('\n');
        }
        sep(&mut out);
        if shown < self.rows {
            out.push_str(&format!("... {} more rows\n", self.rows - shown));
        }
        out
    }
}

/// Logical equality: same schema and the same tuples in the same order,
/// regardless of physical layout (typed slab vs. `Mixed`, owned vs.
/// mapped). An `Int` stored in a `Float` column equals its float form,
/// mirroring [`Value`]'s cross-type numeric equality.
impl PartialEq for Relation {
    fn eq(&self, other: &Self) -> bool {
        self.schema == other.schema
            && self.rows == other.rows
            && (0..self.rows)
                .all(|i| (0..self.schema.arity()).all(|c| self.value(i, c) == other.value(i, c)))
    }
}

impl fmt::Display for Relation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_ascii(20))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::ValueType;

    fn sample() -> Relation {
        let schema = Schema::new([("author", ValueType::Str), ("year", ValueType::Int)]).unwrap();
        Relation::from_rows(
            schema,
            vec![
                vec![Value::str("ax"), Value::Int(2004)],
                vec![Value::str("ax"), Value::Int(2005)],
                vec![Value::str("ay"), Value::Int(2004)],
            ],
        )
        .unwrap()
    }

    #[test]
    fn push_and_read() {
        let r = sample();
        assert_eq!(r.num_rows(), 3);
        assert_eq!(r.value(1, 1), Value::Int(2005));
        assert_eq!(r.row(2), vec![Value::str("ay"), Value::Int(2004)]);
        assert_eq!(r.row_project(0, &[1]), vec![Value::Int(2004)]);
        assert_eq!(r.column_values(0).len(), 3);
        assert!(r.fully_typed());
    }

    #[test]
    fn arity_checked() {
        let mut r = sample();
        assert!(r.push_row(vec![Value::Int(1)]).is_err());
        assert_eq!(r.num_rows(), 3);
    }

    #[test]
    fn set_value_overwrites_in_place() {
        let mut r = sample();
        r.set_value(1, 1, Value::Int(2006));
        assert_eq!(r.value(1, 1), Value::Int(2006));
        assert_eq!(r.num_rows(), 3);
        // Neighbours untouched.
        assert_eq!(r.value(0, 1), Value::Int(2004));
        assert_eq!(r.value(1, 0), Value::str("ax"));
    }

    #[test]
    fn take_reorders() {
        let r = sample();
        let t = r.take(&[2, 0]);
        assert_eq!(t.num_rows(), 2);
        assert_eq!(t.value(0, 0), Value::str("ay"));
        assert_eq!(t.value(1, 0), Value::str("ax"));
    }

    #[test]
    fn extend_checks_shape() {
        let mut r = sample();
        let other = sample();
        r.extend(&other).unwrap();
        assert_eq!(r.num_rows(), 6);
        let bad = Relation::new(Schema::new([("x", ValueType::Int)]).unwrap());
        assert!(r.extend(&bad).is_err());
    }

    #[test]
    fn ascii_rendering() {
        let r = sample();
        let s = r.to_ascii(2);
        assert!(s.contains("author"));
        assert!(s.contains("2004"));
        assert!(s.contains("1 more rows"));
        assert!(r.to_string().contains("ay"));
    }

    #[test]
    fn iter_rows_yields_all() {
        let r = sample();
        assert_eq!(r.iter_rows().count(), 3);
    }

    #[test]
    fn rows_equal_on_typed_slabs() {
        let r = sample();
        assert!(r.rows_equal_on(0, 2, &[1])); // both year 2004
        assert!(!r.rows_equal_on(0, 2, &[0, 1])); // different authors
        assert!(r.rows_equal_on(0, 1, &[0])); // same author
    }

    #[test]
    fn logical_eq_across_layouts() {
        let r = sample();
        let mut mixed = sample();
        // Force one column to Mixed; logical equality must not care.
        mixed.set_value(0, 1, Value::str("not-a-year"));
        mixed.set_value(0, 1, Value::Int(2004));
        assert_eq!(r, mixed);
    }

    #[test]
    fn mismatched_values_degrade_not_error() {
        let schema = Schema::new([("n", ValueType::Int)]).unwrap();
        let mut r = Relation::new(schema);
        r.push_row(vec![Value::Int(1)]).unwrap();
        r.push_row(vec![Value::str("x")]).unwrap();
        assert!(!r.fully_typed());
        assert_eq!(r.value(0, 0), Value::Int(1));
        assert_eq!(r.value(1, 0), Value::str("x"));
    }
}
