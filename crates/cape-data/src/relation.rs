//! Columnar in-memory relations.
//!
//! A [`Relation`] stores tuples column-wise (`Vec<Value>` per attribute).
//! This favours the access patterns of CAPE's workload: aggregation and
//! sorting touch a few columns of many rows.

use crate::error::{DataError, Result};
use crate::schema::{AttrId, Schema};
use crate::value::Value;
use std::fmt;

/// A columnar relation (bag of tuples) with a fixed [`Schema`].
#[derive(Debug, Clone, PartialEq)]
pub struct Relation {
    schema: Schema,
    columns: Vec<Vec<Value>>,
    rows: usize,
}

impl Relation {
    /// Create an empty relation with the given schema.
    pub fn new(schema: Schema) -> Self {
        let columns = (0..schema.arity()).map(|_| Vec::new()).collect();
        Relation { schema, columns, rows: 0 }
    }

    /// Create an empty relation, pre-allocating `capacity` rows per column.
    pub fn with_capacity(schema: Schema, capacity: usize) -> Self {
        let columns = (0..schema.arity()).map(|_| Vec::with_capacity(capacity)).collect();
        Relation { schema, columns, rows: 0 }
    }

    /// Build a relation from rows (convenience for tests and examples).
    pub fn from_rows<I>(schema: Schema, rows: I) -> Result<Self>
    where
        I: IntoIterator<Item = Vec<Value>>,
    {
        let mut rel = Relation::new(schema);
        for row in rows {
            rel.push_row(row)?;
        }
        Ok(rel)
    }

    /// The relation's schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Number of rows.
    pub fn num_rows(&self) -> usize {
        self.rows
    }

    /// True when the relation holds no tuples.
    pub fn is_empty(&self) -> bool {
        self.rows == 0
    }

    /// Append one row; the row arity must match the schema.
    pub fn push_row(&mut self, row: Vec<Value>) -> Result<()> {
        if row.len() != self.schema.arity() {
            return Err(DataError::ArityMismatch {
                expected: self.schema.arity(),
                actual: row.len(),
            });
        }
        for (col, v) in self.columns.iter_mut().zip(row) {
            col.push(v);
        }
        self.rows += 1;
        Ok(())
    }

    /// Read a single cell.
    pub fn value(&self, row: usize, col: AttrId) -> &Value {
        &self.columns[col][row]
    }

    /// Overwrite a single cell in place. Used by incremental maintenance
    /// to refresh aggregate outputs of an existing grouped row without
    /// rebuilding the relation.
    pub fn set_value(&mut self, row: usize, col: AttrId, v: Value) {
        self.columns[col][row] = v;
    }

    /// Borrow an entire column.
    pub fn column(&self, col: AttrId) -> &[Value] {
        &self.columns[col]
    }

    /// Materialize row `i` as an owned vector.
    pub fn row(&self, i: usize) -> Vec<Value> {
        self.columns.iter().map(|c| c[i].clone()).collect()
    }

    /// Materialize the projection of row `i` onto `cols`.
    pub fn row_project(&self, i: usize, cols: &[AttrId]) -> Vec<Value> {
        cols.iter().map(|&c| self.columns[c][i].clone()).collect()
    }

    /// Iterate over all rows as owned vectors.
    pub fn iter_rows(&self) -> impl Iterator<Item = Vec<Value>> + '_ {
        (0..self.rows).map(move |i| self.row(i))
    }

    /// Keep only the rows at the given indices (in the given order).
    pub fn take(&self, indices: &[usize]) -> Relation {
        let columns = self
            .columns
            .iter()
            .map(|col| indices.iter().map(|&i| col[i].clone()).collect())
            .collect();
        Relation { schema: self.schema.clone(), columns, rows: indices.len() }
    }

    /// Append all rows of `other`; schemas must have identical shape.
    pub fn extend(&mut self, other: &Relation) -> Result<()> {
        if !self.schema.same_shape(&other.schema) {
            return Err(DataError::ArityMismatch {
                expected: self.schema.arity(),
                actual: other.schema.arity(),
            });
        }
        for (dst, src) in self.columns.iter_mut().zip(&other.columns) {
            dst.extend(src.iter().cloned());
        }
        self.rows += other.rows;
        Ok(())
    }

    /// Render the first `limit` rows as an ASCII table (for examples/demos).
    pub fn to_ascii(&self, limit: usize) -> String {
        let names = self.schema.names();
        let shown = self.rows.min(limit);
        let mut widths: Vec<usize> = names.iter().map(|n| n.len()).collect();
        let mut cells: Vec<Vec<String>> = Vec::with_capacity(shown);
        for i in 0..shown {
            let row: Vec<String> =
                (0..self.schema.arity()).map(|c| self.value(i, c).to_string()).collect();
            for (w, cell) in widths.iter_mut().zip(&row) {
                *w = (*w).max(cell.len());
            }
            cells.push(row);
        }
        let mut out = String::new();
        let sep = |out: &mut String| {
            out.push('+');
            for w in &widths {
                out.push_str(&"-".repeat(w + 2));
                out.push('+');
            }
            out.push('\n');
        };
        sep(&mut out);
        out.push('|');
        for (n, w) in names.iter().zip(&widths) {
            out.push_str(&format!(" {n:<w$} |"));
        }
        out.push('\n');
        sep(&mut out);
        for row in &cells {
            out.push('|');
            for (cell, w) in row.iter().zip(&widths) {
                out.push_str(&format!(" {cell:<w$} |"));
            }
            out.push('\n');
        }
        sep(&mut out);
        if shown < self.rows {
            out.push_str(&format!("... {} more rows\n", self.rows - shown));
        }
        out
    }
}

impl fmt::Display for Relation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_ascii(20))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::ValueType;

    fn sample() -> Relation {
        let schema = Schema::new([("author", ValueType::Str), ("year", ValueType::Int)]).unwrap();
        Relation::from_rows(
            schema,
            vec![
                vec![Value::str("ax"), Value::Int(2004)],
                vec![Value::str("ax"), Value::Int(2005)],
                vec![Value::str("ay"), Value::Int(2004)],
            ],
        )
        .unwrap()
    }

    #[test]
    fn push_and_read() {
        let r = sample();
        assert_eq!(r.num_rows(), 3);
        assert_eq!(r.value(1, 1), &Value::Int(2005));
        assert_eq!(r.row(2), vec![Value::str("ay"), Value::Int(2004)]);
        assert_eq!(r.row_project(0, &[1]), vec![Value::Int(2004)]);
        assert_eq!(r.column(0).len(), 3);
    }

    #[test]
    fn arity_checked() {
        let mut r = sample();
        assert!(r.push_row(vec![Value::Int(1)]).is_err());
        assert_eq!(r.num_rows(), 3);
    }

    #[test]
    fn set_value_overwrites_in_place() {
        let mut r = sample();
        r.set_value(1, 1, Value::Int(2006));
        assert_eq!(r.value(1, 1), &Value::Int(2006));
        assert_eq!(r.num_rows(), 3);
        // Neighbours untouched.
        assert_eq!(r.value(0, 1), &Value::Int(2004));
        assert_eq!(r.value(1, 0), &Value::str("ax"));
    }

    #[test]
    fn take_reorders() {
        let r = sample();
        let t = r.take(&[2, 0]);
        assert_eq!(t.num_rows(), 2);
        assert_eq!(t.value(0, 0), &Value::str("ay"));
        assert_eq!(t.value(1, 0), &Value::str("ax"));
    }

    #[test]
    fn extend_checks_shape() {
        let mut r = sample();
        let other = sample();
        r.extend(&other).unwrap();
        assert_eq!(r.num_rows(), 6);
        let bad = Relation::new(Schema::new([("x", ValueType::Int)]).unwrap());
        assert!(r.extend(&bad).is_err());
    }

    #[test]
    fn ascii_rendering() {
        let r = sample();
        let s = r.to_ascii(2);
        assert!(s.contains("author"));
        assert!(s.contains("2004"));
        assert!(s.contains("1 more rows"));
        assert!(r.to_string().contains("ay"));
    }

    #[test]
    fn iter_rows_yields_all() {
        let r = sample();
        assert_eq!(r.iter_rows().count(), 3);
    }
}
