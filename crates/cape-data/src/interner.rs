//! String interning so repeated categorical values share one allocation.

use std::collections::HashMap;
use std::sync::Arc;

/// Deduplicating constructor for `Arc<str>` values.
///
/// Loading a million-row relation whose `venue` column has a few thousand
/// distinct values should allocate a few thousand strings, not a million;
/// the CSV loader and the data generators intern through this.
#[derive(Debug, Default)]
pub struct Interner {
    strings: HashMap<Arc<str>, Arc<str>>,
}

impl Interner {
    /// Empty interner.
    pub fn new() -> Self {
        Interner::default()
    }

    /// Intern `s`, returning a shared `Arc<str>`.
    pub fn intern(&mut self, s: &str) -> Arc<str> {
        if let Some(existing) = self.strings.get(s) {
            return existing.clone();
        }
        let arc: Arc<str> = Arc::from(s);
        self.strings.insert(arc.clone(), arc.clone());
        arc
    }

    /// Number of distinct strings interned.
    pub fn len(&self) -> usize {
        self.strings.len()
    }

    /// True when nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.strings.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_shares_allocations() {
        let mut i = Interner::new();
        let a = i.intern("SIGMOD");
        let b = i.intern("SIGMOD");
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(i.len(), 1);
        let c = i.intern("VLDB");
        assert!(!Arc::ptr_eq(&a, &c));
        assert_eq!(i.len(), 2);
        assert!(!i.is_empty());
    }
}
