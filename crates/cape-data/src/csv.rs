//! Minimal CSV reader/writer for relations.
//!
//! Supports the subset of RFC 4180 the datasets need: comma separation,
//! double-quote quoting with `""` escapes, a header row, and typed parsing
//! driven by a target [`Schema`]. Empty fields parse as `Null`.

use crate::error::{DataError, Result};
use crate::interner::Interner;
use crate::relation::Relation;
use crate::schema::Schema;
use crate::value::{Value, ValueType};
use std::io::{BufRead, BufReader, Read, Write};

/// Parse one CSV record (fields split on unquoted commas).
fn parse_record(line: &str, line_no: usize) -> Result<Vec<String>> {
    let mut fields = Vec::new();
    let mut cur = String::new();
    let mut chars = line.chars().peekable();
    let mut in_quotes = false;
    while let Some(c) = chars.next() {
        match c {
            '"' if in_quotes => {
                if chars.peek() == Some(&'"') {
                    chars.next();
                    cur.push('"');
                } else {
                    in_quotes = false;
                }
            }
            '"' if cur.is_empty() => in_quotes = true,
            '"' => {
                return Err(DataError::Csv {
                    line: line_no,
                    message: "unexpected quote inside unquoted field".into(),
                })
            }
            ',' if !in_quotes => {
                fields.push(std::mem::take(&mut cur));
            }
            c => cur.push(c),
        }
    }
    if in_quotes {
        return Err(DataError::Csv { line: line_no, message: "unterminated quote".into() });
    }
    fields.push(cur);
    Ok(fields)
}

fn parse_value(
    field: &str,
    ty: ValueType,
    interner: &mut Interner,
    line_no: usize,
) -> Result<Value> {
    if field.is_empty() {
        return Ok(Value::Null);
    }
    match ty {
        ValueType::Int => field.parse::<i64>().map(Value::Int).map_err(|_| DataError::Csv {
            line: line_no,
            message: format!("invalid int `{field}`"),
        }),
        ValueType::Float => field.parse::<f64>().map(Value::Float).map_err(|_| DataError::Csv {
            line: line_no,
            message: format!("invalid float `{field}`"),
        }),
        ValueType::Str => Ok(Value::Str(interner.intern(field))),
    }
}

/// Read a relation from CSV. The first line must be a header whose names
/// match `schema` (order included).
pub fn read_csv<R: Read>(reader: R, schema: Schema) -> Result<Relation> {
    let buf = BufReader::new(reader);
    let mut interner = Interner::new();
    let mut rel = Relation::new(schema);
    let mut lines = buf.lines().enumerate();

    // Header.
    let (_, header) = lines.next().ok_or(DataError::EmptyInput("csv header"))?;
    let header = header?;
    let names = parse_record(&header, 1)?;
    let expected: Vec<&str> = rel.schema().names();
    if names.len() != expected.len() || names.iter().zip(&expected).any(|(a, b)| a != b) {
        return Err(DataError::Csv {
            line: 1,
            message: format!("header {names:?} does not match schema {expected:?}"),
        });
    }

    let types: Vec<ValueType> = rel.schema().iter().map(|a| a.value_type()).collect();
    for (idx, line) in lines {
        let line_no = idx + 1;
        let line = line?;
        if line.is_empty() {
            continue;
        }
        let fields = parse_record(&line, line_no)?;
        if fields.len() != types.len() {
            return Err(DataError::Csv {
                line: line_no,
                message: format!("expected {} fields, got {}", types.len(), fields.len()),
            });
        }
        let row: Result<Vec<Value>> = fields
            .iter()
            .zip(&types)
            .map(|(f, &ty)| parse_value(f, ty, &mut interner, line_no))
            .collect();
        rel.push_row(row?)?;
    }
    Ok(rel)
}

fn escape(field: &str) -> String {
    if field.contains(',') || field.contains('"') || field.contains('\n') {
        format!("\"{}\"", field.replace('"', "\"\""))
    } else {
        field.to_string()
    }
}

/// Write a relation as CSV with a header row.
pub fn write_csv<W: Write>(writer: &mut W, rel: &Relation) -> Result<()> {
    let header: Vec<String> = rel.schema().names().iter().map(|n| escape(n)).collect();
    writeln!(writer, "{}", header.join(","))?;
    for i in 0..rel.num_rows() {
        let row: Vec<String> = (0..rel.schema().arity())
            .map(|c| {
                let v = rel.value(i, c);
                if v.is_null() {
                    String::new()
                } else {
                    escape(&v.to_string())
                }
            })
            .collect();
        writeln!(writer, "{}", row.join(","))?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schema() -> Schema {
        Schema::new([
            ("author", ValueType::Str),
            ("year", ValueType::Int),
            ("score", ValueType::Float),
        ])
        .unwrap()
    }

    #[test]
    fn roundtrip() {
        let rel = Relation::from_rows(
            schema(),
            vec![
                vec![Value::str("Doe, J."), Value::Int(2007), Value::Float(1.5)],
                vec![Value::str("x\"y"), Value::Null, Value::Float(2.0)],
            ],
        )
        .unwrap();
        let mut buf = Vec::new();
        write_csv(&mut buf, &rel).unwrap();
        let back = read_csv(&buf[..], schema()).unwrap();
        assert_eq!(back.num_rows(), 2);
        assert_eq!(back.value(0, 0), Value::str("Doe, J."));
        assert_eq!(back.value(1, 0), Value::str("x\"y"));
        assert!(back.value(1, 1).is_null());
        assert_eq!(back.value(1, 2), Value::Float(2.0));
    }

    #[test]
    fn header_mismatch_rejected() {
        let data = "a,b\n1,2\n";
        assert!(read_csv(data.as_bytes(), schema()).is_err());
    }

    #[test]
    fn bad_int_reported_with_line() {
        let data = "author,year,score\nax,notanint,1.0\n";
        let err = read_csv(data.as_bytes(), schema()).unwrap_err();
        match err {
            DataError::Csv { line, .. } => assert_eq!(line, 2),
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn field_count_checked() {
        let data = "author,year,score\nax,2007\n";
        assert!(read_csv(data.as_bytes(), schema()).is_err());
    }

    #[test]
    fn quoted_fields() {
        let rec = parse_record(r#"a,"b,c","d""e",f"#, 1).unwrap();
        assert_eq!(rec, vec!["a", "b,c", "d\"e", "f"]);
        assert!(parse_record(r#"a,"unterminated"#, 1).is_err());
    }

    #[test]
    fn empty_lines_skipped_and_empty_fields_null() {
        let data = "author,year,score\nax,,\n\nay,2000,3.5\n";
        let rel = read_csv(data.as_bytes(), schema()).unwrap();
        assert_eq!(rel.num_rows(), 2);
        assert!(rel.value(0, 1).is_null());
    }
}
