//! Per-attribute dataset statistics (domains, cardinalities, ranges).
//!
//! Explanation scoring needs attribute ranges to normalize numeric
//! distances; mining uses distinct counts to size candidate spaces.

use crate::error::Result;
use crate::relation::Relation;
use crate::schema::AttrId;
use crate::value::Value;
use std::collections::HashSet;

/// Statistics for one attribute of a relation.
#[derive(Debug, Clone)]
pub struct AttrStats {
    /// Number of distinct non-null values.
    pub distinct: usize,
    /// Number of null cells.
    pub nulls: usize,
    /// Minimum numeric value (numeric attributes only).
    pub min: Option<f64>,
    /// Maximum numeric value (numeric attributes only).
    pub max: Option<f64>,
}

impl AttrStats {
    /// The numeric range (`max - min`) when defined and positive.
    pub fn range(&self) -> Option<f64> {
        match (self.min, self.max) {
            (Some(lo), Some(hi)) if hi > lo => Some(hi - lo),
            _ => None,
        }
    }
}

/// Compute [`AttrStats`] for a single attribute.
pub fn attr_stats(rel: &Relation, attr: AttrId) -> Result<AttrStats> {
    let mut span = cape_obs::span("data.attr_stats");
    span.add("rows_in", rel.num_rows() as u64);
    rel.schema().attr(attr)?;
    use crate::column::Column;
    let n = rel.num_rows();
    let mut min: Option<f64> = None;
    let mut max: Option<f64> = None;
    let upd = |x: f64, min: &mut Option<f64>, max: &mut Option<f64>| {
        *min = Some(min.map_or(x, |m| m.min(x)));
        *max = Some(max.map_or(x, |m| m.max(x)));
    };
    let (distinct, nulls) = match rel.col(attr) {
        Column::Int(c) => {
            let mut seen: HashSet<i64> = HashSet::new();
            for i in 0..n {
                if c.nulls.get(i) {
                    continue;
                }
                seen.insert(c.data[i]);
                upd(c.data[i] as f64, &mut min, &mut max);
            }
            (seen.len(), c.nulls.null_count())
        }
        Column::Float(c) => {
            let mut seen: HashSet<u64> = HashSet::new();
            for i in 0..n {
                if c.nulls.get(i) {
                    continue;
                }
                seen.insert(c.data[i].to_bits());
                upd(c.data[i], &mut min, &mut max);
            }
            (seen.len(), c.nulls.null_count())
        }
        Column::Str(c) => {
            let mut used = vec![false; c.dict.len()];
            for i in 0..n {
                if !c.nulls.get(i) {
                    used[c.codes[i] as usize] = true;
                }
            }
            (used.iter().filter(|&&u| u).count(), c.nulls.null_count())
        }
        Column::Mixed(values) => {
            let mut seen: HashSet<&Value> = HashSet::new();
            let mut nulls = 0usize;
            for v in values {
                if v.is_null() {
                    nulls += 1;
                    continue;
                }
                seen.insert(v);
                if let Some(x) = v.as_f64() {
                    upd(x, &mut min, &mut max);
                }
            }
            (seen.len(), nulls)
        }
    };
    Ok(AttrStats { distinct, nulls, min, max })
}

/// Compute stats for every attribute of `rel`.
pub fn all_attr_stats(rel: &Relation) -> Result<Vec<AttrStats>> {
    (0..rel.schema().arity()).map(|a| attr_stats(rel, a)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Schema;
    use crate::value::ValueType;

    fn rel() -> Relation {
        let schema = Schema::new([("v", ValueType::Str), ("y", ValueType::Int)]).unwrap();
        Relation::from_rows(
            schema,
            vec![
                vec![Value::str("a"), Value::Int(2000)],
                vec![Value::str("a"), Value::Int(2010)],
                vec![Value::Null, Value::Int(2005)],
                vec![Value::str("b"), Value::Null],
            ],
        )
        .unwrap()
    }

    #[test]
    fn distinct_and_nulls() {
        let s = attr_stats(&rel(), 0).unwrap();
        assert_eq!(s.distinct, 2);
        assert_eq!(s.nulls, 1);
        assert_eq!(s.min, None);
        assert_eq!(s.range(), None);
    }

    #[test]
    fn numeric_range() {
        let s = attr_stats(&rel(), 1).unwrap();
        assert_eq!(s.distinct, 3);
        assert_eq!(s.min, Some(2000.0));
        assert_eq!(s.max, Some(2010.0));
        assert_eq!(s.range(), Some(10.0));
    }

    #[test]
    fn all_stats() {
        let all = all_attr_stats(&rel()).unwrap();
        assert_eq!(all.len(), 2);
    }

    #[test]
    fn invalid_attr() {
        assert!(attr_stats(&rel(), 5).is_err());
    }

    #[test]
    fn constant_column_has_no_range() {
        let schema = Schema::new([("x", ValueType::Int)]).unwrap();
        let r =
            Relation::from_rows(schema, vec![vec![Value::Int(3)], vec![Value::Int(3)]]).unwrap();
        let s = attr_stats(&r, 0).unwrap();
        assert_eq!(s.range(), None);
        assert_eq!(s.distinct, 1);
    }
}
