//! Dynamically typed values stored in relations.
//!
//! `Value` is the cell type of the engine. Strings are reference-counted
//! (`Arc<str>`) so that wide fan-out during grouping and sorting clones
//! cheaply; see [`crate::interner`] for deduplicating construction.

use std::cmp::Ordering;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::sync::Arc;

/// The type of a [`Value`] / of an attribute.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ValueType {
    /// 64-bit signed integer.
    Int,
    /// 64-bit IEEE float.
    Float,
    /// UTF-8 string (categorical).
    Str,
}

impl ValueType {
    /// Whether values of this type can be used as regression predictors /
    /// aggregation inputs without encoding.
    pub fn is_numeric(self) -> bool {
        matches!(self, ValueType::Int | ValueType::Float)
    }

    /// Human-readable name.
    pub fn name(self) -> &'static str {
        match self {
            ValueType::Int => "int",
            ValueType::Float => "float",
            ValueType::Str => "str",
        }
    }
}

impl fmt::Display for ValueType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A single cell value.
///
/// `Value` implements total equality, ordering and hashing so it can serve
/// as a grouping key. Floats are compared by their canonicalized bit
/// pattern (`NaN`s are collapsed to a single representative, `-0.0 == 0.0`).
/// Cross-type comparisons order by type tag (`Null < Int < Float < Str`)
/// except that `Int` and `Float` compare numerically.
#[derive(Debug, Clone)]
pub enum Value {
    /// SQL-style NULL / missing value.
    Null,
    /// 64-bit signed integer.
    Int(i64),
    /// 64-bit IEEE float.
    Float(f64),
    /// UTF-8 string (shared).
    Str(Arc<str>),
}

impl Value {
    /// Construct a string value.
    pub fn str(s: impl AsRef<str>) -> Self {
        Value::Str(Arc::from(s.as_ref()))
    }

    /// The runtime type, or `None` for `Null`.
    pub fn value_type(&self) -> Option<ValueType> {
        match self {
            Value::Null => None,
            Value::Int(_) => Some(ValueType::Int),
            Value::Float(_) => Some(ValueType::Float),
            Value::Str(_) => Some(ValueType::Str),
        }
    }

    /// True when the value is `Null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Numeric view of the value, if it has one.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// Integer view (exact only).
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// String view.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Canonicalized bits for hashing / equality of floats: all NaNs map to
    /// one bit pattern and `-0.0` maps to `+0.0`.
    fn canon_f64_bits(f: f64) -> u64 {
        if f.is_nan() {
            f64::NAN.to_bits()
        } else if f == 0.0 {
            0u64
        } else {
            f.to_bits()
        }
    }

    fn type_rank(&self) -> u8 {
        match self {
            Value::Null => 0,
            Value::Int(_) => 1,
            Value::Float(_) => 1, // shares the numeric rank with Int
            Value::Str(_) => 2,
        }
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (Value::Null, Value::Null) => true,
            (Value::Int(a), Value::Int(b)) => a == b,
            (Value::Float(a), Value::Float(b)) => {
                Self::canon_f64_bits(*a) == Self::canon_f64_bits(*b)
            }
            (Value::Int(a), Value::Float(b)) | (Value::Float(b), Value::Int(a)) => {
                (*a as f64) == *b
            }
            (Value::Str(a), Value::Str(b)) => a == b,
            _ => false,
        }
    }
}

impl Eq for Value {}

impl Hash for Value {
    fn hash<H: Hasher>(&self, state: &mut H) {
        match self {
            Value::Null => state.write_u8(0),
            // Ints and equal-valued floats must hash identically because they
            // compare equal; hash integral numerics through the float path.
            Value::Int(i) => {
                state.write_u8(1);
                state.write_u64(Self::canon_f64_bits(*i as f64));
            }
            Value::Float(f) => {
                state.write_u8(1);
                state.write_u64(Self::canon_f64_bits(*f));
            }
            Value::Str(s) => {
                state.write_u8(2);
                s.hash(state);
            }
        }
    }
}

impl PartialOrd for Value {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Value {
    fn cmp(&self, other: &Self) -> Ordering {
        match (self, other) {
            (Value::Null, Value::Null) => Ordering::Equal,
            (Value::Int(a), Value::Int(b)) => a.cmp(b),
            (Value::Str(a), Value::Str(b)) => a.cmp(b),
            (Value::Float(a), Value::Float(b)) => a.total_cmp(b),
            (Value::Int(a), Value::Float(b)) => (*a as f64).total_cmp(b),
            (Value::Float(a), Value::Int(b)) => a.total_cmp(&(*b as f64)),
            (a, b) => a.type_rank().cmp(&b.type_rank()),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => f.write_str("NULL"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(x) => {
                if x.fract() == 0.0 && x.abs() < 1e15 {
                    write!(f, "{x:.1}")
                } else {
                    write!(f, "{x}")
                }
            }
            Value::Str(s) => f.write_str(s),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}

impl From<i32> for Value {
    fn from(v: i32) -> Self {
        Value::Int(v as i64)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::str(v)
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(Arc::from(v.as_str()))
    }
}

impl From<Arc<str>> for Value {
    fn from(v: Arc<str>) -> Self {
        Value::Str(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::hash_map::DefaultHasher;

    fn hash_of(v: &Value) -> u64 {
        let mut h = DefaultHasher::new();
        v.hash(&mut h);
        h.finish()
    }

    #[test]
    fn int_float_numeric_equality() {
        assert_eq!(Value::Int(3), Value::Float(3.0));
        assert_ne!(Value::Int(3), Value::Float(3.5));
        assert_eq!(hash_of(&Value::Int(3)), hash_of(&Value::Float(3.0)));
    }

    #[test]
    fn nan_is_self_equal_and_zero_signs_collapse() {
        assert_eq!(Value::Float(f64::NAN), Value::Float(f64::NAN));
        assert_eq!(Value::Float(0.0), Value::Float(-0.0));
        assert_eq!(hash_of(&Value::Float(0.0)), hash_of(&Value::Float(-0.0)));
    }

    #[test]
    fn ordering_is_total_and_numeric() {
        let mut vals = vec![
            Value::str("b"),
            Value::Int(2),
            Value::Null,
            Value::Float(1.5),
            Value::str("a"),
            Value::Int(1),
        ];
        vals.sort();
        assert_eq!(
            vals,
            vec![
                Value::Null,
                Value::Int(1),
                Value::Float(1.5),
                Value::Int(2),
                Value::str("a"),
                Value::str("b"),
            ]
        );
    }

    #[test]
    fn display_formats() {
        assert_eq!(Value::Null.to_string(), "NULL");
        assert_eq!(Value::Int(42).to_string(), "42");
        assert_eq!(Value::Float(2.0).to_string(), "2.0");
        assert_eq!(Value::Float(2.25).to_string(), "2.25");
        assert_eq!(Value::str("SIGMOD").to_string(), "SIGMOD");
    }

    #[test]
    fn conversions() {
        assert_eq!(Value::from(5i32), Value::Int(5));
        assert_eq!(Value::from("x"), Value::str("x"));
        assert_eq!(Value::from(2.5f64).as_f64(), Some(2.5));
        assert_eq!(Value::str("x").as_str(), Some("x"));
        assert_eq!(Value::Int(7).as_i64(), Some(7));
        assert!(Value::Null.is_null());
        assert_eq!(Value::Null.value_type(), None);
        assert_eq!(Value::Int(1).value_type(), Some(ValueType::Int));
    }

    #[test]
    fn value_type_numeric() {
        assert!(ValueType::Int.is_numeric());
        assert!(ValueType::Float.is_numeric());
        assert!(!ValueType::Str.is_numeric());
        assert_eq!(ValueType::Str.to_string(), "str");
    }
}
