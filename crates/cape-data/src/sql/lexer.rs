//! SQL tokenizer.

use super::SqlError;

/// A lexical token.
#[derive(Debug, Clone, PartialEq)]
pub enum Token {
    /// Keyword or identifier (keywords are recognized case-insensitively
    /// by the parser; the original spelling is preserved here).
    Ident(String),
    /// Double-quoted identifier (exact spelling, never a keyword).
    QuotedIdent(String),
    /// Single-quoted string literal with `''` escapes.
    StringLit(String),
    /// Integer literal.
    IntLit(i64),
    /// Float literal.
    FloatLit(f64),
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `,`
    Comma,
    /// `*`
    Star,
    /// `=`
    Eq,
    /// `!=` or `<>`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `;`
    Semicolon,
}

/// Tokenize a SQL string.
pub fn tokenize(input: &str) -> Result<Vec<Token>, SqlError> {
    let bytes = input.as_bytes();
    let mut out = Vec::new();
    let mut i = 0usize;
    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            c if c.is_ascii_whitespace() => i += 1,
            '(' => {
                out.push(Token::LParen);
                i += 1;
            }
            ')' => {
                out.push(Token::RParen);
                i += 1;
            }
            ',' => {
                out.push(Token::Comma);
                i += 1;
            }
            '*' => {
                out.push(Token::Star);
                i += 1;
            }
            ';' => {
                out.push(Token::Semicolon);
                i += 1;
            }
            '=' => {
                out.push(Token::Eq);
                i += 1;
            }
            '!' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    out.push(Token::Ne);
                    i += 2;
                } else {
                    return Err(SqlError::Lex { offset: i, message: "expected `!=`".into() });
                }
            }
            '<' => match bytes.get(i + 1) {
                Some(&b'=') => {
                    out.push(Token::Le);
                    i += 2;
                }
                Some(&b'>') => {
                    out.push(Token::Ne);
                    i += 2;
                }
                _ => {
                    out.push(Token::Lt);
                    i += 1;
                }
            },
            '>' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    out.push(Token::Ge);
                    i += 2;
                } else {
                    out.push(Token::Gt);
                    i += 1;
                }
            }
            '\'' => {
                let (lit, next) = lex_string(input, i)?;
                out.push(Token::StringLit(lit));
                i = next;
            }
            '"' => {
                let end = input[i + 1..].find('"').ok_or(SqlError::Lex {
                    offset: i,
                    message: "unterminated identifier".into(),
                })?;
                out.push(Token::QuotedIdent(input[i + 1..i + 1 + end].to_string()));
                i += end + 2;
            }
            c if c.is_ascii_digit()
                || (c == '-' && bytes.get(i + 1).is_some_and(|b| b.is_ascii_digit())) =>
            {
                let (tok, next) = lex_number(input, i)?;
                out.push(tok);
                i = next;
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let start = i;
                while i < bytes.len()
                    && ((bytes[i] as char).is_ascii_alphanumeric() || bytes[i] == b'_')
                {
                    i += 1;
                }
                out.push(Token::Ident(input[start..i].to_string()));
            }
            other => {
                return Err(SqlError::Lex {
                    offset: i,
                    message: format!("unexpected character `{other}`"),
                })
            }
        }
    }
    Ok(out)
}

fn lex_string(input: &str, start: usize) -> Result<(String, usize), SqlError> {
    let bytes = input.as_bytes();
    let mut i = start + 1;
    let mut out = String::new();
    while i < bytes.len() {
        if bytes[i] == b'\'' {
            if bytes.get(i + 1) == Some(&b'\'') {
                out.push('\'');
                i += 2;
            } else {
                return Ok((out, i + 1));
            }
        } else {
            // Track UTF-8 properly by slicing on char boundaries.
            let ch = input[i..].chars().next().expect("in bounds");
            out.push(ch);
            i += ch.len_utf8();
        }
    }
    Err(SqlError::Lex { offset: start, message: "unterminated string".into() })
}

fn lex_number(input: &str, start: usize) -> Result<(Token, usize), SqlError> {
    let bytes = input.as_bytes();
    let mut i = start;
    if bytes[i] == b'-' {
        i += 1;
    }
    let mut saw_dot = false;
    while i < bytes.len() {
        match bytes[i] {
            b'0'..=b'9' => i += 1,
            b'.' if !saw_dot => {
                saw_dot = true;
                i += 1;
            }
            _ => break,
        }
    }
    let text = &input[start..i];
    if saw_dot {
        text.parse::<f64>()
            .map(|f| (Token::FloatLit(f), i))
            .map_err(|_| SqlError::Lex { offset: start, message: format!("bad float `{text}`") })
    } else {
        text.parse::<i64>()
            .map(|n| (Token::IntLit(n), i))
            .map_err(|_| SqlError::Lex { offset: start, message: format!("bad int `{text}`") })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tokenizes_the_paper_query() {
        let toks =
            tokenize("SELECT author, year, venue, count(*) AS pubcnt FROM Pub GROUP BY author")
                .unwrap();
        assert_eq!(toks[0], Token::Ident("SELECT".into()));
        assert!(toks.contains(&Token::Star));
        assert!(toks.contains(&Token::Ident("pubcnt".into())));
        assert!(toks.contains(&Token::LParen));
    }

    #[test]
    fn strings_and_escapes() {
        let toks = tokenize("WHERE venue = 'O''Reilly & SIGMOD'").unwrap();
        assert!(toks.contains(&Token::StringLit("O'Reilly & SIGMOD".into())));
        assert!(tokenize("'unterminated").is_err());
    }

    #[test]
    fn quoted_identifiers() {
        let toks = tokenize("SELECT \"weird name\" FROM t").unwrap();
        assert!(toks.contains(&Token::QuotedIdent("weird name".into())));
        assert!(tokenize("\"unterminated").is_err());
    }

    #[test]
    fn numbers() {
        let toks = tokenize("x >= -12 AND y < 3.5").unwrap();
        assert!(toks.contains(&Token::IntLit(-12)));
        assert!(toks.contains(&Token::FloatLit(3.5)));
        assert!(toks.contains(&Token::Ge));
        assert!(toks.contains(&Token::Lt));
    }

    #[test]
    fn comparison_operators() {
        let toks = tokenize("a = b != c <> d <= e >= f < g > h").unwrap();
        let ops: Vec<&Token> = toks
            .iter()
            .filter(|t| {
                matches!(t, Token::Eq | Token::Ne | Token::Le | Token::Ge | Token::Lt | Token::Gt)
            })
            .collect();
        assert_eq!(ops.len(), 7);
    }

    #[test]
    fn rejects_garbage() {
        assert!(tokenize("SELECT @").is_err());
        assert!(tokenize("a ! b").is_err());
    }

    #[test]
    fn unicode_in_strings() {
        let toks = tokenize("WHERE name = 'Zürich 北京'").unwrap();
        assert!(toks.contains(&Token::StringLit("Zürich 北京".into())));
    }
}
