//! Recursive-descent parser for the SELECT dialect.
//!
//! Grammar (keywords case-insensitive):
//!
//! ```text
//! select   := SELECT items FROM ident [WHERE expr] [GROUP BY cols]
//!             [ORDER BY order_keys] [LIMIT int] [';']
//! items    := '*' | item (',' item)*
//! item     := agg '(' ('*' | ident) ')' [AS ident] | ident [AS ident]
//! expr     := or_expr
//! or_expr  := and_expr (OR and_expr)*
//! and_expr := not_expr (AND not_expr)*
//! not_expr := NOT not_expr | primary
//! primary  := '(' expr ')'
//!           | ident IN '(' literal (',' literal)* ')'
//!           | ident BETWEEN literal AND literal
//!           | operand cmp operand
//! operand  := ident | literal
//! ```

use super::ast::{AggCall, CmpOp, Expr, OrderKey, SelectItem, SelectStmt};
use super::lexer::{tokenize, Token};
use super::SqlError;
use crate::agg::AggFunc;
use crate::value::Value;

/// Parse a single SELECT statement.
pub fn parse(input: &str) -> Result<SelectStmt, SqlError> {
    let tokens = tokenize(input)?;
    let mut p = Parser { tokens, pos: 0 };
    let stmt = p.select()?;
    p.eat_if(&Token::Semicolon);
    if !p.at_end() {
        return Err(p.error("trailing tokens after statement"));
    }
    Ok(stmt)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn at_end(&self) -> bool {
        self.pos >= self.tokens.len()
    }

    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    fn next(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn error(&self, message: &str) -> SqlError {
        SqlError::Parse {
            near: self.peek().map(|t| format!("{t:?}")).unwrap_or_else(|| "<eof>".into()),
            message: message.to_string(),
        }
    }

    /// Case-insensitive keyword check without consuming.
    fn peek_kw(&self, kw: &str) -> bool {
        matches!(self.peek(), Some(Token::Ident(s)) if s.eq_ignore_ascii_case(kw))
    }

    fn eat_kw(&mut self, kw: &str) -> bool {
        if self.peek_kw(kw) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_kw(&mut self, kw: &str) -> Result<(), SqlError> {
        if self.eat_kw(kw) {
            Ok(())
        } else {
            Err(self.error(&format!("expected `{kw}`")))
        }
    }

    fn eat_if(&mut self, tok: &Token) -> bool {
        if self.peek() == Some(tok) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect(&mut self, tok: Token) -> Result<(), SqlError> {
        if self.eat_if(&tok) {
            Ok(())
        } else {
            Err(self.error(&format!("expected {tok:?}")))
        }
    }

    /// An identifier usable as a column/table name (quoted or bare).
    fn ident(&mut self) -> Result<String, SqlError> {
        match self.next() {
            Some(Token::Ident(s)) => Ok(s),
            Some(Token::QuotedIdent(s)) => Ok(s),
            _ => {
                self.pos = self.pos.saturating_sub(1);
                Err(self.error("expected identifier"))
            }
        }
    }

    fn select(&mut self) -> Result<SelectStmt, SqlError> {
        self.expect_kw("SELECT")?;
        let items = self.items()?;
        self.expect_kw("FROM")?;
        let table = self.ident()?;

        let selection = if self.eat_kw("WHERE") { Some(self.expr()?) } else { None };

        let mut group_by = Vec::new();
        if self.eat_kw("GROUP") {
            self.expect_kw("BY")?;
            group_by.push(self.ident()?);
            while self.eat_if(&Token::Comma) {
                group_by.push(self.ident()?);
            }
        }

        let mut order_by = Vec::new();
        if self.eat_kw("ORDER") {
            self.expect_kw("BY")?;
            loop {
                let column = self.ident()?;
                let ascending = if self.eat_kw("DESC") {
                    false
                } else {
                    self.eat_kw("ASC");
                    true
                };
                order_by.push(OrderKey { column, ascending });
                if !self.eat_if(&Token::Comma) {
                    break;
                }
            }
        }

        let limit = if self.eat_kw("LIMIT") {
            match self.next() {
                Some(Token::IntLit(n)) if n >= 0 => Some(n as usize),
                _ => return Err(self.error("expected non-negative LIMIT count")),
            }
        } else {
            None
        };

        Ok(SelectStmt { items, table, selection, group_by, order_by, limit })
    }

    fn items(&mut self) -> Result<Vec<SelectItem>, SqlError> {
        if self.eat_if(&Token::Star) {
            return Ok(vec![SelectItem::Wildcard]);
        }
        let mut items = vec![self.item()?];
        while self.eat_if(&Token::Comma) {
            items.push(self.item()?);
        }
        Ok(items)
    }

    fn item(&mut self) -> Result<SelectItem, SqlError> {
        let name = self.ident()?;
        // Aggregate call?
        if let Some(func) = agg_func(&name) {
            if self.eat_if(&Token::LParen) {
                let arg = if self.eat_if(&Token::Star) { None } else { Some(self.ident()?) };
                self.expect(Token::RParen)?;
                if func != AggFunc::Count && arg.is_none() {
                    return Err(self.error("only count may aggregate `*`"));
                }
                let alias = self.alias()?;
                return Ok(SelectItem::Aggregate { call: AggCall { func, arg }, alias });
            }
        }
        let alias = self.alias()?;
        Ok(SelectItem::Column { name, alias })
    }

    fn alias(&mut self) -> Result<Option<String>, SqlError> {
        if self.eat_kw("AS") {
            Ok(Some(self.ident()?))
        } else {
            Ok(None)
        }
    }

    fn expr(&mut self) -> Result<Expr, SqlError> {
        let mut lhs = self.and_expr()?;
        while self.eat_kw("OR") {
            let rhs = self.and_expr()?;
            lhs = Expr::Or(Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn and_expr(&mut self) -> Result<Expr, SqlError> {
        let mut lhs = self.not_expr()?;
        while self.eat_kw("AND") {
            let rhs = self.not_expr()?;
            lhs = Expr::And(Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn not_expr(&mut self) -> Result<Expr, SqlError> {
        if self.eat_kw("NOT") {
            Ok(Expr::Not(Box::new(self.not_expr()?)))
        } else {
            self.primary()
        }
    }

    fn primary(&mut self) -> Result<Expr, SqlError> {
        if self.eat_if(&Token::LParen) {
            let e = self.expr()?;
            self.expect(Token::RParen)?;
            return Ok(e);
        }
        // `col IN (...)` / `col BETWEEN lo AND hi` need the column first.
        let lhs = self.operand()?;
        if let Expr::Col(col) = &lhs {
            if self.eat_kw("IN") {
                self.expect(Token::LParen)?;
                let mut list = vec![self.literal()?];
                while self.eat_if(&Token::Comma) {
                    list.push(self.literal()?);
                }
                self.expect(Token::RParen)?;
                return Ok(Expr::InList { col: col.clone(), list });
            }
            if self.eat_kw("BETWEEN") {
                let lo = self.literal()?;
                self.expect_kw("AND")?;
                let hi = self.literal()?;
                return Ok(Expr::Between { col: col.clone(), lo, hi });
            }
        }
        let op = match self.next() {
            Some(Token::Eq) => CmpOp::Eq,
            Some(Token::Ne) => CmpOp::Ne,
            Some(Token::Lt) => CmpOp::Lt,
            Some(Token::Le) => CmpOp::Le,
            Some(Token::Gt) => CmpOp::Gt,
            Some(Token::Ge) => CmpOp::Ge,
            _ => {
                self.pos = self.pos.saturating_sub(1);
                return Err(self.error("expected comparison operator"));
            }
        };
        let rhs = self.operand()?;
        Ok(Expr::Cmp { op, lhs: Box::new(lhs), rhs: Box::new(rhs) })
    }

    fn operand(&mut self) -> Result<Expr, SqlError> {
        match self.peek().cloned() {
            Some(Token::Ident(s)) if s.eq_ignore_ascii_case("NULL") => {
                self.pos += 1;
                Ok(Expr::Lit(Value::Null))
            }
            Some(Token::Ident(_)) | Some(Token::QuotedIdent(_)) => Ok(Expr::Col(self.ident()?)),
            _ => Ok(Expr::Lit(self.literal()?)),
        }
    }

    fn literal(&mut self) -> Result<Value, SqlError> {
        match self.next() {
            Some(Token::StringLit(s)) => Ok(Value::str(s)),
            Some(Token::IntLit(n)) => Ok(Value::Int(n)),
            Some(Token::FloatLit(f)) => Ok(Value::Float(f)),
            Some(Token::Ident(s)) if s.eq_ignore_ascii_case("NULL") => Ok(Value::Null),
            _ => {
                self.pos = self.pos.saturating_sub(1);
                Err(self.error("expected literal"))
            }
        }
    }
}

fn agg_func(name: &str) -> Option<AggFunc> {
    match name.to_ascii_lowercase().as_str() {
        "count" => Some(AggFunc::Count),
        "sum" => Some(AggFunc::Sum),
        "min" => Some(AggFunc::Min),
        "max" => Some(AggFunc::Max),
        "avg" => Some(AggFunc::Avg),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_paper_query() {
        let q = parse(
            "SELECT author, year, venue, count(*) AS pubcnt FROM Pub GROUP BY author, year, venue",
        )
        .unwrap();
        assert_eq!(q.table, "Pub");
        assert_eq!(q.group_by, vec!["author", "year", "venue"]);
        assert!(q.is_cape_query());
        match &q.items[3] {
            SelectItem::Aggregate { call, alias } => {
                assert_eq!(call.func, AggFunc::Count);
                assert_eq!(call.arg, None);
                assert_eq!(alias.as_deref(), Some("pubcnt"));
            }
            other => panic!("unexpected item {other:?}"),
        }
    }

    #[test]
    fn parses_where_clause() {
        let q = parse(
            "SELECT venue, count(*) FROM pub \
             WHERE author = 'AX' AND (year >= 2005 OR NOT venue = 'TKDE') \
             GROUP BY venue",
        )
        .unwrap();
        let w = q.selection.unwrap();
        assert!(matches!(w, Expr::And(_, _)));
    }

    #[test]
    fn parses_in_and_between() {
        let q = parse(
            "SELECT * FROM pub WHERE venue IN ('SIGMOD','VLDB') AND year BETWEEN 2004 AND 2007",
        )
        .unwrap();
        match q.selection.unwrap() {
            Expr::And(a, b) => {
                assert!(matches!(*a, Expr::InList { .. }));
                assert!(matches!(*b, Expr::Between { .. }));
            }
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(q.items, vec![SelectItem::Wildcard]);
    }

    #[test]
    fn parses_order_and_limit() {
        let q = parse(
            "SELECT author, count(*) AS n FROM pub GROUP BY author ORDER BY n DESC, author LIMIT 5;",
        )
        .unwrap();
        assert_eq!(q.order_by.len(), 2);
        assert!(!q.order_by[0].ascending);
        assert!(q.order_by[1].ascending);
        assert_eq!(q.limit, Some(5));
    }

    #[test]
    fn keywords_case_insensitive() {
        let q = parse("select author from pub where year = 2007").unwrap();
        assert_eq!(q.table, "pub");
        assert!(q.selection.is_some());
    }

    #[test]
    fn sum_over_column() {
        let q = parse("SELECT dept, sum(sales) FROM t GROUP BY dept").unwrap();
        let aggs = q.aggregates();
        assert_eq!(aggs[0].func, AggFunc::Sum);
        assert_eq!(aggs[0].arg.as_deref(), Some("sales"));
    }

    #[test]
    fn error_cases() {
        assert!(parse("FROM t").is_err());
        assert!(parse("SELECT a FROM").is_err());
        assert!(parse("SELECT sum(*) FROM t GROUP BY a").is_err());
        assert!(parse("SELECT a FROM t WHERE").is_err());
        assert!(parse("SELECT a FROM t LIMIT x").is_err());
        assert!(parse("SELECT a FROM t extra").is_err());
        assert!(parse("SELECT a FROM t WHERE a &").is_err());
    }

    #[test]
    fn quoted_identifiers_are_not_keywords() {
        let q = parse("SELECT \"from\" FROM t").unwrap();
        match &q.items[0] {
            SelectItem::Column { name, .. } => assert_eq!(name, "from"),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn null_literal() {
        let q = parse("SELECT a FROM t WHERE b = NULL").unwrap();
        match q.selection.unwrap() {
            Expr::Cmp { rhs, .. } => assert_eq!(*rhs, Expr::Lit(Value::Null)),
            other => panic!("unexpected {other:?}"),
        }
    }
}
