//! SQL execution against an in-memory relation.

use super::ast::{AggCall, CmpOp, Expr, SelectItem, SelectStmt};
use super::SqlError;
use crate::agg::AggSpec;
use crate::ops::{aggregate, filter, project, sort_by};
use crate::relation::Relation;
use crate::schema::AttrId;
use crate::value::Value;

/// Execute a parsed statement against `rel` (which plays the role of the
/// statement's `FROM` table).
pub fn execute(stmt: &SelectStmt, rel: &Relation) -> Result<Relation, SqlError> {
    // 1. WHERE.
    let filtered = match &stmt.selection {
        Some(expr) => {
            let compiled = compile_expr(expr, rel)?;
            filter(rel, |r, i| truthy(&compiled.eval(r, i)))
        }
        None => rel.clone(),
    };

    // 2. Projection / aggregation.
    let mut out = if stmt.group_by.is_empty() && stmt.aggregates().is_empty() {
        plain_projection(stmt, &filtered)?
    } else {
        grouped_projection(stmt, &filtered)?
    };

    // 3. ORDER BY on output columns.
    if !stmt.order_by.is_empty() {
        // Handle mixed directions by sorting sequentially from the least
        // significant key (stable sort makes this correct).
        for key in stmt.order_by.iter().rev() {
            let col = out
                .schema()
                .attr_id(&key.column)
                .map_err(|_| SqlError::Exec(format!("unknown ORDER BY column `{}`", key.column)))?;
            out = sort_by(&out, &[col]);
            if !key.ascending {
                let rev: Vec<usize> = (0..out.num_rows()).rev().collect();
                out = out.take(&rev);
            }
        }
    }

    // 4. LIMIT.
    if let Some(limit) = stmt.limit {
        if limit < out.num_rows() {
            let idx: Vec<usize> = (0..limit).collect();
            out = out.take(&idx);
        }
    }
    Ok(out)
}

fn plain_projection(stmt: &SelectStmt, rel: &Relation) -> Result<Relation, SqlError> {
    if stmt.items.iter().any(|i| matches!(i, SelectItem::Wildcard)) {
        if stmt.items.len() != 1 {
            return Err(SqlError::Exec("`*` cannot be combined with other items".into()));
        }
        return Ok(rel.clone());
    }
    let mut cols = Vec::new();
    let mut names = Vec::new();
    for item in &stmt.items {
        match item {
            SelectItem::Column { name, alias } => {
                let id = rel
                    .schema()
                    .attr_id(name)
                    .map_err(|_| SqlError::Exec(format!("unknown column `{name}`")))?;
                cols.push(id);
                names.push(alias.clone().unwrap_or_else(|| name.clone()));
            }
            other => return Err(SqlError::Exec(format!("unexpected item {other:?}"))),
        }
    }
    let mut out = project(rel, &cols)?;
    out = rename(out, &names)?;
    Ok(out)
}

fn grouped_projection(stmt: &SelectStmt, rel: &Relation) -> Result<Relation, SqlError> {
    // Resolve group-by columns.
    let group: Result<Vec<AttrId>, SqlError> = stmt
        .group_by
        .iter()
        .map(|name| {
            rel.schema()
                .attr_id(name)
                .map_err(|_| SqlError::Exec(format!("unknown GROUP BY column `{name}`")))
        })
        .collect();
    let group = group?;

    // Validate projection: every plain column must be grouped; build the
    // aggregate list in projection order.
    let mut specs: Vec<AggSpec> = Vec::new();
    let mut output_order: Vec<(bool, usize, Option<String>)> = Vec::new(); // (is_agg, index, alias)
    for item in &stmt.items {
        match item {
            SelectItem::Wildcard => {
                return Err(SqlError::Exec("`*` is not allowed with GROUP BY".into()))
            }
            SelectItem::Column { name, alias } => {
                let id = rel
                    .schema()
                    .attr_id(name)
                    .map_err(|_| SqlError::Exec(format!("unknown column `{name}`")))?;
                let pos = group.iter().position(|&g| g == id).ok_or_else(|| {
                    SqlError::Exec(format!("column `{name}` must appear in GROUP BY"))
                })?;
                output_order.push((false, pos, alias.clone()));
            }
            SelectItem::Aggregate { call, alias } => {
                let spec = resolve_agg(call, rel)?;
                specs.push(spec);
                output_order.push((true, specs.len() - 1, alias.clone()));
            }
        }
    }
    if specs.is_empty() {
        return Err(SqlError::Exec("GROUP BY requires at least one aggregate".into()));
    }

    let grouped = aggregate(rel, &group, &specs)?.relation;

    // Reorder/rename to match the projection list.
    let mut cols = Vec::new();
    let mut names = Vec::new();
    for (is_agg, idx, alias) in output_order {
        let col = if is_agg { group.len() + idx } else { idx };
        cols.push(col);
        let default = grouped.schema().attr(col)?.name().to_string();
        names.push(alias.unwrap_or(default));
    }
    let out = project(&grouped, &cols)?;
    rename(out, &names)
}

fn resolve_agg(call: &AggCall, rel: &Relation) -> Result<AggSpec, SqlError> {
    let attr = match &call.arg {
        Some(name) => Some(
            rel.schema()
                .attr_id(name)
                .map_err(|_| SqlError::Exec(format!("unknown aggregate column `{name}`")))?,
        ),
        None => None,
    };
    Ok(AggSpec { func: call.func, attr })
}

fn rename(rel: Relation, names: &[String]) -> Result<Relation, SqlError> {
    use crate::schema::{Attribute, Schema};
    let mut schema = Schema::new(Vec::<(String, crate::value::ValueType)>::new())?;
    for (i, name) in names.iter().enumerate() {
        let ty = rel.schema().attr(i)?.value_type();
        schema
            .push(Attribute::new(name, ty))
            .map_err(|_| SqlError::Exec(format!("duplicate output column `{name}`")))?;
    }
    let mut out = Relation::with_capacity(schema, rel.num_rows());
    for i in 0..rel.num_rows() {
        out.push_row(rel.row(i))?;
    }
    Ok(out)
}

/// A compiled expression with column names resolved to indices.
enum Compiled {
    Col(AttrId),
    Lit(Value),
    Cmp(CmpOp, Box<Compiled>, Box<Compiled>),
    And(Box<Compiled>, Box<Compiled>),
    Or(Box<Compiled>, Box<Compiled>),
    Not(Box<Compiled>),
    InList(AttrId, Vec<Value>),
    Between(AttrId, Value, Value),
}

impl Compiled {
    fn eval(&self, rel: &Relation, row: usize) -> Value {
        match self {
            Compiled::Col(a) => rel.value(row, *a).clone(),
            Compiled::Lit(v) => v.clone(),
            Compiled::Cmp(op, lhs, rhs) => {
                let l = lhs.eval(rel, row);
                let r = rhs.eval(rel, row);
                let b = match op {
                    CmpOp::Eq => l == r,
                    CmpOp::Ne => l != r,
                    CmpOp::Lt => l < r,
                    CmpOp::Le => l <= r,
                    CmpOp::Gt => l > r,
                    CmpOp::Ge => l >= r,
                };
                Value::Int(b as i64)
            }
            Compiled::And(a, b) => {
                Value::Int((truthy(&a.eval(rel, row)) && truthy(&b.eval(rel, row))) as i64)
            }
            Compiled::Or(a, b) => {
                Value::Int((truthy(&a.eval(rel, row)) || truthy(&b.eval(rel, row))) as i64)
            }
            Compiled::Not(a) => Value::Int(!truthy(&a.eval(rel, row)) as i64),
            Compiled::InList(a, list) => {
                Value::Int(list.iter().any(|v| rel.value(row, *a) == *v) as i64)
            }
            Compiled::Between(a, lo, hi) => {
                let v = rel.value(row, *a);
                Value::Int((&v >= lo && &v <= hi) as i64)
            }
        }
    }
}

fn truthy(v: &Value) -> bool {
    match v {
        Value::Null => false,
        Value::Int(i) => *i != 0,
        Value::Float(f) => *f != 0.0,
        Value::Str(s) => !s.is_empty(),
    }
}

fn compile_expr(expr: &Expr, rel: &Relation) -> Result<Compiled, SqlError> {
    let col = |name: &str| -> Result<AttrId, SqlError> {
        rel.schema().attr_id(name).map_err(|_| SqlError::Exec(format!("unknown column `{name}`")))
    };
    Ok(match expr {
        Expr::Col(name) => Compiled::Col(col(name)?),
        Expr::Lit(v) => Compiled::Lit(v.clone()),
        Expr::Cmp { op, lhs, rhs } => {
            Compiled::Cmp(*op, Box::new(compile_expr(lhs, rel)?), Box::new(compile_expr(rhs, rel)?))
        }
        Expr::And(a, b) => {
            Compiled::And(Box::new(compile_expr(a, rel)?), Box::new(compile_expr(b, rel)?))
        }
        Expr::Or(a, b) => {
            Compiled::Or(Box::new(compile_expr(a, rel)?), Box::new(compile_expr(b, rel)?))
        }
        Expr::Not(a) => Compiled::Not(Box::new(compile_expr(a, rel)?)),
        Expr::InList { col: c, list } => Compiled::InList(col(c)?, list.clone()),
        Expr::Between { col: c, lo, hi } => Compiled::Between(col(c)?, lo.clone(), hi.clone()),
    })
}

#[cfg(test)]
mod tests {
    use super::super::parse;
    use super::*;
    use crate::schema::Schema;
    use crate::value::ValueType;

    fn pubs() -> Relation {
        let schema = Schema::new([
            ("author", ValueType::Str),
            ("year", ValueType::Int),
            ("venue", ValueType::Str),
            ("cites", ValueType::Int),
        ])
        .unwrap();
        Relation::from_rows(
            schema,
            vec![
                vec![Value::str("ax"), Value::Int(2006), Value::str("KDD"), Value::Int(10)],
                vec![Value::str("ax"), Value::Int(2007), Value::str("KDD"), Value::Int(5)],
                vec![Value::str("ax"), Value::Int(2007), Value::str("ICDE"), Value::Int(8)],
                vec![Value::str("ay"), Value::Int(2007), Value::str("KDD"), Value::Int(2)],
                vec![Value::str("ay"), Value::Int(2008), Value::str("ICDE"), Value::Int(4)],
            ],
        )
        .unwrap()
    }

    fn run(sql: &str) -> Relation {
        execute(&parse(sql).unwrap(), &pubs()).unwrap()
    }

    #[test]
    fn group_by_count() {
        let out = run("SELECT author, count(*) AS n FROM pub GROUP BY author");
        assert_eq!(out.schema().names(), vec!["author", "n"]);
        assert_eq!(out.num_rows(), 2);
        assert_eq!(out.value(0, 1), Value::Int(3)); // ax
        assert_eq!(out.value(1, 1), Value::Int(2)); // ay
    }

    #[test]
    fn where_then_group() {
        let out = run("SELECT venue, sum(cites) FROM pub WHERE year = 2007 GROUP BY venue");
        assert_eq!(out.num_rows(), 2);
        // KDD 2007: 5 + 2 = 7; ICDE 2007: 8.
        let kdd = (0..2).find(|&i| out.value(i, 0) == Value::str("KDD")).unwrap();
        assert_eq!(out.value(kdd, 1), Value::Float(7.0));
    }

    #[test]
    fn complex_where() {
        let out =
            run("SELECT * FROM pub WHERE (author = 'ax' AND year >= 2007) OR venue IN ('ICDE')");
        assert_eq!(out.num_rows(), 3);
        let out = run("SELECT * FROM pub WHERE year BETWEEN 2007 AND 2008 AND NOT venue = 'KDD'");
        assert_eq!(out.num_rows(), 2);
        // Sanity: the OR query matches (ax,2007,KDD), (ax,2007,ICDE), (ay,2008,ICDE).
    }

    #[test]
    fn order_and_limit() {
        let out = run("SELECT author, year, cites FROM pub ORDER BY cites DESC LIMIT 2");
        assert_eq!(out.num_rows(), 2);
        assert_eq!(out.value(0, 2), Value::Int(10));
        assert_eq!(out.value(1, 2), Value::Int(8));
    }

    #[test]
    fn multi_key_order_mixed_directions() {
        let out = run("SELECT author, year FROM pub ORDER BY author ASC, year DESC");
        assert_eq!(out.value(0, 0), Value::str("ax"));
        assert_eq!(out.value(0, 1), Value::Int(2007));
        assert_eq!(out.value(2, 1), Value::Int(2006));
    }

    #[test]
    fn projection_with_alias_and_reorder() {
        let out = run("SELECT venue AS v, author FROM pub LIMIT 1");
        assert_eq!(out.schema().names(), vec!["v", "author"]);
        assert_eq!(out.value(0, 0), Value::str("KDD"));
    }

    #[test]
    fn aggregate_order_interleaved() {
        // Aggregate listed before a group column.
        let out = run("SELECT count(*) AS n, author FROM pub GROUP BY author");
        assert_eq!(out.schema().names(), vec!["n", "author"]);
        assert_eq!(out.value(0, 0), Value::Int(3));
        assert_eq!(out.value(0, 1), Value::str("ax"));
    }

    #[test]
    fn execution_errors() {
        let e = execute(&parse("SELECT bogus FROM t").unwrap(), &pubs());
        assert!(matches!(e, Err(SqlError::Exec(_))));
        let e = execute(&parse("SELECT author FROM t GROUP BY author").unwrap(), &pubs());
        assert!(e.is_err(), "group by without aggregate");
        // GROUP BY only accepts column names; an aggregate there is a parse error.
        assert!(parse("SELECT venue FROM t GROUP BY author, count(*)").is_err());
        let e = execute(&parse("SELECT venue, count(*) FROM t GROUP BY author").unwrap(), &pubs());
        assert!(e.is_err(), "ungrouped projected column");
        let e = execute(
            &parse("SELECT author, count(*) FROM t GROUP BY author ORDER BY bogus").unwrap(),
            &pubs(),
        );
        assert!(e.is_err());
        // `*` combined with other items never parses (items() stops at `*`).
        assert!(parse("SELECT *, author FROM t").is_err());
    }

    #[test]
    fn the_paper_q0() {
        let out = run("SELECT author, year, venue, count(*) AS pubcnt FROM Pub \
             GROUP BY author, year, venue ORDER BY author, year, venue");
        assert_eq!(out.num_rows(), 5);
        assert_eq!(out.schema().names(), vec!["author", "year", "venue", "pubcnt"]);
    }
}
