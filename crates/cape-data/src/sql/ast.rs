//! SQL abstract syntax tree.

use crate::agg::AggFunc;
use crate::value::Value;

/// A scalar/boolean expression (used in `WHERE`).
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Column reference.
    Col(String),
    /// Literal value.
    Lit(Value),
    /// Comparison `lhs op rhs`.
    Cmp {
        /// The comparison operator.
        op: CmpOp,
        /// Left operand.
        lhs: Box<Expr>,
        /// Right operand.
        rhs: Box<Expr>,
    },
    /// `lhs AND rhs`.
    And(Box<Expr>, Box<Expr>),
    /// `lhs OR rhs`.
    Or(Box<Expr>, Box<Expr>),
    /// `NOT e`.
    Not(Box<Expr>),
    /// `col IN (v1, v2, ...)`.
    InList {
        /// The tested column.
        col: String,
        /// Allowed values.
        list: Vec<Value>,
    },
    /// `col BETWEEN lo AND hi`.
    Between {
        /// The tested column.
        col: String,
        /// Lower bound (inclusive).
        lo: Value,
        /// Upper bound (inclusive).
        hi: Value,
    },
}

/// Comparison operator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmpOp {
    /// `=`
    Eq,
    /// `!=` / `<>`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

/// An aggregate call in the projection list.
#[derive(Debug, Clone, PartialEq)]
pub struct AggCall {
    /// Function name resolved to the engine's aggregate.
    pub func: AggFunc,
    /// Aggregated column, `None` = `*` (only valid for `count`).
    pub arg: Option<String>,
}

/// One item of the `SELECT` list.
#[derive(Debug, Clone, PartialEq)]
pub enum SelectItem {
    /// Bare `*` — all columns (only valid without GROUP BY).
    Wildcard,
    /// A column, with an optional `AS` alias.
    Column {
        /// Column name.
        name: String,
        /// Optional output alias.
        alias: Option<String>,
    },
    /// An aggregate call, with an optional `AS` alias.
    Aggregate {
        /// The aggregate call.
        call: AggCall,
        /// Optional output alias.
        alias: Option<String>,
    },
}

/// `ORDER BY` key.
#[derive(Debug, Clone, PartialEq)]
pub struct OrderKey {
    /// Output-column name (a projection alias or a column name).
    pub column: String,
    /// Ascending (default) or descending.
    pub ascending: bool,
}

/// A parsed `SELECT` statement.
#[derive(Debug, Clone, PartialEq)]
pub struct SelectStmt {
    /// Projection list.
    pub items: Vec<SelectItem>,
    /// Table name (informational — execution receives the relation).
    pub table: String,
    /// Optional `WHERE` clause.
    pub selection: Option<Expr>,
    /// `GROUP BY` columns (empty = no grouping).
    pub group_by: Vec<String>,
    /// `ORDER BY` keys.
    pub order_by: Vec<OrderKey>,
    /// `LIMIT`.
    pub limit: Option<usize>,
}

impl SelectStmt {
    /// The aggregate calls in the projection, in order.
    pub fn aggregates(&self) -> Vec<&AggCall> {
        self.items
            .iter()
            .filter_map(|i| match i {
                SelectItem::Aggregate { call, .. } => Some(call),
                _ => None,
            })
            .collect()
    }

    /// Whether this is a group-by aggregation query of the paper's shape
    /// (`SELECT G, agg(A) FROM R GROUP BY G` — exactly one aggregate and
    /// the projected columns equal to the group-by columns).
    pub fn is_cape_query(&self) -> bool {
        if self.group_by.is_empty() || self.aggregates().len() != 1 {
            return false;
        }
        let projected: Vec<&String> = self
            .items
            .iter()
            .filter_map(|i| match i {
                SelectItem::Column { name, .. } => Some(name),
                _ => None,
            })
            .collect();
        projected.len() == self.group_by.len()
            && projected.iter().all(|c| self.group_by.contains(c))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn q0() -> SelectStmt {
        SelectStmt {
            items: vec![
                SelectItem::Column { name: "author".into(), alias: None },
                SelectItem::Column { name: "year".into(), alias: None },
                SelectItem::Aggregate {
                    call: AggCall { func: AggFunc::Count, arg: None },
                    alias: Some("pubcnt".into()),
                },
            ],
            table: "pub".into(),
            selection: None,
            group_by: vec!["author".into(), "year".into()],
            order_by: vec![],
            limit: None,
        }
    }

    #[test]
    fn cape_query_shape() {
        let q = q0();
        assert!(q.is_cape_query());
        assert_eq!(q.aggregates().len(), 1);

        let mut no_group = q.clone();
        no_group.group_by.clear();
        assert!(!no_group.is_cape_query());

        let mut extra_col = q.clone();
        extra_col.items.push(SelectItem::Column { name: "venue".into(), alias: None });
        assert!(!extra_col.is_cape_query());

        let mut two_aggs = q;
        two_aggs.items.push(SelectItem::Aggregate {
            call: AggCall { func: AggFunc::Sum, arg: Some("year".into()) },
            alias: None,
        });
        assert!(!two_aggs.is_cape_query());
    }
}
