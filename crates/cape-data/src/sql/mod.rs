//! A small SQL layer: the paper's user-facing query language.
//!
//! CAPE's questions are posed against queries of the form
//! `SELECT G, agg(A) FROM R GROUP BY G`; this module parses and executes
//! that dialect (plus `WHERE`, `ORDER BY`, `LIMIT`, and plain projections)
//! against in-memory relations:
//!
//! ```
//! use cape_data::sql::{execute, parse};
//! use cape_data::{Relation, Schema, Value, ValueType};
//!
//! let schema = Schema::new([("author", ValueType::Str), ("year", ValueType::Int)]).unwrap();
//! let rel = Relation::from_rows(schema, vec![
//!     vec![Value::str("ax"), Value::Int(2007)],
//!     vec![Value::str("ax"), Value::Int(2007)],
//!     vec![Value::str("ay"), Value::Int(2008)],
//! ]).unwrap();
//!
//! let stmt = parse("SELECT author, count(*) AS n FROM pub GROUP BY author").unwrap();
//! let out = execute(&stmt, &rel).unwrap();
//! assert_eq!(out.schema().names(), vec!["author", "n"]);
//! ```

mod ast;
mod exec;
mod lexer;
mod parser;

pub use ast::{AggCall, Expr, OrderKey, SelectItem, SelectStmt};
pub use exec::execute;
pub use lexer::{tokenize, Token};
pub use parser::parse;

/// Errors from parsing or executing SQL.
#[derive(Debug, Clone, PartialEq)]
pub enum SqlError {
    /// Lexical error at a byte offset.
    Lex {
        /// Byte offset into the input.
        offset: usize,
        /// What went wrong.
        message: String,
    },
    /// Parse error with the offending token (if any).
    Parse {
        /// The token near the failure.
        near: String,
        /// What was expected.
        message: String,
    },
    /// Semantic/execution error.
    Exec(String),
    /// Propagated engine error.
    Data(crate::error::DataError),
}

impl std::fmt::Display for SqlError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SqlError::Lex { offset, message } => write!(f, "lex error at byte {offset}: {message}"),
            SqlError::Parse { near, message } => write!(f, "parse error near `{near}`: {message}"),
            SqlError::Exec(m) => write!(f, "execution error: {m}"),
            SqlError::Data(e) => write!(f, "data error: {e}"),
        }
    }
}

impl std::error::Error for SqlError {}

impl From<crate::error::DataError> for SqlError {
    fn from(e: crate::error::DataError) -> Self {
        SqlError::Data(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display() {
        let e = SqlError::Parse { near: "FROM".into(), message: "expected SELECT".into() };
        assert!(e.to_string().contains("FROM"));
        let e = SqlError::Lex { offset: 3, message: "bad char".into() };
        assert!(e.to_string().contains("byte 3"));
        let e: SqlError = crate::error::DataError::EmptyInput("x").into();
        assert!(e.to_string().contains("data error"));
    }
}
