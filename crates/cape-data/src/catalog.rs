//! A named-table catalog so SQL `FROM` clauses resolve by name.

use crate::error::{DataError, Result};
use crate::relation::Relation;
use crate::sql::{execute, SelectStmt, SqlError};
use std::collections::BTreeMap;

/// A set of named relations (the "database" the SQL layer queries).
#[derive(Debug, Clone, Default)]
pub struct Catalog {
    tables: BTreeMap<String, Relation>,
}

impl Catalog {
    /// Empty catalog.
    pub fn new() -> Self {
        Catalog::default()
    }

    /// Register (or replace) a table. Names are case-insensitive.
    pub fn register(&mut self, name: impl AsRef<str>, rel: Relation) {
        self.tables.insert(name.as_ref().to_ascii_lowercase(), rel);
    }

    /// Remove a table; returns it if present.
    pub fn deregister(&mut self, name: &str) -> Option<Relation> {
        self.tables.remove(&name.to_ascii_lowercase())
    }

    /// Look up a table.
    pub fn get(&self, name: &str) -> Result<&Relation> {
        self.tables
            .get(&name.to_ascii_lowercase())
            .ok_or_else(|| DataError::UnknownAttribute(format!("table `{name}`")))
    }

    /// Table names, sorted.
    pub fn table_names(&self) -> Vec<&str> {
        self.tables.keys().map(String::as_str).collect()
    }

    /// Number of registered tables.
    pub fn len(&self) -> usize {
        self.tables.len()
    }

    /// True when no table is registered.
    pub fn is_empty(&self) -> bool {
        self.tables.is_empty()
    }

    /// Execute a parsed statement, resolving its `FROM` table here.
    pub fn execute(&self, stmt: &SelectStmt) -> std::result::Result<Relation, SqlError> {
        let rel = self
            .get(&stmt.table)
            .map_err(|_| SqlError::Exec(format!("unknown table `{}`", stmt.table)))?;
        execute(stmt, rel)
    }

    /// Parse and execute a SQL string.
    pub fn query(&self, sql: &str) -> std::result::Result<Relation, SqlError> {
        let stmt = crate::sql::parse(sql)?;
        self.execute(&stmt)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Schema;
    use crate::value::{Value, ValueType};

    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        let schema = Schema::new([("a", ValueType::Str), ("x", ValueType::Int)]).unwrap();
        let pub_rel = Relation::from_rows(
            schema.clone(),
            vec![vec![Value::str("p"), Value::Int(1)], vec![Value::str("q"), Value::Int(2)]],
        )
        .unwrap();
        let crime_rel =
            Relation::from_rows(schema, vec![vec![Value::str("r"), Value::Int(3)]]).unwrap();
        c.register("Pub", pub_rel);
        c.register("crime", crime_rel);
        c
    }

    #[test]
    fn register_and_query_case_insensitively() {
        let c = catalog();
        assert_eq!(c.len(), 2);
        assert_eq!(c.table_names(), vec!["crime", "pub"]);
        let out = c.query("SELECT a FROM PUB ORDER BY a").unwrap();
        assert_eq!(out.num_rows(), 2);
        let out = c.query("SELECT x FROM crime").unwrap();
        assert_eq!(out.value(0, 0), Value::Int(3));
    }

    #[test]
    fn unknown_table_rejected() {
        let c = catalog();
        let e = c.query("SELECT a FROM nope");
        assert!(matches!(e, Err(SqlError::Exec(_))));
        assert!(c.get("nope").is_err());
    }

    #[test]
    fn deregister() {
        let mut c = catalog();
        assert!(c.deregister("pub").is_some());
        assert!(c.deregister("pub").is_none());
        assert_eq!(c.len(), 1);
        assert!(!c.is_empty());
    }

    #[test]
    fn replace_table() {
        let mut c = catalog();
        let schema = Schema::new([("a", ValueType::Str), ("x", ValueType::Int)]).unwrap();
        let empty = Relation::new(schema);
        c.register("pub", empty);
        assert_eq!(c.get("PUB").unwrap().num_rows(), 0);
        assert_eq!(c.len(), 2);
    }
}
