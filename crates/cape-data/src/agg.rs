//! Aggregate functions and their streaming accumulators.

use crate::error::{DataError, Result};
use crate::schema::AttrId;
use crate::value::Value;
use std::fmt;

/// The aggregate functions supported by CAPE patterns
/// (`count`, `sum`, `min`, `max` per Definition 2; `avg` added for the
/// baseline explainer).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AggFunc {
    /// Row / non-null count.
    Count,
    /// Numeric sum.
    Sum,
    /// Numeric minimum.
    Min,
    /// Numeric maximum.
    Max,
    /// Numeric mean (extension; not in Definition 2).
    Avg,
}

impl AggFunc {
    /// All functions usable inside an ARP (Definition 2 of the paper).
    pub const ARP_FUNCS: [AggFunc; 4] = [AggFunc::Count, AggFunc::Sum, AggFunc::Min, AggFunc::Max];

    /// SQL-ish name.
    pub fn name(self) -> &'static str {
        match self {
            AggFunc::Count => "count",
            AggFunc::Sum => "sum",
            AggFunc::Min => "min",
            AggFunc::Max => "max",
            AggFunc::Avg => "avg",
        }
    }

    /// Whether the function needs a numeric input attribute.
    pub fn requires_numeric(self) -> bool {
        !matches!(self, AggFunc::Count)
    }
}

impl fmt::Display for AggFunc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// An aggregate call: function plus input attribute (`None` = `count(*)`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct AggSpec {
    /// The aggregate function.
    pub func: AggFunc,
    /// The aggregated attribute (`None` = `count(*)`).
    pub attr: Option<AttrId>,
}

impl AggSpec {
    /// `count(*)`.
    pub fn count_star() -> Self {
        AggSpec { func: AggFunc::Count, attr: None }
    }

    /// An aggregate over a specific attribute.
    pub fn over(func: AggFunc, attr: AttrId) -> Self {
        AggSpec { func, attr: Some(attr) }
    }

    /// Output column name, e.g. `count(*)` or `sum(price)`.
    pub fn output_name(&self, attr_name: Option<&str>) -> String {
        match (self.func, attr_name) {
            (AggFunc::Count, None) => "count(*)".to_string(),
            (f, Some(a)) => format!("{f}({a})"),
            (f, None) => format!("{f}(*)"),
        }
    }
}

/// Streaming accumulator for one aggregate over one group.
#[derive(Debug, Clone)]
pub enum Accumulator {
    /// Running count.
    Count(u64),
    /// Running sum.
    Sum(f64),
    /// Running minimum (`None` until the first non-null input).
    Min(Option<f64>),
    /// Running maximum (`None` until the first non-null input).
    Max(Option<f64>),
    /// Running mean state.
    Avg {
        /// Sum of non-null inputs.
        sum: f64,
        /// Count of non-null inputs.
        n: u64,
    },
}

impl Accumulator {
    /// Fresh accumulator for a function.
    pub fn new(func: AggFunc) -> Self {
        match func {
            AggFunc::Count => Accumulator::Count(0),
            AggFunc::Sum => Accumulator::Sum(0.0),
            AggFunc::Min => Accumulator::Min(None),
            AggFunc::Max => Accumulator::Max(None),
            AggFunc::Avg => Accumulator::Avg { sum: 0.0, n: 0 },
        }
    }

    /// Fold in one input value. `value` is `None` for `count(*)`.
    /// `Null` inputs are skipped for value aggregates (SQL semantics) but
    /// counted by `count(*)`.
    pub fn update(&mut self, value: Option<&Value>) -> Result<()> {
        match self {
            Accumulator::Count(n) => {
                // count(attr) skips NULLs; count(*) counts every row.
                match value {
                    Some(v) if v.is_null() => {}
                    _ => *n += 1,
                }
            }
            Accumulator::Sum(s) => {
                if let Some(v) = value {
                    if !v.is_null() {
                        *s += numeric(v)?;
                    }
                }
            }
            Accumulator::Min(m) => {
                if let Some(v) = value {
                    if !v.is_null() {
                        let x = numeric(v)?;
                        *m = Some(m.map_or(x, |cur| cur.min(x)));
                    }
                }
            }
            Accumulator::Max(m) => {
                if let Some(v) = value {
                    if !v.is_null() {
                        let x = numeric(v)?;
                        *m = Some(m.map_or(x, |cur| cur.max(x)));
                    }
                }
            }
            Accumulator::Avg { sum, n } => {
                if let Some(v) = value {
                    if !v.is_null() {
                        *sum += numeric(v)?;
                        *n += 1;
                    }
                }
            }
        }
        Ok(())
    }

    /// Final aggregate value (`Null` for min/max/avg of an empty group).
    pub fn finish(&self) -> Value {
        match self {
            Accumulator::Count(n) => Value::Int(*n as i64),
            Accumulator::Sum(s) => Value::Float(*s),
            Accumulator::Min(m) | Accumulator::Max(m) => m.map_or(Value::Null, Value::Float),
            Accumulator::Avg { sum, n } => {
                if *n == 0 {
                    Value::Null
                } else {
                    Value::Float(sum / *n as f64)
                }
            }
        }
    }
}

fn numeric(v: &Value) -> Result<f64> {
    v.as_f64().ok_or(DataError::TypeMismatch {
        expected: "numeric",
        actual: match v {
            Value::Str(_) => "str",
            Value::Null => "null",
            _ => "other",
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(func: AggFunc, inputs: &[Value]) -> Value {
        let mut acc = Accumulator::new(func);
        for v in inputs {
            acc.update(Some(v)).unwrap();
        }
        acc.finish()
    }

    #[test]
    fn count_star_counts_every_row() {
        let mut acc = Accumulator::new(AggFunc::Count);
        acc.update(None).unwrap();
        acc.update(None).unwrap();
        assert_eq!(acc.finish(), Value::Int(2));
    }

    #[test]
    fn count_attr_skips_nulls() {
        let v = run(AggFunc::Count, &[Value::Int(1), Value::Null, Value::Int(3)]);
        assert_eq!(v, Value::Int(2));
    }

    #[test]
    fn sum_min_max_avg() {
        let xs = [Value::Int(4), Value::Float(1.5), Value::Null, Value::Int(-2)];
        assert_eq!(run(AggFunc::Sum, &xs), Value::Float(3.5));
        assert_eq!(run(AggFunc::Min, &xs), Value::Float(-2.0));
        assert_eq!(run(AggFunc::Max, &xs), Value::Float(4.0));
        assert_eq!(run(AggFunc::Avg, &xs), Value::Float(3.5 / 3.0));
    }

    #[test]
    fn empty_groups_yield_null_or_zero() {
        assert_eq!(Accumulator::new(AggFunc::Min).finish(), Value::Null);
        assert_eq!(Accumulator::new(AggFunc::Max).finish(), Value::Null);
        assert_eq!(Accumulator::new(AggFunc::Avg).finish(), Value::Null);
        assert_eq!(Accumulator::new(AggFunc::Sum).finish(), Value::Float(0.0));
        assert_eq!(Accumulator::new(AggFunc::Count).finish(), Value::Int(0));
    }

    #[test]
    fn non_numeric_input_rejected() {
        let mut acc = Accumulator::new(AggFunc::Sum);
        assert!(acc.update(Some(&Value::str("x"))).is_err());
    }

    #[test]
    fn spec_names() {
        assert_eq!(AggSpec::count_star().output_name(None), "count(*)");
        assert_eq!(AggSpec::over(AggFunc::Sum, 2).output_name(Some("price")), "sum(price)");
        assert!(AggFunc::Sum.requires_numeric());
        assert!(!AggFunc::Count.requires_numeric());
    }
}
