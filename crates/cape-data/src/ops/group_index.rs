//! Packed group-id computation: the shared kernel behind hash aggregation.
//!
//! Grouping by `Vec<Value>` hash keys clones and hashes every group-by
//! value of every row. This kernel instead dictionary-encodes each group
//! column into dense `u32` codes (one tiny per-column dictionary, the same
//! dedup idea as [`crate::interner::Interner`]) and packs the codes into a
//! single `u64`/`u128` group-id when the code widths permit. Group *slots*
//! are then resolved either by direct indexing into a dense table (small
//! packed domains) or by hashing one integer — never by hashing a
//! `Vec<Value>`. When the packed width exceeds 128 bits the kernel falls
//! back to the classic `HashMap<Vec<Value>, _>` path.
//!
//! Slot numbering is by order of first appearance in all paths, so every
//! consumer observes exactly the group order the legacy path produced.

use crate::relation::Relation;
use crate::schema::AttrId;
use crate::value::Value;
use std::collections::HashMap;

/// Maximum packed width before falling back to `Vec<Value>` keys.
const MAX_PACKED_BITS: u32 = 128;
/// Packed domains up to `2^DENSE_LIMIT_BITS` slots use a direct-index
/// table (≤ 1 Mi entries ⇒ ≤ 4 MiB) instead of a hash map.
const DENSE_LIMIT_BITS: u32 = 20;

/// A per-row group assignment: `slots[i]` is the dense group id of row `i`,
/// numbered in order of first appearance.
#[derive(Debug, Clone)]
pub struct GroupKeyIndex {
    /// Dense group slot per row (first-appearance numbering).
    pub slots: Vec<u32>,
    /// The first row index of each group, indexed by slot. Group keys can
    /// be rematerialized via [`Relation::row_project`] on these rows.
    pub first_rows: Vec<u32>,
    /// Whether the packed (dictionary-encoded) fast path was taken.
    pub packed: bool,
}

impl GroupKeyIndex {
    /// Number of distinct groups.
    pub fn num_groups(&self) -> usize {
        self.first_rows.len()
    }
}

/// Compute the group assignment of `rel` grouped by `cols`.
///
/// An empty `cols` means one global group (when the relation is non-empty).
pub fn group_key_index(rel: &Relation, cols: &[AttrId]) -> GroupKeyIndex {
    build(rel, cols, false)
}

/// Legacy `Vec<Value>`-keyed group assignment, kept callable so the packed
/// path can be differentially tested against it.
#[doc(hidden)]
pub fn group_key_index_unpacked(rel: &Relation, cols: &[AttrId]) -> GroupKeyIndex {
    build(rel, cols, true)
}

fn build(rel: &Relation, cols: &[AttrId], force_fallback: bool) -> GroupKeyIndex {
    let n = rel.num_rows();
    assert!(n < u32::MAX as usize, "relation too large for u32 group slots");
    if cols.is_empty() {
        return GroupKeyIndex {
            slots: vec![0; n],
            first_rows: if n > 0 { vec![0] } else { Vec::new() },
            packed: false,
        };
    }
    if !force_fallback {
        if let Some(idx) = packed_index(rel, cols) {
            cape_obs::counter_add("data.group_keys.packed", 1);
            return idx;
        }
    }
    cape_obs::counter_add("data.group_keys.fallback", 1);
    fallback_index(rel, cols)
}

/// Dictionary-encode each group column, pack codes into one integer id,
/// and assign slots. Returns `None` when the packed width exceeds
/// [`MAX_PACKED_BITS`].
///
/// Typed columns encode straight off their slabs — string columns reuse
/// their stored dictionary codes outright, numeric columns dedup raw
/// `i64`s / canonical `f64` bits — so only `Mixed` columns still hash
/// `Value`s. Per-column code numbering is arbitrary (slot numbering comes
/// from first appearance of the *packed id*), which is what lets stored
/// dict codes be used as-is. A `Float` column that absorbed `Int`s holds
/// them as their float image, so Int(3)/Float(3.0) share a code exactly
/// like the legacy `Value`-hash path.
fn packed_index(rel: &Relation, cols: &[AttrId]) -> Option<GroupKeyIndex> {
    let n = rel.num_rows();

    // Pass 1: per-column codes from the typed slabs.
    let mut col_codes: Vec<std::borrow::Cow<'_, [u32]>> = Vec::with_capacity(cols.len());
    let mut widths: Vec<u32> = Vec::with_capacity(cols.len());
    let mut total_bits = 0u32;
    for &c in cols {
        let (codes, card) = column_codes(rel.col(c), n);
        let card = card.max(1);
        let bits = (u64::BITS - (card - 1).leading_zeros()).max(1);
        total_bits += bits;
        if total_bits > MAX_PACKED_BITS {
            return None;
        }
        widths.push(bits);
        col_codes.push(codes);
    }

    let mut slots: Vec<u32> = Vec::with_capacity(n);
    let mut first_rows: Vec<u32> = Vec::new();

    if total_bits <= 64 {
        let pack = |i: usize| -> u64 {
            let mut id = 0u64;
            for (codes, &w) in col_codes.iter().zip(&widths) {
                id = (id << w) | codes[i] as u64;
            }
            id
        };
        if total_bits <= DENSE_LIMIT_BITS {
            // Direct-index table over the packed domain: no hashing at all.
            let mut table = vec![u32::MAX; 1usize << total_bits];
            for i in 0..n {
                let id = pack(i) as usize;
                let mut slot = table[id];
                if slot == u32::MAX {
                    slot = first_rows.len() as u32;
                    table[id] = slot;
                    first_rows.push(i as u32);
                }
                slots.push(slot);
            }
        } else {
            let mut map: HashMap<u64, u32> = HashMap::new();
            for i in 0..n {
                let id = pack(i);
                let next = first_rows.len() as u32;
                let slot = *map.entry(id).or_insert(next);
                if slot == next {
                    first_rows.push(i as u32);
                }
                slots.push(slot);
            }
        }
    } else {
        let mut map: HashMap<u128, u32> = HashMap::new();
        for i in 0..n {
            let mut id = 0u128;
            for (codes, &w) in col_codes.iter().zip(&widths) {
                id = (id << w) | codes[i] as u128;
            }
            let next = first_rows.len() as u32;
            let slot = *map.entry(id).or_insert(next);
            if slot == next {
                first_rows.push(i as u32);
            }
            slots.push(slot);
        }
    }

    Some(GroupKeyIndex { slots, first_rows, packed: true })
}

/// Dense `u32` codes for one column plus the code cardinality bound.
///
/// NULL rows get code 0 and shift value codes up by one, so a NULL is a
/// distinct group key exactly as in the legacy path. The cardinality may
/// overcount for string columns whose shared dictionary holds entries
/// that no longer occur (after a `take`) — that only widens the packed
/// id, never corrupts it.
fn column_codes(col: &crate::column::Column, n: usize) -> (std::borrow::Cow<'_, [u32]>, u64) {
    use crate::column::Column;
    use std::borrow::Cow;
    match col {
        Column::Int(c) => {
            let mut dict: HashMap<i64, u32> = HashMap::new();
            let mut codes: Vec<u32> = Vec::with_capacity(n);
            let mut has_null = false;
            for i in 0..n {
                if c.nulls.get(i) {
                    has_null = true;
                    codes.push(u32::MAX);
                } else {
                    let next = dict.len() as u32;
                    codes.push(*dict.entry(c.data[i]).or_insert(next));
                }
            }
            finish_null_shift(codes, dict.len() as u64, has_null)
        }
        Column::Float(c) => {
            // Slab bits are canonical, so bit-level dedup == Value equality.
            let mut dict: HashMap<u64, u32> = HashMap::new();
            let mut codes: Vec<u32> = Vec::with_capacity(n);
            let mut has_null = false;
            for i in 0..n {
                if c.nulls.get(i) {
                    has_null = true;
                    codes.push(u32::MAX);
                } else {
                    let next = dict.len() as u32;
                    codes.push(*dict.entry(c.data[i].to_bits()).or_insert(next));
                }
            }
            finish_null_shift(codes, dict.len() as u64, has_null)
        }
        Column::Str(c) => {
            let card = c.dict.len() as u64;
            if c.nulls.no_nulls() {
                // Stored dict codes are already dense per-column codes.
                (Cow::Borrowed(&c.codes[..n]), card)
            } else {
                let codes: Vec<u32> =
                    (0..n).map(|i| if c.nulls.get(i) { 0 } else { c.codes[i] + 1 }).collect();
                (Cow::Owned(codes), card + 1)
            }
        }
        Column::Mixed(values) => {
            let mut dict: HashMap<&Value, u32> = HashMap::new();
            let mut codes: Vec<u32> = Vec::with_capacity(n);
            for v in &values[..n] {
                let next = dict.len() as u32;
                codes.push(*dict.entry(v).or_insert(next));
            }
            (Cow::Owned(codes), dict.len() as u64)
        }
    }
}

/// Apply the NULL-gets-code-0 shift after a numeric encode pass.
fn finish_null_shift(
    mut codes: Vec<u32>,
    card: u64,
    has_null: bool,
) -> (std::borrow::Cow<'static, [u32]>, u64) {
    if has_null {
        for c in &mut codes {
            *c = if *c == u32::MAX { 0 } else { *c + 1 };
        }
        (std::borrow::Cow::Owned(codes), card + 1)
    } else {
        (std::borrow::Cow::Owned(codes), card)
    }
}

/// The legacy `HashMap<Vec<Value>, _>` path (scratch-key reuse so hits —
/// the common case — allocate nothing).
fn fallback_index(rel: &Relation, cols: &[AttrId]) -> GroupKeyIndex {
    let n = rel.num_rows();
    let mut groups: HashMap<Vec<Value>, u32> = HashMap::new();
    let mut slots: Vec<u32> = Vec::with_capacity(n);
    let mut first_rows: Vec<u32> = Vec::new();
    let mut scratch: Vec<Value> = Vec::with_capacity(cols.len());
    for i in 0..n {
        scratch.clear();
        for &c in cols {
            scratch.push(rel.value(i, c));
        }
        let slot = match groups.get(&scratch) {
            Some(&s) => s,
            None => {
                let s = first_rows.len() as u32;
                groups.insert(scratch.clone(), s);
                first_rows.push(i as u32);
                s
            }
        };
        slots.push(slot);
    }
    GroupKeyIndex { slots, first_rows, packed: false }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Schema;
    use crate::value::ValueType;

    fn rel() -> Relation {
        let schema =
            Schema::new([("a", ValueType::Str), ("b", ValueType::Int), ("x", ValueType::Float)])
                .unwrap();
        Relation::from_rows(
            schema,
            vec![
                vec![Value::str("p"), Value::Int(1), Value::Float(1.0)],
                vec![Value::str("q"), Value::Int(1), Value::Float(2.0)],
                vec![Value::str("p"), Value::Int(2), Value::Float(3.0)],
                vec![Value::str("p"), Value::Int(1), Value::Float(4.0)],
                vec![Value::str("q"), Value::Int(2), Value::Null],
            ],
        )
        .unwrap()
    }

    #[test]
    fn packed_matches_fallback() {
        let r = rel();
        for cols in [vec![0], vec![1], vec![0, 1], vec![1, 0], vec![0, 1, 2]] {
            let packed = group_key_index(&r, &cols);
            let legacy = group_key_index_unpacked(&r, &cols);
            assert!(packed.packed, "small relation must take the packed path");
            assert!(!legacy.packed);
            assert_eq!(packed.slots, legacy.slots, "cols {cols:?}");
            assert_eq!(packed.first_rows, legacy.first_rows, "cols {cols:?}");
        }
    }

    #[test]
    fn first_appearance_numbering() {
        let r = rel();
        let idx = group_key_index(&r, &[0]);
        // p first (slot 0), then q (slot 1).
        assert_eq!(idx.slots, vec![0, 1, 0, 0, 1]);
        assert_eq!(idx.first_rows, vec![0, 1]);
        assert_eq!(idx.num_groups(), 2);
    }

    #[test]
    fn empty_cols_is_one_group() {
        let r = rel();
        let idx = group_key_index(&r, &[]);
        assert_eq!(idx.num_groups(), 1);
        assert_eq!(idx.slots, vec![0; 5]);
        let empty = Relation::new(r.schema().clone());
        assert_eq!(group_key_index(&empty, &[]).num_groups(), 0);
    }

    #[test]
    fn null_is_a_group_key() {
        let r = rel();
        let idx = group_key_index(&r, &[2]);
        // All x values distinct (incl. one Null): 5 groups.
        assert_eq!(idx.num_groups(), 5);
    }

    #[test]
    fn cross_type_numeric_keys_merge() {
        // Int(3) and Float(3.0) must land in the same group, exactly as
        // the legacy Vec<Value> hash path groups them.
        let schema = Schema::new([("k", ValueType::Float)]).unwrap();
        let r = Relation::from_rows(
            schema,
            vec![vec![Value::Int(3)], vec![Value::Float(3.0)], vec![Value::Int(4)]],
        )
        .unwrap();
        let packed = group_key_index(&r, &[0]);
        let legacy = group_key_index_unpacked(&r, &[0]);
        assert_eq!(packed.slots, legacy.slots);
        assert_eq!(packed.slots, vec![0, 0, 1]);
    }

    #[test]
    fn wide_schema_falls_back_naturally() {
        // 26 columns × 32 distinct values each = 26 × 5 bits = 130 bits,
        // which exceeds the 128-bit packed budget.
        let schema =
            Schema::new((0..26).map(|i| (format!("c{i}"), ValueType::Int)).collect::<Vec<_>>())
                .unwrap();
        let mut r = Relation::new(schema);
        for row in 0..64i64 {
            r.push_row((0..26).map(|c| Value::Int((row + c) % 32)).collect()).unwrap();
        }
        let cols: Vec<usize> = (0..26).collect();
        let idx = group_key_index(&r, &cols);
        assert!(!idx.packed, "130-bit key must fall back");
        let legacy = group_key_index_unpacked(&r, &cols);
        assert_eq!(idx.slots, legacy.slots);
        assert_eq!(idx.first_rows, legacy.first_rows);
    }

    #[test]
    fn high_cardinality_uses_hash_not_dense() {
        // One column with > 2^20 cardinality would blow the dense table
        // budget; make sure the hashed-u64 path agrees with the fallback.
        let schema = Schema::new([("k", ValueType::Int), ("v", ValueType::Int)]).unwrap();
        let mut r = Relation::new(schema);
        for i in 0..3000i64 {
            r.push_row(vec![Value::Int(i % 1500), Value::Int(i % 7)]).unwrap();
        }
        let idx = group_key_index(&r, &[0, 1]);
        assert!(idx.packed);
        let legacy = group_key_index_unpacked(&r, &[0, 1]);
        assert_eq!(idx.slots, legacy.slots);
    }
}
