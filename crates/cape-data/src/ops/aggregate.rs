//! Hash group-by aggregation with multi-aggregate evaluation in one scan.
//!
//! The mining optimizations of the paper ("one query for all patterns
//! sharing F and V", "one query per F∪V") rely on evaluating *all*
//! aggregate calls of interest in a single pass; [`aggregate`] supports an
//! arbitrary list of [`AggSpec`]s.

use crate::agg::{Accumulator, AggSpec};
use crate::error::{DataError, Result};
use crate::ops::group_index::{group_key_index, group_key_index_unpacked};
use crate::relation::Relation;
use crate::schema::{AttrId, Schema};
use crate::value::{Value, ValueType};

/// Result of a group-by: the output relation plus bookkeeping that mining
/// uses (number of groups = `|π_G(R)|`, used for FD discovery).
#[derive(Debug, Clone)]
pub struct GroupByResult {
    /// Output relation: group-by columns followed by one column per aggregate.
    pub relation: Relation,
    /// Number of distinct groups (`relation.num_rows()`, kept for clarity).
    pub num_groups: usize,
}

/// `γ_{G, aggs}(R)`: hash aggregation.
///
/// The output schema is the group-by attributes (in the order given)
/// followed by one column per aggregate, named like `count(*)` / `sum(x)`.
/// Group order is the order of first appearance (deterministic).
pub fn aggregate(rel: &Relation, group: &[AttrId], aggs: &[AggSpec]) -> Result<GroupByResult> {
    aggregate_impl(rel, group, aggs, false, false)
}

/// Like [`aggregate`] but additionally appends a trailing `__rows` column
/// holding each group's raw row count; mining uses it to evaluate local
/// support without requiring `count(*)` among the requested aggregates.
pub fn aggregate_with_row_count(
    rel: &Relation,
    group: &[AttrId],
    aggs: &[AggSpec],
) -> Result<GroupByResult> {
    aggregate_impl(rel, group, aggs, true, false)
}

/// Like [`aggregate_with_row_count`] but forcing the legacy `Vec<Value>`
/// hash-key path, so the packed group-id kernel can be differentially
/// tested against it.
#[doc(hidden)]
pub fn aggregate_with_row_count_unpacked(
    rel: &Relation,
    group: &[AttrId],
    aggs: &[AggSpec],
) -> Result<GroupByResult> {
    aggregate_impl(rel, group, aggs, true, true)
}

/// Output schema of `γ_{group, aggs}`: the projected group columns, one
/// column per aggregate (`count` → Int, everything else → Float), and an
/// optional trailing `__rows` Int column. Shared with the roll-up operator
/// so derived aggregations are schema-identical to direct ones.
pub(crate) fn grouped_output_schema(
    base: &Schema,
    group: &[AttrId],
    aggs: &[AggSpec],
    with_rows: bool,
) -> Result<Schema> {
    let mut schema = base.project(group)?;
    for spec in aggs {
        let attr_name = match spec.attr {
            Some(a) => Some(base.attr(a)?.name().to_string()),
            None => None,
        };
        let name = spec.output_name(attr_name.as_deref());
        let ty = match spec.func {
            crate::agg::AggFunc::Count => ValueType::Int,
            _ => ValueType::Float,
        };
        schema.push(crate::schema::Attribute::new(name, ty))?;
    }
    if with_rows {
        schema.push(crate::schema::Attribute::new("__rows", ValueType::Int))?;
    }
    Ok(schema)
}

fn aggregate_impl(
    rel: &Relation,
    group: &[AttrId],
    aggs: &[AggSpec],
    with_rows: bool,
    force_unpacked: bool,
) -> Result<GroupByResult> {
    let mut span = cape_obs::span("data.group_by");
    span.add("rows_in", rel.num_rows() as u64);
    if aggs.is_empty() && !with_rows {
        return Err(DataError::EmptyInput("aggregate list"));
    }
    for spec in aggs {
        if let Some(a) = spec.attr {
            let attr = rel.schema().attr(a)?;
            if spec.func.requires_numeric() && !attr.value_type().is_numeric() {
                return Err(DataError::NonNumericAggregate(attr.name().to_string()));
            }
        }
    }
    let schema = grouped_output_schema(rel.schema(), group, aggs, with_rows)?;

    // Assign dense group slots (first-appearance order) via the packed
    // group-id kernel, then accumulate with direct slot indexing.
    let idx = if force_unpacked {
        group_key_index_unpacked(rel, group)
    } else {
        group_key_index(rel, group)
    };
    let num_groups = idx.num_groups();
    let mut accs: Vec<Vec<Accumulator>> = (0..num_groups)
        .map(|_| aggs.iter().map(|sp| Accumulator::new(sp.func)).collect())
        .collect();
    let mut row_counts: Vec<u64> = vec![0; num_groups];
    for i in 0..rel.num_rows() {
        let slot = idx.slots[i] as usize;
        row_counts[slot] += 1;
        for (acc, spec) in accs[slot].iter_mut().zip(aggs) {
            let value = spec.attr.map(|a| rel.value(i, a));
            acc.update(value.as_ref())?;
        }
    }

    // Materialize; group keys come from each slot's first row, so no
    // per-group key vectors are ever stored during the scan.
    let mut out = Relation::with_capacity(schema, num_groups);
    for slot in 0..num_groups {
        let mut row = rel.row_project(idx.first_rows[slot] as usize, group);
        for acc in &accs[slot] {
            row.push(acc.finish());
        }
        if with_rows {
            row.push(Value::Int(row_counts[slot] as i64));
        }
        out.push_row(row)?;
    }
    span.add("groups_out", num_groups as u64);
    Ok(GroupByResult { relation: out, num_groups })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::agg::AggFunc;
    use crate::schema::Schema;

    fn pubs() -> Relation {
        let schema = Schema::new([
            ("author", ValueType::Str),
            ("year", ValueType::Int),
            ("cites", ValueType::Int),
        ])
        .unwrap();
        Relation::from_rows(
            schema,
            vec![
                vec![Value::str("ax"), Value::Int(2004), Value::Int(10)],
                vec![Value::str("ax"), Value::Int(2004), Value::Int(20)],
                vec![Value::str("ax"), Value::Int(2005), Value::Int(5)],
                vec![Value::str("ay"), Value::Int(2004), Value::Int(7)],
            ],
        )
        .unwrap()
    }

    #[test]
    fn count_star_per_group() {
        let r = pubs();
        let out = aggregate(&r, &[0, 1], &[AggSpec::count_star()]).unwrap().relation;
        assert_eq!(out.num_rows(), 3);
        assert_eq!(out.schema().names(), vec!["author", "year", "count(*)"]);
        // (ax, 2004) appears first and has count 2.
        assert_eq!(out.value(0, 2), Value::Int(2));
        assert_eq!(out.value(1, 2), Value::Int(1));
    }

    #[test]
    fn multiple_aggregates_single_pass() {
        let r = pubs();
        let out = aggregate(
            &r,
            &[0],
            &[
                AggSpec::count_star(),
                AggSpec::over(AggFunc::Sum, 2),
                AggSpec::over(AggFunc::Min, 2),
                AggSpec::over(AggFunc::Max, 2),
                AggSpec::over(AggFunc::Avg, 2),
            ],
        )
        .unwrap()
        .relation;
        assert_eq!(out.num_rows(), 2);
        // ax: 3 rows, cites 10+20+5
        assert_eq!(out.value(0, 1), Value::Int(3));
        assert_eq!(out.value(0, 2), Value::Float(35.0));
        assert_eq!(out.value(0, 3), Value::Float(5.0));
        assert_eq!(out.value(0, 4), Value::Float(20.0));
        assert_eq!(out.value(0, 5), Value::Float(35.0 / 3.0));
    }

    #[test]
    fn group_on_all_attrs() {
        let r = pubs();
        let out = aggregate(&r, &[0, 1, 2], &[AggSpec::count_star()]).unwrap();
        assert_eq!(out.num_groups, 4);
    }

    #[test]
    fn empty_group_list_is_single_group() {
        let r = pubs();
        let out = aggregate(&r, &[], &[AggSpec::count_star()]).unwrap().relation;
        assert_eq!(out.num_rows(), 1);
        assert_eq!(out.value(0, 0), Value::Int(4));
    }

    #[test]
    fn rejects_non_numeric_sum() {
        let r = pubs();
        let err = aggregate(&r, &[1], &[AggSpec::over(AggFunc::Sum, 0)]);
        assert!(matches!(err, Err(DataError::NonNumericAggregate(_))));
    }

    #[test]
    fn rejects_empty_agg_list() {
        let r = pubs();
        assert!(aggregate(&r, &[0], &[]).is_err());
    }

    #[test]
    fn row_count_column() {
        let r = pubs();
        let out =
            aggregate_with_row_count(&r, &[0], &[AggSpec::over(AggFunc::Sum, 2)]).unwrap().relation;
        let rows_col = out.schema().attr_id("__rows").unwrap();
        assert_eq!(out.value(0, rows_col), Value::Int(3));
        assert_eq!(out.value(1, rows_col), Value::Int(1));
    }

    #[test]
    fn empty_input_produces_empty_output() {
        let r = Relation::new(pubs().schema().clone());
        let out = aggregate(&r, &[0], &[AggSpec::count_star()]).unwrap();
        assert_eq!(out.num_groups, 0);
    }
}
