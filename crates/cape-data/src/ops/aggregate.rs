//! Hash group-by aggregation with multi-aggregate evaluation in one scan.
//!
//! The mining optimizations of the paper ("one query for all patterns
//! sharing F and V", "one query per F∪V") rely on evaluating *all*
//! aggregate calls of interest in a single pass; [`aggregate`] supports an
//! arbitrary list of [`AggSpec`]s.

use crate::agg::{Accumulator, AggSpec};
use crate::error::{DataError, Result};
use crate::relation::Relation;
use crate::schema::AttrId;
use crate::value::{Value, ValueType};
use std::collections::HashMap;

/// Result of a group-by: the output relation plus bookkeeping that mining
/// uses (number of groups = `|π_G(R)|`, used for FD discovery).
#[derive(Debug, Clone)]
pub struct GroupByResult {
    /// Output relation: group-by columns followed by one column per aggregate.
    pub relation: Relation,
    /// Number of distinct groups (`relation.num_rows()`, kept for clarity).
    pub num_groups: usize,
}

/// `γ_{G, aggs}(R)`: hash aggregation.
///
/// The output schema is the group-by attributes (in the order given)
/// followed by one column per aggregate, named like `count(*)` / `sum(x)`.
/// Group order is the order of first appearance (deterministic).
pub fn aggregate(rel: &Relation, group: &[AttrId], aggs: &[AggSpec]) -> Result<GroupByResult> {
    aggregate_impl(rel, group, aggs, false)
}

/// Like [`aggregate`] but additionally appends a trailing `__rows` column
/// holding each group's raw row count; mining uses it to evaluate local
/// support without requiring `count(*)` among the requested aggregates.
pub fn aggregate_with_row_count(
    rel: &Relation,
    group: &[AttrId],
    aggs: &[AggSpec],
) -> Result<GroupByResult> {
    aggregate_impl(rel, group, aggs, true)
}

fn aggregate_impl(
    rel: &Relation,
    group: &[AttrId],
    aggs: &[AggSpec],
    with_rows: bool,
) -> Result<GroupByResult> {
    let mut span = cape_obs::span("data.group_by");
    span.add("rows_in", rel.num_rows() as u64);
    if aggs.is_empty() && !with_rows {
        return Err(DataError::EmptyInput("aggregate list"));
    }
    for spec in aggs {
        if let Some(a) = spec.attr {
            let attr = rel.schema().attr(a)?;
            if spec.func.requires_numeric() && !attr.value_type().is_numeric() {
                return Err(DataError::NonNumericAggregate(attr.name().to_string()));
            }
        }
    }

    // Output schema.
    let mut schema = rel.schema().project(group)?;
    for spec in aggs {
        let attr_name = match spec.attr {
            Some(a) => Some(rel.schema().attr(a)?.name().to_string()),
            None => None,
        };
        let name = spec.output_name(attr_name.as_deref());
        let ty = match spec.func {
            crate::agg::AggFunc::Count => ValueType::Int,
            _ => ValueType::Float,
        };
        schema.push(crate::schema::Attribute::new(name, ty))?;
    }
    if with_rows {
        schema.push(crate::schema::Attribute::new("__rows", ValueType::Int))?;
    }

    // Accumulate.
    let mut groups: HashMap<Vec<Value>, usize> = HashMap::new();
    let mut keys: Vec<Vec<Value>> = Vec::new();
    let mut accs: Vec<Vec<Accumulator>> = Vec::new();
    let mut row_counts: Vec<u64> = Vec::new();

    // The key lookup is the hot path: reuse one scratch key per row and
    // only allocate a persistent copy when a new group is first seen
    // (hits — the common case — allocate nothing).
    let mut scratch: Vec<Value> = Vec::with_capacity(group.len());
    for i in 0..rel.num_rows() {
        scratch.clear();
        for &g in group {
            scratch.push(rel.value(i, g).clone());
        }
        let slot = match groups.get(&scratch) {
            Some(&s) => s,
            None => {
                let s = accs.len();
                groups.insert(scratch.clone(), s);
                keys.push(scratch.clone());
                accs.push(aggs.iter().map(|sp| Accumulator::new(sp.func)).collect());
                row_counts.push(0);
                s
            }
        };
        row_counts[slot] += 1;
        for (acc, spec) in accs[slot].iter_mut().zip(aggs) {
            let value = spec.attr.map(|a| rel.value(i, a));
            acc.update(value)?;
        }
    }

    // Materialize.
    let mut out = Relation::with_capacity(schema, keys.len());
    for (slot, key) in keys.into_iter().enumerate() {
        let mut row = key;
        for acc in &accs[slot] {
            row.push(acc.finish());
        }
        if with_rows {
            row.push(Value::Int(row_counts[slot] as i64));
        }
        out.push_row(row)?;
    }
    let num_groups = out.num_rows();
    span.add("groups_out", num_groups as u64);
    Ok(GroupByResult { relation: out, num_groups })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::agg::AggFunc;
    use crate::schema::Schema;

    fn pubs() -> Relation {
        let schema = Schema::new([
            ("author", ValueType::Str),
            ("year", ValueType::Int),
            ("cites", ValueType::Int),
        ])
        .unwrap();
        Relation::from_rows(
            schema,
            vec![
                vec![Value::str("ax"), Value::Int(2004), Value::Int(10)],
                vec![Value::str("ax"), Value::Int(2004), Value::Int(20)],
                vec![Value::str("ax"), Value::Int(2005), Value::Int(5)],
                vec![Value::str("ay"), Value::Int(2004), Value::Int(7)],
            ],
        )
        .unwrap()
    }

    #[test]
    fn count_star_per_group() {
        let r = pubs();
        let out = aggregate(&r, &[0, 1], &[AggSpec::count_star()]).unwrap().relation;
        assert_eq!(out.num_rows(), 3);
        assert_eq!(out.schema().names(), vec!["author", "year", "count(*)"]);
        // (ax, 2004) appears first and has count 2.
        assert_eq!(out.value(0, 2), &Value::Int(2));
        assert_eq!(out.value(1, 2), &Value::Int(1));
    }

    #[test]
    fn multiple_aggregates_single_pass() {
        let r = pubs();
        let out = aggregate(
            &r,
            &[0],
            &[
                AggSpec::count_star(),
                AggSpec::over(AggFunc::Sum, 2),
                AggSpec::over(AggFunc::Min, 2),
                AggSpec::over(AggFunc::Max, 2),
                AggSpec::over(AggFunc::Avg, 2),
            ],
        )
        .unwrap()
        .relation;
        assert_eq!(out.num_rows(), 2);
        // ax: 3 rows, cites 10+20+5
        assert_eq!(out.value(0, 1), &Value::Int(3));
        assert_eq!(out.value(0, 2), &Value::Float(35.0));
        assert_eq!(out.value(0, 3), &Value::Float(5.0));
        assert_eq!(out.value(0, 4), &Value::Float(20.0));
        assert_eq!(out.value(0, 5), &Value::Float(35.0 / 3.0));
    }

    #[test]
    fn group_on_all_attrs() {
        let r = pubs();
        let out = aggregate(&r, &[0, 1, 2], &[AggSpec::count_star()]).unwrap();
        assert_eq!(out.num_groups, 4);
    }

    #[test]
    fn empty_group_list_is_single_group() {
        let r = pubs();
        let out = aggregate(&r, &[], &[AggSpec::count_star()]).unwrap().relation;
        assert_eq!(out.num_rows(), 1);
        assert_eq!(out.value(0, 0), &Value::Int(4));
    }

    #[test]
    fn rejects_non_numeric_sum() {
        let r = pubs();
        let err = aggregate(&r, &[1], &[AggSpec::over(AggFunc::Sum, 0)]);
        assert!(matches!(err, Err(DataError::NonNumericAggregate(_))));
    }

    #[test]
    fn rejects_empty_agg_list() {
        let r = pubs();
        assert!(aggregate(&r, &[0], &[]).is_err());
    }

    #[test]
    fn row_count_column() {
        let r = pubs();
        let out =
            aggregate_with_row_count(&r, &[0], &[AggSpec::over(AggFunc::Sum, 2)]).unwrap().relation;
        let rows_col = out.schema().attr_id("__rows").unwrap();
        assert_eq!(out.value(0, rows_col), &Value::Int(3));
        assert_eq!(out.value(1, rows_col), &Value::Int(1));
    }

    #[test]
    fn empty_input_produces_empty_output() {
        let r = Relation::new(pubs().schema().clone());
        let out = aggregate(&r, &[0], &[AggSpec::count_star()]).unwrap();
        assert_eq!(out.num_groups, 0);
    }
}
