//! A CUBE-style operator: aggregate over every subset of a dimension set.
//!
//! SQL's `CUBE BY` evaluates one aggregation per subset of the group-by
//! attributes in a single statement. We emulate it by maintaining one hash
//! table per admissible subset during a *single scan* of the input — the
//! same cost profile (shared scan, per-subset hash maintenance, group count
//! exponential in the number of dimensions) that makes the paper's CUBE
//! mining variant cheaper than NAIVE but more expensive than SHARE-GRP.

use crate::agg::{Accumulator, AggSpec};
use crate::error::Result;
use crate::relation::Relation;
use crate::schema::AttrId;
use crate::value::{Value, ValueType};
use std::collections::HashMap;

/// One grouping of the cube: the dimension subset and its aggregated slice.
#[derive(Debug, Clone)]
pub struct CubeSlice {
    /// The group-by attributes (ids into the *input* schema) of this slice.
    pub dims: Vec<AttrId>,
    /// Aggregated relation: `dims` columns, aggregate columns, then `__rows`.
    pub relation: Relation,
}

/// Evaluate the cube over all subsets `S ⊆ dims` with
/// `min_size ≤ |S| ≤ max_size`, computing every aggregate in `aggs` plus a
/// trailing `__rows` raw-count column, in one scan of `rel`.
///
/// This corresponds to the paper's `CUBE BY` + `GROUPING()` filter that
/// discards groupings outside the pattern-size bound ψ.
pub fn cube(
    rel: &Relation,
    dims: &[AttrId],
    min_size: usize,
    max_size: usize,
    aggs: &[AggSpec],
) -> Result<Vec<CubeSlice>> {
    let mut span = cape_obs::span("data.cube");
    span.add("rows_in", rel.num_rows() as u64);
    let subsets = subsets_in_range(dims, min_size, max_size);
    span.add("slices_out", subsets.len() as u64);

    struct SliceAcc {
        dims: Vec<AttrId>,
        groups: HashMap<Vec<Value>, usize>,
        keys: Vec<Vec<Value>>,
        accs: Vec<Vec<Accumulator>>,
        rows: Vec<u64>,
    }
    let mut slices: Vec<SliceAcc> = subsets
        .into_iter()
        .map(|dims| SliceAcc {
            dims,
            groups: HashMap::new(),
            keys: Vec::new(),
            accs: Vec::new(),
            rows: Vec::new(),
        })
        .collect();

    // Single shared scan; one reused scratch key avoids a per-row
    // allocation in every slice (same optimization as `aggregate`).
    let mut scratch: Vec<Value> = Vec::new();
    for i in 0..rel.num_rows() {
        for slice in &mut slices {
            scratch.clear();
            for &d in &slice.dims {
                scratch.push(rel.value(i, d).clone());
            }
            let slot = match slice.groups.get(&scratch) {
                Some(&s) => s,
                None => {
                    slice.keys.push(scratch.clone());
                    slice.accs.push(aggs.iter().map(|s| Accumulator::new(s.func)).collect());
                    slice.rows.push(0);
                    let s = slice.accs.len() - 1;
                    slice.groups.insert(scratch.clone(), s);
                    s
                }
            };
            slice.rows[slot] += 1;
            for (acc, spec) in slice.accs[slot].iter_mut().zip(aggs) {
                acc.update(spec.attr.map(|a| rel.value(i, a)).as_ref())?;
            }
        }
    }

    // Materialize each slice.
    let mut out = Vec::with_capacity(slices.len());
    for slice in slices {
        let mut schema = rel.schema().project(&slice.dims)?;
        for spec in aggs {
            let attr_name = match spec.attr {
                Some(a) => Some(rel.schema().attr(a)?.name().to_string()),
                None => None,
            };
            schema.push(crate::schema::Attribute::new(
                spec.output_name(attr_name.as_deref()),
                match spec.func {
                    crate::agg::AggFunc::Count => ValueType::Int,
                    _ => ValueType::Float,
                },
            ))?;
        }
        schema.push(crate::schema::Attribute::new("__rows", ValueType::Int))?;

        let mut relation = Relation::with_capacity(schema, slice.keys.len());
        for (slot, key) in slice.keys.into_iter().enumerate() {
            let mut row = key;
            for acc in &slice.accs[slot] {
                row.push(acc.finish());
            }
            row.push(Value::Int(slice.rows[slot] as i64));
            relation.push_row(row)?;
        }
        out.push(CubeSlice { dims: slice.dims, relation });
    }
    Ok(out)
}

/// All subsets of `dims` whose size lies in `[min_size, max_size]`,
/// enumerated in increasing size then lexicographic order.
pub(crate) fn subsets_in_range(
    dims: &[AttrId],
    min_size: usize,
    max_size: usize,
) -> Vec<Vec<AttrId>> {
    fn combos(
        dims: &[AttrId],
        start: usize,
        left: usize,
        cur: &mut Vec<AttrId>,
        out: &mut Vec<Vec<AttrId>>,
    ) {
        if left == 0 {
            out.push(cur.clone());
            return;
        }
        // Not enough elements remain to complete the combination.
        if dims.len().saturating_sub(start) < left {
            return;
        }
        for i in start..=dims.len() - left {
            cur.push(dims[i]);
            combos(dims, i + 1, left - 1, cur, out);
            cur.pop();
        }
    }
    let mut out = Vec::new();
    for size in min_size..=max_size.min(dims.len()) {
        combos(dims, 0, size, &mut Vec::new(), &mut out);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::agg::AggFunc;
    use crate::schema::Schema;

    fn rel() -> Relation {
        let schema =
            Schema::new([("a", ValueType::Str), ("b", ValueType::Int), ("x", ValueType::Int)])
                .unwrap();
        Relation::from_rows(
            schema,
            vec![
                vec![Value::str("p"), Value::Int(1), Value::Int(10)],
                vec![Value::str("p"), Value::Int(2), Value::Int(20)],
                vec![Value::str("q"), Value::Int(1), Value::Int(30)],
            ],
        )
        .unwrap()
    }

    #[test]
    fn subset_enumeration() {
        let subsets = subsets_in_range(&[0, 1, 2], 1, 2);
        assert_eq!(subsets, vec![vec![0], vec![1], vec![2], vec![0, 1], vec![0, 2], vec![1, 2],]);
        assert_eq!(subsets_in_range(&[0, 1], 1, 5).len(), 3);
        assert_eq!(subsets_in_range(&[0, 1, 2, 3], 2, 2).len(), 6);
    }

    #[test]
    fn cube_matches_individual_group_bys() {
        let r = rel();
        let slices = cube(&r, &[0, 1], 1, 2, &[AggSpec::over(AggFunc::Sum, 2)]).unwrap();
        assert_eq!(slices.len(), 3); // {a}, {b}, {a,b}
        let by_a = &slices[0];
        assert_eq!(by_a.dims, vec![0]);
        assert_eq!(by_a.relation.num_rows(), 2);
        // p sums to 30, q to 30
        assert_eq!(by_a.relation.value(0, 1), Value::Float(30.0));
        let by_ab = &slices[2];
        assert_eq!(by_ab.relation.num_rows(), 3);
        // __rows column is last
        let rows_col = by_ab.relation.schema().attr_id("__rows").unwrap();
        assert_eq!(by_ab.relation.value(0, rows_col), Value::Int(1));
    }

    #[test]
    fn cube_agrees_with_aggregate_operator() {
        let r = rel();
        let slices = cube(&r, &[0, 1], 1, 2, &[AggSpec::count_star()]).unwrap();
        for slice in &slices {
            let direct =
                crate::ops::aggregate_with_row_count(&r, &slice.dims, &[AggSpec::count_star()])
                    .unwrap()
                    .relation;
            assert_eq!(slice.relation.num_rows(), direct.num_rows());
        }
    }

    #[test]
    fn empty_input() {
        let r = Relation::new(rel().schema().clone());
        let slices = cube(&r, &[0, 1], 1, 2, &[AggSpec::count_star()]).unwrap();
        assert!(slices.iter().all(|s| s.relation.is_empty()));
    }
}
