//! Projection (`π`) and duplicate elimination.

use crate::error::Result;
use crate::relation::Relation;
use crate::schema::AttrId;
use crate::value::Value;
use std::collections::HashSet;

/// `π_cols(rel)` without duplicate elimination (bag projection).
pub fn project(rel: &Relation, cols: &[AttrId]) -> Result<Relation> {
    let schema = rel.schema().project(cols)?;
    let mut out = Relation::with_capacity(schema, rel.num_rows());
    for i in 0..rel.num_rows() {
        out.push_row(rel.row_project(i, cols))?;
    }
    Ok(out)
}

/// Set-semantics duplicate elimination over whole rows, preserving first
/// occurrence order.
pub fn distinct(rel: &Relation) -> Relation {
    let mut seen: HashSet<Vec<Value>> = HashSet::new();
    let mut indices = Vec::new();
    for i in 0..rel.num_rows() {
        if seen.insert(rel.row(i)) {
            indices.push(i);
        }
    }
    rel.take(&indices)
}

/// `π_cols(rel)` with duplicate elimination — the paper's `frag(R, P) = π_F(R)`.
pub fn distinct_project(rel: &Relation, cols: &[AttrId]) -> Result<Relation> {
    let mut span = cape_obs::span("data.distinct");
    span.add("rows_in", rel.num_rows() as u64);
    let schema = rel.schema().project(cols)?;
    let mut seen: HashSet<Vec<Value>> = HashSet::new();
    let mut out = Relation::new(schema);
    for i in 0..rel.num_rows() {
        let row = rel.row_project(i, cols);
        if seen.insert(row.clone()) {
            out.push_row(row)?;
        }
    }
    span.add("rows_out", out.num_rows() as u64);
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Schema;
    use crate::value::{Value, ValueType};

    fn rel() -> Relation {
        let schema = Schema::new([
            ("author", ValueType::Str),
            ("year", ValueType::Int),
            ("venue", ValueType::Str),
        ])
        .unwrap();
        Relation::from_rows(
            schema,
            vec![
                vec![Value::str("ax"), Value::Int(2004), Value::str("KDD")],
                vec![Value::str("ax"), Value::Int(2004), Value::str("KDD")],
                vec![Value::str("ax"), Value::Int(2005), Value::str("ICDE")],
                vec![Value::str("ay"), Value::Int(2004), Value::str("KDD")],
            ],
        )
        .unwrap()
    }

    #[test]
    fn bag_projection_keeps_duplicates() {
        let r = rel();
        let p = project(&r, &[0]).unwrap();
        assert_eq!(p.num_rows(), 4);
        assert_eq!(p.schema().names(), vec!["author"]);
    }

    #[test]
    fn distinct_project_dedups() {
        let r = rel();
        let p = distinct_project(&r, &[0]).unwrap();
        assert_eq!(p.num_rows(), 2);
        let p2 = distinct_project(&r, &[0, 1]).unwrap();
        assert_eq!(p2.num_rows(), 3);
    }

    #[test]
    fn distinct_whole_rows() {
        let r = rel();
        let d = distinct(&r);
        assert_eq!(d.num_rows(), 3);
        // first-occurrence order preserved
        assert_eq!(d.value(0, 1), Value::Int(2004));
        assert_eq!(d.value(1, 1), Value::Int(2005));
    }

    #[test]
    fn projection_validates_columns() {
        let r = rel();
        assert!(project(&r, &[7]).is_err());
    }

    #[test]
    fn reordering_projection() {
        let r = rel();
        let p = project(&r, &[2, 0]).unwrap();
        assert_eq!(p.schema().names(), vec!["venue", "author"]);
        assert_eq!(p.row(0), vec![Value::str("KDD"), Value::str("ax")]);
    }
}
