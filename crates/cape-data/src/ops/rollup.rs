//! Roll-up aggregation: derive `γ_{G, aggs}` from a materialized
//! `γ_{G', aggs'}` with `G ⊆ G'` instead of rescanning the base relation.
//!
//! Sum, count, min and max compose across the parent's groups; avg
//! re-derives from a parent sum + count pair; and aggregates over an
//! attribute that is one of the parent's *dimensions* derive from the key
//! value weighted by the parent's `__rows` count. The output is
//! row-for-row identical to [`crate::ops::aggregate_with_row_count`] on
//! the base relation — same schema, same first-appearance group order —
//! because the parent's groups are themselves in base first-appearance
//! order, so re-grouping them in order reproduces it.

use crate::agg::{AggFunc, AggSpec};
use crate::error::{DataError, Result};
use crate::ops::aggregate::grouped_output_schema;
use crate::ops::group_index::group_key_index;
use crate::ops::GroupByResult;
use crate::relation::Relation;
use crate::schema::{AttrId, Schema};
use crate::value::Value;

/// How one child aggregate derives from the parent materialization.
/// Column indices point into the parent relation.
#[derive(Debug, Clone, Copy)]
enum RollOp {
    /// Integer sum of a parent column (`count` composition, `__rows`).
    SumInt(usize),
    /// Float sum of a parent column (`sum` composition); nulls skipped.
    SumFloat(usize),
    /// Min of a parent column (agg column or dimension key); nulls skipped.
    Min(usize),
    /// Max of a parent column (agg column or dimension key); nulls skipped.
    Max(usize),
    /// Avg from a parent `sum(a)` + `count(a)` column pair.
    AvgFromCols { sum: usize, cnt: usize },
    /// `sum(a)` where `a` is a parent dimension: Σ key × `__rows`.
    SumFromKey { key: usize, rows: usize },
    /// `count(a)` where `a` is a parent dimension: Σ `__rows` over
    /// non-null keys.
    CountFromKey { key: usize, rows: usize },
    /// `avg(a)` where `a` is a parent dimension: weighted mean of keys.
    AvgFromKey { key: usize, rows: usize },
}

/// Running state for one child aggregate of one child group.
#[derive(Debug, Clone, Copy)]
enum RollAcc {
    Int(i64),
    Float(f64),
    MinMax(Option<f64>),
    Avg { sum: f64, cnt: i64 },
}

/// Plan how every child aggregate derives from the parent's columns.
/// `None` when any aggregate is underivable (e.g. avg without a matching
/// sum+count pair, or over an attribute absent from the parent).
fn plan_rolls(
    parent_dims: &[AttrId],
    parent_aggs: &[AggSpec],
    child_aggs: &[AggSpec],
    rows_col: usize,
) -> Option<Vec<RollOp>> {
    let pcol = |func: AggFunc, attr: Option<AttrId>| {
        parent_aggs
            .iter()
            .position(|p| p.func == func && p.attr == attr)
            .map(|i| parent_dims.len() + i)
    };
    let kcol = |a: AttrId| parent_dims.iter().position(|&d| d == a);
    child_aggs
        .iter()
        .map(|spec| match (spec.func, spec.attr) {
            (AggFunc::Count, None) => Some(RollOp::SumInt(rows_col)),
            (AggFunc::Count, Some(a)) => pcol(AggFunc::Count, Some(a))
                .map(RollOp::SumInt)
                .or_else(|| kcol(a).map(|key| RollOp::CountFromKey { key, rows: rows_col })),
            (AggFunc::Sum, Some(a)) => pcol(AggFunc::Sum, Some(a))
                .map(RollOp::SumFloat)
                .or_else(|| kcol(a).map(|key| RollOp::SumFromKey { key, rows: rows_col })),
            (AggFunc::Min, Some(a)) => {
                pcol(AggFunc::Min, Some(a)).or_else(|| kcol(a)).map(RollOp::Min)
            }
            (AggFunc::Max, Some(a)) => {
                pcol(AggFunc::Max, Some(a)).or_else(|| kcol(a)).map(RollOp::Max)
            }
            (AggFunc::Avg, Some(a)) => {
                match (pcol(AggFunc::Sum, Some(a)), pcol(AggFunc::Count, Some(a))) {
                    (Some(sum), Some(cnt)) => Some(RollOp::AvgFromCols { sum, cnt }),
                    _ => kcol(a).map(|key| RollOp::AvgFromKey { key, rows: rows_col }),
                }
            }
            (_, None) => None,
        })
        .collect()
}

/// Whether every aggregate in `child_aggs` (over group set `child_dims`)
/// can be derived from a parent materialized over `parent_dims` with
/// `parent_aggs` columns (and a `__rows` count).
pub fn rollup_supported(
    parent_dims: &[AttrId],
    parent_aggs: &[AggSpec],
    child_dims: &[AttrId],
    child_aggs: &[AggSpec],
) -> bool {
    child_dims.iter().all(|d| parent_dims.contains(d))
        && plan_rolls(parent_dims, parent_aggs, child_aggs, parent_dims.len() + parent_aggs.len())
            .is_some()
}

/// Derive `γ_{child_dims, child_aggs}` + `__rows` of the base relation
/// from the `parent` materialization (`parent_dims…, parent_aggs…,
/// __rows` layout, as produced by `aggregate_with_row_count` or `cube`).
///
/// `base_schema` is the base relation's schema, used only to build the
/// output schema so it is byte-identical to a direct aggregation.
pub fn rollup_aggregate(
    base_schema: &Schema,
    parent: &Relation,
    parent_dims: &[AttrId],
    parent_aggs: &[AggSpec],
    child_dims: &[AttrId],
    child_aggs: &[AggSpec],
) -> Result<GroupByResult> {
    let mut span = cape_obs::span("data.rollup");
    span.add("rows_in", parent.num_rows() as u64);
    let rows_col = parent_dims.len() + parent_aggs.len();
    let rolls = plan_rolls(parent_dims, parent_aggs, child_aggs, rows_col)
        .ok_or(DataError::Unsupported("child aggregate not derivable from parent"))?;
    let group_cols: Vec<usize> = child_dims
        .iter()
        .map(|d| {
            parent_dims
                .iter()
                .position(|p| p == d)
                .ok_or(DataError::Unsupported("child dims not a subset of parent dims"))
        })
        .collect::<Result<_>>()?;

    let schema = grouped_output_schema(base_schema, child_dims, child_aggs, true)?;

    // Re-group the parent's rows (packed kernel again: the parent's dim
    // columns are exactly the child's group keys).
    let idx = group_key_index(parent, &group_cols);
    let num_groups = idx.num_groups();
    let mut accs: Vec<Vec<RollAcc>> = (0..num_groups)
        .map(|_| {
            rolls
                .iter()
                .map(|r| match r {
                    RollOp::SumInt(_) | RollOp::CountFromKey { .. } => RollAcc::Int(0),
                    RollOp::SumFloat(_) | RollOp::SumFromKey { .. } => RollAcc::Float(0.0),
                    RollOp::Min(_) | RollOp::Max(_) => RollAcc::MinMax(None),
                    RollOp::AvgFromCols { .. } | RollOp::AvgFromKey { .. } => {
                        RollAcc::Avg { sum: 0.0, cnt: 0 }
                    }
                })
                .collect()
        })
        .collect();
    let mut row_counts: Vec<i64> = vec![0; num_groups];

    let int_at = |i: usize, c: usize| -> Result<i64> {
        parent
            .value(i, c)
            .as_i64()
            .ok_or(DataError::TypeMismatch { expected: "int", actual: "other" })
    };
    let num_at = |i: usize, c: usize| -> Result<f64> {
        parent
            .value(i, c)
            .as_f64()
            .ok_or(DataError::TypeMismatch { expected: "numeric", actual: "other" })
    };

    for i in 0..parent.num_rows() {
        let slot = idx.slots[i] as usize;
        row_counts[slot] += int_at(i, rows_col)?;
        for (acc, roll) in accs[slot].iter_mut().zip(&rolls) {
            match (*roll, acc) {
                (RollOp::SumInt(c), RollAcc::Int(n)) => *n += int_at(i, c)?,
                (RollOp::SumFloat(c), RollAcc::Float(s)) => {
                    if !parent.value(i, c).is_null() {
                        *s += num_at(i, c)?;
                    }
                }
                (RollOp::Min(c), RollAcc::MinMax(m)) => {
                    if !parent.value(i, c).is_null() {
                        let x = num_at(i, c)?;
                        *m = Some(m.map_or(x, |cur| cur.min(x)));
                    }
                }
                (RollOp::Max(c), RollAcc::MinMax(m)) => {
                    if !parent.value(i, c).is_null() {
                        let x = num_at(i, c)?;
                        *m = Some(m.map_or(x, |cur| cur.max(x)));
                    }
                }
                (RollOp::AvgFromCols { sum, cnt }, RollAcc::Avg { sum: s, cnt: n }) => {
                    // Parent sum is Float(0.0) and count is Int(0) for an
                    // all-null parent group, so both fold in harmlessly.
                    *s += num_at(i, sum)?;
                    *n += int_at(i, cnt)?;
                }
                (RollOp::SumFromKey { key, rows }, RollAcc::Float(s)) => {
                    if !parent.value(i, key).is_null() {
                        *s += num_at(i, key)? * int_at(i, rows)? as f64;
                    }
                }
                (RollOp::CountFromKey { key, rows }, RollAcc::Int(n)) => {
                    if !parent.value(i, key).is_null() {
                        *n += int_at(i, rows)?;
                    }
                }
                (RollOp::AvgFromKey { key, rows }, RollAcc::Avg { sum: s, cnt: n }) => {
                    if !parent.value(i, key).is_null() {
                        let w = int_at(i, rows)?;
                        *s += num_at(i, key)? * w as f64;
                        *n += w;
                    }
                }
                _ => unreachable!("accumulator/op mismatch"),
            }
        }
    }

    // Materialize in first-appearance order, mirroring `aggregate`'s
    // finish semantics (sum of nothing = 0.0, min/max/avg of nothing =
    // Null, counts are Int).
    let mut out = Relation::with_capacity(schema, num_groups);
    for slot in 0..num_groups {
        let mut row = parent.row_project(idx.first_rows[slot] as usize, &group_cols);
        for acc in &accs[slot] {
            row.push(match *acc {
                RollAcc::Int(n) => Value::Int(n),
                RollAcc::Float(s) => Value::Float(s),
                RollAcc::MinMax(m) => m.map_or(Value::Null, Value::Float),
                RollAcc::Avg { sum, cnt } => {
                    if cnt == 0 {
                        Value::Null
                    } else {
                        Value::Float(sum / cnt as f64)
                    }
                }
            });
        }
        row.push(Value::Int(row_counts[slot]));
        out.push_row(row)?;
    }
    span.add("groups_out", num_groups as u64);
    Ok(GroupByResult { relation: out, num_groups })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::aggregate_with_row_count;
    use crate::schema::Schema;
    use crate::value::ValueType;

    fn base() -> Relation {
        let schema = Schema::new([
            ("a", ValueType::Str),
            ("b", ValueType::Int),
            ("c", ValueType::Str),
            ("x", ValueType::Int),
        ])
        .unwrap();
        let mut rel = Relation::new(schema);
        for i in 0..60i64 {
            rel.push_row(vec![
                Value::str(format!("a{}", i % 4)),
                Value::Int(i % 5),
                Value::str(format!("c{}", i % 3)),
                if i % 7 == 0 { Value::Null } else { Value::Int(i % 11 - 5) },
            ])
            .unwrap();
        }
        rel
    }

    fn all_aggs() -> Vec<AggSpec> {
        vec![
            AggSpec::count_star(),
            AggSpec::over(AggFunc::Count, 3),
            AggSpec::over(AggFunc::Sum, 3),
            AggSpec::over(AggFunc::Min, 3),
            AggSpec::over(AggFunc::Max, 3),
            AggSpec::over(AggFunc::Avg, 3),
        ]
    }

    #[test]
    fn rollup_matches_direct_aggregation() {
        let rel = base();
        let aggs = all_aggs();
        let parent = aggregate_with_row_count(&rel, &[0, 1, 2], &aggs).unwrap();
        for child_dims in [vec![0], vec![1], vec![2], vec![0, 1], vec![1, 2], vec![2, 0]] {
            assert!(rollup_supported(&[0, 1, 2], &aggs, &child_dims, &aggs));
            let rolled = rollup_aggregate(
                rel.schema(),
                &parent.relation,
                &[0, 1, 2],
                &aggs,
                &child_dims,
                &aggs,
            )
            .unwrap();
            let direct = aggregate_with_row_count(&rel, &child_dims, &aggs).unwrap();
            assert_eq!(rolled.num_groups, direct.num_groups, "dims {child_dims:?}");
            assert_eq!(
                rolled.relation.schema().names(),
                direct.relation.schema().names(),
                "dims {child_dims:?}"
            );
            for r in 0..direct.relation.num_rows() {
                for c in 0..direct.relation.schema().arity() {
                    let (got, want) = (rolled.relation.value(r, c), direct.relation.value(r, c));
                    match (got.as_f64(), want.as_f64()) {
                        (Some(g), Some(w)) => {
                            assert!((g - w).abs() < 1e-9, "[{r},{c}] got {got:?} want {want:?}")
                        }
                        _ => assert_eq!(got, want, "[{r},{c}] dims {child_dims:?}"),
                    }
                }
            }
        }
    }

    #[test]
    fn dimension_attr_aggregates_derive_from_keys() {
        // Aggregate over `b`, which is a dimension of the parent: sum,
        // count, min, max, avg must all derive from key × __rows.
        let rel = base();
        let b_aggs = vec![
            AggSpec::over(AggFunc::Sum, 1),
            AggSpec::over(AggFunc::Count, 1),
            AggSpec::over(AggFunc::Min, 1),
            AggSpec::over(AggFunc::Max, 1),
            AggSpec::over(AggFunc::Avg, 1),
        ];
        let parent = aggregate_with_row_count(&rel, &[0, 1], &[AggSpec::count_star()]).unwrap();
        assert!(rollup_supported(&[0, 1], &[AggSpec::count_star()], &[0], &b_aggs));
        let rolled = rollup_aggregate(
            rel.schema(),
            &parent.relation,
            &[0, 1],
            &[AggSpec::count_star()],
            &[0],
            &b_aggs,
        )
        .unwrap();
        let direct = aggregate_with_row_count(&rel, &[0], &b_aggs).unwrap();
        for r in 0..direct.relation.num_rows() {
            for c in 0..direct.relation.schema().arity() {
                let (got, want) = (rolled.relation.value(r, c), direct.relation.value(r, c));
                match (got.as_f64(), want.as_f64()) {
                    (Some(g), Some(w)) => assert!((g - w).abs() < 1e-9),
                    _ => assert_eq!(got, want),
                }
            }
        }
    }

    #[test]
    fn underivable_rollups_are_rejected() {
        let rel = base();
        // Parent has only count(*): avg(x) is not derivable (x is neither
        // a parent agg nor a parent dimension).
        assert!(!rollup_supported(
            &[0, 1],
            &[AggSpec::count_star()],
            &[0],
            &[AggSpec::over(AggFunc::Avg, 3)]
        ));
        // Child dims not a subset of parent dims.
        assert!(!rollup_supported(
            &[0, 1],
            &[AggSpec::count_star()],
            &[2],
            &[AggSpec::count_star()]
        ));
        let parent = aggregate_with_row_count(&rel, &[0, 1], &[AggSpec::count_star()]).unwrap();
        let err = rollup_aggregate(
            rel.schema(),
            &parent.relation,
            &[0, 1],
            &[AggSpec::count_star()],
            &[0],
            &[AggSpec::over(AggFunc::Avg, 3)],
        );
        assert!(matches!(err, Err(DataError::Unsupported(_))));
    }

    #[test]
    fn group_order_matches_first_appearance() {
        let rel = base();
        let aggs = vec![AggSpec::count_star()];
        let parent = aggregate_with_row_count(&rel, &[2, 0], &aggs).unwrap();
        let rolled =
            rollup_aggregate(rel.schema(), &parent.relation, &[2, 0], &aggs, &[0], &aggs).unwrap();
        let direct = aggregate_with_row_count(&rel, &[0], &aggs).unwrap();
        assert_eq!(rolled.relation, direct.relation);
    }
}
