//! Multi-key sorting and sorted-block utilities.
//!
//! ARP-MINE relies on sorting an aggregated result so that all tuples of a
//! fragment (`t[F] = f`) form one consecutive block; [`sorted_block_starts`]
//! recovers those block boundaries in a single scan.
//!
//! All kernels here read the typed column slabs directly
//! ([`crate::column::Column`]): comparators run on raw `i64`/`f64` words
//! and dictionary codes, rank computation dictionary-encodes through the
//! slab (string columns reuse their stored dict codes outright), and
//! block-boundary scans compare slab words instead of materialized
//! [`crate::value::Value`]s. Columns that degraded to `Mixed` fall back to
//! `Value`-level logic with identical semantics.

use crate::column::Column;
use crate::relation::Relation;
use crate::schema::AttrId;
use crate::value::Value;
use std::cmp::Ordering;
use std::collections::HashMap;

/// Compute the permutation that sorts `rel` by `keys` (lexicographic,
/// ascending, NULLs first). The sort is stable.
pub fn sort_perm(rel: &Relation, keys: &[AttrId]) -> Vec<usize> {
    let mut perm: Vec<usize> = (0..rel.num_rows()).collect();
    let cols: Vec<&Column> = keys.iter().map(|&k| rel.col(k)).collect();
    perm.sort_by(|&a, &b| {
        for col in &cols {
            match col.cmp_rows(a, b) {
                Ordering::Equal => continue,
                o => return o,
            }
        }
        Ordering::Equal
    });
    perm
}

/// Dense ranks of one column: `ranks[i]` is the 0-based position of row
/// `i`'s value in the sorted list of *distinct* values of column `col`.
/// Returns `(ranks, num_distinct)`. Two rows get the same rank iff their
/// values are equal under [`crate::value::Value`] equality, and ranks are
/// order-compatible with `Value`'s `Ord`, so multi-key sorts can compare
/// integer ranks instead of values.
pub fn column_ranks(rel: &Relation, col: AttrId) -> (Vec<u32>, u32) {
    let n = rel.num_rows();
    if n == 0 {
        return (vec![], 0);
    }
    match rel.col(col) {
        Column::Int(c) => {
            let mut map: HashMap<i64, u32> = HashMap::new();
            let mut distinct: Vec<i64> = Vec::new();
            let mut codes: Vec<u32> = Vec::with_capacity(n);
            let mut has_null = false;
            for i in 0..n {
                if c.nulls.get(i) {
                    has_null = true;
                    codes.push(u32::MAX);
                    continue;
                }
                let v = c.data[i];
                let code = *map.entry(v).or_insert_with(|| {
                    distinct.push(v);
                    (distinct.len() - 1) as u32
                });
                codes.push(code);
            }
            let mut order: Vec<u32> = (0..distinct.len() as u32).collect();
            order.sort_unstable_by_key(|&a| distinct[a as usize]);
            ranks_from_orderings(codes, &order, distinct.len(), has_null)
        }
        Column::Float(c) => {
            // Slab bits are canonical (one NaN, no -0.0), so bit-level
            // dedup equals Value equality.
            let mut map: HashMap<u64, u32> = HashMap::new();
            let mut distinct: Vec<f64> = Vec::new();
            let mut codes: Vec<u32> = Vec::with_capacity(n);
            let mut has_null = false;
            for i in 0..n {
                if c.nulls.get(i) {
                    has_null = true;
                    codes.push(u32::MAX);
                    continue;
                }
                let v = c.data[i];
                let code = *map.entry(v.to_bits()).or_insert_with(|| {
                    distinct.push(v);
                    (distinct.len() - 1) as u32
                });
                codes.push(code);
            }
            let mut order: Vec<u32> = (0..distinct.len() as u32).collect();
            order.sort_unstable_by(|&a, &b| distinct[a as usize].total_cmp(&distinct[b as usize]));
            ranks_from_orderings(codes, &order, distinct.len(), has_null)
        }
        Column::Str(c) => {
            // Dict codes are already a dictionary encoding; mark which
            // codes actually occur (the dict may hold strings that no
            // longer appear after a `take`) and sort only those.
            let dict_len = c.dict.len();
            let mut used = vec![false; dict_len];
            let mut has_null = false;
            for i in 0..n {
                if c.nulls.get(i) {
                    has_null = true;
                } else {
                    used[c.codes[i] as usize] = true;
                }
            }
            let mut order: Vec<u32> =
                (0..dict_len as u32).filter(|&cd| used[cd as usize]).collect();
            order.sort_unstable_by(|&a, &b| c.dict.value(a).cmp(c.dict.value(b)));
            let mut rank_of_code = vec![0u32; dict_len];
            let shift = has_null as u32;
            for (pos, &cd) in order.iter().enumerate() {
                rank_of_code[cd as usize] = pos as u32 + shift;
            }
            let ranks: Vec<u32> = (0..n)
                .map(|i| if c.nulls.get(i) { 0 } else { rank_of_code[c.codes[i] as usize] })
                .collect();
            (ranks, order.len() as u32 + shift)
        }
        Column::Mixed(values) => {
            // Generic Value-level path (identical to the pre-columnar
            // implementation, over owned values).
            let mut map: HashMap<&Value, u32> = HashMap::new();
            let mut distinct: Vec<&Value> = Vec::new();
            let mut codes: Vec<u32> = Vec::with_capacity(n);
            for v in values {
                let code = *map.entry(v).or_insert_with(|| {
                    distinct.push(v);
                    (distinct.len() - 1) as u32
                });
                codes.push(code);
            }
            let mut order: Vec<u32> = (0..distinct.len() as u32).collect();
            order.sort_unstable_by(|&a, &b| distinct[a as usize].cmp(distinct[b as usize]));
            let mut rank_of_code = vec![0u32; distinct.len()];
            let mut rank = 0u32;
            for (pos, &c) in order.iter().enumerate() {
                if pos > 0 && distinct[c as usize] != distinct[order[pos - 1] as usize] {
                    rank += 1;
                }
                rank_of_code[c as usize] = rank;
            }
            let ranks: Vec<u32> = codes.into_iter().map(|c| rank_of_code[c as usize]).collect();
            (ranks, rank + 1)
        }
    }
}

/// Shared tail of the typed rank paths: distinct values are strictly
/// distinct, so the rank of a code is its sort position (+1 when NULLs
/// occupy rank 0). Per-row code `u32::MAX` marks NULL.
fn ranks_from_orderings(
    codes: Vec<u32>,
    order: &[u32],
    num_values: usize,
    has_null: bool,
) -> (Vec<u32>, u32) {
    let shift = has_null as u32;
    let mut rank_of_code = vec![0u32; num_values];
    for (pos, &c) in order.iter().enumerate() {
        rank_of_code[c as usize] = pos as u32 + shift;
    }
    let ranks: Vec<u32> = codes
        .into_iter()
        .map(|c| if c == u32::MAX { 0 } else { rank_of_code[c as usize] })
        .collect();
    (ranks, order.len() as u32 + shift)
}

/// Return a copy of `rel` sorted by `keys` (the paper's
/// `SELECT * FROM D ORDER BY S`).
pub fn sort_by(rel: &Relation, keys: &[AttrId]) -> Relation {
    let mut span = cape_obs::span("data.sort");
    span.add("rows_in", rel.num_rows() as u64);
    let perm = sort_perm(rel, keys);
    rel.take(&perm)
}

/// Given a relation already sorted on `prefix`, return the start index of
/// each block of equal `prefix` values, plus a final sentinel equal to
/// `num_rows`. An empty relation yields `[0]`.
pub fn sorted_block_starts(rel: &Relation, prefix: &[AttrId]) -> Vec<usize> {
    let n = rel.num_rows();
    if n == 0 {
        return vec![0];
    }
    let mut starts = vec![0];
    for i in 1..n {
        if !rel.rows_equal_on(i, i - 1, prefix) {
            starts.push(i);
        }
    }
    starts.push(n);
    starts
}

/// Like [`sorted_block_starts`] but reading `rel` *through* a sort
/// permutation instead of requiring a materialized sorted copy: row `i` of
/// the virtual sorted relation is `rel`'s row `perm[i]`. An empty
/// permutation yields `[0]`.
pub fn perm_block_starts(rel: &Relation, perm: &[usize], prefix: &[AttrId]) -> Vec<usize> {
    let n = perm.len();
    if n == 0 {
        return vec![0];
    }
    let mut starts = vec![0];
    for i in 1..n {
        if !rel.rows_equal_on(perm[i], perm[i - 1], prefix) {
            starts.push(i);
        }
    }
    starts.push(n);
    starts
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Schema;
    use crate::value::{Value, ValueType};

    fn rel() -> Relation {
        let schema = Schema::new([
            ("venue", ValueType::Str),
            ("year", ValueType::Int),
            ("cnt", ValueType::Int),
        ])
        .unwrap();
        Relation::from_rows(
            schema,
            vec![
                vec![Value::str("VLDB"), Value::Int(2008), Value::Int(1)],
                vec![Value::str("KDD"), Value::Int(2007), Value::Int(2)],
                vec![Value::str("KDD"), Value::Int(2006), Value::Int(3)],
                vec![Value::str("VLDB"), Value::Int(2006), Value::Int(4)],
                vec![Value::str("KDD"), Value::Int(2006), Value::Int(5)],
            ],
        )
        .unwrap()
    }

    #[test]
    fn multi_key_sort() {
        let s = sort_by(&rel(), &[0, 1]);
        let years: Vec<i64> = (0..s.num_rows()).map(|i| s.value(i, 1).as_i64().unwrap()).collect();
        assert_eq!(years, vec![2006, 2006, 2007, 2006, 2008]);
        assert_eq!(s.value(0, 0), Value::str("KDD"));
        assert_eq!(s.value(4, 0), Value::str("VLDB"));
    }

    #[test]
    fn sort_is_stable() {
        // The two (KDD, 2006) rows must retain input order (cnt 3 before 5).
        let s = sort_by(&rel(), &[0, 1]);
        assert_eq!(s.value(0, 2), Value::Int(3));
        assert_eq!(s.value(1, 2), Value::Int(5));
    }

    #[test]
    fn block_starts() {
        let s = sort_by(&rel(), &[0]);
        let starts = sorted_block_starts(&s, &[0]);
        assert_eq!(starts, vec![0, 3, 5]); // KDD block of 3, VLDB block of 2
    }

    #[test]
    fn block_starts_on_empty_and_single() {
        let empty = Relation::new(rel().schema().clone());
        assert_eq!(sorted_block_starts(&empty, &[0]), vec![0]);
        let one = rel().take(&[0]);
        assert_eq!(sorted_block_starts(&one, &[0]), vec![0, 1]);
    }

    #[test]
    fn perm_block_starts_matches_materialized() {
        let r = rel();
        let perm = sort_perm(&r, &[0, 1]);
        let via_perm = perm_block_starts(&r, &perm, &[0]);
        let via_copy = sorted_block_starts(&r.take(&perm), &[0]);
        assert_eq!(via_perm, via_copy);
        assert_eq!(perm_block_starts(&r, &[], &[0]), vec![0]);
    }

    #[test]
    fn ranks_are_order_compatible() {
        let r = rel();
        for col in 0..3 {
            let (ranks, distinct) = column_ranks(&r, col);
            assert!(ranks.iter().all(|&x| x < distinct));
            for a in 0..r.num_rows() {
                for b in 0..r.num_rows() {
                    assert_eq!(
                        ranks[a].cmp(&ranks[b]),
                        r.value(a, col).cmp(&r.value(b, col)),
                        "col {col} rows {a},{b}"
                    );
                }
            }
        }
        let empty = Relation::new(rel().schema().clone());
        assert_eq!(column_ranks(&empty, 0), (vec![], 0));
    }

    #[test]
    fn ranks_with_nulls_and_floats() {
        let schema = Schema::new([("x", ValueType::Float), ("s", ValueType::Str)]).unwrap();
        let r = Relation::from_rows(
            schema,
            vec![
                vec![Value::Float(2.5), Value::Null],
                vec![Value::Null, Value::str("b")],
                vec![Value::Float(-1.0), Value::str("a")],
                vec![Value::Float(2.5), Value::str("b")],
            ],
        )
        .unwrap();
        for col in 0..2 {
            let (ranks, distinct) = column_ranks(&r, col);
            assert!(ranks.iter().all(|&x| x < distinct), "col {col}");
            for a in 0..r.num_rows() {
                for b in 0..r.num_rows() {
                    assert_eq!(
                        ranks[a].cmp(&ranks[b]),
                        r.value(a, col).cmp(&r.value(b, col)),
                        "col {col} rows {a},{b}"
                    );
                }
            }
        }
    }

    #[test]
    fn ranks_after_take_skip_unused_dict_entries() {
        let r = rel();
        // Drop every VLDB row; the shared dict still holds "VLDB".
        let kdd = r.take(&[1, 2, 4]);
        let (ranks, distinct) = column_ranks(&kdd, 0);
        assert_eq!(distinct, 1, "only KDD remains");
        assert!(ranks.iter().all(|&x| x == 0));
    }

    #[test]
    fn perm_matches_take() {
        let r = rel();
        let perm = sort_perm(&r, &[1]);
        let s = r.take(&perm);
        for i in 1..s.num_rows() {
            assert!(s.value(i - 1, 1) <= s.value(i, 1));
        }
    }
}
