//! Selection (`σ`) over relations.

use crate::pred::Predicate;
use crate::relation::Relation;

/// `σ_pred(rel)`: keep the rows satisfying the predicate.
pub fn select(rel: &Relation, pred: &Predicate) -> Relation {
    let mut span = cape_obs::span("data.select");
    span.add("rows_in", rel.num_rows() as u64);
    let indices: Vec<usize> = (0..rel.num_rows()).filter(|&i| pred.eval(rel, i)).collect();
    span.add("rows_out", indices.len() as u64);
    rel.take(&indices)
}

/// Selection by arbitrary closure over the row index.
pub fn filter<F: FnMut(&Relation, usize) -> bool>(rel: &Relation, mut keep: F) -> Relation {
    let mut span = cape_obs::span("data.select");
    span.add("rows_in", rel.num_rows() as u64);
    let indices: Vec<usize> = (0..rel.num_rows()).filter(|&i| keep(rel, i)).collect();
    span.add("rows_out", indices.len() as u64);
    rel.take(&indices)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Schema;
    use crate::value::{Value, ValueType};

    fn rel() -> Relation {
        let schema = Schema::new([("a", ValueType::Int), ("b", ValueType::Str)]).unwrap();
        Relation::from_rows(
            schema,
            (0..10)
                .map(|i| vec![Value::Int(i), Value::str(if i % 2 == 0 { "even" } else { "odd" })]),
        )
        .unwrap()
    }

    #[test]
    fn select_by_predicate() {
        let r = rel();
        let out = select(&r, &Predicate::Eq(1, Value::str("even")));
        assert_eq!(out.num_rows(), 5);
        assert!(out.iter_rows().all(|row| row[1] == Value::str("even")));
    }

    #[test]
    fn select_true_is_identity() {
        let r = rel();
        let out = select(&r, &Predicate::True);
        assert_eq!(out.num_rows(), r.num_rows());
    }

    #[test]
    fn filter_by_closure() {
        let r = rel();
        let out = filter(&r, |rel, i| rel.value(i, 0).as_i64().unwrap() >= 7);
        assert_eq!(out.num_rows(), 3);
    }

    #[test]
    fn empty_result() {
        let r = rel();
        let out = select(&r, &Predicate::Eq(0, Value::Int(99)));
        assert!(out.is_empty());
        assert_eq!(out.schema(), r.schema());
    }
}
