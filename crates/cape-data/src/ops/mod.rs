//! Relational operators: selection, projection, sorting, aggregation, CUBE.

mod aggregate;
mod cube;
mod project;
mod select;
mod sort;

pub use aggregate::{aggregate, aggregate_with_row_count, GroupByResult};
pub use cube::{cube, CubeSlice};
pub use project::{distinct, distinct_project, project};
pub use select::{filter, select};
pub use sort::{sort_by, sort_perm, sorted_block_starts};
