//! Relational operators: selection, projection, sorting, aggregation,
//! CUBE, and roll-up derivation.

mod aggregate;
mod cube;
mod group_index;
mod project;
mod rollup;
mod select;
mod sort;

#[doc(hidden)]
pub use aggregate::aggregate_with_row_count_unpacked;
pub use aggregate::{aggregate, aggregate_with_row_count, GroupByResult};
pub use cube::{cube, CubeSlice};
#[doc(hidden)]
pub use group_index::group_key_index_unpacked;
pub use group_index::{group_key_index, GroupKeyIndex};
pub use project::{distinct, distinct_project, project};
pub use rollup::{rollup_aggregate, rollup_supported};
pub use select::{filter, select};
pub use sort::{column_ranks, perm_block_starts, sort_by, sort_perm, sorted_block_starts};
